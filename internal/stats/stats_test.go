package stats_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// TestCollectMatchesBruteForce recounts every generated database by brute
// force — per-column value frequencies via plain maps over the public row
// iterator — and checks the one-pass collector against it exactly: row
// counts, distinct counts, MCV membership counts, and the top-k property
// (no non-MCV value is more frequent than the least frequent MCV entry).
// The gen shapes cover empty relations (t2-empty-rel), skewed value
// distributions, mixed arities and fancy constant names.
func TestCollectMatchesBruteForce(t *testing.T) {
	for _, shape := range gen.Shapes() {
		shape := shape
		t.Run(shape, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				s, err := gen.NewScenario(seed, shape)
				if err != nil {
					t.Fatal(err)
				}
				st := stats.Collect(s.DB)
				for _, name := range s.DB.RelationNames() {
					r := s.DB.Relation(name)
					rs := st.Relation(name)
					if rs == nil {
						t.Fatalf("seed %d: no stats for relation %s", seed, name)
					}
					if rs.Rows != r.Len() {
						t.Fatalf("seed %d: %s rows %d, want %d", seed, name, rs.Rows, r.Len())
					}
					if len(rs.Cols) != r.Arity() {
						t.Fatalf("seed %d: %s has %d column stats, want %d", seed, name, len(rs.Cols), r.Arity())
					}
					for c := 0; c < r.Arity(); c++ {
						counts := map[relation.Value]int{}
						for i := 0; i < r.Len(); i++ {
							counts[r.Row(i)[c]]++
						}
						col := rs.Cols[c]
						if col.Distinct != len(counts) {
							t.Errorf("seed %d: %s col %d distinct %d, want %d", seed, name, c, col.Distinct, len(counts))
						}
						wantMCV := len(counts)
						if wantMCV > stats.MCVEntries {
							wantMCV = stats.MCVEntries
						}
						if len(col.MCV) != wantMCV {
							t.Errorf("seed %d: %s col %d has %d MCV entries, want %d", seed, name, c, len(col.MCV), wantMCV)
						}
						minMCV := math.MaxInt
						inMCV := map[relation.Value]bool{}
						for _, e := range col.MCV {
							if counts[e.Val] != e.Count {
								t.Errorf("seed %d: %s col %d MCV %v count %d, want %d", seed, name, c, e.Val, e.Count, counts[e.Val])
							}
							if e.Count < minMCV {
								minMCV = e.Count
							}
							inMCV[e.Val] = true
						}
						for v, n := range counts {
							if !inMCV[v] && n > minMCV {
								t.Errorf("seed %d: %s col %d non-MCV value %v count %d exceeds MCV minimum %d", seed, name, c, v, n, minMCV)
							}
						}
					}
				}
			}
		})
	}
}

// TestAtomEstExact pins the estimator where it should be exact: an
// unconstrained atom estimates the full relation, an atom bound to an MCV
// constant estimates that value's true frequency, and a never-interned
// named constant estimates zero.
func TestAtomEstExact(t *testing.T) {
	db := relation.NewDatabase()
	// 6×a, 2×b, 1×c in column 0; column 1 all distinct.
	for i, c := range []string{"a", "a", "a", "a", "a", "a", "b", "b", "c"} {
		db.MustInsertNamed("r", c, fmt.Sprintf("y%d", i))
	}
	st := stats.Collect(db)

	free := st.AtomEst(relation.NewAtom("r", "X", "Y"))
	if free.Rows != 9 {
		t.Errorf("unconstrained estimate %v rows, want 9", free.Rows)
	}
	if free.DistinctOf("X") != 3 || free.DistinctOf("Y") != 9 {
		t.Errorf("distinct estimates X=%v Y=%v, want 3 and 9", free.DistinctOf("X"), free.DistinctOf("Y"))
	}

	bound := st.AtomEst(relation.Atom{Pred: "r", Terms: []relation.Term{relation.CN("a"), relation.V("Y")}})
	if bound.Rows != 6 {
		t.Errorf("MCV-bound estimate %v rows, want exactly 6", bound.Rows)
	}
	if got := st.Selectivity(relation.Atom{Pred: "r", Terms: []relation.Term{relation.CN("a"), relation.V("Y")}}); math.Abs(got-6.0/9.0) > 1e-12 {
		t.Errorf("selectivity %v, want 6/9", got)
	}

	ghost := st.AtomEst(relation.Atom{Pred: "r", Terms: []relation.Term{relation.CN("never-interned"), relation.V("Y")}})
	if ghost.Rows != 0 {
		t.Errorf("ghost-constant estimate %v rows, want 0", ghost.Rows)
	}

	if e := st.AtomEst(relation.NewAtom("nope", "X")); e.Rows != 0 {
		t.Errorf("unknown-relation estimate %v rows, want 0", e.Rows)
	}

	// Repeated variable: r(X,X) can match at most min(d0,d1) rows; the
	// estimate must shrink below the full relation.
	rep := st.AtomEst(relation.NewAtom("r", "X", "X"))
	if rep.Rows >= free.Rows {
		t.Errorf("repeated-variable estimate %v rows did not shrink below %v", rep.Rows, free.Rows)
	}
}

// TestJoinEstFormula checks the join-size composition on a hand-computed
// case: |A|=100 with d(Y)=10 joined with |B|=50 with d(Y)=25 gives
// 100*50/25 = 200 and the shared column's distinct capped sensibly.
func TestJoinEstFormula(t *testing.T) {
	a := stats.Est{Rows: 100, Vars: []string{"X", "Y"}, Distinct: []float64{100, 10}}
	b := stats.Est{Rows: 50, Vars: []string{"Y", "Z"}, Distinct: []float64{25, 50}}
	j := stats.JoinEst(a, b)
	if j.Rows != 200 {
		t.Fatalf("join estimate %v rows, want 200", j.Rows)
	}
	if len(j.Vars) != 3 {
		t.Fatalf("join schema %v, want X,Y,Z", j.Vars)
	}
	// Cartesian: no shared columns multiplies out.
	c := stats.Est{Rows: 7, Vars: []string{"W"}, Distinct: []float64{7}}
	if cart := stats.JoinEst(a, c); cart.Rows != 700 {
		t.Errorf("cartesian estimate %v rows, want 700", cart.Rows)
	}
}

// TestOrderPermutation feeds random inputs through both the DP (n <= 8)
// and greedy (n > 8) branches and checks the result is always a valid
// permutation.
func TestOrderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 5, 8, 9, 12} {
		for trial := 0; trial < 20; trial++ {
			in := make([]stats.Est, n)
			for i := range in {
				rows := float64(rng.Intn(100))
				v1, v2 := fmt.Sprintf("X%d", rng.Intn(n+1)), fmt.Sprintf("X%d", rng.Intn(n+1))
				in[i] = stats.Est{
					Rows:     rows,
					Vars:     []string{v1 + "a", v2 + "b"},
					Distinct: []float64{float64(rng.Intn(100)), float64(rng.Intn(100))},
				}
			}
			order := stats.Order(in)
			if len(order) != n {
				t.Fatalf("n=%d: order length %d", n, len(order))
			}
			seen := make([]bool, n)
			for _, o := range order {
				if o < 0 || o >= n || seen[o] {
					t.Fatalf("n=%d: order %v is not a permutation", n, order)
				}
				seen[o] = true
			}
		}
	}
}

// TestOrderAvoidsExplosiveJoin is the skew scenario the planner exists
// for: three same-sized tables where the schema-order join A ⋈ B explodes
// (shared column with 3 distinct values) but B ⋈ C stays small (uniform
// column). The cost order must not start with the explosive pair.
func TestOrderAvoidsExplosiveJoin(t *testing.T) {
	in := []stats.Est{
		{Rows: 200, Vars: []string{"X", "Y"}, Distinct: []float64{200, 3}},  // A: skewed Y
		{Rows: 200, Vars: []string{"Y", "Z"}, Distinct: []float64{3, 200}},  // B: skewed Y, uniform Z
		{Rows: 200, Vars: []string{"Z", "W"}, Distinct: []float64{200, 50}}, // C: uniform Z
	}
	order := stats.Order(in)
	first, second := order[0], order[1]
	if (first == 0 && second == 1) || (first == 1 && second == 0) {
		t.Fatalf("cost order %v starts with the explosive A ⋈ B pair", order)
	}
}

// TestOrderedJoinMatchesGreedy is the row-identity property at the
// relation level: for random table sets, executing the cost order must
// produce exactly the tuple set of the greedy order.
func TestOrderedJoinMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(3)
		tables := make([]*relation.Table, n)
		in := make([]stats.Est, n)
		for i := range tables {
			w := 1 + rng.Intn(3)
			perm := rng.Perm(len(vars))[:w]
			cols := make([]string, w)
			for k, p := range perm {
				cols[k] = vars[p]
			}
			tab := relation.NewTable(cols)
			rows := rng.Intn(12)
			tup := make(relation.Tuple, w)
			for r := 0; r < rows; r++ {
				for c := range tup {
					tup[c] = relation.Value(rng.Intn(4))
				}
				tab.Add(tup)
			}
			tables[i] = tab
			dist := make([]float64, w)
			for c := range dist {
				dist[c] = float64(1 + rng.Intn(4))
			}
			in[i] = stats.Est{Rows: float64(tab.Len()), Vars: cols, Distinct: dist}
		}
		got := relation.JoinTablesOrdered(tables, stats.Order(in))
		want := relation.JoinTablesGreedy(tables)
		if !got.EqualSet(want) {
			t.Fatalf("trial %d: ordered join %v != greedy join %v", trial, got, want)
		}
	}
}
