package stats_test

import (
	"fmt"
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// applyChange mutates db per ch and returns the change with Added/Removed
// restricted to actual membership changes, as WithDelta requires.
func applyChange(t *testing.T, db *relation.Database, name string, add, remove [][]string) stats.RelationChange {
	t.Helper()
	r := db.Relation(name)
	ch := stats.RelationChange{Name: name}
	for _, row := range remove {
		tup := make(relation.Tuple, len(row))
		for i, c := range row {
			v, ok := db.Dict().Lookup(c)
			if !ok {
				t.Fatalf("constant %q not interned", c)
			}
			tup[i] = v
		}
		if r.Delete(tup) {
			ch.Removed = append(ch.Removed, tup)
		}
	}
	for _, row := range add {
		tup := make(relation.Tuple, len(row))
		for i, c := range row {
			tup[i] = db.Dict().Intern(c)
		}
		if r.Insert(tup) {
			ch.Added = append(ch.Added, tup)
		}
	}
	return ch
}

// TestWithDeltaMatchesRecollection drives the counting form through
// insert/delete batches on generated databases and checks, after each
// batch, that WithDelta's incrementally maintained statistics are
// bit-identical (DiffFrom) to a from-scratch CollectCounting on the
// mutated database — and that the pre-delta Stats value is untouched.
func TestWithDeltaMatchesRecollection(t *testing.T) {
	for _, shape := range []string{"t0-chain", "t1-cycle", "t2-pad"} {
		t.Run(shape, func(t *testing.T) {
			s, err := gen.NewScenario(3, shape)
			if err != nil {
				t.Fatal(err)
			}
			db := s.DB.Clone()
			st := stats.CollectCounting(db)
			if st.Database() != db {
				t.Fatal("Database accessor does not return the collected database")
			}
			baseline := stats.Collect(s.DB)

			for batch := 0; batch < 4; batch++ {
				name := db.RelationNames()[batch%db.NumRelations()]
				r := db.Relation(name)
				var remove [][]string
				if r.Len() > 0 {
					row := r.Row(0)
					rem := make([]string, len(row))
					for i, v := range row {
						rem[i] = db.Dict().Name(v)
					}
					remove = [][]string{rem}
				}
				add := make([][]string, 2)
				for i := range add {
					row := make([]string, r.Arity())
					for c := range row {
						row[c] = fmt.Sprintf("delta%d_%d_%d", batch, i, c)
					}
					add[i] = row
				}
				ch := applyChange(t, db, name, add, remove)
				st = st.WithDelta(db, []stats.RelationChange{ch})
				if d := st.DiffFrom(stats.CollectCounting(db)); d != "" {
					t.Fatalf("batch %d: incremental stats diverge: %s", batch, d)
				}
			}
			if d := baseline.DiffFrom(stats.Collect(s.DB)); d != "" {
				t.Fatalf("pre-delta stats changed: %s", d)
			}
		})
	}
}

// TestWithDeltaEdgeCases covers the recollection fallbacks: a Stats built
// without counts (plain Collect), a change for a relation the database no
// longer has, a change for a brand-new relation, and the StalenessRebuild
// cap forcing a periodic exact recollection.
func TestWithDeltaEdgeCases(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "c", "d")
	db.MustInsertNamed("q", "x")

	// No retained counts: WithDelta must recollect the changed relation.
	plain := stats.Collect(db)
	ch := applyChange(t, db, "p", [][]string{{"e", "f"}}, nil)
	st := plain.WithDelta(db, []stats.RelationChange{ch})
	if d := st.DiffFrom(stats.CollectCounting(db)); d != "" {
		t.Fatalf("recollection fallback diverges: %s", d)
	}

	// Unknown relation in the change list: dropped from the new Stats.
	st2 := st.WithDelta(db, []stats.RelationChange{{Name: "gone"}})
	if st2.Relation("gone") != nil {
		t.Error("WithDelta kept stats for a relation the database lacks")
	}
	if d := st2.DiffFrom(stats.CollectCounting(db)); d != "" {
		t.Fatalf("dropping an unknown relation broke the rest: %s", d)
	}

	// Brand-new relation: no prior entry, recollected from the database.
	if _, err := db.AddRelation("r", 2); err != nil {
		t.Fatal(err)
	}
	ch = applyChange(t, db, "r", [][]string{{"m", "n"}}, nil)
	st3 := st2.WithDelta(db, []stats.RelationChange{ch})
	if rs := st3.Relation("r"); rs == nil || rs.Rows != 1 {
		t.Fatalf("new relation stats %+v", st3.Relation("r"))
	}

	// StalenessRebuild: the counting form absorbs only so many deltas
	// before recollecting; the result must stay exact throughout.
	stN := stats.CollectCounting(db)
	for i := 0; i < stats.StalenessRebuild+2; i++ {
		ch := applyChange(t, db, "q", [][]string{{fmt.Sprintf("v%d", i)}}, nil)
		stN = stN.WithDelta(db, []stats.RelationChange{ch})
	}
	if d := stN.DiffFrom(stats.CollectCounting(db)); d != "" {
		t.Fatalf("stats drifted across the staleness rebuild: %s", d)
	}
}

// TestDiffFromReportsDivergence: DiffFrom is the harness's drift detector;
// each structural difference must be reported, not silently passed.
func TestDiffFromReportsDivergence(t *testing.T) {
	mk := func(rows ...[]string) *relation.Database {
		db := relation.NewDatabase()
		for _, r := range rows {
			db.MustInsertNamed(r[0], r[1:]...)
		}
		return db
	}
	base := mk([]string{"p", "a", "b"}, []string{"p", "c", "d"})
	cases := []struct {
		name  string
		other *relation.Database
	}{
		{"missing relation", mk([]string{"q", "a"})},
		{"row count", mk([]string{"p", "a", "b"})},
		{"distinct values", mk([]string{"p", "a", "b"}, []string{"p", "a", "d"})},
	}
	st := stats.Collect(base)
	if d := st.DiffFrom(stats.Collect(base.Clone())); d != "" {
		t.Fatalf("identical databases reported divergent: %s", d)
	}
	for _, tc := range cases {
		if d := st.DiffFrom(stats.Collect(tc.other)); d == "" {
			t.Errorf("%s: DiffFrom reported agreement", tc.name)
		}
	}
	// Extra relation on the other side is also a divergence.
	if d := st.DiffFrom(stats.Collect(mk([]string{"p", "a", "b"}, []string{"p", "c", "d"}, []string{"q", "z"}))); d == "" {
		t.Error("extra relation: DiffFrom reported agreement")
	}
}

// TestWithRows: the estimate copy-with-actual used to feed Order.
func TestWithRows(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "c", "b")
	st := stats.Collect(db)
	est := st.AtomEst(relation.Atom{Pred: "p", Terms: []relation.Term{relation.V("X"), relation.V("Y")}})
	got := est.WithRows(7)
	if got.Rows != 7 {
		t.Fatalf("WithRows gave %v rows", got.Rows)
	}
	if est.Rows == 7 {
		t.Fatal("WithRows mutated the receiver")
	}
	if got.DistinctOf("X") != est.DistinctOf("X") {
		t.Error("WithRows changed the distinct estimates")
	}
	if got.DistinctOf("missing") != got.Rows {
		t.Error("DistinctOf for an unknown column must fall back to Rows")
	}
}
