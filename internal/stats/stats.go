// Package stats is the cardinality-statistics and cost-estimation
// subsystem behind the engine's cost-based join planning. It computes, in
// one pass over each relation's columnar arena, the three classical
// Selinger-style statistics — per-relation row counts, per-column
// distinct-value counts, and a top-k most-common-value (MCV) sketch per
// column — and exposes an estimator API over them:
//
//   - AtomEst estimates the materialization of one atom (constant-bound
//     columns priced through the MCV sketch, repeated variables as
//     equality selections) together with per-variable distinct counts;
//   - JoinEst composes two estimates through the standard join-size
//     formula |A ⋈ B| ≈ |A|·|B| / Π_shared max(d_A(v), d_B(v));
//   - Order picks a join order for a set of inputs: exact dynamic
//     programming over left-deep orders for up to OrderDPMax inputs, a
//     greedy minimum-growth order above.
//
// Statistics are collected once per database (the engine caches them
// alongside its evaluator; both snapshot the database and belong to one
// epoch snapshot, replaced together by Engine.Apply) and every estimate is
// derived arithmetic — nothing here rescans data at planning time.
//
// For mutable databases, CollectCounting retains the per-column value
// counts the sketch is derived from; WithDelta then absorbs a batch of
// inserted/removed tuples by adjusting those counts and re-deriving
// Distinct/MCV — O(delta) instead of a rescan — falling back to an exact
// recollection every StalenessRebuild deltas (and whenever counts are
// unavailable) so the maps cannot accumulate drift or garbage.
package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/mqgo/metaquery/internal/relation"
)

// MCVEntries is k of the top-k most-common-value sketch kept per column.
const MCVEntries = 8

// OrderDPMax is the largest input count Order plans exactly (left-deep
// dynamic programming over 2^n subsets); larger sets fall back to the
// greedy minimum-growth order.
const OrderDPMax = 8

// ValueCount is one entry of a column's MCV sketch.
type ValueCount struct {
	Val   relation.Value
	Count int
}

// ColumnStats summarizes one column of a base relation.
type ColumnStats struct {
	// Distinct is the exact number of distinct values in the column.
	Distinct int
	// MCV holds the most common values by descending count (ties broken by
	// ascending value), at most MCVEntries entries.
	MCV []ValueCount
	// mcvRows is the total row count covered by the MCV entries; the
	// remaining rows spread over the remaining distinct values.
	mcvRows int
}

// freq estimates the fraction of the relation's rows holding value v in
// this column: exact for MCV members, the uniform remainder estimate
// (rows - mcvRows)/(distinct - |MCV|)/rows otherwise.
func (c *ColumnStats) freq(v relation.Value, rows int) float64 {
	if rows == 0 {
		return 0
	}
	for _, e := range c.MCV {
		if e.Val == v {
			return float64(e.Count) / float64(rows)
		}
	}
	rest := c.Distinct - len(c.MCV)
	if rest <= 0 {
		// Every distinct value is in the sketch and v is not among them.
		return 0
	}
	return float64(rows-c.mcvRows) / float64(rest) / float64(rows)
}

// RelationStats summarizes one base relation.
type RelationStats struct {
	Rows int
	Cols []ColumnStats

	// counts, when retained (CollectCounting), holds the exact per-column
	// value counts the ColumnStats are derived from, enabling O(delta)
	// maintenance in WithDelta. deltas counts the WithDelta applications
	// since the last exact collection.
	counts []map[relation.Value]int
	deltas int
}

// Stats holds the collected statistics of one database snapshot. All
// methods are safe for concurrent use (the structure is immutable after
// Collect).
type Stats struct {
	db   *relation.Database
	rels map[string]*RelationStats
}

// Collect computes the statistics for every relation of db in one pass
// over each relation's rows.
func Collect(db *relation.Database) *Stats {
	return collect(db, false)
}

// CollectCounting is Collect retaining the per-column value counts, the
// counting form WithDelta maintains incrementally. It costs the same scan
// as Collect plus the memory of one count entry per (column, distinct
// value).
func CollectCounting(db *relation.Database) *Stats {
	return collect(db, true)
}

func collect(db *relation.Database, counting bool) *Stats {
	st := &Stats{db: db, rels: make(map[string]*RelationStats, db.NumRelations())}
	for _, name := range db.RelationNames() {
		st.rels[name] = collectRelation(db.Relation(name), counting)
	}
	return st
}

// collectRelation scans r once, counting every column's values.
func collectRelation(r *relation.Relation, counting bool) *RelationStats {
	rs := &RelationStats{Rows: r.Len(), Cols: make([]ColumnStats, r.Arity())}
	counts := make([]map[relation.Value]int, r.Arity())
	for c := range counts {
		counts[c] = make(map[relation.Value]int)
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		for c, v := range row {
			counts[c][v]++
		}
	}
	for c, m := range counts {
		deriveColumn(&rs.Cols[c], m)
	}
	if counting {
		rs.counts = counts
	}
	return rs
}

// deriveColumn recomputes col's Distinct/MCV/mcvRows from the value counts.
func deriveColumn(col *ColumnStats, m map[relation.Value]int) {
	col.Distinct = len(m)
	col.MCV = topK(m, MCVEntries)
	col.mcvRows = 0
	for _, e := range col.MCV {
		col.mcvRows += e.Count
	}
}

// topK extracts the k highest-count entries, descending by count with ties
// broken by ascending value so the sketch is deterministic.
func topK(m map[relation.Value]int, k int) []ValueCount {
	if len(m) == 0 {
		return nil
	}
	all := make([]ValueCount, 0, len(m))
	for v, n := range m {
		all = append(all, ValueCount{Val: v, Count: n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Val < all[j].Val
	})
	if len(all) > k {
		all = all[:k]
	}
	return append([]ValueCount(nil), all...)
}

// Database returns the database the statistics were collected over.
func (st *Stats) Database() *relation.Database { return st.db }

// Relation returns the statistics of the named relation, or nil.
func (st *Stats) Relation(name string) *RelationStats { return st.rels[name] }

// StalenessRebuild is the number of WithDelta applications a relation's
// counting form absorbs before the next delta triggers an exact
// recollection instead. The counts are exact, so this is defensive: it
// bounds the lifetime of any drift and periodically reclaims map garbage
// from churned values.
const StalenessRebuild = 64

// RelationChange is one relation's net tuple delta, as WithDelta consumes
// it: Added and Removed list actual membership changes (an insert of a
// present tuple or delete of an absent one must not appear).
type RelationChange struct {
	Name    string
	Added   []relation.Tuple
	Removed []relation.Tuple
}

// WithDelta derives the statistics of db — the changed database version —
// from st by absorbing the given per-relation changes; st itself is left
// untouched (old-epoch readers keep using it). Relations with retained
// value counts are maintained in O(|delta|); relations without counts,
// unknown relations, and relations past StalenessRebuild deltas are
// recollected exactly (counting) from db.
func (st *Stats) WithDelta(db *relation.Database, changes []RelationChange) *Stats {
	out := &Stats{db: db, rels: make(map[string]*RelationStats, len(st.rels)+len(changes))}
	for name, rs := range st.rels {
		out.rels[name] = rs
	}
	for _, ch := range changes {
		r := db.Relation(ch.Name)
		if r == nil {
			delete(out.rels, ch.Name)
			continue
		}
		rs := st.rels[ch.Name]
		if rs == nil || rs.counts == nil || rs.deltas >= StalenessRebuild {
			out.rels[ch.Name] = collectRelation(r, true)
			continue
		}
		nrs := &RelationStats{
			Rows:   rs.Rows + len(ch.Added) - len(ch.Removed),
			Cols:   make([]ColumnStats, len(rs.Cols)),
			counts: make([]map[relation.Value]int, len(rs.counts)),
			deltas: rs.deltas + 1,
		}
		for c, m := range rs.counts {
			nm := make(map[relation.Value]int, len(m))
			for v, n := range m {
				nm[v] = n
			}
			for _, t := range ch.Added {
				nm[t[c]]++
			}
			for _, t := range ch.Removed {
				if nm[t[c]]--; nm[t[c]] <= 0 {
					delete(nm, t[c])
				}
			}
			nrs.counts[c] = nm
			deriveColumn(&nrs.Cols[c], nm)
		}
		out.rels[ch.Name] = nrs
	}
	return out
}

// DiffFrom compares st against independently collected statistics over the
// same data, returning "" when every relation's row count, per-column
// distinct count and MCV sketch agree, or a description of the first
// divergence. The counting form is exact, so incremental maintenance must
// match a from-scratch collection bit for bit; the differential harness
// uses this to catch stats drift that answer comparison cannot see.
func (st *Stats) DiffFrom(other *Stats) string {
	for name, rs := range st.rels {
		ors := other.rels[name]
		if ors == nil {
			return fmt.Sprintf("relation %s: present here, absent there", name)
		}
		if rs.Rows != ors.Rows {
			return fmt.Sprintf("relation %s: rows %d vs %d", name, rs.Rows, ors.Rows)
		}
		if len(rs.Cols) != len(ors.Cols) {
			return fmt.Sprintf("relation %s: arity %d vs %d", name, len(rs.Cols), len(ors.Cols))
		}
		for c := range rs.Cols {
			a, b := &rs.Cols[c], &ors.Cols[c]
			if a.Distinct != b.Distinct {
				return fmt.Sprintf("relation %s col %d: distinct %d vs %d", name, c, a.Distinct, b.Distinct)
			}
			if len(a.MCV) != len(b.MCV) {
				return fmt.Sprintf("relation %s col %d: MCV size %d vs %d", name, c, len(a.MCV), len(b.MCV))
			}
			for k := range a.MCV {
				if a.MCV[k] != b.MCV[k] {
					return fmt.Sprintf("relation %s col %d: MCV[%d] %v vs %v", name, c, k, a.MCV[k], b.MCV[k])
				}
			}
		}
	}
	for name := range other.rels {
		if st.rels[name] == nil {
			return fmt.Sprintf("relation %s: absent here, present there", name)
		}
	}
	return ""
}

// Est is the estimated profile of a (possibly derived) table: an estimated
// row count and per-column distinct-count estimates aligned with Vars.
// A zero Est describes an empty table.
type Est struct {
	Rows     float64
	Vars     []string
	Distinct []float64
}

// DistinctOf returns the distinct estimate for variable v, or Rows when v
// is not a column (an unknown column constrains nothing beyond the row
// count).
func (e Est) DistinctOf(v string) float64 {
	for i, x := range e.Vars {
		if x == v {
			return e.Distinct[i]
		}
	}
	return e.Rows
}

// AtomEst estimates the materialization relation.FromAtom(db, a): the
// expected row count after constant and repeated-variable selections, and
// a distinct estimate per output variable. Constants are priced through
// the MCV sketch (exact frequency for sketch members, the uniform
// remainder estimate otherwise); a repeated variable contributes the
// textbook equality selectivity 1/max(d_i, d_j) per extra occurrence.
func (st *Stats) AtomEst(a relation.Atom) Est {
	rs := st.rels[a.Pred]
	if rs == nil || rs.Rows == 0 {
		return Est{Vars: a.Vars(), Distinct: make([]float64, len(a.Vars()))}
	}
	sel := 1.0
	firstPos := make(map[string]int, len(a.Terms))
	for i, t := range a.Terms {
		switch {
		case !t.IsVar():
			v := t.Const
			if t.ConstName != "" {
				var ok bool
				v, ok = st.db.Dict().Lookup(t.ConstName)
				if !ok {
					// A never-interned constant matches no tuple.
					return Est{Vars: a.Vars(), Distinct: make([]float64, len(a.Vars()))}
				}
			}
			sel *= rs.Cols[i].freq(v, rs.Rows)
		default:
			if p, seen := firstPos[t.Var]; seen {
				d := math.Max(float64(rs.Cols[p].Distinct), float64(rs.Cols[i].Distinct))
				if d > 1 {
					sel /= d
				}
			} else {
				firstPos[t.Var] = i
			}
		}
	}
	rows := float64(rs.Rows) * sel
	vars := a.Vars()
	dist := make([]float64, len(vars))
	for i, v := range vars {
		d := float64(rs.Cols[firstPos[v]].Distinct)
		dist[i] = math.Min(d, rows)
	}
	return Est{Rows: rows, Vars: vars, Distinct: dist}
}

// Selectivity estimates the fraction of atom a's base relation surviving
// its constant and repeated-variable selections, in [0, 1]. It is
// AtomEst(a).Rows normalized by the relation's cardinality.
func (st *Stats) Selectivity(a relation.Atom) float64 {
	rs := st.rels[a.Pred]
	if rs == nil || rs.Rows == 0 {
		return 0
	}
	return st.AtomEst(a).Rows / float64(rs.Rows)
}

// JoinEst estimates a ⋈ b with the standard formula: the cross-product
// cardinality divided, per shared variable, by the larger of the two
// distinct counts. Output distincts are the input distincts capped by the
// estimated output rows.
func JoinEst(a, b Est) Est {
	rows := a.Rows * b.Rows
	for i, v := range a.Vars {
		db := -1.0
		for j, w := range b.Vars {
			if w == v {
				db = b.Distinct[j]
				break
			}
		}
		if db < 0 {
			continue
		}
		if d := math.Max(a.Distinct[i], db); d > 1 {
			rows /= d
		}
	}
	vars := make([]string, 0, len(a.Vars)+len(b.Vars))
	dist := make([]float64, 0, len(a.Vars)+len(b.Vars))
	take := func(v string, d float64) {
		for _, x := range vars {
			if x == v {
				return
			}
		}
		vars = append(vars, v)
		dist = append(dist, math.Min(d, rows))
	}
	for i, v := range a.Vars {
		take(v, a.Distinct[i])
	}
	for i, v := range b.Vars {
		take(v, b.Distinct[i])
	}
	return Est{Rows: rows, Vars: vars, Distinct: dist}
}

// WithRows returns a copy of the estimate with the row count replaced by
// an observed actual — the usual way to build an Order input: base-atom
// distinct estimates against the materialized (or reduced) table's true
// cardinality.
func (e Est) WithRows(rows float64) Est {
	e.Rows = rows
	return e
}

// clampedDistinct returns the distinct estimate of v clamped to the row
// count (a column cannot hold more distinct values than the table has
// rows — the clamp is what lets callers pass base-relation distincts
// against reduced row counts without copying), or -1 when v is not a
// column. It is the planning-internal counterpart of DistinctOf.
func (e *Est) clampedDistinct(v string) float64 {
	for i, x := range e.Vars {
		if x == v {
			return math.Min(e.Distinct[i], math.Max(e.Rows, 1))
		}
	}
	return -1
}

// Order returns a join order (a permutation of input indices) minimizing
// the estimated sum of intermediate result sizes. Up to OrderDPMax inputs
// it is the exact optimum over left-deep orders by dynamic programming on
// subsets; above that a greedy minimum-growth order (start with the
// smallest input, repeatedly append the input minimizing the estimated
// next intermediate). Cartesian steps are allowed but priced at the full
// cross product, so they are chosen only when unavoidable.
//
// Each input is an Est, usually a base-atom estimate with Rows replaced
// by the actual table cardinality (Est.WithRows); distinct counts larger
// than the row count are clamped during planning.
func Order(in []Est) []int {
	return OrderInto(in, make([]int, len(in)))
}

// OrderInto is Order writing the permutation into out (len(out) must be
// len(in)), so hot-path callers can keep the order on a stack buffer.
func OrderInto(in []Est, out []int) []int {
	n := len(in)
	for i := range out {
		out[i] = i
	}
	if n <= 2 {
		// One input needs no order; for two, the join operators pick the
		// build side from the actual cardinalities at run time.
		return out
	}
	if n <= OrderDPMax {
		return orderDP(in, out)
	}
	return orderGreedy(in, out)
}

// subsetRows estimates the join size of the inputs in mask: the product of
// row counts divided, per variable occurring in k >= 2 members, by the
// largest clamped distinct count raised to k-1 (each extra occurrence is
// one equality constraint).
func subsetRows(in []Est, mask uint) float64 {
	rows := 1.0
	for i := range in {
		if mask&(1<<uint(i)) != 0 {
			rows *= in[i].Rows
		}
	}
	for i := range in {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for _, v := range in[i].Vars {
			// Count v only at its first occurrence across the subset.
			first := true
			maxD, occ := 1.0, 0
			for j := range in {
				if mask&(1<<uint(j)) == 0 {
					continue
				}
				if d := in[j].clampedDistinct(v); d >= 0 {
					if j < i {
						first = false
						break
					}
					occ++
					maxD = math.Max(maxD, d)
				}
			}
			if !first || occ < 2 {
				continue
			}
			for e := 1; e < occ; e++ {
				if maxD > 1 {
					rows /= maxD
				}
			}
		}
	}
	return rows
}

// orderDP is the exact left-deep subset DP: cost[mask] = rows(mask) +
// min_i cost[mask \ {i}], reconstructing the order from the argmin chain.
// The tables are fixed-size stack arrays (n <= OrderDPMax), so planning an
// order allocates nothing beyond the caller's output slice — this runs
// per body join in the engine's hot path.
func orderDP(in []Est, out []int) []int {
	n := len(in)
	size := 1 << uint(n)
	var costArr, rowsArr [1 << OrderDPMax]float64
	var lastArr [1 << OrderDPMax]int8
	cost, rows, last := costArr[:size], rowsArr[:size], lastArr[:size]
	for mask := 1; mask < size; mask++ {
		rows[mask] = subsetRows(in, uint(mask))
	}
	for mask := 1; mask < size; mask++ {
		if mask&(mask-1) == 0 {
			// Singleton: no intermediate yet.
			cost[mask] = 0
			last[mask] = int8(trailingBit(mask))
			continue
		}
		best := math.Inf(1)
		bestI := -1
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			c := cost[mask^(1<<uint(i))]
			if c < best {
				best = c
				bestI = i
			}
		}
		cost[mask] = best + rows[mask]
		last[mask] = int8(bestI)
	}
	mask := size - 1
	for k := n - 1; k >= 0; k-- {
		i := int(last[mask])
		out[k] = i
		mask ^= 1 << uint(i)
	}
	return out
}

func trailingBit(mask int) int {
	i := 0
	for mask&1 == 0 {
		mask >>= 1
		i++
	}
	return i
}

// orderGreedy starts with the smallest input and repeatedly appends the
// input minimizing the estimated next intermediate size.
func orderGreedy(in []Est, out []int) []int {
	n := len(in)
	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if in[i].Rows < in[start].Rows {
			start = i
		}
	}
	out[0] = start
	used[start] = true
	mask := uint(1) << uint(start)
	for k := 1; k < n; k++ {
		best := math.Inf(1)
		pick := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if r := subsetRows(in, mask|1<<uint(i)); r < best {
				best = r
				pick = i
			}
		}
		out[k] = pick
		used[pick] = true
		mask |= 1 << uint(pick)
	}
	return out
}
