package generate

import (
	"strings"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func genealogyDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("parent", "ada", "bob")
	db.MustInsertNamed("parent", "bob", "cid")
	db.MustInsertNamed("grandparent", "ada", "cid")
	db.MustInsertNamed("ancestor", "ada", "bob")
	db.MustInsertNamed("ancestor", "bob", "cid")
	db.MustInsertNamed("ancestor", "ada", "cid")
	return db
}

func TestChainShapes(t *testing.T) {
	for m := 1; m <= 4; m++ {
		mq, err := Chain(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(mq.Body) != m {
			t.Errorf("Chain(%d) body = %d", m, len(mq.Body))
		}
		if !mq.IsPure() {
			t.Errorf("Chain(%d) not pure", m)
		}
	}
	if _, err := Chain(0); err == nil {
		t.Error("Chain(0) accepted")
	}
}

func TestStarShapes(t *testing.T) {
	mq, err := Star(3)
	if err != nil {
		t.Fatal(err)
	}
	// All body literals share the hub variable X0.
	for _, l := range mq.Body {
		if l.Args[0] != "X0" {
			t.Errorf("star literal %s does not start at hub", l)
		}
	}
	if _, err := Star(0); err == nil {
		t.Error("Star(0) accepted")
	}
}

func TestCycleShapes(t *testing.T) {
	mq, err := Cycle(3)
	if err != nil {
		t.Fatal(err)
	}
	if mq.IsSemiAcyclic() {
		t.Error("Cycle(3) should not be semi-acyclic")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) accepted")
	}
}

func TestSameArity(t *testing.T) {
	mq, err := SameArity(3)
	if err != nil {
		t.Fatal(err)
	}
	if mq.Head.Arity() != 3 || len(mq.Body) != 1 || mq.Body[0].Arity() != 3 {
		t.Errorf("SameArity(3) = %s", mq)
	}
	if _, err := SameArity(0); err == nil {
		t.Error("SameArity(0) accepted")
	}
}

func TestFromSchemaDeduplicates(t *testing.T) {
	db := genealogyDB()
	mqs, err := FromSchema(db, Config{MaxBodyLiterals: 3, IncludeCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mqs) == 0 {
		t.Fatal("no metaqueries generated")
	}
	seen := map[string]bool{}
	for _, mq := range mqs {
		k := mq.String()
		if seen[k] {
			t.Errorf("duplicate metaquery %s", k)
		}
		seen[k] = true
		if !mq.IsPure() {
			t.Errorf("generated impure metaquery %s", mq)
		}
	}
	// Chain(1) and Star(1) coincide textually after renaming? They differ:
	// Chain(1) = R(X0,X1) <- P1(X0,X1); Star(1) = R(X0,X1) <- P1(X0,X1).
	// Dedup must collapse them.
	count := 0
	for _, mq := range mqs {
		if mq.String() == "R(X0,X1) <- P1(X0,X1)" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("chain/star length-1 not deduplicated: %d copies", count)
	}
}

func TestFromSchemaConfigValidation(t *testing.T) {
	db := genealogyDB()
	if _, err := FromSchema(db, Config{}); err == nil {
		t.Error("zero MaxBodyLiterals accepted")
	}
}

func TestMineDiscoversGrandparent(t *testing.T) {
	db := genealogyDB()
	mined, err := Mine(db, Config{MaxBodyLiterals: 2}, core.Type0,
		core.AllAbove(rat.Zero, rat.New(9, 10), rat.New(9, 10)))
	if err != nil {
		t.Fatal(err)
	}
	var found *Mined
	for i := range mined {
		if mined[i].Answer.Rule.String() == "grandparent(X0,X2) <- parent(X0,X1), parent(X1,X2)" {
			found = &mined[i]
		}
	}
	if found == nil {
		var rules []string
		for _, m := range mined {
			rules = append(rules, m.Answer.Rule.String())
		}
		t.Fatalf("grandparent rule not mined; got %v", rules)
	}
	if !found.Answer.Cnf.Equal(rat.One) || !found.Answer.Cvr.Equal(rat.One) {
		t.Errorf("grandparent indices: cnf=%v cvr=%v", found.Answer.Cnf, found.Answer.Cvr)
	}
	if !strings.Contains(found.Metaquery.String(), "P1(X0,X1), P2(X1,X2)") {
		t.Errorf("provenance metaquery wrong: %s", found.Metaquery)
	}
}

func TestMineTransitivity(t *testing.T) {
	// ancestor o ancestor ⊆ ancestor: cnf 1 through the chain template.
	db := genealogyDB()
	mined, err := Mine(db, Config{MaxBodyLiterals: 2}, core.Type0,
		core.SingleIndex(core.Cnf, rat.New(99, 100)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range mined {
		if m.Answer.Rule.String() == "ancestor(X0,X2) <- ancestor(X0,X1), ancestor(X1,X2)" {
			found = true
		}
	}
	if !found {
		t.Error("transitivity of ancestor not discovered")
	}
}
