// Package generate produces metaqueries automatically from a database
// schema, the workflow the paper's introduction describes ("they can be
// automatically generated from the database schema") and that systems like
// FlexiMine built loops around. Generators emit *pure* metaqueries (so all
// three instantiation types apply) over canonical shapes: chains, stars,
// cycles and same-arity head/body templates, deduplicated up to variable
// renaming.
package generate

import (
	"fmt"
	"sort"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/relation"
)

// Config bounds the generated family.
type Config struct {
	// MaxBodyLiterals caps the body length (chain length, star rays, cycle
	// size). Values below 1 generate nothing.
	MaxBodyLiterals int
	// Arities lists the pattern arities to generate for; empty means the
	// distinct arities occurring in the schema database.
	Arities []int
	// IncludeCycles adds cyclic bodies (which exercise hypertree width 2).
	IncludeCycles bool
}

// FromSchema returns a deterministic, deduplicated family of metaqueries
// for the database's schema under the given configuration.
func FromSchema(db *relation.Database, cfg Config) ([]*core.Metaquery, error) {
	if cfg.MaxBodyLiterals < 1 {
		return nil, fmt.Errorf("generate: MaxBodyLiterals must be >= 1")
	}
	arities := cfg.Arities
	if len(arities) == 0 {
		seen := map[int]bool{}
		for _, name := range db.RelationNames() {
			a := db.Relation(name).Arity()
			if !seen[a] {
				seen[a] = true
				arities = append(arities, a)
			}
		}
		sort.Ints(arities)
	}
	var out []*core.Metaquery
	seen := map[string]bool{}
	add := func(mq *core.Metaquery, err error) error {
		if err != nil {
			return err
		}
		k := mq.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, mq)
		}
		return nil
	}
	for _, a := range arities {
		if a == 2 {
			for m := 1; m <= cfg.MaxBodyLiterals; m++ {
				if err := add(Chain(m)); err != nil {
					return nil, err
				}
				if err := add(Star(m)); err != nil {
					return nil, err
				}
				if cfg.IncludeCycles && m >= 3 {
					if err := add(Cycle(m)); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := add(SameArity(a)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Chain returns the transitive chain metaquery with m binary body patterns:
//
//	R(X0,Xm) <- P1(X0,X1), ..., Pm(Xm-1,Xm)
func Chain(m int) (*core.Metaquery, error) {
	if m < 1 {
		return nil, fmt.Errorf("generate: chain length %d", m)
	}
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i+1), v(i), v(i+1))
	}
	return core.NewMetaquery(core.Pattern("R", v(0), v(m)), body...)
}

// Star returns the star metaquery with m binary rays around a hub:
//
//	R(X0,X1) <- P1(X0,X1), ..., Pm(X0,Xm)
func Star(m int) (*core.Metaquery, error) {
	if m < 1 {
		return nil, fmt.Errorf("generate: star size %d", m)
	}
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i+1), v(0), v(i+1))
	}
	return core.NewMetaquery(core.Pattern("R", v(0), v(1)), body...)
}

// Cycle returns the cyclic metaquery with an m-cycle body (m >= 3):
//
//	R(X0,X1) <- P1(X0,X1), ..., Pm(Xm-1,X0)
func Cycle(m int) (*core.Metaquery, error) {
	if m < 3 {
		return nil, fmt.Errorf("generate: cycle size %d", m)
	}
	v := func(i int) string { return fmt.Sprintf("X%d", i%m) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i+1), v(i), v(i+1))
	}
	return core.NewMetaquery(core.Pattern("R", v(0), v(1)), body...)
}

// SameArity returns the inclusion-style template for arity a:
//
//	R(X1..Xa) <- P(X1..Xa)
//
// whose answers under type-1/2 discover containments up to column
// permutation and projection (the §2.2 reengineering pattern).
func SameArity(a int) (*core.Metaquery, error) {
	if a < 1 {
		return nil, fmt.Errorf("generate: arity %d", a)
	}
	vars := make([]string, a)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i+1)
	}
	return core.NewMetaquery(core.Pattern("R", vars...), core.Pattern("P", vars...))
}

// Mine runs every generated metaquery against the database and collects
// the answers passing the thresholds, tagging each with its originating
// metaquery. Results are sorted by rule text. The search uses the naive
// engine via core.NaiveAnswers for simplicity; callers wanting the
// findRules engine can iterate FromSchema themselves.
func Mine(db *relation.Database, cfg Config, typ core.InstType, th core.Thresholds) ([]Mined, error) {
	mqs, err := FromSchema(db, cfg)
	if err != nil {
		return nil, err
	}
	var out []Mined
	for _, mq := range mqs {
		answers, err := core.NaiveAnswers(db, mq, typ, th)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			out = append(out, Mined{Metaquery: mq, Answer: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Answer.Rule.String(), out[j].Answer.Rule.String()
		if ri != rj {
			return ri < rj
		}
		return out[i].Metaquery.String() < out[j].Metaquery.String()
	})
	return out, nil
}

// Mined couples an answer with the metaquery that produced it.
type Mined struct {
	Metaquery *core.Metaquery
	Answer    core.Answer
}
