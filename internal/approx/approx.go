// Package approx implements the statistical core of the sampling-based
// approximate index decider: confidence intervals for a sampled fraction
// (Hoeffding and Wilson forms) and a sequential early-verdict test that
// answers "is the fraction > k?" at confidence 1−δ as soon as the interval
// clears the threshold, escalating to exact evaluation when the interval
// still straddles k after a sample budget.
//
// The paper's plausibility indices (sup/cnf/cvr, Definition 2.6) are all
// fractions |t ⋉ u| / |t| of a denominator table t, so one Bernoulli
// abstraction covers all three: draw uniform rows of t, test membership of
// each row's shared-column projection in u, and feed the hit counts into a
// Seq. The engine (internal/engine.DecideApprox) owns the sampling and the
// membership probes; this package owns only the mathematics, which keeps it
// independently property-testable against exhaustive small-population
// enumeration.
//
// Error accounting: verdicts are checked at geometrically spaced sample
// counts (16, 32, 64, …, budget) with the δ budget split evenly across
// checkpoints, so by the union bound the probability that any checkpoint's
// Hoeffding interval excludes the true fraction is at most δ. A cleared
// interval therefore gives the verdict at confidence 1−δ; an exhausted
// budget yields Escalate (or Exact when the budget covered the whole
// population, since the samplers draw without replacement).
package approx

import (
	"fmt"
	"math"
)

// Params configures one ε–δ decision.
type Params struct {
	// Epsilon is the half-width of the indifference band around the
	// threshold: outside [k−ε, k+ε] the decider's verdicts are wrong with
	// probability at most Delta; inside the band it escalates to exact
	// evaluation (given a sufficient budget) rather than guess.
	Epsilon float64
	// Delta bounds the probability of a wrong sampled verdict.
	Delta float64
	// MaxSamples is the per-fraction sample budget before escalation.
	// 0 forces immediate escalation: every fraction is evaluated exactly.
	MaxSamples int
}

// Validate reports whether the parameters denote a meaningful ε–δ decision:
// ε and δ strictly inside (0, 1), a non-negative budget.
func (p Params) Validate() error {
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return fmt.Errorf("approx: epsilon %v outside (0, 1)", p.Epsilon)
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("approx: delta %v outside (0, 1)", p.Delta)
	}
	if p.MaxSamples < 0 {
		return fmt.Errorf("approx: negative sample budget %d", p.MaxSamples)
	}
	return nil
}

// SamplesFor returns the Hoeffding sample count at which a two-sided
// interval at confidence 1−delta has half-width at most eps:
// ⌈ln(2/δ) / (2ε²)⌉. It is the natural default budget for Params: at that
// count an interval that still straddles k certifies the true fraction is
// within ±ε of the threshold, i.e. escalation only happens inside the band.
func SamplesFor(eps, delta float64) int {
	if !(eps > 0) || !(delta > 0) {
		return 0
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// Hoeffding returns the two-sided Hoeffding confidence interval for the
// true fraction p after observing m successes in n draws, at confidence
// 1−delta: p̂ ± sqrt(ln(2/δ)/(2n)), clamped to [0, 1]. The bound is
// distribution-free and, for draws without replacement, conservative
// (hypergeometric tails are dominated by binomial ones, Hoeffding 1963 §6).
func Hoeffding(m, n int, delta float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	phat := float64(m) / float64(n)
	w := math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
	return clamp01(phat - w), clamp01(phat + w)
}

// Wilson returns the Wilson score interval for the true fraction p after m
// successes in n draws, at confidence 1−delta. It is asymptotically tighter
// than Hoeffding near p ∈ {0, 1} — the regime NO-heavy decisions live in —
// but its coverage is approximate (normal-theory), so the sequential
// decider uses Hoeffding for its guarantee and Wilson only as a diagnostic.
func Wilson(m, n int, delta float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	phat := float64(m) / float64(n)
	z := math.Sqrt2 * math.Erfinv(1-delta)
	z2 := z * z
	nf := float64(n)
	denom := 1 + z2/nf
	center := (phat + z2/(2*nf)) / denom
	hw := z / denom * math.Sqrt(phat*(1-phat)/nf+z2/(4*nf*nf))
	lo, hi = clamp01(center-hw), clamp01(center+hw)
	// At the extremes the closed form evaluates to exactly 0 and 1 on
	// paper; pin them so float rounding cannot exclude a boundary truth.
	if m == 0 {
		lo = 0
	}
	if m == n {
		hi = 1
	}
	return lo, hi
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Verdict is the state of one sequential fraction test.
type Verdict int

const (
	// None: undecided, more samples wanted (Batch says how many).
	None Verdict = iota
	// Above: fraction > k at confidence 1−δ.
	Above
	// Below: fraction ≤ k at confidence 1−δ.
	Below
	// Exact: the whole population was drawn (without replacement), so
	// Counts returns the exact fraction and no confidence is involved.
	Exact
	// Escalate: the budget is exhausted and the interval still straddles
	// k; the caller must evaluate the fraction exactly.
	Escalate
)

func (v Verdict) String() string {
	switch v {
	case None:
		return "none"
	case Above:
		return "above"
	case Below:
		return "below"
	case Exact:
		return "exact"
	default:
		return "escalate"
	}
}

// firstCheckpoint is the sample count of the first verdict check; later
// checkpoints double up to the budget.
const firstCheckpoint = 16

// Seq is the sequential early-verdict test for one fraction over a
// population of known size: feed it batches of Bernoulli outcomes (Batch
// tells the caller how many draws to perform before the next checkpoint)
// and it settles on a Verdict. The δ budget is split evenly across the
// geometric checkpoint schedule, so the overall error probability of a
// cleared interval stays at most δ despite the repeated looks.
type Seq struct {
	k        float64
	pop      int
	budget   int
	deltaPer float64
	m, n     int
	next     int // sample count of the next checkpoint
	verdict  Verdict
}

// NewSeq starts a sequential test of "fraction > k" over a population of
// pop rows. The effective budget is min(p.MaxSamples, pop): draws are
// without replacement, so covering the population yields an Exact verdict.
// A zero budget (or an immediate straddle with pop > 0) yields Escalate
// without any draws; an empty population is Exact with counts 0/0.
func NewSeq(k float64, pop int, p Params) *Seq {
	s := &Seq{k: k, pop: pop, budget: min(p.MaxSamples, pop)}
	if pop == 0 {
		s.verdict = Exact
		return s
	}
	if s.budget <= 0 {
		s.verdict = Escalate
		return s
	}
	s.next = min(firstCheckpoint, s.budget)
	checks := 1
	for c := s.next; c < s.budget; {
		c = min(2*c, s.budget)
		checks++
	}
	s.deltaPer = p.Delta / float64(checks)
	return s
}

// Batch returns how many draws the caller should perform before the next
// Observe, or 0 once the test has settled.
func (s *Seq) Batch() int {
	if s.verdict != None {
		return 0
	}
	return s.next - s.n
}

// Observe records a batch of draws (hits successes out of drawn) and, at a
// checkpoint, re-tests the interval against the threshold.
func (s *Seq) Observe(hits, drawn int) {
	s.m += hits
	s.n += drawn
	if s.verdict != None || s.n < s.next {
		return
	}
	lo, hi := Hoeffding(s.m, s.n, s.deltaPer)
	switch {
	case lo > s.k:
		s.verdict = Above
	case hi <= s.k:
		s.verdict = Below
	case s.n >= s.pop:
		s.verdict = Exact
	case s.n >= s.budget:
		s.verdict = Escalate
	default:
		s.next = min(2*s.next, s.budget)
	}
}

// Verdict returns the test's current state.
func (s *Seq) Verdict() Verdict { return s.verdict }

// Counts returns the successes and draws observed so far. Under an Exact
// verdict m/n is the true fraction (0/0 for an empty population).
func (s *Seq) Counts() (m, n int) { return s.m, s.n }

// Drawn returns the number of draws observed so far.
func (s *Seq) Drawn() int { return s.n }

// Interval returns the current Hoeffding interval at the per-checkpoint
// confidence level, for diagnostics.
func (s *Seq) Interval() (lo, hi float64) {
	if s.pop == 0 {
		return 0, 0
	}
	return Hoeffding(s.m, s.n, s.deltaPer)
}
