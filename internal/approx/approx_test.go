package approx

import (
	"math"
	"math/bits"
	"testing"
)

// binomPMF returns the Binomial(n, p) probability mass at m, via a Pascal
// row product (n ≤ ~50 keeps this well inside float64 range).
func binomPMF(m, n int, p float64) float64 {
	c := 1.0
	for i := 0; i < m; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(m)) * math.Pow(1-p, float64(n-m))
}

// TestHoeffdingCoverageBinomial exhaustively sums the binomial mass of the
// outcomes whose interval covers the true fraction: for every (n, p) the
// covered mass must be at least 1−δ — Hoeffding is a guaranteed, not an
// approximate, bound.
func TestHoeffdingCoverageBinomial(t *testing.T) {
	const delta = 0.2
	for _, n := range []int{1, 2, 5, 10, 25, 40} {
		for num := 0; num <= 12; num++ {
			p := float64(num) / 12
			covered := 0.0
			for m := 0; m <= n; m++ {
				lo, hi := Hoeffding(m, n, delta)
				if lo <= p && p <= hi {
					covered += binomPMF(m, n, p)
				}
			}
			if covered < 1-delta-1e-9 {
				t.Errorf("Hoeffding n=%d p=%v: coverage %v < %v", n, p, covered, 1-delta)
			}
		}
	}
}

// TestWilsonCoverageBinomial: Wilson is normal-theory, so its coverage is
// only approximately 1−δ; the test allows a 1.5δ miscoverage slack (and
// skips the tiny n where Wilson is known to dip further) but still catches
// sign errors, swapped bounds, or a wrong z quantile.
func TestWilsonCoverageBinomial(t *testing.T) {
	const delta = 0.2
	for _, n := range []int{10, 25, 40} {
		for num := 0; num <= 12; num++ {
			p := float64(num) / 12
			covered := 0.0
			for m := 0; m <= n; m++ {
				lo, hi := Wilson(m, n, delta)
				if lo <= p && p <= hi {
					covered += binomPMF(m, n, p)
				}
			}
			if covered < 1-1.5*delta {
				t.Errorf("Wilson n=%d p=%v: coverage %v < %v", n, p, covered, 1-1.5*delta)
			}
		}
	}
}

// TestHoeffdingCoverageHypergeometric enumerates every n-subset of a small
// population (the engine samples without replacement) and checks that the
// fraction of subsets whose interval misses the true fraction is at most δ:
// without-replacement tails are dominated by binomial ones (Hoeffding 1963
// §6), so the same bound must hold exhaustively.
func TestHoeffdingCoverageHypergeometric(t *testing.T) {
	const delta = 0.2
	for _, N := range []int{6, 8, 10} {
		for K := 0; K <= N; K++ {
			p := float64(K) / float64(N)
			for n := 1; n <= N; n++ {
				miss, total := 0, 0
				for mask := 0; mask < 1<<N; mask++ {
					if bits.OnesCount(uint(mask)) != n {
						continue
					}
					m := bits.OnesCount(uint(mask) & (1<<K - 1)) // successes = rows < K
					lo, hi := Hoeffding(m, n, delta)
					total++
					if p < lo || p > hi {
						miss++
					}
				}
				if float64(miss) > delta*float64(total)+1e-9 {
					t.Errorf("N=%d K=%d n=%d: %d/%d subsets miss (> δ=%v)", N, K, n, miss, total, delta)
				}
			}
		}
	}
}

// TestIntervalShape checks structural properties on a grid: bounds ordered,
// clamped to [0, 1], containing the point estimate, and shrinking with n.
func TestIntervalShape(t *testing.T) {
	for _, f := range []struct {
		name string
		ci   func(m, n int, delta float64) (float64, float64)
	}{{"hoeffding", Hoeffding}, {"wilson", Wilson}} {
		for _, n := range []int{1, 4, 16, 64, 256} {
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				m := int(frac * float64(n))
				lo, hi := f.ci(m, n, 0.1)
				phat := float64(m) / float64(n)
				if lo < 0 || hi > 1 || lo > hi {
					t.Fatalf("%s(%d,%d): malformed interval [%v, %v]", f.name, m, n, lo, hi)
				}
				if phat < lo-1e-12 || phat > hi+1e-12 {
					t.Fatalf("%s(%d,%d): p̂=%v outside [%v, %v]", f.name, m, n, phat, lo, hi)
				}
				lo4, hi4 := f.ci(4*m, 4*n, 0.1)
				if hi4-lo4 > hi-lo+1e-12 {
					t.Fatalf("%s: interval grew with n: %v at n=%d vs %v at n=%d", f.name, hi4-lo4, 4*n, hi-lo, n)
				}
			}
		}
		lo, hi := f.ci(0, 0, 0.1)
		if lo != 0 || hi != 1 {
			t.Fatalf("%s with no draws: [%v, %v], want vacuous [0, 1]", f.name, lo, hi)
		}
	}
}

// TestSamplesFor: at the returned count the Hoeffding half-width is at most
// eps, and one draw fewer is not (minimality).
func TestSamplesFor(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05, 0.125, 0.3} {
		for _, delta := range []float64{0.01, 0.1, 0.25} {
			n := SamplesFor(eps, delta)
			if n <= 0 {
				t.Fatalf("SamplesFor(%v, %v) = %d", eps, delta, n)
			}
			w := math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
			if w > eps+1e-12 {
				t.Fatalf("SamplesFor(%v, %v) = %d: half-width %v > eps", eps, delta, n, w)
			}
			if n > 1 {
				wPrev := math.Sqrt(math.Log(2/delta) / (2 * float64(n-1)))
				if wPrev <= eps-1e-12 {
					t.Fatalf("SamplesFor(%v, %v) = %d not minimal", eps, delta, n)
				}
			}
		}
	}
	if SamplesFor(0, 0.1) != 0 || SamplesFor(0.1, 0) != 0 {
		t.Fatal("degenerate SamplesFor should be 0")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Epsilon: 0.1, Delta: 0.05, MaxSamples: 100}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, p := range []Params{
		{Epsilon: 0, Delta: 0.05},
		{Epsilon: 1, Delta: 0.05},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 0.1, Delta: 1},
		{Epsilon: math.NaN(), Delta: 0.05},
		{Epsilon: 0.1, Delta: 0.05, MaxSamples: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid params %+v accepted", p)
		}
	}
}

// drive feeds a Seq batches from a deterministic hit pattern until it
// settles, returning the verdict.
func drive(s *Seq, hit func(i int) bool) Verdict {
	i := 0
	for {
		b := s.Batch()
		if b == 0 {
			return s.Verdict()
		}
		hits := 0
		for j := 0; j < b; j++ {
			if hit(i) {
				hits++
			}
			i++
		}
		s.Observe(hits, b)
	}
}

func TestSeqEdgeCases(t *testing.T) {
	par := Params{Epsilon: 0.1, Delta: 0.1, MaxSamples: 256}

	// Empty population (an empty relation, or an all-tombstone epoch whose
	// live row count is 0): immediately Exact with counts 0/0.
	s := NewSeq(0.5, 0, par)
	if s.Verdict() != Exact || s.Batch() != 0 {
		t.Fatalf("empty population: verdict %v batch %d", s.Verdict(), s.Batch())
	}
	if m, n := s.Counts(); m != 0 || n != 0 {
		t.Fatalf("empty population counts %d/%d", m, n)
	}

	// MaxSamples = 0 forces immediate escalation, no draws requested.
	s = NewSeq(0.5, 1000, Params{Epsilon: 0.1, Delta: 0.1, MaxSamples: 0})
	if s.Verdict() != Escalate || s.Batch() != 0 || s.Drawn() != 0 {
		t.Fatalf("zero budget: verdict %v batch %d drawn %d", s.Verdict(), s.Batch(), s.Drawn())
	}

	// Threshold exactly 1: "fraction > 1" is unsatisfiable, and the clamped
	// upper bound certifies Below at the very first checkpoint even when
	// every draw hits.
	s = NewSeq(1, 1000, par)
	if v := drive(s, func(int) bool { return true }); v != Below {
		t.Fatalf("k=1 all hits: verdict %v, want Below", v)
	}
	if s.Drawn() != firstCheckpoint {
		t.Fatalf("k=1 settled after %d draws, want %d", s.Drawn(), firstCheckpoint)
	}

	// Threshold exactly 0 with all hits: Above at the first checkpoint.
	s = NewSeq(0, 1000, par)
	if v := drive(s, func(int) bool { return true }); v != Above {
		t.Fatalf("k=0 all hits: verdict %v, want Above", v)
	}

	// Threshold exactly 0 with no hits: sampling can never certify p = 0
	// (the interval's upper end stays positive), so the test must run out
	// of budget and escalate rather than answer.
	s = NewSeq(0, 1000, par)
	if v := drive(s, func(int) bool { return false }); v != Escalate {
		t.Fatalf("k=0 no hits: verdict %v, want Escalate", v)
	}
	if s.Drawn() != par.MaxSamples {
		t.Fatalf("k=0 no hits drew %d, want full budget %d", s.Drawn(), par.MaxSamples)
	}

	// Straddling fraction: p̂ pinned to k → budget exhausted → Escalate.
	s = NewSeq(0.5, 100000, par)
	if v := drive(s, func(i int) bool { return i%2 == 0 }); v != Escalate {
		t.Fatalf("straddling: verdict %v, want Escalate", v)
	}

	// Budget covering the whole population: without-replacement exhaustion
	// is Exact, not Escalate, and the counts are the true fraction.
	s = NewSeq(0.5, 20, par)
	if v := drive(s, func(i int) bool { return i%2 == 0 }); v != Exact {
		t.Fatalf("full coverage: verdict %v, want Exact", v)
	}
	if m, n := s.Counts(); m != 10 || n != 20 {
		t.Fatalf("full coverage counts %d/%d, want 10/20", m, n)
	}

	// Clear cases decide early: far-above and far-below fractions settle at
	// the first checkpoint, long before the budget.
	s = NewSeq(0.5, 100000, par)
	if v := drive(s, func(int) bool { return true }); v != Above || s.Drawn() != firstCheckpoint {
		t.Fatalf("clear YES: verdict %v after %d draws", v, s.Drawn())
	}
	s = NewSeq(0.5, 100000, par)
	if v := drive(s, func(int) bool { return false }); v != Below || s.Drawn() != firstCheckpoint {
		t.Fatalf("clear NO: verdict %v after %d draws", v, s.Drawn())
	}
}

// TestSeqErrorBudget: the per-checkpoint δ split must cover every
// checkpoint of the geometric schedule — a Seq driven to its budget sees
// exactly the planned number of looks.
func TestSeqErrorBudget(t *testing.T) {
	par := Params{Epsilon: 0.05, Delta: 0.1, MaxSamples: 300}
	s := NewSeq(0.5, 100000, par)
	looks := 0
	i := 0
	for s.Verdict() == None {
		b := s.Batch()
		hits := 0
		for j := 0; j < b; j++ {
			if i%2 == 0 {
				hits++
			}
			i++
		}
		s.Observe(hits, b)
		looks++
	}
	// Schedule: 16, 32, 64, 128, 256, 300 → 6 looks.
	if looks != 6 {
		t.Fatalf("looks = %d, want 6", looks)
	}
	if want := 0.1 / 6; math.Abs(s.deltaPer-want) > 1e-12 {
		t.Fatalf("deltaPer = %v, want %v", s.deltaPer, want)
	}
}

// TestVerdictString pins the diagnostic renderings.
func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		None: "none", Above: "above", Below: "below",
		Exact: "exact", Escalate: "escalate",
	} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, got, want)
		}
	}
}

// TestSeqInterval checks the diagnostic interval: centered on the observed
// fraction, clamped to [0, 1], and degenerate for an empty population.
func TestSeqInterval(t *testing.T) {
	s := NewSeq(0.5, 1000, Params{Epsilon: 0.1, Delta: 0.1, MaxSamples: 64})
	s.Observe(8, 16)
	lo, hi := s.Interval()
	if lo < 0 || hi > 1 || lo > 0.5 || hi < 0.5 {
		t.Errorf("interval after 8/16 = [%g, %g], want it to bracket 0.5 within [0, 1]", lo, hi)
	}
	empty := NewSeq(0.5, 0, Params{Epsilon: 0.1, Delta: 0.1, MaxSamples: 64})
	if lo, hi := empty.Interval(); lo != 0 || hi != 0 {
		t.Errorf("empty-population interval = [%g, %g], want [0, 0]", lo, hi)
	}
}
