// Package circuit implements the bounded-depth circuit substrate of the
// paper's data-complexity results (Section 3.5): boolean circuits with
// unbounded fan-in AND/OR/NOT and MAJORITY gates (Definitions 3.3/3.4),
// arithmetic +/× gates in the #AC0 style (Definition 3.5), and the explicit
// circuit families of Theorems 3.37 (metaquerying with k = 0 is in AC0) and
// 3.38 (metaquerying is in TC0).
//
// The constructions follow the proofs: for a fixed metaquery, threshold and
// instantiation type, a circuit family indexed by database size answers the
// decision problem; depth is constant and size polynomial in the database.
// The integer comparison b·|Qn| > a·|Qd| of Lemma 3.39 is realized by an
// explicit comparator gate over the counting sub-circuits rather than a
// MAJORITY-gate simulation of iterated addition; Proposition 3.8
// (PAC0 = TC0) equates the two models. See DESIGN.md, "Substitutions".
package circuit

import (
	"fmt"
)

// Kind enumerates gate kinds.
type Kind int

const (
	// KInput is a named 0/1 input (one per potential database tuple).
	KInput Kind = iota
	// KConst is an integer constant.
	KConst
	// KAnd is unbounded fan-in boolean AND.
	KAnd
	// KOr is unbounded fan-in boolean OR.
	KOr
	// KNot is boolean negation.
	KNot
	// KMajority outputs 1 iff more than half of its inputs are non-zero
	// (Definition 3.3).
	KMajority
	// KPlus is the unbounded fan-in arithmetic sum of #AC0.
	KPlus
	// KTimes is the unbounded fan-in arithmetic product of #AC0.
	KTimes
	// KGreater outputs 1 iff its first input is strictly greater than its
	// second (the Lemma 3.39 comparator; see the package comment).
	KGreater
)

// String names the gate kind.
func (k Kind) String() string {
	switch k {
	case KInput:
		return "input"
	case KConst:
		return "const"
	case KAnd:
		return "and"
	case KOr:
		return "or"
	case KNot:
		return "not"
	case KMajority:
		return "majority"
	case KPlus:
		return "plus"
	case KTimes:
		return "times"
	case KGreater:
		return "greater"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

type gate struct {
	kind  Kind
	args  []int
	val   int64  // KConst
	name  string // KInput
	depth int
}

// Circuit is a DAG of gates with one output. Build circuits through the
// constructor methods; gates are append-only.
type Circuit struct {
	gates  []gate
	output int
	inputs map[string]int
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{inputs: make(map[string]int)}
}

func (c *Circuit) add(g gate) int {
	d := 0
	for _, a := range g.args {
		if c.gates[a].depth+1 > d {
			d = c.gates[a].depth + 1
		}
	}
	if g.kind == KInput || g.kind == KConst {
		d = 0
	}
	g.depth = d
	c.gates = append(c.gates, g)
	return len(c.gates) - 1
}

// Input returns the gate index for the named input, creating it on first
// use. Input names identify potential database tuples.
func (c *Circuit) Input(name string) int {
	if i, ok := c.inputs[name]; ok {
		return i
	}
	i := c.add(gate{kind: KInput, name: name})
	c.inputs[name] = i
	return i
}

// Const returns a constant gate.
func (c *Circuit) Const(v int64) int { return c.add(gate{kind: KConst, val: v}) }

// And adds an AND gate. With no arguments it is the constant 1.
func (c *Circuit) And(args ...int) int { return c.add(gate{kind: KAnd, args: args}) }

// Or adds an OR gate. With no arguments it is the constant 0.
func (c *Circuit) Or(args ...int) int { return c.add(gate{kind: KOr, args: args}) }

// Not adds a NOT gate.
func (c *Circuit) Not(x int) int { return c.add(gate{kind: KNot, args: []int{x}}) }

// Majority adds a MAJORITY gate.
func (c *Circuit) Majority(args ...int) int { return c.add(gate{kind: KMajority, args: args}) }

// Plus adds an arithmetic sum gate.
func (c *Circuit) Plus(args ...int) int { return c.add(gate{kind: KPlus, args: args}) }

// Times adds an arithmetic product gate.
func (c *Circuit) Times(args ...int) int { return c.add(gate{kind: KTimes, args: args}) }

// Greater adds a strict comparison gate a > b.
func (c *Circuit) Greater(a, b int) int { return c.add(gate{kind: KGreater, args: []int{a, b}}) }

// SetOutput designates the output gate.
func (c *Circuit) SetOutput(g int) { c.output = g }

// NumInputs returns the number of input gates.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// Size returns the number of non-input, non-constant gates.
func (c *Circuit) Size() int {
	n := 0
	for _, g := range c.gates {
		if g.kind != KInput && g.kind != KConst {
			n++
		}
	}
	return n
}

// Depth returns the depth of the output gate (inputs and constants have
// depth 0).
func (c *Circuit) Depth() int { return c.gates[c.output].depth }

// KindCounts returns how many gates of each kind the circuit contains.
func (c *Circuit) KindCounts() map[Kind]int {
	out := map[Kind]int{}
	for _, g := range c.gates {
		out[g.kind]++
	}
	return out
}

// Eval evaluates the circuit. Inputs absent from the assignment read 0.
// Boolean gates treat any non-zero value as true and yield 0/1.
func (c *Circuit) Eval(assign map[string]int64) int64 {
	vals := make([]int64, len(c.gates))
	for i, g := range c.gates {
		switch g.kind {
		case KInput:
			vals[i] = assign[g.name]
		case KConst:
			vals[i] = g.val
		case KAnd:
			v := int64(1)
			for _, a := range g.args {
				if vals[a] == 0 {
					v = 0
					break
				}
			}
			vals[i] = v
		case KOr:
			v := int64(0)
			for _, a := range g.args {
				if vals[a] != 0 {
					v = 1
					break
				}
			}
			vals[i] = v
		case KNot:
			if vals[g.args[0]] == 0 {
				vals[i] = 1
			} else {
				vals[i] = 0
			}
		case KMajority:
			nz := 0
			for _, a := range g.args {
				if vals[a] != 0 {
					nz++
				}
			}
			if 2*nz > len(g.args) {
				vals[i] = 1
			}
		case KPlus:
			var v int64
			for _, a := range g.args {
				v += vals[a]
			}
			vals[i] = v
		case KTimes:
			v := int64(1)
			for _, a := range g.args {
				v *= vals[a]
			}
			vals[i] = v
		case KGreater:
			if vals[g.args[0]] > vals[g.args[1]] {
				vals[i] = 1
			}
		}
	}
	return vals[c.output]
}
