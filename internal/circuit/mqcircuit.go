package circuit

import (
	"fmt"
	"strings"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// RelSchema fixes one relation's name and arity; under the data complexity
// measure the database schema is fixed in advance (Section 3.2).
type RelSchema struct {
	Name  string
	Arity int
}

// Schema is a fixed database schema.
type Schema []RelSchema

// SchemaOf extracts the schema of a concrete database.
func SchemaOf(db *relation.Database) Schema {
	var s Schema
	for _, name := range db.RelationNames() {
		s = append(s, RelSchema{Name: name, Arity: db.Relation(name).Arity()})
	}
	return s
}

// prototype builds an empty database with the schema, used to enumerate
// instantiations (which depend only on relation names and arities).
func (s Schema) prototype() *relation.Database {
	db := relation.NewDatabase()
	for _, r := range s {
		db.MustAddRelation(r.Name, r.Arity)
	}
	return db
}

// InputName names the circuit input bit for tuple t of relation rel;
// domain elements are identified with 0..d-1.
func InputName(rel string, t []int) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return rel + "[" + strings.Join(parts, ",") + "]"
}

// Assignment encodes a database over a domain of size <= d as circuit
// inputs: the bit for tuple t of relation r is 1 iff t ∈ r. Database values
// are identified with their dictionary indices, which must be < d.
func Assignment(db *relation.Database, d int) (map[string]int64, error) {
	if db.Dict().Size() > d {
		return nil, fmt.Errorf("circuit: database active domain %d exceeds circuit domain %d", db.Dict().Size(), d)
	}
	out := make(map[string]int64)
	for _, name := range db.RelationNames() {
		for _, tup := range db.Relation(name).Tuples() {
			t := make([]int, len(tup))
			for i, v := range tup {
				t[i] = int(v)
			}
			out[InputName(name, t)] = 1
		}
	}
	return out, nil
}

// atomBit returns the input gate for atom a under the variable assignment
// asn (variable -> domain element); constant terms use their values
// directly. ok is false when a constant exceeds the domain.
func atomBit(c *Circuit, a relation.Atom, asn map[string]int, d int) (int, bool) {
	t := make([]int, len(a.Terms))
	for i, term := range a.Terms {
		if term.IsVar() {
			t[i] = asn[term.Var]
		} else {
			if int(term.Const) >= d {
				return 0, false
			}
			t[i] = int(term.Const)
		}
	}
	return c.Input(InputName(a.Pred, t)), true
}

// forEachAssignment enumerates all maps vars -> {0..d-1}.
func forEachAssignment(vars []string, d int, f func(map[string]int)) {
	asn := make(map[string]int, len(vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			f(asn)
			return
		}
		for v := 0; v < d; v++ {
			asn[vars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// cqSatGate builds the depth-2 OR-of-ANDs deciding whether the atom set is
// satisfiable over the domain: OR over substitutions of AND over atom bits
// (the conjunctive-query circuits of [6] used in Theorem 3.37's proof).
func cqSatGate(c *Circuit, atoms []relation.Atom, d int) int {
	vars := relation.AtomsVars(atoms)
	var ors []int
	forEachAssignment(vars, d, func(asn map[string]int) {
		var ands []int
		ok := true
		for _, a := range atoms {
			bit, valid := atomBit(c, a, asn, d)
			if !valid {
				ok = false
				break
			}
			ands = append(ands, bit)
		}
		if ok {
			ors = append(ors, c.And(ands...))
		}
	})
	return c.Or(ors...)
}

// countGate builds the #AC0-style counting circuit for the number of
// distinct outVars-assignments that satisfy all atoms (extensions over the
// remaining variables are absorbed by an inner OR): the circuits
// {count(Q)_i} of Theorem 3.38's proof.
func countGate(c *Circuit, atoms []relation.Atom, outVars []string, d int) int {
	all := relation.AtomsVars(atoms)
	inner := make([]string, 0, len(all))
	outSet := map[string]bool{}
	for _, v := range outVars {
		outSet[v] = true
	}
	for _, v := range all {
		if !outSet[v] {
			inner = append(inner, v)
		}
	}
	var bits []int
	forEachAssignment(outVars, d, func(outer map[string]int) {
		fixed := make(map[string]int, len(outer))
		for k, v := range outer {
			fixed[k] = v
		}
		var ors []int
		forEachAssignment(inner, d, func(innerAsn map[string]int) {
			asn := make(map[string]int, len(fixed)+len(innerAsn))
			for k, v := range fixed {
				asn[k] = v
			}
			for k, v := range innerAsn {
				asn[k] = v
			}
			var ands []int
			ok := true
			for _, a := range atoms {
				bit, valid := atomBit(c, a, asn, d)
				if !valid {
					ok = false
					break
				}
				ands = append(ands, bit)
			}
			if ok {
				ors = append(ors, c.And(ands...))
			}
		})
		bits = append(bits, c.Or(ors...))
	})
	return c.Plus(bits...)
}

// BuildExistsMQ constructs the Theorem 3.37 AC0 circuit: for the fixed
// metaquery, index and instantiation type, and for databases with the given
// schema and domain size d, the circuit outputs 1 iff some type-T
// instantiation has I(σ(MQ)) > 0. It is the OR, over the (constantly many)
// instantiations, of the certifying-set satisfiability circuits.
func BuildExistsMQ(schema Schema, d int, mq *core.Metaquery, ix core.Index, typ core.InstType) (*Circuit, error) {
	proto := schema.prototype()
	c := New()
	var ors []int
	err := core.ForEachInstantiation(proto, mq, typ, func(sigma *core.Instantiation) (bool, error) {
		rule, err := sigma.Apply(mq)
		if err != nil {
			return false, err
		}
		ors = append(ors, cqSatGate(c, core.CertifyingSet(ix, rule), d))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	c.SetOutput(c.Or(ors...))
	return c, nil
}

// BuildThresholdMQ constructs the Theorem 3.38 TC0-style circuit deciding
// whether some type-T instantiation has I(σ(MQ)) > k, with k = a/b. Per
// instantiation and per Lemma 3.39 it compares b·|Qn| > a·|Qd| over
// counting subcircuits; for sup the comparison is OR-ed over body atoms.
func BuildThresholdMQ(schema Schema, d int, mq *core.Metaquery, ix core.Index, k rat.Rat, typ core.InstType) (*Circuit, error) {
	proto := schema.prototype()
	c := New()
	a, b := k.Num(), k.Den()
	aGate, bGate := c.Const(a), c.Const(b)
	var ors []int
	err := core.ForEachInstantiation(proto, mq, typ, func(sigma *core.Instantiation) (bool, error) {
		rule, err := sigma.Apply(mq)
		if err != nil {
			return false, err
		}
		body := rule.BodyAtoms()
		switch ix {
		case core.Cnf:
			// Qn: att(body)-assignments satisfying body ∧ head; Qd: |J(body)|.
			bodyVars := relation.AtomsVars(body)
			qn := countGate(c, append(append([]relation.Atom{}, body...), rule.Head), bodyVars, d)
			qd := countGate(c, body, bodyVars, d)
			ors = append(ors, c.Greater(c.Times(bGate, qn), c.Times(aGate, qd)))
		case core.Cvr:
			headVars := rule.Head.Vars()
			qn := countGate(c, append(append([]relation.Atom{}, body...), rule.Head), headVars, d)
			qd := countGate(c, []relation.Atom{rule.Head}, headVars, d)
			ors = append(ors, c.Greater(c.Times(bGate, qn), c.Times(aGate, qd)))
		case core.Sup:
			for _, atom := range body {
				av := atom.Vars()
				qn := countGate(c, body, av, d)
				qd := countGate(c, []relation.Atom{atom}, av, d)
				ors = append(ors, c.Greater(c.Times(bGate, qn), c.Times(aGate, qd)))
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	c.SetOutput(c.Or(ors...))
	return c, nil
}
