package circuit

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func TestGateEvaluation(t *testing.T) {
	c := New()
	x, y := c.Input("x"), c.Input("y")
	and := c.And(x, y)
	or := c.Or(x, y)
	not := c.Not(x)
	maj := c.Majority(x, y, c.Const(1))
	plus := c.Plus(x, y, c.Const(3))
	times := c.Times(c.Const(2), plus)
	gt := c.Greater(times, c.Const(7))

	eval := func(out int, asn map[string]int64) int64 {
		c.SetOutput(out)
		return c.Eval(asn)
	}
	one := map[string]int64{"x": 1, "y": 0}
	if eval(and, one) != 0 || eval(or, one) != 1 || eval(not, one) != 0 {
		t.Error("boolean gates wrong")
	}
	if eval(maj, one) != 1 { // 2 of 3 non-zero
		t.Error("majority wrong")
	}
	if eval(plus, one) != 4 || eval(times, one) != 8 {
		t.Error("arithmetic gates wrong")
	}
	if eval(gt, one) != 1 {
		t.Error("greater wrong")
	}
	if eval(gt, map[string]int64{"x": 0, "y": 0}) != 0 { // 2*3 > 7 false
		t.Error("greater boundary wrong")
	}
}

func TestMajorityStrict(t *testing.T) {
	c := New()
	x, y := c.Input("x"), c.Input("y")
	c.SetOutput(c.Majority(x, y))
	// Exactly half non-zero is NOT a majority.
	if c.Eval(map[string]int64{"x": 1, "y": 0}) != 0 {
		t.Error("half inputs must not satisfy MAJORITY")
	}
	if c.Eval(map[string]int64{"x": 1, "y": 1}) != 1 {
		t.Error("all inputs must satisfy MAJORITY")
	}
}

func TestDepthAndSize(t *testing.T) {
	c := New()
	x := c.Input("x")
	n := c.Not(x)
	a := c.And(x, n)
	o := c.Or(a, n)
	c.SetOutput(o)
	if c.Depth() != 3 {
		t.Errorf("depth = %d, want 3", c.Depth())
	}
	if c.Size() != 3 {
		t.Errorf("size = %d, want 3", c.Size())
	}
	if c.NumInputs() != 1 {
		t.Errorf("inputs = %d", c.NumInputs())
	}
}

func TestInputDedup(t *testing.T) {
	c := New()
	a := c.Input("p[0,1]")
	b := c.Input("p[0,1]")
	if a != b {
		t.Error("duplicate input gates")
	}
}

// randomDBWithSchema builds a database over constants "0".."d-1" using the
// schema, interning all domain constants so values equal indices.
func randomDBWithSchema(rng *rand.Rand, schema Schema, d, maxTuples int) *relation.Database {
	db := relation.NewDatabase()
	for i := 0; i < d; i++ {
		db.Dict().Intern(itoa(i))
	}
	for _, rs := range schema {
		db.MustAddRelation(rs.Name, rs.Arity)
		for i := 0; i < rng.Intn(maxTuples+1); i++ {
			row := make([]string, rs.Arity)
			for j := range row {
				row[j] = itoa(rng.Intn(d))
			}
			db.MustInsertNamed(rs.Name, row...)
		}
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Theorem 3.37: the AC0 circuit decides ⟨DB, MQ, I, 0, T⟩ exactly.
func TestExistsCircuitMatchesEngine(t *testing.T) {
	schema := Schema{{"p", 2}, {"q", 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	const d = 3
	for _, typ := range []core.InstType{core.Type0, core.Type1} {
		for _, ix := range core.AllIndices {
			circ, err := BuildExistsMQ(schema, d, mq, ix, typ)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 25; seed++ {
				rng := rand.New(rand.NewSource(seed))
				db := randomDBWithSchema(rng, schema, d, 5)
				asn, err := Assignment(db, d)
				if err != nil {
					t.Fatal(err)
				}
				got := circ.Eval(asn) != 0
				want, _, err := core.Decide(db, mq, ix, rat.Zero, typ)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s %s seed %d: circuit = %v, engine = %v", typ, ix, seed, got, want)
				}
			}
		}
	}
}

// Theorem 3.38: the TC0-style circuit decides ⟨DB, MQ, I, k, T⟩ exactly.
func TestThresholdCircuitMatchesEngine(t *testing.T) {
	schema := Schema{{"p", 2}, {"q", 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	const d = 3
	ks := []rat.Rat{rat.Zero, rat.New(1, 3), rat.New(1, 2), rat.New(3, 4)}
	for _, ix := range core.AllIndices {
		for _, k := range ks {
			circ, err := BuildThresholdMQ(schema, d, mq, ix, k, core.Type0)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				db := randomDBWithSchema(rng, schema, d, 5)
				asn, err := Assignment(db, d)
				if err != nil {
					t.Fatal(err)
				}
				got := circ.Eval(asn) != 0
				want, _, err := core.Decide(db, mq, ix, k, core.Type0)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s k=%v seed %d: circuit = %v, engine = %v", ix, k, seed, got, want)
				}
			}
		}
	}
}

// The family has constant depth and polynomially growing size as the
// domain grows — the shape of Theorems 3.37/3.38.
func TestCircuitFamilyShape(t *testing.T) {
	schema := Schema{{"p", 2}, {"q", 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	var depths []int
	var sizes []int
	for _, d := range []int{2, 3, 4, 5} {
		circ, err := BuildExistsMQ(schema, d, mq, core.Cnf, core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		depths = append(depths, circ.Depth())
		sizes = append(sizes, circ.Size())
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] != depths[0] {
			t.Errorf("depth not constant across domain sizes: %v", depths)
		}
		if sizes[i] <= sizes[i-1] {
			t.Errorf("size not growing: %v", sizes)
		}
	}
	// Size must stay polynomial: for this query it is Θ(instantiations · d^3).
	for i, d := range []int{2, 3, 4, 5} {
		bound := 27 * (d*d*d + 10) * 4
		if sizes[i] > bound {
			t.Errorf("size %d at domain %d exceeds polynomial bound %d", sizes[i], d, bound)
		}
	}
	// Threshold circuits likewise have constant depth.
	var tDepths []int
	for _, d := range []int{2, 3, 4} {
		circ, err := BuildThresholdMQ(schema, d, mq, core.Cnf, rat.New(1, 2), core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		tDepths = append(tDepths, circ.Depth())
	}
	for i := 1; i < len(tDepths); i++ {
		if tDepths[i] != tDepths[0] {
			t.Errorf("threshold depth not constant: %v", tDepths)
		}
	}
}

// With constants in certifying sets (via fully instantiated metaqueries)
// the circuits still agree; also tests the sup variant on a one-atom body.
func TestCircuitSingleAtomBody(t *testing.T) {
	schema := Schema{{"p", 2}, {"q", 2}}
	mq := core.MustParse("Q(X,Y) <- P(X,Y)")
	const d = 3
	circ, err := BuildThresholdMQ(schema, d, mq, core.Cvr, rat.New(1, 2), core.Type1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDBWithSchema(rng, schema, d, 4)
		asn, err := Assignment(db, d)
		if err != nil {
			t.Fatal(err)
		}
		got := circ.Eval(asn) != 0
		want, _, err := core.Decide(db, mq, core.Cvr, rat.New(1, 2), core.Type1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: circuit = %v, engine = %v", seed, got, want)
		}
	}
}

func TestAssignmentDomainCheck(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "c", "d")
	if _, err := Assignment(db, 2); err == nil {
		t.Error("oversized active domain accepted")
	}
	if _, err := Assignment(db, 4); err != nil {
		t.Errorf("valid domain rejected: %v", err)
	}
}

func TestKindCountsAndStrings(t *testing.T) {
	c := New()
	x := c.Input("x")
	c.SetOutput(c.And(x, c.Or(x)))
	counts := c.KindCounts()
	if counts[KInput] != 1 || counts[KAnd] != 1 || counts[KOr] != 1 {
		t.Errorf("counts = %v", counts)
	}
	for k := KInput; k <= KGreater; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}
