package engine

import (
	"context"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/workload"
)

// Breaking out of Stream after the first answer must abandon the remaining
// search: the recorded effort counters stay strictly below those of a full
// run of the same Prepared — on every axis, not just in aggregate — and the
// Prepared stays fully reusable afterwards (complete FindRules answer set,
// complete fresh stream). Complements TestStreamEarlyExitDoesLessWork
// (session_test.go), which compares against a fresh Prepared.
func TestStreamAbandonedSearchStatsAndReuse(t *testing.T) {
	db := workload.DB1()
	mq := workload.MQ4()
	eng := NewEngine(db)
	p, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the full search, counters included.
	full, fullStats, err := p.FindRulesStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("workload yields %d answers; the early-exit comparison needs at least 2", len(full))
	}

	// Early exit: break after the first streamed answer.
	var early Stats
	got := 0
	for _, serr := range p.StreamStats(context.Background(), &early) {
		if serr != nil {
			t.Fatal(serr)
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("streamed %d answers before break, want 1", got)
	}
	if early.Answers != 1 {
		t.Errorf("early stats report %d answers, want 1 (the delivered one)", early.Answers)
	}

	// Strictly less work on every search-effort axis that grows with the
	// explored candidate space.
	if early.BodyCandidatesTried >= fullStats.BodyCandidatesTried {
		t.Errorf("early exit tried %d body candidates, full run %d; want strictly less",
			early.BodyCandidatesTried, fullStats.BodyCandidatesTried)
	}
	if early.BodiesReachedRoot >= fullStats.BodiesReachedRoot {
		t.Errorf("early exit completed %d bodies, full run %d; want strictly less",
			early.BodiesReachedRoot, fullStats.BodiesReachedRoot)
	}
	if early.HeadsTried >= fullStats.HeadsTried {
		t.Errorf("early exit tried %d heads, full run %d; want strictly less",
			early.HeadsTried, fullStats.HeadsTried)
	}

	// The Prepared must remain reusable after an abandoned stream: a full
	// FindRules still returns the complete sorted answer set.
	again, err := p.FindRules(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(full) {
		t.Fatalf("after abandoned stream, FindRules returned %d answers, want %d", len(again), len(full))
	}
	for i := range again {
		if again[i].Rule.String() != full[i].Rule.String() {
			t.Fatalf("answer %d differs after abandoned stream: %s vs %s", i, again[i].Rule, full[i].Rule)
		}
	}
	// And a fresh complete stream on the same Prepared delivers every answer.
	count := 0
	for _, serr := range p.Stream(context.Background()) {
		if serr != nil {
			t.Fatal(serr)
		}
		count++
	}
	if count != len(full) {
		t.Fatalf("post-break full stream delivered %d answers, want %d", count, len(full))
	}
}

// An early exit with a positive Limit interacts correctly: breaking before
// the limit still abandons the search and records only delivered answers.
func TestStreamEarlyExitWithLimit(t *testing.T) {
	db := workload.DB1()
	mq := workload.MQ4()
	eng := NewEngine(db)
	p, err := eng.Prepare(mq, Options{Type: core.Type0, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	got := 0
	for _, serr := range p.StreamStats(context.Background(), &st) {
		if serr != nil {
			t.Fatal(serr)
		}
		got++
		if got == 2 {
			break
		}
	}
	if got != 2 || st.Answers != 2 {
		t.Fatalf("delivered %d answers with stats reporting %d, want 2/2", got, st.Answers)
	}
}
