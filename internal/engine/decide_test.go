package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// decideAll runs DecideFirst for one index/bound over a fresh Prepared.
func decideAll(t *testing.T, db *relation.Database, mq *core.Metaquery, typ core.InstType, ix core.Index, k rat.Rat) (bool, *core.Instantiation, *Stats) {
	t.Helper()
	p, err := NewEngine(db).Prepare(mq, Options{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	yes, wit, st, err := p.DecideFirstStats(context.Background(), ix, k)
	if err != nil {
		t.Fatal(err)
	}
	return yes, wit, st
}

// An empty database (schemas but no tuples) is a NO for every index and
// bound: there are candidate instantiations, but every index is zero.
func TestDecideFirstEmptyDatabase(t *testing.T) {
	db := relation.NewDatabase()
	db.MustAddRelation("p", 2)
	db.MustAddRelation("q", 2)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, ix := range core.AllIndices {
		yes, wit, _ := decideAll(t, db, mq, core.Type0, ix, rat.Zero)
		if yes || wit != nil {
			t.Errorf("%s: empty database decided YES (witness %v)", ix, wit)
		}
	}
}

// A database with no relations at all has no candidates: NO, not an error.
func TestDecideFirstNoRelations(t *testing.T) {
	db := relation.NewDatabase()
	mq := core.MustParse("R(X,Z) <- P(X,Y)")
	yes, wit, _ := decideAll(t, db, mq, core.Type0, core.Sup, rat.Zero)
	if yes || wit != nil {
		t.Error("relation-less database decided YES")
	}
}

// Head-free metaqueries: the head's variable occurs nowhere in the body
// (cover joins become cartesian on that column). DecideFirst must agree
// with the sequential decider on all indices.
func TestDecideFirstHeadFreeVariable(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "b", "c")
	db.MustInsertNamed("q", "a", "x")
	mq := core.MustParse("R(W,X) <- P(X,Y)")
	for _, ix := range core.AllIndices {
		for _, k := range []rat.Rat{rat.Zero, rat.New(1, 2), rat.New(1, 1)} {
			wantYes, _, err := core.Decide(db, mq, ix, k, core.Type0)
			if err != nil {
				t.Fatal(err)
			}
			yes, wit, _ := decideAll(t, db, mq, core.Type0, ix, k)
			if yes != wantYes {
				t.Errorf("%s > %s: DecideFirst %v, core.Decide %v", ix, k, yes, wantYes)
			}
			if yes && wit == nil {
				t.Errorf("%s > %s: YES without witness", ix, k)
			}
		}
	}
}

// k at the exact boundary: the comparison is strict, so deciding at the
// maximum attainable index value must answer NO, and at any value below
// it YES.
func TestDecideFirstExactBoundary(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "c", "d")
	db.MustInsertNamed("q", "b", "e")
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	// For P->p, Q->q: one of p's two tuples joins q, so sup = 1 (q's single
	// tuple participates fully).
	for _, c := range []struct {
		ix   core.Index
		max  rat.Rat
		want bool
	}{
		{core.Sup, rat.New(1, 1), false}, // sup max is exactly 1
		{core.Sup, rat.New(99, 100), true},
	} {
		yes, _, _ := decideAll(t, db, mq, core.Type0, c.ix, c.max)
		if yes != c.want {
			t.Errorf("%s > %s: got %v, want %v", c.ix, c.max, yes, c.want)
		}
	}
	// Boundary generically: derive the true maximum per index from the
	// naive enumeration, then check strict-NO at the max and YES just
	// below (when positive).
	all, err := core.NaiveAnswers(db, mq, core.Type0, core.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	maxes := map[core.Index]rat.Rat{core.Sup: rat.Zero, core.Cnf: rat.Zero, core.Cvr: rat.Zero}
	for _, a := range all {
		maxes[core.Sup] = rat.Max(maxes[core.Sup], a.Sup)
		maxes[core.Cnf] = rat.Max(maxes[core.Cnf], a.Cnf)
		maxes[core.Cvr] = rat.Max(maxes[core.Cvr], a.Cvr)
	}
	for _, ix := range core.AllIndices {
		max := maxes[ix]
		if yes, _, _ := decideAll(t, db, mq, core.Type0, ix, max); yes {
			t.Errorf("%s > max=%s: strict comparison decided YES", ix, max)
		}
		if max.Greater(rat.Zero) {
			below := rat.New(max.Num(), max.Den()*2)
			if yes, _, _ := decideAll(t, db, mq, core.Type0, ix, below); !yes {
				t.Errorf("%s > %s (below max %s): decided NO", ix, below, max)
			}
		}
	}
}

// Cancelling the context mid-search must surface ctx.Err() and stop the
// walk before it completes.
func TestDecideFirstCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the very first ctx check must fire
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	p, err := NewEngine(db).Prepare(mq, Options{Type: core.Type1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.DecideFirst(ctx, core.Sup, rat.Zero); err != context.Canceled {
		t.Errorf("cancelled DecideFirst returned %v, want context.Canceled", err)
	}
}

// Cancellation arriving mid-first-witness (after the search has started)
// must also stop the run promptly; a YES found before the cancellation is
// still a YES.
func TestDecideFirstCancelMidSearch(t *testing.T) {
	db := relation.NewDatabase()
	for i := 0; i < 30; i++ {
		db.MustInsertNamed("p", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
		db.MustInsertNamed("q", fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i))
		db.MustInsertNamed("r", fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i))
	}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	p, err := NewEngine(db).Prepare(mq, Options{Type: core.Type1})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from a racing goroutine while repeatedly deciding a NO bound
	// (k = 1 can never be exceeded), so the search is mid-walk when the
	// cancellation lands. Every outcome must be either a clean NO (the run
	// finished first) or ctx.Err().
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			cancel()
			close(done)
		}()
		yes, wit, err := p.DecideFirst(ctx, core.Cnf, rat.New(1, 1))
		<-done
		if err != nil && err != context.Canceled {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		if yes || wit != nil {
			t.Fatalf("trial %d: NO-bound decision returned YES", trial)
		}
	}
}

// DecideFirst must agree with DecideParallel on generated scenarios while
// both run concurrently from many goroutines (exercised under -race in
// CI): same verdicts, valid witnesses, no data races on the shared
// Prepared.
func TestDecideFirstAgreesWithDecideParallelConcurrent(t *testing.T) {
	shapes := []string{"t0-chain", "t1-cycle", "t2-pad", "t1-arity-mix", "t2-empty-rel"}
	var wg sync.WaitGroup
	for i, shape := range shapes {
		wg.Add(1)
		go func(seed int64, shape string) {
			defer wg.Done()
			s, err := gen.NewScenario(seed, shape)
			if err != nil {
				t.Error(err)
				return
			}
			prep, err := NewEngine(s.DB).Prepare(s.MQ, Options{Type: s.Type})
			if err != nil {
				t.Error(err)
				return
			}
			var inner sync.WaitGroup
			for _, ix := range core.AllIndices {
				for _, k := range []rat.Rat{rat.Zero, rat.New(1, 3), rat.New(1, 1)} {
					inner.Add(1)
					go func(ix core.Index, k rat.Rat) {
						defer inner.Done()
						wantYes, _, err := core.DecideParallel(s.DB, s.MQ, ix, k, s.Type, 3)
						if err != nil {
							t.Error(err)
							return
						}
						yes, wit, err := prep.DecideFirst(context.Background(), ix, k)
						if err != nil {
							t.Error(err)
							return
						}
						if yes != wantYes {
							t.Errorf("%s/%d %s > %s: DecideFirst %v, DecideParallel %v", shape, seed, ix, k, yes, wantYes)
							return
						}
						if !yes {
							return
						}
						rule, err := wit.Apply(s.MQ)
						if err != nil {
							t.Errorf("%s/%d: witness does not instantiate: %v", shape, seed, err)
							return
						}
						v, err := ix.Compute(s.DB, rule)
						if err != nil {
							t.Error(err)
							return
						}
						if !v.Greater(k) {
							t.Errorf("%s/%d: witness rule %s has %s = %s, not > %s", shape, seed, rule, ix, v, k)
						}
					}(ix, k)
				}
			}
			inner.Wait()
		}(int64(i*13+1), shape)
	}
	wg.Wait()
}

// On support decisions the head is never evaluated: the stats must show
// the head search skipped, with zero head candidates tried.
func TestDecideFirstSkipsHeadsOnSupport(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	yes, wit, st := decideAll(t, db, mq, core.Type0, core.Sup, rat.Zero)
	if !yes || wit == nil {
		t.Fatal("expected a YES with witness")
	}
	if st.HeadsSkipped != 1 || st.HeadsTried != 0 {
		t.Errorf("stats = heads tried %d, skipped %d; want 0 tried, 1 skipped", st.HeadsTried, st.HeadsSkipped)
	}
	// The skipped-head witness must still be a complete instantiation.
	if _, err := wit.Apply(mq); err != nil {
		t.Errorf("witness incomplete: %v", err)
	}
}

// The deprecated Limit-1 idiom and DecideFirst agree across every index on
// a workload with several admissible answers.
func TestDecideFirstMatchesLimitOneIdiom(t *testing.T) {
	s, err := gen.NewScenario(3, "t0-star")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s.DB)
	for _, ix := range core.AllIndices {
		for _, k := range []rat.Rat{rat.Zero, rat.New(1, 4), rat.New(1, 2)} {
			lim, err := eng.Prepare(s.MQ, Options{Type: s.Type, Thresholds: core.SingleIndex(ix, k), Limit: 1})
			if err != nil {
				t.Fatal(err)
			}
			answers, err := lim.FindRules(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			prep, err := eng.Prepare(s.MQ, Options{Type: s.Type})
			if err != nil {
				t.Fatal(err)
			}
			yes, _, err := prep.DecideFirst(context.Background(), ix, k)
			if err != nil {
				t.Fatal(err)
			}
			if yes != (len(answers) > 0) {
				t.Errorf("%s > %s: DecideFirst %v, Limit-1 found %d answers", ix, k, yes, len(answers))
			}
		}
	}
}
