package engine

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// Delta is one batched database change: per-relation tuple inserts and
// deletes, applied atomically by Engine.Apply. Tuples are given as constant
// names (the server's wire format); Apply interns inserted constants and
// resolves deleted ones against the dictionary — a delete naming a
// never-interned constant simply matches nothing.
type Delta struct {
	Relations []RelationDelta
}

// RelationDelta is the change to one relation. Within one RelationDelta
// the deletes apply before the inserts, so a delete+insert pair of the
// same tuple leaves it present (the insert resurrects the tombstoned row).
//
// Arity is required only when the delta creates a relation without
// inserting into it; otherwise it is inferred from the existing relation
// (or the first inserted tuple) and, when given, cross-checked.
type RelationDelta struct {
	Name   string
	Arity  int
	Insert [][]string
	Delete [][]string
}

// ApplyResult reports what an Apply did: the epoch now current, the number
// of tuples that actually changed membership (inserting a present tuple or
// deleting an absent one is a no-op and does not count), and how many
// relations were compacted on publication.
type ApplyResult struct {
	Epoch     uint64
	Inserted  int
	Deleted   int
	Compacted int
}

// Apply applies d atomically and installs a new epoch snapshot: changed
// relations are copy-on-write extensions of the current version (appends +
// tombstones into a fresh arena view, compacted when tombstones pile up),
// the candidate index, cardinality statistics and evaluator caches are
// maintained incrementally, and unchanged relations — with their cached
// atom tables and node joins — are shared with the previous epoch.
// Executions already in flight finish on the snapshot they started with;
// executions starting after Apply returns see the new data.
//
// Apply validates the whole delta before touching anything: on error the
// engine is unchanged. A delta with no effect (every insert already
// present, every delete already absent) does not advance the epoch.
// Concurrent Apply calls serialize; the snapshot chain is linear.
func (e *Engine) Apply(ctx context.Context, d Delta) (ApplyResult, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if err := ctx.Err(); err != nil {
		return ApplyResult{}, err
	}
	snap := e.snap.Load()
	db := snap.db

	// Validation pass: resolve every relation's arity (existing relation,
	// explicit Arity, or first inserted tuple — in that order, cross-checked)
	// and length-check every tuple, before any mutation.
	arities := make(map[string]int, len(d.Relations))
	for _, rd := range d.Relations {
		arity, known := arities[rd.Name]
		if !known {
			if r := db.Relation(rd.Name); r != nil {
				arity, known = r.Arity(), true
			}
		}
		if !known && rd.Arity > 0 {
			arity, known = rd.Arity, true
		}
		if !known && len(rd.Insert) > 0 {
			arity, known = len(rd.Insert[0]), true
		}
		if !known {
			return ApplyResult{}, fmt.Errorf("engine: delta for unknown relation %s needs an arity or inserts", rd.Name)
		}
		if rd.Arity > 0 && rd.Arity != arity {
			return ApplyResult{}, fmt.Errorf("engine: delta for %s declares arity %d but relation has arity %d", rd.Name, rd.Arity, arity)
		}
		if arity <= 0 {
			return ApplyResult{}, fmt.Errorf("engine: delta for %s: arity must be positive", rd.Name)
		}
		for _, row := range rd.Insert {
			if len(row) != arity {
				return ApplyResult{}, fmt.Errorf("engine: delta for %s: insert tuple %v has %d terms, want %d", rd.Name, row, len(row), arity)
			}
		}
		for _, row := range rd.Delete {
			if len(row) != arity {
				return ApplyResult{}, fmt.Errorf("engine: delta for %s: delete tuple %v has %d terms, want %d", rd.Name, row, len(row), arity)
			}
		}
		arities[rd.Name] = arity
	}

	// Mutation pass over private extensions: the published relations are
	// never touched. Constants in deletes are only looked up, never interned
	// — a miss means the tuple cannot be present.
	var res ApplyResult
	dict := db.Dict()
	work := make(map[string]*relation.Relation, len(d.Relations))
	created := make(map[string]bool)
	changeFor := make(map[string]*stats.RelationChange, len(d.Relations))
	for _, rd := range d.Relations {
		r := work[rd.Name]
		if r == nil {
			if old := db.Relation(rd.Name); old != nil {
				r = old.Extend()
			} else {
				r = relation.NewRelation(rd.Name, arities[rd.Name])
				created[rd.Name] = true
			}
			work[rd.Name] = r
		}
		ch := changeFor[rd.Name]
		if ch == nil {
			ch = &stats.RelationChange{Name: rd.Name}
			changeFor[rd.Name] = ch
		}
		for _, row := range rd.Delete {
			t, ok := lookupTuple(dict, row)
			if !ok {
				continue
			}
			if r.Delete(t) {
				ch.Removed = append(ch.Removed, t)
				res.Deleted++
			}
		}
		for _, row := range rd.Insert {
			t := make(relation.Tuple, len(row))
			for i, c := range row {
				t[i] = dict.Intern(c)
			}
			if r.Insert(t) {
				ch.Added = append(ch.Added, t)
				res.Inserted++
			}
		}
	}

	// Drop relations the delta did not actually change (created relations
	// stay: an empty new relation still changes the schema).
	changes := make([]stats.RelationChange, 0, len(work))
	for name := range work {
		ch := changeFor[name]
		if !created[name] && len(ch.Added) == 0 && len(ch.Removed) == 0 {
			delete(work, name)
			continue
		}
		changes = append(changes, *ch)
	}
	if len(work) == 0 {
		res.Epoch = snap.epoch
		return res, nil
	}

	// Seal each new version before publication: the lazy live-row index is
	// rebuilt eagerly (so concurrent readers never mutate it) and arenas
	// with too many tombstones are compacted.
	for _, r := range work {
		if r.Seal() {
			res.Compacted++
		}
	}

	ndb := db.Extend(work)
	nst := snap.st.WithDelta(ndb, changes)
	ns := newSnapshot(snap.epoch+1, ndb, snap.cands.Extend(ndb), nst, snap.ev.Fork(ndb, nst))
	e.snap.Store(ns)
	res.Epoch = ns.epoch
	return res, nil
}

// lookupTuple resolves constant names without interning; ok is false when
// any name was never interned (the tuple cannot be in any relation).
func lookupTuple(dict *relation.Dict, row []string) (relation.Tuple, bool) {
	t := make(relation.Tuple, len(row))
	for i, c := range row {
		v, ok := dict.Lookup(c)
		if !ok {
			return nil, false
		}
		t[i] = v
	}
	return t, true
}
