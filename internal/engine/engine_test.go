package engine

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// db1 is the Figure 1 database.
func db1(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	db.MustInsertNamed("UsCa", "John K.", "Omnitel")
	db.MustInsertNamed("UsCa", "John K.", "Tim")
	db.MustInsertNamed("UsCa", "Anastasia A.", "Omnitel")
	db.MustInsertNamed("CaTe", "Tim", "ETACS")
	db.MustInsertNamed("CaTe", "Tim", "GSM 900")
	db.MustInsertNamed("CaTe", "Tim", "GSM 1800")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 900")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 1800")
	db.MustInsertNamed("CaTe", "Wind", "GSM 1800")
	db.MustInsertNamed("UsPT", "John K.", "GSM 900")
	db.MustInsertNamed("UsPT", "John K.", "GSM 1800")
	db.MustInsertNamed("UsPT", "Anastasia A.", "GSM 900")
	return db
}

// assertSameAnswers compares engine output with the naive reference.
func assertSameAnswers(t *testing.T, got, want []core.Answer, label string) {
	t.Helper()
	if len(got) != len(want) {
		gotR := make([]string, len(got))
		for i, a := range got {
			gotR[i] = a.Rule.String()
		}
		wantR := make([]string, len(want))
		for i, a := range want {
			wantR[i] = a.Rule.String()
		}
		t.Fatalf("%s: %d answers, want %d\n got: %v\nwant: %v", label, len(got), len(want), gotR, wantR)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Rule.String() != w.Rule.String() {
			t.Fatalf("%s: answer %d rule %s, want %s", label, i, g.Rule, w.Rule)
		}
		if !g.Sup.Equal(w.Sup) || !g.Cnf.Equal(w.Cnf) || !g.Cvr.Equal(w.Cvr) {
			t.Errorf("%s: %s indices sup=%v/%v cnf=%v/%v cvr=%v/%v",
				label, g.Rule, g.Sup, w.Sup, g.Cnf, w.Cnf, g.Cvr, w.Cvr)
		}
	}
}

func TestFindRulesMatchesNaiveOnFigure1(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
		for _, th := range []core.Thresholds{
			core.AllAbove(rat.Zero, rat.Zero, rat.Zero),
			core.AllAbove(rat.New(1, 2), rat.New(1, 2), rat.New(1, 2)),
			core.SingleIndex(core.Cnf, rat.New(2, 3)),
			core.SingleIndex(core.Sup, rat.New(9, 10)),
			core.SingleIndex(core.Cvr, rat.Zero),
		} {
			want, err := core.NaiveAnswers(db, mq, typ, th)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := FindRules(db, mq, Options{Type: typ, Thresholds: th})
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, got, want, typ.String())
		}
	}
}

func TestFindRulesPaperRuleIndices(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, _, err := FindRules(db, mq, Options{
		Type:       core.Type0,
		Thresholds: core.AllAbove(rat.New(1, 2), rat.New(1, 2), rat.New(1, 2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var hit *core.Answer
	for i := range answers {
		if answers[i].Rule.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
			hit = &answers[i]
		}
	}
	if hit == nil {
		t.Fatal("paper rule missing")
	}
	if !hit.Cnf.Equal(rat.New(5, 7)) || !hit.Cvr.Equal(rat.One) || !hit.Sup.Equal(rat.One) {
		t.Errorf("indices sup=%v cnf=%v cvr=%v", hit.Sup, hit.Cnf, hit.Cvr)
	}
}

// Cyclic bodies exercise the width-2 hypertree path.
func TestFindRulesCyclicBody(t *testing.T) {
	db := relation.NewDatabase()
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"b", "a"}, {"c", "b"}, {"a", "c"}, {"a", "d"}}
	for _, e := range edges {
		db.MustInsertNamed("e", e[0], e[1])
		db.MustInsertNamed("f", e[0], e[1])
	}
	mq := core.MustParse("R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,X)")
	th := core.AllAbove(rat.Zero, rat.Zero, rat.Zero)
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Width != 2 {
		t.Errorf("triangle body width = %d, want 2", stats.Width)
	}
	assertSameAnswers(t, got, want, "cyclic")
}

// Shared predicate variables between head and body.
func TestFindRulesSharedHeadBodyPredVar(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "b", "c")
	db.MustInsertNamed("q", "a", "c")
	mq := core.MustParse("P(X,Z) <- P(X,Y), Q(Y,Z)")
	th := core.Thresholds{}
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "shared predvar")
	// Functionality: head P and body P must always match the same relation.
	for _, a := range got {
		if a.Rule.Head.Pred != a.Rule.Body[0].Pred {
			t.Errorf("functionality violated: %s", a.Rule)
		}
	}
}

// Head identical to a body literal (the Theorem 3.21/3.33 construction
// shape) must work and agree with naive.
func TestFindRulesHeadEqualsBodyLiteral(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("e", "1", "2")
	db.MustInsertNamed("e", "2", "3")
	db.MustInsertNamed("g", "1", "2")
	mq := core.MustParse("E(X,Y) <- E(X,Y), E(Y,Z)")
	th := core.SingleIndex(core.Sup, rat.Zero)
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "head=body")
}

// Ordinary atoms mixed with patterns.
func TestFindRulesMixedAtoms(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("e", "1", "2")
	db.MustInsertNamed("e", "2", "1")
	db.MustInsertNamed("col", "1")
	db.MustInsertNamed("col", "2")
	mq := core.MustParse("P(X) <- e(X,Y), Q(Y)")
	th := core.Thresholds{}
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "mixed")
}

func TestFindRulesLimit(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	got, _, err := FindRules(db, mq, Options{
		Type:       core.Type0,
		Thresholds: core.SingleIndex(core.Sup, rat.Zero),
		Limit:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("Limit=1 returned %d answers", len(got))
	}
}

// All three ablations must preserve results exactly.
func TestAblationsPreserveResults(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	th := core.AllAbove(rat.New(1, 3), rat.New(1, 3), rat.New(1, 3))
	base, _, err := FindRules(db, mq, Options{Type: core.Type1, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Type: core.Type1, Thresholds: th, DisableSupportPruning: true},
		{Type: core.Type1, Thresholds: th, DisableFullReducer: true},
		{Type: core.Type1, Thresholds: th, FlatDecomposition: true},
		{Type: core.Type1, Thresholds: th, DisableSupportPruning: true, DisableFullReducer: true, FlatDecomposition: true},
	}
	for i, opt := range variants {
		got, _, err := FindRules(db, mq, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, got, base, []string{"no-pruning", "no-reducer", "flat", "all-off"}[i])
	}
}

// Differential property test: random databases, random metaqueries, random
// thresholds, all types — engine must equal naive.
func TestQuickFindRulesMatchesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	metaqueries := []string{
		"R(X,Z) <- P(X,Y), Q(Y,Z)",
		"P(X,Y) <- P(Y,Z), Q(Z,W)",
		"P(X,Y) <- Q(Y,Z), P(Z,W)",
		"R(X,Y) <- P(X,Y), Q(Y,Z), S(Z,X)",
		"N(X) <- N(Y), E(X,Y)",
		"R(X) <- P(X,X)",
		"P(X,Z) <- P(X,Y), P(Y,Z)",
	}
	ths := []core.Thresholds{
		core.AllAbove(rat.Zero, rat.Zero, rat.Zero),
		core.AllAbove(rat.New(1, 4), rat.New(1, 4), rat.New(1, 4)),
		core.SingleIndex(core.Cnf, rat.New(1, 2)),
		core.SingleIndex(core.Sup, rat.New(1, 2)),
		core.SingleIndex(core.Cvr, rat.New(1, 2)),
		{},
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 2+rng.Intn(2), 2, 6, 3)
		mqText := metaqueries[rng.Intn(len(metaqueries))]
		mq := core.MustParse(mqText)
		th := ths[rng.Intn(len(ths))]
		for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
			want, err := core.NaiveAnswers(db, mq, typ, th)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := FindRules(db, mq, Options{Type: typ, Thresholds: th})
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, got, want, mqText+" "+typ.String())
		}
	}
}

func TestStatsCounters(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	_, stats, err := FindRules(db, mq, Options{
		Type:       core.Type0,
		Thresholds: core.SingleIndex(core.Sup, rat.New(99, 100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Width != 1 {
		t.Errorf("width = %d, want 1", stats.Width)
	}
	if stats.BodyCandidatesTried == 0 {
		t.Error("no body candidates tried")
	}
	if stats.BodiesReachedRoot == 0 {
		t.Error("no body reached the root")
	}
}

// randomDB builds a small random database.
func randomDB(rng *rand.Rand, nRel, arity, maxTuples, dom int) *relation.Database {
	db := relation.NewDatabase()
	consts := make([]string, dom)
	for i := range consts {
		consts[i] = string(rune('a' + i))
	}
	for i := 0; i < nRel; i++ {
		name := string(rune('p' + i))
		db.MustAddRelation(name, arity)
		n := rng.Intn(maxTuples + 1)
		for j := 0; j < n; j++ {
			row := make([]string, arity)
			for k := range row {
				row[k] = consts[rng.Intn(dom)]
			}
			db.MustInsertNamed(name, row...)
		}
	}
	return db
}
