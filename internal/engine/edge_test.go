package engine

import (
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// An entirely empty database yields no answers under any checked threshold
// and all-zero-index answers when nothing is checked.
func TestFindRulesEmptyDatabase(t *testing.T) {
	db := relation.NewDatabase()
	db.MustAddRelation("p", 2)
	db.MustAddRelation("q", 2)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")

	checked, _, err := FindRules(db, mq, Options{
		Type:       core.Type0,
		Thresholds: core.AllAbove(rat.Zero, rat.Zero, rat.Zero),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(checked) != 0 {
		t.Errorf("empty database produced %d answers", len(checked))
	}

	unchecked, _, err := FindRules(db, mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	if len(unchecked) != 8 { // 2^3 instantiations
		t.Errorf("unchecked answers = %d, want 8", len(unchecked))
	}
	for _, a := range unchecked {
		if !a.Sup.IsZero() || !a.Cnf.IsZero() || !a.Cvr.IsZero() {
			t.Errorf("non-zero index on empty database: %+v", a)
		}
	}
}

// A head variable absent from the body: cover semantics degrade to the
// cartesian fraction, still matching the naive engine.
func TestFindRulesHeadOnlyVariable(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "a", "c")
	db.MustInsertNamed("q", "x", "y")
	mq := core.MustParse("R(X,W) <- P(X,Y)")
	th := core.Thresholds{}
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "head-only var")
}

// Bodies with a single literal exercise the one-node decomposition.
func TestFindRulesSingleLiteralBody(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "a", "b")
	db.MustInsertNamed("q", "b", "a")
	mq := core.MustParse("R(X,Y) <- P(X,Y)")
	for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
		th := core.SingleIndex(core.Cnf, rat.New(1, 4))
		want, err := core.NaiveAnswers(db, mq, typ, th)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := FindRules(db, mq, Options{Type: typ, Thresholds: th})
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, got, want, "single literal "+typ.String())
	}
}

// Repeated variables inside patterns (diagonal selections) must survive the
// decomposition pipeline.
func TestFindRulesRepeatedVariables(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "a")
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "a", "a")
	db.MustInsertNamed("q", "b", "b")
	mq := core.MustParse("R(X,X) <- P(X,X), Q(X,X)")
	th := core.Thresholds{}
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "repeated vars")
}

// Zero-arity relations are legal degenerate databases.
func TestFindRulesZeroArity(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustAddRelation("unit", 0)
	r.Insert(relation.Tuple{})
	mq := core.MustParse("R() <- P()")
	th := core.Thresholds{}
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NaiveAnswers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want, "zero arity")
	if len(got) != 1 {
		t.Errorf("answers = %d, want 1", len(got))
	}
	// unit() <- unit() holds totally.
	if !got[0].Cnf.Equal(rat.One) || !got[0].Sup.Equal(rat.One) {
		t.Errorf("indices = %+v", got[0])
	}
}

// Limit interacts with sorted output: the single returned answer must be a
// valid answer (not necessarily the lexicographically first).
func TestFindRulesLimitValidity(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	th := core.SingleIndex(core.Sup, rat.Zero)
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit 2 returned %d answers", len(got))
	}
	for _, a := range got {
		if !a.Sup.Greater(rat.Zero) {
			t.Errorf("limited answer violates threshold: %+v", a)
		}
	}
}

// The engine must reject what the core validation rejects.
func TestFindRulesValidation(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	impure := core.MustParse("P(X) <- P(X,Y)")
	if _, _, err := FindRules(db, impure, Options{Type: core.Type0}); err == nil {
		t.Error("impure metaquery accepted under type-0")
	}
	missing := core.MustParse("R(X) <- nosuch(X)")
	if _, _, err := FindRules(db, missing, Options{Type: core.Type2}); err == nil {
		t.Error("unknown relation accepted")
	}
}

// Thresholds at the top of the range: k arbitrarily close to 1 still
// behaves strictly; cnf = 1 passes k = 99999/100000.
func TestFindRulesNearOneThreshold(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "a", "b")
	mq := core.MustParse("Q(X,Y) <- P(X,Y)")
	th := core.SingleIndex(core.Cnf, rat.New(99999, 100000))
	got, _, err := FindRules(db, mq, Options{Type: core.Type0, Thresholds: th})
	if err != nil {
		t.Fatal(err)
	}
	foundPerfect := false
	for _, a := range got {
		if !a.Cnf.Equal(rat.One) {
			t.Errorf("answer with cnf %v passed k≈1", a.Cnf)
		}
		foundPerfect = true
	}
	if !foundPerfect {
		t.Error("perfect-confidence rule missing")
	}
}
