package engine

import (
	"context"
	"fmt"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/oracle"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// approxTestOptions is the diff-harness configuration: a generous budget so
// the small generated populations are fully covered (without-replacement
// exhaustion is exact), making the sweep deterministic.
func approxTestOptions(typ core.InstType, seed int64) Options {
	return Options{
		Type:   typ,
		Approx: ApproxOptions{Epsilon: 0.125, Delta: 0.125, MaxSamples: 4096, Seed: seed},
	}
}

// TestDecideApproxAgreesOnGenerated sweeps generated scenarios: with a
// budget covering the small generated populations, every sampled test either
// clears its interval correctly or degenerates to exact evaluation, so the
// approx verdict must equal DecideFirst's on every index and bound.
func TestDecideApproxAgreesOnGenerated(t *testing.T) {
	bounds := []rat.Rat{rat.Zero, rat.New(1, 4), rat.New(1, 2), rat.New(3, 4), rat.New(1, 1)}
	for _, shape := range gen.Shapes() {
		for _, seed := range []int64{2, 9} {
			t.Run(fmt.Sprintf("%s/seed%d", shape, seed), func(t *testing.T) {
				s, err := gen.NewScenario(seed, shape)
				if err != nil {
					t.Fatal(err)
				}
				prep, err := NewEngine(s.DB).Prepare(s.MQ, approxTestOptions(s.Type, seed))
				if err != nil {
					t.Fatal(err)
				}
				for _, ix := range core.AllIndices {
					for _, k := range bounds {
						wantYes, _, _, err := prep.DecideFirstStats(context.Background(), ix, k)
						if err != nil {
							t.Fatal(err)
						}
						gotYes, wit, st, err := prep.DecideApproxStats(context.Background(), ix, k)
						if err != nil {
							t.Fatal(err)
						}
						if gotYes != wantYes {
							t.Errorf("%s > %s: approx %v, exact %v (drawn %d, escalated %d)",
								ix, k, gotYes, wantYes, st.SamplesDrawn, st.ApproxEscalated)
						}
						if gotYes && wit == nil {
							t.Errorf("%s > %s: YES without witness", ix, k)
						}
						// A YES witness is exactly confirmed before being
						// returned: it must genuinely exceed k.
						if wit != nil {
							rule, err := wit.Apply(s.MQ)
							if err != nil {
								t.Fatalf("%s > %s: witness does not instantiate: %v", ix, k, err)
							}
							sup, cnf, cvr, err := oracle.Indices(s.DB, rule)
							if err != nil {
								t.Fatal(err)
							}
							v := sup
							switch ix {
							case core.Cnf:
								v = cnf
							case core.Cvr:
								v = cvr
							}
							if !v.Greater(k) {
								t.Errorf("%s > %s: witness rule %s has %s = %s", ix, k, rule, ix, v)
							}
						}
					}
				}
			})
		}
	}
}

// approxSamplingScenario builds a database big enough that the approx path
// genuinely samples: one 4000-row binary relation whose second column is
// "yes" on 90% of rows, and a unary head relation holding just "yes" — so
// cnf(R(Y) <- P(X,Y)) = 9/10 over a 4000-row body join.
func approxSamplingScenario(t *testing.T) (*relation.Database, *core.Metaquery) {
	t.Helper()
	db := relation.NewDatabase()
	for i := 0; i < 4000; i++ {
		v := "yes"
		if i%10 == 0 {
			v = "no"
		}
		db.MustInsertNamed("p", fmt.Sprintf("x%d", i), v)
	}
	db.MustInsertNamed("h", "yes")
	return db, core.MustParse("R(Y) <- P(X,Y)")
}

// TestDecideApproxSamplesAndSettles checks that on a population far above
// the sampling floor with the true fraction far from the threshold, the
// decider settles from a few samples: far fewer draws than the population,
// no escalation, and a verdict matching the exact path.
func TestDecideApproxSamplesAndSettles(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	prep, err := NewEngine(db).Prepare(mq, Options{
		Type:   core.Type0,
		Approx: ApproxOptions{Epsilon: 0.1, Delta: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	// cnf = 9/10: clearly above 1/2 and clearly below — i.e. a NO at — 99/100.
	for _, c := range []struct {
		k    rat.Rat
		want bool
	}{
		{rat.New(1, 2), true},
		{rat.New(99, 100), false},
	} {
		yes, _, st, err := prep.DecideApproxStats(context.Background(), core.Cnf, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if yes != c.want {
			t.Fatalf("cnf > %s: got %v, want %v", c.k, yes, c.want)
		}
		if st.SamplesDrawn == 0 {
			t.Fatalf("cnf > %s: no samples drawn on a 4000-row population", c.k)
		}
		if st.SamplesDrawn >= 4000 {
			t.Fatalf("cnf > %s: drew %d samples, no better than exact", c.k, st.SamplesDrawn)
		}
		if st.ApproxEscalated != 0 {
			t.Fatalf("cnf > %s: escalated %d times on a clear margin", c.k, st.ApproxEscalated)
		}
	}
}

// TestDecideApproxEscalatesInBand pins the threshold exactly at the true
// fraction: the interval can never clear it, so the decider must exhaust its
// budget, escalate to the exact kernels, and still answer correctly (9/10 >
// 9/10 is false under the strict comparison).
func TestDecideApproxEscalatesInBand(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	prep, err := NewEngine(db).Prepare(mq, Options{
		Type:   core.Type0,
		Approx: ApproxOptions{Epsilon: 0.01, Delta: 0.05, MaxSamples: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	yes, _, st, err := prep.DecideApproxStats(context.Background(), core.Cnf, rat.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Fatal("cnf > 9/10: approx decided YES, exact value is exactly 9/10")
	}
	if st.ApproxEscalated == 0 {
		t.Fatal("threshold at the true fraction never escalated")
	}
}

// TestDecideApproxDeterministic replays one decision twice on the same
// Prepared and once on a fresh engine: verdict and sampling effort must be
// byte-identical — all randomness derives from Options.Approx.Seed.
func TestDecideApproxDeterministic(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	opt := Options{
		Type:   core.Type0,
		Approx: ApproxOptions{Epsilon: 0.05, Delta: 0.1, Seed: 42},
	}
	run := func(p *Prepared) (bool, int, int) {
		yes, _, st, err := p.DecideApproxStats(context.Background(), core.Cnf, rat.New(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		return yes, st.SamplesDrawn, st.ApproxEscalated
	}
	prep, err := NewEngine(db).Prepare(mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	y1, s1, e1 := run(prep)
	y2, s2, e2 := run(prep)
	prep2, err := NewEngine(db).Prepare(mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	y3, s3, e3 := run(prep2)
	if y1 != y2 || s1 != s2 || e1 != e2 {
		t.Fatalf("rerun diverged: (%v,%d,%d) vs (%v,%d,%d)", y1, s1, e1, y2, s2, e2)
	}
	if y1 != y3 || s1 != s3 || e1 != e3 {
		t.Fatalf("fresh engine diverged: (%v,%d,%d) vs (%v,%d,%d)", y1, s1, e1, y3, s3, e3)
	}
}

// TestDecideApproxDisabledFallsBack checks the zero-value Approx path: the
// call is exactly DecideFirst — same verdict, no sampling counters.
func TestDecideApproxDisabledFallsBack(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	yes, _, st, err := prep.DecideApproxStats(context.Background(), core.Cnf, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantYes, _, _, err := prep.DecideFirstStats(context.Background(), core.Cnf, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if yes != wantYes {
		t.Fatalf("disabled approx: got %v, DecideFirst %v", yes, wantYes)
	}
	if st.SamplesDrawn != 0 || st.ApproxEscalated != 0 {
		t.Fatalf("disabled approx drew samples: drawn=%d escalated=%d", st.SamplesDrawn, st.ApproxEscalated)
	}
}

// TestPrepareRejectsBadApproxOptions: out-of-range ε/δ and a negative
// budget fail at Prepare time, like every other option.
func TestPrepareRejectsBadApproxOptions(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	eng := NewEngine(db)
	for _, a := range []ApproxOptions{
		{Epsilon: 0.1},                             // delta missing
		{Delta: 0.1},                               // epsilon missing
		{Epsilon: 1.5, Delta: 0.1},                 // epsilon out of range
		{Epsilon: 0.1, Delta: -0.2},                // delta out of range
		{Epsilon: 0.1, Delta: 0.1, MaxSamples: -1}, // negative budget
	} {
		if _, err := eng.Prepare(mq, Options{Type: core.Type0, Approx: a}); err == nil {
			t.Errorf("Prepare accepted invalid approx options %+v", a)
		}
	}
	// And the valid triple prepares fine.
	if _, err := eng.Prepare(mq, Options{Type: core.Type0, Approx: ApproxOptions{Epsilon: 0.1, Delta: 0.1}}); err != nil {
		t.Errorf("Prepare rejected valid approx options: %v", err)
	}
}

// TestDecideApproxCvrProjectsProbeSet exercises the cvr orientation of the
// sampler — head rows drawn, body join probed — on a head population large
// enough to sample. The body join carries X, which the head table lacks, so
// the probe set must be projected onto the shared column first (the
// probeSet projection branch). cvr = 80/400 = 1/5 here: the deterministic
// seeded run must reject k = 1/2 from samples and accept k = 1/20 (through
// the exact confirmation of the sampled accept, also covering the
// stats-free DecideApprox wrapper).
func TestDecideApproxCvrProjectsProbeSet(t *testing.T) {
	db := relation.NewDatabase()
	for i := 0; i < 4000; i++ {
		db.MustInsertNamed("p", fmt.Sprintf("x%d", i), fmt.Sprintf("v%d", i%80))
	}
	for i := 0; i < 400; i++ {
		db.MustInsertNamed("h", fmt.Sprintf("v%d", i))
	}
	prep, err := NewEngine(db).Prepare(core.MustParse("R(Y) <- P(X,Y)"), Options{
		Type:   core.Type0,
		Approx: ApproxOptions{Epsilon: 0.1, Delta: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	yes, _, st, err := prep.DecideApproxStats(context.Background(), core.Cvr, rat.New(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Fatal("cvr > 1/2 accepted; true cover is 1/5")
	}
	if st.SamplesDrawn == 0 {
		t.Fatal("no samples drawn on a 400-row head population")
	}
	yes, wit, err := prep.DecideApprox(context.Background(), core.Cvr, rat.New(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !yes || wit == nil {
		t.Fatalf("cvr > 1/20: got yes=%v wit=%v, want a witness (true cover 1/5)", yes, wit)
	}
}
