package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
)

// answerMultiset folds an answer slice into a multiset keyed by rule text
// and the three exact index values — the order-insensitive identity the
// parallel merge is allowed to permute.
func answerMultiset(as []core.Answer) map[string]int {
	m := make(map[string]int, len(as))
	for _, a := range as {
		m[fmt.Sprintf("%s|%s|%s|%s", a.Rule.String(), a.Sup, a.Cnf, a.Cvr)]++
	}
	return m
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// checkGoroutines polls until the goroutine count settles back to the
// recorded baseline: a parallel stream that returned — normally, via
// break, Limit, or cancellation — must leave no worker behind.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// bigParallelScenario builds a database and cyclic metaquery whose full
// enumeration yields many answers across many first-node candidates —
// enough body for cancellation and limit tests to interrupt mid-flight.
func bigParallelScenario(t *testing.T) (*Prepared, []core.Answer) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := gen.DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 80, MaxTuples: 80, Domain: 9}.Generate(rng)
	mq, err := gen.MQConfig{BodyPatterns: 3, PatternArity: 2, Cyclic: true}.Generate(rng, db)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type1, Workers: 4})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	full, err := prep.FindRules(context.Background())
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if len(full) < 20 {
		t.Fatalf("scenario too small to interrupt: %d answers", len(full))
	}
	return prep, full
}

// TestParallelStreamMatchesSequential sweeps generated scenarios through
// Stream and FindRules at several worker counts and checks each against
// the sequential answer multiset: sharding the first node's candidates is
// a scheduling choice, never a semantic one.
func TestParallelStreamMatchesSequential(t *testing.T) {
	for _, shape := range gen.Shapes() {
		for _, seed := range []int64{1, 5} {
			t.Run(fmt.Sprintf("%s/seed%d", shape, seed), func(t *testing.T) {
				s, err := gen.NewScenario(seed, shape)
				if err != nil {
					t.Fatal(err)
				}
				eng := NewEngine(s.DB)
				seqPrep, err := eng.Prepare(s.MQ, Options{Type: s.Type, Thresholds: s.Th})
				if err != nil {
					t.Fatal(err)
				}
				want, err := seqPrep.FindRules(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				wantSet := answerMultiset(want)

				for _, workers := range []int{2, 4, 7} {
					prep, err := eng.Prepare(s.MQ, Options{Type: s.Type, Thresholds: s.Th, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					var streamed []core.Answer
					for a, serr := range prep.Stream(context.Background()) {
						if serr != nil {
							t.Fatalf("workers=%d: stream error %v", workers, serr)
						}
						streamed = append(streamed, a)
					}
					if got := answerMultiset(streamed); !sameMultiset(got, wantSet) {
						t.Fatalf("workers=%d: stream multiset differs from sequential (%d vs %d answers)",
							workers, len(streamed), len(want))
					}
					full, err := prep.FindRules(context.Background())
					if err != nil {
						t.Fatalf("workers=%d: find: %v", workers, err)
					}
					if got := answerMultiset(full); !sameMultiset(got, wantSet) {
						t.Fatalf("workers=%d: FindRules multiset differs from sequential", workers)
					}
					// FindRules sorts regardless of worker count: the two
					// sorted slices must agree element-wise, not just as
					// multisets.
					for i := range full {
						if full[i].Rule.String() != want[i].Rule.String() {
							t.Fatalf("workers=%d: sorted answer %d is %s, sequential has %s",
								workers, i, full[i].Rule, want[i].Rule)
						}
					}
				}
			})
		}
	}
}

// TestCandCursorPartition drives the shared chunk cursor from concurrent
// takers across a sweep of list lengths and worker counts, asserting the
// invariant the parallel paths rely on: the claimed chunks form a disjoint
// partition of the candidate list — every candidate is handed out exactly
// once — so the workers' answer multisets union to the sequential one.
func TestCandCursorPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 57, 200, 1024} {
		for _, workers := range []int{1, 2, 4, 7} {
			cands := make([]relation.Atom, n)
			for i := range cands {
				cands[i] = relation.Atom{Pred: fmt.Sprintf("r%d", i)}
			}
			cursor := newCandCursor(cands, workers)

			var (
				mu     sync.Mutex
				seen   = make(map[string]int, n)
				chunks int
				wg     sync.WaitGroup
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for block := cursor.take(); block != nil; block = cursor.take() {
						if len(block) == 0 {
							t.Error("cursor handed out an empty chunk")
							return
						}
						mu.Lock()
						chunks++
						for _, a := range block {
							seen[a.Pred]++
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()

			if len(seen) != n {
				t.Fatalf("n=%d workers=%d: %d distinct candidates handed out, want %d",
					n, workers, len(seen), n)
			}
			for _, c := range cands {
				if seen[c.Pred] != 1 {
					t.Fatalf("n=%d workers=%d: candidate %s claimed %d times, want exactly once",
						n, workers, c.Pred, seen[c.Pred])
				}
			}
			if max := (n + cursor.chunk - 1) / cursor.chunk; chunks > max {
				t.Fatalf("n=%d workers=%d: %d chunks claimed, chunk size %d allows at most %d",
					n, workers, chunks, cursor.chunk, max)
			}
		}
	}
}

// TestParallelStreamConcurrentConsumers runs many complete Stream
// iterations of one shared Prepared (workers > 1) from concurrent
// goroutines: every consumer must observe the full answer multiset, with
// no data races between the overlapping worker pools (exercised under
// -race in CI).
func TestParallelStreamConcurrentConsumers(t *testing.T) {
	prep, full := bigParallelScenario(t)
	wantSet := answerMultiset(full)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []core.Answer
			for a, serr := range prep.Stream(context.Background()) {
				if serr != nil {
					t.Errorf("stream error: %v", serr)
					return
				}
				got = append(got, a)
			}
			if !sameMultiset(answerMultiset(got), wantSet) {
				t.Errorf("consumer saw %d answers, want %d", len(got), len(full))
			}
		}()
	}
	wg.Wait()
}

// TestParallelStreamCancellation cancels the context after the first
// merged answer: the cancellation must surface in-band as the stream's
// final element, and every worker goroutine must exit.
func TestParallelStreamCancellation(t *testing.T) {
	prep, full := bigParallelScenario(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered, sawErr := 0, error(nil)
	for a, serr := range prep.StreamStats(ctx, nil) {
		if serr != nil {
			sawErr = serr
			continue
		}
		_ = a
		delivered++
		if delivered == 1 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", sawErr)
	}
	if delivered >= len(full) {
		t.Fatalf("delivered all %d answers despite cancellation", delivered)
	}
	checkGoroutines(t, baseline)
}

// TestParallelStreamLimit checks Limit enforcement across the merged
// stream: exactly Limit answers are delivered, each a member of the full
// answer set, and no worker outlives the iteration.
func TestParallelStreamLimit(t *testing.T) {
	prep, full := bigParallelScenario(t)
	fullSet := answerMultiset(full)
	baseline := runtime.NumGoroutine()

	const limit = 5
	limPrep, err := NewEngine(prep.eng.Database()).Prepare(prep.Metaquery(), Options{Type: core.Type1, Workers: 4, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Answer
	for a, serr := range limPrep.Stream(context.Background()) {
		if serr != nil {
			t.Fatalf("stream error: %v", serr)
		}
		got = append(got, a)
	}
	if len(got) != limit {
		t.Fatalf("limit %d delivered %d answers", limit, len(got))
	}
	for k, n := range answerMultiset(got) {
		if fullSet[k] < n {
			t.Fatalf("limited stream delivered %q ×%d, full set has ×%d", k, n, fullSet[k])
		}
	}
	checkGoroutines(t, baseline)
}

// TestParallelStreamBreak abandons the merged stream after one answer
// without touching the context: breaking out of the iteration alone must
// stop every worker.
func TestParallelStreamBreak(t *testing.T) {
	prep, _ := bigParallelScenario(t)
	baseline := runtime.NumGoroutine()

	got := 0
	for _, serr := range prep.Stream(context.Background()) {
		if serr != nil {
			t.Fatalf("stream error: %v", serr)
		}
		got++
		break
	}
	if got != 1 {
		t.Fatalf("streamed %d answers before break, want 1", got)
	}
	checkGoroutines(t, baseline)
}
