package engine

import (
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// supportInfo carries the exact support value and whether the threshold
// check passed.
type supportInfo struct {
	value  rat.Rat
	passes bool
}

// computeSupport evaluates sup(σ(body)) exactly from the reduced node
// tables: for each body atom a with cover node p,
//
//	{a} ↑ b(r)  =  |r_a ⋉ π_varo(a)(s[p])| / |r_a|
//
// which is the enoughSupport computation of Figure 4, extended to return
// the exact maximum rather than only the threshold bit.
func (r *run) computeSupport(sigma *core.Instantiation, s map[int]*relation.Table) (supportInfo, error) {
	best := rat.Zero
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, sigma)
		if err != nil {
			return supportInfo{}, err
		}
		ra, err := r.p.eng.tableFor(atom)
		if err != nil {
			return supportInfo{}, err
		}
		if ra.Len() == 0 {
			continue
		}
		node := r.p.decomp.CoverNode[id]
		reduced := s[node.ID].Project(bs.vars)
		num := ra.SemijoinCount(reduced)
		if num == 0 {
			continue
		}
		best = rat.Max(best, rat.New(int64(num), int64(ra.Len())))
	}
	passes := !r.p.opt.Thresholds.CheckSup || best.Greater(r.p.opt.Thresholds.Sup)
	return supportInfo{value: best, passes: passes}, nil
}

// enoughSupport is the early-exit variant used for pruning: it returns true
// as soon as one body atom's fraction exceeds ksup (support is a maximum).
func (r *run) enoughSupport(sigma *core.Instantiation, s map[int]*relation.Table) (bool, error) {
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, sigma)
		if err != nil {
			return false, err
		}
		ra, err := r.p.eng.tableFor(atom)
		if err != nil {
			return false, err
		}
		if ra.Len() == 0 {
			continue
		}
		node := r.p.decomp.CoverNode[id]
		reduced := s[node.ID].Project(bs.vars)
		num := ra.SemijoinCount(reduced)
		if num == 0 {
			continue
		}
		if rat.New(int64(num), int64(ra.Len())).Greater(r.p.opt.Thresholds.Sup) {
			return true, nil
		}
	}
	return false, nil
}

// bodyJoin materializes b = J(σ(body)) over att(body), including type-2
// padding variables (they contribute to the confidence denominator).
// Atom tables are semijoin-reduced against their cover nodes first, which
// is what makes the final join cheap after the full-reducer passes.
func (r *run) bodyJoin(sigma *core.Instantiation, s map[int]*relation.Table) (*relation.Table, error) {
	tables := make([]*relation.Table, 0, len(r.p.schemes))
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, sigma)
		if err != nil {
			return nil, err
		}
		ta, err := r.p.eng.tableFor(atom)
		if err != nil {
			return nil, err
		}
		if !r.p.opt.DisableFullReducer {
			node := r.p.decomp.CoverNode[id]
			ta = ta.Semijoin(s[node.ID])
		}
		tables = append(tables, ta)
	}
	if len(tables) == 0 {
		return relation.Unit(), nil
	}
	// Size-aware greedy ordering, shared with JoinAtoms and the JoinPlan
	// skew fallback.
	return relation.JoinTablesGreedy(tables), nil
}

// findHeads is Figure 4's findHeads: with the body σb fixed and reduced,
// check support, materialize b = J(σb(body)), and search head
// instantiations agreeing with σb, filtering on cover and confidence.
func (r *run) findHeads(sigma *core.Instantiation, s map[int]*relation.Table) error {
	th := r.p.opt.Thresholds

	if th.CheckSup && !r.p.opt.DisableSupportPruning {
		ok, err := r.enoughSupport(sigma, s)
		if err != nil {
			return err
		}
		if !ok {
			r.stats.BodiesPrunedSupport++
			return nil
		}
	}
	sup, err := r.computeSupport(sigma, s)
	if err != nil {
		return err
	}
	if !sup.passes {
		r.stats.BodiesPrunedSupport++
		return nil
	}

	b, err := r.bodyJoin(sigma, s)
	if err != nil {
		return err
	}

	head := r.p.mq.Head
	for _, ha := range r.p.eng.cands.Candidates(head, r.p.opt.Type, r.p.headPatternIdx) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if head.PredVar {
			// Agreement with σb (Definition 4.13): same pattern -> same atom,
			// same predicate variable -> same relation.
			if prev, ok := sigma.AtomFor(head); ok && prev.String() != ha.String() {
				continue
			}
			if rel, ok := sigma.RelationOf(head.Pred); ok && rel != ha.Pred {
				continue
			}
		}
		r.stats.HeadsTried++

		h, err := r.p.eng.tableFor(ha)
		if err != nil {
			return err
		}
		// h' := h ⋉ b ; cvr = |h'| / |h|.
		hPrime := h.Semijoin(b)
		cvr := rat.Zero
		if hPrime.Len() > 0 {
			cvr = rat.New(int64(hPrime.Len()), int64(h.Len()))
		}
		if th.CheckCvr && !cvr.Greater(th.Cvr) {
			continue
		}
		// cnf = |b ⋉ h'| / |b|.
		cnf := rat.Zero
		if b.Len() > 0 {
			num := b.SemijoinCount(hPrime)
			if num > 0 {
				cnf = rat.New(int64(num), int64(b.Len()))
			}
		}
		if th.CheckCnf && !cnf.Greater(th.Cnf) {
			continue
		}

		full := sigma.Clone()
		if head.PredVar {
			if err := full.Assign(head, ha); err != nil {
				continue // cannot agree (e.g. conflicting relation)
			}
		}
		rule, err := full.Apply(r.p.mq)
		if err != nil {
			return err
		}
		if err := r.emit(core.Answer{
			Inst: full,
			Rule: rule,
			Sup:  sup.value,
			Cnf:  cnf,
			Cvr:  cvr,
		}); err != nil {
			return err
		}
	}
	return nil
}
