package engine

import (
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// forEachBodyFraction computes, for each distinct body scheme, the fraction
//
//	{a} ↑ b(r)  =  |r_a ⋉ π_varo(a)(s[p])| / |r_a|
//
// of tuples of the instantiated atom a participating in the reduced body
// (p is a's cover node), calling f with each non-zero value. f returns
// true to stop the iteration early. It is the single loop behind the exact
// support computation, the enoughSupport pruning check, and the
// first-witness support decision.
func (r *run) forEachBodyFraction(sigma *core.Instantiation, s map[int]*relation.Table, f func(rat.Rat) bool) error {
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, sigma)
		if err != nil {
			return err
		}
		ra, err := r.ep.snap.ev.TableFor(atom)
		if err != nil {
			return err
		}
		if ra.Len() == 0 {
			continue
		}
		node := r.p.decomp.CoverNode[id]
		reduced := s[node.ID].ProjectS(bs.vars, r.sc)
		num := ra.SemijoinCountS(reduced, r.sc)
		r.sc.Release(reduced)
		if num == 0 {
			continue
		}
		if f(rat.New(int64(num), int64(ra.Len()))) {
			return nil
		}
	}
	return nil
}

// computeSupport evaluates sup(σ(body)) exactly from the reduced node
// tables: the maximum body-atom fraction (the enoughSupport computation of
// Figure 4, extended to return the exact maximum rather than only the
// threshold bit).
func (r *run) computeSupport(sigma *core.Instantiation, s map[int]*relation.Table) (rat.Rat, error) {
	best := rat.Zero
	err := r.forEachBodyFraction(sigma, s, func(v rat.Rat) bool {
		best = rat.Max(best, v)
		return false
	})
	return best, err
}

// supportExceeds is the early-exit variant used for pruning and for
// support decisions: it reports true as soon as one body atom's fraction
// exceeds k (support is a maximum).
func (r *run) supportExceeds(sigma *core.Instantiation, s map[int]*relation.Table, k rat.Rat) (bool, error) {
	exceeds := false
	err := r.forEachBodyFraction(sigma, s, func(v rat.Rat) bool {
		exceeds = v.Greater(k)
		return exceeds
	})
	return exceeds, err
}

// bodyJoin materializes b = J(σ(body)) over att(body), including type-2
// padding variables (they contribute to the confidence denominator).
// Atom tables are semijoin-reduced against their cover nodes first, which
// is what makes the final join cheap after the full-reducer passes. The
// reduction is elided when it is provably the identity (the atom's cover
// node is a childless node joining that atom alone, so the node table is
// the atom's own projection): that case returns the shared cached atom
// table with no per-body copy, which is what keeps single-atom-body
// decisions O(probes) instead of O(|relation|).
//
// The join order is cost-based when the engine carries statistics: the
// reduced tables' actual cardinalities combine with the atoms' estimated
// per-column distinct counts (clamped to the reduced sizes by the order
// search) in stats.Order, so skewed instantiations join low-fanout tables
// first. DisableCostPlanner (and engines without statistics) fall back to
// the size-sorted greedy order, which sees cardinalities but not value
// distributions.
// The returned owned flag reports whether the result is a run-owned
// intermediate the caller must hand back through r.sc.Release when done —
// false exactly when the join degenerated to a shared cached table.
func (r *run) bodyJoin(sigma *core.Instantiation, s map[int]*relation.Table) (*relation.Table, bool, error) {
	costBased := r.ep.snap.st != nil && !r.opt.DisableCostPlanner && len(r.p.schemes) > 2
	tables := r.bjTables[:0]
	owns := r.bjOwn[:0]
	atoms := r.bjAtoms[:0]
	defer func() {
		for i := range tables {
			tables[i] = nil
		}
		r.bjTables, r.bjOwn, r.bjAtoms = tables[:0], owns[:0], atoms[:0]
	}()
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, sigma)
		if err != nil {
			return nil, false, err
		}
		ta, err := r.ep.snap.ev.TableFor(atom)
		if err != nil {
			return nil, false, err
		}
		own := false
		if !r.opt.DisableFullReducer {
			node := r.p.decomp.CoverNode[id]
			// A childless cover node joining exactly this atom stores
			// π_χ(ta): semijoining ta against its own projection keeps every
			// row, so the copy is skipped and ta stays the shared cached
			// table. Single-atom bodies — the decision-probe steady state —
			// take this path on every body candidate.
			if len(node.Children) > 0 || len(r.p.nodeSchemes[node.ID]) > 1 {
				ta = ta.SemijoinS(s[node.ID], r.sc)
				own = true
			}
		}
		tables = append(tables, ta)
		owns = append(owns, own)
		if costBased {
			atoms = append(atoms, atom)
		}
	}
	if len(tables) == 0 {
		return relation.Unit(), false, nil
	}
	var b *relation.Table
	if costBased {
		in := r.bjEsts[:0]
		for i, ta := range tables {
			in = append(in, r.ep.snap.ev.AtomEst(atoms[i]).WithRows(float64(ta.Len())))
		}
		r.bjEsts = in[:0]
		b = relation.JoinTablesOrdered(tables, stats.Order(in))
	} else {
		// Size-aware greedy ordering, shared with JoinAtoms and the JoinPlan
		// skew fallback.
		b = relation.JoinTablesGreedy(tables)
	}
	if r.opt.DisableFullReducer {
		// Inputs are shared cached atom tables; with a single input the join
		// returns the input itself, which the caller must not release.
		return b, len(tables) > 1, nil
	}
	// Semijoined inputs are run-owned and recycled now; inputs whose reducer
	// pass was skipped stay shared. The returned flag follows b: a fresh
	// join output is owned, a directly returned input keeps its own status.
	bOwned := true
	for i, ta := range tables {
		if ta == b {
			bOwned = owns[i]
		} else if owns[i] {
			r.sc.Release(ta)
		}
	}
	return b, bOwned, nil
}

// headAgrees reports whether head candidate ha agrees with σb in the sense
// of Definition 4.13: same pattern -> same atom, same predicate variable ->
// same relation. Ordinary-atom heads always agree.
func (r *run) headAgrees(sigma *core.Instantiation, ha relation.Atom) bool {
	head := r.p.mq.Head
	if !head.PredVar {
		return true
	}
	if prev, ok := sigma.AtomFor(head); ok && prev.String() != ha.String() {
		return false
	}
	if rel, ok := sigma.RelationOf(head.Pred); ok && rel != ha.Pred {
		return false
	}
	return true
}

// findHeads is Figure 4's findHeads: with the body σb fixed and reduced,
// check support, materialize b = J(σb(body)), and search head
// instantiations agreeing with σb, filtering on cover and confidence. It
// is the enumeration consumer of the body-search iterator (search.go).
func (r *run) findHeads(bd *body) error {
	sigma, s := bd.sigma, bd.s
	th := r.opt.Thresholds

	if th.CheckSup && !r.opt.DisableSupportPruning {
		ok, err := r.supportExceeds(sigma, s, th.Sup)
		if err != nil {
			return err
		}
		if !ok {
			r.stats.BodiesPrunedSupport++
			return nil
		}
	}
	sup, err := r.computeSupport(sigma, s)
	if err != nil {
		return err
	}
	if th.CheckSup && !sup.Greater(th.Sup) {
		r.stats.BodiesPrunedSupport++
		return nil
	}

	b, bOwned, err := r.bodyJoin(sigma, s)
	if err != nil {
		return err
	}

	head := r.p.mq.Head
	for _, ha := range r.ep.snap.cands.Candidates(head, r.opt.Type, r.p.headPatternIdx) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if !r.headAgrees(sigma, ha) {
			continue
		}
		r.stats.HeadsTried++

		h, err := r.ep.snap.ev.TableFor(ha)
		if err != nil {
			return err
		}
		// h' := h ⋉ b ; cvr = |h'| / |h|.
		hPrime := h.SemijoinS(b, r.sc)
		cvr := rat.Zero
		if hPrime.Len() > 0 {
			cvr = rat.New(int64(hPrime.Len()), int64(h.Len()))
		}
		if th.CheckCvr && !cvr.Greater(th.Cvr) {
			r.sc.Release(hPrime)
			continue
		}
		// cnf = |b ⋉ h'| / |b|.
		cnf := rat.Zero
		if b.Len() > 0 {
			num := b.SemijoinCountS(hPrime, r.sc)
			if num > 0 {
				cnf = rat.New(int64(num), int64(b.Len()))
			}
		}
		r.sc.Release(hPrime)
		if th.CheckCnf && !cnf.Greater(th.Cnf) {
			continue
		}

		full := sigma.Clone()
		if head.PredVar {
			if err := full.Assign(head, ha); err != nil {
				continue // cannot agree (e.g. conflicting relation)
			}
		}
		rule, err := full.Apply(r.p.mq)
		if err != nil {
			return err
		}
		if err := r.emit(core.Answer{
			Inst: full,
			Rule: rule,
			Sup:  sup,
			Cnf:  cnf,
			Cvr:  cvr,
		}); err != nil {
			if bOwned {
				r.sc.Release(b)
			}
			return err
		}
	}
	if bOwned {
		r.sc.Release(b)
	}
	return nil
}
