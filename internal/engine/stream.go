package engine

import (
	"context"
	"iter"

	"github.com/mqgo/metaquery/internal/core"
)

// Stream executes the prepared metaquery and yields answers incrementally,
// in discovery order (not sorted; use FindRules for the canonical sorted
// answer set). Breaking out of the range loop abandons the remaining
// search immediately, so first-witness and top-k consumers do strictly
// less work than a full materializing run.
//
// Cancellation and errors are delivered in-band: when the search fails or
// ctx is cancelled, the final pair yielded is (zero Answer, err). A
// non-positive Options.Limit streams every answer; a positive one ends the
// stream after Limit answers.
//
// With Options.Workers > 1 the candidate space is sharded across that many
// goroutines feeding one merged stream (see parallel.go). The answer
// multiset is exactly the sequential one, but the merge order is
// nondeterministic; consumers needing a stable order sort (as FindRules
// does) or run with one worker. Breaking out of the loop, hitting Limit,
// or cancelling ctx stops every worker before the iteration returns.
func (p *Prepared) Stream(ctx context.Context) iter.Seq2[core.Answer, error] {
	return p.StreamStats(ctx, nil)
}

// StreamStats is Stream additionally recording the search-effort counters
// into st (when non-nil) as the search progresses, so an early-exiting
// consumer can observe how much of the candidate space was actually
// explored. For workers > 1 the counters are the sums over all workers,
// merged as each worker finishes.
func (p *Prepared) StreamStats(ctx context.Context, st *Stats) iter.Seq2[core.Answer, error] {
	return func(yield func(core.Answer, error) bool) {
		if p.opt.Workers > 1 && p.streamParallel(ctx, st, yield) {
			return
		}
		r := p.newRun(ctx)
		defer r.release()
		r.beginRoot("stream")
		defer r.endRoot()
		if st != nil {
			*st = *r.stats
			r.stats = st
		}
		emitted := 0
		r.emit = func(a core.Answer) error {
			// Count before yielding: an answer the consumer breaks on was
			// still delivered, and must show in st.Answers.
			emitted++
			r.stats.Answers = emitted
			if !yield(a, nil) {
				return errStop
			}
			if r.opt.Limit > 0 && emitted >= r.opt.Limit {
				return errLimit
			}
			return nil
		}
		err := r.search()
		if err != nil && err != errStop && err != errLimit {
			yield(core.Answer{}, err)
		}
	}
}
