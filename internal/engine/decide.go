package engine

import (
	"context"
	"sort"
	"sync"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// DecideFirst solves the decision problem ⟨DB, MQ, ix, k, T⟩ of Section
// 3.2 on the prepared metaquery: is there a type-T instantiation σ with
// ix(σ(MQ)) > k? It returns a witness instantiation on YES.
//
// Unlike answering through FindRules with Limit 1 (the previous decision
// idiom), DecideFirst runs the shared body-search iterator in a dedicated
// first-witness mode: only the queried index is evaluated (never all
// three), the body search visits decomposition nodes smallest estimated
// table first so hopeless branches die early, and on support decisions —
// where the index does not depend on the head at all — head enumeration is
// skipped entirely: the first body whose support exceeds k is completed
// with any agreeing head assignment. The search stops at the first witness,
// so a YES verdict pays for the explored prefix only; a NO verdict pays
// for the (pruned) body space without ever materializing body joins the
// queried index does not need.
//
// The thresholds and limit the Prepared was built with are ignored for the
// decision run; its type, ablation switches, decomposition and caches are
// shared. A Prepared can serve enumeration and decision runs concurrently.
func (p *Prepared) DecideFirst(ctx context.Context, ix core.Index, k rat.Rat) (bool, *core.Instantiation, error) {
	yes, wit, _, err := p.DecideFirstStats(ctx, ix, k)
	return yes, wit, err
}

// DecideFirstStats is DecideFirst additionally returning the run's search
// counters, so the cost of YES and NO verdicts can be observed (and
// benchmarked) separately.
//
// With Options.Workers > 1 the first decomposition node's candidate atoms
// are handed out as chunks of the selectivity-ordered list through a shared
// atomic cursor (parallel.go); the workers share a first-witness
// cancellation, so the first worker to find a witness stops the others. The
// verdict is identical to the sequential run (the chunks cover the
// candidate space exactly); the witness may differ when several exist, and
// the returned counters are the sums over all workers.
func (p *Prepared) DecideFirstStats(ctx context.Context, ix core.Index, k rat.Rat) (bool, *core.Instantiation, *Stats, error) {
	if p.opt.Workers > 1 {
		if yes, wit, st, ok, err := p.decideFirstParallel(ctx, ix, k); ok {
			return yes, wit, st, err
		}
		// No partitionable scheme (or too few candidates): run sequential.
	}
	return p.decideFirstSeq(ctx, ix, k, nil, nil, -1)
}

// decideFirstSeq is one sequential first-witness run, optionally with a
// candidate restriction for a parallel worker's block. A non-nil ep pins
// the epoch (the parallel coordinator resolves one for all workers); nil
// resolves the current one. parent is the tracing parent span: -1 for a
// standalone run, the coordinator's span for a parallel worker chunk.
func (p *Prepared) decideFirstSeq(ctx context.Context, ix core.Index, k rat.Rat, restrict map[int][]relation.Atom, ep *prepEpoch, parent int) (bool, *core.Instantiation, *Stats, error) {
	opt := p.opt
	opt.Thresholds = core.SingleIndex(ix, k)
	opt.Limit = 0 // unused here: the decision run terminates via errFound
	if ep == nil {
		ep = p.tracedEpoch(resolveTracer(ctx, opt))
	}
	r := p.newRunEp(ctx, opt, ep)
	defer r.release()
	r.order = p.decideOrder(ep)
	r.restrict = restrict
	r.span = parent
	if restrict == nil {
		r.beginRoot("decide")
	} else {
		r.beginRoot("chunk")
	}
	defer r.endRoot()

	d := &decider{run: r, ix: ix, k: k}
	r.onBody = d.onBody
	err := r.forEachBody()
	if err != nil && err != errFound {
		// The counters are fully populated up to the abort point; return
		// them so cancelled parallel workers still contribute their work
		// to the merged totals.
		return false, nil, r.stats, err
	}
	if d.witness != nil {
		r.stats.Answers = 1
	}
	return d.witness != nil, d.witness, r.stats, nil
}

// decideFirstParallel shards the first decision node's candidates across
// p.opt.Workers goroutines via the shared chunk cursor. It reports ok=false
// when the search has no scheme worth partitioning (no pattern in the first
// node, or fewer than two candidates), in which case the caller runs
// sequentially.
func (p *Prepared) decideFirstParallel(ctx context.Context, ix core.Index, k rat.Rat) (bool, *core.Instantiation, *Stats, bool, error) {
	// One epoch for the whole sharded execution: the chunk partition and
	// every worker must see the same candidate lists and database version.
	tr := resolveTracer(ctx, p.opt)
	ep := p.tracedEpoch(tr)
	order := p.decideOrder(ep)
	schemeID, cands := p.partitionScheme(ep, order)
	if schemeID < 0 || len(cands) < 2 {
		return false, nil, nil, false, nil
	}
	workers := p.opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	root := tr.Begin(-1, "decide-parallel")
	defer func() { tr.End(root, obs.AInt("workers", workers), obs.AInt("candidates", len(cands))) }()

	if ctx == nil {
		ctx = context.Background()
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		witness  *core.Instantiation
		firstErr error
		merged   Stats
		wg       sync.WaitGroup
	)
	cursor := newCandCursor(cands, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Claim chunks off the shared atomic cursor until a witness is
			// found somewhere or the candidates run out: a worker whose
			// chunks are cheap keeps pulling from the remainder instead of
			// idling while another holds an expensive static block.
			restrict := map[int][]relation.Atom{}
			for block := cursor.take(); block != nil; block = cursor.take() {
				if wctx.Err() != nil {
					return
				}
				restrict[schemeID] = block
				yes, wit, st, err := p.decideFirstSeq(wctx, ix, k, restrict, ep, root)
				mu.Lock()
				if st != nil {
					merged.merge(st)
				}
				if err != nil {
					if firstErr == nil && wctx.Err() == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if yes {
					if witness == nil {
						witness = wit
					}
					mu.Unlock()
					cancel() // first witness wins; stop the other workers
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	merged.Width = p.decomp.Width
	merged.Nodes = len(p.order)
	if witness != nil {
		merged.Answers = 1
		return true, witness, &merged, true, nil
	}
	if firstErr != nil {
		return false, nil, &merged, true, firstErr
	}
	// No worker found a witness: if the surrounding context was cancelled
	// the exhaustion is not definitive, so surface its error — with the
	// merged counters, matching the sequential path's stats-on-abort
	// behavior.
	if err := ctx.Err(); err != nil {
		return false, nil, &merged, true, err
	}
	return false, nil, &merged, true, nil
}

// partitionScheme picks the scheme the parallel decision run partitions:
// the first pattern scheme of the first node in the decision visit order,
// with its (selectivity-ordered) candidate atoms. It returns -1 when the
// first node holds no pattern scheme.
func (p *Prepared) partitionScheme(ep *prepEpoch, order []*hypertree.Node) (int, []relation.Atom) {
	if len(order) == 0 {
		return -1, nil
	}
	for _, id := range p.nodeSchemes[order[0].ID] {
		bs := p.schemes[id]
		if !bs.scheme.PredVar {
			continue
		}
		if c, ok := p.orderedCandidates(ep)[id]; ok {
			return id, c
		}
		return id, ep.snap.cands.Candidates(bs.scheme, p.opt.Type, bs.patternIdx)
	}
	return -1, nil
}

// decider is the first-witness consumer of the body-search iterator.
type decider struct {
	run     *run
	ix      core.Index
	k       rat.Rat
	witness *core.Instantiation
}

// onBody checks one complete body instantiation for a witness and unwinds
// the search with errFound as soon as it finds one.
func (d *decider) onBody(b *body) error {
	r := d.run
	switch d.ix {
	case core.Sup:
		// Support is head-independent: the body alone decides, and the
		// reduced node tables answer the strict comparison without ever
		// materializing the body join.
		exceeds, err := r.supportExceeds(b.sigma, b.s, d.k)
		if err != nil {
			return err
		}
		if !exceeds {
			r.stats.BodiesPrunedSupport++
			return nil
		}
		wit, ok := r.completeHead(b.sigma)
		if !ok {
			// No head assignment agrees with this body (e.g. the head's
			// predicate variable is pinned to a relation with no candidate
			// atoms); keep searching.
			return nil
		}
		r.stats.HeadsSkipped++
		d.witness = wit
		return errFound
	case core.Cnf:
		return d.headSearch(b, func(bj, h *relation.Table) rat.Rat {
			// cnf = |b ⋉ h| / |b|; b ⋉ (h ⋉ b) = b ⋉ h, so the head table
			// itself suffices and h' is never materialized.
			if bj.Empty() {
				return rat.Zero
			}
			num := bj.SemijoinCountS(h, r.sc)
			if num == 0 {
				return rat.Zero
			}
			return rat.New(int64(num), int64(bj.Len()))
		})
	default: // core.Cvr
		return d.headSearch(b, func(bj, h *relation.Table) rat.Rat {
			hPrime := h.SemijoinS(bj, r.sc)
			n := hPrime.Len()
			r.sc.Release(hPrime)
			if n == 0 {
				return rat.Zero
			}
			return rat.New(int64(n), int64(h.Len()))
		})
	}
}

// headSearch materializes the body join once and walks the head candidates
// agreeing with the body, evaluating only the queried index and stopping
// at the first candidate exceeding k.
func (d *decider) headSearch(b *body, value func(bj, h *relation.Table) rat.Rat) error {
	r := d.run
	bj, bjOwned, err := r.bodyJoin(b.sigma, b.s)
	if err != nil {
		return err
	}
	for _, ha := range r.ep.snap.cands.Candidates(r.p.mq.Head, r.opt.Type, r.p.headPatternIdx) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if !r.headAgrees(b.sigma, ha) {
			continue
		}
		r.stats.HeadsTried++
		h, err := r.ep.snap.ev.TableFor(ha)
		if err != nil {
			return err
		}
		if !value(bj, h).Greater(d.k) {
			continue
		}
		full := b.sigma.Clone()
		if r.p.mq.Head.PredVar {
			if err := full.Assign(r.p.mq.Head, ha); err != nil {
				continue // cannot agree (e.g. conflicting relation)
			}
		}
		d.witness = full
		if bjOwned {
			r.sc.Release(bj)
		}
		return errFound
	}
	if bjOwned {
		r.sc.Release(bj)
	}
	return nil
}

// completeHead extends a decided body instantiation with an agreeing head
// assignment — any one will do, since the queried index does not depend on
// the head. It reports false when no head candidate agrees.
func (r *run) completeHead(sigma *core.Instantiation) (*core.Instantiation, bool) {
	head := r.p.mq.Head
	if !head.PredVar {
		return sigma.Clone(), true
	}
	if _, ok := sigma.AtomFor(head); ok {
		// The head scheme is also a body scheme and is already assigned.
		return sigma.Clone(), true
	}
	for _, ha := range r.ep.snap.cands.Candidates(head, r.opt.Type, r.p.headPatternIdx) {
		if !r.headAgrees(sigma, ha) {
			continue
		}
		full := sigma.Clone()
		if err := full.Assign(head, ha); err != nil {
			continue
		}
		return full, true
	}
	return nil, false
}

// decideOrder returns the node visit order used by decision runs: a valid
// bottom-up (children before parents) order in which sibling subtrees are
// visited smallest estimated node output first, so the branches most
// likely to empty out — and prune the candidate space — are tried
// earliest. The estimate for a node is the estimated output size of its
// λ-join under each scheme's cheapest candidate (nodeEstimate), derived
// from the engine's cardinality statistics; a subtree is ranked by the
// smallest estimate it contains. The order depends only on the database
// version and the preparation, so it is computed once per epoch and
// shared.
func (p *Prepared) decideOrder(ep *prepEpoch) []*hypertree.Node {
	ep.decideOrderOnce.Do(func() {
		est := make(map[int]float64, len(p.order))
		for _, n := range p.order {
			est[n.ID] = p.nodeEstimate(ep, n)
		}
		// Subtree rank: the minimum estimate in the subtree.
		var rank func(n *hypertree.Node) float64
		ranks := make(map[int]float64, len(p.order))
		rank = func(n *hypertree.Node) float64 {
			best := est[n.ID]
			for _, c := range n.Children {
				if r := rank(c); r < best {
					best = r
				}
			}
			ranks[n.ID] = best
			return best
		}
		rank(p.decomp.Root)

		out := make([]*hypertree.Node, 0, len(p.order))
		var walk func(n *hypertree.Node)
		walk = func(n *hypertree.Node) {
			kids := append([]*hypertree.Node(nil), n.Children...)
			sort.Slice(kids, func(i, j int) bool {
				if ranks[kids[i].ID] != ranks[kids[j].ID] {
					return ranks[kids[i].ID] < ranks[kids[j].ID]
				}
				return kids[i].ID < kids[j].ID
			})
			for _, c := range kids {
				walk(c)
			}
			out = append(out, n)
		}
		walk(p.decomp.Root)
		ep.decideOrderNodes = out
	})
	return ep.decideOrderNodes
}

// nodeEstimate estimates the output size of one decomposition node's
// λ-join: each scheme contributes the estimate of its cheapest candidate
// atom (an ordinary atom contributes its own estimate), and the per-scheme
// estimates compose through the join-size formula. Without snapshot
// statistics — or with the cost planner disabled for this Prepared — it
// degrades to the smallest base-relation cardinality over the node's
// schemes, the pre-statistics heuristic, so the DisableCostPlanner
// ablation really does compare against the full legacy behavior.
func (p *Prepared) nodeEstimate(ep *prepEpoch, n *hypertree.Node) float64 {
	if ep.snap.st == nil || p.opt.DisableCostPlanner {
		return p.nodeEstimateLegacy(ep, n)
	}
	acc := stats.Est{}
	first := true
	for _, id := range p.nodeSchemes[n.ID] {
		bs := p.schemes[id]
		var best stats.Est
		if !bs.scheme.PredVar {
			best = ep.snap.ev.AtomEst(bs.scheme.Atom())
		} else {
			found := false
			for _, a := range ep.snap.cands.Candidates(bs.scheme, p.opt.Type, bs.patternIdx) {
				e := ep.snap.ev.AtomEst(a)
				if !found || e.Rows < best.Rows {
					best, found = e, true
				}
			}
			if !found {
				return 0 // no candidates: the node can never instantiate
			}
		}
		if first {
			acc, first = best, false
		} else {
			acc = stats.JoinEst(acc, best)
		}
	}
	if first {
		return 0
	}
	return acc.Rows
}

// nodeEstimateLegacy is the statistics-free estimate: the smallest
// base-relation cardinality over the node's λ schemes.
func (p *Prepared) nodeEstimateLegacy(ep *prepEpoch, n *hypertree.Node) float64 {
	db := ep.snap.db
	best := int(^uint(0) >> 1)
	for _, id := range p.nodeSchemes[n.ID] {
		bs := p.schemes[id]
		if !bs.scheme.PredVar {
			if rel := db.Relation(bs.scheme.Pred); rel != nil && rel.Len() < best {
				best = rel.Len()
			}
			continue
		}
		for _, a := range ep.snap.cands.Candidates(bs.scheme, p.opt.Type, bs.patternIdx) {
			if rel := db.Relation(a.Pred); rel != nil && rel.Len() < best {
				best = rel.Len()
			}
		}
	}
	return float64(best)
}
