package engine

import (
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func mkAnswer(rule string, sup, cnf, cvr rat.Rat) core.Answer {
	return core.Answer{
		Rule: core.Rule{Head: relation.NewAtom(rule, "X")},
		Sup:  sup, Cnf: cnf, Cvr: cvr,
	}
}

func TestRankAnswersByEachIndex(t *testing.T) {
	answers := []core.Answer{
		mkAnswer("a", rat.New(1, 2), rat.New(3, 4), rat.New(1, 4)),
		mkAnswer("b", rat.New(3, 4), rat.New(1, 2), rat.New(1, 2)),
		mkAnswer("c", rat.New(1, 4), rat.One, rat.One),
	}
	bySup := TopAnswers(answers, core.Sup, 0)
	if bySup[0].Rule.Head.Pred != "b" || bySup[2].Rule.Head.Pred != "c" {
		t.Errorf("sup ranking wrong: %v %v %v", bySup[0].Rule, bySup[1].Rule, bySup[2].Rule)
	}
	byCnf := TopAnswers(answers, core.Cnf, 0)
	if byCnf[0].Rule.Head.Pred != "c" {
		t.Errorf("cnf ranking wrong: first = %v", byCnf[0].Rule)
	}
	byCvr := TopAnswers(answers, core.Cvr, 0)
	if byCvr[0].Rule.Head.Pred != "c" || byCvr[2].Rule.Head.Pred != "a" {
		t.Errorf("cvr ranking wrong")
	}
}

func TestRankAnswersTieBreaking(t *testing.T) {
	answers := []core.Answer{
		mkAnswer("b", rat.One, rat.New(1, 2), rat.Zero),
		mkAnswer("a", rat.One, rat.New(1, 2), rat.Zero),
		mkAnswer("c", rat.One, rat.New(3, 4), rat.Zero),
	}
	ranked := TopAnswers(answers, core.Sup, 0)
	// Equal sup: cnf breaks the tie; equal everything: rule text.
	if ranked[0].Rule.Head.Pred != "c" || ranked[1].Rule.Head.Pred != "a" || ranked[2].Rule.Head.Pred != "b" {
		t.Errorf("tie breaking wrong: %v %v %v", ranked[0].Rule, ranked[1].Rule, ranked[2].Rule)
	}
}

func TestTopAnswersK(t *testing.T) {
	answers := []core.Answer{
		mkAnswer("a", rat.New(1, 4), rat.Zero, rat.Zero),
		mkAnswer("b", rat.New(3, 4), rat.Zero, rat.Zero),
		mkAnswer("c", rat.New(1, 2), rat.Zero, rat.Zero),
	}
	top2 := TopAnswers(answers, core.Sup, 2)
	if len(top2) != 2 || top2[0].Rule.Head.Pred != "b" || top2[1].Rule.Head.Pred != "c" {
		t.Errorf("top-2 wrong: %v", top2)
	}
	// k beyond length returns all; input slice untouched.
	all := TopAnswers(answers, core.Sup, 99)
	if len(all) != 3 {
		t.Errorf("top-99 = %d answers", len(all))
	}
	if answers[0].Rule.Head.Pred != "a" {
		t.Error("TopAnswers mutated its input")
	}
}

func TestTopAnswersOnRealRun(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, _, err := FindRules(db, mq, Options{Type: core.Type1})
	if err != nil {
		t.Fatal(err)
	}
	top := TopAnswers(answers, core.Cnf, 3)
	if len(top) != 3 {
		t.Fatalf("top-3 = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Cnf.Greater(top[i-1].Cnf) {
			t.Error("ranking not descending")
		}
	}
}
