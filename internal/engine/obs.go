package engine

import (
	"context"

	"github.com/mqgo/metaquery/internal/obs"
)

// This file wires the observability layer (internal/obs) into the engine:
// per-Engine execution histograms and per-run tracer resolution. The
// disabled defaults — no metrics enabled, no tracer configured — cost the
// hot paths a nil check each, preserving the pooled zero-alloc steady
// state.

// Metrics are an Engine's cumulative execution histograms, shared by every
// run on the engine once enabled. All fields are lock-free atomic
// histograms; recording is safe from any number of concurrent runs.
type Metrics struct {
	// NodeJoin records the wall time of node-join cache misses (the joins
	// actually executed), in nanoseconds.
	NodeJoin obs.Histogram
	// EstActualRatio records the planner's estimate quality per executed
	// node join as round((actual+1)/(estimate+1) · 1000): 1000 is a
	// perfect estimate, 2000 a 2x underestimate, 500 a 2x overestimate.
	EstActualRatio obs.Histogram
}

// EnableMetrics turns on the engine's execution histograms (idempotent)
// and returns them. Runs started before the call may finish unrecorded.
func (e *Engine) EnableMetrics() *Metrics {
	if m := e.obsm.Load(); m != nil {
		return m
	}
	m := &Metrics{}
	if e.obsm.CompareAndSwap(nil, m) {
		return m
	}
	return e.obsm.Load()
}

// Metrics returns the engine's execution histograms, or nil when
// EnableMetrics was never called.
func (e *Engine) Metrics() *Metrics { return e.obsm.Load() }

// resolveTracer picks the run's tracer: an explicitly configured
// Options.Tracer wins; otherwise a context-injected tracer
// (obs.WithTracer) applies — the server threads per-request tracers
// through the context because Options participate in its prepared-cache
// key and must not vary per request. Both unset is the common case and
// returns nil, the zero-cost disabled tracer.
func resolveTracer(ctx context.Context, opt Options) *obs.Tracer {
	if opt.Tracer != nil {
		return opt.Tracer
	}
	return obs.FromContext(ctx)
}

// tracedEpoch resolves the execution epoch, recording a bind-epoch span
// when tracing: the span's rebound attr reports whether this resolution
// re-derived the per-epoch state (a delta landed since the last
// execution).
func (p *Prepared) tracedEpoch(tr *obs.Tracer) *prepEpoch {
	if tr == nil {
		return p.epoch()
	}
	prev := p.ep.Load()
	sp := tr.Begin(-1, "bind-epoch")
	ep := p.epoch()
	tr.End(sp, obs.AInt("epoch", int(ep.snap.epoch)), obs.ABool("rebound", ep != prev))
	return ep
}

// ratioPerMille encodes actual/estimated rows for the EstActualRatio
// histogram with +1 smoothing, so zero estimates and empty joins stay
// finite.
func ratioPerMille(est float64, actual int) uint64 {
	if est < 0 {
		est = 0
	}
	r := (float64(actual) + 1) / (est + 1) * 1000
	if r < 0 {
		return 0
	}
	return uint64(r + 0.5)
}

// beginRoot opens the execution's root span under the run's current
// parent (-1 for top level, or a parallel coordinator's span) and makes
// it the parent of the spans the search records. It also zeroes the
// scratch's kernel tally so endRoot reports this execution's operator
// profile. No-op when untraced.
func (r *run) beginRoot(name string) {
	if r.tr == nil {
		return
	}
	r.sc.ResetOps()
	r.rootSpan = r.tr.Begin(r.span, name)
	r.span = r.rootSpan
}

// endRoot closes the execution's root span with the run's headline
// counters and the scratch kernel profile. Safe to defer unconditionally.
func (r *run) endRoot() {
	if r.tr == nil || r.rootSpan < 0 {
		return
	}
	ops := r.sc.Ops()
	r.tr.End(r.rootSpan,
		obs.AInt("bodies", r.stats.BodiesReachedRoot),
		obs.AInt("answers", r.stats.Answers),
		obs.AInt("semijoins", int(ops.Semijoins)),
		obs.AInt("semijoin_counts", int(ops.SemijoinCounts)),
		obs.AInt("projections", int(ops.Projections)))
	r.rootSpan = -1
}
