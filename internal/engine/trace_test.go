package engine

import (
	"context"
	"strconv"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
)

// flattenTree collects every node of a span forest, depth-first.
func flattenTree(roots []*obs.SpanTree) []*obs.SpanTree {
	var out []*obs.SpanTree
	var walk func(n *obs.SpanTree)
	walk = func(n *obs.SpanTree) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

func spansNamed(roots []*obs.SpanTree, name string) []*obs.SpanTree {
	var out []*obs.SpanTree
	for _, s := range flattenTree(roots) {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestTracedFindRules checks the span tree of a traced enumeration: a
// findrules root holding node-join spans that carry the planner's
// estimated rows next to the actual output rows, and — on a re-execution
// over the warm node-join cache — cache-hit points instead of timed joins.
func TestTracedFindRules(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	tr := obs.NewTracer()
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep.FindRulesStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	roots := tr.Tree()
	fr := spansNamed(roots, "findrules")
	if len(fr) != 1 {
		t.Fatalf("findrules roots: %d, want 1\n%s", len(fr), obs.RenderTree(roots))
	}
	if fr[0].Attrs["answers"] == "" || fr[0].Attrs["semijoins"] == "" {
		t.Fatalf("findrules root missing answers/semijoins attrs: %v", fr[0].Attrs)
	}
	joins := spansNamed(roots, "node-join")
	if len(joins) == 0 {
		t.Fatalf("no node-join spans\n%s", obs.RenderTree(roots))
	}
	// A cold run must execute at least one real join; repeated bodies may
	// already hit the per-epoch cache within the same run.
	coldMisses := 0
	for _, j := range joins {
		if j.Attrs["cache"] == "miss" {
			coldMisses++
		}
		if j.Attrs["est_rows"] == "" || j.Attrs["rows"] == "" {
			t.Fatalf("node-join span missing est_rows/rows: %v", j.Attrs)
		}
	}
	if coldMisses == 0 {
		t.Fatalf("cold run recorded no cache-miss joins\n%s", obs.RenderTree(roots))
	}

	// Fresh engine, context-injected tracer, two executions: the second
	// runs entirely off the warm node-join cache, so the trace holds both
	// misses (first run) and hits (second run), hits still carrying
	// estimates.
	tr2 := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr2)
	prep2, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep2.FindRulesStats(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep2.FindRulesStats(ctx); err != nil {
		t.Fatal(err)
	}
	var hits, misses int
	for _, j := range spansNamed(tr2.Tree(), "node-join") {
		switch j.Attrs["cache"] {
		case "hit":
			hits++
			if j.Attrs["est_rows"] == "" {
				t.Fatalf("cache-hit span missing est_rows: %v", j.Attrs)
			}
		case "miss":
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("warm re-execution: %d hits, %d misses — want both (context-injected tracer)", hits, misses)
	}
}

// TestTracedDecideApproxEscalation pins the threshold at the true fraction
// (the always-escalate scenario) and checks that the trace's sample spans
// agree with the run's counters: the number of spans marked escalated=true
// equals Stats.ApproxEscalated, and drawn sums to Stats.SamplesDrawn.
func TestTracedDecideApproxEscalation(t *testing.T) {
	db, mq := approxSamplingScenario(t)
	tr := obs.NewTracer()
	prep, err := NewEngine(db).Prepare(mq, Options{
		Type:   core.Type0,
		Tracer: tr,
		Approx: ApproxOptions{Epsilon: 0.01, Delta: 0.05, MaxSamples: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	yes, _, st, err := prep.DecideApproxStats(context.Background(), core.Cnf, rat.New(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Fatal("cnf > 9/10 decided YES, exact value is exactly 9/10")
	}
	if st.ApproxEscalated == 0 || st.SamplesDrawn == 0 {
		t.Fatalf("scenario did not sample+escalate: %+v", st)
	}
	roots := tr.Tree()
	if len(spansNamed(roots, "decide-approx")) != 1 {
		t.Fatalf("decide-approx roots != 1\n%s", obs.RenderTree(roots))
	}
	samples := spansNamed(roots, "sample")
	if len(samples) == 0 {
		t.Fatalf("no sample spans\n%s", obs.RenderTree(roots))
	}
	escalated, drawn := 0, 0
	for _, s := range samples {
		if s.Attrs["escalated"] == "true" {
			escalated++
		}
		d, err := strconv.Atoi(s.Attrs["drawn"])
		if err != nil {
			t.Fatalf("sample span drawn=%q: %v", s.Attrs["drawn"], err)
		}
		drawn += d
	}
	if escalated != st.ApproxEscalated {
		t.Fatalf("escalated sample spans = %d, Stats.ApproxEscalated = %d", escalated, st.ApproxEscalated)
	}
	if drawn != st.SamplesDrawn {
		t.Fatalf("sum of drawn attrs = %d, Stats.SamplesDrawn = %d", drawn, st.SamplesDrawn)
	}
}

// TestTracedParallelChunks checks the sharded enumeration's trace shape:
// one stream-parallel coordinator span parenting one chunk span per claimed
// cursor chunk, each chunk naming its worker.
func TestTracedParallelChunks(t *testing.T) {
	prep, full := bigParallelScenario(t)
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	answers, _, err := prep.FindRulesStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(full) {
		t.Fatalf("traced parallel run: %d answers, want %d", len(answers), len(full))
	}
	roots := tr.Tree()
	coord := spansNamed(roots, "stream-parallel")
	if len(coord) != 1 {
		t.Fatalf("stream-parallel spans: %d, want 1\n%s", len(coord), obs.RenderTree(roots))
	}
	chunks := spansNamed(roots, "chunk")
	if len(chunks) < 2 {
		t.Fatalf("chunk spans: %d, want several", len(chunks))
	}
	for _, c := range chunks {
		if c.Attrs["worker"] == "" || c.Attrs["candidates"] == "" {
			t.Fatalf("chunk span missing worker/candidates: %v", c.Attrs)
		}
	}
	// Every chunk hangs off the coordinator.
	if got := len(coord[0].Children); got != len(chunks) {
		t.Fatalf("coordinator has %d children, %d chunk spans recorded", got, len(chunks))
	}
}

// TestTracedRebindEpoch checks the bind-epoch span: steady-state
// executions record rebound=false, and the first execution after an
// Engine.Apply delta records rebound=true.
func TestTracedRebindEpoch(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := prep.FindRulesStats(ctx); err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	if _, _, err := prep.FindRulesStats(obs.WithTracer(ctx, tr)); err != nil {
		t.Fatal(err)
	}
	be := spansNamed(tr.Tree(), "bind-epoch")
	if len(be) != 1 || be[0].Attrs["rebound"] != "false" {
		t.Fatalf("steady-state bind-epoch: %v", be)
	}

	if _, err := eng.Apply(ctx, Delta{Relations: []RelationDelta{{
		Name: "UsCa", Insert: [][]string{{"Maria B.", "Wind"}},
	}}}); err != nil {
		t.Fatal(err)
	}
	tr2 := obs.NewTracer()
	if _, _, err := prep.FindRulesStats(obs.WithTracer(ctx, tr2)); err != nil {
		t.Fatal(err)
	}
	be = spansNamed(tr2.Tree(), "bind-epoch")
	if len(be) != 1 || be[0].Attrs["rebound"] != "true" {
		t.Fatalf("post-Apply bind-epoch: %v", be)
	}
}

// TestEngineMetricsHistograms checks EnableMetrics: executed node joins
// land in the NodeJoin wall-time histogram and the estimate-quality
// histogram, and a warm re-execution (all cache hits) records nothing new.
func TestEngineMetricsHistograms(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)
	if eng.Metrics() != nil {
		t.Fatal("Metrics non-nil before EnableMetrics")
	}
	m := eng.EnableMetrics()
	if m2 := eng.EnableMetrics(); m2 != m {
		t.Fatal("EnableMetrics not idempotent")
	}
	if eng.Metrics() != m {
		t.Fatal("Metrics does not return the enabled histograms")
	}
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep.FindRulesStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	joins := m.NodeJoin.Count()
	if joins == 0 {
		t.Fatal("NodeJoin histogram empty after an enumeration")
	}
	if m.EstActualRatio.Count() != joins {
		t.Fatalf("EstActualRatio count %d != NodeJoin count %d", m.EstActualRatio.Count(), joins)
	}
	if _, _, err := prep.FindRulesStats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.NodeJoin.Count() != joins {
		t.Fatalf("cache-hit re-execution recorded joins: %d -> %d", joins, m.NodeJoin.Count())
	}
}

// TestUntracedRunsShareResults pins the no-observability default: a run
// with neither tracer nor metrics returns identical answers (tracing is
// pure instrumentation).
func TestUntracedRunsShareResults(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	plain, _, err := FindRules(db, mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	traced, _, err := FindRules(db, mq, Options{Type: core.Type0, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, traced, plain, "traced vs plain")
	if len(tr.Tree()) == 0 {
		t.Fatal("tracer recorded nothing")
	}
}
