package engine

import (
	"sort"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
)

// RankAnswers orders answers by the given index, descending, breaking ties
// by the other two indices (sup, cnf, cvr order) and finally by rule text
// so the ranking is total and deterministic. It sorts in place and returns
// the slice for chaining.
//
// The paper motivates plausibility indices as a way "to avoid presenting
// negligible information to the user"; ranking plus TopAnswers is the
// presentation half of that contract.
func RankAnswers(answers []core.Answer, by core.Index) []core.Answer {
	key := func(a core.Answer) [3]rat.Rat {
		switch by {
		case core.Cnf:
			return [3]rat.Rat{a.Cnf, a.Sup, a.Cvr}
		case core.Cvr:
			return [3]rat.Rat{a.Cvr, a.Sup, a.Cnf}
		default:
			return [3]rat.Rat{a.Sup, a.Cnf, a.Cvr}
		}
	}
	sort.SliceStable(answers, func(i, j int) bool {
		ki, kj := key(answers[i]), key(answers[j])
		for x := 0; x < 3; x++ {
			if c := ki[x].Cmp(kj[x]); c != 0 {
				return c > 0
			}
		}
		return answers[i].Rule.String() < answers[j].Rule.String()
	})
	return answers
}

// TopAnswers returns the k highest-ranked answers by the given index
// (all answers when k <= 0 or k exceeds the slice). The input is not
// modified.
func TopAnswers(answers []core.Answer, by core.Index, k int) []core.Answer {
	ranked := append([]core.Answer(nil), answers...)
	RankAnswers(ranked, by)
	if k <= 0 || k > len(ranked) {
		return ranked
	}
	return ranked[:k]
}
