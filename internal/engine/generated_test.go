package engine

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/generate"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/workload"
)

// The engine must agree with the naive reference across the whole
// schema-generated metaquery family, on random databases, for all types.
// This is the broadest differential sweep in the suite.
func TestFindRulesMatchesNaiveOnGeneratedFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("family sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.Random{
			Relations: 2 + rng.Intn(2),
			Arity:     2,
			Tuples:    4 + rng.Intn(5),
			Domain:    3,
			Seed:      seed,
		}.Build()
		mqs, err := generate.FromSchema(db, generate.Config{MaxBodyLiterals: 3, IncludeCycles: true})
		if err != nil {
			t.Fatal(err)
		}
		th := core.AllAbove(rat.New(1, 5), rat.Zero, rat.Zero)
		for _, mq := range mqs {
			for _, typ := range []core.InstType{core.Type0, core.Type1} {
				want, err := core.NaiveAnswers(db, mq, typ, th)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := FindRules(db, mq, Options{Type: typ, Thresholds: th})
				if err != nil {
					t.Fatal(err)
				}
				assertSameAnswers(t, got, want, mq.String()+" "+typ.String())
			}
		}
	}
}
