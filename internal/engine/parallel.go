package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/relation"
)

// This file implements parallel enumeration: Options.Workers > 1 shards the
// first enumeration node's candidate atoms — chunks of the
// selectivity-ordered list handed out through a shared atomic cursor, the
// same scheme DecideFirst uses — across a worker pool. Each worker drives
// an independent body search (run.search) per claimed chunk through the
// run.restrict hook and feeds one merged result channel behind
// Stream/StreamStats/FindRules.
//
// Correctness of the partition: the sharded scheme is a pattern scheme of
// the first node in the visit order, so every complete body assigns it
// exactly one candidate atom, and it is assigned before any other scheme
// can pin its predicate variable. Restricting it to a chunk therefore
// selects exactly the bodies whose assignment lies in that chunk: the
// cursor hands every candidate to exactly one worker, so the workers'
// answer multisets are disjoint by construction and union to the
// sequential answer multiset. Only the merge order differs.
//
// The cursor replaced PR 7's static contiguous-block partition: with one
// fixed block per worker, a skewed workload could leave one worker holding
// the whole expensive tail while the others sat idle. Chunks several times
// smaller than a fair share let workers that finish early steal from the
// remainder; a worker pays one extra run setup (pool fetch + restrict
// rebind) per chunk, which the chunk sizing keeps negligible.

// candCursor hands out chunks of a shared candidate list to parallel
// workers through an atomic cursor. Each candidate lands in exactly one
// chunk, chunks are contiguous and in order, and a worker that finishes a
// cheap chunk immediately claims the next — the dynamic-balancing
// replacement for the static one-block-per-worker partition.
type candCursor struct {
	cands []relation.Atom
	chunk int
	next  atomic.Int64
}

// newCandCursor sizes chunks at an eighth of a worker's fair share
// (minimum 1): small enough that a skewed tail redistributes, large enough
// that per-chunk run setup stays amortized.
func newCandCursor(cands []relation.Atom, workers int) *candCursor {
	chunk := len(cands) / (8 * workers)
	if chunk < 1 {
		chunk = 1
	}
	return &candCursor{cands: cands, chunk: chunk}
}

// take claims the next chunk, or nil when the list is exhausted.
func (c *candCursor) take() []relation.Atom {
	hi := int(c.next.Add(int64(c.chunk)))
	lo := hi - c.chunk
	if lo >= len(c.cands) {
		return nil
	}
	if hi > len(c.cands) {
		hi = len(c.cands)
	}
	return c.cands[lo:hi]
}

// streamParallel runs the sharded enumeration, yielding merged answers. It
// reports false — without yielding anything — when the query has no
// partitionable scheme (no pattern in the first node, or fewer than two
// candidates), in which case the caller falls back to the sequential path.
//
// The global Limit is enforced by the merge loop; a consumer break, the
// limit, and outer-context cancellation all cancel the shared worker
// context, and the loop drains the channel until every worker has exited —
// no goroutine outlives the iteration.
func (p *Prepared) streamParallel(ctx context.Context, st *Stats, yield func(core.Answer, error) bool) bool {
	// One epoch for the whole sharded execution: the block partition and
	// every worker must see the same candidate lists and database version.
	tr := resolveTracer(ctx, p.opt)
	ep := p.tracedEpoch(tr)
	schemeID, cands := p.partitionScheme(ep, p.order)
	if schemeID < 0 || len(cands) < 2 {
		return false
	}
	workers := p.opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var local Stats
	if st == nil {
		st = &local
	}
	*st = Stats{Width: p.decomp.Width, Nodes: len(p.order)}

	// The coordinator span parents every worker's chunk spans; its duration
	// is the whole sharded execution including the merge drain.
	root := tr.Begin(-1, "stream-parallel")
	defer tr.End(root, obs.AInt("workers", workers), obs.AInt("candidates", len(cands)))

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan core.Answer, 4*workers)
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	cursor := newCandCursor(cands, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opt := p.opt
			opt.Limit = 0 // the merge loop enforces the global limit
			r := p.newRunEp(wctx, opt, ep)
			defer r.release()
			restrict := map[int][]relation.Atom{}
			r.restrict = restrict
			r.emit = func(a core.Answer) error {
				select {
				case results <- a:
					return nil
				case <-wctx.Done():
					return wctx.Err()
				}
			}
			// Claim chunks off the shared cursor until the list (or the
			// run) is done; the run — with its scratch and stats — is
			// reused across chunks, so a chunk costs one restrict rebind.
			// Each chunk gets its own span under the coordinator so the
			// work-stealing shape (who ran what, for how long) is visible
			// in the trace.
			var err error
			for block := cursor.take(); block != nil; block = cursor.take() {
				restrict[schemeID] = block
				r.span = r.tr.Begin(root, "chunk")
				err = r.search()
				r.tr.End(r.span, obs.AInt("worker", w), obs.AInt("candidates", len(block)))
				if err != nil {
					break
				}
			}
			mu.Lock()
			defer mu.Unlock()
			st.merge(r.stats)
			// A worker stopped by our own cancel (consumer break or limit)
			// is a normal early exit; an outer-context error is real and is
			// surfaced in-band after the merge loop.
			if err != nil && firstErr == nil && (ctx.Err() != nil || wctx.Err() == nil) {
				firstErr = err
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The merge loop counts locally and publishes st.Answers once after the
	// channel closes: taking the workers' merge mutex per delivered answer
	// serialized the hot loop against worker merge(), and a caller reading
	// Stats mid-stream raced the write anyway. Post-iteration consumers see
	// the exact delivered count (an answer the consumer breaks on was still
	// delivered, and counts).
	emitted, stopped := 0, false
	for a := range results {
		if stopped {
			continue // draining until every worker exits
		}
		emitted++
		if !yield(a, nil) {
			stopped = true
			cancel()
			continue
		}
		if p.opt.Limit > 0 && emitted >= p.opt.Limit {
			stopped = true
			cancel()
		}
	}
	// The channel is closed: all workers have merged their counters and
	// exited, so st is ours alone now.
	st.Answers = emitted
	// Surface the first real failure in-band, sequential-style — unless the
	// consumer already stopped the iteration itself.
	if !stopped && firstErr != nil {
		yield(core.Answer{}, firstErr)
	}
	return true
}

// findRulesParallel is the FindRules adapter over the sharded stream: it
// collects the merged answers and sorts them, so the result is identical to
// the sequential run. It reports ok=false when the query has no
// partitionable scheme.
func (p *Prepared) findRulesParallel(ctx context.Context) ([]core.Answer, *Stats, bool, error) {
	st := &Stats{}
	var answers []core.Answer
	var streamErr error
	ran := p.streamParallel(ctx, st, func(a core.Answer, err error) bool {
		if err != nil {
			streamErr = err
			return false
		}
		answers = append(answers, a)
		return true
	})
	if !ran {
		return nil, nil, false, nil
	}
	if streamErr != nil {
		return nil, nil, true, streamErr
	}
	core.SortAnswers(answers)
	st.Answers = len(answers)
	return answers, st, true, nil
}

// merge adds o's effort counters into st. Width/Nodes/Answers describe the
// whole merged execution and are managed by the caller.
func (st *Stats) merge(o *Stats) {
	st.BodyCandidatesTried += o.BodyCandidatesTried
	st.BodiesPrunedEmpty += o.BodiesPrunedEmpty
	st.BodiesReachedRoot += o.BodiesReachedRoot
	st.BodiesPrunedSupport += o.BodiesPrunedSupport
	st.HeadsTried += o.HeadsTried
	st.HeadsSkipped += o.HeadsSkipped
	st.SamplesDrawn += o.SamplesDrawn
	st.ApproxEscalated += o.ApproxEscalated
}
