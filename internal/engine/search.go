package engine

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/relation"
)

// This file is the engine's single body-search core: a resumable
// depth-first walk of the decomposition node order that yields each
// complete body instantiation lazily, together with its fully reduced node
// tables. Every execution mode — batch FindRules, incremental Stream, and
// the first-witness DecideFirst — is a consumer of this one iterator; the
// modes differ only in what they do with each yielded body (enumerate
// heads, emit answers, or short-circuit on the first witness).

// bodyScheme couples a distinct body literal scheme with the data the
// engine needs repeatedly.
type bodyScheme struct {
	scheme     core.LiteralScheme
	patternIdx int // index in rep(MQ) for fresh-variable keying; -1 if atom
	vars       []string
}

// body is one complete body instantiation as delivered by the iterator
// core: the (partial, head-less) instantiation σb and the node tables
// after both semijoin full-reducer halves. Both fields are reused between
// yields; consumers must clone what they keep.
type body struct {
	sigma *core.Instantiation
	s     map[int]*relation.Table
}

// run is the per-execution state of one search over a Prepared metaquery:
// the context, the effective options, the node visit order, the effort
// counters, the current node tables of Figure 4's first half, and the
// consumer hooks. Everything shared across executions (database caches,
// decomposition, join cache) lives on run.p and is only read here, which
// is what makes concurrent executions of one Prepared safe.
//
// opt starts as a copy of the Prepared's options; DecideFirst overrides
// the thresholds (and the limit) per execution without re-preparing, so
// one Prepared serves enumeration and decision runs concurrently.
type run struct {
	p     *Prepared
	opt   Options
	order []*hypertree.Node
	ctx   context.Context
	stats *Stats

	// rTables[nodeID] is r[i] of Figure 4 for the current partial body.
	rTables map[int]*relation.Table

	// restrict, when non-nil, overrides the candidate atoms of individual
	// schemes: the parallel DecideFirst workers each search one block of
	// the partitioned candidate list through this hook.
	restrict map[int][]relation.Atom

	// explain, when non-nil, accumulates per-node estimate-vs-actual
	// observations as node tables are computed (explain.go).
	explain *Explain

	// onBody receives each complete body instantiation. Returning a
	// sentinel (errLimit, errStop, errFound) unwinds the search cleanly.
	onBody func(*body) error

	// emit receives each discovered answer, in discovery order; set by the
	// enumeration consumers (FindRules, Stream), unused by DecideFirst.
	emit func(core.Answer) error
}

// search runs the body search over the whole candidate space, enumerating
// heads for every body (the Figure 4 findRules composition).
func (r *run) search() error {
	r.onBody = r.findHeads
	return r.forEachBody()
}

// forEachBody drives the iterator core: it walks the node order depth
// first and calls r.onBody once per complete body instantiation.
func (r *run) forEachBody() error {
	return r.findBodies(0, core.NewInstantiation())
}

// anyThresholdChecked reports whether empty-join pruning is sound: with at
// least one strict threshold enabled, an empty body join (all indices 0)
// can never pass.
func (r *run) anyThresholdChecked() bool {
	t := r.opt.Thresholds
	return t.CheckSup || t.CheckCnf || t.CheckCvr
}

// findBodies is the recursive body search of Figure 4 (first half). i
// indexes the run's bottom-up node order.
func (r *run) findBodies(i int, sigma *core.Instantiation) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if i == len(r.order) {
		return r.yieldBody(sigma)
	}
	node := r.order[i]
	return r.instantiateNode(node, r.p.nodeSchemes[node.ID], 0, sigma, func() error {
		return r.findBodies(i+1, sigma)
	})
}

// instantiateNode extends sigma over the schemes of one node, then computes
// the node table and recurses via cont.
func (r *run) instantiateNode(node *hypertree.Node, schemeIDs []int, j int, sigma *core.Instantiation, cont func() error) error {
	if j == len(schemeIDs) {
		return r.evalNode(node, schemeIDs, sigma, cont)
	}
	bs := r.p.schemes[schemeIDs[j]]
	l := bs.scheme
	if !l.PredVar {
		// Ordinary atom: nothing to assign.
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	if _, done := sigma.AtomFor(l); done {
		// Assigned at an earlier node (λ sets may overlap).
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	for _, a := range r.candidatesFor(schemeIDs[j], bs) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if rel, ok := sigma.RelationOf(l.Pred); ok && rel != a.Pred {
			continue
		}
		r.stats.BodyCandidatesTried++
		if err := sigma.Assign(l, a); err != nil {
			return err
		}
		err := r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
		sigma.Unassign(l)
		if err != nil {
			return err
		}
	}
	return nil
}

// candidatesFor resolves the candidate atoms the search enumerates for one
// scheme: a parallel-worker restriction wins outright; otherwise the
// selectivity-ordered list (estimated-smallest candidate first, from the
// engine statistics) when the cost planner is active, falling back to the
// raw candidate index order.
func (r *run) candidatesFor(schemeID int, bs bodyScheme) []relation.Atom {
	if r.restrict != nil {
		if c, ok := r.restrict[schemeID]; ok {
			return c
		}
	}
	if !r.opt.DisableCostPlanner {
		if c, ok := r.p.orderedCandidates()[schemeID]; ok {
			return c
		}
	}
	return r.p.eng.cands.Candidates(bs.scheme, r.opt.Type, bs.patternIdx)
}

// evalNode computes r[i] := π_χ(J(σ(λ))) semijoined with the children's
// tables (the bottom-up first half), prunes empty branches, and continues.
func (r *run) evalNode(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation, cont func() error) error {
	tab, err := r.nodeJoin(node, schemeIDs, sigma)
	if err != nil {
		return err
	}
	if r.explain != nil {
		r.explain.observe(node.ID, tab.Len())
	}
	if !r.opt.DisableFullReducer {
		for _, c := range node.Children {
			tab = tab.Semijoin(r.rTables[c.ID])
		}
	}
	if tab.Empty() && r.anyThresholdChecked() {
		r.stats.BodiesPrunedEmpty++
		return nil
	}
	prev, had := r.rTables[node.ID]
	r.rTables[node.ID] = tab
	err = cont()
	if had {
		r.rTables[node.ID] = prev
	} else {
		delete(r.rTables, node.ID)
	}
	return err
}

// nodeJoin computes π_χ(J(σ(λ(p)))) for the node's current atom
// assignment, served from the Prepared's cross-execution join cache. On a
// miss, the join executes through the Engine evaluator: per-atom tables
// from the shared materialization cache, join order and column bookkeeping
// from a plan compiled once per atom-set shape.
func (r *run) nodeJoin(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation) (*relation.Table, error) {
	atoms := make([]relation.Atom, 0, len(schemeIDs))
	key := fmt.Sprintf("n%d|", node.ID)
	for _, id := range schemeIDs {
		a, err := r.instAtom(r.p.schemes[id].scheme, sigma)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		key += a.String() + ";"
	}
	if t, ok := r.p.cachedJoin(key); ok {
		return t, nil
	}
	j, err := r.p.eng.ev.JoinOrdered(atoms, !r.opt.DisableCostPlanner)
	if err != nil {
		return nil, err
	}
	t := j.Project(node.Chi)
	return r.p.storeJoin(key, t), nil
}

// instAtom maps a body scheme through sigma (identity on ordinary atoms).
func (r *run) instAtom(l core.LiteralScheme, sigma *core.Instantiation) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := sigma.AtomFor(l)
	if !ok {
		return relation.Atom{}, fmt.Errorf("engine: pattern %s unassigned at evaluation", l)
	}
	return a, nil
}

// yieldBody runs once per complete body instantiation: it executes the
// second (top-down) half of the full reducer and hands the body to the
// run's consumer.
func (r *run) yieldBody(sigma *core.Instantiation) error {
	r.stats.BodiesReachedRoot++

	// Second half: s[j] := r[j] ⋉ s[parent(j)], top-down.
	s := make(map[int]*relation.Table, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		n := r.order[i]
		t := r.rTables[n.ID]
		if !r.opt.DisableFullReducer && n.Parent != nil {
			t = t.Semijoin(s[n.Parent.ID])
		}
		s[n.ID] = t
	}
	return r.onBody(&body{sigma: sigma, s: s})
}
