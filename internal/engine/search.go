package engine

import (
	"context"
	"fmt"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// This file is the engine's single body-search core: a resumable
// depth-first walk of the decomposition node order that yields each
// complete body instantiation lazily, together with its fully reduced node
// tables. Every execution mode — batch FindRules, incremental Stream, and
// the first-witness DecideFirst — is a consumer of this one iterator; the
// modes differ only in what they do with each yielded body (enumerate
// heads, emit answers, or short-circuit on the first witness).

// bodyScheme couples a distinct body literal scheme with the data the
// engine needs repeatedly.
type bodyScheme struct {
	scheme     core.LiteralScheme
	patternIdx int // index in rep(MQ) for fresh-variable keying; -1 if atom
	vars       []string
}

// body is one complete body instantiation as delivered by the iterator
// core: the (partial, head-less) instantiation σb and the node tables
// after both semijoin full-reducer halves. Both fields are reused between
// yields; consumers must clone what they keep.
type body struct {
	sigma *core.Instantiation
	s     map[int]*relation.Table
}

// run is the per-execution state of one search over a Prepared metaquery:
// the context, the effective options, the node visit order, the effort
// counters, the current node tables of Figure 4's first half, and the
// consumer hooks. Everything shared across executions lives on run.p
// (query analysis) and run.ep (the epoch's caches and snapshot) and is
// only read here, which is what makes concurrent executions of one
// Prepared safe.
//
// Every database-derived structure the run consults — candidate index,
// statistics, evaluator, node-join cache — is reached exclusively through
// r.ep, which pins exactly one engine snapshot for the run's lifetime;
// a run can therefore never observe two epochs, regardless of concurrent
// Apply calls.
//
// opt starts as a copy of the Prepared's options; DecideFirst overrides
// the thresholds (and the limit) per execution without re-preparing, so
// one Prepared serves enumeration and decision runs concurrently.
type run struct {
	p     *Prepared
	ep    *prepEpoch
	opt   Options
	order []*hypertree.Node
	ctx   context.Context
	stats *Stats

	// rTables[nodeID] is r[i] of Figure 4 for the current partial body.
	rTables map[int]*relation.Table

	// restrict, when non-nil, overrides the candidate atoms of individual
	// schemes: the parallel DecideFirst workers each search one block of
	// the partitioned candidate list through this hook.
	restrict map[int][]relation.Atom

	// explain, when non-nil, accumulates per-node estimate-vs-actual
	// observations as node tables are computed (explain.go).
	explain *Explain

	// tr is the run's tracer (obs.go); nil — the default — disables span
	// recording at a nil check per site. span is the parent for spans the
	// search opens (the execution's root span, or a parallel chunk span);
	// rootSpan is the one beginRoot opened, closed by endRoot.
	tr       *obs.Tracer
	span     int
	rootSpan int

	// em points at the engine's execution histograms when enabled; nil
	// skips recording entirely.
	em *Metrics

	// onBody receives each complete body instantiation. Returning a
	// sentinel (errLimit, errStop, errFound) unwinds the search cleanly.
	onBody func(*body) error

	// emit receives each discovered answer, in discovery order; set by the
	// enumeration consumers (FindRules, Stream), unused by DecideFirst.
	emit func(core.Answer) error

	// sc is the run's operator scratch: the search's semijoins and
	// projections draw their buffers and output storage from it and hand
	// run-owned intermediates back through Release, so steady-state
	// executions approach zero allocations. Scratch-owned tables must never
	// escape the run (consumers of body clone what they keep).
	sc *relation.Scratch

	// Reused staging buffers, retained across pooled executions: key and
	// atoms serve nodeJoin (the cache key is built once into key, so cache
	// hits allocate nothing); sTables, sOwned and bodyBuf serve yieldBody's
	// second reducer half; the bj* slices serve bodyJoin's input collection.
	key      []byte
	atoms    []relation.Atom
	sTables  map[int]*relation.Table
	sOwned   []*relation.Table
	bodyBuf  body
	bjTables []*relation.Table
	bjOwn    []bool
	bjAtoms  []relation.Atom
	bjEsts   []stats.Est
}

// release clears everything table- or query-referencing from the run and
// returns it to the pool. The Stats escape to callers and are never pooled;
// the scratch (with its recycled arenas) and the staging buffers are
// retained, which is what makes repeated executions allocation-free.
func (r *run) release() {
	clear(r.rTables)
	clear(r.sTables)
	for i := range r.sOwned {
		r.sOwned[i] = nil
	}
	r.sOwned = r.sOwned[:0]
	for i := range r.bjTables {
		r.bjTables[i] = nil
	}
	r.bjTables = r.bjTables[:0]
	r.bjOwn = r.bjOwn[:0]
	r.atoms = r.atoms[:0]
	r.bjAtoms = r.bjAtoms[:0]
	r.bodyBuf = body{}
	r.p, r.ep, r.ctx, r.order, r.stats = nil, nil, nil, nil, nil
	r.restrict, r.explain, r.onBody, r.emit = nil, nil, nil, nil
	r.tr, r.em = nil, nil
	r.span, r.rootSpan = -1, -1
	runPool.Put(r)
}

// search runs the body search over the whole candidate space, enumerating
// heads for every body (the Figure 4 findRules composition).
func (r *run) search() error {
	r.onBody = r.findHeads
	return r.forEachBody()
}

// forEachBody drives the iterator core: it walks the node order depth
// first and calls r.onBody once per complete body instantiation.
func (r *run) forEachBody() error {
	return r.findBodies(0, core.NewInstantiation())
}

// anyThresholdChecked reports whether empty-join pruning is sound: with at
// least one strict threshold enabled, an empty body join (all indices 0)
// can never pass.
func (r *run) anyThresholdChecked() bool {
	t := r.opt.Thresholds
	return t.CheckSup || t.CheckCnf || t.CheckCvr
}

// findBodies is the recursive body search of Figure 4 (first half). i
// indexes the run's bottom-up node order.
func (r *run) findBodies(i int, sigma *core.Instantiation) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if i == len(r.order) {
		return r.yieldBody(sigma)
	}
	node := r.order[i]
	return r.instantiateNode(node, r.p.nodeSchemes[node.ID], 0, sigma, func() error {
		return r.findBodies(i+1, sigma)
	})
}

// instantiateNode extends sigma over the schemes of one node, then computes
// the node table and recurses via cont.
func (r *run) instantiateNode(node *hypertree.Node, schemeIDs []int, j int, sigma *core.Instantiation, cont func() error) error {
	if j == len(schemeIDs) {
		return r.evalNode(node, schemeIDs, sigma, cont)
	}
	bs := r.p.schemes[schemeIDs[j]]
	l := bs.scheme
	if !l.PredVar {
		// Ordinary atom: nothing to assign.
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	if _, done := sigma.AtomFor(l); done {
		// Assigned at an earlier node (λ sets may overlap).
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	for _, a := range r.candidatesFor(schemeIDs[j], bs) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if rel, ok := sigma.RelationOf(l.Pred); ok && rel != a.Pred {
			continue
		}
		r.stats.BodyCandidatesTried++
		if err := sigma.Assign(l, a); err != nil {
			return err
		}
		err := r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
		sigma.Unassign(l)
		if err != nil {
			return err
		}
	}
	return nil
}

// candidatesFor resolves the candidate atoms the search enumerates for one
// scheme: a parallel-worker restriction wins outright; otherwise the
// selectivity-ordered list (estimated-smallest candidate first, from the
// engine statistics) when the cost planner is active, falling back to the
// raw candidate index order.
func (r *run) candidatesFor(schemeID int, bs bodyScheme) []relation.Atom {
	if r.restrict != nil {
		if c, ok := r.restrict[schemeID]; ok {
			return c
		}
	}
	if !r.opt.DisableCostPlanner {
		if c, ok := r.p.orderedCandidates(r.ep)[schemeID]; ok {
			return c
		}
	}
	return r.ep.snap.cands.Candidates(bs.scheme, r.opt.Type, bs.patternIdx)
}

// evalNode computes r[i] := π_χ(J(σ(λ))) semijoined with the children's
// tables (the bottom-up first half), prunes empty branches, and continues.
func (r *run) evalNode(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation, cont func() error) error {
	tab, err := r.nodeJoin(node, schemeIDs, sigma)
	if err != nil {
		return err
	}
	if r.explain != nil {
		r.explain.observe(node.ID, tab.Len())
	}
	// The cached node join is shared across executions; every semijoin below
	// produces a run-owned intermediate, recycled once the subtree returns.
	owned := false
	if !r.opt.DisableFullReducer {
		for _, c := range node.Children {
			nt := tab.SemijoinS(r.rTables[c.ID], r.sc)
			if owned {
				r.sc.Release(tab)
			}
			tab, owned = nt, true
		}
	}
	if tab.Empty() && r.anyThresholdChecked() {
		if owned {
			r.sc.Release(tab)
		}
		r.stats.BodiesPrunedEmpty++
		return nil
	}
	prev, had := r.rTables[node.ID]
	r.rTables[node.ID] = tab
	err = cont()
	if had {
		r.rTables[node.ID] = prev
	} else {
		delete(r.rTables, node.ID)
	}
	if owned {
		r.sc.Release(tab)
	}
	return err
}

// nodeJoin computes π_χ(J(σ(λ(p)))) for the node's current atom
// assignment, served from the Prepared's cross-execution join cache. On a
// miss, the join executes through the Engine evaluator: per-atom tables
// from the shared materialization cache, join order and column bookkeeping
// from a plan compiled once per atom-set shape.
func (r *run) nodeJoin(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation) (*relation.Table, error) {
	// The cache key is a binary encoding of (node, atom assignment) built
	// into the run's reused buffer; the map lookup converts it with
	// string(key), which Go compiles without an allocation, so cache hits —
	// the steady state — cost no allocation at all. Only a miss materializes
	// the key string (inside storeJoin's map insert).
	key := append(r.key[:0], 'n')
	key = appendKeyUint(key, uint32(node.ID))
	atoms := r.atoms[:0]
	for _, id := range schemeIDs {
		a, err := r.instAtom(r.p.schemes[id].scheme, sigma)
		if err != nil {
			r.key, r.atoms = key, atoms
			return nil, err
		}
		atoms = append(atoms, a)
		key = appendAtomKey(key, a)
	}
	r.key, r.atoms = key, atoms
	if t, ok := r.ep.cachedJoin(key); ok {
		if r.tr != nil {
			r.tr.Point(r.span, "node-join",
				obs.AInt("node", node.ID),
				obs.A("cache", "hit"),
				obs.AFloat("est_rows", r.p.nodeEstimates(r.ep)[node.ID]),
				obs.AInt("rows", t.Len()))
		}
		return t, nil
	}
	span := -1
	var joinStart time.Time
	if r.tr != nil || r.em != nil {
		// Timed only when observed: the disabled path stays two nil checks.
		if r.tr != nil {
			span = r.tr.Begin(r.span, "node-join")
		}
		joinStart = time.Now()
	}
	j, err := r.ep.snap.ev.JoinOrdered(atoms, !r.opt.DisableCostPlanner)
	if err != nil {
		r.tr.End(span, obs.A("error", err.Error()))
		return nil, err
	}
	t := j.Project(node.Chi)
	t = r.ep.storeJoin(key, t)
	if r.tr != nil || r.em != nil {
		d := time.Since(joinStart)
		est := r.p.nodeEstimates(r.ep)[node.ID]
		if r.em != nil {
			r.em.NodeJoin.RecordDuration(d)
			r.em.EstActualRatio.Record(ratioPerMille(est, t.Len()))
		}
		r.tr.End(span,
			obs.AInt("node", node.ID),
			obs.A("cache", "miss"),
			obs.AFloat("est_rows", est),
			obs.AInt("rows", t.Len()))
	}
	return t, nil
}

// appendAtomKey appends an injective binary encoding of a: length-prefixed
// predicate, term count, then tagged self-delimiting terms. Together with
// the node-ID prefix (which fixes the atom count) the whole key is uniquely
// decodable, so distinct assignments never collide.
func appendAtomKey(key []byte, a relation.Atom) []byte {
	key = appendKeyUint(key, uint32(len(a.Pred)))
	key = append(key, a.Pred...)
	key = appendKeyUint(key, uint32(len(a.Terms)))
	for _, t := range a.Terms {
		switch {
		case t.Var != "":
			key = append(key, 'v')
			key = appendKeyUint(key, uint32(len(t.Var)))
			key = append(key, t.Var...)
		case t.ConstName != "":
			key = append(key, 'd')
			key = appendKeyUint(key, uint32(len(t.ConstName)))
			key = append(key, t.ConstName...)
		default:
			key = append(key, 'c')
			key = appendKeyUint(key, uint32(t.Const))
		}
	}
	return key
}

func appendKeyUint(key []byte, v uint32) []byte {
	return append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// instAtom maps a body scheme through sigma (identity on ordinary atoms).
func (r *run) instAtom(l core.LiteralScheme, sigma *core.Instantiation) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := sigma.AtomFor(l)
	if !ok {
		return relation.Atom{}, fmt.Errorf("engine: pattern %s unassigned at evaluation", l)
	}
	return a, nil
}

// yieldBody runs once per complete body instantiation: it executes the
// second (top-down) half of the full reducer and hands the body to the
// run's consumer.
func (r *run) yieldBody(sigma *core.Instantiation) error {
	r.stats.BodiesReachedRoot++

	// Second half: s[j] := r[j] ⋉ s[parent(j)], top-down. The map, the
	// owned-intermediate list and the body value are reused across yields
	// (the consumer contract already requires cloning anything kept).
	s := r.sTables
	if s == nil {
		s = make(map[int]*relation.Table, len(r.order))
		r.sTables = s
	}
	owned := r.sOwned[:0]
	for i := len(r.order) - 1; i >= 0; i-- {
		n := r.order[i]
		t := r.rTables[n.ID]
		if !r.opt.DisableFullReducer && n.Parent != nil {
			t = t.SemijoinS(s[n.Parent.ID], r.sc)
			owned = append(owned, t)
		}
		s[n.ID] = t
	}
	r.bodyBuf.sigma, r.bodyBuf.s = sigma, s
	err := r.onBody(&r.bodyBuf)
	for i, t := range owned {
		r.sc.Release(t)
		owned[i] = nil
	}
	r.sOwned = owned[:0]
	return err
}
