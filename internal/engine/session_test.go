package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// bigSearchDB builds a database whose type-2 instantiation space is far too
// large to exhaust within the tests' deadlines, for cancellation tests.
func bigSearchDB(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	for r := 0; r < 10; r++ {
		name := fmt.Sprintf("r%d", r)
		db.MustAddRelation(name, 3)
		for i := 0; i < 20; i++ {
			db.MustInsertNamed(name,
				fmt.Sprintf("a%d", (i*7+r)%9),
				fmt.Sprintf("b%d", (i*5+r)%9),
				fmt.Sprintf("c%d", (i*3+r)%9))
		}
	}
	return db
}

func TestPreparedReexecutionMatchesFindRules(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
		opt := Options{Type: typ, Thresholds: core.AllAbove(rat.New(1, 4), rat.Zero, rat.Zero)}
		want, _, err := FindRules(db, mq, opt)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := NewEngine(db).Prepare(mq, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Execute three times: the later runs are served from the shared
		// join and atom-table caches and must be identical.
		for i := 0; i < 3; i++ {
			got, err := prep.FindRules(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, got, want, fmt.Sprintf("%s run %d", typ, i))
		}
	}
}

func TestEngineDecideMatchesCore(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	eng := NewEngine(db)
	ctx := context.Background()
	for _, tc := range []struct {
		ix core.Index
		k  rat.Rat
	}{
		{core.Sup, rat.Zero},
		{core.Cnf, rat.New(1, 2)},
		{core.Cnf, rat.New(99, 100)},
		{core.Cvr, rat.New(999, 1000)},
	} {
		want, _, err := core.Decide(db, mq, tc.ix, tc.k, core.Type1)
		if err != nil {
			t.Fatal(err)
		}
		got, witness, err := eng.Decide(ctx, mq, tc.ix, tc.k, core.Type1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Decide(%v > %v) = %v, core says %v", tc.ix, tc.k, got, want)
		}
		if got {
			// The witness must actually exceed the threshold.
			rule, err := witness.Apply(mq)
			if err != nil {
				t.Fatal(err)
			}
			v, err := tc.ix.Compute(db, rule)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Greater(tc.k) {
				t.Errorf("witness %s scores %v, not > %v", rule, v, tc.k)
			}
		}
	}
}

func TestFindRulesContextPreCancelled(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := FindRulesContext(ctx, db, mq, Options{Type: core.Type0})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFindRulesContextDeadline(t *testing.T) {
	db := bigSearchDB(t)
	mq := core.MustParse("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := FindRulesContext(ctx, db, mq, Options{Type: core.Type2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The search must stop promptly once the deadline passes, not finish
	// the exponential enumeration. Allow generous slack for slow machines.
	if elapsed > 5*time.Second {
		t.Fatalf("search took %v to notice a 30ms deadline", elapsed)
	}
}

func TestFindRulesCancelMidSearch(t *testing.T) {
	db := bigSearchDB(t)
	mq := core.MustParse("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := FindRulesContext(ctx, db, mq, Options{Type: core.Type2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("search took %v to notice cancellation", elapsed)
	}
}

func TestStreamMatchesFindRules(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	opt := Options{Type: core.Type1, Thresholds: core.SingleIndex(core.Cvr, rat.New(1, 2))}
	want, _, err := FindRules(db, mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := NewEngine(db).Prepare(mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Answer
	for a, err := range prep.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	core.SortAnswers(got)
	assertSameAnswers(t, got, want, "streamed")
}

func TestStreamEarlyExitDoesLessWork(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	// No thresholds: every instantiation is admissible, so the full run
	// must examine the entire candidate space.
	opt := Options{Type: core.Type1}
	full, fullStats, err := FindRules(db, mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("workload too small: %d answers", len(full))
	}

	prep, err := NewEngine(db).Prepare(mq, opt)
	if err != nil {
		t.Fatal(err)
	}
	var early Stats
	n := 0
	for _, err := range prep.StreamStats(context.Background(), &early) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break // first answer is enough
	}
	if n != 1 {
		t.Fatalf("streamed %d answers, want 1", n)
	}
	if early.Answers != 1 {
		t.Errorf("stats count %d answers, want 1 (the delivered answer counts even on break)", early.Answers)
	}
	earlyWork := early.BodyCandidatesTried + early.HeadsTried
	fullWork := fullStats.BodyCandidatesTried + fullStats.HeadsTried
	if earlyWork >= fullWork {
		t.Fatalf("early exit did %d units of work, full search did %d; want strictly less",
			earlyWork, fullWork)
	}
}

func TestStreamHonorsLimit(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type1, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range prep.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d answers with Limit 3", n)
	}
}

func TestStreamDeliversCtxErrorInBand(t *testing.T) {
	db := db1(t)
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last error
	for _, err := range prep.Stream(ctx) {
		last = err
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("stream delivered %v, want context.Canceled", last)
	}
}

// TestEngineSharedAcrossGoroutines exercises one Engine (and one shared
// Prepared) from many goroutines at once; run under -race it also proves
// the cache synchronization. Results must be identical across goroutines.
func TestEngineSharedAcrossGoroutines(t *testing.T) {
	db := db1(t)
	eng := NewEngine(db)
	mqs := []*core.Metaquery{
		core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)"),
		core.MustParse("R(X,Y) <- P(X,Y)"),
	}
	shared, err := eng.Prepare(mqs[0], Options{Type: core.Type1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := shared.FindRules(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Concurrent executions of the shared Prepared ...
			got, err := shared.FindRules(context.Background())
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("goroutine %d: %d answers, want %d", g, len(got), len(want))
				return
			}
			for i := range got {
				if got[i].Rule.String() != want[i].Rule.String() {
					errs <- fmt.Errorf("goroutine %d: answer %d differs", g, i)
					return
				}
			}
			// ... interleaved with fresh Prepare+run on the same Engine.
			mq := mqs[g%len(mqs)]
			p, err := eng.Prepare(mq, Options{Type: core.InstType(g % 3)})
			if err != nil {
				errs <- err
				return
			}
			if _, err := p.FindRules(context.Background()); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
