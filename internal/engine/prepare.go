package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/relation"
)

// Prepared is a metaquery analyzed once and executable many times against
// its Engine's database, analogous to database/sql's *Stmt. Preparation
// performs the per-query work of Figure 4's preamble — semantic validation
// for the chosen instantiation type, deduplication of body schemes, the
// hypertree decomposition and its bottom-up order — so repeated executions
// pay only for the search itself. The node-join cache (π_χ(J(σ(λ))) per
// atom assignment) is also shared across executions, so later runs reuse
// the joins earlier runs materialized.
//
// All data-dependent execution state lives in a per-epoch layer
// (prepEpoch): when the engine's database advances through Apply, the next
// execution transparently re-derives that layer against the new snapshot —
// carrying over every cached node join whose relations the delta did not
// touch — while executions already in flight finish on the epoch they
// started with. The query analysis itself (schemes, decomposition, order)
// depends only on the metaquery and survives every delta.
//
// A Prepared is safe for concurrent use by multiple goroutines; each
// execution carries its own mutable search state.
type Prepared struct {
	eng *Engine
	mq  *core.Metaquery
	opt Options

	schemes []bodyScheme // distinct body schemes, ID = slice index
	decomp  *hypertree.Decomposition
	order   []*hypertree.Node // bottom-up

	// nodeSchemes[nodeID] lists the scheme IDs in λ(node).
	nodeSchemes map[int][]int

	headPatternIdx int

	// ep is the current per-epoch execution state; epMu serializes its
	// re-derivation when the engine's snapshot has advanced.
	epMu sync.Mutex
	ep   atomic.Pointer[prepEpoch]
}

// prepEpoch is the data-dependent half of a Prepared, bound to exactly one
// engine snapshot: the node-join cache, the decision visit order, and the
// selectivity-ordered candidate lists. A run resolves its prepEpoch once at
// start and dereferences only it thereafter, so a single execution can
// never observe two different epochs.
type prepEpoch struct {
	snap *snapshot

	// joinCache caches π_χ(J(σ(λ))) keyed by node and atom assignment,
	// shared by all executions on this epoch. Misses execute through the
	// snapshot evaluator's compiled-plan cache (one plan per node atom-set
	// shape), so they pay only the build/probe passes, not the join-order
	// and column analysis.
	joinMu    sync.RWMutex
	joinCache map[string]*relation.Table

	// decideOrderNodes is the selectivity-sorted node visit order used by
	// DecideFirst runs, computed lazily once (decide.go).
	decideOrderOnce  sync.Once
	decideOrderNodes []*hypertree.Node

	// candOrder maps scheme IDs to their candidate atoms re-sorted by
	// estimated materialization size ascending (most selective first), so
	// every execution enumerates the candidates cheapest-to-check first.
	// Computed lazily once from the snapshot statistics; nil entries (and a
	// nil map) fall back to the candidate index order.
	candOrderOnce sync.Once
	candOrder     map[int][]relation.Atom

	// nodeEst caches the per-node estimated λ-join output sizes consumed
	// by the tracing/metrics layer (estimate-vs-actual per node join),
	// computed lazily once per epoch so observed runs pay a map lookup,
	// not a re-estimation, per join.
	nodeEstOnce sync.Once
	nodeEst     map[int]float64
}

// Prepare validates mq for opt.Type and computes the query-level analysis
// (body scheme deduplication, hypertree decomposition, node order) the
// executions share.
func (e *Engine) Prepare(mq *core.Metaquery, opt Options) (*Prepared, error) {
	snap := e.snap.Load()
	if err := core.ValidateForType(snap.db, mq, opt.Type); err != nil {
		return nil, err
	}
	if err := opt.Approx.validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	p := &Prepared{
		eng: e,
		mq:  mq,
		opt: opt,
	}
	p.ep.Store(&prepEpoch{snap: snap, joinCache: make(map[string]*relation.Table)})

	// Distinct body schemes (the paper treats ls(MQ) as a set).
	seen := map[string]int{}
	for _, l := range mq.Body {
		if _, dup := seen[l.Key()]; dup {
			continue
		}
		seen[l.Key()] = len(p.schemes)
		p.schemes = append(p.schemes, bodyScheme{
			scheme:     l,
			patternIdx: core.PatternIndex(mq, l),
			vars:       l.Vars(),
		})
	}
	p.headPatternIdx = core.PatternIndex(mq, mq.Head)

	atoms := make([]hypertree.AtomSchema, len(p.schemes))
	for i, s := range p.schemes {
		atoms[i] = hypertree.AtomSchema{ID: i, Vars: s.vars}
	}
	if opt.FlatDecomposition {
		p.decomp = flatDecomposition(atoms)
	} else {
		p.decomp = hypertree.Decompose(atoms)
	}
	if err := hypertree.Validate(atoms, p.decomp); err != nil {
		return nil, fmt.Errorf("engine: decomposition invalid: %w", err)
	}
	p.order = p.decomp.BottomUpOrder()

	p.nodeSchemes = make(map[int][]int, len(p.order))
	for _, n := range p.order {
		p.nodeSchemes[n.ID] = append([]int(nil), n.Lambda...)
	}
	return p, nil
}

// Engine returns the session the metaquery was prepared on.
func (p *Prepared) Engine() *Engine { return p.eng }

// Metaquery returns the prepared metaquery.
func (p *Prepared) Metaquery() *core.Metaquery { return p.mq }

// Options returns the options the metaquery was prepared with.
func (p *Prepared) Options() Options { return p.opt }

// Width returns the hypertree width of the decomposition in use.
func (p *Prepared) Width() int { return p.decomp.Width }

// epoch returns the per-epoch execution state for the engine's current
// snapshot, re-deriving it when an Apply has advanced the engine since the
// last execution. The fast path is one atomic load and one pointer
// comparison. On re-derivation, every cached node join whose relations are
// pointer-identical across the two database versions is carried over — a
// delta invalidates exactly the joins that touch a changed relation.
func (p *Prepared) epoch() *prepEpoch {
	snap := p.eng.snap.Load()
	ep := p.ep.Load()
	if ep.snap == snap {
		return ep
	}
	p.epMu.Lock()
	defer p.epMu.Unlock()
	// Re-read both under the lock: another re-derivation may have won, and
	// the engine may have advanced again meanwhile.
	snap = p.eng.snap.Load()
	ep = p.ep.Load()
	if ep.snap == snap {
		return ep
	}
	nep := &prepEpoch{snap: snap, joinCache: make(map[string]*relation.Table)}
	ep.joinMu.RLock()
	for key, t := range ep.joinCache {
		if joinKeyUnchanged(key, ep.snap.db, snap.db) {
			nep.joinCache[key] = t
		}
	}
	ep.joinMu.RUnlock()
	p.ep.Store(nep)
	return nep
}

// joinKeyUnchanged decodes the predicates out of a binary node-join cache
// key (see nodeJoin/appendAtomKey for the encoding) and reports whether
// every one resolves to the same *Relation in both database versions —
// copy-on-write deltas share unchanged relations, so pointer equality is
// exactly "this join's inputs did not change".
func joinKeyUnchanged(key string, old, new *relation.Database) bool {
	// Layout: 'n' u32(nodeID) then per atom: u32(len) pred u32(nterms)
	// followed by nterms tagged terms ('v'/'d': u32(len) bytes, 'c': u32).
	i := 1 + 4
	for i < len(key) {
		if i+4 > len(key) {
			return false // malformed; treat as changed
		}
		plen := int(keyU32(key, i))
		i += 4
		if i+plen+4 > len(key) {
			return false
		}
		pred := key[i : i+plen]
		i += plen
		if r := new.Relation(pred); r == nil || r != old.Relation(pred) {
			return false
		}
		nterms := int(keyU32(key, i))
		i += 4
		for t := 0; t < nterms; t++ {
			if i >= len(key) {
				return false
			}
			switch key[i] {
			case 'v', 'd':
				if i+5 > len(key) {
					return false
				}
				i += 5 + int(keyU32(key, i+1))
			case 'c':
				i += 5
			default:
				return false
			}
		}
	}
	return i == len(key)
}

// keyU32 reads the little-endian uint32 appendKeyUint wrote at offset i.
func keyU32(key string, i int) uint32 {
	return uint32(key[i]) | uint32(key[i+1])<<8 | uint32(key[i+2])<<16 | uint32(key[i+3])<<24
}

// cachedJoin looks up a node join by its binary key. The string(key)
// conversion in a map index expression does not allocate, so hits are free.
func (ep *prepEpoch) cachedJoin(key []byte) (*relation.Table, bool) {
	ep.joinMu.RLock()
	t, ok := ep.joinCache[string(key)]
	ep.joinMu.RUnlock()
	return t, ok
}

// storeJoin records t under key and returns the canonical cached table
// (an earlier concurrent writer's, if it lost the race). The key string is
// materialized here, on the miss path only.
func (ep *prepEpoch) storeJoin(key []byte, t *relation.Table) *relation.Table {
	t = t.Compact() // cached across executions; don't pin the input-sized arena
	ep.joinMu.Lock()
	if prev, ok := ep.joinCache[string(key)]; ok {
		t = prev
	} else {
		ep.joinCache[string(key)] = t
	}
	ep.joinMu.Unlock()
	return t
}

// orderedCandidates returns the epoch's selectivity-ordered candidate
// lists, computing them on first use: per pattern scheme, the candidate
// atoms sorted by estimated materialization size ascending (stable, so
// equal estimates keep the candidate index order). Ordering depends only on
// the snapshot statistics and the preparation, so it is shared by all
// executions on the epoch.
func (p *Prepared) orderedCandidates(ep *prepEpoch) map[int][]relation.Atom {
	ep.candOrderOnce.Do(func() {
		st := ep.snap.st
		if st == nil {
			return
		}
		m := make(map[int][]relation.Atom, len(p.schemes))
		for id, bs := range p.schemes {
			if !bs.scheme.PredVar {
				continue
			}
			cands := ep.snap.cands.Candidates(bs.scheme, p.opt.Type, bs.patternIdx)
			if len(cands) < 2 {
				continue
			}
			rows := make([]float64, len(cands))
			for i, a := range cands {
				rows[i] = ep.snap.ev.AtomEst(a).Rows
			}
			perm := make([]int, len(cands))
			for i := range perm {
				perm[i] = i
			}
			sort.SliceStable(perm, func(i, j int) bool { return rows[perm[i]] < rows[perm[j]] })
			sorted := make([]relation.Atom, len(cands))
			for k, i := range perm {
				sorted[k] = cands[i]
			}
			m[id] = sorted
		}
		ep.candOrder = m
	})
	return ep.candOrder
}

// newRun builds the per-execution search state for the prepared options.
// ctx may be nil.
func (p *Prepared) newRun(ctx context.Context) *run {
	return p.newRunOpt(ctx, p.opt)
}

// runPool recycles run values — with their operator scratch (and its
// recycled table arenas), node-table maps, and staging buffers — across
// executions of every Prepared, so a warmed-up process runs steady-state
// searches without allocating per-run state. Runs are returned by
// run.release, which clears all table and query references first.
var runPool = sync.Pool{New: func() any { return new(run) }}

// newRunOpt is newRun with the effective options overridden for this
// execution (DecideFirst swaps in single-index thresholds without
// re-preparing). Everything option-independent — decomposition, node
// order, caches — is shared with the Prepared. The returned run must be
// handed back via run.release when the execution finishes; its Stats are
// caller-owned and survive the release.
func (p *Prepared) newRunOpt(ctx context.Context, opt Options) *run {
	return p.newRunEp(ctx, opt, p.tracedEpoch(resolveTracer(ctx, opt)))
}

// nodeEstimates returns the epoch's per-node estimated λ-join output
// sizes (nodeEstimate over every decomposition node), computed on first
// use and shared by all observed executions on the epoch.
func (p *Prepared) nodeEstimates(ep *prepEpoch) map[int]float64 {
	ep.nodeEstOnce.Do(func() {
		m := make(map[int]float64, len(p.order))
		for _, n := range p.order {
			m[n.ID] = p.nodeEstimate(ep, n)
		}
		ep.nodeEst = m
	})
	return ep.nodeEst
}

// newRunEp is newRunOpt with the epoch pinned by the caller: the parallel
// paths resolve one epoch up front and hand it to every worker run, so all
// blocks of one sharded execution search the same database version even if
// an Apply lands mid-flight.
func (p *Prepared) newRunEp(ctx context.Context, opt Options, ep *prepEpoch) *run {
	if ctx == nil {
		ctx = context.Background()
	}
	r := runPool.Get().(*run)
	r.p, r.ep, r.opt, r.order, r.ctx = p, ep, opt, p.order, ctx
	r.stats = &Stats{Width: p.decomp.Width, Nodes: len(p.order)}
	r.tr = resolveTracer(ctx, opt)
	r.em = p.eng.obsm.Load()
	r.span, r.rootSpan = -1, -1
	if r.rTables == nil {
		r.rTables = make(map[int]*relation.Table, len(p.order))
	}
	if r.sc == nil {
		r.sc = relation.NewScratch()
	}
	return r
}

// FindRules executes the prepared metaquery, returning every admissible
// answer sorted by rule text. The search stops promptly with ctx.Err()
// when ctx is cancelled or its deadline passes.
func (p *Prepared) FindRules(ctx context.Context) ([]core.Answer, error) {
	answers, _, err := p.FindRulesStats(ctx)
	return answers, err
}

// FindRulesStats is FindRules returning the execution's search counters.
//
// With Options.Workers > 1 the enumeration itself is parallel: the body
// search is sharded across workers (see Stream) and the merged answers are
// sorted afterwards, so the result is identical to the sequential run.
func (p *Prepared) FindRulesStats(ctx context.Context) ([]core.Answer, *Stats, error) {
	if p.opt.Workers > 1 {
		if answers, st, ok, err := p.findRulesParallel(ctx); ok {
			return answers, st, err
		}
		// No partitionable scheme: fall through to the sequential run.
	}
	r := p.newRun(ctx)
	defer r.release()
	r.beginRoot("findrules")
	defer r.endRoot()
	var answers []core.Answer
	r.emit = func(a core.Answer) error {
		answers = append(answers, a)
		if r.opt.Limit > 0 && len(answers) >= r.opt.Limit {
			return errLimit
		}
		return nil
	}
	if err := r.search(); err != nil && err != errLimit {
		return nil, nil, err
	}
	core.SortAnswers(answers)
	r.stats.Answers = len(answers)
	return answers, r.stats, nil
}
