package engine

import (
	"context"

	"github.com/mqgo/metaquery/internal/approx"
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// approxMinPopulation is the denominator size below which sampling cannot
// beat the exact block-hashed semijoin kernels: tiny fractions are computed
// exactly, outside the escalation accounting.
const approxMinPopulation = 16

// approxMinFractionBudget floors the stratified per-fraction budget shares
// at one checkpoint doubling, so a low-estimate atom can still clear an
// interval instead of escalating unconditionally.
const approxMinFractionBudget = 32

// DecideApprox solves the decision problem ⟨DB, MQ, ix, k, T⟩ like
// DecideFirst, but evaluates the candidate fractions by uniform row
// sampling under the Prepared's Options.Approx (ε, δ) contract instead of
// exactly. For every candidate fraction |t ⋉ u| / |t| it runs a sequential
// test (internal/approx.Seq): uniform rows of t are drawn without
// replacement and probed against u, and the candidate is accepted or
// rejected as soon as the Hoeffding interval at confidence 1−δ clears the
// threshold. An interval still straddling k after the sample budget — which
// certifies the fraction is within ±ε of k under the default budget —
// escalates to the same exact semijoin kernels DecideFirst uses, as does a
// budget that covers the whole population (exhausted without-replacement
// sampling *is* exact evaluation).
//
// The error contract is one-sided in practice: a sampled accept is
// confirmed exactly before it can become a witness, so a YES verdict (and
// its witness) is never wrong; a NO verdict may miss a true witness with
// probability at most δ per rejected fraction when its true value lies
// above k+ε. Stats.SamplesDrawn and Stats.ApproxEscalated report the
// sampling effort and the escalation count.
//
// The run shares everything with DecideFirst: the candidate index, the
// selectivity-ordered (stats-driven) node visit order, and the per-epoch
// node-join cache. The per-body sup budget is stratified across the body's
// atom fractions proportionally to the statistics' MCV-backed cardinality
// estimates. All sampling randomness derives from Options.Approx.Seed, so
// identical inputs replay identical decisions. The run is sequential:
// Options.Workers is ignored here (the sampled NO path makes per-candidate
// work too small to amortize worker startup).
//
// Without Options.Approx configured, DecideApprox falls back to the exact
// DecideFirst.
func (p *Prepared) DecideApprox(ctx context.Context, ix core.Index, k rat.Rat) (bool, *core.Instantiation, error) {
	yes, wit, _, err := p.DecideApproxStats(ctx, ix, k)
	return yes, wit, err
}

// DecideApproxStats is DecideApprox additionally returning the run's search
// counters, including the samples-drawn and escalation counts.
func (p *Prepared) DecideApproxStats(ctx context.Context, ix core.Index, k rat.Rat) (bool, *core.Instantiation, *Stats, error) {
	if !p.opt.Approx.Enabled() {
		return p.DecideFirstStats(ctx, ix, k)
	}
	opt := p.opt
	opt.Thresholds = core.SingleIndex(ix, k)
	opt.Limit = 0
	ep := p.tracedEpoch(resolveTracer(ctx, opt))
	r := p.newRunEp(ctx, opt, ep)
	defer r.release()
	r.order = p.decideOrder(ep)
	r.beginRoot("decide-approx")
	defer r.endRoot()

	d := &approxDecider{
		run: r,
		ix:  ix,
		k:   k,
		kf:  k.Float64(),
		par: approxParams(opt.Approx),
	}
	d.seedBase = approxSeedBase(opt.Approx.Seed, ix, k)
	r.onBody = d.onBody
	err := r.forEachBody()
	if err != nil && err != errFound {
		return false, nil, r.stats, err
	}
	if d.witness != nil {
		r.stats.Answers = 1
	}
	return d.witness != nil, d.witness, r.stats, nil
}

// approxParams normalizes the option triple: an unset budget derives the
// Hoeffding count at which a straddling interval certifies the fraction is
// inside the ±ε band (the δ/16 accounts for the geometric checkpoint
// schedule splitting δ across at most ~16 looks).
func approxParams(a ApproxOptions) approx.Params {
	par := approx.Params{Epsilon: a.Epsilon, Delta: a.Delta, MaxSamples: a.MaxSamples}
	if par.MaxSamples == 0 {
		par.MaxSamples = approx.SamplesFor(a.Epsilon, a.Delta/16)
	}
	return par
}

// approxSeedBase folds the decision's identity into the configured seed so
// different (ix, k) decisions draw different — but individually
// reproducible — sample orders. Seed 0 means a fixed default, never a
// random one.
func approxSeedBase(seed int64, ix core.Index, k rat.Rat) uint64 {
	s := uint64(seed)
	if s == 0 {
		s = 0x6d657461717279 // "metaqry": the fixed default seed
	}
	s ^= uint64(ix+1) << 56
	s ^= uint64(k.Num())<<20 ^ uint64(k.Den())
	return s
}

// approxDecider is the sampling first-witness consumer of the body-search
// iterator: the DecideApprox counterpart of decider.
type approxDecider struct {
	run      *run
	ix       core.Index
	k        rat.Rat
	kf       float64
	par      approx.Params
	seedBase uint64
	seedCtr  uint64
	witness  *core.Instantiation

	// Reused per-fraction staging (probe tuple and column positions) and
	// per-body stratification buffers.
	buf  relation.Tuple
	pos  []int
	raS  []*relation.Table
	idS  []int
	estS []float64
}

// nextSeed returns a fresh deterministic sampler seed: a Weyl sequence over
// the decision's seed base, advanced once per fraction in walk order.
func (d *approxDecider) nextSeed() uint64 {
	d.seedCtr++
	return d.seedBase + d.seedCtr*0x9e3779b97f4a7c15
}

// onBody checks one complete body instantiation, sampling its fractions.
func (d *approxDecider) onBody(b *body) error {
	if d.ix == core.Sup {
		return d.supBody(b)
	}
	return d.headSearch(b)
}

// supBody decides the head-independent support index for one body: sup is
// the maximum atom fraction, so the body is a witness as soon as any
// fraction exceeds k. The sample budget is stratified across the body's
// atom fractions proportionally to the snapshot statistics' estimated atom
// cardinalities (AtomEst consults the MCV sketches for constant
// selections), floored so small strata still get a decidable share.
func (d *approxDecider) supBody(b *body) error {
	r := d.run
	ras, ids, ests := d.raS[:0], d.idS[:0], d.estS[:0]
	defer func() {
		for i := range ras {
			ras[i] = nil
		}
		d.raS, d.idS, d.estS = ras[:0], ids[:0], ests[:0]
	}()
	total := 0.0
	for id, bs := range r.p.schemes {
		atom, err := r.instAtom(bs.scheme, b.sigma)
		if err != nil {
			return err
		}
		ra, err := r.ep.snap.ev.TableFor(atom)
		if err != nil {
			return err
		}
		if ra.Len() == 0 {
			continue
		}
		est := float64(ra.Len())
		if r.ep.snap.st != nil && !r.opt.DisableCostPlanner {
			if e := r.ep.snap.ev.AtomEst(atom).Rows; e > 0 {
				est = e
			}
		}
		ras, ids, ests = append(ras, ra), append(ids, id), append(ests, est)
		total += est
	}
	exceeded := false
	for i, ra := range ras {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		budget := d.par.MaxSamples
		if len(ras) > 1 && total > 0 {
			budget = int(float64(d.par.MaxSamples) * ests[i] / total)
			if budget < approxMinFractionBudget {
				budget = approxMinFractionBudget
			}
		}
		bs := r.p.schemes[ids[i]]
		node := r.p.decomp.CoverNode[ids[i]]
		reduced := b.s[node.ID].ProjectS(bs.vars, r.sc)
		exceeds, err := d.fractionExceeds(ra, reduced, budget)
		r.sc.Release(reduced)
		if err != nil {
			return err
		}
		if exceeds {
			exceeded = true
			break
		}
	}
	if !exceeded {
		r.stats.BodiesPrunedSupport++
		return nil
	}
	wit, ok := r.completeHead(b.sigma)
	if !ok {
		return nil
	}
	r.stats.HeadsSkipped++
	d.witness = wit
	return errFound
}

// headSearch materializes the body join once and samples the queried
// head-dependent fraction for each agreeing head candidate: cnf samples the
// body join's rows against the head table, cvr samples the head table's
// rows against the body join.
func (d *approxDecider) headSearch(b *body) error {
	r := d.run
	bj, bjOwned, err := r.bodyJoin(b.sigma, b.s)
	if err != nil {
		return err
	}
	release := func() {
		if bjOwned {
			r.sc.Release(bj)
		}
	}
	for _, ha := range r.ep.snap.cands.Candidates(r.p.mq.Head, r.opt.Type, r.p.headPatternIdx) {
		if err := r.ctx.Err(); err != nil {
			release()
			return err
		}
		if !r.headAgrees(b.sigma, ha) {
			continue
		}
		r.stats.HeadsTried++
		h, err := r.ep.snap.ev.TableFor(ha)
		if err != nil {
			release()
			return err
		}
		var exceeds bool
		if d.ix == core.Cnf {
			// cnf = |b ⋉ h| / |b|: sample body-join rows, probe the head.
			exceeds, err = d.fractionExceeds(bj, h, d.par.MaxSamples)
		} else {
			// cvr = |h ⋉ b| / |h|: sample head rows, probe the body join.
			exceeds, err = d.fractionExceeds(h, bj, d.par.MaxSamples)
		}
		if err != nil {
			release()
			return err
		}
		if !exceeds {
			continue
		}
		full := b.sigma.Clone()
		if r.p.mq.Head.PredVar {
			if err := full.Assign(r.p.mq.Head, ha); err != nil {
				continue // cannot agree (e.g. conflicting relation)
			}
		}
		d.witness = full
		release()
		return errFound
	}
	release()
	return nil
}

// fractionExceeds decides |t ⋉ u| / |t| > k through fractionExceedsImpl,
// wrapping it in a "sample" span when the run is traced: the span's
// escalated attr reports whether this fraction was resolved exactly (every
// ApproxEscalated increment happens inside the impl, at most once per
// call, so the before/after delta is exact), and drawn reports the rows
// this call sampled.
func (d *approxDecider) fractionExceeds(t, u *relation.Table, budget int) (bool, error) {
	r := d.run
	if r.tr == nil {
		return d.fractionExceedsImpl(t, u, budget)
	}
	esc0, drawn0 := r.stats.ApproxEscalated, r.stats.SamplesDrawn
	sp := r.tr.Begin(r.span, "sample")
	exceeds, err := d.fractionExceedsImpl(t, u, budget)
	r.tr.End(sp,
		obs.AInt("population", t.Len()),
		obs.AInt("budget", budget),
		obs.AInt("drawn", r.stats.SamplesDrawn-drawn0),
		obs.ABool("escalated", r.stats.ApproxEscalated > esc0),
		obs.ABool("exceeds", exceeds))
	return exceeds, err
}

// fractionExceedsImpl decides |t ⋉ u| / |t| > k. Large denominators run
// the sequential sampled test with the given budget; tiny ones, cartesian
// degenerations (no shared columns), escalations, and the exact
// confirmation of sampled accepts all go through the same exact kernels the
// exact decider uses, so every returned YES is a certainty.
func (d *approxDecider) fractionExceedsImpl(t, u *relation.Table, budget int) (bool, error) {
	r := d.run
	pop := t.Len()
	if pop == 0 {
		return false, nil // fraction 0; 0 > k is false for k ≥ 0
	}
	// d.pos holds, for each shared column in u's column order, its position
	// in t; probeSet below restages it if u needs projecting.
	d.pos = d.pos[:0]
	for _, v := range u.Vars() {
		if p := t.Pos(v); p >= 0 {
			d.pos = append(d.pos, p)
		}
	}
	if len(d.pos) == 0 {
		// Cartesian semijoin semantics: every t row matches iff u has rows.
		if u.Empty() {
			return false, nil
		}
		return rat.One.Greater(d.k), nil
	}
	exact := func() (bool, error) {
		num := t.SemijoinCountS(u, r.sc)
		if num == 0 {
			return false, nil
		}
		return rat.New(int64(num), int64(pop)).Greater(d.k), nil
	}
	if pop <= approxMinPopulation {
		return exact()
	}
	seq := approx.NewSeq(d.kf, pop, approx.Params{Epsilon: d.par.Epsilon, Delta: d.par.Delta, MaxSamples: budget})
	if seq.Verdict() == approx.Escalate {
		r.stats.ApproxEscalated++
		return exact()
	}

	// Membership set for the sampled probes: π_shared(u), with rows staged
	// in its column order. When every u column is shared (the sup case:
	// the reduced cover projection), u itself is the set.
	probe, owned := d.probeSet(t, u)
	if cap(d.buf) < len(d.pos) {
		d.buf = make(relation.Tuple, len(d.pos))
	}
	buf := d.buf[:len(probe.Vars())]
	smp := relation.NewSampler(pop, d.nextSeed())
	for {
		batch := seq.Batch()
		if batch == 0 {
			break
		}
		if err := r.ctx.Err(); err != nil {
			if owned {
				r.sc.Release(probe)
			}
			return false, err
		}
		hits := 0
		for i := 0; i < batch; i++ {
			row := t.Row(smp.Next())
			for j, p := range d.pos {
				buf[j] = row[p]
			}
			if probe.Contains(buf) {
				hits++
			}
		}
		seq.Observe(hits, batch)
	}
	if owned {
		r.sc.Release(probe)
	}
	r.stats.SamplesDrawn += seq.Drawn()
	switch seq.Verdict() {
	case approx.Above:
		// Confirm a sampled accept exactly before it can become a witness:
		// approximate YES verdicts are then never wrong. A contradiction
		// (probability ≤ δ) counts as an escalation and the exact value
		// decides.
		ok, err := exact()
		if err != nil {
			return false, err
		}
		if !ok {
			r.stats.ApproxEscalated++
		}
		return ok, nil
	case approx.Below:
		return false, nil
	case approx.Exact:
		// The sampler covered the whole population without replacement:
		// the counts are the exact fraction, no kernels needed.
		r.stats.ApproxEscalated++
		m, n := seq.Counts()
		if m == 0 {
			return false, nil
		}
		return rat.New(int64(m), int64(n)).Greater(d.k), nil
	default: // approx.Escalate
		r.stats.ApproxEscalated++
		return exact()
	}
}

// probeSet returns the membership set π_shared(u) for probes staged through
// d.pos (t-side positions, in u's shared-column order), together with
// whether the caller must release it. When every u column is shared, u is
// its own membership set.
func (d *approxDecider) probeSet(t, u *relation.Table) (*relation.Table, bool) {
	r := d.run
	if len(d.pos) == len(u.Vars()) {
		return u, false
	}
	// Some u columns are not in t: probe against the projection onto the
	// shared ones, and restage d.pos to its column order.
	shared := make([]string, 0, len(d.pos))
	for _, v := range u.Vars() {
		if t.Pos(v) >= 0 {
			shared = append(shared, v)
		}
	}
	proj := u.ProjectS(shared, r.sc)
	d.pos = d.pos[:0]
	for _, v := range shared {
		d.pos = append(d.pos, t.Pos(v))
	}
	return proj, true
}
