package engine

import (
	"context"
	"sync"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/workload"
)

// TestCostPlannerMatchesGreedy checks the central planning invariant on
// generated scenarios: the cost-based planner and the greedy baseline
// produce identical answer sets (rules and exact index values) — join
// order is a performance decision, never a semantic one.
func TestCostPlannerMatchesGreedy(t *testing.T) {
	ctx := context.Background()
	for _, shape := range gen.Shapes() {
		for seed := int64(0); seed < 4; seed++ {
			s, err := gen.NewScenario(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(s.DB)
			cost, _, err := eng.FindRulesStats(ctx, s.MQ, Options{Type: s.Type, Thresholds: s.Th})
			if err != nil {
				t.Fatalf("%s/%d: cost planner: %v", shape, seed, err)
			}
			greedy, _, err := eng.FindRulesStats(ctx, s.MQ, Options{Type: s.Type, Thresholds: s.Th, DisableCostPlanner: true})
			if err != nil {
				t.Fatalf("%s/%d: greedy planner: %v", shape, seed, err)
			}
			if len(cost) != len(greedy) {
				t.Fatalf("%s/%d: cost planner found %d answers, greedy %d", shape, seed, len(cost), len(greedy))
			}
			for i := range cost {
				if cost[i].Rule.String() != greedy[i].Rule.String() ||
					cost[i].Sup != greedy[i].Sup || cost[i].Cnf != greedy[i].Cnf || cost[i].Cvr != greedy[i].Cvr {
					t.Fatalf("%s/%d: answer %d differs: %v vs %v", shape, seed, i, cost[i], greedy[i])
				}
			}
		}
	}
}

// TestDecideFirstParallelMatchesSequential compares verdicts of the
// partitioned first-witness search against the sequential one across
// worker counts, indices and bounds (including a bound that flips the
// verdict to NO).
func TestDecideFirstParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	db := workload.ChainDB(3, 12, 40, 3)
	mq := workload.ChainMQ(3)
	eng := NewEngine(db)
	seq, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := eng.Prepare(mq, Options{Type: core.Type0, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range core.AllIndices {
			for _, k := range []rat.Rat{rat.Zero, rat.New(1, 100), rat.New(1, 1)} {
				wantYes, _, err := seq.DecideFirst(ctx, ix, k)
				if err != nil {
					t.Fatal(err)
				}
				gotYes, wit, st, err := par.DecideFirstStats(ctx, ix, k)
				if err != nil {
					t.Fatalf("workers=%d %s>%s: %v", workers, ix, k, err)
				}
				if gotYes != wantYes {
					t.Fatalf("workers=%d %s>%s: parallel %v, sequential %v", workers, ix, k, gotYes, wantYes)
				}
				if gotYes {
					if wit == nil {
						t.Fatalf("workers=%d %s>%s: YES without witness", workers, ix, k)
					}
					rule, err := wit.Apply(mq)
					if err != nil {
						t.Fatalf("workers=%d: witness does not instantiate: %v", workers, err)
					}
					v, err := ix.ComputeEval(core.NewEvaluator(db), rule)
					if err != nil {
						t.Fatal(err)
					}
					if !v.Greater(k) {
						t.Fatalf("workers=%d: witness %s has %s=%s, not > %s", workers, rule, ix, v, k)
					}
				}
				if st == nil {
					t.Fatalf("workers=%d: nil stats", workers)
				}
			}
		}
	}
}

// TestDecideFirstParallelCancel cancels the surrounding context mid-search
// on a NO-bound run: the parallel path must surface the context error
// rather than report a definitive NO.
func TestDecideFirstParallelCancel(t *testing.T) {
	db := workload.ChainDB(3, 25, 150, 9)
	mq := workload.ChainMQ(3)
	par, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	yes, _, err := par.DecideFirst(ctx, core.Cnf, rat.New(1, 1))
	if yes {
		t.Fatal("cancelled parallel decision returned YES")
	}
	if err == nil {
		t.Fatal("cancelled parallel decision reported a definitive NO")
	}
}

// TestDecideFirstParallelConcurrent exercises parallel decisions racing
// with enumeration on one engine (run under -race in CI).
func TestDecideFirstParallelConcurrent(t *testing.T) {
	db := workload.ChainDB(3, 10, 30, 5)
	mq := workload.ChainMQ(3)
	eng := NewEngine(db)
	par, err := eng.Prepare(mq, Options{Type: core.Type0, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := par.DecideFirst(ctx, core.Sup, rat.Zero); err != nil {
				t.Error(err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := par.FindRules(ctx); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestExplainRun checks the plan report: one record per decomposition
// node in visit order, positive estimates on a populated database, actual
// row counts recorded, and the answer set identical to FindRules.
func TestExplainRun(t *testing.T) {
	ctx := context.Background()
	db := workload.ChainDB(3, 10, 40, 7)
	mq := workload.ChainMQ(3)
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	ex, answers, err := prep.ExplainRun(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.CostPlanner {
		t.Error("cost planner not reported active on a statistics-backed engine")
	}
	if len(ex.Nodes) != len(prep.order) {
		t.Fatalf("explain has %d nodes, decomposition %d", len(ex.Nodes), len(prep.order))
	}
	visited := 0
	for _, n := range ex.Nodes {
		if n.EstRows <= 0 {
			t.Errorf("node %d estimate %v, want > 0 on a populated database", n.NodeID, n.EstRows)
		}
		if n.Visits > 0 {
			visited++
			if n.MaxRows < n.MinRows || n.TotalRows < n.MaxRows {
				t.Errorf("node %d actuals inconsistent: min=%d max=%d total=%d", n.NodeID, n.MinRows, n.MaxRows, n.TotalRows)
			}
		}
	}
	if visited == 0 {
		t.Error("no node recorded any actual row counts")
	}
	if ex.String() == "" {
		t.Error("empty explain rendering")
	}

	want, err := prep.FindRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(want) {
		t.Fatalf("explained run found %d answers, FindRules %d", len(answers), len(want))
	}
	for i := range want {
		if answers[i].Rule.String() != want[i].Rule.String() {
			t.Fatalf("answer %d differs: %v vs %v", i, answers[i], want[i])
		}
	}
}

// TestNodeEstimateLegacyFallback pins the statistics-free estimate path:
// with the engine's statistics removed, decideOrder still produces a valid
// bottom-up order ranked by smallest base-relation cardinality, and the
// candidate ordering cache stays empty (raw index order applies).
func TestNodeEstimateLegacyFallback(t *testing.T) {
	db := workload.ChainDB(3, 10, 30, 2)
	mq := workload.ChainMQ(3)
	eng := NewEngine(db)
	// Simulate a statistics-free engine by installing a stats-less snapshot.
	eng.snap.Store(newSnapshot(0, db, core.NewCandidateIndex(db), nil, core.NewEvaluator(db)))
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	ep := prep.epoch()
	order := prep.decideOrder(ep)
	if len(order) != len(prep.order) {
		t.Fatalf("legacy decide order has %d nodes, want %d", len(order), len(prep.order))
	}
	for _, n := range prep.order {
		if est := prep.nodeEstimate(ep, n); est <= 0 {
			t.Errorf("legacy node estimate %v for node %d, want > 0", est, n.ID)
		}
	}
	if oc := prep.orderedCandidates(ep); oc != nil {
		t.Errorf("candidate ordering built without statistics: %v", oc)
	}
	// The search still runs (and DecideFirst still answers) without stats.
	yes, _, err := prep.DecideFirst(context.Background(), core.Sup, rat.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("stat-free DecideFirst missed the witness")
	}
}

// TestDisableCostPlannerUsesLegacyEstimates pins the ablation contract:
// with DisableCostPlanner set, the decision order ranks nodes by the
// legacy smallest-base-relation estimate even though the engine carries
// statistics, so the flag really compares against the full pre-statistics
// behavior.
func TestDisableCostPlannerUsesLegacyEstimates(t *testing.T) {
	db := workload.ChainDB(3, 10, 30, 2)
	mq := workload.ChainMQ(3)
	eng := NewEngine(db)
	prep, err := eng.Prepare(mq, Options{Type: core.Type0, DisableCostPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	ep := prep.epoch()
	for _, n := range prep.order {
		got := prep.nodeEstimate(ep, n)
		if want := prep.nodeEstimateLegacy(ep, n); got != want {
			t.Errorf("node %d: estimate %v with cost planner disabled, want legacy %v", n.ID, got, want)
		}
	}
	ex, _, err := prep.ExplainRun(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ex.CostPlanner {
		t.Error("explain reports the cost planner active under DisableCostPlanner")
	}
}

// TestOrderedCandidatesAscending checks the selectivity ordering cache:
// for every pattern scheme the candidate list is sorted by estimated
// materialization size, ascending.
func TestOrderedCandidatesAscending(t *testing.T) {
	db := workload.Random{Relations: 5, Arity: 2, Tuples: 30, Domain: 8, Seed: 11}.Build()
	// Unbalance the relation sizes so the ordering is non-trivial.
	db.MustInsertNamed("r0", "extra", "extra")
	mq := workload.MQ4()
	eng := NewEngine(db)
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	ordered := prep.orderedCandidates(prep.epoch())
	if len(ordered) == 0 {
		t.Fatal("no ordered candidate lists on a statistics-backed engine")
	}
	for id, cands := range ordered {
		prev := -1.0
		for _, a := range cands {
			rows := eng.snap.Load().ev.AtomEst(a).Rows
			if rows < prev {
				t.Fatalf("scheme %d: candidate %s (est %v) after a larger estimate %v", id, a, rows, prev)
			}
			prev = rows
		}
	}
}
