// Package engine implements the findRules algorithm of Figure 4 (Section 4
// of the paper): metaquery answering driven by a complete hypertree
// decomposition of the body, with semijoin full-reducer passes (the
// "first half" and "second half" of Section 4), early support-based pruning
// (enoughSupport), and head search (findHeads).
//
// The engine is differentially tested against the naive reference
// implementation in internal/core; both compute the answer set
//
//	{ σ : sup(σ(MQ)) > ksup ∧ cvr(σ(MQ)) > kcvr ∧ cnf(σ(MQ)) > kcnf }
//
// with exact rational index values.
package engine

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/relation"
)

// Options configures a findRules run.
type Options struct {
	// Type selects the instantiation semantics (type-0/1/2).
	Type core.InstType
	// Thresholds are the strict admissibility thresholds. Disabled checks
	// are reported but not filtered (and disable the related pruning).
	Thresholds core.Thresholds
	// Limit, when positive, stops the search after this many answers; used
	// to solve decision problems with early exit.
	Limit int

	// Ablation switches (all default off = full algorithm). They change
	// performance only, never results; see the ablation benchmarks.

	// DisableSupportPruning skips the enoughSupport early check; support is
	// still computed exactly for reporting and final filtering.
	DisableSupportPruning bool
	// DisableFullReducer skips both semijoin halves; node tables are used
	// unreduced and the body join is materialized directly.
	DisableFullReducer bool
	// FlatDecomposition forces the trivial single-node decomposition
	// (width = number of body schemes) instead of the minimal-width one.
	FlatDecomposition bool
}

// Stats reports search-effort counters for experiments and ablations.
type Stats struct {
	// Width is the hypertree width of the decomposition used.
	Width int
	// Nodes is the number of decomposition nodes.
	Nodes int
	// BodyCandidatesTried counts node-level instantiation extensions.
	BodyCandidatesTried int
	// BodiesPrunedEmpty counts body branches cut because a node table was
	// empty after reduction.
	BodiesPrunedEmpty int
	// BodiesReachedRoot counts complete body instantiations.
	BodiesReachedRoot int
	// BodiesPrunedSupport counts bodies rejected by enoughSupport.
	BodiesPrunedSupport int
	// HeadsTried counts head instantiations examined.
	HeadsTried int
	// Answers is the number of rules returned.
	Answers int
}

// FindRules computes all type-T instantiations of mq over db whose indices
// pass the thresholds, with exact index values, sorted by rule text.
// It is the entry point corresponding to Figure 4's findRules.
func FindRules(db *relation.Database, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	if err := core.ValidateForType(db, mq, opt.Type); err != nil {
		return nil, nil, err
	}
	r := &run{db: db, mq: mq, opt: opt, stats: &Stats{}}
	if err := r.setup(); err != nil {
		return nil, nil, err
	}
	if err := r.findBodies(0, core.NewInstantiation()); err != nil && err != errLimit {
		return nil, nil, err
	}
	core.SortAnswers(r.answers)
	r.stats.Answers = len(r.answers)
	return r.answers, r.stats, nil
}

// errLimit signals early termination once Options.Limit answers were found.
var errLimit = fmt.Errorf("engine: answer limit reached")

// bodyScheme couples a distinct body literal scheme with the data the
// engine needs repeatedly.
type bodyScheme struct {
	scheme     core.LiteralScheme
	patternIdx int // index in rep(MQ) for fresh-variable keying; -1 if atom
	vars       []string
}

type run struct {
	db    *relation.Database
	mq    *core.Metaquery
	opt   Options
	stats *Stats

	schemes []bodyScheme // distinct body schemes, ID = slice index
	decomp  *hypertree.Decomposition
	order   []*hypertree.Node // bottom-up

	// nodeSchemes[nodeID] lists the scheme IDs in λ(node).
	nodeSchemes map[int][]int

	// rTables[nodeID] is r[i] of Figure 4 for the current partial body.
	rTables map[int]*relation.Table
	// joinCache caches π_χ(J(σ(λ))) keyed by node and atom assignment.
	joinCache map[string]*relation.Table

	answers []core.Answer
}

func (r *run) setup() error {
	// Distinct body schemes (the paper treats ls(MQ) as a set).
	seen := map[string]int{}
	for _, l := range r.mq.Body {
		if _, dup := seen[l.Key()]; dup {
			continue
		}
		seen[l.Key()] = len(r.schemes)
		r.schemes = append(r.schemes, bodyScheme{
			scheme:     l,
			patternIdx: core.PatternIndex(r.mq, l),
			vars:       l.Vars(),
		})
	}

	atoms := make([]hypertree.AtomSchema, len(r.schemes))
	for i, s := range r.schemes {
		atoms[i] = hypertree.AtomSchema{ID: i, Vars: s.vars}
	}
	if r.opt.FlatDecomposition {
		r.decomp = flatDecomposition(atoms)
	} else {
		r.decomp = hypertree.Decompose(atoms)
	}
	if err := hypertree.Validate(atoms, r.decomp); err != nil {
		return fmt.Errorf("engine: decomposition invalid: %w", err)
	}
	r.order = r.decomp.BottomUpOrder()
	r.stats.Width = r.decomp.Width
	r.stats.Nodes = len(r.order)

	r.nodeSchemes = make(map[int][]int, len(r.order))
	for _, n := range r.order {
		r.nodeSchemes[n.ID] = append([]int(nil), n.Lambda...)
	}
	r.rTables = make(map[int]*relation.Table, len(r.order))
	r.joinCache = make(map[string]*relation.Table)
	return nil
}

// flatDecomposition builds the trivial one-node decomposition used by the
// FlatDecomposition ablation.
func flatDecomposition(atoms []hypertree.AtomSchema) *hypertree.Decomposition {
	varSet := map[string]bool{}
	ids := make([]int, len(atoms))
	for i, a := range atoms {
		ids[i] = a.ID
		for _, v := range a.Vars {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	root := &hypertree.Node{Chi: sortStrings(vars), Lambda: ids}
	return hypertree.Finish(root, atoms)
}

func sortStrings(vs []string) []string {
	out := append([]string(nil), vs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// anyThresholdChecked reports whether empty-join pruning is sound: with at
// least one strict threshold enabled, an empty body join (all indices 0)
// can never pass.
func (r *run) anyThresholdChecked() bool {
	t := r.opt.Thresholds
	return t.CheckSup || t.CheckCnf || t.CheckCvr
}

// findBodies is the recursive body search of Figure 4 (first half). i
// indexes the bottom-up node order.
func (r *run) findBodies(i int, sigma *core.Instantiation) error {
	if i == len(r.order) {
		return r.afterBodies(sigma)
	}
	node := r.order[i]
	return r.instantiateNode(node, r.nodeSchemes[node.ID], 0, sigma, func() error {
		return r.findBodies(i+1, sigma)
	})
}

// instantiateNode extends sigma over the schemes of one node, then computes
// the node table and recurses via cont.
func (r *run) instantiateNode(node *hypertree.Node, schemeIDs []int, j int, sigma *core.Instantiation, cont func() error) error {
	if j == len(schemeIDs) {
		return r.evalNode(node, schemeIDs, sigma, cont)
	}
	bs := r.schemes[schemeIDs[j]]
	l := bs.scheme
	if !l.PredVar {
		// Ordinary atom: nothing to assign.
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	if _, done := sigma.AtomFor(l); done {
		// Assigned at an earlier node (λ sets may overlap).
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	for _, a := range core.Candidates(r.db, l, r.opt.Type, bs.patternIdx) {
		if rel, ok := sigma.RelationOf(l.Pred); ok && rel != a.Pred {
			continue
		}
		r.stats.BodyCandidatesTried++
		if err := sigma.Assign(l, a); err != nil {
			return err
		}
		err := r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
		sigma.Unassign(l)
		if err != nil {
			return err
		}
	}
	return nil
}

// evalNode computes r[i] := π_χ(J(σ(λ))) semijoined with the children's
// tables (the bottom-up first half), prunes empty branches, and continues.
func (r *run) evalNode(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation, cont func() error) error {
	tab, err := r.nodeJoin(node, schemeIDs, sigma)
	if err != nil {
		return err
	}
	if !r.opt.DisableFullReducer {
		for _, c := range node.Children {
			tab = tab.Semijoin(r.rTables[c.ID])
		}
	}
	if tab.Empty() && r.anyThresholdChecked() {
		r.stats.BodiesPrunedEmpty++
		return nil
	}
	prev, had := r.rTables[node.ID]
	r.rTables[node.ID] = tab
	err = cont()
	if had {
		r.rTables[node.ID] = prev
	} else {
		delete(r.rTables, node.ID)
	}
	return err
}

// nodeJoin computes (and caches) π_χ(J(σ(λ(p)))) for the node's current
// atom assignment.
func (r *run) nodeJoin(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation) (*relation.Table, error) {
	atoms := make([]relation.Atom, 0, len(schemeIDs))
	key := fmt.Sprintf("n%d|", node.ID)
	for _, id := range schemeIDs {
		a, err := r.instAtom(r.schemes[id].scheme, sigma)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		key += a.String() + ";"
	}
	if t, ok := r.joinCache[key]; ok {
		return t, nil
	}
	j, err := relation.JoinAtoms(r.db, atoms)
	if err != nil {
		return nil, err
	}
	t := j.Project(node.Chi)
	r.joinCache[key] = t
	return t, nil
}

// instAtom maps a body scheme through sigma (identity on ordinary atoms).
func (r *run) instAtom(l core.LiteralScheme, sigma *core.Instantiation) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := sigma.AtomFor(l)
	if !ok {
		return relation.Atom{}, fmt.Errorf("engine: pattern %s unassigned at evaluation", l)
	}
	return a, nil
}

// afterBodies runs once per complete body instantiation: executes the
// second (top-down) half of the full reducer and calls findHeads.
func (r *run) afterBodies(sigma *core.Instantiation) error {
	r.stats.BodiesReachedRoot++

	// Second half: s[j] := r[j] ⋉ s[parent(j)], top-down.
	s := make(map[int]*relation.Table, len(r.order))
	for i := len(r.order) - 1; i >= 0; i-- {
		n := r.order[i]
		t := r.rTables[n.ID]
		if !r.opt.DisableFullReducer && n.Parent != nil {
			t = t.Semijoin(s[n.Parent.ID])
		}
		s[n.ID] = t
	}
	return r.findHeads(sigma, s)
}
