// Package engine implements the findRules algorithm of Figure 4 (Section 4
// of the paper): metaquery answering driven by a complete hypertree
// decomposition of the body, with semijoin full-reducer passes (the
// "first half" and "second half" of Section 4), early support-based pruning
// (enoughSupport), and head search (findHeads).
//
// The public surface is organized around two reusable objects:
//
//   - Engine (session.go) binds to one database and caches the
//     database-level structures every search consults: the candidate index
//     (relations bucketed by arity, memoized pattern candidates) and the
//     materialized atom tables.
//   - Prepared (prepare.go) binds an Engine to one metaquery and caches the
//     query-level analysis: validation, the hypertree decomposition, the
//     bottom-up node order, and the node-join cache. A Prepared can be
//     executed many times and from many goroutines concurrently.
//
// Executions take a context.Context and stop promptly with ctx.Err() on
// cancellation; Prepared.Stream (stream.go) yields answers incrementally so
// consumers can abandon the search early.
//
// The engine is differentially tested against the naive reference
// implementation in internal/core; both compute the answer set
//
//	{ σ : sup(σ(MQ)) > ksup ∧ cvr(σ(MQ)) > kcvr ∧ cnf(σ(MQ)) > kcnf }
//
// with exact rational index values.
package engine

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/relation"
)

// Options configures a findRules run.
type Options struct {
	// Type selects the instantiation semantics (type-0/1/2).
	Type core.InstType
	// Thresholds are the strict admissibility thresholds. Disabled checks
	// are reported but not filtered (and disable the related pruning).
	Thresholds core.Thresholds
	// Limit, when positive, stops the search after this many answers; used
	// to solve decision problems with early exit.
	Limit int

	// Ablation switches (all default off = full algorithm). They change
	// performance only, never results; see the ablation benchmarks.

	// DisableSupportPruning skips the enoughSupport early check; support is
	// still computed exactly for reporting and final filtering.
	DisableSupportPruning bool
	// DisableFullReducer skips both semijoin halves; node tables are used
	// unreduced and the body join is materialized directly.
	DisableFullReducer bool
	// FlatDecomposition forces the trivial single-node decomposition
	// (width = number of body schemes) instead of the minimal-width one.
	FlatDecomposition bool
}

// Stats reports search-effort counters for experiments and ablations.
type Stats struct {
	// Width is the hypertree width of the decomposition used.
	Width int
	// Nodes is the number of decomposition nodes.
	Nodes int
	// BodyCandidatesTried counts node-level instantiation extensions.
	BodyCandidatesTried int
	// BodiesPrunedEmpty counts body branches cut because a node table was
	// empty after reduction.
	BodiesPrunedEmpty int
	// BodiesReachedRoot counts complete body instantiations.
	BodiesReachedRoot int
	// BodiesPrunedSupport counts bodies rejected by enoughSupport.
	BodiesPrunedSupport int
	// HeadsTried counts head instantiations examined.
	HeadsTried int
	// Answers is the number of rules returned.
	Answers int
}

// FindRules computes all type-T instantiations of mq over db whose indices
// pass the thresholds, with exact index values, sorted by rule text.
// It is the entry point corresponding to Figure 4's findRules, implemented
// as a one-shot Engine session; callers answering several metaqueries over
// the same database should hold a NewEngine and Prepare instead.
func FindRules(db *relation.Database, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	return NewEngine(db).FindRulesStats(context.Background(), mq, opt)
}

// FindRulesContext is FindRules bounded by ctx: the search stops promptly
// with ctx.Err() when ctx is cancelled or its deadline passes.
func FindRulesContext(ctx context.Context, db *relation.Database, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	return NewEngine(db).FindRulesStats(ctx, mq, opt)
}

// errLimit signals early termination once Options.Limit answers were found.
var errLimit = fmt.Errorf("engine: answer limit reached")

// errStop signals that a streaming consumer stopped iterating.
var errStop = fmt.Errorf("engine: consumer stopped iteration")

// bodyScheme couples a distinct body literal scheme with the data the
// engine needs repeatedly.
type bodyScheme struct {
	scheme     core.LiteralScheme
	patternIdx int // index in rep(MQ) for fresh-variable keying; -1 if atom
	vars       []string
}

// run is the per-execution state of one search over a Prepared metaquery:
// the context, the effort counters, the current node tables of Figure 4's
// first half, and the answer sink. Everything shared across executions
// (database caches, decomposition, join cache) lives on run.p and is only
// read here, which is what makes concurrent executions of one Prepared
// safe.
type run struct {
	p     *Prepared
	ctx   context.Context
	stats *Stats

	// rTables[nodeID] is r[i] of Figure 4 for the current partial body.
	rTables map[int]*relation.Table

	// emit receives each discovered answer, in discovery order. Returning
	// errLimit or errStop unwinds the search cleanly.
	emit func(core.Answer) error
}

// search runs the body search of Figure 4 over the whole candidate space.
func (r *run) search() error {
	return r.findBodies(0, core.NewInstantiation())
}

// flatDecomposition builds the trivial one-node decomposition used by the
// FlatDecomposition ablation.
func flatDecomposition(atoms []hypertree.AtomSchema) *hypertree.Decomposition {
	varSet := map[string]bool{}
	ids := make([]int, len(atoms))
	for i, a := range atoms {
		ids[i] = a.ID
		for _, v := range a.Vars {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	root := &hypertree.Node{Chi: sortStrings(vars), Lambda: ids}
	return hypertree.Finish(root, atoms)
}

func sortStrings(vs []string) []string {
	out := append([]string(nil), vs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// anyThresholdChecked reports whether empty-join pruning is sound: with at
// least one strict threshold enabled, an empty body join (all indices 0)
// can never pass.
func (r *run) anyThresholdChecked() bool {
	t := r.p.opt.Thresholds
	return t.CheckSup || t.CheckCnf || t.CheckCvr
}

// findBodies is the recursive body search of Figure 4 (first half). i
// indexes the bottom-up node order.
func (r *run) findBodies(i int, sigma *core.Instantiation) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if i == len(r.p.order) {
		return r.afterBodies(sigma)
	}
	node := r.p.order[i]
	return r.instantiateNode(node, r.p.nodeSchemes[node.ID], 0, sigma, func() error {
		return r.findBodies(i+1, sigma)
	})
}

// instantiateNode extends sigma over the schemes of one node, then computes
// the node table and recurses via cont.
func (r *run) instantiateNode(node *hypertree.Node, schemeIDs []int, j int, sigma *core.Instantiation, cont func() error) error {
	if j == len(schemeIDs) {
		return r.evalNode(node, schemeIDs, sigma, cont)
	}
	bs := r.p.schemes[schemeIDs[j]]
	l := bs.scheme
	if !l.PredVar {
		// Ordinary atom: nothing to assign.
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	if _, done := sigma.AtomFor(l); done {
		// Assigned at an earlier node (λ sets may overlap).
		return r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
	}
	for _, a := range r.p.eng.cands.Candidates(l, r.p.opt.Type, bs.patternIdx) {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		if rel, ok := sigma.RelationOf(l.Pred); ok && rel != a.Pred {
			continue
		}
		r.stats.BodyCandidatesTried++
		if err := sigma.Assign(l, a); err != nil {
			return err
		}
		err := r.instantiateNode(node, schemeIDs, j+1, sigma, cont)
		sigma.Unassign(l)
		if err != nil {
			return err
		}
	}
	return nil
}

// evalNode computes r[i] := π_χ(J(σ(λ))) semijoined with the children's
// tables (the bottom-up first half), prunes empty branches, and continues.
func (r *run) evalNode(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation, cont func() error) error {
	tab, err := r.nodeJoin(node, schemeIDs, sigma)
	if err != nil {
		return err
	}
	if !r.p.opt.DisableFullReducer {
		for _, c := range node.Children {
			tab = tab.Semijoin(r.rTables[c.ID])
		}
	}
	if tab.Empty() && r.anyThresholdChecked() {
		r.stats.BodiesPrunedEmpty++
		return nil
	}
	prev, had := r.rTables[node.ID]
	r.rTables[node.ID] = tab
	err = cont()
	if had {
		r.rTables[node.ID] = prev
	} else {
		delete(r.rTables, node.ID)
	}
	return err
}

// nodeJoin computes π_χ(J(σ(λ(p)))) for the node's current atom
// assignment, served from the Prepared's cross-execution join cache. On a
// miss, the join executes through the Engine evaluator: per-atom tables
// from the shared materialization cache, join order and column bookkeeping
// from a plan compiled once per atom-set shape.
func (r *run) nodeJoin(node *hypertree.Node, schemeIDs []int, sigma *core.Instantiation) (*relation.Table, error) {
	atoms := make([]relation.Atom, 0, len(schemeIDs))
	key := fmt.Sprintf("n%d|", node.ID)
	for _, id := range schemeIDs {
		a, err := r.instAtom(r.p.schemes[id].scheme, sigma)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		key += a.String() + ";"
	}
	if t, ok := r.p.cachedJoin(key); ok {
		return t, nil
	}
	j, err := r.p.eng.ev.Join(atoms)
	if err != nil {
		return nil, err
	}
	t := j.Project(node.Chi)
	return r.p.storeJoin(key, t), nil
}

// instAtom maps a body scheme through sigma (identity on ordinary atoms).
func (r *run) instAtom(l core.LiteralScheme, sigma *core.Instantiation) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := sigma.AtomFor(l)
	if !ok {
		return relation.Atom{}, fmt.Errorf("engine: pattern %s unassigned at evaluation", l)
	}
	return a, nil
}

// afterBodies runs once per complete body instantiation: executes the
// second (top-down) half of the full reducer and calls findHeads.
func (r *run) afterBodies(sigma *core.Instantiation) error {
	r.stats.BodiesReachedRoot++

	// Second half: s[j] := r[j] ⋉ s[parent(j)], top-down.
	s := make(map[int]*relation.Table, len(r.p.order))
	for i := len(r.p.order) - 1; i >= 0; i-- {
		n := r.p.order[i]
		t := r.rTables[n.ID]
		if !r.p.opt.DisableFullReducer && n.Parent != nil {
			t = t.Semijoin(s[n.Parent.ID])
		}
		s[n.ID] = t
	}
	return r.findHeads(sigma, s)
}
