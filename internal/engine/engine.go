// Package engine implements the findRules algorithm of Figure 4 (Section 4
// of the paper): metaquery answering driven by a complete hypertree
// decomposition of the body, with semijoin full-reducer passes (the
// "first half" and "second half" of Section 4), early support-based pruning
// (enoughSupport), and head search (findHeads).
//
// The public surface is organized around two reusable objects:
//
//   - Engine (session.go) binds to one database and caches the
//     database-level structures every search consults: the candidate index
//     (relations bucketed by arity, memoized pattern candidates) and the
//     materialized atom tables.
//   - Prepared (prepare.go) binds an Engine to one metaquery and caches the
//     query-level analysis: validation, the hypertree decomposition, the
//     bottom-up node order, and the node-join cache. A Prepared can be
//     executed many times and from many goroutines concurrently.
//
// Every execution mode consumes the one incremental body-search iterator
// of search.go, which yields complete body instantiations lazily:
//
//   - FindRules (prepare.go) enumerates heads for every body and returns
//     the full sorted answer set;
//   - Stream (stream.go) yields answers incrementally so consumers can
//     abandon the search early;
//   - DecideFirst (decide.go) is the dedicated first-witness decision path:
//     it checks a single index, skips head enumeration when the index makes
//     heads irrelevant, visits nodes smallest-estimated-table first, and
//     stops at the first admissible witness.
//
// Executions take a context.Context and stop promptly with ctx.Err() on
// cancellation.
//
// The engine is differentially tested against the naive reference
// implementation in internal/core; both compute the answer set
//
//	{ σ : sup(σ(MQ)) > ksup ∧ cvr(σ(MQ)) > kcvr ∧ cnf(σ(MQ)) > kcnf }
//
// with exact rational index values.
package engine

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/approx"
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// Options configures a findRules run.
type Options struct {
	// Type selects the instantiation semantics (type-0/1/2).
	Type core.InstType
	// Thresholds are the strict admissibility thresholds. Disabled checks
	// are reported but not filtered (and disable the related pruning).
	Thresholds core.Thresholds
	// Limit, when positive, stops the search after this many answers.
	//
	// Deprecated as the decision idiom: to answer a decision problem, use
	// Prepared.DecideFirst (or Engine.Decide), which short-circuits on the
	// first witness without paying the full enumeration machinery. Limit
	// remains the right tool for top-k style enumeration cutoffs.
	Limit int

	// Workers, when greater than 1, shards the first decomposition node's
	// candidate atoms across this many goroutines — on every execution
	// path. DecideFirst workers share a first-witness cancellation;
	// FindRules and Stream workers each run the body search over one
	// candidate block and feed a merged result stream (parallel.go), which
	// makes Stream's answer order nondeterministic (FindRules sorts, so its
	// result is unchanged). 0 and 1 both mean sequential runs. Queries
	// whose first node has no pattern scheme (or fewer than two candidate
	// atoms) always run sequentially.
	Workers int

	// Approx configures the sampling-based ε–δ decision path
	// (Prepared.DecideApprox). The zero value disables it; setting Epsilon
	// and Delta enables it for DecideApprox runs only — enumeration paths
	// and DecideFirst always stay exact.
	Approx ApproxOptions

	// Tracer, when non-nil, records a span tree of every execution on this
	// Prepared: epoch binding, node joins (cache hit/miss with
	// estimate-vs-actual row counts), parallel worker chunks, and approx
	// sampling/escalation. nil — the default — is the zero-allocation
	// disabled tracer; the instrumentation then costs a nil check per
	// site. Per-request tracing without re-preparing goes through
	// obs.WithTracer on the execution context instead (the server's path:
	// Options participate in its prepared-cache key).
	Tracer *obs.Tracer

	// Ablation switches (all default off = full algorithm). They change
	// performance only, never results; see the ablation benchmarks.

	// DisableCostPlanner pins every multi-atom join to the legacy
	// size-greedy ordering, ignoring the engine's cardinality statistics:
	// node joins run through the shape-greedy compiled plans and body joins
	// through the size-sorted dynamic order. It is the baseline the
	// cost-based planner is benchmarked (experiment E22) and differentially
	// tested against.
	DisableCostPlanner bool

	// DisableSupportPruning skips the enoughSupport early check; support is
	// still computed exactly for reporting and final filtering.
	DisableSupportPruning bool
	// DisableFullReducer skips both semijoin halves; node tables are used
	// unreduced and the body join is materialized directly.
	DisableFullReducer bool
	// FlatDecomposition forces the trivial single-node decomposition
	// (width = number of body schemes) instead of the minimal-width one.
	FlatDecomposition bool
}

// Stats reports search-effort counters for experiments and ablations.
type Stats struct {
	// Width is the hypertree width of the decomposition used.
	Width int
	// Nodes is the number of decomposition nodes.
	Nodes int
	// BodyCandidatesTried counts node-level instantiation extensions.
	BodyCandidatesTried int
	// BodiesPrunedEmpty counts body branches cut because a node table was
	// empty after reduction.
	BodiesPrunedEmpty int
	// BodiesReachedRoot counts complete body instantiations.
	BodiesReachedRoot int
	// BodiesPrunedSupport counts bodies rejected by enoughSupport.
	BodiesPrunedSupport int
	// HeadsTried counts head instantiations examined.
	HeadsTried int
	// HeadsSkipped counts bodies accepted as decision witnesses without
	// enumerating (or evaluating) any head candidate: on support decisions
	// the index is head-independent, so DecideFirst only picks a compatible
	// head assignment instead of searching one.
	HeadsSkipped int
	// Answers is the number of rules returned.
	Answers int
	// SamplesDrawn counts the rows drawn by DecideApprox's fraction
	// samplers (0 on exact runs).
	SamplesDrawn int
	// ApproxEscalated counts the sampled fractions whose confidence
	// interval never cleared the threshold and were therefore resolved
	// exactly: by drawing the whole population, by the exact semijoin
	// kernels after the budget ran out, or because a sampled accept was
	// overturned by its exact confirmation.
	ApproxEscalated int
}

// ApproxOptions configures the ε–δ approximate decision path; see
// Prepared.DecideApprox for the semantics. The zero value disables it.
type ApproxOptions struct {
	// Epsilon is the indifference half-band around the threshold: for true
	// index values outside [k−ε, k+ε] the sampled verdict is wrong with
	// probability at most Delta; inside the band the decider escalates to
	// exact evaluation instead of guessing. Must be in (0, 1) when set.
	Epsilon float64
	// Delta bounds the probability of a wrong sampled verdict (and because
	// sampled YES verdicts are confirmed exactly before becoming
	// witnesses, in practice only NO verdicts carry it). Must be in (0, 1)
	// when set.
	Delta float64
	// MaxSamples is the per-fraction sample budget before escalating to
	// the exact kernels. 0 derives approx.SamplesFor(Epsilon, Delta/16) —
	// enough draws that an interval still straddling the threshold at the
	// budget certifies the fraction lies within the ±ε band.
	MaxSamples int
	// Seed fixes the sampling randomness: every random choice the approx
	// decider makes derives deterministically from it (0 means a fixed
	// default seed, not a random one), so decisions — and diff/fuzz
	// repros — replay identically for identical inputs.
	Seed int64
}

// Enabled reports whether the approximate path is configured.
func (a ApproxOptions) Enabled() bool { return a.Epsilon != 0 || a.Delta != 0 }

// validate rejects half-configured or out-of-range approx options at
// Prepare time, where every other option is fixed too.
func (a ApproxOptions) validate() error {
	if !a.Enabled() {
		return nil
	}
	return approx.Params{Epsilon: a.Epsilon, Delta: a.Delta, MaxSamples: a.MaxSamples}.Validate()
}

// FindRules computes all type-T instantiations of mq over db whose indices
// pass the thresholds, with exact index values, sorted by rule text.
// It is the entry point corresponding to Figure 4's findRules, implemented
// as a one-shot Engine session; callers answering several metaqueries over
// the same database should hold a NewEngine and Prepare instead.
func FindRules(db *relation.Database, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	return NewEngine(db).FindRulesStats(context.Background(), mq, opt)
}

// FindRulesContext is FindRules bounded by ctx: the search stops promptly
// with ctx.Err() when ctx is cancelled or its deadline passes.
func FindRulesContext(ctx context.Context, db *relation.Database, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	return NewEngine(db).FindRulesStats(ctx, mq, opt)
}

// DecideFirst solves the decision problem ⟨DB, MQ, ix, k, T⟩ through a
// one-shot Engine's first-witness path; callers deciding repeatedly over
// one database should hold a NewEngine (and a Prepared) instead.
func DecideFirst(ctx context.Context, db *relation.Database, mq *core.Metaquery, ix core.Index, k rat.Rat, typ core.InstType) (bool, *core.Instantiation, error) {
	return NewEngine(db).Decide(ctx, mq, ix, k, typ)
}

// errLimit signals early termination once Options.Limit answers were found.
var errLimit = fmt.Errorf("engine: answer limit reached")

// errStop signals that a streaming consumer stopped iterating.
var errStop = fmt.Errorf("engine: consumer stopped iteration")

// errFound signals that a decision run hit its first admissible witness.
var errFound = fmt.Errorf("engine: decision witness found")

// flatDecomposition builds the trivial one-node decomposition used by the
// FlatDecomposition ablation.
func flatDecomposition(atoms []hypertree.AtomSchema) *hypertree.Decomposition {
	varSet := map[string]bool{}
	ids := make([]int, len(atoms))
	for i, a := range atoms {
		ids[i] = a.ID
		for _, v := range a.Vars {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	root := &hypertree.Node{Chi: sortStrings(vars), Lambda: ids}
	return hypertree.Finish(root, atoms)
}

func sortStrings(vs []string) []string {
	out := append([]string(nil), vs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
