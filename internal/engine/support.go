package engine

import (
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// SupportOfRule computes sup(r) by the algorithm of Theorem 4.12: it
// decomposes the body into a complete hypertree decomposition of width c,
// materializes each node as the projection of its λ-join onto χ, runs the
// two-half semijoin full reducer over the (acyclic) node tables, and
// returns max_i d'_i/d_i where d'_i is the reduced size of body relation i.
// The running time is O(d^c log d) in the size d of the largest relation.
//
// It returns the same value as core.Support (differentially tested) without
// ever materializing the full body join.
func SupportOfRule(db *relation.Database, r core.Rule) (rat.Rat, error) {
	body := r.BodyAtoms()
	atoms := make([]hypertree.AtomSchema, len(body))
	for i, a := range body {
		atoms[i] = hypertree.AtomSchema{ID: i, Vars: a.Vars()}
	}
	decomp := hypertree.Decompose(atoms)
	order := decomp.BottomUpOrder()

	// Node tables: π_χ(J(λ)). One evaluator shares the per-atom
	// materializations across nodes (λ sets overlap) and with the final
	// per-relation reduction pass below.
	ev := core.NewEvaluator(db)
	tables := make(map[int]*relation.Table, len(order))
	for _, n := range order {
		lam := make([]relation.Atom, len(n.Lambda))
		for i, id := range n.Lambda {
			lam[i] = body[id]
		}
		j, err := ev.Join(lam)
		if err != nil {
			return rat.Zero, err
		}
		tables[n.ID] = j.Project(n.Chi)
	}
	// First half: bottom-up child semijoins.
	for _, n := range order {
		t := tables[n.ID]
		for _, c := range n.Children {
			t = t.Semijoin(tables[c.ID])
		}
		tables[n.ID] = t
	}
	// Second half: top-down parent semijoins.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.Parent != nil {
			tables[n.ID] = tables[n.ID].Semijoin(tables[n.Parent.ID])
		}
	}
	// sup(r) = max_i |r_i ⋉ s[cover(i)]| / |r_i|.
	best := rat.Zero
	for i, a := range body {
		ra, err := ev.TableFor(a)
		if err != nil {
			return rat.Zero, err
		}
		if ra.Len() == 0 {
			continue
		}
		node := decomp.CoverNode[i]
		reduced := tables[node.ID].Project(a.Vars())
		num := ra.SemijoinCount(reduced)
		if num == 0 {
			continue
		}
		best = rat.Max(best, rat.New(int64(num), int64(ra.Len())))
	}
	return best, nil
}
