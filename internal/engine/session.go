package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// snapshot is one immutable epoch of an Engine: a database version together
// with every per-database structure derived from it — the candidate index,
// the cardinality statistics, and the evaluator caches. A search run binds
// to exactly one snapshot for its whole lifetime (via its prepEpoch), which
// is what makes Apply safe under concurrent executions: readers of an old
// epoch keep a consistent world, new executions pick up the latest one.
type snapshot struct {
	epoch uint64
	db    *relation.Database
	cands *core.CandidateIndex
	st    *stats.Stats
	ev    *core.Evaluator
}

// newSnapshot asserts the epoch-coherence invariant before publication:
// every derived structure must be bound to the exact database version the
// snapshot carries. Apply constructs all four together, so a mismatch here
// is a bug in the delta machinery — better a panic at the publication point
// than searches silently mixing stats from one epoch with tables from
// another.
func newSnapshot(epoch uint64, db *relation.Database, cands *core.CandidateIndex, st *stats.Stats, ev *core.Evaluator) *snapshot {
	if cands.Database() != db || (st != nil && st.Database() != db) || ev.Database() != db {
		panic("engine: snapshot components disagree on the database version")
	}
	s := &snapshot{epoch: epoch, db: db, cands: cands, st: st, ev: ev}
	return s
}

// Engine is a reusable metaquerying session bound to one database,
// analogous to database/sql's *DB. It builds the per-database structures
// every search consults — the candidate index (relations bucketed by
// arity, memoized pattern candidates), the cardinality statistics
// (per-relation row counts, per-column distinct counts and MCV sketches,
// collected in one pass at construction), and the evaluator caches
// (FromAtom materializations, compiled join plans per atom-set shape and
// order) — once, and shares them across all queries prepared on it.
//
// The engine's database is mutable through Apply, which installs a new
// epoch snapshot (copy-on-write relations, incrementally maintained
// statistics and caches) without disturbing in-flight executions: every
// run pins the snapshot it started on. Direct mutation of the underlying
// *relation.Database is not allowed while the Engine is in use — all
// changes go through Apply.
//
// An Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	snap    atomic.Pointer[snapshot]
	applyMu sync.Mutex // serializes Apply; the snapshot chain is linear

	// obsm holds the execution histograms once EnableMetrics is called
	// (obs.go); nil — the default — disables recording entirely.
	obsm atomic.Pointer[Metrics]
}

// NewEngine builds a session over db, constructing the relation and
// candidate indices and collecting the cardinality statistics the
// searches share. The engine takes ownership of db: later changes must go
// through Apply.
func NewEngine(db *relation.Database) *Engine {
	st := stats.CollectCounting(db)
	e := &Engine{}
	e.snap.Store(newSnapshot(0, db, core.NewCandidateIndex(db), st, core.NewEvaluatorStats(db, st)))
	return e
}

// Database returns the current epoch's database version.
func (e *Engine) Database() *relation.Database { return e.snap.Load().db }

// Statistics returns the current epoch's cardinality statistics.
func (e *Engine) Statistics() *stats.Stats { return e.snap.Load().st }

// Epoch returns the current epoch number: 0 at construction, incremented
// by every effective Apply.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// FindRules is the one-shot convenience over Prepare: it answers mq with
// the findRules algorithm, bounded by ctx. Callers executing the same
// metaquery repeatedly should Prepare it once instead.
func (e *Engine) FindRules(ctx context.Context, mq *core.Metaquery, opt Options) ([]core.Answer, error) {
	answers, _, err := e.FindRulesStats(ctx, mq, opt)
	return answers, err
}

// FindRulesStats is FindRules returning the engine's search counters.
func (e *Engine) FindRulesStats(ctx context.Context, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	p, err := e.Prepare(mq, opt)
	if err != nil {
		return nil, nil, err
	}
	return p.FindRulesStats(ctx)
}

// Decide solves the decision problem ⟨DB, MQ, I, k, T⟩ on the engine's
// database through the dedicated first-witness path (Prepared.DecideFirst):
// only the queried index is evaluated and the search stops at the first
// admissible instantiation, which is returned as the witness. The YES/NO
// answer matches core.Decide; the witness may differ when several exist.
func (e *Engine) Decide(ctx context.Context, mq *core.Metaquery, ix core.Index, k rat.Rat, typ core.InstType) (bool, *core.Instantiation, error) {
	p, err := e.Prepare(mq, Options{Type: typ})
	if err != nil {
		return false, nil, err
	}
	return p.DecideFirst(ctx, ix, k)
}
