package engine

import (
	"context"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// Engine is a reusable metaquerying session bound to one database,
// analogous to database/sql's *DB. It builds the per-database structures
// every search consults — the candidate index (relations bucketed by
// arity, memoized pattern candidates), the cardinality statistics
// (per-relation row counts, per-column distinct counts and MCV sketches,
// collected in one pass at construction), and the evaluator caches
// (FromAtom materializations, compiled join plans per atom-set shape and
// order) — once, and shares them across all queries prepared on it. The
// statistics drive the cost-based join planner; they live and die with
// the engine's evaluator (both snapshot the database and are invalidated
// together by constructing a new Engine).
//
// An Engine is safe for concurrent use by multiple goroutines. It
// snapshots the database at construction: the database must not be
// modified while the Engine is in use.
type Engine struct {
	db    *relation.Database
	cands *core.CandidateIndex
	st    *stats.Stats
	ev    *core.Evaluator
}

// NewEngine builds a session over db, constructing the relation and
// candidate indices and collecting the cardinality statistics the
// searches share.
func NewEngine(db *relation.Database) *Engine {
	st := stats.Collect(db)
	return &Engine{
		db:    db,
		cands: core.NewCandidateIndex(db),
		st:    st,
		ev:    core.NewEvaluatorStats(db, st),
	}
}

// Database returns the database the engine is bound to.
func (e *Engine) Database() *relation.Database { return e.db }

// Statistics returns the cardinality statistics collected at construction.
func (e *Engine) Statistics() *stats.Stats { return e.st }

// tableFor returns the materialization of atom a over the engine's
// database, cached across all queries and executions. Tables are immutable
// after construction, so one instance is shared freely.
func (e *Engine) tableFor(a relation.Atom) (*relation.Table, error) {
	return e.ev.TableFor(a)
}

// FindRules is the one-shot convenience over Prepare: it answers mq with
// the findRules algorithm, bounded by ctx. Callers executing the same
// metaquery repeatedly should Prepare it once instead.
func (e *Engine) FindRules(ctx context.Context, mq *core.Metaquery, opt Options) ([]core.Answer, error) {
	answers, _, err := e.FindRulesStats(ctx, mq, opt)
	return answers, err
}

// FindRulesStats is FindRules returning the engine's search counters.
func (e *Engine) FindRulesStats(ctx context.Context, mq *core.Metaquery, opt Options) ([]core.Answer, *Stats, error) {
	p, err := e.Prepare(mq, opt)
	if err != nil {
		return nil, nil, err
	}
	return p.FindRulesStats(ctx)
}

// Decide solves the decision problem ⟨DB, MQ, I, k, T⟩ on the engine's
// database through the dedicated first-witness path (Prepared.DecideFirst):
// only the queried index is evaluated and the search stops at the first
// admissible instantiation, which is returned as the witness. The YES/NO
// answer matches core.Decide; the witness may differ when several exist.
func (e *Engine) Decide(ctx context.Context, mq *core.Metaquery, ix core.Index, k rat.Rat, typ core.InstType) (bool, *core.Instantiation, error) {
	p, err := e.Prepare(mq, Options{Type: typ})
	if err != nil {
		return false, nil, err
	}
	return p.DecideFirst(ctx, ix, k)
}
