package engine

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// The Theorem 4.12 support algorithm must equal the naive definition.
func TestSupportOfRuleMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 3, 2, 8, 4)
		rule := randomRuleForSupport(rng, db)
		fast, err := SupportOfRule(db, rule)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := core.Support(db, rule)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Errorf("seed %d: SupportOfRule = %v, Support = %v for %s", seed, fast, slow, rule)
		}
	}
}

func TestSupportOfRuleWidthWorkloads(t *testing.T) {
	for c := 1; c <= 3; c++ {
		db, rule := workload.WidthWorkload(c, 60, 12, int64(c))
		fast, err := SupportOfRule(db, rule)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := core.Support(db, rule)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Errorf("width %d: %v != %v", c, fast, slow)
		}
	}
}

func TestSupportOfRuleEmptyRelation(t *testing.T) {
	db := relation.NewDatabase()
	db.MustAddRelation("p", 2)
	rule := core.Rule{
		Head: relation.NewAtom("p", "X", "Y"),
		Body: []relation.Atom{relation.NewAtom("p", "X", "Y")},
	}
	v, err := SupportOfRule(db, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsZero() {
		t.Errorf("support over empty relation = %v", v)
	}
}

func randomRuleForSupport(rng *rand.Rand, db *relation.Database) core.Rule {
	names := db.RelationNames()
	vars := []string{"X", "Y", "Z", "W"}
	mk := func() relation.Atom {
		name := names[rng.Intn(len(names))]
		arity := db.Relation(name).Arity()
		args := make([]string, arity)
		for i := range args {
			args[i] = vars[rng.Intn(len(vars))]
		}
		return relation.NewAtom(name, args...)
	}
	nBody := 1 + rng.Intn(3)
	body := make([]relation.Atom, nBody)
	for i := range body {
		body[i] = mk()
	}
	return core.Rule{Head: mk(), Body: body}
}
