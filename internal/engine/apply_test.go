package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
	"github.com/mqgo/metaquery/internal/workload"
)

// tupleStrings converts a stored tuple back to its constant names — the
// wire form Delta speaks.
func tupleStrings(db *relation.Database, t relation.Tuple) []string {
	row := make([]string, len(t))
	for i, v := range t {
		row[i] = db.Dict().Name(v)
	}
	return row
}

// applyAndCompare applies d and checks every execution path — sequential
// FindRules, parallel FindRules, sequential and parallel Stream, the
// incremental statistics — against a from-scratch engine on a clone of the
// post-delta database.
func applyAndCompare(t *testing.T, eng *Engine, mq *core.Metaquery, opt Options, d Delta) {
	t.Helper()
	ctx := context.Background()
	before := eng.Epoch()
	if _, err := eng.Apply(ctx, d); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if eng.Epoch() == before {
		// Effect-free deltas are exercised elsewhere; the comparison below
		// still holds, so keep going.
		t.Logf("delta had no effect (epoch still %d)", before)
	}

	fresh := NewEngine(eng.Database().Clone())
	want, err := fresh.FindRules(ctx, mq, opt)
	if err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	wantSet := answerMultiset(want)

	got, err := eng.FindRules(ctx, mq, opt)
	if err != nil {
		t.Fatalf("incremental engine: %v", err)
	}
	if !sameMultiset(answerMultiset(got), wantSet) {
		t.Fatalf("incremental FindRules has %d answers, fresh rebuild %d", len(got), len(want))
	}

	popt := opt
	popt.Workers = 3
	prep, err := eng.Prepare(mq, popt)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []core.Answer
	for a, serr := range prep.Stream(ctx) {
		if serr != nil {
			t.Fatalf("parallel stream after apply: %v", serr)
		}
		streamed = append(streamed, a)
	}
	if !sameMultiset(answerMultiset(streamed), wantSet) {
		t.Fatalf("parallel stream after apply has %d answers, fresh rebuild %d", len(streamed), len(want))
	}

	if diff := eng.Statistics().DiffFrom(fresh.Statistics()); diff != "" {
		t.Fatalf("incremental statistics diverge from exact recollection:\n%s", diff)
	}
}

// TestApplyMatchesRebuild runs hand-written deltas — deletes of existing
// tuples, inserts of fresh and of domain constants — over generated
// scenarios and checks every path against a fresh engine.
func TestApplyMatchesRebuild(t *testing.T) {
	for _, shape := range []string{"t0-chain", "t1-cycle", "t2-pad"} {
		for seed := int64(0); seed < 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", shape, seed), func(t *testing.T) {
				s, err := gen.NewScenario(seed, shape)
				if err != nil {
					t.Fatal(err)
				}
				eng := NewEngine(s.DB)
				opt := Options{Type: s.Type, Thresholds: s.Th}
				rng := rand.New(rand.NewSource(seed + 99))
				for step := 0; step < 3; step++ {
					db := eng.Database()
					var d Delta
					for _, name := range db.RelationNames() {
						if rng.Intn(2) == 0 {
							continue
						}
						r := db.Relation(name)
						rd := RelationDelta{Name: name}
						tuples := r.Tuples()
						for i := 0; i < 2 && len(tuples) > 0; i++ {
							rd.Delete = append(rd.Delete, tupleStrings(db, tuples[rng.Intn(len(tuples))]))
						}
						for i := 0; i < 3; i++ {
							row := make([]string, r.Arity())
							for j := range row {
								if rng.Intn(2) == 0 && len(tuples) > 0 {
									row[j] = tupleStrings(db, tuples[rng.Intn(len(tuples))])[rng.Intn(r.Arity())]
								} else {
									row[j] = fmt.Sprintf("fresh_%d_%d_%d", step, i, j)
								}
							}
							rd.Insert = append(rd.Insert, row)
						}
						d.Relations = append(d.Relations, rd)
					}
					if len(d.Relations) == 0 {
						continue
					}
					applyAndCompare(t, eng, s.MQ, opt, d)
				}
			})
		}
	}
}

// TestApplyDeleteToEmpty deletes every tuple of a relation the metaquery
// joins through: the relation survives with zero rows, searches return the
// accordingly reduced answer set, and re-populating it works.
func TestApplyDeleteToEmpty(t *testing.T) {
	db := workload.ChainDB(3, 6, 18, 5)
	mq := workload.ChainMQ(3)
	eng := NewEngine(db)
	ctx := context.Background()

	var wipe Delta
	rd := RelationDelta{Name: "r1"}
	for _, tup := range db.Relation("r1").Tuples() {
		rd.Delete = append(rd.Delete, tupleStrings(db, tup))
	}
	wipe.Relations = []RelationDelta{rd}
	applyAndCompare(t, eng, mq, Options{Type: core.Type0}, wipe)

	r1 := eng.Database().Relation("r1")
	if r1 == nil || r1.Len() != 0 {
		t.Fatalf("r1 after wipe: %v (want present, empty)", r1)
	}
	// Patterns can bind any binary relation, so answers survive (with
	// support 0 through r1); correctness against the fresh rebuild is what
	// applyAndCompare pinned above. The emptied relation must still join.
	if _, err := eng.FindRules(ctx, mq, Options{Type: core.Type0}); err != nil {
		t.Fatal(err)
	}

	refill := Delta{Relations: []RelationDelta{{Name: "r1", Insert: [][]string{{"n1_0", "n2_0"}, {"n1_1", "n2_1"}}}}}
	applyAndCompare(t, eng, mq, Options{Type: core.Type0}, refill)
	if got := eng.Database().Relation("r1").Len(); got != 2 {
		t.Fatalf("r1 after refill has %d rows, want 2", got)
	}
}

// TestApplyTombstoneReinsert pins the resurrect path: deleting a tuple and
// re-inserting it — in a later Apply and within one RelationDelta (deletes
// first) — leaves it present exactly once.
func TestApplyTombstoneReinsert(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "c", "d")
	eng := NewEngine(db)
	ctx := context.Background()

	if _, err := eng.Apply(ctx, Delta{Relations: []RelationDelta{{Name: "p", Delete: [][]string{{"a", "b"}}}}}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Database().Relation("p").Len(); got != 1 {
		t.Fatalf("after delete: %d rows, want 1", got)
	}
	res, err := eng.Apply(ctx, Delta{Relations: []RelationDelta{{Name: "p", Insert: [][]string{{"a", "b"}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 {
		t.Fatalf("re-insert of tombstoned tuple reported %d inserts, want 1", res.Inserted)
	}
	p := eng.Database().Relation("p")
	if p.Len() != 2 {
		t.Fatalf("after re-insert: %d rows, want 2", p.Len())
	}
	seen := 0
	for _, tup := range p.Tuples() {
		row := tupleStrings(eng.Database(), tup)
		if row[0] == "a" && row[1] == "b" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("tuple (a,b) present %d times after resurrect, want exactly once", seen)
	}

	// Delete+insert of the same tuple within ONE RelationDelta: deletes
	// apply first, so the pair is a net no-op on membership but both legs
	// count as effective.
	res, err = eng.Apply(ctx, Delta{Relations: []RelationDelta{{
		Name:   "p",
		Delete: [][]string{{"c", "d"}},
		Insert: [][]string{{"c", "d"}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Inserted != 1 {
		t.Fatalf("same-batch delete+insert reported %d/%d, want 1/1", res.Deleted, res.Inserted)
	}
	if got := eng.Database().Relation("p").Len(); got != 2 {
		t.Fatalf("after same-batch delete+insert: %d rows, want 2", got)
	}
	if diff := eng.Statistics().DiffFrom(stats.Collect(eng.Database())); diff != "" {
		t.Fatalf("statistics after resurrect diverge:\n%s", diff)
	}
}

// TestApplyUnmentionedRelation changes a relation no metaquery pattern can
// unify with arity-wise: prepared results are unaffected, but the epoch
// still advances and the new data is queryable.
func TestApplyUnmentionedRelation(t *testing.T) {
	db := workload.ChainDB(2, 5, 12, 3)
	db.MustInsertNamed("side", "a", "b", "c") // arity 3: no binary pattern matches
	mq := workload.ChainMQ(2)
	eng := NewEngine(db)
	ctx := context.Background()
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	before, err := prep.FindRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Engine() != eng || prep.Metaquery() != mq {
		t.Fatal("Prepared accessor identity mismatch")
	}
	if prep.Options().Type != core.Type0 {
		t.Fatalf("Options round-trip %+v", prep.Options())
	}
	if prep.Width() < 1 {
		t.Fatalf("Width() = %d", prep.Width())
	}
	e0 := eng.Epoch()

	d := Delta{Relations: []RelationDelta{{Name: "side", Insert: [][]string{{"x", "y", "z"}}, Delete: [][]string{{"a", "b", "c"}}}}}
	applyAndCompare(t, eng, mq, Options{Type: core.Type0}, d)
	if eng.Epoch() != e0+1 {
		t.Fatalf("epoch %d after delta, want %d", eng.Epoch(), e0+1)
	}
	after, err := prep.FindRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(answerMultiset(before), answerMultiset(after)) {
		t.Fatalf("delta on an unmentioned relation changed the answers: %d vs %d", len(before), len(after))
	}

	// The one-shot decision wrapper sees the same (post-delta) database.
	yes, wit, err := DecideFirst(ctx, eng.Database(), mq, core.Sup, rat.Zero, core.Type0)
	if err != nil {
		t.Fatal(err)
	}
	if yes != (len(after) > 0) {
		t.Fatalf("DecideFirst sup>0 = %v with %d answers", yes, len(after))
	}
	if yes && wit == nil {
		t.Fatal("YES decision without a witness")
	}
}

// TestApplyNewRelation creates a relation via delta: the candidate index of
// the new epoch must offer it to pattern schemes, growing the answer set.
func TestApplyNewRelation(t *testing.T) {
	db := workload.ChainDB(2, 5, 15, 7)
	mq := workload.ChainMQ(2)
	eng := NewEngine(db)
	ctx := context.Background()
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}
	before, err := prep.FindRules(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// A copy of r0 under a new name: every body using r0 now has a twin.
	rd := RelationDelta{Name: "rnew"}
	for _, tup := range db.Relation("r0").Tuples() {
		rd.Insert = append(rd.Insert, tupleStrings(db, tup))
	}
	applyAndCompare(t, eng, mq, Options{Type: core.Type0}, Delta{Relations: []RelationDelta{rd}})

	after, err := prep.FindRules(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("new relation invisible to candidates: %d answers before, %d after", len(before), len(after))
	}

	// Creating an empty relation (explicit arity, no inserts) is still a
	// schema change: the epoch advances.
	e := eng.Epoch()
	if _, err := eng.Apply(ctx, Delta{Relations: []RelationDelta{{Name: "empty", Arity: 2}}}); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != e+1 {
		t.Fatalf("creating an empty relation did not advance the epoch")
	}
	if r := eng.Database().Relation("empty"); r == nil || r.Len() != 0 || r.Arity() != 2 {
		t.Fatalf("empty relation not created correctly: %v", r)
	}
}

// TestApplyNoopAndValidation pins the atomicity contract: an effect-free
// delta keeps the epoch, and a delta failing validation leaves the engine
// byte-for-byte on its previous snapshot.
func TestApplyNoopAndValidation(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	eng := NewEngine(db)
	ctx := context.Background()
	snap0 := eng.snap.Load()

	res, err := eng.Apply(ctx, Delta{Relations: []RelationDelta{{
		Name:   "p",
		Insert: [][]string{{"a", "b"}},     // already present
		Delete: [][]string{{"nope", "no"}}, // never interned
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 || res.Epoch != 0 {
		t.Fatalf("no-op delta reported %+v", res)
	}
	if eng.snap.Load() != snap0 {
		t.Fatal("no-op delta replaced the snapshot")
	}

	for name, bad := range map[string]Delta{
		"arity mismatch":        {Relations: []RelationDelta{{Name: "p", Insert: [][]string{{"x"}}}}},
		"declared arity wrong":  {Relations: []RelationDelta{{Name: "p", Arity: 3, Insert: [][]string{{"x", "y", "z"}}}}},
		"unknown without arity": {Relations: []RelationDelta{{Name: "q", Delete: [][]string{{"x", "y"}}}}},
		"mixed tuple lengths":   {Relations: []RelationDelta{{Name: "q2", Insert: [][]string{{"x", "y"}, {"z"}}}}},
	} {
		if _, err := eng.Apply(ctx, bad); err == nil {
			t.Errorf("%s: Apply accepted an invalid delta", name)
		}
		if eng.snap.Load() != snap0 {
			t.Fatalf("%s: failed Apply mutated the engine", name)
		}
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Apply(cancelled, Delta{Relations: []RelationDelta{{Name: "p", Insert: [][]string{{"c", "d"}}}}}); err == nil {
		t.Error("Apply ignored a cancelled context")
	}
	if eng.snap.Load() != snap0 {
		t.Fatal("cancelled Apply mutated the engine")
	}
}

// TestApplyRacingStream races Apply against an in-flight parallel Stream
// (run under -race in CI): the stream pins the epoch it started on, so its
// answer multiset must exactly match one of the two database versions —
// never a mix.
func TestApplyRacingStream(t *testing.T) {
	// Type1 cyclic scenario: answers carry data-dependent index values, so
	// a delta observably moves the answer multiset.
	rng := rand.New(rand.NewSource(21))
	db := gen.DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 60, MaxTuples: 60, Domain: 8}.Generate(rng)
	mq, err := gen.MQConfig{BodyPatterns: 3, PatternArity: 2, Cyclic: true}.Generate(rng, db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	setA := answerMultiset(mustFind(t, NewEngine(db.Clone()), mq))
	// Delete a third of r1 and add an edge through a brand-new constant:
	// guaranteed to move the index values of rules joining through r1.
	rd := RelationDelta{Name: "r1", Insert: [][]string{{"d0", "bridge"}}}
	for i, tup := range db.Relation("r1").Tuples() {
		if i%3 == 0 {
			rd.Delete = append(rd.Delete, tupleStrings(db, tup))
		}
	}
	d := Delta{Relations: []RelationDelta{rd}}
	dbB := db.Clone()
	applyDeltaToClone(t, dbB, d)
	setB := answerMultiset(mustFind(t, NewEngine(dbB), mq))
	if sameMultiset(setA, setB) {
		t.Fatal("test delta does not change the answer set; race is unobservable")
	}

	for round := 0; round < 4; round++ {
		reng := NewEngine(db.Clone())
		prep, err := reng.Prepare(mq, Options{Type: core.Type1, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		applied := make(chan struct{})
		var got []core.Answer
		n := 0
		for a, serr := range prep.Stream(ctx) {
			if serr != nil {
				t.Fatalf("stream during apply: %v", serr)
			}
			got = append(got, a)
			n++
			if n == 1 {
				go func() {
					defer close(applied)
					if _, err := reng.Apply(ctx, d); err != nil {
						t.Errorf("apply during stream: %v", err)
					}
				}()
			}
		}
		<-applied
		gotSet := answerMultiset(got)
		if !sameMultiset(gotSet, setA) && !sameMultiset(gotSet, setB) {
			t.Fatalf("round %d: streamed multiset (%d answers) matches neither epoch (%d / %d)",
				round, len(got), len(setA), len(setB))
		}
		// A fresh execution after Apply returned must see epoch B.
		if after := answerMultiset(mustFind(t, reng, mq)); !sameMultiset(after, setB) {
			t.Fatalf("round %d: post-apply execution does not see the new epoch", round)
		}
	}
}

// TestApplyEpochCoherence hammers one engine with concurrent Applies,
// FindRules, DecideFirst and snapshot reads (run under -race in CI); the
// newSnapshot invariant panics if any published epoch ever mixes database
// versions, and every loaded snapshot must be internally consistent.
func TestApplyEpochCoherence(t *testing.T) {
	db := workload.ChainDB(2, 6, 20, 13)
	mq := workload.ChainMQ(2)
	eng := NewEngine(db)
	ctx := context.Background()
	prep, err := eng.Prepare(mq, Options{Type: core.Type0})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := prep.FindRules(ctx); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				s := eng.snap.Load()
				if s.cands.Database() != s.db || s.ev.Database() != s.db || (s.st != nil && s.st.Database() != s.db) {
					t.Errorf("worker %d: snapshot %d mixes database versions", w, s.epoch)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		d := Delta{Relations: []RelationDelta{{
			Name:   "r0",
			Insert: [][]string{{fmt.Sprintf("n0_%d", i%6), fmt.Sprintf("n1_%d", (i+1)%6)}},
			Delete: [][]string{{fmt.Sprintf("n0_%d", (i+3)%6), fmt.Sprintf("n1_%d", i%6)}},
		}}}
		if _, err := eng.Apply(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if diff := eng.Statistics().DiffFrom(stats.Collect(eng.Database())); diff != "" {
		t.Fatalf("statistics after 25 racing applies diverge:\n%s", diff)
	}
}

func mustFind(t *testing.T, eng *Engine, mq *core.Metaquery) []core.Answer {
	t.Helper()
	as, err := eng.FindRules(context.Background(), mq, Options{Type: core.Type1})
	if err != nil {
		t.Fatal(err)
	}
	return as
}

// applyDeltaToClone mirrors a Delta onto a plain database — the oracle the
// racing test compares both epochs against.
func applyDeltaToClone(t *testing.T, db *relation.Database, d Delta) {
	t.Helper()
	for _, rd := range d.Relations {
		r := db.Relation(rd.Name)
		for _, row := range rd.Delete {
			if tup, ok := lookupTuple(db.Dict(), row); ok {
				r.Delete(tup)
			}
		}
		for _, row := range rd.Insert {
			db.MustInsertNamed(rd.Name, row...)
		}
	}
}

// BenchmarkParallelStream guards the merge loop's per-answer cost (the
// st.Answers publication moved out of the mutex): one iteration consumes a
// full 4-worker stream.
func BenchmarkParallelStream(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	db := gen.DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 80, MaxTuples: 80, Domain: 9}.Generate(rng)
	mq, err := gen.MQConfig{BodyPatterns: 3, PatternArity: 2, Cyclic: true}.Generate(rng, db)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := NewEngine(db).Prepare(mq, Options{Type: core.Type1, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		var st Stats
		for _, serr := range prep.StreamStats(ctx, &st) {
			if serr != nil {
				b.Fatal(serr)
			}
			n++
		}
		if st.Answers != n {
			b.Fatalf("stats report %d answers, consumer saw %d", st.Answers, n)
		}
	}
}
