package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/mqgo/metaquery/internal/core"
)

// ExplainNode is the per-decomposition-node record of an Explain report:
// the node's place in the chosen visit order, the planner's cost estimate
// for its λ-join output, and the actual node-table row counts observed
// while executing — the estimate-vs-actual surface for debugging the
// statistics subsystem.
type ExplainNode struct {
	// NodeID identifies the decomposition node.
	NodeID int
	// Chi is the node's output column set χ.
	Chi []string
	// Schemes renders the node's λ literal schemes.
	Schemes []string
	// EstRows is the planner's estimated node-join output size under each
	// scheme's cheapest candidate (the quantity the visit order ranks by).
	EstRows float64
	// Visits counts how many node tables were computed for this node (one
	// per candidate assignment reaching it).
	Visits int
	// MinRows/MaxRows/TotalRows summarize the actual row counts of those
	// node tables.
	MinRows, MaxRows, TotalRows int
}

// Explain is the plan report of one execution: the node visit order with
// per-node estimates and observed actuals, plus the execution's search
// counters. Collect one with Prepared.ExplainRun.
type Explain struct {
	// Nodes follows the visit order of the explained run.
	Nodes []ExplainNode
	// CostPlanner reports whether the cost-based planner (cardinality
	// statistics) was active for the run.
	CostPlanner bool
	// Stats are the explained run's search counters.
	Stats *Stats

	mu  sync.Mutex
	pos map[int]int // node ID -> index in Nodes
}

// observe records one computed node table's actual row count.
func (e *Explain) observe(nodeID, rows int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := &e.Nodes[e.pos[nodeID]]
	if n.Visits == 0 || rows < n.MinRows {
		n.MinRows = rows
	}
	if rows > n.MaxRows {
		n.MaxRows = rows
	}
	n.Visits++
	n.TotalRows += rows
}

// String renders the report as an aligned text table.
func (e *Explain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d node(s), cost planner %s\n", len(e.Nodes),
		map[bool]string{true: "on", false: "off"}[e.CostPlanner])
	fmt.Fprintf(&b, "%-5s %-24s %-28s %12s %8s %22s\n",
		"node", "chi", "lambda", "est_rows", "visits", "actual min/avg/max")
	for _, n := range e.Nodes {
		actual := "-"
		if n.Visits > 0 {
			actual = fmt.Sprintf("%d/%.1f/%d", n.MinRows, float64(n.TotalRows)/float64(n.Visits), n.MaxRows)
		}
		fmt.Fprintf(&b, "%-5d %-24s %-28s %12.1f %8d %22s\n",
			n.NodeID, strings.Join(n.Chi, ","), strings.Join(n.Schemes, " "),
			n.EstRows, n.Visits, actual)
	}
	return b.String()
}

// ExplainRun executes the prepared metaquery once while recording the
// estimate-vs-actual plan report, returning the report together with the
// full sorted answer set. The visit order, estimates and candidate
// ordering are exactly what FindRules uses, so the report describes the
// production plan, not a simulation.
//
// On a context error the report and the answers found so far are still
// returned alongside the error — a timed-out explain run is precisely
// when the estimate-vs-actual surface is most interesting.
func (p *Prepared) ExplainRun(ctx context.Context) (*Explain, []core.Answer, error) {
	r := p.newRun(ctx)
	defer r.release()
	ex := p.newExplain(r)
	r.explain = ex

	var answers []core.Answer
	r.emit = func(a core.Answer) error {
		answers = append(answers, a)
		if r.opt.Limit > 0 && len(answers) >= r.opt.Limit {
			return errLimit
		}
		return nil
	}
	err := r.search()
	if err == errLimit {
		err = nil
	}
	core.SortAnswers(answers)
	r.stats.Answers = len(answers)
	ex.Stats = r.stats
	return ex, answers, err
}

// newExplain seeds the report skeleton for the run's visit order.
func (p *Prepared) newExplain(r *run) *Explain {
	ex := &Explain{
		CostPlanner: r.ep.snap.st != nil && !r.opt.DisableCostPlanner,
		pos:         make(map[int]int, len(r.order)),
	}
	for i, n := range r.order {
		schemes := make([]string, 0, len(p.nodeSchemes[n.ID]))
		for _, id := range p.nodeSchemes[n.ID] {
			schemes = append(schemes, p.schemes[id].scheme.String())
		}
		ex.Nodes = append(ex.Nodes, ExplainNode{
			NodeID:  n.ID,
			Chi:     append([]string(nil), n.Chi...),
			Schemes: schemes,
			EstRows: p.nodeEstimate(r.ep, n),
		})
		ex.pos[n.ID] = i
	}
	return ex
}
