package oracle

import (
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// The oracle must reproduce the paper's hand-computed Figure 1 values for
// the rule UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z): cnf = 5/7, cvr = 1, sup = 1.
// This anchors the oracle to the paper independently of every other
// implementation in the repo.
func TestIndicesOnFigure1(t *testing.T) {
	db := workload.DB1()
	r := core.Rule{
		Head: relation.NewAtom("UsPT", "X", "Z"),
		Body: []relation.Atom{
			relation.NewAtom("UsCa", "X", "Y"),
			relation.NewAtom("CaTe", "Y", "Z"),
		},
	}
	sup, cnf, cvr, err := Indices(db, r)
	if err != nil {
		t.Fatal(err)
	}
	if !cnf.Equal(rat.New(5, 7)) {
		t.Errorf("cnf = %v, want 5/7", cnf)
	}
	if !cvr.Equal(rat.One) {
		t.Errorf("cvr = %v, want 1", cvr)
	}
	if !sup.Equal(rat.One) {
		t.Errorf("sup = %v, want 1", sup)
	}
}

// Fractions over disjoint-variable atom sets are cartesian: the join keeps
// every row of the left side as long as the right side is non-empty.
func TestFractionCartesian(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a")
	db.MustInsertNamed("p", "b")
	db.MustInsertNamed("q", "c")
	f, err := Fraction(db,
		[]relation.Atom{relation.NewAtom("p", "X")},
		[]relation.Atom{relation.NewAtom("q", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(rat.One) {
		t.Errorf("cartesian fraction = %v, want 1", f)
	}
	// Against an empty right side the numerator is 0.
	db.MustAddRelation("empty", 1)
	f, err = Fraction(db,
		[]relation.Atom{relation.NewAtom("p", "X")},
		[]relation.Atom{relation.NewAtom("empty", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero() {
		t.Errorf("fraction vs empty = %v, want 0", f)
	}
}

// Repeated variables inside an atom are equality selections: p(X,X) keeps
// only the diagonal tuples.
func TestFromAtomRepeatedVariable(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "a")
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "b", "b")
	tab, err := fromAtom(db, relation.NewAtom("p", "X", "X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.rows) != 2 || len(tab.vars) != 1 {
		t.Fatalf("p(X,X) = %v rows over %v, want 2 rows over [X]", tab.rows, tab.vars)
	}
}

// The oracle's own candidate enumeration must agree with core.Candidates on
// every shape and type: same atom sets, atom by atom.
func TestCandidatesMatchCore(t *testing.T) {
	for _, shape := range gen.Shapes() {
		for seed := int64(0); seed < 5; seed++ {
			s, err := gen.NewScenario(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			for i, l := range s.MQ.RelationPatterns() {
				for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
					want := core.Candidates(s.DB, l, typ, i)
					got := candidates(s.DB, l, typ, i)
					if len(got) != len(want) {
						t.Fatalf("%s/%d %s %s: %d candidates, core has %d",
							shape, seed, typ, l, len(got), len(want))
					}
					for j := range got {
						if got[j].String() != want[j].String() {
							t.Fatalf("%s/%d %s %s: candidate %d = %s, core has %s",
								shape, seed, typ, l, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}

// Answers must enforce functionality of the predicate-variable mapping:
// with P reused across two body literals, both must map to the same
// relation.
func TestFunctionalPredicateVariables(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	mq := core.MustParse("R(X,Z) <- P(X,Y), P(Y,Z)")
	var rules []core.Rule
	if err := forEachRule(db, mq, core.Type0, func(r core.Rule) (bool, error) {
		rules = append(rules, r)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Body) == 2 && r.Body[0].Pred != r.Body[1].Pred {
			t.Errorf("rule %s maps one predicate variable to two relations", r)
		}
	}
	// rep(MQ) = {R, P(X,Y), P(Y,Z)}: 2 choices for R, 2 for P = 4 rules.
	if len(rules) != 4 {
		t.Errorf("enumerated %d rules, want 4", len(rules))
	}
}

// Decide and MaxIndex must be consistent: Decide(k) is YES iff MaxIndex > k.
func TestDecideMatchesMaxIndex(t *testing.T) {
	s, err := gen.NewScenario(3, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range core.AllIndices {
		m, err := MaxIndex(s.DB, s.MQ, ix, s.Type)
		if err != nil {
			t.Fatal(err)
		}
		yes, err := Decide(s.DB, s.MQ, ix, rat.Zero, s.Type)
		if err != nil {
			t.Fatal(err)
		}
		if yes != m.Greater(rat.Zero) {
			t.Errorf("%s: Decide(0) = %v but max = %v", ix, yes, m)
		}
		no, err := Decide(s.DB, s.MQ, ix, m, s.Type)
		if err != nil {
			t.Fatal(err)
		}
		if no {
			t.Errorf("%s: Decide(max=%v) = YES, strict comparison violated", ix, m)
		}
	}
}

// Type-2 padding must use the engine's reserved fresh-variable names so that
// instantiated rules print identically across implementations.
func TestType2FreshNames(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b", "c")
	l := core.Pattern("Q", "X")
	for _, a := range candidates(db, l, core.Type2, 1) {
		fresh := 0
		for _, term := range a.Terms {
			if term.IsVar() && len(term.Var) > 2 && term.Var[:2] == "_f" {
				fresh++
			}
		}
		if fresh != 2 {
			t.Errorf("candidate %s: want 2 _f-padding variables, got %d", a, fresh)
		}
	}
}
