package oracle

import (
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// TestAllRulesAndAnswersFigure1 pins the oracle's enumeration entry
// points to the paper's worked example: AllRules on the Figure 1 database
// returns the full sorted ground truth, and Answers filters it with the
// strict (>) threshold semantics — at cnf > 1/2 the 5/7-confidence rule
// survives, at cnf > 5/7 it does not.
func TestAllRulesAndAnswersFigure1(t *testing.T) {
	db := workload.DB1()
	mq := workload.MQ4()

	all, err := AllRules(db, mq, core.Type0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("AllRules returned nothing on Figure 1")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Rule.String() > all[i].Rule.String() {
			t.Fatalf("AllRules not sorted: %q after %q", all[i].Rule, all[i-1].Rule)
		}
	}
	var best *Answer
	for i := range all {
		if all[i].Rule.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
			best = &all[i]
		}
	}
	if best == nil || !best.Cnf.Equal(rat.New(5, 7)) {
		t.Fatalf("Figure 1 rule missing or wrong cnf in AllRules: %+v", best)
	}

	loose, err := Answers(db, mq, core.Type0, core.Thresholds{Cnf: rat.New(1, 2), CheckCnf: true})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Answers(db, mq, core.Type0, core.Thresholds{Cnf: rat.New(5, 7), CheckCnf: true})
	if err != nil {
		t.Fatal(err)
	}
	found := func(as []Answer) bool {
		for _, a := range as {
			if a.Rule.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
				return true
			}
		}
		return false
	}
	if !found(loose) {
		t.Error("cnf > 1/2 dropped the 5/7 rule")
	}
	if found(tight) {
		t.Error("strict cnf > 5/7 admitted the 5/7 rule")
	}
	if len(tight) >= len(loose) {
		t.Errorf("tightening the bound grew the answer set: %d -> %d", len(loose), len(tight))
	}

	// All three checks engaged at once: sup and cvr are 1 for the Figure 1
	// rule, so only the cnf bound decides.
	th := core.AllAbove(rat.New(1, 2), rat.New(1, 2), rat.New(1, 2))
	some, err := Answers(db, mq, core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	if !found(some) {
		t.Error("AllAbove(1/2,1/2,1/2) dropped the Figure 1 rule")
	}
}

// TestConstNameResolution checks both constant-term forms: named
// constants resolve to their own name, interned ones go through the
// dictionary.
func TestConstNameResolution(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "rome")
	v, ok := db.Dict().Lookup("rome")
	if !ok {
		t.Fatal("rome not interned")
	}
	if got := constName(db.Dict(), relation.CN("paris")); got != "paris" {
		t.Fatalf("named constant resolves to %q", got)
	}
	if got := constName(db.Dict(), relation.C(v)); got != "rome" {
		t.Fatalf("interned constant resolves to %q", got)
	}
}
