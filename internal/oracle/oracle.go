// Package oracle is a deliberately transparent brute-force metaquery
// evaluator used as the ground truth of the differential harness
// (internal/diff). It shares only data types with the production code
// (core.Metaquery, core.Rule, relation.Atom, rat.Rat) and none of its
// machinery: rows are string tuples keyed by joined text, joins are nested
// loops, fractions follow Definition 2.6 literally (full join, then
// projection, then distinct count — no semijoin shortcut), candidate atoms
// are enumerated by its own permutation/injection code, and nothing is
// cached or planned. Every shortcut the engine takes is therefore checked
// against an implementation that takes none.
package oracle

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// table is a set of string rows under named columns. Set semantics are kept
// with a string key joining the row values.
type table struct {
	vars []string
	rows [][]string
	seen map[string]bool
}

func newTable(vars []string) *table {
	return &table{vars: vars, seen: make(map[string]bool)}
}

// key builds the string identity of a row. Values may contain any runes, so
// fields are length-prefixed to keep the key injective.
func key(row []string) string {
	var b strings.Builder
	for _, v := range row {
		fmt.Fprintf(&b, "%d:%s|", len(v), v)
	}
	return b.String()
}

func (t *table) add(row []string) {
	k := key(row)
	if t.seen[k] {
		return
	}
	t.seen[k] = true
	t.rows = append(t.rows, append([]string(nil), row...))
}

func (t *table) pos(v string) int {
	for i, tv := range t.vars {
		if tv == v {
			return i
		}
	}
	return -1
}

// unit is the join identity: no columns, one empty row.
func unit() *table {
	t := newTable(nil)
	t.add(nil)
	return t
}

// fromAtom materializes one atom against the database: scan every tuple,
// check repeated-variable equalities and constant terms positionally, and
// project onto the atom's distinct variables in first-occurrence order.
func fromAtom(db *relation.Database, a relation.Atom) (*table, error) {
	r := db.Relation(a.Pred)
	if r == nil {
		return nil, fmt.Errorf("oracle: unknown relation %q in atom %s", a.Pred, a)
	}
	if r.Arity() != len(a.Terms) {
		return nil, fmt.Errorf("oracle: atom %s arity %d vs relation arity %d", a, len(a.Terms), r.Arity())
	}
	vars := a.Vars()
	out := newTable(vars)
	dict := db.Dict()
	for ri := 0; ri < r.Len(); ri++ {
		tup := r.Row(ri)
		bind := make(map[string]string, len(vars))
		ok := true
		for i, term := range a.Terms {
			val := dict.Name(tup[i])
			if term.IsVar() {
				if prev, bound := bind[term.Var]; bound {
					if prev != val {
						ok = false
						break
					}
				} else {
					bind[term.Var] = val
				}
			} else if constName(dict, term) != val {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = bind[v]
		}
		out.add(row)
	}
	return out, nil
}

// constName resolves a constant term to its name: named constants carry
// the name directly (the comparison against row values is by name, so a
// constant outside the active domain matches nothing); interned constants
// go through the dictionary.
func constName(dict *relation.Dict, t relation.Term) string {
	if t.ConstName != "" {
		return t.ConstName
	}
	return dict.Name(t.Const)
}

// naturalJoin computes a ⋈ b by nested loops: every row pair agreeing on
// every shared column contributes the merged row. With no shared columns
// this is the cartesian product.
func naturalJoin(a, b *table) *table {
	outVars := append([]string(nil), a.vars...)
	var bExtra []int
	for i, v := range b.vars {
		if a.pos(v) < 0 {
			outVars = append(outVars, v)
			bExtra = append(bExtra, i)
		}
	}
	out := newTable(outVars)
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			match := true
			for i, v := range b.vars {
				if p := a.pos(v); p >= 0 && ra[p] != rb[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := append(append([]string(nil), ra...), make([]string, len(bExtra))...)
			for i, p := range bExtra {
				row[len(a.vars)+i] = rb[p]
			}
			out.add(row)
		}
	}
	return out
}

// project computes π_vars(t) with set semantics.
func project(t *table, vars []string) *table {
	out := newTable(vars)
	row := make([]string, len(vars))
	for _, r := range t.rows {
		for i, v := range vars {
			p := t.pos(v)
			if p < 0 {
				panic(fmt.Sprintf("oracle: projecting on missing column %q", v))
			}
			row[i] = r[p]
		}
		out.add(row)
	}
	return out
}

// joinAll computes J(R) for the atom set R: the natural join of the atom
// materializations, folded left to right, starting from the unit table.
func joinAll(db *relation.Database, atoms []relation.Atom) (*table, error) {
	j := unit()
	for _, a := range atoms {
		t, err := fromAtom(db, a)
		if err != nil {
			return nil, err
		}
		j = naturalJoin(j, t)
	}
	return j, nil
}

// Fraction computes R ↑ S of Definition 2.6 exactly as written:
//
//	R ↑ S = |π_att(R)(J(R) ⋈ J(S))| / |J(R)|
//
// with the convention that the fraction is 0 when the numerator (or the
// denominator) is 0. The full join is materialized and projected; no
// semijoin rewriting is applied.
func Fraction(db *relation.Database, r, s []relation.Atom) (rat.Rat, error) {
	jr, err := joinAll(db, r)
	if err != nil {
		return rat.Zero, err
	}
	if len(jr.rows) == 0 {
		return rat.Zero, nil
	}
	js, err := joinAll(db, s)
	if err != nil {
		return rat.Zero, err
	}
	joined := naturalJoin(jr, js)
	num := len(project(joined, jr.vars).rows)
	if num == 0 {
		return rat.Zero, nil
	}
	return rat.New(int64(num), int64(len(jr.rows))), nil
}

// fractionTables finishes R ↑ S with both joins already materialized,
// exactly as Definition 2.6 is written: the full natural join, projected
// onto R's attributes, counted distinct.
func fractionTables(jr, js *table) rat.Rat {
	if len(jr.rows) == 0 {
		return rat.Zero
	}
	num := len(project(naturalJoin(jr, js), jr.vars).rows)
	if num == 0 {
		return rat.Zero
	}
	return rat.New(int64(num), int64(len(jr.rows)))
}

// Indices computes sup, cnf and cvr of rule r over db from first principles
// (Definition 2.7): cnf = b(r) ↑ h(r), cvr = h(r) ↑ b(r), and
// sup = max over body atoms a of {a} ↑ b(r). J(b(r)) and J(h(r)) are
// materialized once per rule; every fraction is still the literal
// join-project-count of Definition 2.6, with no caching across rules.
func Indices(db *relation.Database, r core.Rule) (sup, cnf, cvr rat.Rat, err error) {
	body, head := r.BodyAtoms(), r.HeadAtoms()
	jb, err := joinAll(db, body)
	if err != nil {
		return rat.Zero, rat.Zero, rat.Zero, err
	}
	jh, err := joinAll(db, head)
	if err != nil {
		return rat.Zero, rat.Zero, rat.Zero, err
	}
	sup = rat.Zero
	for _, a := range body {
		ja, ferr := fromAtom(db, a)
		if ferr != nil {
			return rat.Zero, rat.Zero, rat.Zero, ferr
		}
		sup = rat.Max(sup, fractionTables(ja, jb))
	}
	cnf = fractionTables(jb, jh)
	cvr = fractionTables(jh, jb)
	return sup, cnf, cvr, nil
}

// candidates enumerates the atoms pattern l may map to under the given
// instantiation type, with the oracle's own permutation and injection
// generators. patternIdx keys type-2 fresh padding variables and must be
// l's index in rep(MQ); the names follow the engine's reserved "_f" scheme
// so instantiated rules print identically across implementations.
func candidates(db *relation.Database, l core.LiteralScheme, typ core.InstType, patternIdx int) []relation.Atom {
	if !l.PredVar {
		return []relation.Atom{l.Atom()}
	}
	var out []relation.Atom
	seen := make(map[string]bool)
	add := func(a relation.Atom) {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	k := len(l.Args)
	for _, name := range db.RelationNames() {
		arity := db.Relation(name).Arity()
		switch typ {
		case core.Type0:
			if arity == k {
				add(atomOf(name, l.Args))
			}
		case core.Type1:
			if arity == k {
				for _, perm := range permutations(l.Args) {
					add(atomOf(name, perm))
				}
			}
		case core.Type2:
			if arity < k {
				continue
			}
			for _, inj := range injections(k, arity) {
				args := make([]string, arity)
				for j := range args {
					args[j] = ""
				}
				for j, p := range inj {
					args[p] = l.Args[j]
				}
				for p, a := range args {
					if a == "" {
						args[p] = fmt.Sprintf("_f%d_%d", patternIdx, p)
					}
				}
				add(atomOf(name, args))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// atomOf builds an atom from argument names with the oracle's own
// variable/constant classification — upper-case- or '_'-initial names are
// variables, everything else a named constant — mirroring the metaquery
// naming convention without sharing the production helper.
func atomOf(pred string, args []string) relation.Atom {
	terms := make([]relation.Term, len(args))
	for i, a := range args {
		isVar := false
		for _, r := range a {
			isVar = unicode.IsUpper(r) || r == '_'
			break
		}
		if isVar {
			terms[i] = relation.V(a)
		} else {
			terms[i] = relation.CN(a)
		}
	}
	return relation.Atom{Pred: pred, Terms: terms}
}

// permutations returns every ordering of args (duplicates included; the
// caller deduplicates resulting atoms).
func permutations(args []string) [][]string {
	if len(args) == 0 {
		return [][]string{nil}
	}
	var out [][]string
	for i := range args {
		rest := make([]string, 0, len(args)-1)
		rest = append(rest, args[:i]...)
		rest = append(rest, args[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{args[i]}, p...))
		}
	}
	return out
}

// injections returns every injective map from {0..k-1} into {0..kp-1}.
func injections(k, kp int) [][]int {
	if k == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(j int, used []bool, acc []int)
	rec = func(j int, used []bool, acc []int) {
		if j == k {
			out = append(out, append([]int(nil), acc...))
			return
		}
		for p := 0; p < kp; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			rec(j+1, used, append(acc, p))
			used[p] = false
		}
	}
	rec(0, make([]bool, kp), nil)
	return out
}

// Answer is one rule in the oracle's answer set with its exact indices.
type Answer struct {
	Rule core.Rule
	Sup  rat.Rat
	Cnf  rat.Rat
	Cvr  rat.Rat
}

// admits applies the strict threshold tests (index > bound) for the enabled
// checks, re-reading the Thresholds fields directly.
func admits(th core.Thresholds, sup, cnf, cvr rat.Rat) bool {
	if th.CheckSup && !sup.Greater(th.Sup) {
		return false
	}
	if th.CheckCnf && !cnf.Greater(th.Cnf) {
		return false
	}
	if th.CheckCvr && !cvr.Greater(th.Cvr) {
		return false
	}
	return true
}

// forEachRule enumerates every type-typ instantiated rule of mq over db:
// assignments of the distinct relation patterns (head first) to candidate
// atoms whose restriction to predicate variables is functional. The rules
// are produced by plain substitution; f returns false to stop.
func forEachRule(db *relation.Database, mq *core.Metaquery, typ core.InstType, f func(core.Rule) (bool, error)) error {
	if typ != core.Type2 && !mq.IsPure() {
		return fmt.Errorf("oracle: %s instantiations require a pure metaquery", typ)
	}
	patterns := mq.RelationPatterns()
	cands := make([][]relation.Atom, len(patterns))
	for i, l := range patterns {
		cands[i] = candidates(db, l, typ, i)
	}
	assign := make(map[string]relation.Atom, len(patterns)) // pattern key -> atom
	relOf := make(map[string]string, len(patterns))         // predicate var -> relation
	apply := func(l core.LiteralScheme) relation.Atom {
		if !l.PredVar {
			return l.Atom()
		}
		return assign[l.Key()]
	}
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(patterns) {
			rule := core.Rule{Head: apply(mq.Head)}
			for _, l := range mq.Body {
				rule.Body = append(rule.Body, apply(l))
			}
			return f(rule)
		}
		l := patterns[i]
		for _, a := range cands[i] {
			if prev, ok := relOf[l.Pred]; ok && prev != a.Pred {
				continue
			}
			_, had := relOf[l.Pred]
			assign[l.Key()] = a
			if !had {
				relOf[l.Pred] = a.Pred
			}
			cont, err := rec(i + 1)
			delete(assign, l.Key())
			if !had {
				delete(relOf, l.Pred)
			}
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}

// AllRules evaluates every type-typ instantiated rule of mq over db with no
// threshold filtering, sorted by rule text: the complete ground truth of one
// scenario in a single enumeration. The differential harness derives both
// the admissible answer set and the per-index maxima from it.
func AllRules(db *relation.Database, mq *core.Metaquery, typ core.InstType) ([]Answer, error) {
	var out []Answer
	err := forEachRule(db, mq, typ, func(r core.Rule) (bool, error) {
		sup, cnf, cvr, err := Indices(db, r)
		if err != nil {
			return false, err
		}
		out = append(out, Answer{Rule: r, Sup: sup, Cnf: cnf, Cvr: cvr})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.String() < out[j].Rule.String() })
	return out, nil
}

// Answers computes the full answer set of mq over db under type typ and the
// given thresholds, by exhaustive enumeration and first-principles index
// evaluation, sorted by rule text.
func Answers(db *relation.Database, mq *core.Metaquery, typ core.InstType, th core.Thresholds) ([]Answer, error) {
	all, err := AllRules(db, mq, typ)
	if err != nil {
		return nil, err
	}
	out := make([]Answer, 0, len(all))
	for _, a := range all {
		if admits(th, a.Sup, a.Cnf, a.Cvr) {
			out = append(out, a)
		}
	}
	return out, nil
}

// Decide answers the decision problem ⟨DB, MQ, I, k, T⟩: is there a type-T
// instantiation σ with I(σ(MQ)) > k? Exhaustive, no early pruning beyond
// stopping at the first witness.
func Decide(db *relation.Database, mq *core.Metaquery, ix core.Index, k rat.Rat, typ core.InstType) (bool, error) {
	found := false
	err := forEachRule(db, mq, typ, func(r core.Rule) (bool, error) {
		sup, cnf, cvr, err := Indices(db, r)
		if err != nil {
			return false, err
		}
		v := sup
		switch ix {
		case core.Cnf:
			v = cnf
		case core.Cvr:
			v = cvr
		}
		if v.Greater(k) {
			found = true
			return false, nil
		}
		return true, nil
	})
	return found, err
}

// MaxIndex returns the maximum value of the given index over every type-typ
// instantiation (rat.Zero when there are none). The harness derives
// YES/NO-flipping decision bounds from it.
func MaxIndex(db *relation.Database, mq *core.Metaquery, ix core.Index, typ core.InstType) (rat.Rat, error) {
	best := rat.Zero
	err := forEachRule(db, mq, typ, func(r core.Rule) (bool, error) {
		sup, cnf, cvr, err := Indices(db, r)
		if err != nil {
			return false, err
		}
		v := sup
		switch ix {
		case core.Cnf:
			v = cnf
		case core.Cvr:
			v = cvr
		}
		best = rat.Max(best, v)
		return true, nil
	})
	return best, err
}
