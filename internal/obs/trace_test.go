package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerZeroAlloc is the disabled-default contract: every method on
// a nil *Tracer must no-op without allocating.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.Begin(-1, "x")
		tr.End(id)
		tr.Point(-1, "y")
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per op, want 0", allocs)
	}
	if tr.Begin(-1, "x") != -1 || tr.Dropped() != 0 || tr.Spans() != nil || tr.Tree() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	tr.End(-1, A("k", "v")) // must not panic
}

func TestSpanTreeReconstruction(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin(-1, "decide")
	bind := tr.Begin(root, "bind-epoch")
	tr.End(bind, AInt("epoch", 3), ABool("rebound", false))
	join := tr.Begin(root, "node-join")
	tr.End(join, A("cache", "miss"), AInt("rows", 9), AFloat("est_rows", 12.5))
	tr.Point(root, "node-join", A("cache", "hit"))
	tr.End(root)

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	d := roots[0]
	if d.Name != "decide" || len(d.Children) != 3 {
		t.Fatalf("root = %q with %d children, want decide with 3", d.Name, len(d.Children))
	}
	if d.Children[0].Name != "bind-epoch" || d.Children[0].Attrs["epoch"] != "3" {
		t.Fatalf("first child wrong: %+v", d.Children[0])
	}
	if d.Children[1].Attrs["cache"] != "miss" || d.Children[1].Attrs["est_rows"] != "12.5" {
		t.Fatalf("join attrs wrong: %v", d.Children[1].Attrs)
	}
	if d.Children[2].DurUS != 0 {
		t.Fatalf("point span has duration %v", d.Children[2].DurUS)
	}

	text := RenderTree(roots)
	for _, want := range []string{"decide ", "  bind-epoch ", "epoch=3", "cache=hit", "est_rows=12.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

// TestTracerCap checks that the cap drops rather than grows, that dropped
// parents still leave a renderable forest, and that End on a dropped ID is
// harmless.
func TestTracerCap(t *testing.T) {
	tr := NewTracerCap(2)
	a := tr.Begin(-1, "a")
	b := tr.Begin(a, "b")
	c := tr.Begin(b, "c") // over cap
	if c != -1 {
		t.Fatalf("over-cap Begin = %d, want -1", c)
	}
	tr.Point(b, "d") // over cap too
	tr.End(c)
	tr.End(b)
	tr.End(a)
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("spans = %d, want 2", got)
	}
}

// TestOpenSpansRender checks that never-Ended spans still produce a tree
// (the slow-query dump captures mid-flight traces).
func TestOpenSpansRender(t *testing.T) {
	tr := NewTracer()
	root := tr.Begin(-1, "stream")
	tr.Begin(root, "chunk")
	roots := tr.Tree()
	if len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", roots)
	}
	if roots[0].DurUS < 0 || roots[0].Children[0].DurUS < 0 {
		t.Fatal("open span rendered with negative duration")
	}
}

// TestTracerConcurrent drives Begin/End/Point from several goroutines
// (the parallel engine paths share one tracer); -race is the real check.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracerCap(100_000)
	root := tr.Begin(-1, "parallel")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.Begin(root, "chunk")
				tr.Point(id, "join", AInt("worker", w))
				tr.End(id, AInt("i", i))
			}
		}(w)
	}
	wg.Wait()
	tr.End(root)
	if got := len(tr.Spans()); got != 1+4*500*2 {
		t.Fatalf("spans = %d, want %d", got, 1+4*500*2)
	}
	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != 4*500 {
		t.Fatalf("chunks = %d, want %d", got, 4*500)
	}
}

func TestContextTracer(t *testing.T) {
	if FromContext(context.Background()) != nil || FromContext(nil) != nil {
		t.Fatal("empty context must carry no tracer")
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context tracer not recovered")
	}
}
