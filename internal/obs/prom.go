package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders metrics in the Prometheus text exposition format
// (version 0.0.4) with the standard library only. The server composes
// families itself (one HELP/TYPE header, then one rendered series per
// label set); the helpers here handle the line grammar.

// WriteHeader writes a family's # HELP and # TYPE lines. typ is "counter",
// "gauge" or "histogram".
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample writes one sample line: name{labels} value. labels is a
// pre-rendered comma-joined label list ("" for none); values render in Go
// shortest-float form, which the Prometheus grammar accepts.
func WriteSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// WriteHistogram writes one histogram series — cumulative _bucket lines
// with le labels (ending in +Inf), then _sum and _count. scale divides the
// recorded integer values for rendering: 1e9 turns nanosecond recordings
// into seconds, 1000 turns per-mille recordings into ratios.
func WriteHistogram(w io.Writer, name, labels string, s HistogramSnapshot, scale float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatFloat(float64(b.Upper)/scale), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	WriteSample(w, name+"_sum", labels, float64(s.Sum)/scale)
	fmt.Fprintf(w, "%s_count", name)
	if labels != "" {
		fmt.Fprintf(w, "{%s}", labels)
	}
	fmt.Fprintf(w, " %d\n", s.Count)
}

// Label renders one label pair for a WriteSample/WriteHistogram labels
// list, escaping the value per the exposition grammar.
func Label(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"`)
	return b.String()
}

// Labels joins rendered label pairs.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
