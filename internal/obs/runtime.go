package obs

import (
	"runtime/metrics"
	"time"
)

// RuntimeHealth is a snapshot of the Go runtime signals worth watching on
// a serving process: scheduler pressure, heap footprint and GC cost.
type RuntimeHealth struct {
	Goroutines    int64         `json:"goroutines"`
	HeapBytes     uint64        `json:"heap_bytes"`
	GCCycles      uint64        `json:"gc_cycles"`
	GCPauseTotal  time.Duration `json:"gc_pause_total_ns"`
	GCPauseTotalS float64       `json:"gc_pause_total_seconds"`
}

// runtimeSamples are the runtime/metrics names ReadRuntimeHealth reads;
// declared once so the sample slice shape is fixed.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/cpu/classes/gc/pause:cpu-seconds",
}

// ReadRuntimeHealth samples the runtime. Metrics a future runtime no
// longer exports read as zero rather than failing.
func ReadRuntimeHealth() RuntimeHealth {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var h RuntimeHealth
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				h.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				h.HeapBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				h.GCCycles = s.Value.Uint64()
			}
		case "/cpu/classes/gc/pause:cpu-seconds":
			if s.Value.Kind() == metrics.KindFloat64 {
				h.GCPauseTotalS = s.Value.Float64()
				h.GCPauseTotal = time.Duration(s.Value.Float64() * float64(time.Second))
			}
		}
	}
	return h
}
