// Package obs is the engine's and server's observability toolkit: a
// lightweight span tracer with a zero-cost disabled default (trace.go),
// lock-free log-bucketed latency histograms with mergeable atomic counters
// and percentile extraction (histogram.go), Prometheus text exposition
// helpers (prom.go), and Go runtime health snapshots (runtime.go).
//
// The package depends only on the standard library and is imported by
// internal/engine, so it must never import any other internal package.
package obs

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a tracer's span buffer: a runaway enumeration
// keeps the trace (and the response carrying it) bounded instead of
// recording millions of node joins. Spans beyond the cap are counted in
// Dropped, not recorded.
const DefaultMaxSpans = 4096

// Attr is one key/value annotation on a span. Values are strings: traces
// are a reporting surface, not a data path, and string attrs render
// directly into JSON and text.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is the string attr constructor.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt is the integer attr constructor.
func AInt(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// ABool is the boolean attr constructor.
func ABool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// AFloat is the float attr constructor (shortest round-trip rendering).
func AFloat(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Span is one recorded operation: a named interval with a parent (-1 for
// roots), offsets from the tracer's start, and optional attrs. IDs are
// dense indices into the tracer's buffer, assigned in Begin order.
type Span struct {
	ID     int
	Parent int
	Name   string
	Start  time.Duration
	End    time.Duration // -1 while open
	Attrs  []Attr
}

// Tracer records spans from one logical execution (a request, a CLI run).
// A nil *Tracer is the disabled tracer: every method no-ops, Begin returns
// -1, and the instrumentation sites cost a nil check — the zero-allocation
// default the engine hot paths rely on.
//
// A Tracer is safe for concurrent use: the parallel execution paths hand
// one tracer to every worker.
type Tracer struct {
	mu      sync.Mutex
	t0      time.Time
	spans   []Span
	max     int
	dropped int
}

// NewTracer returns an enabled tracer with the default span cap.
func NewTracer() *Tracer { return NewTracerCap(DefaultMaxSpans) }

// NewTracerCap returns an enabled tracer recording at most max spans
// (values < 1 mean DefaultMaxSpans).
func NewTracerCap(max int) *Tracer {
	if max < 1 {
		max = DefaultMaxSpans
	}
	return &Tracer{t0: time.Now(), max: max}
}

// Begin opens a span under parent (-1 for a root) and returns its ID, or
// -1 when the tracer is nil or its buffer is full. The returned ID is
// always safe to pass to End.
func (t *Tracer) Begin(parent int, name string) int {
	if t == nil {
		return -1
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return -1
	}
	id := len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: now, End: -1})
	return id
}

// End closes the span, attaching attrs. It no-ops on a nil tracer or a
// dropped (-1) ID, so call sites never need to branch on Begin's result.
func (t *Tracer) End(id int, attrs ...Attr) {
	if t == nil || id < 0 {
		return
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= len(t.spans) {
		return
	}
	sp := &t.spans[id]
	if sp.End < 0 {
		sp.End = now
	}
	if len(attrs) > 0 {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
}

// Point records an instantaneous span (Begin and End at the same offset):
// the shape used for events with no meaningful duration, like node-join
// cache hits.
func (t *Tracer) Point(parent int, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, Span{ID: len(t.spans), Parent: parent, Name: name, Start: now, End: now, Attrs: attrs})
}

// Dropped reports how many spans the cap discarded.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the recorded spans in Begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// SpanTree is the reconstructed hierarchical form of a trace, the JSON
// shape returned by the server's "trace": true responses. Open spans
// (never Ended) report the tracer-relative capture time as their end.
type SpanTree struct {
	Name     string            `json:"name"`
	StartUS  float64           `json:"start_us"`
	DurUS    float64           `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanTree       `json:"children,omitempty"`
}

// Tree reconstructs the span forest: roots in Begin order, children nested
// under their parents. Spans whose parent was dropped by the cap surface
// as roots, so a truncated trace still renders.
func (t *Tracer) Tree() []*SpanTree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	now := time.Since(t.t0)
	t.mu.Unlock()

	nodes := make([]*SpanTree, len(spans))
	for i, sp := range spans {
		end := sp.End
		if end < 0 {
			end = now
		}
		n := &SpanTree{
			Name:    sp.Name,
			StartUS: float64(sp.Start) / float64(time.Microsecond),
			DurUS:   float64(end-sp.Start) / float64(time.Microsecond),
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[i] = n
	}
	var roots []*SpanTree
	for i, sp := range spans {
		if sp.Parent >= 0 && sp.Parent < len(nodes) && sp.Parent != i {
			p := nodes[sp.Parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// RenderTree renders a span forest as indented text, one span per line:
//
//	decide 1234.5us
//	  bind-epoch 1.2us epoch=3 rebound=false
//	  node-join 830.0us cache=miss est_rows=12 rows=9
//
// The format is what cmd/metaquery -trace prints and what the server's
// slow-query log embeds.
func RenderTree(roots []*SpanTree) string {
	var b strings.Builder
	var walk func(n *SpanTree, depth int)
	walk = func(n *SpanTree, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %.1fus", n.Name, n.DurUS)
		for _, k := range sortedKeys(n.Attrs) {
			fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// tracerKey is the context key for per-request tracer injection.
type tracerKey struct{}

// WithTracer returns a context carrying tr. The server threads per-request
// tracers this way (engine Options are part of the prepared-cache key and
// must not vary per request); the engine resolves the context tracer when
// Options.Tracer is unset.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// FromContext returns the tracer carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}
