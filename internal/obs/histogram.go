package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full uint64 range with the log-linear bucketing
// below: 8 exact buckets for values 0..7, then 4 sub-buckets per power of
// two from 2^3 up through 2^63.
const numBuckets = 8 + 4*60

// Histogram is a lock-free log-bucketed histogram of non-negative integer
// observations (the server records nanoseconds; the engine also records
// scaled ratios). Record is one atomic add on a fixed bucket — no locks,
// no allocation — so it is safe on hot paths and from any number of
// goroutines. Buckets are exact below 8 and then log-linear (4 linear
// sub-buckets per octave), bounding the relative quantile error at 25%.
//
// The zero value is an empty, ready-to-use histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket: values below 8 map exactly;
// larger values index by bit length (the octave) and the top two bits
// below the leading one (the linear sub-bucket).
func bucketIndex(v uint64) int {
	if v < 8 {
		return int(v)
	}
	n := bits.Len64(v) // >= 4
	idx := 8 + (n-4)*4 + int((v>>(uint(n)-3))&3)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// BucketUpper returns the exclusive upper bound of bucket i — the value
// Quantile reports for observations landing in it.
func BucketUpper(i int) uint64 {
	if i < 8 {
		return uint64(i + 1)
	}
	o := uint((i - 8) / 4)
	s := uint64((i-8)%4) + 1
	return (8 + 2*s) << o
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// RecordDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile returns the upper bound of the bucket containing the q-th
// observation (q in [0, 1]), i.e. an estimate U of the true quantile x
// with x ≤ U ≤ ceil(1.25·x). Zero observations return 0. Concurrent
// Records make the result approximate, never invalid.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(numBuckets - 1)
}

// QuantileSeconds is Quantile for nanosecond-recorded histograms, in
// seconds.
func (h *Histogram) QuantileSeconds(q float64) float64 {
	return float64(h.Quantile(q)) / float64(time.Second)
}

// Merge adds o's observations into h bucket-wise. Merging is associative
// and commutative (every field is a sum), so per-shard histograms combine
// in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations at values < Upper (and ≥ the previous bucket's Upper).
type Bucket struct {
	Upper uint64
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram: the non-empty
// buckets in ascending order plus the totals, the shape the Prometheus
// renderer and the stats endpoints consume.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets []Bucket
}

// Snapshot copies the histogram's non-empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Upper: BucketUpper(i), Count: n})
		}
	}
	return s
}
