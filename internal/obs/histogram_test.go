package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks the bucketing invariants across the whole
// range: indices are monotone in the value, every value lies strictly
// below its bucket's upper bound and at or above the previous bucket's.
func TestBucketRoundTrip(t *testing.T) {
	prev := 0
	for _, v := range []uint64{0, 1, 2, 7, 8, 9, 10, 15, 16, 19, 20, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := BucketUpper(i); v >= up {
			t.Errorf("value %d >= upper bound %d of its bucket %d", v, up, i)
		}
		if i > 0 {
			if lo := BucketUpper(i - 1); v < lo {
				t.Errorf("value %d < lower bound %d of its bucket %d", v, lo, i)
			}
		}
	}
}

// TestQuantileErrorBound is the property test: for random value sets, the
// reported quantile must bracket the true order statistic within the
// log-bucketing's error bound U ∈ [x, 1.25·x + 1].
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		vals := make([]uint64, n)
		var h Histogram
		for i := range vals {
			// Mix scales: exact small values, mid-range, and heavy tail.
			switch rng.Intn(3) {
			case 0:
				vals[i] = uint64(rng.Intn(8))
			case 1:
				vals[i] = uint64(rng.Intn(100_000))
			default:
				vals[i] = uint64(rng.Int63n(int64(10 * time.Second)))
			}
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
			// The q-th observation per Quantile's contract: rank ceil(q·n),
			// 1-indexed, floored at 1.
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			truth := vals[rank-1]
			got := h.Quantile(q)
			if got < truth {
				t.Fatalf("trial %d q=%.2f: quantile %d below true value %d", trial, q, got, truth)
			}
			if limit := truth + truth/4 + 1; got > limit {
				t.Fatalf("trial %d q=%.2f: quantile %d above error bound %d (true %d)", trial, q, got, limit, truth)
			}
		}
		if h.Count() != uint64(n) {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many
// goroutines; run under -race this is the lock-freedom check, and the
// totals must come out exact regardless.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(uint64(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var buckets uint64
	for _, b := range h.Snapshot().Buckets {
		buckets += b.Count
	}
	if buckets != workers*per {
		t.Fatalf("bucket total = %d, want %d", buckets, workers*per)
	}
}

// TestMergeAssociativity checks (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c) via snapshot
// equality, plus commutativity and the nil no-op.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fill := func(n int) *Histogram {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Record(uint64(rng.Int63n(1 << 30)))
		}
		return h
	}
	a, b, c := fill(100), fill(57), fill(233)

	left := &Histogram{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := &Histogram{}
	bc.Merge(b)
	bc.Merge(c)
	right := &Histogram{}
	right.Merge(a)
	right.Merge(bc)

	snapEqual := func(x, y HistogramSnapshot) bool {
		if x.Count != y.Count || x.Sum != y.Sum || len(x.Buckets) != len(y.Buckets) {
			return false
		}
		for i := range x.Buckets {
			if x.Buckets[i] != y.Buckets[i] {
				return false
			}
		}
		return true
	}
	if !snapEqual(left.Snapshot(), right.Snapshot()) {
		t.Fatal("merge is not associative")
	}
	comm := &Histogram{}
	comm.Merge(c)
	comm.Merge(b)
	comm.Merge(a)
	if !snapEqual(left.Snapshot(), comm.Snapshot()) {
		t.Fatal("merge is not commutative")
	}
	before := left.Snapshot()
	left.Merge(nil)
	if !snapEqual(before, left.Snapshot()) {
		t.Fatal("nil merge changed the histogram")
	}
}

func TestRecordDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(-time.Second) // clamps to 0
	h.RecordDuration(time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.QuantileSeconds(1); got < 0.001 || got > 0.00126 {
		t.Fatalf("p100 = %gs, want ~1ms within bucket error", got)
	}
	if h.Quantile(0) != 1 { // the clamped 0 lands in bucket [0,1)
		t.Fatalf("p0 = %d, want 1", h.Quantile(0))
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if s := h.Snapshot(); len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot has %d buckets", len(s.Buckets))
	}
}

// TestWriteHistogramProm checks the rendered exposition: cumulative
// buckets, +Inf, sum/count, and the label path.
func TestWriteHistogramProm(t *testing.T) {
	var h Histogram
	h.Record(3)
	h.Record(3)
	h.Record(100)
	var b strings.Builder
	WriteHeader(&b, "x_seconds", "node-join wall time", "histogram")
	WriteHistogram(&b, "x_seconds", Labels(Label("db", "d1")), h.Snapshot(), 1)
	out := b.String()
	for _, want := range []string{
		"# HELP x_seconds node-join wall time\n# TYPE x_seconds histogram\n",
		`x_seconds_bucket{db="d1",le="4"} 2`,
		`x_seconds_bucket{db="d1",le="+Inf"} 3`,
		`x_seconds_sum{db="d1"} 106`,
		`x_seconds_count{db="d1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	var nb strings.Builder
	WriteHistogram(&nb, "y", "", h.Snapshot(), 1)
	if !strings.Contains(nb.String(), `y_bucket{le="+Inf"} 3`) || !strings.Contains(nb.String(), "y_count 3") {
		t.Errorf("unlabeled exposition wrong:\n%s", nb.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := Label("db", "a\"b\\c\nd"); got != `db="a\"b\\c\nd"` {
		t.Fatalf("Label escaping = %s", got)
	}
}

func TestReadRuntimeHealth(t *testing.T) {
	h := ReadRuntimeHealth()
	if h.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", h.Goroutines)
	}
	if h.HeapBytes == 0 {
		t.Error("heap bytes = 0")
	}
}
