package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// runE27 is the tracing-overhead ablation: the same two warm workloads —
// the prepared FindRules reuse loop of BenchmarkPreparedReuse and a scaled
// E26-style approximate decide — measured with the tracer disabled (the
// nil default every untraced caller gets) and enabled (a fresh Tracer per
// run via WithTracer, the per-request shape the server uses).
//
// The reproduction check is the zero-cost-when-off contract: the disabled
// runs must stay at the instrumentation-free baseline (the prepared
// FindRules loop holds ~300 allocs/op; anything past 400 means the nil
// path started allocating), and an enabled run must actually produce a
// span tree. Enabled overhead is reported, not gated — it buys the trace.
func runE27(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E27", Title: "Tracing overhead ablation: disabled vs enabled tracer on prepared FindRules and approx decide",
		Header: []string{"workload", "tracer", "allocs/op", "wall/op", "spans"}}

	type load struct {
		name     string
		run      func(ctx context.Context) error
		allocCap float64 // disabled-path gate
		reps     int     // AllocsPerRun + wall iterations
	}
	var loads []load

	// Workload 1: BenchmarkPreparedReuse/prepared — N executions of one
	// warm Prepared, the steady state the pooled scratch keeps flat.
	{
		db := workload.ChainDB(3, 25, 100, 5)
		prep, err := engine.NewEngine(db).Prepare(workload.ChainMQ(3), engine.Options{
			Type: core.Type0, Thresholds: core.AllAbove(rat.New(1, 10), rat.Zero, rat.Zero),
		})
		if err != nil {
			return nil, err
		}
		reps := 50
		if quick {
			reps = 15
		}
		loads = append(loads, load{
			name: "findrules-prepared",
			run: func(ctx context.Context) error {
				_, err := prep.FindRules(ctx)
				return err
			},
			allocCap: 400, reps: reps,
		})
	}

	// Workload 2: the E26 decide shape scaled down — cnf = 1/5 everywhere,
	// so the sampler settles every pair without escalating and the traced
	// run emits one sample span per candidate pair.
	{
		rowsPer := 10_000
		if quick {
			rowsPer = 2_000
		}
		const headVals = 29
		db := relation.NewDatabase()
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("p%d", i)
			for j := 0; j < rowsPer; j++ {
				v := fmt.Sprintf("z%d-%d", i, j)
				if j%5 == 0 {
					v = fmt.Sprintf("v%d", j%headVals)
				}
				db.MustInsertNamed(name, fmt.Sprintf("p%dx%d", i, j), v)
			}
			hname := fmt.Sprintf("h%d", i)
			for k := 0; k < headVals; k++ {
				db.MustInsertNamed(hname, fmt.Sprintf("v%d", k))
			}
		}
		prep, err := engine.NewEngine(db).Prepare(core.MustParse("R(Y) <- P(X,Y)"), engine.Options{
			Type:   core.Type0,
			Approx: engine.ApproxOptions{Epsilon: 0.1, Delta: 0.05},
		})
		if err != nil {
			return nil, err
		}
		reps := 20
		if quick {
			reps = 8
		}
		loads = append(loads, load{
			name: "decide-approx",
			run: func(ctx context.Context) error {
				_, _, _, err := prep.DecideApproxStats(ctx, core.Cnf, rat.New(1, 2))
				return err
			},
			allocCap: 2_000, reps: reps,
		})
	}

	pass := true
	for _, l := range loads {
		// Warm pass fills the node-join cache so both modes measure the
		// steady state, and proves the traced run yields a span tree.
		warm := obs.NewTracer()
		if err := l.run(obs.WithTracer(ctx, warm)); err != nil {
			return nil, err
		}
		if len(warm.Tree()) == 0 {
			pass = false
			res.Notef("%s: traced run produced no spans", l.name)
		}

		measure := func(traced bool) (float64, time.Duration, int, error) {
			var runErr error
			var spans int
			body := func() {
				c := ctx
				if traced {
					tr := obs.NewTracer()
					c = obs.WithTracer(ctx, tr)
					defer func() { spans = countSpans(tr.Tree()) }()
				}
				if err := l.run(c); err != nil && runErr == nil {
					runErr = err
				}
			}
			allocs := testing.AllocsPerRun(l.reps, body)
			if runErr != nil {
				return 0, 0, 0, runErr
			}
			wall, err := timeIt(func() error {
				for i := 0; i < l.reps; i++ {
					body()
				}
				return runErr
			})
			return allocs, wall / time.Duration(l.reps), spans, err
		}

		offAllocs, offWall, _, err := measure(false)
		if err != nil {
			return nil, err
		}
		onAllocs, onWall, spans, err := measure(true)
		if err != nil {
			return nil, err
		}

		if offAllocs > l.allocCap {
			pass = false
			res.Notef("%s: disabled tracer costs %.0f allocs/op, want <= %.0f (nil path must stay allocation-free)",
				l.name, offAllocs, l.allocCap)
		}
		res.AddRow(l.name, "disabled", fmt.Sprintf("%.0f", offAllocs), fmtDur(offWall), "0")
		res.AddRow(l.name, "enabled", fmt.Sprintf("%.0f", onAllocs), fmtDur(onWall), fmt.Sprint(spans))
		res.Notef("%s: enabled tracer costs %+.0f allocs/op and %.2fx wall for %d spans",
			l.name, onAllocs-offAllocs, float64(onWall)/float64(offWall), spans)
	}

	res.Notef("disabled = the nil-tracer default of untraced callers; enabled = fresh Tracer per run via WithTracer (per-request server shape)")
	res.Notef("pass = disabled runs at the instrumentation-free baseline and traced runs produce a span tree; enabled overhead is informational")
	res.Pass = pass
	return res, nil
}

// countSpans counts the nodes of a span forest.
func countSpans(roots []*obs.SpanTree) int {
	n := 0
	for _, r := range roots {
		n += 1 + countSpans(r.Children)
	}
	return n
}
