package experiments

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/workload"
)

// runE21 benchmarks the decision-vs-enumeration split: for each index and
// for a YES bound (k = 0) and a certain-NO bound (k = 1, strict comparison
// can never exceed it), it answers the decision problem both through the
// dedicated first-witness path (Prepared.DecideFirst) and through the
// deprecated idiom of a full findRules search with Limit 1, recording wall
// time and search effort for each verdict separately. The reproduction
// check is that the two paths agree on every verdict; the recorded
// counters document the ROADMAP "decider asymmetry" fix — a NO verdict no
// longer pays the full materialize-then-filter cost.
func runE21(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E21", Title: "Decision vs. enumeration: first-witness path against FindRules Limit 1",
		Header: []string{"index", "k", "verdict", "first-witness", "bodies/heads/skip", "limit-1", "bodies/heads"}}

	tuples := 100
	if quick {
		tuples = 40
	}
	db := workload.ChainDB(3, 25, tuples, 5)
	mq := workload.ChainMQ(3)

	eng := engine.NewEngine(db)
	prep, err := eng.Prepare(mq, engine.Options{Type: core.Type0})
	if err != nil {
		return nil, err
	}

	pass := true
	for _, ix := range core.AllIndices {
		for _, k := range []rat.Rat{rat.Zero, rat.New(1, 1)} {
			var (
				firstYes   bool
				firstStats *engine.Stats
			)
			firstWall, err := timeIt(func() error {
				var derr error
				firstYes, _, firstStats, derr = prep.DecideFirstStats(ctx, ix, k)
				return derr
			})
			if err != nil {
				return nil, err
			}

			// The deprecated idiom: a fresh Prepared with the single-index
			// thresholds and Limit 1, fully enumerating heads and indices.
			limPrep, err := eng.Prepare(mq, engine.Options{
				Type: core.Type0, Thresholds: core.SingleIndex(ix, k), Limit: 1})
			if err != nil {
				return nil, err
			}
			var (
				limAnswers []core.Answer
				limStats   *engine.Stats
			)
			limWall, err := timeIt(func() error {
				var lerr error
				limAnswers, limStats, lerr = limPrep.FindRulesStats(ctx)
				return lerr
			})
			if err != nil {
				return nil, err
			}
			limYes := len(limAnswers) > 0

			ok := firstYes == limYes
			pass = pass && ok
			verdict := map[bool]string{true: "YES", false: "NO"}[firstYes]
			if !ok {
				verdict = fmt.Sprintf("SPLIT first=%v limit1=%v", firstYes, limYes)
			}
			res.AddRow(ix.String(), k.String(), verdict,
				fmtDur(firstWall),
				fmt.Sprintf("%d/%d/%d", firstStats.BodiesReachedRoot, firstStats.HeadsTried, firstStats.HeadsSkipped),
				fmtDur(limWall),
				fmt.Sprintf("%d/%d", limStats.BodiesReachedRoot, limStats.HeadsTried))
		}
	}
	res.Notef("k=1 rows are certain NO (indices never exceed 1); they isolate the full-search cost the first-witness path avoids")
	res.Notef("bodies = complete body instantiations, heads = head candidates evaluated, skip = witnesses accepted without head evaluation")
	res.Pass = pass
	return res, nil
}
