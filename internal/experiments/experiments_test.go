package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run in quick mode and pass its reproduction check.
func TestAllExperimentsPassQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, true)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !res.Pass {
				t.Errorf("%s failed:\n%s", id, res)
			}
			if res.Title == "" || len(res.Header) == 0 {
				t.Errorf("%s: missing title or header", id)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("E999", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestResultRendering(t *testing.T) {
	res := &Result{ID: "X", Title: "demo", Header: []string{"a", "b"}, Pass: true}
	res.AddRow("1", "2")
	res.Notef("note %d", 7)
	s := res.String()
	for _, want := range []string{"== X: demo ==", "a", "1", "note: note 7", "PASS"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered result missing %q:\n%s", want, s)
		}
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 27 {
		t.Fatalf("%d experiments registered, want 27", len(ids))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E27" {
		t.Errorf("order: %v", ids)
	}
}
