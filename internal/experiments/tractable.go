package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/mqgo/metaquery/internal/circuit"
	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/reductions"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// runE8 reproduces Theorem 3.32 / Figure 5 row 4: acyclic type-0 k=0
// metaquerying reduces to acyclic BCQ over DDB; the semijoin evaluation
// scales polynomially with the database while agreeing with the direct
// engine.
func runE8(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E8", Title: "Thm 3.32 / Fig.5 row 4: acyclic type-0 via acyclic BCQ on DDB",
		Header: []string{"|DB| tuples/rel", "direct", "reduction", "agree", "reduction time"}}
	mq := core.MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	if !mq.IsAcyclic() {
		return nil, fmt.Errorf("E8: metaquery should be acyclic")
	}
	sizes := []int{50, 100, 200, 400}
	if quick {
		sizes = []int{20, 40}
	}
	pass := true
	var times []time.Duration
	for _, n := range sizes {
		db := workload.Random{Relations: 3, Arity: 2, Tuples: n, Domain: n / 2, Seed: int64(n)}.Build()
		want, _, err := core.DecideContext(ctx, db, mq, core.Cnf, rat.Zero, core.Type0)
		if err != nil {
			return nil, err
		}
		red, err := reductions.BuildAcyclicCQ(db, mq, core.Cnf)
		if err != nil {
			return nil, err
		}
		var got bool
		dur, err := timeIt(func() error {
			var derr error
			got, derr = red.Decide()
			return derr
		})
		if err != nil {
			return nil, err
		}
		times = append(times, dur)
		agree := got == want
		pass = pass && agree
		res.AddRow(fmt.Sprint(n), fmt.Sprint(want), fmt.Sprint(got), boolMark(agree), fmtDur(dur))
	}
	if len(times) >= 2 && times[0] > 0 {
		growth := float64(times[len(times)-1]) / float64(times[0])
		sizeGrowth := float64(sizes[len(sizes)-1]) / float64(sizes[0])
		res.Notef("time growth %.1fx over a %.0fx database growth (polynomial shape; LOGCFL ⊆ P)", growth, sizeGrowth)
	}
	res.Pass = pass
	return res, nil
}

// runE13 reproduces Theorem 3.37 / Figure 5 row 10: the constructed AC0
// circuit family matches the engine and keeps constant depth / polynomial
// size as the domain grows.
func runE13(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E13", Title: "Thm 3.37 / Fig.5 row 10: AC0 circuits for k = 0",
		Header: []string{"domain", "depth", "gates", "inputs", "agreement (25 random DBs)"}}
	schema := circuit.Schema{{Name: "p", Arity: 2}, {Name: "q", Arity: 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	domains := []int{2, 3, 4, 5}
	trials := 25
	if quick {
		domains = []int{2, 3}
		trials = 8
	}
	pass := true
	prevDepth := -1
	for _, d := range domains {
		circ, err := circuit.BuildExistsMQ(schema, d, mq, core.Cnf, core.Type0)
		if err != nil {
			return nil, err
		}
		agree := 0
		for seed := 0; seed < trials; seed++ {
			db := randomSchemaDB(int64(seed), d, 5)
			asn, err := circuit.Assignment(db, d)
			if err != nil {
				return nil, err
			}
			got := circ.Eval(asn) != 0
			want, _, err := core.DecideContext(ctx, db, mq, core.Cnf, rat.Zero, core.Type0)
			if err != nil {
				return nil, err
			}
			if got == want {
				agree++
			}
		}
		ok := agree == trials && (prevDepth < 0 || circ.Depth() == prevDepth)
		pass = pass && ok
		prevDepth = circ.Depth()
		res.AddRow(fmt.Sprint(d), fmt.Sprint(circ.Depth()), fmt.Sprint(circ.Size()),
			fmt.Sprint(circ.NumInputs()), fmt.Sprintf("%d/%d", agree, trials))
	}
	res.Notef("depth constant, size polynomial in the domain: the AC0 family shape of Theorem 3.37")
	res.Pass = pass
	return res, nil
}

// runE14 reproduces Theorem 3.38 / Figure 5 row 11: the TC0-style counting
// circuits for k > 0.
func runE14(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E14", Title: "Thm 3.38 / Fig.5 row 11: TC0 counting circuits for k > 0",
		Header: []string{"index", "domain", "depth", "gates", "agreement (20 random DBs)"}}
	schema := circuit.Schema{{Name: "p", Arity: 2}, {Name: "q", Arity: 2}}
	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	k := rat.New(1, 2)
	domains := []int{2, 3, 4}
	trials := 20
	if quick {
		domains = []int{2, 3}
		trials = 6
	}
	pass := true
	for _, ix := range core.AllIndices {
		prevDepth := -1
		for _, d := range domains {
			circ, err := circuit.BuildThresholdMQ(schema, d, mq, ix, k, core.Type0)
			if err != nil {
				return nil, err
			}
			agree := 0
			for seed := 0; seed < trials; seed++ {
				db := randomSchemaDB(int64(seed)*13+1, d, 5)
				asn, err := circuit.Assignment(db, d)
				if err != nil {
					return nil, err
				}
				got := circ.Eval(asn) != 0
				want, _, err := core.DecideContext(ctx, db, mq, ix, k, core.Type0)
				if err != nil {
					return nil, err
				}
				if got == want {
					agree++
				}
			}
			ok := agree == trials && (prevDepth < 0 || circ.Depth() == prevDepth)
			pass = pass && ok
			prevDepth = circ.Depth()
			res.AddRow(ix.String(), fmt.Sprint(d), fmt.Sprint(circ.Depth()),
				fmt.Sprint(circ.Size()), fmt.Sprintf("%d/%d", agree, trials))
		}
	}
	res.Notef("comparator over counting subcircuits realizes b·|Qn| > a·|Qd| (Lemma 3.39)")
	res.Pass = pass
	return res, nil
}

// runE17 reproduces Theorem 4.12: computing sup(r) scales as d^c (up to the
// log factor) where c is the hypertree width of the body. The fitted
// exponent of the time curve grows with the width.
func runE17(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E17", Title: "Thm 4.12: sup(r) in d^c log d for hypertree width c",
		Header: []string{"width c", "d", "sup (Thm 4.12 algo)", "agrees with naive", "fitted exponent"}}
	sizes := []int{300, 600, 1200, 2400}
	if quick {
		sizes = []int{150, 300}
	}
	pass := true
	for c := 1; c <= 2; c++ {
		var times []float64
		for _, d := range sizes {
			db, rule := workload.WidthWorkload(c, d, int(math.Sqrt(float64(d))*3), int64(c*1000+d))
			// Warm-up run to stabilize allocator effects.
			if _, err := engine.SupportOfRule(db, rule); err != nil {
				return nil, err
			}
			var fast rat.Rat
			dur, err := timeIt(func() error {
				var serr error
				fast, serr = engine.SupportOfRule(db, rule)
				return serr
			})
			if err != nil {
				return nil, err
			}
			slow, err := core.Support(db, rule)
			if err != nil {
				return nil, err
			}
			agree := fast.Equal(slow)
			pass = pass && agree
			times = append(times, float64(dur))
			res.AddRow(fmt.Sprint(c), fmt.Sprint(d), fmtDur(dur), boolMark(agree), "")
		}
		exp := fitExponent(sizes, times)
		res.Rows[len(res.Rows)-1][4] = fmt.Sprintf("%.2f", exp)
		// With >= 3 sizes the fitted exponent must respect the d^c log d
		// shape (log factors and constant overheads allowed). Quick runs
		// with 2 points are smoke tests only.
		if len(sizes) >= 3 && exp > float64(c)+1.5 {
			pass = false
			res.Notef("width %d exponent %.2f exceeds d^%d log d shape", c, exp, c)
		}
	}
	res.Notef("exponent fitted from log-log regression of the Theorem 4.12 support algorithm's time vs d")
	res.Pass = pass
	return res, nil
}

// fitExponent performs log-log least squares of times against sizes.
func fitExponent(sizes []int, times []float64) float64 {
	n := float64(len(sizes))
	var sx, sy, sxx, sxy float64
	for i := range sizes {
		x := math.Log(float64(sizes[i]))
		y := math.Log(times[i] + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// runE18 reproduces Figure 4: findRules equals the naive engine and the
// support-pruning semijoin machinery pays off on selective workloads.
func runE18(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E18", Title: "Figure 4: findRules vs naive enumeration",
		Header: []string{"workload", "answers", "naive time", "findRules time", "speedup", "equal"}}
	sizes := []int{60, 120}
	if quick {
		sizes = []int{30}
	}
	pass := true
	for _, n := range sizes {
		db := workload.Random{Relations: 3, Arity: 2, Tuples: n, Domain: 12, Seed: int64(n)}.Build()
		mq := workload.ChainMQ(2)
		th := core.AllAbove(rat.New(1, 10), rat.Zero, rat.Zero)
		var naive []core.Answer
		naiveDur, err := timeIt(func() error {
			var nerr error
			naive, nerr = core.NaiveAnswersContext(ctx, db, mq, core.Type0, th)
			return nerr
		})
		if err != nil {
			return nil, err
		}
		var fast []core.Answer
		fastDur, err := timeIt(func() error {
			var ferr error
			fast, _, ferr = engine.FindRulesContext(ctx, db, mq, engine.Options{Type: core.Type0, Thresholds: th})
			return ferr
		})
		if err != nil {
			return nil, err
		}
		equal := len(fast) == len(naive)
		for i := range fast {
			if !equal {
				break
			}
			if fast[i].Rule.String() != naive[i].Rule.String() ||
				!fast[i].Sup.Equal(naive[i].Sup) || !fast[i].Cnf.Equal(naive[i].Cnf) || !fast[i].Cvr.Equal(naive[i].Cvr) {
				equal = false
			}
		}
		pass = pass && equal
		speedup := "n/a"
		if fastDur > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(naiveDur)/float64(fastDur))
		}
		res.AddRow(fmt.Sprintf("chain m=2, %d tuples/rel", n), fmt.Sprint(len(fast)),
			fmtDur(naiveDur), fmtDur(fastDur), speedup, boolMark(equal))
	}
	res.Pass = pass
	return res, nil
}

// runE19 reproduces the closing analysis of Section 4: instantiation-space
// sizes n^m' for types 0/1 and the larger type-2 space.
func runE19(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E19", Title: "§4 closing analysis: instantiation-space growth",
		Header: []string{"relations n", "patterns m", "type-0", "type-1", "type-2"}}
	mqByM := map[int]*core.Metaquery{
		2: workload.MQ4(),
		3: core.MustParse("R(X,W) <- P(X,Y), Q(Y,Z), S(Z,W)"),
	}
	pass := true
	for _, nRel := range []int{2, 3} {
		for _, m := range []int{2, 3} {
			db := workload.Random{Relations: nRel, Arity: 2, Tuples: 3, Domain: 4, Seed: 1}.Build()
			mq := mqByM[m]
			counts := map[core.InstType]int{}
			for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
				c, err := core.CountInstantiations(db, mq, typ)
				if err != nil {
					return nil, err
				}
				counts[typ] = c
			}
			// Expected: type-0 = n^(m+1) (head too), type-1 = (2n)^(m+1)
			// for binary patterns over binary relations; type-2 equals
			// type-1 here because all arities coincide.
			want0 := pow(nRel, m+1)
			want1 := pow(2*nRel, m+1)
			ok := counts[core.Type0] == want0 && counts[core.Type1] == want1 && counts[core.Type2] == want1
			pass = pass && ok
			res.AddRow(fmt.Sprint(nRel), fmt.Sprint(m),
				fmt.Sprintf("%d (want %d)", counts[core.Type0], want0),
				fmt.Sprintf("%d (want %d)", counts[core.Type1], want1),
				fmt.Sprint(counts[core.Type2]))
		}
	}
	res.Notef("binary patterns over n binary relations: n per pattern (type-0), 2n with permutations (types 1-2)")
	res.Pass = pass
	return res, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// runE20 documents the two Figure 5 rows marked Open (acyclic, k > 0,
// type-0 for cvr/sup; acyclic cnf): the paper leaves their exact complexity
// open; we measure our engine's behavior on them without claiming a bound.
func runE20(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E20", Title: "Fig.5 rows 6/8 (Open): acyclic type-0 thresholds, measured only",
		Header: []string{"index", "|DB| tuples/rel", "time", "answers"}}
	sizes := []int{50, 100, 200}
	if quick {
		sizes = []int{25, 50}
	}
	mq := core.MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	for _, ix := range []core.Index{core.Sup, core.Cvr, core.Cnf} {
		for _, n := range sizes {
			db := workload.Random{Relations: 3, Arity: 2, Tuples: n, Domain: n / 3, Seed: int64(n)}.Build()
			var count int
			dur, err := timeIt(func() error {
				answers, _, ferr := engine.FindRulesContext(ctx, db, mq, engine.Options{
					Type:       core.Type0,
					Thresholds: core.SingleIndex(ix, rat.New(1, 4)),
				})
				count = len(answers)
				return ferr
			})
			if err != nil {
				return nil, err
			}
			res.AddRow(ix.String(), fmt.Sprint(n), fmtDur(dur), fmt.Sprint(count))
		}
	}
	res.Notef("the paper leaves the combined complexity of these rows open; these timings are observations, not bounds")
	res.Pass = true
	return res, nil
}

// randomSchemaDB builds a database over relations {p, q} (binary) with
// constants "0".."d-1" interned in order, so dictionary indices equal
// domain elements as the circuit encoding requires.
func randomSchemaDB(seed int64, d, maxTuples int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	for i := 0; i < d; i++ {
		db.Dict().Intern(fmt.Sprint(i))
	}
	for _, name := range []string{"p", "q"} {
		db.MustAddRelation(name, 2)
		for i := 0; i < rng.Intn(maxTuples+1); i++ {
			db.MustInsertNamed(name, fmt.Sprint(rng.Intn(d)), fmt.Sprint(rng.Intn(d)))
		}
	}
	return db
}
