package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/stats"
)

// runE22 benchmarks the cost-based join planner against the size-blind
// shape-greedy baseline on a skewed/uniform workload pair. The databases
// come from one gen.DBConfig differing only in the Skew knob: the skewed
// one concentrates heavy-hitter values in a different column per relation
// (gen.DBConfig.SkewCols — here column 1 of r0/r2, column 0 of r1), the
// regime where cardinality ranking and selectivity ranking diverge:
// single-column skew barely changes relation sizes under set semantics,
// so the relations look interchangeable to size- and shape-based
// ordering, while a join pairing two skewed columns on one variable
// explodes — exactly what the per-column distinct counts reveal and the
// cost-based order avoids.
//
// The measured path is core.Evaluator.Indices over every type-0
// instantiation of a 3-pattern chain metaquery: unlike the engine's
// hypertree search, these body joins are not semijoin-reduced first
// (Yannakakis reduction largely neutralizes join order), so the evaluator
// layer is where plan quality shows. Both evaluators share nothing; each
// is warmed over the full rule set once, so the timed second pass
// compares steady-state join execution (compiled plans, cached atom
// tables), not cache fills. The reproduction check is exact index
// equality between the planners on every rule; the recorded wall/alloc
// columns document the skew win.
func runE22(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E22", Title: "Cost-based vs. greedy join ordering on skewed and uniform workloads",
		Header: []string{"workload", "planner", "wall", "allocs", "alloc-bytes", "rules"}}

	tuples := 600
	if quick {
		tuples = 250
	}
	base := gen.DBConfig{
		Relations: 3, MinArity: 2, MaxArity: 2,
		MinTuples: tuples, MaxTuples: tuples,
		Domain: 600, SkewCols: []int{1, 0, 1},
	}
	mqCfg := gen.MQConfig{BodyPatterns: 3, PatternArity: 2}

	type measured struct {
		indices [][3]string
		wall    time.Duration
		allocs  uint64
		bytes   uint64
	}
	pass := true
	var skewCost, skewGreedy *measured

	for _, w := range []struct {
		name string
		skew float64
	}{
		{"skewed", 10},
		{"uniform", 0},
	} {
		cfg := base
		cfg.Skew = w.skew
		rng := rand.New(rand.NewSource(22))
		db := cfg.Generate(rng)
		mq, err := mqCfg.Generate(rng, db)
		if err != nil {
			return nil, err
		}
		st := stats.Collect(db)

		var runs [2]*measured
		for i, p := range []struct {
			name string
			ev   *core.Evaluator
		}{
			{"cost", core.NewEvaluatorStats(db, st)},
			{"greedy", core.NewEvaluator(db)},
		} {
			evalAll := func() (*measured, error) {
				m := &measured{}
				err := core.ForEachInstantiationContext(ctx, db, mq, core.Type0, func(inst *core.Instantiation) (bool, error) {
					rule, err := inst.Apply(mq)
					if err != nil {
						return false, err
					}
					sup, cnf, cvr, err := p.ev.Indices(rule)
					if err != nil {
						return false, err
					}
					m.indices = append(m.indices, [3]string{sup.String(), cnf.String(), cvr.String()})
					return true, nil
				})
				return m, err
			}
			// Warm pass: fills the evaluator's atom tables and compiled
			// plans, so the timed pass measures join execution only.
			if _, err := evalAll(); err != nil {
				return nil, err
			}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			m, err := evalAll()
			m.wall = time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, err
			}
			m.allocs = after.Mallocs - before.Mallocs
			m.bytes = after.TotalAlloc - before.TotalAlloc
			runs[i] = m
			res.AddRow(w.name, p.name, fmtDur(m.wall), fmt.Sprint(m.allocs),
				fmt.Sprint(m.bytes), fmt.Sprint(len(m.indices)))
		}

		if !sameIndices(runs[0].indices, runs[1].indices) {
			pass = false
			res.Notef("%s: cost-based and greedy planners disagree on index values", w.name)
		}
		if w.name == "skewed" {
			skewCost, skewGreedy = runs[0], runs[1]
		}
	}
	if skewCost != nil && skewGreedy != nil {
		res.Notef("skewed: cost-based %.2fx wall, %.2fx allocs, %.2fx alloc-bytes of greedy (lower is better)",
			float64(skewCost.wall)/float64(skewGreedy.wall),
			float64(skewCost.allocs)/float64(skewGreedy.allocs),
			float64(skewCost.bytes)/float64(skewGreedy.bytes))
	}
	res.Notef("measured path: core.Evaluator.Indices (unreduced body joins) over every type-0 rule; evaluators warmed once before timing")
	res.Pass = pass
	return res, nil
}

// sameIndices compares the per-rule exact index triples of two runs.
func sameIndices(a, b [][3]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
