// Package experiments implements the per-experiment harness of DESIGN.md:
// one runnable experiment per paper artifact (worked examples, Figure 5
// complexity rows, Section 4 algorithm bounds). Each experiment returns a
// table in the shape the paper reports plus a pass/fail verdict of the
// reproduction check; cmd/mqbench prints them and EXPERIMENTS.md records
// the outcomes.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is the outcome of one experiment.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Pass   bool
}

// AddRow appends a table row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	fmt.Fprintf(&b, "verdict: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[r.Pass])
	return b.String()
}

// Runner is an experiment implementation. quick trims instance sizes for
// benchmark-time runs; ctx bounds the engine and decision searches the
// experiment performs.
type Runner func(ctx context.Context, quick bool) (*Result, error)

var registry = map[string]Runner{
	"E1":  runE1,
	"E2":  runE2,
	"E3":  runE3,
	"E4":  runE4,
	"E5":  runE5,
	"E6":  runE6,
	"E7":  runE7,
	"E8":  runE8,
	"E9":  runE9,
	"E10": runE10,
	"E11": runE11,
	"E12": runE12,
	"E13": runE13,
	"E14": runE14,
	"E15": runE15,
	"E16": runE16,
	"E17": runE17,
	"E18": runE18,
	"E19": runE19,
	"E20": runE20,
	"E21": runE21,
	"E22": runE22,
	"E23": runE23,
	"E24": runE24,
	"E25": runE25,
	"E26": runE26,
	"E27": runE27,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, quick bool) (*Result, error) {
	return RunContext(context.Background(), id, quick)
}

// RunContext is Run bounded by ctx: the experiment's searches stop with
// ctx.Err() when ctx is cancelled or its deadline passes.
func RunContext(ctx context.Context, id string, quick bool) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(ctx, quick)
}

// timeIt measures fn's wall-clock duration.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

func boolMark(b bool) string {
	if b {
		return "ok"
	}
	return "MISMATCH"
}
