package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// runE26 measures the ε–δ approximate decision path against the exact
// first-witness search on the workload sampling is built for: a 100k+-tuple
// database whose cnf decisions are NO-heavy. Four 25k-row binary relations
// instantiate the body of R(Y) <- P(X,Y) and six unary relations
// instantiate the head; exactly one body row in five carries a head value,
// so every (body, head) pair has confidence 1/5. A NO decision at k = 1/2
// or k = 3/4 therefore forces the exact engine to disprove all 24 pairs by
// scanning their 25k-row populations, while the sampler settles each pair
// after a few dozen draws (p̂ = 0.2 sits far outside the ε-band around k).
// The YES row at k = 1/10 checks the other regime: the sampler finds an
// Above verdict quickly and the exact confirmation of that single pair is
// all the full-scan work the approximate path ever pays.
//
// The reproduction check: every approximate verdict must equal the exact
// one (YES verdicts are exactly confirmed by construction, and 1/5 is far
// outside the ε-band around every k here, so NO verdicts carry no real δ
// risk), no pair may escalate, and the approximate path must be at least
// 2x faster than the exact one on both NO rows. Both legs run on the same
// Prepared after a warm pass, best-of-3 walls.
func runE26(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E26", Title: "Approximate decisions: sampling vs exact DecideFirst on a 100k-tuple NO-heavy cnf workload",
		Header: []string{"k", "exact", "approx", "exact-wall", "approx-wall", "speedup", "samples", "escalated"}}

	const (
		bodyRels = 4
		rowsPer  = 25_000
		headRels = 6
		headVals = 97
	)
	db := relation.NewDatabase()
	for i := 0; i < bodyRels; i++ {
		name := fmt.Sprintf("p%d", i)
		for j := 0; j < rowsPer; j++ {
			// Column 0 is a unique key; column 1 hits the shared head
			// domain on every fifth row and is otherwise private noise.
			v := fmt.Sprintf("z%d-%d", i, j)
			if j%5 == 0 {
				v = fmt.Sprintf("v%d", j%headVals)
			}
			db.MustInsertNamed(name, fmt.Sprintf("p%dx%d", i, j), v)
		}
	}
	for i := 0; i < headRels; i++ {
		name := fmt.Sprintf("h%d", i)
		for k := 0; k < headVals; k++ {
			db.MustInsertNamed(name, fmt.Sprintf("v%d", k))
		}
	}
	total := bodyRels*rowsPer + headRels*headVals

	mq := core.MustParse("R(Y) <- P(X,Y)")
	eng := engine.NewEngine(db)
	prep, err := eng.Prepare(mq, engine.Options{
		Type:   core.Type0,
		Approx: engine.ApproxOptions{Epsilon: 0.1, Delta: 0.05},
	})
	if err != nil {
		return nil, err
	}
	// Warm pass: fills the node-join cache both legs share, so the timed
	// passes compare decision work rather than first-touch materialization.
	if _, _, _, err := prep.DecideFirstStats(ctx, core.Cnf, rat.New(1, 2)); err != nil {
		return nil, err
	}

	reps := 3
	if quick {
		reps = 2
	}
	bestOf := func(fn func() error) (time.Duration, error) {
		var best time.Duration
		for r := 0; r < reps; r++ {
			d, err := timeIt(fn)
			if err != nil {
				return 0, err
			}
			if r == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	pass := true
	cases := []struct {
		k       rat.Rat
		wantYes bool
		noHeavy bool
	}{
		{rat.New(1, 2), false, true},
		{rat.New(3, 4), false, true},
		{rat.New(1, 10), true, false},
	}
	for _, c := range cases {
		var exactYes bool
		exactWall, err := bestOf(func() error {
			var err error
			exactYes, _, _, err = prep.DecideFirstStats(ctx, core.Cnf, c.k)
			return err
		})
		if err != nil {
			return nil, err
		}

		var apxYes bool
		var apxStats *engine.Stats
		apxWall, err := bestOf(func() error {
			var err error
			apxYes, _, apxStats, err = prep.DecideApproxStats(ctx, core.Cnf, c.k)
			return err
		})
		if err != nil {
			return nil, err
		}

		speedup := float64(exactWall) / float64(apxWall)
		if exactYes != apxYes || exactYes != c.wantYes {
			pass = false
			res.Notef("k=%s: verdicts exact=%v approx=%v want=%v", c.k, exactYes, apxYes, c.wantYes)
		}
		if apxStats.ApproxEscalated != 0 {
			pass = false
			res.Notef("k=%s: %d pair(s) escalated to exact evaluation; p=1/5 must clear every ε-band here", c.k, apxStats.ApproxEscalated)
		}
		if c.noHeavy && speedup < 2 {
			pass = false
			res.Notef("k=%s: approx %.2fx vs exact, want >= 2x on the NO-heavy rows", c.k, speedup)
		}
		res.AddRow(c.k.String(), verdictE26(exactYes), verdictE26(apxYes),
			fmtDur(exactWall), fmtDur(apxWall), fmt.Sprintf("%.1fx", speedup),
			fmt.Sprint(apxStats.SamplesDrawn), fmt.Sprint(apxStats.ApproxEscalated))
	}

	res.Notef("workload: %d tuples (%d binary relations x %d rows + %d unary head relations x %d values); cnf = 1/5 for all %d candidate pairs",
		total, bodyRels, rowsPer, headRels, headVals, bodyRels*headRels)
	res.Notef("approx: eps=0.1 delta=0.05, derived sample budget, fixed default seed; YES verdicts exactly confirmed before acceptance")
	res.Notef("pass = verdict agreement on every row, zero escalations, and >= 2x wall speedup on the NO-heavy rows (best-of-%d)", reps)
	res.Pass = pass
	return res, nil
}

func verdictE26(yes bool) string {
	if yes {
		return "YES"
	}
	return "NO"
}
