package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/server"
)

// ServeOptions parameterizes the server replay benchmark (E23 and
// mqbench -serve).
type ServeOptions struct {
	// URL targets a live mqserve instance. Empty boots an in-process
	// server on a loopback listener for the duration of the run.
	URL string
	// QPS is the paced request rate. <= 0 means 200.
	QPS float64
	// Requests is the total request count. 0 means 120 (quick) / 360.
	Requests int
}

// replayReq is one pre-generated workload request: everything random is
// drawn up front from the seeded rng so the replay itself is
// deterministic apart from timing.
type replayReq struct {
	class string // "query", "decide" or "stream"
	path  string
	body  []byte
}

// runE23 is the registry entry: in-process server, default pacing.
func runE23(ctx context.Context, quick bool) (*Result, error) {
	return RunServe(ctx, quick, ServeOptions{})
}

// RunServe replays a seeded internal/gen workload against a metaquery
// server at a controlled QPS and reports per-endpoint latency
// percentiles. The workload mixes /v1/query, /v1/decide and /v1/stream
// over three scenario databases loaded through POST /v1/db (inline
// JSON), so the run exercises the load path, the prepared cache (each
// metaquery repeats) and all three search endpoints.
func RunServe(ctx context.Context, quick bool, opts ServeOptions) (*Result, error) {
	qps := opts.QPS
	if qps <= 0 {
		qps = 200
	}
	n := opts.Requests
	if n == 0 {
		if quick {
			n = 120
		} else {
			n = 360
		}
	}

	base := opts.URL
	if base == "" {
		srv := server.New(server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("serve replay: %w", err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	}

	// Load three shape-diverse scenario databases through the wire.
	shapes := []string{"t0-chain", "t1-cycle", "t2-pad"}
	scenarios := make([]*gen.Scenario, len(shapes))
	for i, shape := range shapes {
		sc, err := gen.NewScenario(int64(i+1), shape)
		if err != nil {
			return nil, fmt.Errorf("serve replay: %w", err)
		}
		scenarios[i] = sc
		blob, err := json.Marshal(inlineDB(sc.DB))
		if err != nil {
			return nil, err
		}
		if err := postOK(ctx, base+"/v1/db/"+shape, blob); err != nil {
			return nil, fmt.Errorf("serve replay: loading %s: %w", shape, err)
		}
	}

	reqs, err := buildWorkload(scenarios, shapes, n)
	if err != nil {
		return nil, err
	}

	// Paced replay: one request per tick, each measured in its own
	// goroutine so a slow search does not stall the arrival process.
	var mu sync.Mutex
	lat := map[string][]time.Duration{}
	okCount := map[string]int{}
	shed, errCount := 0, 0
	var firstErr error
	interval := time.Duration(float64(time.Second) / qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	start := time.Now()
replay:
	for _, rq := range reqs {
		select {
		case <-ctx.Done():
			break replay
		case <-ticker.C:
		}
		wg.Add(1)
		go func(rq replayReq) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := http.Post(base+rq.path, "application/json", bytes.NewReader(rq.body))
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errCount++
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				okCount[rq.class]++
				lat[rq.class] = append(lat[rq.class], d)
				lat["all"] = append(lat["all"], d)
			case http.StatusTooManyRequests:
				shed++ // legitimate under admission control, not an error
			default:
				errCount++
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: status %d", rq.path, resp.StatusCode)
				}
			}
		}(rq)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{
		ID:     "E23",
		Title:  "mqserve replay: seeded workload latency at paced QPS",
		Header: []string{"endpoint", "requests", "ok", "p50_ms", "p95_ms", "p99_ms"},
	}
	attempts := map[string]int{"all": len(reqs)}
	for _, rq := range reqs {
		attempts[rq.class]++
	}
	classes := []string{"query", "decide", "stream", "all"}
	for _, c := range classes {
		ds := lat[c]
		reqN := attempts[c]
		res.AddRow(c, fmt.Sprintf("%d", reqN), fmt.Sprintf("%d", len(ds)),
			ms(percentile(ds, 0.50)), ms(percentile(ds, 0.95)), ms(percentile(ds, 0.99)))
	}
	res.Notef("target %.0f qps, effective %.0f qps over %s", qps,
		float64(len(reqs))/wall.Seconds(), wall.Round(time.Millisecond))
	if shed > 0 {
		res.Notef("%d requests shed with 429 under admission control", shed)
	}
	if firstErr != nil {
		res.Notef("first error: %v", firstErr)
	}
	if hits, misses, ok := cacheCounters(ctx, base); ok {
		res.Notef("prepared cache: %d hits / %d misses", hits, misses)
	}
	crossCheckServerLatency(ctx, base, res, lat)
	// The run reproduces iff every request was answered (200 or a shed
	// 429) and each endpoint class saw at least one successful search.
	res.Pass = errCount == 0 &&
		okCount["query"] > 0 && okCount["decide"] > 0 && okCount["stream"] > 0
	return res, nil
}

// buildWorkload pre-draws the whole request sequence from a fixed seed:
// scenario and endpoint choices repeat, so the prepared cache sees
// realistic re-use.
func buildWorkload(scenarios []*gen.Scenario, names []string, n int) ([]replayReq, error) {
	rng := rand.New(rand.NewSource(23))
	reqs := make([]replayReq, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(len(scenarios))
		sc, db := scenarios[k], names[k]
		search := map[string]any{
			"db": db, "query": sc.MQ.String(), "type": int(sc.Type),
		}
		if sc.Th.CheckSup {
			search["min_sup"] = sc.Th.Sup.String()
		}
		if sc.Th.CheckCnf {
			search["min_cnf"] = sc.Th.Cnf.String()
		}
		if sc.Th.CheckCvr {
			search["min_cvr"] = sc.Th.Cvr.String()
		}
		var rq replayReq
		switch rng.Intn(3) {
		case 0:
			rq.class, rq.path = "query", "/v1/query"
		case 1:
			rq.class, rq.path = "stream", "/v1/stream"
		default:
			rq.class, rq.path = "decide", "/v1/decide"
			ix, bound := "sup", "0"
			switch {
			case sc.Th.CheckCnf:
				ix, bound = "cnf", sc.Th.Cnf.String()
			case sc.Th.CheckCvr:
				ix, bound = "cvr", sc.Th.Cvr.String()
			case sc.Th.CheckSup:
				bound = sc.Th.Sup.String()
			}
			search = map[string]any{
				"db": db, "query": sc.MQ.String(), "type": int(sc.Type),
				"index": ix, "k": bound,
			}
		}
		blob, err := json.Marshal(search)
		if err != nil {
			return nil, err
		}
		rq.body = blob
		reqs = append(reqs, rq)
	}
	return reqs, nil
}

// inlineDB renders a relation.Database as the /v1/db inline-JSON load
// document.
func inlineDB(db *relation.Database) map[string]any {
	rels := make([]map[string]any, 0, db.NumRelations())
	for _, name := range db.RelationNames() {
		r := db.Relation(name)
		tuples := make([][]string, 0, r.Len())
		for _, t := range r.Tuples() {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = db.Dict().Name(v)
			}
			tuples = append(tuples, row)
		}
		rels = append(rels, map[string]any{"name": name, "arity": r.Arity(), "tuples": tuples})
	}
	return map[string]any{"relations": rels}
}

func postOK(ctx context.Context, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(out))
	}
	return nil
}

// cacheCounters reads the server's prepared-cache hit/miss counters from
// /v1/stats (best-effort: a live server without the endpoint just drops
// the note).
func cacheCounters(ctx context.Context, base string) (hits, misses uint64, ok bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return 0, 0, false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	var st struct {
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return 0, 0, false
	}
	return st.CacheHits, st.CacheMisses, true
}

// crossCheckServerLatency compares the replay's client-side percentiles
// with the server's own histograms (/v1/stats latency_by_endpoint): the
// two measure the same requests from opposite ends of the connection, so
// they should roughly agree. Disagreement beyond 2x in either direction is
// reported as a note (not a failure — the client measures full round trips
// of OK responses only, the server measures handler time of every
// outcome, and the histogram buckets are log-spaced). Best-effort against
// servers without the endpoint.
func crossCheckServerLatency(ctx context.Context, base string, res *Result, lat map[string][]time.Duration) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		ByEndpoint []struct {
			Endpoint string  `json:"endpoint"`
			Count    uint64  `json:"count"`
			P50MS    float64 `json:"p50_ms"`
			P95MS    float64 `json:"p95_ms"`
			P99MS    float64 `json:"p99_ms"`
		} `json:"latency_by_endpoint"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil || len(st.ByEndpoint) == 0 {
		return
	}
	warned := false
	for _, sv := range st.ByEndpoint {
		ds := lat[sv.Endpoint]
		if len(ds) == 0 {
			continue
		}
		client := [3]float64{
			float64(percentile(ds, 0.50).Microseconds()) / 1e3,
			float64(percentile(ds, 0.95).Microseconds()) / 1e3,
			float64(percentile(ds, 0.99).Microseconds()) / 1e3,
		}
		srv := [3]float64{sv.P50MS, sv.P95MS, sv.P99MS}
		qname := [3]string{"p50", "p95", "p99"}
		res.Notef("server %s: n=%d p50=%.2fms p95=%.2fms p99=%.2fms (client p50=%.2fms p95=%.2fms p99=%.2fms)",
			sv.Endpoint, sv.Count, srv[0], srv[1], srv[2], client[0], client[1], client[2])
		for i := range srv {
			// Sub-millisecond values sit inside transport jitter; only
			// meaningfully large percentiles can disagree meaningfully.
			if client[i] < 1 && srv[i] < 1 {
				continue
			}
			lo, hi := srv[i], client[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo > 0 && hi/lo > 2 && !warned {
				res.Notef("WARNING: %s %s disagrees >2x between client (%.2fms) and server (%.2fms)",
					sv.Endpoint, qname[i], client[i], srv[i])
				warned = true
			}
		}
	}
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3)
}
