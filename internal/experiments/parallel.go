package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
)

// runE24 measures the parallel enumeration path: FindRules and Stream on
// one prepared metaquery at 1, 2, 4 and 8 workers over the E22-style
// skewed workload (heavy-hitter columns staggered across relations, the
// regime where per-candidate body work is most uneven and a fixed
// partition is least favorable — worker imbalance shows up honestly).
//
// Since PR 9 the workers claim candidate chunks off a shared atomic cursor
// instead of receiving one static contiguous block each: on this skewed
// workload the expensive candidates no longer pin a single worker, because
// whoever finishes early pulls the next chunk from the remainder. The
// multiset check below is exactly the invariance the cursor must preserve.
//
// The reproduction check is hardware-independent: every worker count must
// produce exactly the sequential answer multiset (sharding the first
// node's candidates is a scheduling choice, never a semantic one), and
// each Stream must deliver exactly as many rows as its FindRules. The
// wall and alloc columns are informational — parallel speedup requires
// GOMAXPROCS > 1, and the merged stream's goroutine machinery has a fixed
// overhead that single-core runs pay without any offsetting concurrency.
func runE24(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E24", Title: "Parallel enumeration: FindRules/Stream at 1-8 workers on a skewed workload",
		Header: []string{"workers", "findrules-wall", "stream-wall", "answers", "allocs"}}

	tuples := 600
	if quick {
		tuples = 250
	}
	cfg := gen.DBConfig{
		Relations: 3, MinArity: 2, MaxArity: 2,
		MinTuples: tuples, MaxTuples: tuples,
		Domain: 600, Skew: 10, SkewCols: []int{1, 0, 1},
	}
	rng := rand.New(rand.NewSource(24))
	db := cfg.Generate(rng)
	mq, err := gen.MQConfig{BodyPatterns: 3, PatternArity: 2}.Generate(rng, db)
	if err != nil {
		return nil, err
	}
	eng := engine.NewEngine(db)

	pass := true
	var baseline map[string]int
	for _, workers := range []int{1, 2, 4, 8} {
		prep, err := eng.Prepare(mq, engine.Options{Type: core.Type0, Workers: workers})
		if err != nil {
			return nil, err
		}
		// Warm pass: fills the cross-execution node-join cache, so the
		// timed passes compare steady-state enumeration.
		if _, err := prep.FindRules(ctx); err != nil {
			return nil, err
		}

		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		answers, err := prep.FindRules(ctx)
		frWall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}

		start = time.Now()
		streamed := 0
		for _, serr := range prep.Stream(ctx) {
			if serr != nil {
				return nil, serr
			}
			streamed++
		}
		stWall := time.Since(start)

		set := make(map[string]int, len(answers))
		for _, a := range answers {
			set[fmt.Sprintf("%s|%s|%s|%s", a.Rule.String(), a.Sup, a.Cnf, a.Cvr)]++
		}
		if workers == 1 {
			baseline = set
		} else if !sameMultisetE24(set, baseline) {
			pass = false
			res.Notef("workers=%d: answer multiset differs from sequential", workers)
		}
		if streamed != len(answers) {
			pass = false
			res.Notef("workers=%d: stream delivered %d rows, FindRules %d answers", workers, streamed, len(answers))
		}
		res.AddRow(fmt.Sprint(workers), fmtDur(frWall), fmtDur(stWall),
			fmt.Sprint(len(answers)), fmt.Sprint(after.Mallocs-before.Mallocs))
	}
	res.Notef("pass = answer-multiset equality across worker counts plus stream/findrules row agreement; wall columns are informational")
	res.Notef("partition: chunked shared atomic cursor (workers steal from the remainder), replacing the static contiguous blocks of PR 7")
	res.Notef("measured at GOMAXPROCS=%d on %d CPU(s); parallel wall-clock speedup requires multiple cores",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	res.Pass = pass
	return res, nil
}

// sameMultisetE24 compares two answer multisets.
func sameMultisetE24(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}
