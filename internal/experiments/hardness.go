package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/logic"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/reductions"
)

// runE4 reproduces Figure 5 row 1 (Theorem 3.21): the 3-COLORING reduction
// decides graph colorability through metaquerying, for every index and
// instantiation type, on fixed and random graphs.
func runE4(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E4", Title: "Thm 3.21 / Fig.5 row 1: 3-COLORING -> <DB,MQ,I,0,T>",
		Header: []string{"graph", "3-colorable", "reduction says", "agree", "time"}}
	type namedGraph struct {
		name string
		g    *graphs.Graph
	}
	cases := []namedGraph{
		{"C5", graphs.Cycle(5)},
		{"K3", graphs.Complete(3)},
		{"K4", graphs.Complete(4)},
		{"P6", graphs.Path(6)},
	}
	n := 10
	if quick {
		n = 3
	}
	for seed := int64(0); seed < int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphs.Random(rng, 5+rng.Intn(3), 0.5)
		if len(g.Edges) == 0 {
			continue
		}
		cases = append(cases, namedGraph{fmt.Sprintf("G(seed=%d,n=%d)", seed, g.N), g})
	}
	pass := true
	for _, c := range cases {
		_, want := c.g.ThreeColorable()
		red, err := reductions.BuildThreeColoring(c.g)
		if err != nil {
			return nil, err
		}
		var got bool
		dur, err := timeIt(func() error {
			var derr error
			got, _, derr = core.DecideContext(ctx, red.DB, red.MQ, core.Sup, rat.Zero, core.Type0)
			return derr
		})
		if err != nil {
			return nil, err
		}
		agree := got == want
		pass = pass && agree
		res.AddRow(c.name, fmt.Sprint(want), fmt.Sprint(got), boolMark(agree), fmtDur(dur))
	}
	res.Notef("every index I ∈ {sup,cnf,cvr} and type T ∈ {0,1,2} is exercised by the unit tests; sup/type-0 shown here")
	res.Pass = pass
	return res, nil
}

// runE5 reproduces Theorem 3.24 / Figure 5 row 2: strict thresholds above 0
// for sup behave exactly at the boundary of the true index value.
func runE5(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E5", Title: "Thm 3.24 / Fig.5 row 2: strict thresholds for sup/cvr",
		Header: []string{"graph", "exact sup", "k just below", "k = sup", "pass"}}
	pass := true
	for _, g := range []*graphs.Graph{graphs.Cycle(5), graphs.Complete(3), graphs.Path(5)} {
		red, err := reductions.BuildThreeColoring(g)
		if err != nil {
			return nil, err
		}
		answers, err := core.NaiveAnswersContext(ctx, red.DB, red.MQ, core.Type0, core.Thresholds{})
		if err != nil {
			return nil, err
		}
		if len(answers) != 1 {
			return nil, fmt.Errorf("E5: expected unique instantiation, got %d", len(answers))
		}
		sup := answers[0].Sup
		if sup.IsZero() {
			continue
		}
		justBelow := rat.New(sup.Num()*2-1, sup.Den()*2)
		yesBelow, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Sup, justBelow, core.Type0)
		if err != nil {
			return nil, err
		}
		yesAt, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Sup, sup, core.Type0)
		if err != nil {
			return nil, err
		}
		ok := yesBelow && !yesAt
		pass = pass && ok
		res.AddRow(fmt.Sprintf("n=%d,m=%d", g.N, len(g.Edges)), sup.String(),
			fmt.Sprintf("YES=%v", yesBelow), fmt.Sprintf("YES=%v", yesAt), boolMark(ok))
	}
	res.Notef("strictness: I > k, so deciding at k = exact index must answer NO")
	res.Pass = pass
	return res, nil
}

// runE6 reproduces Theorem 3.28 / Figure 5 row 3 (type-0): the ∃C-3SAT
// reduction to confidence thresholds agrees with brute force.
func runE6(ctx context.Context, quick bool) (*Result, error) {
	return runExistsCSAT(ctx, "E6", "Thm 3.28 / Fig.5 row 3: ∃C-3SAT -> cnf threshold (type-0)",
		reductions.VariantType0, []core.InstType{core.Type0}, quick)
}

// runE7 reproduces Theorem 3.29: the type-1/2 variant of the ∃C-3SAT
// reduction.
func runE7(ctx context.Context, quick bool) (*Result, error) {
	return runExistsCSAT(ctx, "E7", "Thm 3.29: ∃C-3SAT -> cnf threshold (types 1,2)",
		reductions.VariantType12, []core.InstType{core.Type1, core.Type2}, quick)
}

func runExistsCSAT(ctx context.Context, id, title string, variant reductions.ExistsCSATVariant, types []core.InstType, quick bool) (*Result, error) {
	res := &Result{ID: id, Title: title,
		Header: []string{"instance", "k'", "2^h", "brute force", "type", "reduction", "agree"}}
	n := 8
	if quick {
		n = 3
	}
	pass := true
	for seed := int64(0); seed < int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed*31 + 7))
		nPi, nChi := 1+rng.Intn(2), 2+rng.Intn(2)
		f := logic.Random3CNF(rng, nPi+nChi, 2+rng.Intn(3))
		pi := make([]int, nPi)
		chi := make([]int, nChi)
		for i := range pi {
			pi[i] = i
		}
		for i := range chi {
			chi[i] = nPi + i
		}
		inst := &logic.ExistsCountInstance{F: f, Pi: pi, Chi: chi, K: 1 + rng.Intn(1<<nChi)}
		want, _, err := inst.Solve()
		if err != nil {
			return nil, err
		}
		red, err := reductions.BuildExistsCSAT(inst, variant)
		if err != nil {
			return nil, err
		}
		for _, typ := range types {
			got, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Cnf, red.K, typ)
			if err != nil {
				return nil, err
			}
			agree := got == want
			pass = pass && agree
			res.AddRow(fmt.Sprintf("seed=%d s=%d h=%d m=%d", seed, nPi, nChi, len(f.Clauses)),
				fmt.Sprint(inst.K), fmt.Sprint(1<<nChi), fmt.Sprint(want), typ.String(),
				fmt.Sprint(got), boolMark(agree))
		}
	}
	res.Notef("threshold k = (k'-1)/2^h; confidence exceeds k iff ≥ k' counted assignments satisfy F")
	res.Pass = pass
	return res, nil
}

// runE9 reproduces Theorem 3.33 / Figure 5 row 5: the HAMILTONIAN PATH
// reduction through acyclic metaqueries under types 1 and 2.
func runE9(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E9", Title: "Thm 3.33 / Fig.5 row 5: HAMPATH -> acyclic <DB,MQ,I,0,{1,2}>",
		Header: []string{"graph", "acyclic MQ", "ham path", "type-1 says", "type-2 says", "agree"}}
	star := graphs.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	cases := map[string]*graphs.Graph{
		"P4":   graphs.Path(4),
		"C5":   graphs.Cycle(5),
		"K4":   graphs.Complete(4),
		"star": star,
	}
	if !quick {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 4; i++ {
			g := graphs.Random(rng, 5, 0.5)
			cases[fmt.Sprintf("G(seed11,#%d)", i)] = g
		}
	}
	pass := true
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		g := cases[name]
		_, want := g.HamiltonianPath()
		red, err := reductions.BuildHamPath(g)
		if err != nil {
			return nil, err
		}
		acyclic := red.MQ.IsAcyclic()
		got1, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Sup, rat.Zero, core.Type1)
		if err != nil {
			return nil, err
		}
		got2, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Sup, rat.Zero, core.Type2)
		if err != nil {
			return nil, err
		}
		agree := acyclic && got1 == want && got2 == want
		pass = pass && agree
		res.AddRow(name, fmt.Sprint(acyclic), fmt.Sprint(want), fmt.Sprint(got1), fmt.Sprint(got2), boolMark(agree))
	}
	res.Notef("acyclicity of MQham certifies that NP-hardness holds already for acyclic metaqueries under types 1 and 2")
	res.Pass = pass
	return res, nil
}

// runE10 reproduces Theorem 3.34 / Figure 5 row 7: thresholds above 0 on
// the acyclic HAMPATH metaquery, strict at the boundary.
func runE10(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E10", Title: "Thm 3.34 / Fig.5 row 7: acyclic, types 1-2, k > 0",
		Header: []string{"graph", "max cvr", "YES below", "YES at max", "pass"}}
	pass := true
	for _, g := range []*graphs.Graph{graphs.Path(4), graphs.Cycle(4)} {
		red, err := reductions.BuildHamPath(g)
		if err != nil {
			return nil, err
		}
		answers, err := core.NaiveAnswersContext(ctx, red.DB, red.MQ, core.Type1, core.Thresholds{})
		if err != nil {
			return nil, err
		}
		best := rat.Zero
		for _, a := range answers {
			best = rat.Max(best, a.Cvr)
		}
		if best.IsZero() {
			continue
		}
		justBelow := rat.New(best.Num()*2-1, best.Den()*2)
		yesBelow, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Cvr, justBelow, core.Type1)
		if err != nil {
			return nil, err
		}
		yesAt, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Cvr, best, core.Type1)
		if err != nil {
			return nil, err
		}
		ok := yesBelow && !yesAt
		pass = pass && ok
		res.AddRow(fmt.Sprintf("n=%d", g.N), best.String(),
			fmt.Sprint(yesBelow), fmt.Sprint(yesAt), boolMark(ok))
	}
	res.Pass = pass
	return res, nil
}

// runE11 reproduces Theorem 3.35 / Figure 5 row 9: the semi-acyclic type-0
// 3-COLORING reduction.
func runE11(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E11", Title: "Thm 3.35 / Fig.5 row 9: semi-acyclic type-0 3-COLORING",
		Header: []string{"graph", "semi-acyclic", "acyclic", "3-colorable", "reduction", "agree"}}
	cases := map[string]*graphs.Graph{
		"C5": graphs.Cycle(5),
		"K3": graphs.Complete(3),
		"K4": graphs.Complete(4),
	}
	if !quick {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 3; i++ {
			g := graphs.Random(rng, 4, 0.6)
			if len(g.Edges) > 0 {
				cases[fmt.Sprintf("G(seed3,#%d)", i)] = g
			}
		}
	}
	pass := true
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		g := cases[name]
		_, want := g.ThreeColorable()
		red, err := reductions.BuildSemiAcyclicThreeCol(g)
		if err != nil {
			return nil, err
		}
		semi := red.MQ.IsSemiAcyclic()
		acyc := red.MQ.IsAcyclic()
		got, _, err := core.DecideContext(ctx, red.DB, red.MQ, core.Cnf, rat.Zero, core.Type0)
		if err != nil {
			return nil, err
		}
		// The construction is always semi-acyclic and answer-preserving;
		// for particular graphs it may happen to be acyclic too (the paper:
		// "MQ3col might not be acyclic, but it is semi-acyclic").
		agree := semi && got == want
		pass = pass && agree
		res.AddRow(name, fmt.Sprint(semi), fmt.Sprint(acyc), fmt.Sprint(want), fmt.Sprint(got), boolMark(agree))
	}
	res.Notef("semi-acyclic (and non-acyclic on K4/C5) metaqueries stay NP-complete for type-0: Fig.5 row 9")
	res.Pass = pass
	return res, nil
}

// runE12 reproduces Proposition 3.26: the 3SAT -> BCQ transformation is
// parsimonious: #BCQ equals #SAT over the occurring variables.
func runE12(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E12", Title: "Prop 3.26: parsimonious 3SAT -> #BCQ",
		Header: []string{"formula", "#SAT", "#BCQ", "agree"}}
	n := 12
	if quick {
		n = 4
	}
	pass := true
	for seed := int64(0); seed < int64(n); seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(4)
		f := logic.Random3CNF(rng, nVars, 1+rng.Intn(8))
		red, err := reductions.BuildSatBCQ(f)
		if err != nil {
			return nil, err
		}
		got, err := red.CountSolutions()
		if err != nil {
			return nil, err
		}
		full, err := logic.CountModels(f)
		if err != nil {
			return nil, err
		}
		want := full >> uint(nVars-len(f.UsedVars()))
		agree := got == want
		pass = pass && agree
		res.AddRow(fmt.Sprintf("seed=%d vars=%d clauses=%d", seed, nVars, len(f.Clauses)),
			fmt.Sprint(want), fmt.Sprint(got), boolMark(agree))
	}
	res.Pass = pass
	return res, nil
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
