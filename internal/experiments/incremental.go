package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
)

// runE25 measures incremental maintenance: after each scripted tuple delta,
// the cost of Engine.Apply plus re-running an already-prepared metaquery is
// compared against rebuilding from scratch — NewEngine on the post-delta
// database (fresh statistics and candidate index), Prepare, FindRules.
// Deltas are small (a handful of tuples per batch, the PATCH-endpoint
// regime), so the rebuild leg pays the full O(database) engine construction
// for every change while the incremental leg pays only for what moved:
// copy-on-write relation extensions, sketch updates, and the prepared
// query's node-join caches carried across epochs for unchanged relations.
//
// The reproduction check is twofold: every batch's incremental answer
// multiset must equal the from-scratch multiset exactly (rat-exact, order
// insensitive), and the summed incremental wall must not exceed the summed
// rebuild wall. The rebuild leg is given best-of-3 (its minimum wall);
// the incremental leg is timed once per batch — its first post-Apply
// execution is the honest cold cost, and repeating it would measure the
// warmed cache instead.
func runE25(ctx context.Context, quick bool) (*Result, error) {
	res := &Result{ID: "E25", Title: "Incremental maintenance: Apply + re-query vs from-scratch rebuild per delta",
		Header: []string{"batch", "delta", "apply+query", "rebuild+query", "answers", "agree"}}

	tuples, batches := 20000, 6
	if quick {
		tuples, batches = 8000, 3
	}
	cfg := gen.DBConfig{
		Relations: 5, MinArity: 2, MaxArity: 2,
		MinTuples: tuples, MaxTuples: tuples, Domain: tuples,
	}
	rng := rand.New(rand.NewSource(25))
	db := cfg.Generate(rng)
	// A single-pattern metaquery keeps per-execution enumeration cost
	// proportional to the database rather than to a join explosion, so the
	// build-vs-delta asymmetry — the thing this experiment measures — is
	// visible over the query wall both legs pay identically.
	mq, err := gen.MQConfig{BodyPatterns: 1, PatternArity: 2}.Generate(rng, db)
	if err != nil {
		return nil, err
	}
	opt := engine.Options{Type: core.Type1}

	eng := engine.NewEngine(db)
	prep, err := eng.Prepare(mq, opt)
	if err != nil {
		return nil, err
	}
	// Warm pass on the initial epoch: the long-lived prepared query starts
	// every batch with the caches a live server would have.
	if _, err := prep.FindRules(ctx); err != nil {
		return nil, err
	}

	script := gen.DeltaScript(&gen.Scenario{Seed: 25, Shape: "e25", DB: db}, batches)
	pass := true
	var totalIncr, totalRebuild time.Duration
	for i, batch := range script {
		delta := engine.Delta{}
		moved := 0
		for _, td := range batch {
			delta.Relations = append(delta.Relations, engine.RelationDelta{
				Name: td.Rel, Arity: td.Arity, Insert: td.Insert, Delete: td.Delete,
			})
			moved += len(td.Insert) + len(td.Delete)
		}

		start := time.Now()
		if _, err := eng.Apply(ctx, delta); err != nil {
			return nil, err
		}
		answers, err := prep.FindRules(ctx)
		if err != nil {
			return nil, err
		}
		incrWall := time.Since(start)

		// The clone exists only to give the rebuild leg its own database;
		// a real rebuild would load in place, so the copy stays untimed.
		postDB := eng.Database().Clone()
		var rebuildWall time.Duration
		var freshAnswers []core.Answer
		for rep := 0; rep < 3; rep++ {
			start = time.Now()
			fresh := engine.NewEngine(postDB)
			fprep, err := fresh.Prepare(mq, opt)
			if err != nil {
				return nil, err
			}
			freshAnswers, err = fprep.FindRules(ctx)
			if err != nil {
				return nil, err
			}
			if w := time.Since(start); rep == 0 || w < rebuildWall {
				rebuildWall = w
			}
		}

		agree := sameMultisetE24(answerMultisetE25(answers), answerMultisetE25(freshAnswers))
		if !agree {
			pass = false
			res.Notef("batch %d: incremental answers diverge from the from-scratch rebuild", i+1)
		}
		totalIncr += incrWall
		totalRebuild += rebuildWall
		res.AddRow(fmt.Sprint(i+1), fmt.Sprintf("%d tuple(s)", moved),
			fmtDur(incrWall), fmtDur(rebuildWall), fmt.Sprint(len(answers)), boolMark(agree))
	}
	if totalIncr > totalRebuild {
		pass = false
		res.Notef("incremental total %s exceeds rebuild total %s", fmtDur(totalIncr), fmtDur(totalRebuild))
	}
	res.AddRow("total", "", fmtDur(totalIncr), fmtDur(totalRebuild), "", "")
	res.Notef("pass = per-batch answer-multiset equality plus total incremental wall <= total rebuild wall")
	res.Notef("rebuild leg is best-of-3; incremental leg is the honest single cold run after each Apply")
	res.Pass = pass
	return res, nil
}

// answerMultisetE25 keys an answer list for multiset comparison.
func answerMultisetE25(answers []core.Answer) map[string]int {
	set := make(map[string]int, len(answers))
	for _, a := range answers {
		set[fmt.Sprintf("%s|%s|%s|%s", a.Rule.String(), a.Sup, a.Cnf, a.Cvr)]++
	}
	return set
}
