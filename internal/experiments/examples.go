package experiments

import (
	"context"
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/hypergraph"
	"github.com/mqgo/metaquery/internal/hypertree"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/workload"
)

// runE1 reproduces Figure 1 and the Section 2.1 worked example: on DB1 the
// metaquery (4) admits 27 type-0 and 216 type-1 instantiations, and the
// rule UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z) scores sup 1, cnf 5/7, cvr 1.
func runE1(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E1", Title: "Figure 1 / §2.1: DB1 and metaquery (4)",
		Header: []string{"type", "instantiations", "paper rule found", "sup", "cnf", "cvr"}}
	db := workload.DB1()
	mq := workload.MQ4()
	wantCounts := map[core.InstType]int{core.Type0: 27, core.Type1: 216}
	pass := true
	for _, typ := range []core.InstType{core.Type0, core.Type1} {
		n, err := core.CountInstantiations(db, mq, typ)
		if err != nil {
			return nil, err
		}
		answers, _, err := engine.FindRulesContext(ctx, db, mq, engine.Options{Type: typ})
		if err != nil {
			return nil, err
		}
		var hit *core.Answer
		for i := range answers {
			if answers[i].Rule.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
				hit = &answers[i]
			}
		}
		if hit == nil {
			pass = false
			res.AddRow(typ.String(), fmt.Sprint(n), "NO", "-", "-", "-")
			continue
		}
		ok := n == wantCounts[typ] &&
			hit.Sup.Equal(rat.One) && hit.Cnf.Equal(rat.New(5, 7)) && hit.Cvr.Equal(rat.One)
		pass = pass && ok
		res.AddRow(typ.String(), fmt.Sprint(n), "yes", hit.Sup.String(), hit.Cnf.String(), hit.Cvr.String())
	}
	res.Notef("paper: sup=1, cnf=5/7, cvr=1 for UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)")
	res.Pass = pass
	return res, nil
}

// runE2 reproduces the Figure 2 type-2 example: with the ternary UsPT the
// metaquery (4) instantiates to UsPT(X,Z,T) <- UsCa(Y,X), CaTe(Y,Z).
func runE2(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E2", Title: "Figure 2 / §2.1: type-2 instantiation with padded head",
		Header: []string{"rule", "sup", "cnf", "cvr"}}
	db := workload.DB1Extended()
	mq := workload.MQ4()
	answers, _, err := engine.FindRulesContext(ctx, db, mq, engine.Options{Type: core.Type2})
	if err != nil {
		return nil, err
	}
	found := false
	for _, a := range answers {
		if a.Rule.Head.Pred == "UsPT" && len(a.Rule.Head.Terms) == 3 &&
			a.Rule.Head.Terms[0].Var == "X" && a.Rule.Head.Terms[1].Var == "Z" &&
			a.Rule.Body[0].String() == "UsCa(Y,X)" && a.Rule.Body[1].String() == "CaTe(Y,Z)" {
			found = true
			res.AddRow(a.Rule.String(), a.Sup.String(), a.Cnf.String(), a.Cvr.String())
		}
	}
	res.Notef("total type-2 answers with no thresholds: %d", len(answers))
	res.Notef("the paper's example is syntactic: joining UsCa(Y,X) with CaTe(Y,Z) on Y equates users with carriers, so the indices are legitimately 0")
	res.Pass = found
	return res, nil
}

// runE3 reproduces the §2.2 cover example: the type-2 instantiation
// UsCa(X,Z) <- UsPT(X,H) of I(X) <- O(X) scores cover 1.
func runE3(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E3", Title: "§2.2: cover example I(X) <- O(X)",
		Header: []string{"rule", "cvr"}}
	db := workload.DB1()
	mq := core.MustParse("I(X) <- O(X)")
	answers, _, err := engine.FindRulesContext(ctx, db, mq, engine.Options{
		Type:       core.Type2,
		Thresholds: core.SingleIndex(core.Cvr, rat.New(99, 100)),
	})
	if err != nil {
		return nil, err
	}
	pass := false
	for _, a := range answers {
		if a.Rule.Head.Pred == "UsCa" && a.Rule.Body[0].Pred == "UsPT" &&
			a.Rule.Head.Terms[0].Var == "X" && a.Rule.Body[0].Terms[0].Var == "X" {
			if a.Cvr.Equal(rat.One) {
				pass = true
			}
			res.AddRow(a.Rule.String(), a.Cvr.String())
		}
	}
	res.Notef("paper: UsCa(X,Z) <- UsPt(X,H) scores cover 1")
	res.Pass = pass
	return res, nil
}

// runE15 reproduces Figure 3 / Examples 4.3 and 4.5: the join tree of
// {P(A,B), Q(B,C), R(C,D)} and its two-half full reducer, verified to
// reduce a concrete database to the projections of the full join.
func runE15(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E15", Title: "Figure 3 / Examples 4.3, 4.5: join tree and full reducer",
		Header: []string{"half", "step"}}
	h := hypergraph.New([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	names := []string{"p(A,B)", "q(B,C)", "r(C,D)"}
	first, second, ok := hypergraph.FullReducer(h)
	if !ok {
		return nil, fmt.Errorf("E15: no full reducer for a semi-acyclic set")
	}
	for _, s := range first {
		res.AddRow("first", fmt.Sprintf("%s := %s ⋉ %s", names[s.Target], names[s.Target], names[s.Source]))
	}
	for _, s := range second {
		res.AddRow("second", fmt.Sprintf("%s := %s ⋉ %s", names[s.Target], names[s.Target], names[s.Source]))
	}

	// Verify full reduction on a concrete database: after both halves each
	// relation equals the projection of the full join onto its attributes.
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a1", "b1")
	db.MustInsertNamed("p", "a2", "b2")
	db.MustInsertNamed("p", "a3", "b9") // dangling
	db.MustInsertNamed("q", "b1", "c1")
	db.MustInsertNamed("q", "b2", "c2")
	db.MustInsertNamed("q", "b7", "c7") // dangling
	db.MustInsertNamed("r", "c1", "d1")
	db.MustInsertNamed("r", "c8", "d8") // dangling
	atoms := []relation.Atom{
		relation.NewAtom("p", "A", "B"),
		relation.NewAtom("q", "B", "C"),
		relation.NewAtom("r", "C", "D"),
	}
	tables := make([]*relation.Table, len(atoms))
	for i, a := range atoms {
		t, err := relation.FromAtom(db, a)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	for _, s := range append(append([]hypergraph.SemijoinStep{}, first...), second...) {
		tables[s.Target] = tables[s.Target].Semijoin(tables[s.Source])
	}
	full, err := relation.JoinAtoms(db, atoms)
	if err != nil {
		return nil, err
	}
	pass := true
	for i, a := range atoms {
		want := full.Project(a.Vars())
		if !tables[i].EqualSet(want) {
			pass = false
			res.Notef("relation %s not fully reduced", names[i])
		}
	}
	res.Notef("after both halves, every relation equals the projection of the full join: %v", pass)
	res.Pass = pass && len(first) == 2 && len(second) == 2
	return res, nil
}

// runE16 reproduces Examples 4.8/4.10: the hypertree decomposition of
// Qex = {P(A,B), Q(B,C), R(C,D), S(B,D)} has width exactly 2.
func runE16(ctx context.Context, _ bool) (*Result, error) {
	res := &Result{ID: "E16", Title: "Examples 4.8/4.10: hypertree decomposition of Qex",
		Header: []string{"node", "chi", "lambda"}}
	names := []string{"P(A,B)", "Q(B,C)", "R(C,D)", "S(B,D)"}
	atoms := []hypertree.AtomSchema{
		{ID: 0, Vars: []string{"A", "B"}},
		{ID: 1, Vars: []string{"B", "C"}},
		{ID: 2, Vars: []string{"C", "D"}},
		{ID: 3, Vars: []string{"B", "D"}},
	}
	d := hypertree.Decompose(atoms)
	if err := hypertree.Validate(atoms, d); err != nil {
		return nil, err
	}
	for _, n := range d.Nodes() {
		lam := make([]string, len(n.Lambda))
		for i, id := range n.Lambda {
			lam[i] = names[id]
		}
		res.AddRow(fmt.Sprintf("p%d", n.ID+1),
			"{"+joinStrings(n.Chi, ",")+"}", "{"+joinStrings(lam, ",")+"}")
	}
	res.Notef("computed width = %d (paper: hypertree-width of Qex is 2)", d.Width)
	res.Pass = d.Width == 2
	return res, nil
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}
