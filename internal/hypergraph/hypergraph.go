// Package hypergraph implements hypergraphs, the GYO ear-removal reduction,
// the acyclicity test of Definition 3.30, and join-tree construction
// (Definition 4.2) used by the semijoin full reducers of Section 4.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a named hyperedge: a set of vertices. The ID ties the edge back to
// whatever the caller is decomposing (e.g. the index of a literal scheme in
// a metaquery body). Vertex order inside an edge is irrelevant.
type Edge struct {
	ID       int
	Vertices []string
}

// vertexSet returns the edge's vertices as a set.
func (e Edge) vertexSet() map[string]bool {
	s := make(map[string]bool, len(e.Vertices))
	for _, v := range e.Vertices {
		s[v] = true
	}
	return s
}

// Hypergraph is a finite hypergraph H = <V, E>. V is implicit: the union of
// all edge vertex sets (isolated vertices never matter for acyclicity).
type Hypergraph struct {
	Edges []Edge
}

// New builds a hypergraph from the given edges; edge IDs are assigned
// positionally if the caller passes vertex lists.
func New(edges ...[]string) *Hypergraph {
	h := &Hypergraph{}
	for i, vs := range edges {
		h.Edges = append(h.Edges, Edge{ID: i, Vertices: append([]string(nil), vs...)})
	}
	return h
}

// Vertices returns the sorted vertex set of h.
func (h *Hypergraph) Vertices() []string {
	set := make(map[string]bool)
	for _, e := range h.Edges {
		for _, v := range e.Vertices {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the hypergraph for debugging.
func (h *Hypergraph) String() string {
	var b strings.Builder
	for i, e := range h.Edges {
		if i > 0 {
			b.WriteByte(' ')
		}
		vs := append([]string(nil), e.Vertices...)
		sort.Strings(vs)
		fmt.Fprintf(&b, "e%d{%s}", e.ID, strings.Join(vs, ","))
	}
	return b.String()
}

// StepKind distinguishes the two GYO reduction actions.
type StepKind int

const (
	// RemoveIsolated records the removal of an edge sharing no vertex with
	// any other edge (step 1 of Definition 3.30).
	RemoveIsolated StepKind = iota
	// RemoveEar records the removal of an ear with its witness
	// (steps 2 and 3 of Definition 3.30).
	RemoveEar
)

// Step is one action of the GYO reduction trace.
type Step struct {
	Kind    StepKind
	Ear     int // edge ID removed
	Witness int // witness edge ID (RemoveEar only), -1 otherwise
}

// GYO runs the GYO reduction of Definition 3.30 and returns the remaining
// hypergraph together with the removal trace. H is acyclic iff the returned
// hypergraph has no edges.
//
// An ear is an edge e for which some distinct edge w (the witness) exists
// such that no vertex of e−w occurs in any other edge. Isolated edges
// (sharing no vertex with any other edge) are removed first at each round.
func GYO(h *Hypergraph) (*Hypergraph, []Step) {
	edges := make([]Edge, len(h.Edges))
	copy(edges, h.Edges)
	var steps []Step

	for {
		if len(edges) == 0 {
			break
		}
		// Step 1: remove isolated edges.
		removedIsolated := false
		for i := 0; i < len(edges); {
			if isIsolated(edges, i) {
				steps = append(steps, Step{Kind: RemoveIsolated, Ear: edges[i].ID, Witness: -1})
				edges = append(edges[:i], edges[i+1:]...)
				removedIsolated = true
			} else {
				i++
			}
		}
		if len(edges) == 0 {
			break
		}
		// Steps 2-3: find and remove one ear.
		earIdx, witnessIdx := findEar(edges)
		if earIdx < 0 {
			if removedIsolated {
				continue // isolated removal may have created new ears
			}
			break // no ears: reduction is stuck, h is cyclic
		}
		steps = append(steps, Step{Kind: RemoveEar, Ear: edges[earIdx].ID, Witness: edges[witnessIdx].ID})
		edges = append(edges[:earIdx], edges[earIdx+1:]...)
	}
	return &Hypergraph{Edges: edges}, steps
}

// isIsolated reports whether edges[i] shares no vertex with any other edge.
func isIsolated(edges []Edge, i int) bool {
	set := edges[i].vertexSet()
	for j, e := range edges {
		if j == i {
			continue
		}
		for _, v := range e.Vertices {
			if set[v] {
				return false
			}
		}
	}
	return true
}

// findEar returns indices (ear, witness) of an ear and one witness for it,
// or (-1, -1) if the hypergraph has no ear.
func findEar(edges []Edge) (int, int) {
	for i := range edges {
		for j := range edges {
			if i == j {
				continue
			}
			if isEarWithWitness(edges, i, j) {
				return i, j
			}
		}
	}
	return -1, -1
}

// isEarWithWitness reports whether edges[i] is an ear with witness edges[j]:
// no vertex of e_i − e_j occurs in any edge other than e_i.
func isEarWithWitness(edges []Edge, i, j int) bool {
	wset := edges[j].vertexSet()
	for _, v := range edges[i].Vertices {
		if wset[v] {
			continue
		}
		// v is in e_i − w: it must not occur in any other edge.
		for k, e := range edges {
			if k == i {
				continue
			}
			for _, u := range e.Vertices {
				if u == v {
					return false
				}
			}
		}
	}
	return true
}

// IsAcyclic reports whether h is acyclic per Definition 3.30: the GYO
// reduction empties it.
func IsAcyclic(h *Hypergraph) bool {
	rest, _ := GYO(h)
	return len(rest.Edges) == 0
}
