package hypergraph

import "sort"

// Tree is a rooted join tree node. The node stands for one hyperedge
// (equivalently: one literal scheme / relation of the query).
type Tree struct {
	Edge     Edge
	Children []*Tree
}

// Forest is a collection of rooted join trees, one per connected component
// of an acyclic hypergraph.
type Forest struct {
	Roots []*Tree
}

// Nodes returns all nodes of the forest in preorder.
func (f *Forest) Nodes() []*Tree {
	var out []*Tree
	var walk func(t *Tree)
	walk = func(t *Tree) {
		out = append(out, t)
		for _, c := range t.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return out
}

// JoinForest builds a join forest for h from the GYO reduction trace: when
// an ear e is removed with witness w, e becomes a child of w; edges removed
// as isolated become roots. The second result reports whether h is acyclic;
// if false, the forest is nil.
//
// The construction yields a forest satisfying the join-tree property of
// Definition 4.2: any variable shared by two literal schemes occurs in every
// scheme on the unique path linking them.
func JoinForest(h *Hypergraph) (*Forest, bool) {
	rest, steps := GYO(h)
	if len(rest.Edges) != 0 {
		return nil, false
	}
	byID := make(map[int]Edge, len(h.Edges))
	for _, e := range h.Edges {
		byID[e.ID] = e
	}
	nodes := make(map[int]*Tree, len(h.Edges))
	node := func(id int) *Tree {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := &Tree{Edge: byID[id]}
		nodes[id] = n
		return n
	}
	var roots []*Tree
	for _, s := range steps {
		switch s.Kind {
		case RemoveIsolated:
			roots = append(roots, node(s.Ear))
		case RemoveEar:
			parent := node(s.Witness)
			parent.Children = append(parent.Children, node(s.Ear))
		}
	}
	return &Forest{Roots: roots}, true
}

// SemijoinStep is one step "Target := Target ⋉ Source" of a semijoin
// program (Definition 4.4). Target and Source are edge IDs.
type SemijoinStep struct {
	Target, Source int
}

// FullReducer returns the full-reducer semijoin program for an acyclic
// hypergraph, as the two halves described after Definition 4.4:
//
//   - the first half performs a bottom-up visit of each join tree, adding
//     "parent := parent ⋉ child" for every child;
//   - the second half is the first half reversed with target and source
//     exchanged ("child := child ⋉ parent").
//
// After executing firstHalf followed by secondHalf, each relation is reduced
// with respect to the whole set (Bernstein–Goodman). The boolean result
// reports whether h is acyclic; if false, no full reducer exists
// (a set of atoms has a full reducer iff it is semi-acyclic).
func FullReducer(h *Hypergraph) (firstHalf, secondHalf []SemijoinStep, ok bool) {
	f, ok := JoinForest(h)
	if !ok {
		return nil, nil, false
	}
	for _, root := range f.Roots {
		var visit func(t *Tree)
		visit = func(t *Tree) {
			for _, c := range t.Children {
				visit(c)
			}
			for _, c := range t.Children {
				firstHalf = append(firstHalf, SemijoinStep{Target: t.Edge.ID, Source: c.Edge.ID})
			}
		}
		visit(root)
	}
	secondHalf = make([]SemijoinStep, 0, len(firstHalf))
	for i := len(firstHalf) - 1; i >= 0; i-- {
		s := firstHalf[i]
		secondHalf = append(secondHalf, SemijoinStep{Target: s.Source, Source: s.Target})
	}
	return firstHalf, secondHalf, true
}

// ValidateJoinTree checks the Definition 4.2 property on a forest built for
// h: for every variable occurring in two edges, the variable occurs in every
// edge on the unique path linking them, and the two edges are in the same
// tree. It returns true when the property holds.
//
// This is used by tests; JoinForest always produces valid forests.
func ValidateJoinTree(h *Hypergraph, f *Forest) bool {
	// Build parent pointers and locate nodes by edge ID.
	parent := make(map[int]int)
	treeOf := make(map[int]int)
	var walk func(t *Tree, root int, par int)
	walk = func(t *Tree, root, par int) {
		parent[t.Edge.ID] = par
		treeOf[t.Edge.ID] = root
		for _, c := range t.Children {
			walk(c, root, t.Edge.ID)
		}
	}
	for i, r := range f.Roots {
		walk(r, i, -1)
	}
	byID := make(map[int]Edge)
	for _, e := range h.Edges {
		byID[e.ID] = e
	}
	if len(parent) != len(h.Edges) {
		return false
	}

	depth := func(id int) int {
		d := 0
		for parent[id] >= 0 {
			id = parent[id]
			d++
		}
		return d
	}
	pathHasVar := func(a, b int, v string) bool {
		// Walk both nodes up to their LCA, checking v on every edge visited.
		has := func(id int) bool {
			for _, u := range byID[id].Vertices {
				if u == v {
					return true
				}
			}
			return false
		}
		da, db := depth(a), depth(b)
		for da > db {
			if !has(a) {
				return false
			}
			a, da = parent[a], da-1
		}
		for db > da {
			if !has(b) {
				return false
			}
			b, db = parent[b], db-1
		}
		for a != b {
			if !has(a) || !has(b) {
				return false
			}
			a, b = parent[a], parent[b]
		}
		return has(a) // the LCA itself
	}

	for i := 0; i < len(h.Edges); i++ {
		for j := i + 1; j < len(h.Edges); j++ {
			ei, ej := h.Edges[i], h.Edges[j]
			shared := sharedVertices(ei, ej)
			if len(shared) == 0 {
				continue
			}
			if treeOf[ei.ID] != treeOf[ej.ID] {
				return false
			}
			for _, v := range shared {
				if !pathHasVar(ei.ID, ej.ID, v) {
					return false
				}
			}
		}
	}
	return true
}

func sharedVertices(a, b Edge) []string {
	set := b.vertexSet()
	var out []string
	for _, v := range a.Vertices {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
