package hypergraph

import (
	"math/rand"
	"testing"
)

func TestEmptyIsAcyclic(t *testing.T) {
	if !IsAcyclic(New()) {
		t.Error("empty hypergraph not acyclic")
	}
}

func TestSingleEdgeAcyclic(t *testing.T) {
	if !IsAcyclic(New([]string{"X", "Y"})) {
		t.Error("single edge not acyclic")
	}
}

func TestChainAcyclic(t *testing.T) {
	// {X,Y},{Y,Z},{Z,W}: a path, acyclic.
	h := New([]string{"X", "Y"}, []string{"Y", "Z"}, []string{"Z", "W"})
	if !IsAcyclic(h) {
		t.Error("chain not acyclic")
	}
}

func TestTriangleCyclic(t *testing.T) {
	// {X,Y},{Y,Z},{Z,X}: the classic cyclic example.
	h := New([]string{"X", "Y"}, []string{"Y", "Z"}, []string{"Z", "X"})
	if IsAcyclic(h) {
		t.Error("triangle reported acyclic")
	}
}

func TestTriangleWithCoverAcyclic(t *testing.T) {
	// Adding an edge covering all three vertices makes it acyclic.
	h := New([]string{"X", "Y"}, []string{"Y", "Z"}, []string{"Z", "X"}, []string{"X", "Y", "Z"})
	if !IsAcyclic(h) {
		t.Error("covered triangle not acyclic")
	}
}

// The paper's examples after Definition 3.31.
func TestPaperMQ1Acyclic(t *testing.T) {
	// MQ1 = P(X,Y) <- P(Y,Z), Q(Z,W): edges {P,X,Y},{P,Y,Z},{Q,Z,W}.
	h := New([]string{"^P", "X", "Y"}, []string{"^P", "Y", "Z"}, []string{"^Q", "Z", "W"})
	if !IsAcyclic(h) {
		t.Error("paper MQ1 not acyclic")
	}
}

func TestPaperMQ2Cyclic(t *testing.T) {
	// MQ2 = P(X,Y) <- Q(Y,Z), P(Z,W): edges {P,X,Y},{Q,Y,Z},{P,Z,W}.
	h := New([]string{"^P", "X", "Y"}, []string{"^Q", "Y", "Z"}, []string{"^P", "Z", "W"})
	if IsAcyclic(h) {
		t.Error("paper MQ2 not cyclic")
	}
}

func TestPaperSemiAcyclicExample(t *testing.T) {
	// MQ = N(X) <- N(Y), E(X,Y): H cyclic, SH acyclic.
	hFull := New([]string{"^N", "X"}, []string{"^N", "Y"}, []string{"^E", "X", "Y"})
	if IsAcyclic(hFull) {
		t.Error("H(MQ) should be cyclic")
	}
	hSemi := New([]string{"X"}, []string{"Y"}, []string{"X", "Y"})
	if !IsAcyclic(hSemi) {
		t.Error("SH(MQ) should be acyclic")
	}
}

func TestDisconnectedAcyclic(t *testing.T) {
	h := New([]string{"X", "Y"}, []string{"A", "B"})
	if !IsAcyclic(h) {
		t.Error("disconnected pair not acyclic")
	}
	f, ok := JoinForest(h)
	if !ok || len(f.Roots) != 2 {
		t.Errorf("expected 2 roots, got %v", f)
	}
}

func TestGYOTrace(t *testing.T) {
	h := New([]string{"X", "Y"}, []string{"Y", "Z"})
	rest, steps := GYO(h)
	if len(rest.Edges) != 0 {
		t.Fatalf("GYO left %d edges", len(rest.Edges))
	}
	if len(steps) != 2 {
		t.Fatalf("GYO trace = %v", steps)
	}
	// One ear removal and one isolated removal.
	kinds := map[StepKind]int{}
	for _, s := range steps {
		kinds[s.Kind]++
	}
	if kinds[RemoveEar] != 1 || kinds[RemoveIsolated] != 1 {
		t.Errorf("trace kinds = %v", kinds)
	}
}

func TestJoinForestChain(t *testing.T) {
	h := New([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	f, ok := JoinForest(h)
	if !ok {
		t.Fatal("chain not acyclic")
	}
	if len(f.Roots) != 1 {
		t.Fatalf("forest roots = %d", len(f.Roots))
	}
	if len(f.Nodes()) != 3 {
		t.Fatalf("forest nodes = %d", len(f.Nodes()))
	}
	if !ValidateJoinTree(h, f) {
		t.Error("join tree property violated")
	}
}

func TestJoinForestCyclicFails(t *testing.T) {
	h := New([]string{"X", "Y"}, []string{"Y", "Z"}, []string{"Z", "X"})
	if _, ok := JoinForest(h); ok {
		t.Error("JoinForest succeeded on cyclic hypergraph")
	}
	if _, _, ok := FullReducer(h); ok {
		t.Error("FullReducer succeeded on cyclic hypergraph")
	}
}

// Figure 3 / Example 4.3: join tree of {P(A,B), Q(B,C), R(C,D)}.
func TestFigure3JoinTree(t *testing.T) {
	h := New([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	f, ok := JoinForest(h)
	if !ok {
		t.Fatal("not acyclic")
	}
	if !ValidateJoinTree(h, f) {
		t.Error("invalid join tree")
	}
	// Q(B,C) (edge 1) must be adjacent to both P (edge 0) and R (edge 2):
	// B is shared by 0-1 and C by 1-2, so on any valid tree the middle edge
	// lies between them. Verify adjacency through parent/child relations.
	adj := map[int]map[int]bool{}
	var walk func(tr *Tree)
	walk = func(tr *Tree) {
		for _, c := range tr.Children {
			if adj[tr.Edge.ID] == nil {
				adj[tr.Edge.ID] = map[int]bool{}
			}
			if adj[c.Edge.ID] == nil {
				adj[c.Edge.ID] = map[int]bool{}
			}
			adj[tr.Edge.ID][c.Edge.ID] = true
			adj[c.Edge.ID][tr.Edge.ID] = true
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	if !adj[1][0] || !adj[1][2] {
		t.Errorf("expected Q adjacent to P and R, adjacency = %v", adj)
	}
}

// Example 4.5: the full reducer of {p(A,B), q(B,C), r(C,D)} has two halves
// of equal length, and the second half is the reversed-exchanged first half.
func TestExample45FullReducerShape(t *testing.T) {
	h := New([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	first, second, ok := FullReducer(h)
	if !ok {
		t.Fatal("no full reducer for semi-acyclic set")
	}
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("halves = %d/%d, want 2/2", len(first), len(second))
	}
	for i, s := range first {
		rev := second[len(second)-1-i]
		if rev.Target != s.Source || rev.Source != s.Target {
			t.Errorf("second half not reversed-exchanged: %v vs %v", s, rev)
		}
	}
}

// Property: on random acyclic-by-construction hypergraphs (built by
// attaching each new edge sharing vertices with a single previous edge),
// GYO reports acyclic and produces a valid join forest.
func TestQuickRandomAcyclicRecognized(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomAcyclicHypergraph(rng, 2+rng.Intn(6))
		if !IsAcyclic(h) {
			t.Fatalf("seed %d: constructed acyclic hypergraph rejected: %v", seed, h)
		}
		f, ok := JoinForest(h)
		if !ok || !ValidateJoinTree(h, f) {
			t.Fatalf("seed %d: invalid join forest", seed)
		}
	}
}

// randomAcyclicHypergraph builds a hypergraph with a join tree by
// construction: each new edge overlaps a subset of exactly one earlier edge
// plus fresh vertices.
func randomAcyclicHypergraph(rng *rand.Rand, edges int) *Hypergraph {
	h := &Hypergraph{}
	next := 0
	freshVar := func() string {
		next++
		return "v" + string(rune('A'+next%26)) + itoa(next)
	}
	first := []string{freshVar(), freshVar()}
	h.Edges = append(h.Edges, Edge{ID: 0, Vertices: first})
	for i := 1; i < edges; i++ {
		parent := h.Edges[rng.Intn(len(h.Edges))]
		var vs []string
		for _, v := range parent.Vertices {
			if rng.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		for len(vs) == 0 || rng.Intn(2) == 0 {
			vs = append(vs, freshVar())
		}
		h.Edges = append(h.Edges, Edge{ID: i, Vertices: vs})
	}
	return h
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestVerticesAndString(t *testing.T) {
	h := New([]string{"Y", "X"}, []string{"Y", "Z"})
	vs := h.Vertices()
	want := []string{"X", "Y", "Z"}
	if len(vs) != len(want) {
		t.Fatalf("Vertices = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vertices = %v, want %v", vs, want)
		}
	}
	s := h.String()
	for _, frag := range []string{"e0{X,Y}", "e1{Y,Z}"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
