// Package datalog implements a positive Datalog evaluation substrate: the
// "deductive database technology" the paper's metaquery framework plugs
// into (Section 1, citing Shen et al.). Rules discovered by metaquerying
// are ordinary Horn rules; this package applies them back to a database,
// computing the least fixpoint by semi-naive iteration.
//
// The engine is deliberately small: positive bodies (no negation), set
// semantics, safety-checked heads (every head variable bound in the body).
// It closes the loop of the paper's motivating pipeline: generate
// metaqueries from the schema, mine rules above plausibility thresholds,
// then *run* the rules deductively to materialize their consequences.
package datalog

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/relation"
)

// Program is a set of positive Horn rules over a database's relations.
type Program struct {
	Rules []core.Rule
}

// FromAnswers builds a program from metaquery answers, the discovered
// rules of a mining run.
func FromAnswers(answers []core.Answer) *Program {
	p := &Program{}
	for _, a := range answers {
		p.Rules = append(p.Rules, a.Rule)
	}
	return p
}

// Check validates the program against db: body relations must exist with
// matching arities, head relations must exist or be creatable (they are
// created on first derivation with the head's arity), heads must be safe
// (every head variable occurs in the body), and head terms must be
// variables (no constant invention here).
func (p *Program) Check(db *relation.Database) error {
	for i, r := range p.Rules {
		bodyVars := map[string]bool{}
		for _, a := range r.Body {
			rel := db.Relation(a.Pred)
			if rel == nil {
				return fmt.Errorf("datalog: rule %d: unknown body relation %q", i, a.Pred)
			}
			if rel.Arity() != len(a.Terms) {
				return fmt.Errorf("datalog: rule %d: atom %s has arity %d, relation has %d",
					i, a.String(), len(a.Terms), rel.Arity())
			}
			for _, t := range a.Terms {
				if t.IsVar() {
					bodyVars[t.Var] = true
				}
			}
		}
		if len(r.Body) == 0 {
			return fmt.Errorf("datalog: rule %d has an empty body", i)
		}
		for _, t := range r.Head.Terms {
			if !t.IsVar() {
				return fmt.Errorf("datalog: rule %d: constant in head not supported", i)
			}
			if !bodyVars[t.Var] {
				return fmt.Errorf("datalog: rule %d: unsafe head variable %s", i, t.Var)
			}
		}
		if existing := db.Relation(r.Head.Pred); existing != nil && existing.Arity() != len(r.Head.Terms) {
			return fmt.Errorf("datalog: rule %d: head arity %d clashes with relation %s arity %d",
				i, len(r.Head.Terms), r.Head.Pred, existing.Arity())
		}
	}
	return nil
}

// Stats reports fixpoint evaluation effort.
type Stats struct {
	// Iterations is the number of fixpoint rounds (at least 1).
	Iterations int
	// Derived is the number of new tuples added across all relations.
	Derived int
}

// Eval computes the least fixpoint of the program over db, mutating a
// clone: the input database is untouched; the returned database contains
// all original and derived tuples.
func Eval(db *relation.Database, p *Program) (*relation.Database, *Stats, error) {
	if err := p.Check(db); err != nil {
		return nil, nil, err
	}
	out := db.Clone()
	stats := &Stats{}
	for {
		stats.Iterations++
		changed := false
		for _, r := range p.Rules {
			added, err := applyRule(out, r)
			if err != nil {
				return nil, nil, err
			}
			if added > 0 {
				changed = true
				stats.Derived += added
			}
		}
		if !changed {
			break
		}
		if stats.Iterations > 1_000_000 {
			return nil, nil, fmt.Errorf("datalog: fixpoint did not converge (runaway derivation)")
		}
	}
	return out, stats, nil
}

// applyRule inserts one round of consequences of r into db, returning the
// number of new tuples.
func applyRule(db *relation.Database, r core.Rule) (int, error) {
	body, err := relation.JoinAtoms(db, r.Body)
	if err != nil {
		return 0, err
	}
	head, err := db.AddRelation(r.Head.Pred, len(r.Head.Terms))
	if err != nil {
		return 0, err
	}
	pos := make([]int, len(r.Head.Terms))
	for i, t := range r.Head.Terms {
		p := body.Pos(t.Var)
		if p < 0 {
			return 0, fmt.Errorf("datalog: head variable %s unbound after join", t.Var)
		}
		pos[i] = p
	}
	added := 0
	buf := make(relation.Tuple, len(pos))
	for r := 0; r < body.Len(); r++ {
		tup := body.Row(r)
		for i, p := range pos {
			buf[i] = tup[p]
		}
		if head.Insert(buf) {
			added++
		}
	}
	return added, nil
}

// Consequences returns the tuples of the named relation derived by the
// program but absent from the original database, in sorted name order —
// the "new knowledge" a discovered rule contributes.
func Consequences(original, closed *relation.Database, rel string) ([][]string, error) {
	after := closed.Relation(rel)
	if after == nil {
		return nil, fmt.Errorf("datalog: relation %q not present after evaluation", rel)
	}
	before := original.Relation(rel)
	var out [][]string
	for r := 0; r < after.Len(); r++ {
		t := after.Row(r)
		names := make([]string, len(t))
		for i, v := range t {
			names[i] = closed.Dict().Name(v)
		}
		if before != nil {
			orig := make(relation.Tuple, len(names))
			known := true
			for i, s := range names {
				v, ok := original.Dict().Lookup(s)
				if !ok {
					known = false
					break
				}
				orig[i] = v
			}
			if known && before.Contains(orig) {
				continue
			}
		}
		out = append(out, names)
	}
	return out, nil
}
