package datalog

import (
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func edgeDB(edges ...[2]string) *relation.Database {
	db := relation.NewDatabase()
	db.MustAddRelation("e", 2)
	for _, e := range edges {
		db.MustInsertNamed("e", e[0], e[1])
	}
	return db
}

func rule(text string) core.Rule {
	mq := core.MustParse(text)
	// All-relation (non-pattern) metaqueries convert directly to rules.
	body := make([]relation.Atom, len(mq.Body))
	for i, l := range mq.Body {
		body[i] = l.Atom()
	}
	return core.Rule{Head: mq.Head.Atom(), Body: body}
}

func TestTransitiveClosure(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	db.MustAddRelation("tc", 2)
	p := &Program{Rules: []core.Rule{
		rule(`tc(X,Y) <- e(X,Y)`),
		rule(`tc(X,Z) <- tc(X,Y), e(Y,Z)`),
	}}
	closed, stats, err := Eval(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// Reachability pairs: ab ac ad bc bd cd = 6.
	if closed.Relation("tc").Len() != 6 {
		t.Errorf("tc has %d tuples, want 6", closed.Relation("tc").Len())
	}
	if stats.Derived != 6 {
		t.Errorf("derived = %d, want 6", stats.Derived)
	}
	if stats.Iterations < 3 {
		t.Errorf("iterations = %d, expected at least 3 for a 3-hop chain", stats.Iterations)
	}
	// Input database untouched.
	if db.Relation("tc").Len() != 0 {
		t.Error("input database mutated")
	}
}

func TestCycleClosureTerminates(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "a"})
	db.MustAddRelation("tc", 2)
	p := &Program{Rules: []core.Rule{
		rule(`tc(X,Y) <- e(X,Y)`),
		rule(`tc(X,Z) <- tc(X,Y), tc(Y,Z)`),
	}}
	closed, _, err := Eval(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// aa ab ba bb.
	if closed.Relation("tc").Len() != 4 {
		t.Errorf("cyclic closure = %d tuples, want 4", closed.Relation("tc").Len())
	}
}

func TestCheckErrors(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	cases := []struct {
		name string
		p    *Program
	}{
		{"unknown body relation", &Program{Rules: []core.Rule{rule(`d(X,Y) <- nosuch(X,Y)`)}}},
		{"unsafe head", &Program{Rules: []core.Rule{rule(`d(X,W) <- e(X,Y)`)}}},
		{"body arity", &Program{Rules: []core.Rule{{
			Head: relation.NewAtom("d", "X"),
			Body: []relation.Atom{relation.NewAtom("e", "X")},
		}}}},
		{"empty body", &Program{Rules: []core.Rule{{Head: relation.NewAtom("d", "X")}}}},
		{"head arity clash", &Program{Rules: []core.Rule{rule(`e(X,Y,Y) <- e(X,Y), e(Y,Y)`)}}},
		{"constant head", &Program{Rules: []core.Rule{{
			Head: relation.Atom{Pred: "d", Terms: []relation.Term{relation.C(0)}},
			Body: []relation.Atom{relation.NewAtom("e", "X", "Y")},
		}}}},
	}
	for _, c := range cases {
		if _, _, err := Eval(db, c.p); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHeadRelationCreatedOnDemand(t *testing.T) {
	db := edgeDB([2]string{"a", "b"})
	p := &Program{Rules: []core.Rule{rule(`derived(Y,X) <- e(X,Y)`)}}
	closed, _, err := Eval(db, p)
	if err != nil {
		t.Fatal(err)
	}
	d := closed.Relation("derived")
	if d == nil || d.Len() != 1 {
		t.Fatalf("derived relation missing or wrong: %v", d)
	}
}

func TestConsequences(t *testing.T) {
	db := edgeDB([2]string{"a", "b"}, [2]string{"b", "c"})
	db.MustAddRelation("tc", 2)
	db.MustInsertNamed("tc", "a", "b") // already known
	p := &Program{Rules: []core.Rule{
		rule(`tc(X,Y) <- e(X,Y)`),
		rule(`tc(X,Z) <- tc(X,Y), e(Y,Z)`),
	}}
	closed, _, err := Eval(db, p)
	if err != nil {
		t.Fatal(err)
	}
	news, err := Consequences(db, closed, "tc")
	if err != nil {
		t.Fatal(err)
	}
	// New: bc, ac (ab was known).
	if len(news) != 2 {
		t.Errorf("consequences = %v, want 2 tuples", news)
	}
	if _, err := Consequences(db, closed, "nosuch"); err == nil {
		t.Error("missing relation accepted")
	}
}

// End-to-end pipeline: mine a rule with the metaquery engine, then run it
// deductively on a fresh database — the Section 1 integration story.
func TestMineThenDeduce(t *testing.T) {
	train := relation.NewDatabase()
	train.MustInsertNamed("parent", "ada", "bob")
	train.MustInsertNamed("parent", "bob", "cid")
	train.MustInsertNamed("grandparent", "ada", "cid")

	mq := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	answers, err := core.NaiveAnswers(train, mq, core.Type0,
		core.AllAbove(rat.Zero, rat.New(9, 10), rat.New(9, 10)))
	if err != nil {
		t.Fatal(err)
	}
	var mined []core.Answer
	for _, a := range answers {
		if a.Rule.Head.Pred == "grandparent" &&
			a.Rule.Body[0].Pred == "parent" && a.Rule.Body[1].Pred == "parent" {
			mined = append(mined, a)
		}
	}
	if len(mined) == 0 {
		t.Fatal("grandparent rule not mined")
	}

	// Apply to unseen facts.
	fresh := relation.NewDatabase()
	fresh.MustInsertNamed("parent", "eva", "fay")
	fresh.MustInsertNamed("parent", "fay", "gus")
	fresh.MustAddRelation("grandparent", 2)
	closed, _, err := Eval(fresh, FromAnswers(mined))
	if err != nil {
		t.Fatal(err)
	}
	news, err := Consequences(fresh, closed, "grandparent")
	if err != nil {
		t.Fatal(err)
	}
	if len(news) != 1 || news[0][0] != "eva" || news[0][1] != "gus" {
		t.Errorf("deduced %v, want [[eva gus]]", news)
	}
}
