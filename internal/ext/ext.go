// Package ext implements the extension the paper's conclusion (Section 5)
// names as future work: "allowing negation ... to occur in metapatterns".
// It is NOT part of the reproduced paper; it extends the metaquery language
// with safe negated body literals under set semantics:
//
//	R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)
//
// Semantics. An extended metaquery instantiates exactly like a pure one
// (types 0/1/2, functional predicate-variable restriction shared across
// positive and negated patterns). For the instantiated rule, the body
// assignment set is
//
//	J(body) = J(positive atoms) ▷ a1 ▷ a2 ... (anti-semijoin per negated atom)
//
// i.e. the assignments satisfying every positive atom and matching no
// tuple of any negated atom on the shared variables. The indices keep their
// Definition 2.7 readings with this J(body): confidence and cover are
// unchanged formulas; support maximizes over the *positive* atoms only
// (a negated atom has no satisfying tuples to count).
//
// Safety. A variable of a negated literal must either occur in some
// positive body literal (a join variable) or occur in that literal only
// (a local variable, existentially quantified under the negation, as in
// SQL's NOT EXISTS). A variable shared between two negated literals — or
// between a negated literal and the head — without a positive binding is
// rejected: each negated atom is anti-joined independently, so such
// correlations would be silently ignored. Type-2 padding variables in
// negated atoms are local by construction.
package ext

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// Literal is a possibly negated literal scheme.
type Literal struct {
	core.LiteralScheme
	Negated bool
}

// String renders the literal with a "not " prefix when negated.
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.LiteralScheme.String()
	}
	return l.LiteralScheme.String()
}

// Metaquery is a metaquery whose body may contain negated literals. The
// head must be positive.
type Metaquery struct {
	Head core.LiteralScheme
	Body []Literal
}

// New builds an extended metaquery and validates well-formedness and
// safety.
func New(head core.LiteralScheme, body ...Literal) (*Metaquery, error) {
	mq := &Metaquery{Head: head, Body: body}
	if err := mq.Check(); err != nil {
		return nil, err
	}
	return mq, nil
}

// Check validates the query: at least one positive body literal, and every
// negated-literal variable either positively bound or local to that single
// literal (see the package comment's safety discussion).
func (mq *Metaquery) Check() error {
	positive := make(map[string]bool)
	nPos := 0
	for _, l := range mq.Body {
		if !l.Negated {
			nPos++
			for _, v := range l.Args {
				positive[v] = true
			}
		}
	}
	if nPos == 0 {
		return fmt.Errorf("ext: metaquery needs at least one positive body literal")
	}
	// occurrences[v] counts the literals (head and body) mentioning v.
	occurrences := make(map[string]int)
	countVars := func(args []string) {
		seen := map[string]bool{}
		for _, v := range args {
			if !seen[v] {
				seen[v] = true
				occurrences[v]++
			}
		}
	}
	countVars(mq.Head.Args)
	for _, l := range mq.Body {
		countVars(l.Args)
	}
	for _, l := range mq.Body {
		if !l.Negated {
			continue
		}
		for _, v := range l.Args {
			if !positive[v] && occurrences[v] > 1 {
				return fmt.Errorf("ext: unsafe negation: variable %s of %s is shared but not bound by a positive literal", v, l)
			}
		}
	}
	// Reuse the core structural checks through the positive projection.
	return mq.positiveCore().Check()
}

// positiveCore builds the core metaquery over head + positive body,
// used for structural validation and instantiation plumbing.
func (mq *Metaquery) positiveCore() *core.Metaquery {
	var body []core.LiteralScheme
	for _, l := range mq.Body {
		if !l.Negated {
			body = append(body, l.LiteralScheme)
		}
	}
	return &core.Metaquery{Head: mq.Head, Body: body}
}

// allCore builds a core metaquery whose body includes the negated schemes
// too (negation ignored); instantiation enumeration runs over this, so
// negated patterns get atoms under the same functional σ'.
func (mq *Metaquery) allCore() *core.Metaquery {
	var body []core.LiteralScheme
	for _, l := range mq.Body {
		body = append(body, l.LiteralScheme)
	}
	return &core.Metaquery{Head: mq.Head, Body: body}
}

// String renders the metaquery.
func (mq *Metaquery) String() string {
	parts := make([]string, len(mq.Body))
	for i, l := range mq.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s <- %s", mq.Head.String(), strings.Join(parts, ", "))
}

// Rule is an instantiated extended metaquery.
type Rule struct {
	Head relation.Atom
	Pos  []relation.Atom
	Neg  []relation.Atom
}

// String renders the rule.
func (r Rule) String() string {
	parts := make([]string, 0, len(r.Pos)+len(r.Neg))
	for _, a := range r.Pos {
		parts = append(parts, a.String())
	}
	for _, a := range r.Neg {
		parts = append(parts, "not "+a.String())
	}
	return fmt.Sprintf("%s <- %s", r.Head.String(), strings.Join(parts, ", "))
}

// Answer is one discovered extended rule with its indices.
type Answer struct {
	Rule Rule
	Sup  rat.Rat
	Cnf  rat.Rat
	Cvr  rat.Rat
}

// bodyTable computes J(body) with negation: the join of the positive atoms
// anti-semijoined by each negated atom's table.
func bodyTable(db *relation.Database, r Rule) (*relation.Table, error) {
	pos, err := relation.JoinAtoms(db, r.Pos)
	if err != nil {
		return nil, err
	}
	for _, na := range r.Neg {
		nt, err := relation.FromAtom(db, na)
		if err != nil {
			return nil, err
		}
		pos = pos.AntiSemijoin(nt)
	}
	return pos, nil
}

// Indices computes (sup, cnf, cvr) of the extended rule over db.
func Indices(db *relation.Database, r Rule) (sup, cnf, cvr rat.Rat, err error) {
	body, err := bodyTable(db, r)
	if err != nil {
		return rat.Zero, rat.Zero, rat.Zero, err
	}
	head, err := relation.FromAtom(db, r.Head)
	if err != nil {
		return rat.Zero, rat.Zero, rat.Zero, err
	}
	// sup: max over positive atoms of the participating fraction.
	for _, a := range r.Pos {
		ta, err := relation.FromAtom(db, a)
		if err != nil {
			return rat.Zero, rat.Zero, rat.Zero, err
		}
		if ta.Len() == 0 {
			continue
		}
		num := ta.Semijoin(body).Len()
		if num > 0 {
			sup = rat.Max(sup, rat.New(int64(num), int64(ta.Len())))
		}
	}
	// cnf = |body ⋉ head| / |body|.
	if body.Len() > 0 {
		if num := body.Semijoin(head).Len(); num > 0 {
			cnf = rat.New(int64(num), int64(body.Len()))
		}
	}
	// cvr = |head ⋉ body| / |head|.
	if head.Len() > 0 {
		if num := head.Semijoin(body).Len(); num > 0 {
			cvr = rat.New(int64(num), int64(head.Len()))
		}
	}
	return sup, cnf, cvr, nil
}

// Answers enumerates every type-typ instantiation of mq over db (positive
// and negated patterns share the functional σ'), computes the indices with
// negation semantics, and returns the answers passing the thresholds,
// sorted by rule text.
func Answers(db *relation.Database, mq *Metaquery, typ core.InstType, th core.Thresholds) ([]Answer, error) {
	if err := mq.Check(); err != nil {
		return nil, err
	}
	all := mq.allCore()
	negated := make(map[string]bool)
	for _, l := range mq.Body {
		if l.Negated {
			negated[l.Key()] = true
		}
	}
	var out []Answer
	err := core.ForEachInstantiation(db, all, typ, func(sigma *core.Instantiation) (bool, error) {
		rule, err := buildRule(sigma, mq)
		if err != nil {
			return false, err
		}
		sup, cnf, cvr, err := Indices(db, rule)
		if err != nil {
			return false, err
		}
		if th.Admits(sup, cnf, cvr) {
			out = append(out, Answer{Rule: rule, Sup: sup, Cnf: cnf, Cvr: cvr})
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.String() < out[j].Rule.String() })
	return out, nil
}

// buildRule maps the extended metaquery through σ.
func buildRule(sigma *core.Instantiation, mq *Metaquery) (Rule, error) {
	var r Rule
	headAtom, err := applyScheme(sigma, mq.Head)
	if err != nil {
		return Rule{}, err
	}
	r.Head = headAtom
	seenPos := map[string]bool{}
	seenNeg := map[string]bool{}
	for _, l := range mq.Body {
		a, err := applyScheme(sigma, l.LiteralScheme)
		if err != nil {
			return Rule{}, err
		}
		k := a.String()
		if l.Negated {
			if !seenNeg[k] {
				seenNeg[k] = true
				r.Neg = append(r.Neg, a)
			}
		} else if !seenPos[k] {
			seenPos[k] = true
			r.Pos = append(r.Pos, a)
		}
	}
	return r, nil
}

func applyScheme(sigma *core.Instantiation, l core.LiteralScheme) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := sigma.AtomFor(l)
	if !ok {
		return relation.Atom{}, fmt.Errorf("ext: pattern %s unassigned", l)
	}
	return a, nil
}
