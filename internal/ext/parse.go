package ext

import (
	"fmt"
	"strings"

	"github.com/mqgo/metaquery/internal/core"
)

// Parse parses an extended metaquery. The syntax is the core syntax with
// body literals optionally prefixed by "not " or "!":
//
//	R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)
//	R(X,Z) <- P(X,Y), Q(Y,Z), !S(X,Z)
//
// Parsing strategy: negation markers are stripped and remembered by
// position, then the positive skeleton is parsed by the core parser, so
// both languages stay in sync.
func Parse(input string) (*Metaquery, error) {
	arrow := strings.Index(input, "<-")
	if arrow < 0 {
		arrow = strings.Index(input, ":-")
	}
	if arrow < 0 {
		return nil, fmt.Errorf("ext: parsing %q: expected '<-'", input)
	}
	head := input[:arrow]
	bodyText := input[arrow+2:]

	parts := splitTopLevel(bodyText)
	neg := make([]bool, len(parts))
	for i, p := range parts {
		t := strings.TrimSpace(p)
		switch {
		case strings.HasPrefix(t, "not "):
			neg[i] = true
			parts[i] = strings.TrimPrefix(t, "not ")
		case strings.HasPrefix(t, "!"):
			neg[i] = true
			parts[i] = strings.TrimPrefix(t, "!")
		default:
			parts[i] = t
		}
	}
	skeleton := head + " <- " + strings.Join(parts, ", ")
	cmq, err := core.Parse(skeleton)
	if err != nil {
		return nil, fmt.Errorf("ext: %w", err)
	}
	if len(cmq.Body) != len(parts) {
		return nil, fmt.Errorf("ext: internal error: literal count mismatch")
	}
	body := make([]Literal, len(cmq.Body))
	for i, l := range cmq.Body {
		body[i] = Literal{LiteralScheme: l, Negated: neg[i]}
	}
	return New(cmq.Head, body...)
}

// MustParse is Parse panicking on error.
func MustParse(input string) *Metaquery {
	mq, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return mq
}

// splitTopLevel splits on commas not nested inside parentheses.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
