package ext

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func TestParseNegation(t *testing.T) {
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)")
	if len(mq.Body) != 3 {
		t.Fatalf("body = %d literals", len(mq.Body))
	}
	if mq.Body[0].Negated || mq.Body[1].Negated || !mq.Body[2].Negated {
		t.Errorf("negation flags wrong: %v", mq.Body)
	}
	bang := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z), !S(X,Z)")
	if !bang.Body[2].Negated {
		t.Error("! prefix not recognized")
	}
	if got := mq.String(); got != "R(X,Z) <- P(X,Y), Q(Y,Z), not S(X,Z)" {
		t.Errorf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R(X)",             // no arrow
		"R(X) <- not P(X)", // no positive literal
		// unsafe: W shared between two negated literals, never positive
		"R(X) <- P(X), not S(X,W), not T(W)",
		// unsafe: W in the head, bound only under negation
		"R(X,W) <- P(X), not S(X,W)",
		"R(X) <- P(X), not", // dangling not
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// childlessDB: parent relation plus person list; "childless" is people with
// no children — discoverable only with negation.
func childlessDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("person", "ada", "ada")
	db.MustInsertNamed("person", "bob", "bob")
	db.MustInsertNamed("person", "cid", "cid")
	db.MustInsertNamed("person", "dee", "dee")
	db.MustInsertNamed("parent", "ada", "bob")
	db.MustInsertNamed("parent", "bob", "cid")
	db.MustInsertNamed("childless", "cid", "cid")
	db.MustInsertNamed("childless", "dee", "dee")
	return db
}

func TestNegationSemanticsHandChecked(t *testing.T) {
	db := childlessDB()
	// childless(X,X) <- person(X,X), not parent(X,Y): people who are not a
	// parent of anyone. ada and bob are parents; cid and dee are not.
	r := Rule{
		Head: relation.NewAtom("childless", "X", "X"),
		Pos:  []relation.Atom{relation.NewAtom("person", "X", "X")},
		Neg:  []relation.Atom{relation.NewAtom("parent", "X", "Y")},
	}
	sup, cnf, cvr, err := Indices(db, r)
	if err != nil {
		t.Fatal(err)
	}
	// J(body): persons minus parents = {cid, dee}: 2 of 4 -> sup = 1/2.
	if !sup.Equal(rat.New(1, 2)) {
		t.Errorf("sup = %v, want 1/2", sup)
	}
	// Both satisfy the head: cnf = 1.
	if !cnf.Equal(rat.One) {
		t.Errorf("cnf = %v, want 1", cnf)
	}
	// Both childless tuples implied: cvr = 1.
	if !cvr.Equal(rat.One) {
		t.Errorf("cvr = %v, want 1", cvr)
	}
}

func TestAnswersDiscoverNegatedRule(t *testing.T) {
	db := childlessDB()
	mq := MustParse("R(X,X) <- person(X,X), not P(X,Y)")
	answers, err := Answers(db, mq, core.Type0, core.AllAbove(rat.Zero, rat.New(9, 10), rat.New(9, 10)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range answers {
		if a.Rule.String() == "childless(X,X) <- person(X,X), not parent(X,Y)" {
			found = true
		}
	}
	if !found {
		rules := make([]string, len(answers))
		for i, a := range answers {
			rules[i] = a.Rule.String()
		}
		t.Errorf("negated rule not discovered; got %v", rules)
	}
}

// With no negated literals, the extension must agree exactly with the core
// naive engine.
func TestNoNegationMatchesCore(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		for r := 0; r < 2; r++ {
			name := string(rune('p' + r))
			db.MustAddRelation(name, 2)
			for i := 0; i < rng.Intn(6); i++ {
				db.MustInsertNamed(name, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
			}
		}
		extMQ := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
		coreMQ := core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
		th := core.AllAbove(rat.Zero, rat.Zero, rat.Zero)
		got, err := Answers(db, extMQ, core.Type0, th)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.NaiveAnswers(db, coreMQ, core.Type0, th)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: ext %d answers, core %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i].Rule.String() != want[i].Rule.String() ||
				!got[i].Sup.Equal(want[i].Sup) || !got[i].Cnf.Equal(want[i].Cnf) || !got[i].Cvr.Equal(want[i].Cvr) {
				t.Errorf("seed %d answer %d: %s (%v,%v,%v) vs %s (%v,%v,%v)", seed, i,
					got[i].Rule, got[i].Sup, got[i].Cnf, got[i].Cvr,
					want[i].Rule, want[i].Sup, want[i].Cnf, want[i].Cvr)
			}
		}
	}
}

// Adding "not empty(...)" must not change answers (negating an empty
// relation is vacuous); adding "not full(...)" over a total relation must
// empty them.
func TestNegationBoundaryRelations(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "b", "c")
	db.MustAddRelation("emptyrel", 2)
	for _, x := range []string{"a", "b", "c"} {
		for _, y := range []string{"a", "b", "c"} {
			db.MustInsertNamed("full", x, y)
		}
	}
	th := core.Thresholds{}
	base, err := Answers(db, MustParse("R(X,Y) <- p(X,Y)"), core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	vacuous, err := Answers(db, MustParse("R(X,Y) <- p(X,Y), not emptyrel(X,Y)"), core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(vacuous) {
		t.Errorf("vacuous negation changed answer count: %d vs %d", len(base), len(vacuous))
	}
	for i := range base {
		if !base[i].Cnf.Equal(vacuous[i].Cnf) || !base[i].Sup.Equal(vacuous[i].Sup) {
			t.Error("vacuous negation changed indices")
		}
	}
	killed, err := Answers(db, MustParse("R(X,Y) <- p(X,Y), not full(X,Y)"), core.Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range killed {
		if !a.Sup.IsZero() || !a.Cnf.IsZero() {
			t.Errorf("negating a total relation left non-zero indices: %v", a)
		}
	}
}

// Negated patterns must respect the functional predicate-variable
// restriction shared with positive patterns.
func TestNegatedPatternFunctionality(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "a")
	mq := MustParse("R(X,Y) <- P(X,Y), not P(Y,X)")
	answers, err := Answers(db, mq, core.Type0, core.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if len(a.Rule.Neg) != 1 || a.Rule.Pos[0].Pred != a.Rule.Neg[0].Pred {
			t.Errorf("functionality across negation violated: %s", a.Rule)
		}
	}
}

func TestAntiSemijoin(t *testing.T) {
	a := relation.NewTable([]string{"X", "Y"})
	a.Add(relation.Tuple{1, 10})
	a.Add(relation.Tuple{2, 20})
	a.Add(relation.Tuple{3, 30})
	b := relation.NewTable([]string{"Y"})
	b.Add(relation.Tuple{10})
	out := a.AntiSemijoin(b)
	if out.Len() != 2 || out.Contains(relation.Tuple{1, 10}) {
		t.Errorf("anti-semijoin = %v", out)
	}
	// Complement law: semijoin + anti-semijoin partition the left table.
	semi := a.Semijoin(b)
	if semi.Len()+out.Len() != a.Len() {
		t.Error("semijoin/anti-semijoin do not partition")
	}
	// Disjoint columns: anti vs empty keeps all, anti vs non-empty drops all.
	c := relation.NewTable([]string{"Z"})
	if got := a.AntiSemijoin(c); got.Len() != 3 {
		t.Errorf("anti vs empty disjoint = %d", got.Len())
	}
	c.Add(relation.Tuple{9})
	if got := a.AntiSemijoin(c); got.Len() != 0 {
		t.Errorf("anti vs non-empty disjoint = %d", got.Len())
	}
}

func TestType2NegationFreshVars(t *testing.T) {
	// Negated type-2 pattern against a wider relation: "no extension
	// exists" semantics via anti-semijoin on the shared variables.
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a")
	db.MustInsertNamed("p", "b")
	db.MustInsertNamed("wide", "a", "x")
	mq := MustParse("R(X) <- p(X), not W(X)")
	answers, err := Answers(db, mq, core.Type2, core.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	// Among the answers: W -> wide(X, fresh) removes "a" (wide's first
	// column), leaving body = {b} and sup = 1/2; the mirrored candidate
	// W -> wide(fresh, X) removes nothing ("x" is no person) and keeps
	// sup = 1.
	foundFirst, foundSecond := false, false
	for _, a := range answers {
		if len(a.Rule.Neg) != 1 || a.Rule.Neg[0].Pred != "wide" {
			continue
		}
		if a.Rule.Neg[0].Terms[0].Var == "X" {
			foundFirst = true
			if !a.Sup.Equal(rat.New(1, 2)) {
				t.Errorf("wide(X,fresh) negation sup = %v, want 1/2", a.Sup)
			}
		} else {
			foundSecond = true
			if !a.Sup.Equal(rat.One) {
				t.Errorf("wide(fresh,X) negation sup = %v, want 1", a.Sup)
			}
		}
	}
	if !foundFirst || !foundSecond {
		t.Errorf("type-2 negated candidates missing: first=%v second=%v", foundFirst, foundSecond)
	}
}
