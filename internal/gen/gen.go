// Package gen produces seeded random metaquerying scenarios — databases and
// metaqueries of controllable shape — for the differential oracle harness
// (internal/diff) and the fuzz/stress suites. Everything is deterministic in
// the seed: the same (seed, shape) pair always yields byte-identical
// scenarios, so any failure found by cmd/mqfuzz is reproducible and
// committable as a regression corpus entry.
//
// The generators cover the axes the paper's complexity map cares about:
// instantiation type (0/1/2), acyclic vs. cyclic bodies, pattern count,
// repeated predicate variables, repeated variables inside a literal, mixed
// arities (relation-level and across the body's predicate variables),
// ordinary atoms in the body — with or without constant arguments — head
// variables absent from the body, and databases containing empty
// relations. Each named Shape fixes one point in that space; seeds vary
// the data.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// DBConfig bounds a random database. All counts are inclusive ranges where a
// Min/Max pair is given.
type DBConfig struct {
	// Relations is the number of relations (named r0, r1, ...).
	Relations int
	// MinArity and MaxArity bound each relation's arity, drawn uniformly.
	MinArity, MaxArity int
	// MinTuples and MaxTuples bound each relation's tuple count.
	MinTuples, MaxTuples int
	// Domain is the active-domain size (constants d0 .. d<Domain-1>).
	Domain int
	// Skew biases constant choice toward low-numbered constants: 0 is
	// uniform; larger values concentrate probability mass, producing the
	// heavy-hitter value distributions that stress join selectivity.
	Skew float64
	// SkewRamp scales each relation's effective skew by its index:
	// relation i draws with skew Skew·i/(Relations-1), so one database
	// mixes uniform and heavy-hitter relations (set semantics shrink the
	// heavily-skewed relations, decorrelating size from selectivity).
	SkewRamp bool
	// SkewCols, when non-empty, restricts skew to one column per relation:
	// relation i draws only column SkewCols[i mod len(SkewCols)] with the
	// effective skew and the remaining columns uniformly (a negative entry
	// skews every column of that relation, the default behavior; an entry
	// past the relation's last column is clamped to it). Skewing
	// a single column decouples value skew from relation cardinality — set
	// semantics barely collapse such a relation — so equal-sized relations
	// can still differ arbitrarily in per-column selectivity, which is
	// invisible to size-only join ordering. The cost-based planner
	// experiment (E22) is built on this knob.
	SkewCols []int
	// FancyConsts replaces the plain d<i> constant names with names
	// containing spaces, commas, quotes and non-ASCII runes, for
	// serialization round-trip stress (CSV, repro files).
	FancyConsts bool
	// EmptyRelations empties the last N relations: the schema keeps the
	// relation (and its arity), but it holds no tuples, exercising the
	// empty-table paths of every engine (candidates over empty relations,
	// zero denominators, empty-join pruning). The CSV layer round-trips
	// such relations via its "# arity=N" comment.
	EmptyRelations int
}

// fancyNames decorates constant index i with CSV-hostile characters. Names
// never start with '#' and carry no leading/trailing whitespace (the CSV
// loader's documented comment and trimming rules).
var fancyDecor = []string{`c %d`, `v,%d`, `q"%d"`, `λ%d`, `x %d,y`, `d%d`}

// constName names constant i under the config's naming mode.
func (c DBConfig) constName(i int) string {
	if !c.FancyConsts {
		return fmt.Sprintf("d%d", i)
	}
	return fmt.Sprintf(fancyDecor[i%len(fancyDecor)], i)
}

// drawConst picks a constant index with the given skew.
func (c DBConfig) drawConst(rng *rand.Rand, skew float64) int {
	if c.Domain <= 1 {
		return 0
	}
	u := rng.Float64()
	if skew > 0 {
		u = math.Pow(u, 1+skew)
	}
	i := int(u * float64(c.Domain))
	if i >= c.Domain {
		i = c.Domain - 1
	}
	return i
}

// relSkew is the effective skew of relation r under the config.
func (c DBConfig) relSkew(r int) float64 {
	if !c.SkewRamp {
		return c.Skew
	}
	if c.Relations <= 1 {
		return c.Skew
	}
	return c.Skew * float64(r) / float64(c.Relations-1)
}

// Generate materializes a database from the config and rng. Arity draws are
// made relation-by-relation, so the arity distribution is part of the seeded
// stream.
func (c DBConfig) Generate(rng *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	for r := 0; r < c.Relations; r++ {
		arity := c.MinArity
		if c.MaxArity > c.MinArity {
			arity += rng.Intn(c.MaxArity - c.MinArity + 1)
		}
		name := fmt.Sprintf("r%d", r)
		db.MustAddRelation(name, arity)
		n := c.MinTuples
		if c.MaxTuples > c.MinTuples {
			n += rng.Intn(c.MaxTuples - c.MinTuples + 1)
		}
		if r >= c.Relations-c.EmptyRelations {
			n = 0
		}
		skew := c.relSkew(r)
		skewCol := -1
		if len(c.SkewCols) > 0 {
			skewCol = c.SkewCols[r%len(c.SkewCols)]
			if skewCol >= arity {
				// Clamp into range so mixed-arity configs keep their skew
				// instead of silently going uniform.
				skewCol = arity - 1
			}
		}
		row := make([]string, arity)
		for i := 0; i < n; i++ {
			for j := range row {
				s := skew
				if skewCol >= 0 && j != skewCol {
					s = 0
				}
				row[j] = c.constName(c.drawConst(rng, s))
			}
			db.MustInsertNamed(name, row...)
		}
	}
	return db
}

// MQConfig bounds a random metaquery. Generated metaqueries are always pure
// (every two patterns sharing a predicate variable have the same arity), so
// all three instantiation types apply.
type MQConfig struct {
	// BodyPatterns is the number of relation patterns in the body.
	BodyPatterns int
	// PatternArity is the arity of every pattern (purity keeps this single).
	PatternArity int
	// Cyclic builds the body as a variable cycle (hypertree width 2 for
	// cycles of length >= 3 of binary patterns); otherwise a chain/star mix.
	Cyclic bool
	// Star builds a star (all patterns share variable X0) instead of a chain.
	Star bool
	// RepeatPredVar reuses the first body pattern's predicate variable for
	// the last body pattern (exercising the functionality constraint on σ').
	RepeatPredVar bool
	// RepeatArgs makes the first body pattern use one variable in every
	// position (equality selection inside a literal).
	RepeatArgs bool
	// IncludeAtom appends one ordinary atom naming a database relation
	// (drawn from db's schema) to the body.
	IncludeAtom bool
	// HeadFreeVar gives the head one variable that occurs nowhere in the
	// body (joins against the body become cartesian on that column).
	HeadFreeVar bool
	// HeadSharesPredVar names the head with the first body pattern's
	// predicate variable instead of a fresh one.
	HeadSharesPredVar bool
	// MixedArities, when non-empty, overrides BodyPatterns and
	// PatternArity: the body has len(MixedArities) patterns, pattern i of
	// arity MixedArities[i], each under a distinct predicate variable.
	// Purity constrains only patterns sharing a predicate variable, so
	// such bodies stay valid for every instantiation type while mixing
	// arities across the body.
	MixedArities []int
	// AtomConsts replaces arguments of the IncludeAtom ordinary atom with
	// constants (probability 1/2 per position): mostly names drawn from
	// the database's active domain, occasionally a fresh name outside it,
	// which matches no tuple.
	AtomConsts bool
}

// Generate builds a metaquery over db's schema from the config and rng.
func (c MQConfig) Generate(rng *rand.Rand, db *relation.Database) (*core.Metaquery, error) {
	a := c.PatternArity
	if a < 1 {
		a = 2
	}
	m := c.BodyPatterns
	arityOf := func(int) int { return a }
	if len(c.MixedArities) > 0 {
		m = len(c.MixedArities)
		arityOf = func(i int) int { return c.MixedArities[i] }
	}
	if m < 1 {
		return nil, fmt.Errorf("gen: BodyPatterns must be >= 1")
	}
	v := func(i int) string { return fmt.Sprintf("X%d", i) }

	// Body variable frame: chain, star or cycle over X0..; extra argument
	// positions (arity > 2) draw from the same pool.
	var body []core.LiteralScheme
	pred := func(i int) string {
		if c.RepeatPredVar && i == m-1 && m > 1 {
			return "P1"
		}
		return fmt.Sprintf("P%d", i+1)
	}
	nVars := m + 1
	if c.Cyclic {
		// A cycle closes back onto X0: only X0..X{m-1} occur in the body.
		nVars = m
	}
	for i := 0; i < m; i++ {
		ai := arityOf(i)
		args := make([]string, ai)
		switch {
		case c.RepeatArgs && i == 0:
			for j := range args {
				args[j] = v(0)
			}
		case c.Cyclic:
			args[0] = v(i)
			if ai > 1 {
				args[1] = v((i + 1) % m)
			}
			for j := 2; j < ai; j++ {
				args[j] = v(rng.Intn(m))
			}
		case c.Star:
			args[0] = v(0)
			if ai > 1 {
				args[1] = v(i + 1)
			}
			for j := 2; j < ai; j++ {
				args[j] = v(rng.Intn(nVars))
			}
		default: // chain
			args[0] = v(i)
			if ai > 1 {
				args[1] = v(i + 1)
			}
			for j := 2; j < ai; j++ {
				args[j] = v(rng.Intn(nVars))
			}
		}
		body = append(body, core.Pattern(pred(i), args...))
	}

	if c.IncludeAtom {
		names := db.RelationNames()
		if len(names) > 0 {
			name := names[rng.Intn(len(names))]
			ar := db.Relation(name).Arity()
			args := make([]string, ar)
			for j := range args {
				args[j] = v(rng.Intn(nVars))
			}
			if c.AtomConsts {
				c.placeConsts(rng, db, args)
			}
			body = append(body, core.SchemeAtom(name, args...))
		}
	}

	// Head: same arity as the patterns (purity when sharing a pred var).
	headArgs := make([]string, a)
	for j := range headArgs {
		headArgs[j] = v(rng.Intn(nVars))
	}
	if c.HeadFreeVar {
		headArgs[0] = "Z0" // occurs nowhere in the body
	}
	headPred := "R"
	if c.HeadSharesPredVar {
		headPred = "P1"
	}
	return core.NewMetaquery(core.Pattern(headPred, headArgs...), body...)
}

// placeConsts replaces atom arguments with constant names, each position
// independently with probability 1/2. Constants come from the database's
// active domain (only names that classify as metaquery constants and
// survive the quoted round-trip, i.e. contain no '"'), with one extra slot
// for a name outside the domain, which matches no tuple.
func (c MQConfig) placeConsts(rng *rand.Rand, db *relation.Database, args []string) {
	var pool []string
	for _, name := range db.Dict().Names() {
		if core.IsConstName(name) && !strings.ContainsRune(name, '"') {
			pool = append(pool, name)
		}
	}
	for j := range args {
		if rng.Intn(2) != 0 {
			continue
		}
		pick := rng.Intn(len(pool) + 1)
		if pick == len(pool) {
			args[j] = "ghost'const" // never interned: empty selection
		} else {
			args[j] = pool[pick]
		}
	}
}

// Scenario is one generated differential test case: a database, a
// metaquery, an instantiation type and admissibility thresholds.
type Scenario struct {
	Seed  int64
	Shape string
	DB    *relation.Database
	MQ    *core.Metaquery
	Type  core.InstType
	Th    core.Thresholds
}

// shapeSpec fixes one point in the scenario space; seeds vary the data.
type shapeSpec struct {
	name string
	typ  core.InstType
	db   DBConfig
	mq   MQConfig
}

// shapes is the registry of named scenario shapes, covering the axes of the
// paper's complexity map. Sizes are deliberately tiny: the oracle is a
// nested-loop brute-forcer and the harness runs hundreds of cases per test.
var shapes = []shapeSpec{
	{"t0-chain", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 7, Domain: 4},
		MQConfig{BodyPatterns: 3, PatternArity: 2}},
	{"t0-star", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 7, Domain: 4, Skew: 1.5},
		MQConfig{BodyPatterns: 3, PatternArity: 2, Star: true}},
	{"t0-mixed-arity", core.Type0,
		DBConfig{Relations: 4, MinArity: 1, MaxArity: 3, MinTuples: 2, MaxTuples: 6, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2}},
	{"t0-repeat-pred", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 3},
		MQConfig{BodyPatterns: 3, PatternArity: 2, RepeatPredVar: true}},
	{"t0-atom-mix", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2, IncludeAtom: true}},
	{"t0-selfhead", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2, HeadSharesPredVar: true}},
	{"t1-chain", core.Type1,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2}},
	{"t1-cycle", core.Type1,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 3},
		MQConfig{BodyPatterns: 3, PatternArity: 2, Cyclic: true}},
	{"t1-repeat-args", core.Type1,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 7, Domain: 3, Skew: 1},
		MQConfig{BodyPatterns: 2, PatternArity: 2, RepeatArgs: true}},
	{"t2-pad", core.Type2,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 3, MinTuples: 2, MaxTuples: 5, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2}},
	{"t2-head-free", core.Type2,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 2, MinTuples: 2, MaxTuples: 5, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2, HeadFreeVar: true}},
	{"t2-atom-mix", core.Type2,
		DBConfig{Relations: 2, MinArity: 2, MaxArity: 2, MinTuples: 2, MaxTuples: 5, Domain: 4},
		MQConfig{BodyPatterns: 1, PatternArity: 2, IncludeAtom: true}},
	{"t0-const-atom", core.Type0,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 3, MaxTuples: 6, Domain: 4},
		MQConfig{BodyPatterns: 2, PatternArity: 2, IncludeAtom: true, AtomConsts: true}},
	{"t1-arity-mix", core.Type1,
		DBConfig{Relations: 4, MinArity: 1, MaxArity: 3, MinTuples: 2, MaxTuples: 5, Domain: 4},
		MQConfig{MixedArities: []int{2, 1, 3}}},
	{"t2-empty-rel", core.Type2,
		DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 2, MaxTuples: 5, Domain: 4, EmptyRelations: 1},
		MQConfig{BodyPatterns: 2, PatternArity: 2}},
}

// Shapes lists the registered scenario shape names in deterministic order.
func Shapes() []string {
	out := make([]string, len(shapes))
	for i, s := range shapes {
		out[i] = s.name
	}
	return out
}

// specFor resolves a shape name.
func specFor(shape string) (shapeSpec, error) {
	for _, s := range shapes {
		if s.name == shape {
			return s, nil
		}
	}
	return shapeSpec{}, fmt.Errorf("gen: unknown shape %q (have %v)", shape, Shapes())
}

// NewScenario builds the deterministic scenario for (seed, shape). The same
// pair always yields the same database, metaquery and thresholds.
func NewScenario(seed int64, shape string) (*Scenario, error) {
	spec, err := specFor(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(hashName(shape))))
	db := spec.db.Generate(rng)
	mq, err := spec.mq.Generate(rng, db)
	if err != nil {
		return nil, err
	}
	th := randomThresholds(rng)
	return &Scenario{Seed: seed, Shape: shape, DB: db, MQ: mq, Type: spec.typ, Th: th}, nil
}

// randomThresholds draws a threshold triple: each index is enabled with
// probability ~2/3 with a small rational bound in [0,1). About 1 case in 27
// has every check disabled, exercising the engine's no-pruning paths.
func randomThresholds(rng *rand.Rand) core.Thresholds {
	var th core.Thresholds
	draw := func() (rat.Rat, bool) {
		if rng.Intn(3) == 0 {
			return rat.Zero, false
		}
		den := int64(2 + rng.Intn(4)) // 2..5
		num := int64(rng.Intn(int(den)))
		return rat.New(num, den), true
	}
	th.Sup, th.CheckSup = draw()
	th.Cnf, th.CheckCnf = draw()
	th.Cvr, th.CheckCvr = draw()
	return th
}

// hashName folds a shape name into the seed stream (FNV-1a, 32-bit).
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
