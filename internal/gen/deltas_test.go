package gen

import (
	"reflect"
	"testing"
)

// TestDeltaScriptProperties checks the script generator across shapes and
// seeds: determinism (same scenario, same script), non-mutation of the
// scenario database, well-formed batches (declared arities match every
// tuple, requested batch count honored), and — by replaying the script on
// a private copy — that scripted deletes overwhelmingly name live tuples
// (the generator scripts them against its own simulation; only intra-batch
// duplicate picks may miss) and the replayed database stays consistent.
func TestDeltaScriptProperties(t *testing.T) {
	totalDeletes, landedDeletes, totalInserts := 0, 0, 0
	for _, shape := range []string{"t0-chain", "t1-cycle", "t2-pad"} {
		for seed := int64(0); seed < 4; seed++ {
			s, err := NewScenario(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			sizeBefore := s.DB.Size()
			script := DeltaScript(s, 5)
			again := DeltaScript(s, 5)
			if !reflect.DeepEqual(script, again) {
				t.Fatalf("%s/%d: DeltaScript is not deterministic", shape, seed)
			}
			if s.DB.Size() != sizeBefore {
				t.Fatalf("%s/%d: DeltaScript mutated the scenario database", shape, seed)
			}
			if len(script) != 5 {
				t.Fatalf("%s/%d: %d batches, want 5", shape, seed, len(script))
			}

			sim := s.DB.Clone()
			for bi, batch := range script {
				if len(batch) == 0 {
					t.Fatalf("%s/%d: batch %d is empty", shape, seed, bi)
				}
				for _, td := range batch {
					if td.Arity <= 0 {
						t.Fatalf("%s/%d: batch %d relation %s: arity %d", shape, seed, bi, td.Rel, td.Arity)
					}
					for _, row := range append(append([][]string{}, td.Insert...), td.Delete...) {
						if len(row) != td.Arity {
							t.Fatalf("%s/%d: batch %d relation %s: row %v vs arity %d",
								shape, seed, bi, td.Rel, row, td.Arity)
						}
					}
					if r := sim.Relation(td.Rel); r != nil && r.Arity() != td.Arity {
						t.Fatalf("%s/%d: batch %d: arity %d declared for existing arity-%d relation %s",
							shape, seed, bi, td.Arity, r.Arity(), td.Rel)
					}
					totalInserts += len(td.Insert)
					totalDeletes += len(td.Delete)
					// Count deletes landing on live tuples before replaying
					// this TupleDelta (deletes apply before inserts).
					if r := sim.Relation(td.Rel); r != nil {
						before := r.Len()
						applyToSim(sim, []TupleDelta{{Rel: td.Rel, Arity: td.Arity, Delete: td.Delete}})
						landedDeletes += before - r.Len()
						applyToSim(sim, []TupleDelta{{Rel: td.Rel, Arity: td.Arity, Insert: td.Insert}})
					} else {
						applyToSim(sim, []TupleDelta{td})
					}
				}
			}
			// The replayed database must be internally consistent: every
			// relation's live view contains no tombstoned duplicates.
			for _, name := range sim.RelationNames() {
				r := sim.Relation(name)
				seen := map[string]bool{}
				for i := 0; i < r.Len(); i++ {
					k := ""
					for _, v := range r.Row(i) {
						k += sim.Dict().Name(v) + "\x00"
					}
					if seen[k] {
						t.Fatalf("%s/%d: replayed %s holds duplicate live tuple %q", shape, seed, name, k)
					}
					seen[k] = true
				}
			}
		}
	}
	if totalInserts == 0 || totalDeletes == 0 {
		t.Fatalf("script mix degenerate: %d inserts, %d deletes", totalInserts, totalDeletes)
	}
	// Intra-batch duplicate picks are the only legitimate misses; they are
	// rare, so the vast majority of scripted deletes must land.
	if landedDeletes*2 < totalDeletes {
		t.Fatalf("only %d of %d scripted deletes landed on live tuples", landedDeletes, totalDeletes)
	}
}
