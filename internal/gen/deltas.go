package gen

import (
	"fmt"
	"math/rand"

	"github.com/mqgo/metaquery/internal/relation"
)

// TupleDelta is one relation's scripted change: the seed-deterministic,
// engine-free mirror of engine.RelationDelta (internal/gen must not import
// the engine it is used to test). Deletes apply before inserts.
type TupleDelta struct {
	Rel    string
	Arity  int
	Insert [][]string
	Delete [][]string
}

// DeltaScript derives a deterministic sequence of delta batches for s: the
// same (seed, shape) pair always yields the same script. Each batch touches
// one or two relations with a mix of deletes of currently-live tuples,
// re-inserts of just-deleted tuples (exercising tombstone resurrection),
// inserts recombining domain constants, and inserts of fresh constants;
// occasionally a batch creates a new relation. The script is generated
// against a private simulation of s.DB — s itself is never mutated — so
// deletes in later batches target tuples that are genuinely present by then.
func DeltaScript(s *Scenario, batches int) [][]TupleDelta {
	rng := rand.New(rand.NewSource(s.Seed*1_000_003 + int64(hashName(s.Shape+"/deltas"))))
	sim := s.DB.Clone()
	script := make([][]TupleDelta, 0, batches)
	freshID := 0
	for b := 0; b < batches; b++ {
		names := sim.RelationNames()
		var batch []TupleDelta
		for picks := 1 + rng.Intn(2); picks > 0 && len(names) > 0; picks-- {
			name := names[rng.Intn(len(names))]
			r := sim.Relation(name)
			td := TupleDelta{Rel: name, Arity: r.Arity()}
			tuples := r.Tuples()

			for i := 0; i < rng.Intn(3) && len(tuples) > 0; i++ {
				row := tupleToStrings(sim, tuples[rng.Intn(len(tuples))])
				td.Delete = append(td.Delete, row)
				if rng.Intn(3) == 0 {
					// Same-batch resurrect: deletes apply first, so the
					// tuple survives through a tombstone round-trip.
					td.Insert = append(td.Insert, row)
				}
			}
			for i := 0; i < 1+rng.Intn(3); i++ {
				row := make([]string, td.Arity)
				for j := range row {
					if rng.Intn(3) > 0 && len(tuples) > 0 {
						src := tupleToStrings(sim, tuples[rng.Intn(len(tuples))])
						row[j] = src[rng.Intn(len(src))]
					} else {
						row[j] = fmt.Sprintf("dnew%d", freshID)
						freshID++
					}
				}
				td.Insert = append(td.Insert, row)
			}
			batch = append(batch, td)
		}
		if rng.Intn(4) == 0 {
			// Schema growth: a new relation the metaquery has never seen.
			td := TupleDelta{Rel: fmt.Sprintf("xnew%d", b), Arity: 1 + rng.Intn(3)}
			for i := 0; i < 1+rng.Intn(3); i++ {
				row := make([]string, td.Arity)
				for j := range row {
					row[j] = fmt.Sprintf("dnew%d", freshID)
					freshID++
				}
				td.Insert = append(td.Insert, row)
			}
			batch = append(batch, td)
		}
		applyToSim(sim, batch)
		script = append(script, batch)
	}
	return script
}

// tupleToStrings resolves a stored tuple back to constant names.
func tupleToStrings(db *relation.Database, t relation.Tuple) []string {
	row := make([]string, len(t))
	for i, v := range t {
		row[i] = db.Dict().Name(v)
	}
	return row
}

// applyToSim mirrors one batch onto the simulation database with plain
// relation operations (deletes before inserts, per TupleDelta).
func applyToSim(db *relation.Database, batch []TupleDelta) {
	for _, td := range batch {
		r := db.Relation(td.Rel)
		if r == nil {
			r = db.MustAddRelation(td.Rel, td.Arity)
		}
		for _, row := range td.Delete {
			tup := make(relation.Tuple, len(row))
			ok := true
			for i, c := range row {
				v, found := db.Dict().Lookup(c)
				if !found {
					ok = false
					break
				}
				tup[i] = v
			}
			if ok {
				r.Delete(tup)
			}
		}
		for _, row := range td.Insert {
			db.MustInsertNamed(td.Rel, row...)
		}
	}
}
