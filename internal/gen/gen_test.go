package gen

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
)

// Every shape must produce scenarios that validate for their instantiation
// type (pure metaqueries, ordinary atoms naming real relations) across many
// seeds; generation failures here would silently hollow out the harness.
func TestScenariosValidate(t *testing.T) {
	for _, shape := range Shapes() {
		for seed := int64(0); seed < 20; seed++ {
			s, err := NewScenario(seed, shape)
			if err != nil {
				t.Fatalf("%s/%d: %v", shape, seed, err)
			}
			if err := core.ValidateForType(s.DB, s.MQ, s.Type); err != nil {
				t.Errorf("%s/%d: generated scenario invalid: %v", shape, seed, err)
			}
			if !s.MQ.IsPure() {
				t.Errorf("%s/%d: generated metaquery %s is impure", shape, seed, s.MQ)
			}
			if s.DB.Size() == 0 {
				t.Errorf("%s/%d: generated database is empty", shape, seed)
			}
		}
	}
}

// The same (seed, shape) pair must be fully deterministic: identical
// metaquery text, thresholds, and database contents.
func TestScenarioDeterminism(t *testing.T) {
	for _, shape := range Shapes() {
		a, err := NewScenario(7, shape)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewScenario(7, shape)
		if err != nil {
			t.Fatal(err)
		}
		if a.MQ.String() != b.MQ.String() {
			t.Errorf("%s: metaquery differs across builds: %s vs %s", shape, a.MQ, b.MQ)
		}
		if a.Th != b.Th {
			t.Errorf("%s: thresholds differ across builds", shape)
		}
		if a.DB.Size() != b.DB.Size() || a.DB.NumRelations() != b.DB.NumRelations() {
			t.Errorf("%s: database differs across builds", shape)
		}
		for _, name := range a.DB.RelationNames() {
			ra, rb := a.DB.Relation(name), b.DB.Relation(name)
			if rb == nil || ra.Len() != rb.Len() || ra.Arity() != rb.Arity() {
				t.Fatalf("%s: relation %s differs across builds", shape, name)
			}
			for i := 0; i < ra.Len(); i++ {
				row := ra.Row(i)
				got := make([]string, len(row))
				for j, v := range row {
					got[j] = a.DB.Dict().Name(v)
				}
				tb := make([]string, len(row))
				for j, v := range rb.Row(i) {
					tb[j] = b.DB.Dict().Name(v)
				}
				for j := range got {
					if got[j] != tb[j] {
						t.Fatalf("%s: %s row %d differs: %v vs %v", shape, name, i, got, tb)
					}
				}
			}
		}
	}
}

// Shape axes must actually hold: cyclic shapes are cyclic, the others
// acyclic or at worst semi-acyclic per their construction.
func TestShapeAxes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cyc, err := NewScenario(seed, "t1-cycle")
		if err != nil {
			t.Fatal(err)
		}
		if cyc.MQ.IsAcyclic() {
			t.Errorf("t1-cycle/%d: expected a cyclic metaquery, got %s", seed, cyc.MQ)
		}
		rep, err := NewScenario(seed, "t0-repeat-pred")
		if err != nil {
			t.Fatal(err)
		}
		if got := len(rep.MQ.PredicateVars()); got != 3 { // head R + P1, P2 (P1 reused)
			t.Errorf("t0-repeat-pred/%d: expected 3 predicate variables, got %d in %s", seed, got, rep.MQ)
		}
		free, err := NewScenario(seed, "t2-head-free")
		if err != nil {
			t.Fatal(err)
		}
		headHasZ := false
		for _, v := range free.MQ.Head.Args {
			if v == "Z0" {
				headHasZ = true
			}
		}
		if !headHasZ {
			t.Errorf("t2-head-free/%d: head %s lacks the free variable", seed, free.MQ.Head)
		}
	}
}

// The constant-emitting shape must actually produce metaquery atoms with
// constant arguments (over enough seeds), and every emitted constant must
// parse back (scenario repros round-trip metaqueries as text).
func TestConstAtomShapeEmitsConstants(t *testing.T) {
	sawConst := false
	for seed := int64(0); seed < 30; seed++ {
		s, err := NewScenario(seed, "t0-const-atom")
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range s.MQ.Body {
			if l.PredVar {
				continue
			}
			for _, a := range l.Args {
				if core.IsConstName(a) {
					sawConst = true
				}
			}
		}
		back, err := core.Parse(s.MQ.String())
		if err != nil {
			t.Fatalf("t0-const-atom/%d: %q does not reparse: %v", seed, s.MQ, err)
		}
		if back.String() != s.MQ.String() {
			t.Errorf("t0-const-atom/%d: round-trip %q != %q", seed, back, s.MQ)
		}
	}
	if !sawConst {
		t.Error("t0-const-atom never emitted a constant argument across 30 seeds")
	}
}

// The arity-mix shape must emit one pattern per configured arity, under
// distinct predicate variables, and stay pure.
func TestArityMixShape(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := NewScenario(seed, "t1-arity-mix")
		if err != nil {
			t.Fatal(err)
		}
		var arities []int
		for _, l := range s.MQ.Body {
			arities = append(arities, l.Arity())
		}
		if len(arities) != 3 || arities[0] != 2 || arities[1] != 1 || arities[2] != 3 {
			t.Errorf("t1-arity-mix/%d: body arities %v, want [2 1 3] in %s", seed, arities, s.MQ)
		}
		if !s.MQ.IsPure() {
			t.Errorf("t1-arity-mix/%d: impure metaquery %s", seed, s.MQ)
		}
	}
}

// The empty-relation shape must keep the emptied relation in the schema
// with zero tuples, while the others stay populated.
func TestEmptyRelationShape(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := NewScenario(seed, "t2-empty-rel")
		if err != nil {
			t.Fatal(err)
		}
		names := s.DB.RelationNames()
		if len(names) != 3 {
			t.Fatalf("t2-empty-rel/%d: %d relations, want 3", seed, len(names))
		}
		last := s.DB.Relation(names[len(names)-1])
		if last.Len() != 0 {
			t.Errorf("t2-empty-rel/%d: last relation holds %d tuples, want 0", seed, last.Len())
		}
		if s.DB.Size() == 0 {
			t.Errorf("t2-empty-rel/%d: whole database empty", seed)
		}
	}
}

// Skewed draws must actually concentrate mass on low-numbered constants.
func TestSkewConcentrates(t *testing.T) {
	cfg := DBConfig{Domain: 10, Skew: 2}
	rng := rand.New(rand.NewSource(1))
	low := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if cfg.drawConst(rng, cfg.Skew) < 3 {
			low++
		}
	}
	// Uniform would put ~30% below 3; skew 2 concentrates well past half.
	if low < n/2 {
		t.Errorf("skewed draw put only %d/%d mass on the low constants", low, n)
	}
}

// A skew ramp must leave the first relation uniform and skew the last:
// under set semantics the heavy-hitter relation collapses to far fewer
// tuples than the uniform one.
func TestSkewRamp(t *testing.T) {
	cfg := DBConfig{Relations: 3, MinArity: 2, MaxArity: 2, MinTuples: 200, MaxTuples: 200,
		Domain: 50, Skew: 6, SkewRamp: true}
	db := cfg.Generate(rand.New(rand.NewSource(5)))
	first, last := db.Relation("r0").Len(), db.Relation("r2").Len()
	if last >= first {
		t.Errorf("skew ramp: r2 (full skew) has %d tuples, r0 (uniform) %d; want r2 far smaller", last, first)
	}
	if cfg.relSkew(0) != 0 || cfg.relSkew(2) != cfg.Skew {
		t.Errorf("relSkew endpoints: got %v and %v, want 0 and %v", cfg.relSkew(0), cfg.relSkew(2), cfg.Skew)
	}
}

func TestUnknownShape(t *testing.T) {
	if _, err := NewScenario(1, "no-such-shape"); err == nil {
		t.Fatal("expected an error for an unknown shape")
	}
}
