package relation

// This file implements the uniform row samplers behind the approximate
// (ε–δ) index decider in internal/approx: a full-cycle stride sampler that
// enumerates row indices in a pseudo-random order without replacement, and
// a classic reservoir sampler for one-shot fixed-size index samples. Both
// are deterministic functions of their seed, which is what lets diff repros
// and fuzz minimizations replay approximate decisions byte-identically.
//
// Samplers address rows through the RowSource interface, which both Table
// and Relation satisfy. Relation's Len/Row pair already skips tombstoned
// rows (epoch deletions route through the lazy live index), so a sampler
// over an extended epoch's relation draws from live tuples only — dead rows
// are unreachable by construction, not by rejection.

// RowSource is uniform random access to a set of rows: Len live rows,
// addressed 0..Len()-1 through Row. *Table implements it directly;
// *Relation implements it with tombstoned rows skipped.
type RowSource interface {
	Len() int
	Row(i int) Tuple
}

// Sampler enumerates the indices 0..n-1 in a seed-determined pseudo-random
// order, each exactly once (sampling without replacement): drawing all n
// indices visits the whole population, so an exhausted sampler has computed
// an exact — not estimated — fraction. The order is a full-cycle linear
// congruential walk over the next power of two ≥ n with out-of-range states
// skipped, so a Sampler holds no per-row memory and allocates nothing.
type Sampler struct {
	n     uint64
	mask  uint64
	mult  uint64
	inc   uint64
	state uint64
	drawn int
}

// NewSampler returns a sampler over the indices [0, n). Equal seeds yield
// equal orders; the zero seed is a valid (fixed) order of its own.
func NewSampler(n int, seed uint64) Sampler {
	size := uint64(2)
	for size < uint64(n) {
		size <<= 1
	}
	r := splitmix64(&seed)
	// Hull–Dobell: over a power-of-two modulus the walk is full-cycle iff
	// the increment is odd and the multiplier is ≡ 1 (mod 4).
	s := Sampler{
		n:    uint64(n),
		mask: size - 1,
		mult: (splitmix64(&seed) &^ 3) | 1,
		inc:  splitmix64(&seed) | 1,
	}
	s.state = r & s.mask
	return s
}

// Next returns the next sampled index, or -1 once all n indices have been
// drawn.
func (s *Sampler) Next() int {
	if s.drawn >= int(s.n) {
		return -1
	}
	for {
		v := s.state
		s.state = (s.mult*s.state + s.inc) & s.mask
		if v < s.n {
			s.drawn++
			return int(v)
		}
	}
}

// Drawn returns the number of indices handed out so far.
func (s *Sampler) Drawn() int { return s.drawn }

// ReservoirRows draws a uniform without-replacement sample of min(k, n) row
// indices from a population of n (Vitter's Algorithm R), into the scratch's
// sample buffer when sc is non-nil. The result is valid until the next
// ReservoirRows call on the same scratch. Prefer Sampler for sequential
// tests that may stop early; the reservoir is for one-shot samples whose
// size is known up front.
func (sc *Scratch) ReservoirRows(n, k int, seed uint64) []int {
	if k > n {
		k = n
	}
	var out []int
	if sc != nil {
		if cap(sc.sample) < k {
			sc.sample = make([]int, k)
		}
		out = sc.sample[:k]
	} else {
		out = make([]int, k)
	}
	for i := 0; i < k; i++ {
		out[i] = i
	}
	for i := k; i < n; i++ {
		// j uniform over [0, i]: replacement probability k/(i+1), the
		// classic reservoir invariant.
		j := int(splitmix64(&seed) % uint64(i+1))
		if j < k {
			out[j] = i
		}
	}
	return out
}

// splitmix64 advances *x by the SplitMix64 step and returns the mixed
// output: a cheap, well-distributed stream of 64-bit values from one seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
