package relation

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// JoinPlan is a compiled natural-join recipe for a fixed sequence of input
// schemas (an "atom-set shape"): the join order, the shared-column positions
// of every build/probe step and the output-column sources are all resolved
// at compile time, so executing the plan against concrete tables does no
// per-call schema analysis. Plans are stateless and safe for concurrent use;
// the engine caches one per hypertree-node shape and the core evaluator one
// per atom-set shape.
type JoinPlan struct {
	key     string
	widths  []int
	start   int
	steps   []joinStep
	outVars []string

	// costBased marks plans whose join order was chosen from cardinality
	// statistics (CompileJoinPlanOrder): Run trusts the order and skips the
	// dynamic skew fallback, which exists only for size-blind plans.
	costBased bool
}

// joinStep joins input table `input` into the accumulated result. accPos and
// inPos are the positions of the shared columns on the accumulated and input
// side; inExtra lists the input positions appended as new output columns.
type joinStep struct {
	input   int
	accPos  []int
	inPos   []int
	inExtra []int
	vars    []string // schema after this step
}

// PlanKey returns the cache key identifying the join shape of schemas: two
// atom sets with equal keys compile to identical plans.
func PlanKey(schemas [][]string) string {
	var b strings.Builder
	for i, s := range schemas {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strings.Join(s, ","))
	}
	return b.String()
}

// CompileJoinPlan builds the plan for joining tables with the given column
// schemas, in a deterministic connectivity-greedy order: start with the
// first schema, repeatedly pick the lowest-indexed remaining schema sharing
// a variable with the accumulated columns, falling back to the lowest-indexed
// remaining one (a cartesian step) when none does.
//
// The order is fixed at compile time from schemas alone — deliberately
// size-blind, since one plan serves every instantiation of the shape. Each
// step still hashes the smaller side at Run time, and Run falls back to the
// size-sorted dynamic order when the actual input cardinalities are heavily
// skewed (see Run), so the compiled order only ever decides near-uniform
// joins, where any order is fine.
func CompileJoinPlan(schemas [][]string) *JoinPlan {
	p := &JoinPlan{key: PlanKey(schemas), widths: make([]int, len(schemas))}
	for i, s := range schemas {
		p.widths[i] = len(s)
	}
	if len(schemas) == 0 {
		p.start = -1
		return p
	}
	acc := append([]string(nil), schemas[0]...)
	used := make([]bool, len(schemas))
	used[0] = true
	hasVar := func(vs []string, v string) bool {
		for _, x := range vs {
			if x == v {
				return true
			}
		}
		return false
	}
	for range schemas[1:] {
		pick := -1
		for i, s := range schemas {
			if used[i] {
				continue
			}
			connected := false
			for _, v := range s {
				if hasVar(acc, v) {
					connected = true
					break
				}
			}
			if connected {
				pick = i
				break
			}
			if pick < 0 {
				pick = i // lowest-indexed fallback; replaced by any connected schema
			}
		}
		used[pick] = true
		in := schemas[pick]
		step := joinStep{input: pick}
		for ip, v := range in {
			if ap := indexOf(acc, v); ap >= 0 {
				step.accPos = append(step.accPos, ap)
				step.inPos = append(step.inPos, ip)
			} else {
				step.inExtra = append(step.inExtra, ip)
				acc = append(acc, v)
			}
		}
		step.vars = append([]string(nil), acc...)
		p.steps = append(p.steps, step)
	}
	p.outVars = acc
	return p
}

// CompileJoinPlanOrder builds the plan joining the schemas in exactly the
// given order (a permutation of schema indices): the accumulated result
// starts at schemas[order[0]] and each following index is one build/probe
// step. It is the compilation half of cost-based planning — the order
// itself comes from the statistics layer (stats.Order), computed from the
// actual input cardinalities and per-column distinct counts, so the
// resulting plan is cached per (shape, order) pair and Run executes it
// without the dynamic skew fallback size-blind plans need.
func CompileJoinPlanOrder(schemas [][]string, order []int) *JoinPlan {
	if len(order) != len(schemas) {
		panic("relation: join order length does not match schema count")
	}
	p := &JoinPlan{key: orderKey(schemas, order), widths: make([]int, len(schemas)), costBased: true}
	for i, s := range schemas {
		p.widths[i] = len(s)
	}
	if len(schemas) == 0 {
		p.start = -1
		return p
	}
	p.start = order[0]
	acc := append([]string(nil), schemas[order[0]]...)
	for _, pick := range order[1:] {
		in := schemas[pick]
		step := joinStep{input: pick}
		for ip, v := range in {
			if ap := indexOf(acc, v); ap >= 0 {
				step.accPos = append(step.accPos, ap)
				step.inPos = append(step.inPos, ip)
			} else {
				step.inExtra = append(step.inExtra, ip)
				acc = append(acc, v)
			}
		}
		step.vars = append([]string(nil), acc...)
		p.steps = append(p.steps, step)
	}
	p.outVars = acc
	return p
}

// orderKey is PlanKey extended with the join order, the cache identity of
// an order-pinned plan. It builds the key in one pass with the size
// pre-grown — this runs per cost-ordered join, so it should cost one
// allocation, not a builder-growth cascade.
func orderKey(schemas [][]string, order []int) string {
	n := 1 + 4*len(order)
	for _, s := range schemas {
		for _, v := range s {
			n += len(v) + 1
		}
	}
	var b strings.Builder
	b.Grow(n)
	for i, s := range schemas {
		if i > 0 {
			b.WriteByte('|')
		}
		for j, v := range s {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v)
		}
	}
	b.WriteByte('#')
	for i, o := range order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(o))
	}
	return b.String()
}

func indexOf(vs []string, v string) int {
	for i, x := range vs {
		if x == v {
			return i
		}
	}
	return -1
}

// Key returns the plan's shape key (see PlanKey).
func (p *JoinPlan) Key() string { return p.key }

// OutVars returns the result schema of the plan. Callers must not modify it.
func (p *JoinPlan) OutVars() []string { return p.outVars }

// Run executes the plan over tables, which must match the compiled schemas
// positionally (same count, same column lists in order). For a single input
// the table itself is returned; callers must treat results as immutable.
// As soon as an intermediate is empty, the empty result is constructed
// directly over the final schema without running the remaining steps.
//
// When three or more inputs have heavily skewed cardinalities, Run falls
// back to the size-sorted dynamic greedy order (JoinTablesGreedy): the
// compiled order is size-blind, and on skewed instantiations of the shape
// it can build intermediates proportional to the largest input rather than
// the result. Either way the result's columns are OutVars in order (the
// fallback result is remapped), so callers may rely on the schema.
func (p *JoinPlan) Run(tables []*Table) (*Table, error) {
	if len(tables) != len(p.widths) {
		return nil, fmt.Errorf("relation: plan over %d tables run with %d", len(p.widths), len(tables))
	}
	for i, t := range tables {
		if len(t.vars) != p.widths[i] {
			return nil, fmt.Errorf("relation: plan input %d has %d columns, want %d", i, len(t.vars), p.widths[i])
		}
	}
	if p.start < 0 {
		return Unit(), nil
	}
	if !p.costBased && len(tables) > 2 && skewed(tables) {
		j := JoinTablesGreedy(tables)
		if !sameVars(j.vars, p.outVars) {
			j = j.Project(p.outVars) // same column set, plan-schema order
		}
		return j, nil
	}
	acc := tables[p.start]
	for _, st := range p.steps {
		if acc.Empty() {
			return NewTable(p.outVars), nil
		}
		acc = st.join(acc, tables[st.input])
	}
	return acc, nil
}

// skewed reports whether the input cardinalities differ enough that join
// order should be chosen from the actual sizes. With two inputs the order
// is irrelevant (hashJoin already hashes the smaller side), so this only
// gates plans of three or more tables.
func skewed(tables []*Table) bool {
	minL, maxL := tables[0].nrows, tables[0].nrows
	for _, t := range tables[1:] {
		if t.nrows < minL {
			minL = t.nrows
		}
		if t.nrows > maxL {
			maxL = t.nrows
		}
	}
	return maxL > 8*(minL+1)
}

// join executes one precompiled build/probe step: acc ⋈ in with the shared
// columns resolved at compile time, through the shared hashJoin loop.
func (st *joinStep) join(acc, in *Table) *Table {
	return hashJoin(acc, in, st.accPos, st.inPos, st.inExtra, st.vars)
}

// PlanCache memoizes compiled join plans by shape key. The zero value is not
// usable; construct with NewPlanCache. Safe for concurrent use.
type PlanCache struct {
	mu sync.RWMutex
	m  map[string]*JoinPlan
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{m: make(map[string]*JoinPlan)}
}

// For returns the compiled plan for schemas, compiling and caching it on
// first use.
func (pc *PlanCache) For(schemas [][]string) *JoinPlan {
	return pc.cached(PlanKey(schemas), func() *JoinPlan { return CompileJoinPlan(schemas) })
}

// ForOrder returns the compiled plan joining schemas in the given
// cost-chosen order, caching per (shape, order) pair: different
// instantiations of one shape may warrant different orders (the statistics
// differ per relation), and each distinct order compiles exactly once.
func (pc *PlanCache) ForOrder(schemas [][]string, order []int) *JoinPlan {
	return pc.cached(orderKey(schemas, order), func() *JoinPlan { return CompileJoinPlanOrder(schemas, order) })
}

// cached memoizes compile() under key.
func (pc *PlanCache) cached(key string, compile func() *JoinPlan) *JoinPlan {
	pc.mu.RLock()
	p, ok := pc.m[key]
	pc.mu.RUnlock()
	if ok {
		return p
	}
	p = compile()
	pc.mu.Lock()
	if prev, ok := pc.m[key]; ok {
		p = prev // another goroutine won the race; keep one canonical plan
	} else {
		pc.m[key] = p
	}
	pc.mu.Unlock()
	return p
}
