package relation

import (
	"testing"
)

// FuzzJoin differentially tests the hash-join operators against a
// quadratic nested-loop reference on fuzzer-shaped table pairs: arbitrary
// arities (0..4), arbitrary column overlap (including none — the cartesian
// cases — and full), repeated values, and asymmetric sizes that flip the
// build/probe sides. NaturalJoin, Semijoin, AntiSemijoin and SemijoinCount
// must all agree with the reference exactly.
//
// Run with: go test -fuzz=FuzzJoin ./internal/relation
func FuzzJoin(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 2, 1, 0, 1, 2, 3, 0xFF, 1, 2, 3, 4})
	f.Add([]byte{1, 1, 0, 5, 5, 0xFF, 5, 6})
	f.Add([]byte{3, 2, 2, 1, 2, 3, 4, 5, 6, 0xFF, 9, 9, 1, 2})
	f.Add([]byte{0, 0, 0, 0xFF})
	f.Add([]byte{4, 4, 4, 1, 1, 1, 1, 0xFF, 1, 1, 1, 1, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		left, right := decodeTablePair(data)
		checkJoinAgainstReference(t, left, right)
		checkJoinAgainstReference(t, right, left)
	})
}

// columnPool names the columns tables draw from; overlap between the two
// tables is decided by the decoded offset.
var columnPool = []string{"A", "B", "C", "D", "E", "F", "G", "H"}

// decodeTablePair deterministically shapes two tables from fuzz bytes:
// byte 0 and 1 pick the arities (0..4), byte 2 the column offset of the
// right table (overlap 0..arity), then value bytes fill rows — first the
// left table, then, after a 0xFF separator, the right. Values are folded
// into a tiny domain so joins actually match.
func decodeTablePair(data []byte) (*Table, *Table) {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	n1 := int(at(0)) % 5
	n2 := int(at(1)) % 5
	off := 0
	if n1 > 0 {
		off = int(at(2)) % (n1 + 1)
	}
	if off+n2 > len(columnPool) {
		off = len(columnPool) - n2
	}
	left := NewTable(columnPool[:n1])
	right := NewTable(columnPool[off : off+n2])

	i := 3
	fill := func(t *Table, cols int) {
		row := make(Tuple, cols)
		for i < len(data) && data[i] != 0xFF {
			for c := 0; c < cols; c++ {
				row[c] = Value(at(i) % 4)
				i++
			}
			t.Add(row)
			if cols == 0 {
				break // a zero-column table holds at most the empty tuple
			}
		}
	}
	fill(left, n1)
	if i < len(data) && data[i] == 0xFF {
		i++
	}
	fill(right, n2)
	return left, right
}

// checkJoinAgainstReference compares every join operator on (a, b) with the
// nested-loop reference.
func checkJoinAgainstReference(t *testing.T, a, b *Table) {
	t.Helper()
	wantJoin := refNaturalJoin(a, b)
	gotJoin := a.NaturalJoin(b)
	if !gotJoin.EqualSet(wantJoin) {
		t.Fatalf("NaturalJoin mismatch:\n a=%v\n b=%v\n got=%v\n want=%v", a, b, gotJoin, wantJoin)
	}
	wantSemi := refSemijoin(a, b, true)
	gotSemi := a.Semijoin(b)
	if !gotSemi.EqualSet(wantSemi) {
		t.Fatalf("Semijoin mismatch:\n a=%v\n b=%v\n got=%v\n want=%v", a, b, gotSemi, wantSemi)
	}
	if got, want := a.SemijoinCount(b), wantSemi.Len(); got != want {
		t.Fatalf("SemijoinCount = %d, reference semijoin has %d rows (a=%v b=%v)", got, want, a, b)
	}
	wantAnti := refSemijoin(a, b, false)
	gotAnti := a.AntiSemijoin(b)
	if !gotAnti.EqualSet(wantAnti) {
		t.Fatalf("AntiSemijoin mismatch:\n a=%v\n b=%v\n got=%v\n want=%v", a, b, gotAnti, wantAnti)
	}
	if gotSemi.Len()+gotAnti.Len() != a.Len() {
		t.Fatalf("Semijoin (%d) + AntiSemijoin (%d) do not partition a (%d rows)", gotSemi.Len(), gotAnti.Len(), a.Len())
	}
}

// refNaturalJoin is the O(n*m) nested-loop natural join: output columns are
// a's followed by b's extras; row pairs must agree on every shared column.
func refNaturalJoin(a, b *Table) *Table {
	outVars := append([]string(nil), a.Vars()...)
	var bExtra []int
	for i, v := range b.Vars() {
		if a.Pos(v) < 0 {
			outVars = append(outVars, v)
			bExtra = append(bExtra, i)
		}
	}
	out := NewTable(outVars)
	for i := 0; i < a.Len(); i++ {
		ra := a.Row(i)
		for j := 0; j < b.Len(); j++ {
			rb := b.Row(j)
			ok := true
			for bi, v := range b.Vars() {
				if p := a.Pos(v); p >= 0 && ra[p] != rb[bi] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			row := make(Tuple, 0, len(outVars))
			row = append(row, ra...)
			for _, p := range bExtra {
				row = append(row, rb[p])
			}
			out.Add(row)
		}
	}
	return out
}

// refSemijoin keeps (keep=true) or drops (keep=false) the rows of a that
// match at least one row of b on the shared columns; with no shared columns
// a row "matches" iff b is non-empty.
func refSemijoin(a, b *Table, keep bool) *Table {
	out := NewTable(a.Vars())
	for i := 0; i < a.Len(); i++ {
		ra := a.Row(i)
		matched := false
		for j := 0; j < b.Len() && !matched; j++ {
			rb := b.Row(j)
			ok := true
			for bi, v := range b.Vars() {
				if p := a.Pos(v); p >= 0 && ra[p] != rb[bi] {
					ok = false
					break
				}
			}
			matched = ok
		}
		if matched == keep {
			out.Add(ra)
		}
	}
	return out
}
