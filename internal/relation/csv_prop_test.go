package relation_test

// Property test: SaveCSVDir / LoadCSVDir round-trips generated databases
// exactly — schemas (names and arities, including empty relations), row
// sets, and constant values, including CSV-hostile constants with embedded
// spaces, commas, quotes and non-ASCII runes. The file lives in an external
// test package so it can generate databases with internal/gen.
//
// Loader conventions that bound the property (both documented on
// LoadCSVDir): fields are whitespace-trimmed, and a first field starting
// with '#' marks a comment row. The generators therefore never produce
// constants with leading/trailing whitespace or a leading '#'.

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
)

// snapshot renders a database as name -> sorted row-text set, resolving
// values through the dictionary so two databases with different interning
// orders compare equal iff their contents are equal.
func snapshot(t *testing.T, db *relation.Database) map[string]map[string]int {
	t.Helper()
	out := make(map[string]map[string]int)
	dict := db.Dict()
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		rows := make(map[string]int)
		for i := 0; i < rel.Len(); i++ {
			row := rel.Row(i)
			key := ""
			for _, v := range row {
				s := dict.Name(v)
				key += string(rune(len(s))) + s // length-prefixed, injective
			}
			rows[key]++
		}
		out[name] = rows
	}
	return out
}

func assertSameDB(t *testing.T, got, want *relation.Database, label string) {
	t.Helper()
	if got.NumRelations() != want.NumRelations() {
		t.Fatalf("%s: %d relations, want %d", label, got.NumRelations(), want.NumRelations())
	}
	for _, name := range want.RelationNames() {
		gr, wr := got.Relation(name), want.Relation(name)
		if gr == nil {
			t.Fatalf("%s: relation %s lost", label, name)
		}
		if gr.Arity() != wr.Arity() {
			t.Errorf("%s: relation %s arity %d, want %d", label, name, gr.Arity(), wr.Arity())
		}
		if gr.Len() != wr.Len() {
			t.Errorf("%s: relation %s has %d rows, want %d", label, name, gr.Len(), wr.Len())
		}
	}
	gs, ws := snapshot(t, got), snapshot(t, want)
	for name, wantRows := range ws {
		gotRows := gs[name]
		for k, n := range wantRows {
			if gotRows[k] != n {
				t.Errorf("%s: relation %s row sets differ", label, name)
				break
			}
		}
	}
}

// Plain and fancy generated databases across many seeds, arities 1..4,
// skewed and uniform, must round-trip exactly.
func TestCSVRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, fancy := range []bool{false, true} {
			cfg := gen.DBConfig{
				Relations: 3,
				MinArity:  1, MaxArity: 4,
				MinTuples: 0, MaxTuples: 8,
				Domain:      6,
				Skew:        float64(seed%3) * 0.8,
				FancyConsts: fancy,
			}
			rng := rand.New(rand.NewSource(seed))
			db := cfg.Generate(rng)
			dir := t.TempDir()
			if err := relation.SaveCSVDir(db, dir); err != nil {
				t.Fatal(err)
			}
			back, err := relation.LoadCSVDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			label := "seed " + string(rune('0'+seed))
			if fancy {
				label += " fancy"
			}
			assertSameDB(t, back, db, label)
			// Idempotence: a second save/load cycle changes nothing.
			dir2 := t.TempDir()
			if err := relation.SaveCSVDir(back, dir2); err != nil {
				t.Fatal(err)
			}
			again, err := relation.LoadCSVDir(dir2)
			if err != nil {
				t.Fatal(err)
			}
			assertSameDB(t, again, db, label+" (second cycle)")
		}
	}
}

// Empty relations round-trip with their arity preserved via the loader's
// "# arity=N" comment convention.
func TestCSVRoundTripEmptyRelation(t *testing.T) {
	db := relation.NewDatabase()
	db.MustAddRelation("empty3", 3)
	db.MustInsertNamed("data", "a", "b")
	dir := t.TempDir()
	if err := relation.SaveCSVDir(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := relation.LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := back.Relation("empty3")
	if r == nil {
		t.Fatal("empty relation lost in round-trip")
	}
	if r.Arity() != 3 || r.Len() != 0 {
		t.Errorf("empty relation came back as arity %d with %d rows, want arity 3, 0 rows", r.Arity(), r.Len())
	}
}
