package relation

import (
	"testing"
)

func TestDictIntern(t *testing.T) {
	d := newDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	a2 := d.Intern("alpha")
	if a != a2 {
		t.Errorf("re-interning gave %d then %d", a, a2)
	}
	if a == b {
		t.Error("distinct constants interned equal")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Error("Name round-trip failed")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup found missing constant")
	}
	if v, ok := d.Lookup("beta"); !ok || v != b {
		t.Error("Lookup failed for interned constant")
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation("p", 2)
	if !r.Insert(Tuple{1, 2}) {
		t.Error("first insert reported duplicate")
	}
	if r.Insert(Tuple{1, 2}) {
		t.Error("duplicate insert reported new")
	}
	if !r.Insert(Tuple{2, 1}) {
		t.Error("reversed tuple reported duplicate")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{3, 3}) {
		t.Error("Contains wrong")
	}
	if r.Contains(Tuple{1}) {
		t.Error("Contains accepted wrong arity")
	}
}

func TestRelationInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on arity mismatch")
		}
	}()
	NewRelation("p", 2).Insert(Tuple{1})
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation("p", 2)
	tup := Tuple{1, 2}
	r.Insert(tup)
	tup[0] = 99
	if !r.Contains(Tuple{1, 2}) {
		t.Error("relation affected by caller mutation")
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("e", "a", "b")
	db.MustInsertNamed("e", "b", "c")
	db.MustInsertNamed("n", "a")

	if db.NumRelations() != 2 {
		t.Errorf("NumRelations = %d", db.NumRelations())
	}
	if got := db.RelationNames(); len(got) != 2 || got[0] != "e" || got[1] != "n" {
		t.Errorf("RelationNames = %v", got)
	}
	if db.Relation("e").Len() != 2 {
		t.Errorf("e has %d tuples", db.Relation("e").Len())
	}
	if db.Size() != 3 {
		t.Errorf("Size = %d", db.Size())
	}
	if db.MaxRelationSize() != 2 {
		t.Errorf("MaxRelationSize = %d", db.MaxRelationSize())
	}
	if db.Relation("missing") != nil {
		t.Error("missing relation non-nil")
	}
}

func TestDatabaseArityConflict(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	if err := db.InsertNamed("p", "a"); err == nil {
		t.Error("arity conflict not detected")
	}
	if _, err := db.AddRelation("p", 3); err == nil {
		t.Error("AddRelation arity conflict not detected")
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("p", "x", "y")
	c := db.Clone()
	c.MustInsertNamed("p", "y", "z")
	if db.Relation("p").Len() != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.Relation("p").Len() != 2 {
		t.Error("clone missing insert")
	}
	// Interning must be preserved: the same constant maps to the same Value.
	v1, _ := db.Dict().Lookup("x")
	v2, _ := c.Dict().Lookup("x")
	if v1 != v2 {
		t.Error("clone re-interned constants differently")
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("p", "X", "Y", "X")
	vs := a.Vars()
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Errorf("Vars = %v", vs)
	}
	if a.String() != "p(X,Y,X)" {
		t.Errorf("String = %q", a.String())
	}
	mixed := Atom{Pred: "q", Terms: []Term{V("X"), C(3)}}
	if got := mixed.Vars(); len(got) != 1 || got[0] != "X" {
		t.Errorf("mixed Vars = %v", got)
	}
}

func TestAtomsVars(t *testing.T) {
	atoms := []Atom{NewAtom("p", "X", "Y"), NewAtom("q", "Y", "Z")}
	vs := AtomsVars(atoms)
	want := []string{"X", "Y", "Z"}
	if len(vs) != len(want) {
		t.Fatalf("AtomsVars = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("AtomsVars[%d] = %q, want %q", i, vs[i], want[i])
		}
	}
}
