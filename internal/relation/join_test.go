package relation

import (
	"os"
	"path/filepath"
	"testing"
)

// chainDB builds p = {(1,10),(2,20)}, q = {(10,100),(20,200),(99,999)}.
func chainDB() *Database {
	db := NewDatabase()
	db.MustInsertNamed("p", "1", "10")
	db.MustInsertNamed("p", "2", "20")
	db.MustInsertNamed("q", "10", "100")
	db.MustInsertNamed("q", "20", "200")
	db.MustInsertNamed("q", "99", "999")
	return db
}

func TestFromAtomBasic(t *testing.T) {
	db := chainDB()
	tab, err := FromAtom(db, NewAtom("p", "X", "Y"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Errorf("p(X,Y) has %d rows", tab.Len())
	}
	if got := tab.Vars(); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Errorf("vars = %v", got)
	}
}

func TestFromAtomRepeatedVariable(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("r", "a", "a")
	db.MustInsertNamed("r", "a", "b")
	db.MustInsertNamed("r", "c", "c")
	tab, err := FromAtom(db, NewAtom("r", "X", "X"))
	if err != nil {
		t.Fatal(err)
	}
	// Only (a,a) and (c,c) satisfy r(X,X); result has one column X.
	if tab.Len() != 2 || len(tab.Vars()) != 1 {
		t.Errorf("r(X,X) = %v", tab)
	}
}

func TestFromAtomConstant(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("r", "a", "b")
	db.MustInsertNamed("r", "c", "d")
	av, _ := db.Dict().Lookup("a")
	atom := Atom{Pred: "r", Terms: []Term{C(av), V("Y")}}
	tab, err := FromAtom(db, atom)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Errorf("r(a,Y) = %v", tab)
	}
	bv, _ := db.Dict().Lookup("b")
	if !tab.Contains(Tuple{bv}) {
		t.Errorf("r(a,Y) missing b: %v", tab)
	}
}

func TestFromAtomErrors(t *testing.T) {
	db := chainDB()
	if _, err := FromAtom(db, NewAtom("missing", "X")); err == nil {
		t.Error("missing relation accepted")
	}
	if _, err := FromAtom(db, NewAtom("p", "X")); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestJoinAtomsChain(t *testing.T) {
	db := chainDB()
	j, err := JoinAtoms(db, []Atom{NewAtom("p", "X", "Y"), NewAtom("q", "Y", "Z")})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("chain join = %v", j)
	}
	// Check one expected tuple: X=1, Y=10, Z=100 (in interned values).
	v1, _ := db.Dict().Lookup("1")
	v10, _ := db.Dict().Lookup("10")
	v100, _ := db.Dict().Lookup("100")
	found := false
	xi, yi, zi := j.Pos("X"), j.Pos("Y"), j.Pos("Z")
	for _, tup := range j.Tuples() {
		if tup[xi] == v1 && tup[yi] == v10 && tup[zi] == v100 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected tuple missing from %v", j)
	}
}

func TestJoinAtomsEmptyList(t *testing.T) {
	db := chainDB()
	j, err := JoinAtoms(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || len(j.Vars()) != 0 {
		t.Errorf("J(∅) = %v, want unit", j)
	}
}

func TestJoinAtomsEmptyResultKeepsSchema(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("a", "1")
	db.MustAddRelation("b", 1) // empty relation
	db.MustInsertNamed("c", "1")
	j, err := JoinAtoms(db, []Atom{NewAtom("a", "X"), NewAtom("b", "Y"), NewAtom("c", "Z")})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("join with empty relation non-empty: %v", j)
	}
	if len(j.Vars()) != 3 {
		t.Errorf("empty join lost schema: %v", j.Vars())
	}
}

func TestJoinAtomsCartesianComponents(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("a", "1")
	db.MustInsertNamed("a", "2")
	db.MustInsertNamed("b", "7")
	db.MustInsertNamed("b", "8")
	db.MustInsertNamed("b", "9")
	j, err := JoinAtoms(db, []Atom{NewAtom("a", "X"), NewAtom("b", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 6 {
		t.Errorf("cartesian join = %d rows, want 6", j.Len())
	}
}

func TestJoinAtomsSharedAtomTwice(t *testing.T) {
	db := chainDB()
	// Joining the same atom twice is idempotent.
	j, err := JoinAtoms(db, []Atom{NewAtom("p", "X", "Y"), NewAtom("p", "X", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Errorf("idempotent join = %d rows", j.Len())
	}
}

func TestJoinAtomsTriangle(t *testing.T) {
	// Triangle query on a small graph: e(X,Y), e(Y,Z), e(Z,X).
	db := NewDatabase()
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "d"}}
	for _, e := range edges {
		db.MustInsertNamed("e", e[0], e[1])
	}
	j, err := JoinAtoms(db, []Atom{
		NewAtom("e", "X", "Y"), NewAtom("e", "Y", "Z"), NewAtom("e", "Z", "X"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The only triangle is a->b->c->a, giving 3 rotations.
	if j.Len() != 3 {
		t.Errorf("triangle join = %d rows, want 3: %v", j.Len(), j)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := chainDB()
	if err := SaveCSVDir(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRelations() != db.NumRelations() {
		t.Fatalf("round trip lost relations: %d vs %d", back.NumRelations(), db.NumRelations())
	}
	for _, name := range db.RelationNames() {
		orig, got := db.Relation(name), back.Relation(name)
		if got == nil || got.Len() != orig.Len() || got.Arity() != orig.Arity() {
			t.Errorf("relation %s mismatched after round trip", name)
		}
	}
	// Tuple-level check via names.
	for _, name := range db.RelationNames() {
		for _, tup := range db.Relation(name).Tuples() {
			names := make([]string, len(tup))
			for i, v := range tup {
				names[i] = db.Dict().Name(v)
			}
			gt := make(Tuple, len(names))
			for i, s := range names {
				v, ok := back.Dict().Lookup(s)
				if !ok {
					t.Fatalf("constant %q lost", s)
				}
				gt[i] = v
			}
			if !back.Relation(name).Contains(gt) {
				t.Errorf("tuple %v of %s lost in round trip", names, name)
			}
		}
	}
}

func TestLoadCSVComments(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "r.csv"), []byte("# comment\na,b\na,b\nc,d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("r").Len() != 2 {
		t.Errorf("r has %d tuples, want 2 (dedup + comment skip)", db.Relation("r").Len())
	}
}

func TestLoadCSVRaggedRows(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "r.csv"), []byte("a,b\nc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSVDir(dir); err == nil {
		t.Error("ragged rows accepted")
	}
}
