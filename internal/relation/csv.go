package relation

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadCSVDir loads every *.csv file in dir as a relation whose name is the
// file name without extension. Each CSV row is a tuple of constants; the
// arity is fixed by the first row of each file. Lines whose first field
// starts with '#' are skipped. Duplicate rows collapse (set semantics).
func LoadCSVDir(dir string) (*Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("relation: reading %s: %w", dir, err)
	}
	db := NewDatabase()
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if err := loadCSVFile(db, filepath.Join(dir, name), strings.TrimSuffix(name, ".csv")); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func loadCSVFile(db *Database, path, relName string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	r.TrimLeadingSpace = true
	rows, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("relation: parsing %s: %w", path, err)
	}
	var rel *Relation
	for i, row := range rows {
		if len(row) == 0 || (len(row) > 0 && strings.HasPrefix(row[0], "#")) {
			// "# arity=N" (written by SaveCSVDir for empty relations) fixes
			// the arity that an empty file could not otherwise convey.
			if rel == nil && len(row) == 1 {
				if n, ok := parseArityComment(row[0]); ok {
					rel, err = db.AddRelation(relName, n)
					if err != nil {
						return err
					}
				}
			}
			continue
		}
		if rel == nil {
			rel, err = db.AddRelation(relName, len(row))
			if err != nil {
				return err
			}
		}
		if len(row) != rel.Arity() {
			return fmt.Errorf("relation: %s row %d has %d fields, expected %d", path, i+1, len(row), rel.Arity())
		}
		t := make(Tuple, len(row))
		for j, field := range row {
			t[j] = db.dict.Intern(strings.TrimSpace(field))
		}
		rel.Insert(t)
	}
	if rel == nil {
		// Empty file without an arity comment: create a zero-tuple relation
		// of arity 1 so the relation name exists (arity cannot be inferred;
		// 1 is the minimum).
		_, err = db.AddRelation(relName, 1)
	}
	return err
}

// parseArityComment recognizes the "# arity=N" comment row.
func parseArityComment(field string) (int, bool) {
	rest, ok := strings.CutPrefix(field, "# arity=")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// SaveCSVDir writes every relation of db as <name>.csv under dir, creating
// dir if necessary. Tuples are written in sorted order for reproducibility.
func SaveCSVDir(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("relation: %w", err)
		}
		w := csv.NewWriter(f)
		if rel.Len() == 0 {
			// An empty relation's arity is not recoverable from its rows;
			// record it in a comment the loader understands.
			if err := w.Write([]string{fmt.Sprintf("# arity=%d", rel.Arity())}); err != nil {
				f.Close()
				return fmt.Errorf("relation: writing %s: %w", name, err)
			}
		}
		tuples := rel.Tuples() // fresh header slice; safe to sort in place
		sort.Slice(tuples, func(i, j int) bool {
			a, b := tuples[i], tuples[j]
			for k := range a {
				if a[k] != b[k] {
					return db.dict.Name(a[k]) < db.dict.Name(b[k])
				}
			}
			return false
		})
		for _, t := range tuples {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = db.dict.Name(v)
			}
			if err := w.Write(row); err != nil {
				f.Close()
				return fmt.Errorf("relation: writing %s: %w", name, err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return fmt.Errorf("relation: writing %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("relation: %w", err)
		}
	}
	return nil
}
