package relation

// This file implements the columnar storage substrate shared by Relation and
// Table: tuples live in a single flat []Value arena (row i occupies
// data[i*width : (i+1)*width]) and set semantics are enforced by an
// open-addressing hash set of row ids keyed by an integer FNV-1a hash of the
// row's values. Nothing here materializes strings or clones tuples: Add
// copies the incoming values straight into the arena and the hash set stores
// 4-byte row references.

import "math"

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashValues is FNV-1a over the 32-bit words of vals.
func hashValues(vals []Value) uint64 {
	h := fnvOffset64
	for _, v := range vals {
		h ^= uint64(uint32(v))
		h *= fnvPrime64
	}
	return h
}

// hashAt hashes row restricted to positions pos; it must agree with
// hashValues on the projected tuple.
func hashAt(row Tuple, pos []int) uint64 {
	h := fnvOffset64
	for _, p := range pos {
		h ^= uint64(uint32(row[p]))
		h *= fnvPrime64
	}
	return h
}

// colStore is the arena + row hash set. The zero value is a usable empty
// store of the width set by init.
type colStore struct {
	width int
	data  []Value // row-major arena; nrows * width values
	nrows int

	// slots is the open-addressing row set: 0 marks an empty slot, any
	// other value s references row s-1. len(slots) is a power of two.
	slots []int32
	mask  uint64
}

// init sets the row width and preallocates for capRows rows.
func (c *colStore) init(width, capRows int) {
	c.width = width
	if capRows > 0 {
		c.data = make([]Value, 0, capRows*width)
		c.growSlots(slotsFor(capRows))
	}
}

// slotsFor returns the power-of-two slot count that keeps n rows under the
// 3/4 load factor.
func slotsFor(n int) int {
	size := 8
	for size*3 < n*4 {
		size *= 2
	}
	return size
}

func (c *colStore) growSlots(size int) {
	c.slots = make([]int32, size)
	c.mask = uint64(size - 1)
	for r := 0; r < c.nrows; r++ {
		c.insertSlot(hashValues(c.row(r)), int32(r+1))
	}
}

// insertSlot places ref at the first free slot of its probe sequence.
func (c *colStore) insertSlot(h uint64, ref int32) {
	i := h & c.mask
	for c.slots[i] != 0 {
		i = (i + 1) & c.mask
	}
	c.slots[i] = ref
}

// row returns row r as a slice into the arena. The caller must not modify
// it. Appending rows never mutates previously returned slices (the arena is
// append-only), so held rows stay valid across later adds.
func (c *colStore) row(r int) Tuple {
	return c.data[r*c.width : r*c.width+c.width : r*c.width+c.width]
}

func (c *colStore) rowEqual(r int, tup Tuple) bool {
	row := c.data[r*c.width : r*c.width+c.width]
	for k := range row {
		if row[k] != tup[k] {
			return false
		}
	}
	return true
}

// add inserts tup if absent and reports whether it was new. len(tup) must
// equal the store width.
func (c *colStore) add(tup Tuple) bool {
	if c.slots == nil {
		c.growSlots(8)
	}
	c.checkRef()
	h := hashValues(tup)
	i := h & c.mask
	for {
		s := c.slots[i]
		if s == 0 {
			break
		}
		if c.rowEqual(int(s-1), tup) {
			return false
		}
		i = (i + 1) & c.mask
	}
	c.data = append(c.data, tup...)
	c.nrows++
	c.slots[i] = int32(c.nrows)
	if c.nrows*4 >= len(c.slots)*3 {
		c.growSlots(len(c.slots) * 2)
	}
	return true
}

// addUnique appends tup without a membership probe. It is the fast path for
// operators whose output is guaranteed duplicate-free (natural join and
// semijoin of set-semantics inputs); the hash set is still maintained so the
// table supports Contains and further Adds.
func (c *colStore) addUnique(tup Tuple) {
	if c.slots == nil {
		c.growSlots(8)
	}
	c.checkRef()
	c.data = append(c.data, tup...)
	c.nrows++
	c.insertSlot(hashValues(tup), int32(c.nrows))
	if c.nrows*4 >= len(c.slots)*3 {
		c.growSlots(len(c.slots) * 2)
	}
}

// checkRef fails loudly when the next row id would overflow the int32 slot
// references, instead of silently corrupting set membership.
func (c *colStore) checkRef() {
	if c.nrows >= math.MaxInt32 {
		panic("relation: table exceeds 2^31-1 rows")
	}
}

// contains reports whether tup is a row of the store.
func (c *colStore) contains(tup Tuple) bool {
	return c.find(tup) >= 0
}

// find returns the physical row id holding tup, or -1 when absent. Rows a
// Relation has tombstoned are still found (their slot entries remain), so
// callers distinguishing live membership check the tombstone state.
func (c *colStore) find(tup Tuple) int {
	if c.nrows == 0 {
		return -1
	}
	h := hashValues(tup)
	i := h & c.mask
	for {
		s := c.slots[i]
		if s == 0 {
			return -1
		}
		if c.rowEqual(int(s-1), tup) {
			return int(s - 1)
		}
		i = (i + 1) & c.mask
	}
}

// oversized reports whether the store's preallocated storage greatly
// exceeds what its rows need — the situation after a selective FromAtom or
// Project preallocated for its input cardinality.
func (c *colStore) oversized() bool {
	return cap(c.data) > 2*len(c.data)+64 || len(c.slots) > 4*slotsFor(c.nrows)
}

// compactFrom makes c an exactly-sized copy of src.
func (c *colStore) compactFrom(src *colStore) {
	c.width = src.width
	c.nrows = src.nrows
	c.data = append(make([]Value, 0, len(src.data)), src.data...)
	c.growSlots(slotsFor(src.nrows))
}

// cloneFrom makes c a deep copy of src.
func (c *colStore) cloneFrom(src *colStore) {
	c.width = src.width
	c.nrows = src.nrows
	c.data = append([]Value(nil), src.data...)
	c.mask = src.mask
	if src.slots != nil {
		c.slots = append([]int32(nil), src.slots...)
	}
}

// headers materializes the []Tuple view of the store: one slice header per
// row, all pointing into the arena. One allocation, no value copies.
func (c *colStore) headers() []Tuple {
	out := make([]Tuple, c.nrows)
	for r := range out {
		out[r] = c.row(r)
	}
	return out
}

// chainIndex is a hash-chained row index over one table's rows projected to
// a fixed column list: heads[h&mask] links the first row whose projection
// hashes to h, next[r] links the following one. It is the build side of the
// integer-keyed build/probe join operators. Chains may mix rows with equal
// hashes but different keys; probers re-check key equality per row.
type chainIndex struct {
	heads []int32 // 0 = end of chain, else rowID+1
	next  []int32
	mask  uint64
}

// buildChainIndex indexes all rows of c on positions pos.
func buildChainIndex(c *colStore, pos []int) chainIndex {
	size := slotsFor(c.nrows)
	ix := chainIndex{
		heads: make([]int32, size),
		next:  make([]int32, c.nrows),
		mask:  uint64(size - 1),
	}
	for r := 0; r < c.nrows; r++ {
		h := hashAt(c.row(r), pos) & ix.mask
		ix.next[r] = ix.heads[h]
		ix.heads[h] = int32(r + 1)
	}
	return ix
}

// first returns the head of the chain for hash h (0 when empty).
func (ix *chainIndex) first(h uint64) int32 { return ix.heads[h&ix.mask] }

// equalAt reports whether a[apos[k]] == b[bpos[k]] for all k.
func equalAt(a Tuple, apos []int, b Tuple, bpos []int) bool {
	for k, p := range apos {
		if a[p] != b[bpos[k]] {
			return false
		}
	}
	return true
}
