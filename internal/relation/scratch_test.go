package relation

import (
	"math/rand"
	"testing"
)

// TestScratchOperatorEquivalence is the scratch layer's core contract:
// SemijoinS, SemijoinCountS and ProjectS through one continuously reused
// Scratch produce exactly the rows of their allocating counterparts, on
// random table pairs spanning empty inputs, no shared columns, full
// overlap and heavy duplication.
func TestScratchOperatorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sc := NewScratch()
	shapes := []struct {
		tVars, uVars []string
	}{
		{[]string{"X", "Y"}, []string{"Y", "Z"}},
		{[]string{"X", "Y"}, []string{"X", "Y"}},
		{[]string{"X", "Y"}, []string{"Z", "W"}},
		{[]string{"X", "Y", "Z"}, []string{"Y"}},
	}
	for round := 0; round < 30; round++ {
		shape := shapes[round%len(shapes)]
		domain := 1 + rng.Intn(12)
		a := randomTable(rng, shape.tVars, domain, rng.Intn(200))
		b := randomTable(rng, shape.uVars, domain, rng.Intn(200))

		plain := a.Semijoin(b)
		pooled := a.SemijoinS(b, sc)
		if !plain.EqualSet(pooled) {
			t.Fatalf("round %d %v⋉%v: SemijoinS %d rows, Semijoin %d", round, shape.tVars, shape.uVars, pooled.Len(), plain.Len())
		}
		if wantN, gotN := a.SemijoinCount(b), a.SemijoinCountS(b, sc); wantN != gotN {
			t.Fatalf("round %d: SemijoinCountS = %d, SemijoinCount = %d", round, gotN, wantN)
		}
		proj := shape.tVars[:1+rng.Intn(len(shape.tVars))]
		plainP := a.Project(proj)
		pooledP := a.ProjectS(proj, sc)
		if !plainP.EqualSet(pooledP) {
			t.Fatalf("round %d π%v: ProjectS %d rows, Project %d", round, proj, pooledP.Len(), plainP.Len())
		}
		// Feed the outputs back: later rounds recycle their storage.
		sc.Release(pooled)
		sc.Release(pooledP)
	}
}

// TestScratchFreelistRecycling pins the recycling mechanics: a released
// table's storage is handed back by the next outTable call, reset to the
// new column set with set semantics intact.
func TestScratchFreelistRecycling(t *testing.T) {
	sc := NewScratch()
	big := randomTable(rand.New(rand.NewSource(7)), []string{"A", "B"}, 40, 500)
	released := big.ProjectS([]string{"A"}, sc)
	sc.Release(released)

	got := sc.outTable([]string{"X", "Y", "Z"}, 4)
	if got != released {
		t.Fatal("outTable did not recycle the released table")
	}
	if got.Len() != 0 || len(got.Vars()) != 3 || got.Vars()[0] != "X" {
		t.Fatalf("recycled table not reset: len=%d vars=%v", got.Len(), got.Vars())
	}
	// Set semantics must survive recycling: stale slot state would break
	// dedup.
	if !got.Add(Tuple{1, 2, 3}) || got.Add(Tuple{1, 2, 3}) || !got.Add(Tuple{1, 2, 4}) {
		t.Fatalf("dedup broken after recycling: %v", got)
	}
	if !got.Contains(Tuple{1, 2, 3}) || !got.Contains(Tuple{1, 2, 4}) || got.Contains(Tuple{9, 9, 9}) {
		t.Fatal("membership broken after recycling")
	}

	// The freelist is LIFO and drains: with it empty, outTable allocates.
	fresh := sc.outTable([]string{"Q"}, 2)
	if fresh == released {
		t.Fatal("outTable returned a table that was already handed out")
	}
}

// TestScratchReset drops the freelist so previously released tables are
// never handed out again, while keeping the grown buffers.
func TestScratchReset(t *testing.T) {
	sc := NewScratch()
	tab := mkTable(t, []string{"X"}, Tuple{1}, Tuple{2})
	sc.Release(tab)
	sc.Reset()
	if got := sc.outTable([]string{"X"}, 1); got == tab {
		t.Fatal("Reset did not drop the freelist")
	}
	// Reset on nil is a no-op, as are Release and the buffer getters.
	var nilSc *Scratch
	nilSc.Reset()
	nilSc.Release(tab)
	if n := len(nilSc.matchedBuf(5)); n != 5 {
		t.Fatalf("nil scratch matchedBuf len %d", n)
	}
	if n := len(nilSc.tupleBuf(3)); n != 3 {
		t.Fatalf("nil scratch tupleBuf len %d", n)
	}
	if n := len(nilSc.hashBuf()); n != probeBlock {
		t.Fatalf("nil scratch hashBuf len %d", n)
	}
	if got := nilSc.outTable([]string{"Y"}, 2); got == nil || len(got.Vars()) != 1 {
		t.Fatal("nil scratch outTable broken")
	}
}

// TestScratchBufferGrowth drives every buffer getter through its grow and
// reuse branches: a small request after a large one must reuse (and, for
// matchedBuf, clear) the existing array.
func TestScratchBufferGrowth(t *testing.T) {
	sc := NewScratch()
	m := sc.matchedBuf(8)
	for i := range m {
		m[i] = true
	}
	m2 := sc.matchedBuf(4)
	if len(m2) != 4 {
		t.Fatalf("matchedBuf len %d", len(m2))
	}
	for i, v := range m2 {
		if v {
			t.Fatalf("matchedBuf[%d] not cleared on reuse", i)
		}
	}
	if len(sc.matchedBuf(64)) != 64 {
		t.Fatal("matchedBuf did not grow")
	}

	b := sc.tupleBuf(2)
	b[0] = 7
	if b2 := sc.tupleBuf(1); len(b2) != 1 || b2[0] != 7 {
		t.Fatalf("tupleBuf did not reuse storage: %v", b2)
	}
	if len(sc.tupleBuf(16)) != 16 {
		t.Fatal("tupleBuf did not grow")
	}

	h1 := sc.hashBuf()
	h2 := sc.hashBuf()
	if &h1[0] != &h2[0] {
		t.Fatal("hashBuf reallocated on reuse")
	}
}

// TestBuildChainIndexScratchReuse checks the chain-index builder against
// the probe side on growing then shrinking tables, so both the reuse-with-
// clear and reallocation branches of the scratch arrays run — a stale head
// entry would surface as a phantom semijoin match.
func TestBuildChainIndexScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sc := NewScratch()
	for _, rows := range []int{700, 40, 3, 900, 0} {
		a := randomTable(rng, []string{"X", "Y"}, 25, rows)
		b := randomTable(rng, []string{"Y", "Z"}, 25, 300)
		if want, got := a.SemijoinCount(b), a.SemijoinCountS(b, sc); want != got {
			t.Fatalf("rows=%d: scratch chain index count %d, want %d", rows, got, want)
		}
	}
}

// TestColStoreResetSlotPolicy pins the recycled-table slot policy: a
// right-sized slot array is cleared in place, a hugely oversized one is
// reallocated at the requested size, and capRows=0 drops it entirely.
func TestColStoreResetSlotPolicy(t *testing.T) {
	big := randomTable(rand.New(rand.NewSource(3)), []string{"A", "B"}, 5000, 2000)
	bigSlots := len(big.slots)
	if bigSlots < slotsFor(4)*8 {
		t.Fatalf("test premise broken: big table has only %d slots", bigSlots)
	}

	// Tiny capacity after a huge table: reallocate, don't pin.
	big.reset([]string{"X"}, 4)
	if got := len(big.slots); got != slotsFor(4) {
		t.Fatalf("oversized slots kept: %d, want %d", got, slotsFor(4))
	}
	if big.Len() != 0 {
		t.Fatalf("reset table has %d rows", big.Len())
	}

	// Same capacity again: cleared in place, no reallocation.
	before := &big.slots[0]
	big.reset([]string{"X"}, 4)
	if &big.slots[0] != before {
		t.Fatal("right-sized slot array was reallocated")
	}

	// capRows=0 on a right-sized table keeps the (cleared) slot array...
	big.reset([]string{"X"}, 0)
	if big.slots == nil {
		t.Fatal("capRows=0 dropped a right-sized slot array")
	}
	// ...but on an oversized one drops it entirely; the table must still
	// accept rows and deduplicate afterwards.
	big2 := randomTable(rand.New(rand.NewSource(4)), []string{"A", "B"}, 5000, 2000)
	big2.reset([]string{"X"}, 0)
	if big2.slots != nil {
		t.Fatal("capRows=0 kept an oversized slot array")
	}
	if !big2.Add(Tuple{1}) || big2.Add(Tuple{1}) {
		t.Fatal("dedup broken after capRows=0 reset")
	}
}

// BenchmarkSemijoinScratch tracks the pooled semijoin's steady state
// against the allocating baseline.
func BenchmarkSemijoinScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomTable(rng, []string{"X", "Y"}, 64, 1024)
	c := randomTable(rng, []string{"Y", "Z"}, 64, 1024)
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if a.Semijoin(c).Len() == 0 {
				b.Fatal("empty semijoin")
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		sc := NewScratch()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := a.SemijoinS(c, sc)
			if out.Len() == 0 {
				b.Fatal("empty semijoin")
			}
			sc.Release(out)
		}
	})
}
