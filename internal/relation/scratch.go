package relation

// This file implements the reusable working memory behind the engine's
// zero-alloc steady state: a Scratch holds every transient buffer the
// semijoin/projection kernels need (shared-column positions, block hash
// buffers, chain-index arrays, matched bitmaps, tuple staging) plus a
// freelist of released output tables whose arenas are recycled by later
// operator calls. The scratch-aware operator variants (SemijoinS,
// SemijoinCountS, ProjectS) accept a nil *Scratch and then behave exactly
// like their allocating counterparts, so the scratch is purely an
// optimization layer: results are identical either way.
//
// A Scratch is owned by one goroutine at a time and must never be shared
// between concurrently running operators. Tables handed to Release must be
// exclusively owned by the caller — never cached, shared, or referenced
// again — because their storage is reused by the next outTable call.

// probeBlock is the row-block size of the batched probe loops: hashes for a
// block of rows are computed in one sequential pass over the arena before
// the (random-access) hash-set probes, so the value walk stays
// cache-resident while probing.
const probeBlock = 256

// Scratch is the per-search working memory. The zero value is ready to use;
// buffers grow to the high-water mark of the operators run through it and
// are then reused without further allocation.
type Scratch struct {
	posA, posB []int
	hashes     []uint64
	matched    []bool
	heads      []int32
	next       []int32
	buf        Tuple
	sample     []int
	free       []*Table
	ops        Ops
}

// Ops tallies the scratch-aware kernel calls routed through one Scratch:
// the relational-operator work profile of whatever search ran on it. The
// counters are plain (non-atomic) because a Scratch is single-goroutine by
// contract; read them through Scratch.Ops.
type Ops struct {
	// Semijoins counts SemijoinS calls (materializing reductions).
	Semijoins uint64
	// SemijoinCounts counts SemijoinCountS calls (cardinality-only probes).
	SemijoinCounts uint64
	// Projections counts ProjectS calls.
	Projections uint64
	// Released counts tables recycled through Release.
	Released uint64
}

// Ops returns the kernel-call tally since NewScratch or ResetOps. A nil
// scratch reports zero ops.
func (sc *Scratch) Ops() Ops {
	if sc == nil {
		return Ops{}
	}
	return sc.ops
}

// ResetOps zeroes the kernel-call tally, so a reused scratch can report
// per-run profiles.
func (sc *Scratch) ResetOps() {
	if sc != nil {
		sc.ops = Ops{}
	}
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Reset drops the table freelist (the buffers survive, they hold no table
// state). Call it when previously released tables may still be referenced —
// e.g. before reusing a scratch across search runs whose results escaped.
func (sc *Scratch) Reset() {
	if sc == nil {
		return
	}
	for i := range sc.free {
		sc.free[i] = nil
	}
	sc.free = sc.free[:0]
}

// Release returns a table's storage to the scratch for reuse by a later
// operator call. The caller must own t exclusively: t must not be a cached
// or shared table, and must not be used after release.
func (sc *Scratch) Release(t *Table) {
	if sc == nil || t == nil {
		return
	}
	sc.ops.Released++
	sc.free = append(sc.free, t)
}

// outTable returns an empty table over vars with room for capRows rows,
// recycling a released table's storage when one is available.
func (sc *Scratch) outTable(vars []string, capRows int) *Table {
	if sc != nil {
		if n := len(sc.free); n > 0 {
			t := sc.free[n-1]
			sc.free[n-1] = nil
			sc.free = sc.free[:n-1]
			t.reset(vars, capRows)
			return t
		}
	}
	return NewTableCap(vars, capRows)
}

// hashBuf returns the probeBlock-sized hash buffer.
func (sc *Scratch) hashBuf() []uint64 {
	if sc == nil {
		return make([]uint64, probeBlock)
	}
	if cap(sc.hashes) < probeBlock {
		sc.hashes = make([]uint64, probeBlock)
	}
	return sc.hashes[:probeBlock]
}

// matchedBuf returns a cleared n-sized bool buffer.
func (sc *Scratch) matchedBuf(n int) []bool {
	if sc == nil {
		return make([]bool, n)
	}
	if cap(sc.matched) < n {
		sc.matched = make([]bool, n)
		return sc.matched
	}
	m := sc.matched[:n]
	clear(m)
	return m
}

// tupleBuf returns an n-sized tuple staging buffer.
func (sc *Scratch) tupleBuf(n int) Tuple {
	if sc == nil {
		return make(Tuple, n)
	}
	if cap(sc.buf) < n {
		sc.buf = make(Tuple, n)
	}
	return sc.buf[:n]
}

// sharedPosS resolves the positions of the columns shared by t and u on
// both sides (in t's column order), into the scratch position buffers when
// sc is non-nil.
func sharedPosS(t, u *Table, sc *Scratch) (tPos, uPos []int) {
	if sc != nil {
		tPos, uPos = sc.posA[:0], sc.posB[:0]
	}
	for i, v := range t.vars {
		if p := u.Pos(v); p >= 0 {
			tPos = append(tPos, i)
			uPos = append(uPos, p)
		}
	}
	if sc != nil {
		sc.posA, sc.posB = tPos, uPos
	}
	return tPos, uPos
}

// hashBlockAt fills out[k] with the projection hash of row lo+k for rows
// lo..hi-1 of c, in one sequential pass over the arena. It must agree with
// hashAt row by row.
func hashBlockAt(c *colStore, pos []int, lo, hi int, out []uint64) {
	base := lo * c.width
	for r := lo; r < hi; r++ {
		row := c.data[base : base+c.width]
		base += c.width
		h := fnvOffset64
		for _, p := range pos {
			h ^= uint64(uint32(row[p]))
			h *= fnvPrime64
		}
		out[r-lo] = h
	}
}

// buildChainIndexS is buildChainIndex with the heads/next arrays (and the
// block hash buffer) drawn from the scratch. The returned index aliases the
// scratch arrays and is invalidated by the next buildChainIndexS call on
// the same scratch.
func buildChainIndexS(c *colStore, pos []int, sc *Scratch) chainIndex {
	size := slotsFor(c.nrows)
	var ix chainIndex
	if sc != nil {
		if cap(sc.heads) >= size {
			ix.heads = sc.heads[:size]
			clear(ix.heads)
		} else {
			ix.heads = make([]int32, size)
			sc.heads = ix.heads
		}
		if cap(sc.next) >= c.nrows {
			ix.next = sc.next[:c.nrows]
		} else {
			ix.next = make([]int32, c.nrows)
			sc.next = ix.next
		}
	} else {
		ix.heads = make([]int32, size)
		ix.next = make([]int32, c.nrows)
	}
	ix.mask = uint64(size - 1)
	hbuf := sc.hashBuf()
	for lo := 0; lo < c.nrows; lo += probeBlock {
		hi := min(lo+probeBlock, c.nrows)
		hashBlockAt(c, pos, lo, hi, hbuf)
		for r := lo; r < hi; r++ {
			h := hbuf[r-lo] & ix.mask
			ix.next[r] = ix.heads[h]
			ix.heads[h] = int32(r + 1)
		}
	}
	return ix
}

// reset reinitializes t as an empty table over vars with room for capRows
// rows, reusing its existing storage where it fits. Column names are not
// re-validated: reset is only reachable through Scratch.outTable, whose
// callers pass column lists taken from existing (already validated) tables.
func (t *Table) reset(vars []string, capRows int) {
	t.vars = append(t.vars[:0], vars...)
	t.colStore.reset(len(vars), capRows)
}

// reset empties the store for a new width/capacity, keeping allocations
// that still fit: the arena is truncated in place, and the slot array is
// cleared when it is within [want, 8*want] and reallocated otherwise (so a
// huge recycled table does not pin its slot array under tiny outputs).
func (c *colStore) reset(width, capRows int) {
	c.width = width
	c.data = c.data[:0]
	c.nrows = 0
	want := 8
	if capRows > 0 {
		want = slotsFor(capRows)
	}
	if len(c.slots) >= want && len(c.slots) <= 8*want {
		clear(c.slots)
	} else if capRows > 0 {
		c.slots = make([]int32, want)
	} else {
		c.slots = nil
		c.mask = 0
		return
	}
	c.mask = uint64(len(c.slots) - 1)
	if capRows > 0 && cap(c.data) < capRows*width {
		c.data = make([]Value, 0, capRows*width)
	}
}
