package relation

import (
	"fmt"
	"sort"
)

// FromAtom materializes the table of assignments to varo(a) that satisfy
// atom a in db: repeated variables within the atom act as equality
// selections and constant terms act as constant selections, exactly as in
// Datalog. The result's columns are a.Vars() (distinct variables in
// first-occurrence order).
//
// It returns an error if the atom's predicate is not a relation of db or if
// the arity does not match.
func FromAtom(db *Database, a Atom) (*Table, error) {
	r := db.Relation(a.Pred)
	if r == nil {
		return nil, fmt.Errorf("relation: unknown relation %q in atom %s", a.Pred, a.String())
	}
	if r.Arity() != len(a.Terms) {
		return nil, fmt.Errorf("relation: atom %s has arity %d but relation %s has arity %d",
			a.String(), len(a.Terms), a.Pred, r.Arity())
	}
	vars := a.Vars()
	out := NewTableCap(vars, r.Len())
	firstPos := make(map[string]int, len(vars)) // variable -> first term position
	for i, t := range a.Terms {
		if t.IsVar() {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = i
			}
		}
	}
	// Resolve named constants against the active domain once; a name that
	// was never interned matches no tuple, so the selection is empty.
	resolved := make([]Value, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar() {
			continue
		}
		v := t.Const
		if t.ConstName != "" {
			var ok bool
			v, ok = db.Dict().Lookup(t.ConstName)
			if !ok {
				return out, nil
			}
		}
		resolved[i] = v
	}
	// Compile the per-row checks so the scan does no string-map lookups:
	// eqPos[i] = -1 for a constant term (compare against resolved[i]),
	// i for a variable's first occurrence (no check), or the first-occurrence
	// position of a repeated variable (equality selection).
	eqPos := make([]int, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVar() {
			eqPos[i] = firstPos[t.Var]
		} else {
			eqPos[i] = -1
		}
	}
	// varPos[i] is the term position feeding output column i.
	varPos := make([]int, len(vars))
	for i, v := range vars {
		varPos[i] = firstPos[v]
	}
	buf := make(Tuple, len(vars))
tuples:
	for ri := 0; ri < r.Len(); ri++ {
		tup := r.Row(ri)
		for i, p := range eqPos {
			if p == -1 {
				if tup[i] != resolved[i] {
					continue tuples // constant mismatch
				}
			} else if p != i && tup[p] != tup[i] {
				continue tuples // repeated variable mismatch
			}
		}
		for i, p := range varPos {
			buf[i] = tup[p]
		}
		// Duplicate-free by construction: every term position is either a
		// fixed constant, equal to a repeated variable's first occurrence,
		// or itself a first occurrence (an output column), so the source row
		// is fully determined by the emitted tuple.
		out.addUnique(buf)
	}
	return out, nil
}

// JoinAtoms computes J(R) for the atom set R (Definition 2.6): the natural
// join of the relations corresponding to the atoms, as a table over att(R).
// For an empty atom list it returns the Unit table (join identity).
//
// Atoms are joined greedily: the next atom joined is one sharing variables
// with the result so far (smallest first), to keep intermediates small.
// Callers evaluating many atom sets of the same shape should compile a
// JoinPlan once and Run it instead.
func JoinAtoms(db *Database, atoms []Atom) (*Table, error) {
	if len(atoms) == 0 {
		return Unit(), nil
	}
	tables := make([]*Table, len(atoms))
	for i, a := range atoms {
		t, err := FromAtom(db, a)
		if err != nil {
			return nil, err
		}
		tables[i] = t
	}
	return JoinTablesGreedy(tables), nil
}

// JoinTablesOrdered joins tables in exactly the given order (a permutation
// of table indices), the execution half of cost-based dynamic join
// ordering: the order comes from the statistics layer's estimator over the
// actual cardinalities and per-column distinct counts, so unlike
// JoinTablesGreedy no size-only heuristics are applied here. As soon as an
// intermediate is empty, the empty result is built directly over the
// unioned schema without joining the remaining tables.
func JoinTablesOrdered(tables []*Table, order []int) *Table {
	acc := tables[order[0]]
	for k := 1; k < len(order); k++ {
		if acc.Empty() {
			outVars := append([]string(nil), acc.Vars()...)
			for _, j := range order[k:] {
				for _, v := range tables[j].Vars() {
					if indexOf(outVars, v) < 0 {
						outVars = append(outVars, v)
					}
				}
			}
			return NewTable(outVars)
		}
		acc = acc.NaturalJoin(tables[order[k]])
	}
	return acc
}

// JoinTablesGreedy joins tables in the size-aware greedy order: start with
// the smallest table; repeatedly pick the smallest remaining table that
// shares a variable with the accumulated result, falling back to the
// smallest overall (cartesian step) if none does. It is the dynamic
// counterpart of a compiled JoinPlan, used when the actual cardinalities
// matter more than saving the per-call ordering analysis; it must not be
// given an empty slice. The result's column order depends on the join
// order chosen.
func JoinTablesGreedy(tables []*Table) *Table {
	remaining := make([]int, len(tables))
	for i := range remaining {
		remaining[i] = i
	}
	sort.Slice(remaining, func(i, j int) bool {
		return tables[remaining[i]].Len() < tables[remaining[j]].Len()
	})

	acc := tables[remaining[0]]
	remaining = remaining[1:]
	accVars := make(map[string]bool)
	for _, v := range acc.Vars() {
		accVars[v] = true
	}
	for len(remaining) > 0 {
		pick := -1
		for k, idx := range remaining {
			for _, v := range tables[idx].Vars() {
				if accVars[v] {
					pick = k
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			pick = 0 // no shared variables anywhere: cartesian product
		}
		idx := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		acc = acc.NaturalJoin(tables[idx])
		for _, v := range tables[idx].Vars() {
			accVars[v] = true
		}
		if acc.Empty() {
			// The join is already empty; build the empty result directly
			// over the unioned schema instead of joining (and hash-indexing)
			// the remaining tables just to recover their columns.
			outVars := append([]string(nil), acc.Vars()...)
			for _, j := range remaining {
				for _, v := range tables[j].Vars() {
					if !accVars[v] {
						accVars[v] = true
						outVars = append(outVars, v)
					}
				}
			}
			return NewTable(outVars)
		}
	}
	return acc
}
