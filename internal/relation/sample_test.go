package relation

import "testing"

// TestSamplerFullCycle: drawing n times from NewSampler(n, seed) must yield
// every index in [0, n) exactly once, for a spread of sizes (including
// powers of two and their neighbors, where the rejection walk degenerates).
func TestSamplerFullCycle(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32, 33, 100, 255, 256, 1000} {
		for seed := uint64(0); seed < 5; seed++ {
			s := NewSampler(n, seed)
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				v := s.Next()
				if v < 0 || v >= n {
					t.Fatalf("n=%d seed=%d: draw %d out of range: %d", n, seed, i, v)
				}
				if seen[v] {
					t.Fatalf("n=%d seed=%d: index %d drawn twice", n, seed, v)
				}
				seen[v] = true
			}
			if got := s.Next(); got != -1 {
				t.Fatalf("n=%d seed=%d: exhausted sampler returned %d, want -1", n, seed, got)
			}
			if s.Drawn() != n {
				t.Fatalf("n=%d seed=%d: Drawn = %d, want %d", n, seed, s.Drawn(), n)
			}
		}
	}
}

// TestSamplerDeterminism: equal seeds replay the identical order; different
// seeds should (for a non-trivial population) differ somewhere.
func TestSamplerDeterminism(t *testing.T) {
	const n = 64
	draw := func(seed uint64) []int {
		s := NewSampler(n, seed)
		out := make([]int, n)
		for i := range out {
			out[i] = s.Next()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced the identical order")
	}
}

// TestReservoirRows: the reservoir is a without-replacement k-subset of
// [0, n), deterministic per seed, clamped to the population size, and
// reuses the scratch buffer across calls.
func TestReservoirRows(t *testing.T) {
	sc := NewScratch()
	for _, tc := range []struct{ n, k int }{{0, 0}, {5, 0}, {5, 5}, {5, 8}, {100, 10}, {1000, 64}} {
		got := sc.ReservoirRows(tc.n, tc.k, 7)
		want := tc.k
		if want > tc.n {
			want = tc.n
		}
		if len(got) != want {
			t.Fatalf("n=%d k=%d: len = %d, want %d", tc.n, tc.k, len(got), want)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d k=%d: index %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("n=%d k=%d: index %d sampled twice", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
	a := append([]int(nil), sc.ReservoirRows(100, 10, 99)...)
	b := sc.ReservoirRows(100, 10, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if got := NewScratch().ReservoirRows(50, 10, 99); len(got) != 10 {
		t.Fatalf("fresh scratch reservoir len = %d", len(got))
	}
	var nilSc *Scratch
	if got := nilSc.ReservoirRows(50, 10, 99); len(got) != 10 {
		t.Fatalf("nil scratch reservoir len = %d", len(got))
	}
}

// TestSamplerRespectsTombstones: sampling a Relation through the RowSource
// interface after deletions must only ever surface live tuples — Len/Row
// route through the live index, so tombstoned rows are unreachable.
func TestSamplerRespectsTombstones(t *testing.T) {
	r := NewRelation("r", 1)
	for i := 0; i < 20; i++ {
		r.Insert(Tuple{Value(i)})
	}
	ext := r.Extend()
	for i := 0; i < 20; i += 2 {
		ext.Delete(Tuple{Value(i)})
	}
	ext.Seal()
	var src RowSource = ext
	if src.Len() != 10 {
		t.Fatalf("live rows = %d, want 10", src.Len())
	}
	s := NewSampler(src.Len(), 3)
	seen := map[Value]bool{}
	for {
		i := s.Next()
		if i < 0 {
			break
		}
		v := src.Row(i)[0]
		if v%2 == 0 {
			t.Fatalf("sampled tombstoned tuple %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("sampled %d distinct live tuples, want 10", len(seen))
	}

	// All-tombstone epoch: every row deleted leaves an empty population.
	dead := r.Extend()
	for i := 0; i < 20; i++ {
		dead.Delete(Tuple{Value(i)})
	}
	dead.Seal()
	if dead.Len() != 0 {
		t.Fatalf("all-tombstone Len = %d, want 0", dead.Len())
	}
	empty := NewSampler(dead.Len(), 3)
	if got := empty.Next(); got != -1 {
		t.Fatalf("all-tombstone sampler returned %d, want -1", got)
	}
}
