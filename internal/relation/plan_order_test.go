package relation

import (
	"math/rand"
	"testing"
)

// orderedTables builds a deterministic random table set over a small
// variable pool.
func orderedTables(t *testing.T, seed int64, n int) ([]*Table, [][]string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := []string{"A", "B", "C", "D", "E"}
	tables := make([]*Table, n)
	schemas := make([][]string, n)
	for i := range tables {
		w := 1 + rng.Intn(3)
		perm := rng.Perm(len(pool))[:w]
		cols := make([]string, w)
		for k, p := range perm {
			cols[k] = pool[p]
		}
		tab := NewTable(cols)
		tup := make(Tuple, w)
		for r := 0; r < rng.Intn(14); r++ {
			for c := range tup {
				tup[c] = Value(rng.Intn(4))
			}
			tab.Add(tup)
		}
		tables[i] = tab
		schemas[i] = cols
	}
	return tables, schemas
}

// Every order-pinned plan must produce the same tuple set as the
// shape-greedy compiled plan, over every permutation of small inputs.
func TestCompileJoinPlanOrderMatchesShapePlan(t *testing.T) {
	perms3 := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for seed := int64(0); seed < 30; seed++ {
		tables, schemas := orderedTables(t, seed, 3)
		want, err := CompileJoinPlan(schemas).Run(tables)
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range perms3 {
			p := CompileJoinPlanOrder(schemas, order)
			got, err := p.Run(tables)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualSet(want) {
				t.Fatalf("seed %d order %v: %v != %v", seed, order, got, want)
			}
			if !sameVars(p.OutVars(), got.Vars()) {
				t.Fatalf("seed %d order %v: result schema %v, plan promises %v", seed, order, got.Vars(), p.OutVars())
			}
		}
	}
}

// ForOrder must cache per (shape, order): same order returns the
// identical plan, different orders distinct plans, and both coexist with
// the shape plan under the same cache.
func TestPlanCacheForOrder(t *testing.T) {
	schemas := [][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}
	pc := NewPlanCache()
	p1 := pc.ForOrder(schemas, []int{2, 1, 0})
	p2 := pc.ForOrder(schemas, []int{2, 1, 0})
	if p1 != p2 {
		t.Error("same (shape, order) compiled twice")
	}
	p3 := pc.ForOrder(schemas, []int{0, 1, 2})
	if p3 == p1 {
		t.Error("distinct orders share one plan")
	}
	if ps := pc.For(schemas); ps == p1 || ps == p3 {
		t.Error("shape plan aliases an order-pinned plan")
	}
	if p1.Key() == p3.Key() {
		t.Errorf("distinct orders share key %q", p1.Key())
	}
}

// An order-pinned plan trusts its order: the dynamic skew fallback must
// not rewrite it. The compiled order (empty-first) is observable through
// the early-exit: with the empty table joined first, the plan runs no
// probe passes and returns the empty result over the full schema.
func TestOrderedPlanSkipsSkewFallback(t *testing.T) {
	big := NewTable([]string{"A", "B"})
	tup := make(Tuple, 2)
	for i := 0; i < 200; i++ {
		tup[0], tup[1] = Value(i), Value(i%7)
		big.Add(tup)
	}
	empty := NewTable([]string{"B", "C"})
	small := NewTable([]string{"C", "D"})
	tup[0], tup[1] = 1, 2
	small.Add(tup)

	p := CompileJoinPlanOrder([][]string{{"A", "B"}, {"B", "C"}, {"C", "D"}}, []int{1, 2, 0})
	got, err := p.Run([]*Table{big, empty, small})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("join with empty input yielded %d rows", got.Len())
	}
	if len(got.Vars()) != 4 {
		t.Fatalf("empty result schema %v, want all four columns", got.Vars())
	}
}

// Mismatched inputs must error, and the empty plan yields Unit.
func TestOrderedPlanValidation(t *testing.T) {
	p := CompileJoinPlanOrder([][]string{{"A"}, {"B"}}, []int{1, 0})
	if _, err := p.Run([]*Table{NewTable([]string{"A"})}); err == nil {
		t.Error("wrong table count accepted")
	}
	if _, err := p.Run([]*Table{NewTable([]string{"A"}), NewTable([]string{"B", "C"})}); err == nil {
		t.Error("wrong table width accepted")
	}
	unit := CompileJoinPlanOrder(nil, nil)
	got, err := unit.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || len(got.Vars()) != 0 {
		t.Errorf("empty plan returned %v, want Unit", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("order/schema length mismatch did not panic")
		}
	}()
	CompileJoinPlanOrder([][]string{{"A"}}, []int{0, 1})
}

// JoinTablesOrdered follows the given order and early-exits on empty
// intermediates with the full unioned schema.
func TestJoinTablesOrdered(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tables, _ := orderedTables(t, 100+seed, 3)
		got := JoinTablesOrdered(tables, []int{2, 0, 1})
		want := JoinTablesGreedy(tables)
		if !got.EqualSet(want) {
			t.Fatalf("seed %d: ordered %v != greedy %v", seed, got, want)
		}
	}
}
