package relation

import (
	"reflect"
	"strings"
	"testing"
)

// TestScratchOps checks the kernel-call tally: every scratch-aware
// operator call bumps its counter, ResetOps zeroes them, and the nil
// scratch (the no-pooling path) reports zero ops without panicking.
func TestScratchOps(t *testing.T) {
	sc := NewScratch()
	a := NewTable([]string{"X", "Y"})
	a.Add(Tuple{1, 2})
	a.Add(Tuple{1, 3})
	b := NewTable([]string{"Y"})
	b.Add(Tuple{2})

	out := a.SemijoinS(b, sc)
	a.SemijoinCountS(b, sc)
	a.ProjectS([]string{"X"}, sc)
	sc.Release(out)

	got := sc.Ops()
	want := Ops{Semijoins: 1, SemijoinCounts: 1, Projections: 1, Released: 1}
	if got != want {
		t.Fatalf("Ops() = %+v, want %+v", got, want)
	}
	sc.ResetOps()
	if sc.Ops() != (Ops{}) {
		t.Fatalf("ResetOps left %+v", sc.Ops())
	}

	// The nil scratch runs the same kernels without a tally.
	var nilSc *Scratch
	if nilSc.Ops() != (Ops{}) {
		t.Fatal("nil scratch reports nonzero ops")
	}
	nilSc.ResetOps()
	if n := a.SemijoinCountS(b, nil); n != 1 {
		t.Fatalf("nil-scratch SemijoinCountS = %d, want 1", n)
	}
}

// TestAtomRendering exercises the term constructors and the Datalog
// rendering rules: named constants quote exactly when the bare name could
// be read as a variable or fails the identifier alphabet.
func TestAtomRendering(t *testing.T) {
	atom := Atom{Pred: "p", Terms: []Term{V("X"), CN("john"), C(7)}}
	if atom.Arity() != 3 {
		t.Fatalf("Arity = %d, want 3", atom.Arity())
	}
	if got := atom.String(); got != "p(X,john,#7)" {
		t.Fatalf("String() = %q", got)
	}
	for name, want := range map[string]string{
		"john":   "john",   // plain identifier
		"Rome":   `"Rome"`, // upper-case start reads as a variable
		"_x":     `"_x"`,   // '_' start reads as a variable
		"a-b":    `"a-b"`,  // '-' is outside the identifier alphabet
		"it'1":   "it'1",   // digits and '\” are identifier bytes
		"a b":    `"a b"`,  // space needs quoting
		"österr": "österr", // non-ASCII letters are identifier runes
		"x€":     `"x€"`,   // non-letter non-ASCII is not
	} {
		a := Atom{Pred: "q", Terms: []Term{CN(name)}}
		if got := a.String(); got != "q("+want+")" {
			t.Errorf("CN(%q) renders %q, want q(%s)", name, got, want)
		}
	}
}

// TestTableString checks the debug rendering: sorted tuples inside a
// variable-labelled set.
func TestTableString(t *testing.T) {
	tb := NewTable([]string{"X", "Y"})
	tb.Add(Tuple{2, 1})
	tb.Add(Tuple{1, 2})
	tb.Add(Tuple{1, 2}) // duplicate is absorbed
	if got := tb.String(); got != "[X,Y]{[1 2] [2 1]}" {
		t.Fatalf("String() = %q", got)
	}
}

// TestTupleCloneAndDictNames covers the small value-layer helpers.
func TestTupleCloneAndDictNames(t *testing.T) {
	orig := Tuple{3, 1, 2}
	c := orig.Clone()
	c[0] = 99
	if orig[0] != 3 {
		t.Fatal("Clone shares storage with the original")
	}

	db := NewDatabase()
	db.MustInsertNamed("p", "zeta", "alpha")
	if got := db.Dict().Names(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Fatalf("Names() = %v, want sorted [alpha zeta]", got)
	}
}

// TestDatabaseExtend checks the copy-on-write snapshot step: replaced
// relations are swapped, unchanged ones are shared by pointer, new names
// append to the creation order, and the original database is untouched.
func TestDatabaseExtend(t *testing.T) {
	db := NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "c")

	repl := NewRelation("p", 2)
	next := db.Extend(map[string]*Relation{"p": repl})
	if next.Relation("p") != repl {
		t.Fatal("Extend did not swap in the replacement")
	}
	if next.Relation("q") != db.Relation("q") {
		t.Fatal("unchanged relation not shared by pointer")
	}
	if db.Relation("p") == repl {
		t.Fatal("Extend mutated the original database")
	}

	fresh := NewRelation("r", 1)
	wider := db.Extend(map[string]*Relation{"r": fresh})
	names := wider.RelationNames()
	if !strings.Contains(strings.Join(names, ","), "r") || len(names) != 3 {
		t.Fatalf("new relation missing from order: %v", names)
	}
	if db.Relation("r") != nil {
		t.Fatal("new relation leaked into the original")
	}
}
