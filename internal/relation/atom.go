package relation

import (
	"fmt"
	"strings"
)

// Term is one argument of an atom: either an ordinary variable or a
// constant. Exactly one of Var/Const is meaningful; Var == "" marks a
// constant term.
type Term struct {
	Var   string
	Const Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Atom is a predicate applied to terms, e.g. p(X, Y, c). In metaquery
// rules the predicate is always a database relation name; conjunctive
// queries (Definition 3.2) additionally allow constant terms.
type Atom struct {
	Pred  string
	Terms []Term
}

// NewAtom builds an atom over variables only, the common case for
// instantiated metaqueries.
func NewAtom(pred string, vars ...string) Atom {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = V(v)
	}
	return Atom{Pred: pred, Terms: terms}
}

// Vars returns the distinct variables of the atom in first-occurrence
// order; varo(a) in the paper.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool, len(a.Terms))
	for _, t := range a.Terms {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Arity returns the number of terms.
func (a Atom) Arity() int { return len(a.Terms) }

// String formats the atom in Datalog syntax using variable names and raw
// value indices for constants. For constant names use StringDict.
func (a Atom) String() string { return a.StringDict(nil) }

// StringDict formats the atom, resolving constants through d when non-nil.
func (a Atom) StringDict(d *Dict) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.IsVar() {
			b.WriteString(t.Var)
		} else if d != nil {
			b.WriteString(d.Name(t.Const))
		} else {
			fmt.Fprintf(&b, "#%d", t.Const)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// AtomsVars returns att(R): the distinct variables across the given atoms in
// first-occurrence order.
func AtomsVars(atoms []Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Terms {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}
