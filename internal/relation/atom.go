package relation

import (
	"fmt"
	"strings"
	"unicode"
)

// Term is one argument of an atom: either an ordinary variable or a
// constant. Var == "" marks a constant term, which comes in two flavors:
// a pre-interned Value (cq-layer constants, bound to one database's
// dictionary) or a database-independent name (metaquery-layer constants),
// resolved against the dictionary when the atom is materialized. A named
// constant absent from the active domain matches no tuple.
type Term struct {
	Var   string
	Const Value
	// ConstName, when non-empty, marks a named constant; Const is ignored.
	ConstName string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a pre-interned constant term.
func C(v Value) Term { return Term{Const: v} }

// CN returns a named constant term, resolved against the database
// dictionary at materialization time.
func CN(name string) Term { return Term{ConstName: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Atom is a predicate applied to terms, e.g. p(X, Y, c). In metaquery
// rules the predicate is always a database relation name; conjunctive
// queries (Definition 3.2) additionally allow constant terms.
type Atom struct {
	Pred  string
	Terms []Term
}

// NewAtom builds an atom over variables only, the common case for
// instantiated metaqueries.
func NewAtom(pred string, vars ...string) Atom {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = V(v)
	}
	return Atom{Pred: pred, Terms: terms}
}

// Vars returns the distinct variables of the atom in first-occurrence
// order; varo(a) in the paper.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool, len(a.Terms))
	for _, t := range a.Terms {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Arity returns the number of terms.
func (a Atom) Arity() int { return len(a.Terms) }

// String formats the atom in Datalog syntax using variable names and raw
// value indices for constants. For constant names use StringDict.
func (a Atom) String() string { return a.StringDict(nil) }

// StringDict formats the atom, resolving interned constants through d when
// non-nil. Named constants render as their name, double-quoted when the
// bare name could be read as a variable (the metaquery parser's argument
// syntax), which keeps the rendering injective against variable terms.
func (a Atom) StringDict(d *Dict) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case t.IsVar():
			b.WriteString(t.Var)
		case t.ConstName != "":
			if constNameNeedsQuotes(t.ConstName) {
				b.WriteByte('"')
				b.WriteString(t.ConstName)
				b.WriteByte('"')
			} else {
				b.WriteString(t.ConstName)
			}
		case d != nil:
			b.WriteString(d.Name(t.Const))
		default:
			fmt.Fprintf(&b, "#%d", t.Const)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// constNameNeedsQuotes reports whether a named constant must be quoted to
// stay distinguishable from a variable or survive reparsing: names
// starting with an upper-case letter or '_' (the variable alphabets) and
// names containing bytes outside the identifier alphabet (letters, digits,
// '_', '\”) are quoted. It mirrors the metaquery parser's conventions.
func constNameNeedsQuotes(name string) bool {
	for i, r := range name {
		if i == 0 && (unicode.IsUpper(r) || r == '_') {
			return true
		}
		if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'') {
			return true
		}
	}
	return name == ""
}

// AtomsVars returns att(R): the distinct variables across the given atoms in
// first-occurrence order.
func AtomsVars(atoms []Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Terms {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}
