// Package relation implements the set-semantics relational algebra substrate
// used by the metaquery engine: interned constant values, relations,
// variable-keyed tables, natural join, semijoin and projection.
//
// The model follows Section 2.1 of the paper: a database DB is
// (D, R1, ..., Rn) where D is a finite set of constants drawn from a
// countable domain U, and each Ri is a finite relation over D. Relations are
// sets of tuples (no duplicates), as required by the relational-algebra
// definitions of the plausibility indices (Definition 2.6).
package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Value is an interned database constant. Values are indices into the
// owning Database's dictionary; two values drawn from the same Database
// are equal iff the underlying constants are equal.
type Value int32

// Tuple is an ordered list of constants. Tuples are compared positionally.
type Tuple []Value

// Clone returns a copy of t that shares no storage with t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Dict interns constant names to Values. The zero value is not usable;
// create dictionaries with newDict (Databases own their dictionary).
//
// A Dict is safe for concurrent use. Interning is append-only: a Value once
// issued never changes meaning, which lets epoch-versioned Databases share
// one dictionary — readers of an old epoch and an Apply interning new
// constants for the next epoch only contend on the RWMutex.
type Dict struct {
	mu     sync.RWMutex
	byName map[string]Value
	names  []string
}

func newDict() *Dict {
	return &Dict{byName: make(map[string]Value)}
}

// Intern returns the Value for name, creating it if necessary.
func (d *Dict) Intern(name string) Value {
	d.mu.RLock()
	v, ok := d.byName[name]
	d.mu.RUnlock()
	if ok {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.byName[name]; ok {
		return v
	}
	v = Value(len(d.names))
	d.byName[name] = v
	d.names = append(d.names, name)
	return v
}

// Lookup returns the Value for name and whether it is interned.
func (d *Dict) Lookup(name string) (Value, bool) {
	d.mu.RLock()
	v, ok := d.byName[name]
	d.mu.RUnlock()
	return v, ok
}

// Name returns the constant name for v. It panics if v was not produced by
// this dictionary.
func (d *Dict) Name(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(v) < 0 || int(v) >= len(d.names) {
		panic(fmt.Sprintf("relation: value %d not in dictionary", v))
	}
	return d.names[v]
}

// Size returns the number of interned constants, i.e. |D|, the size of the
// active domain.
func (d *Dict) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Names returns the interned constant names in sorted order.
func (d *Dict) Names() []string {
	out := d.interned()
	sort.Strings(out)
	return out
}

// interned returns a copy of the interned names in interning (Value) order.
func (d *Dict) interned() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}
