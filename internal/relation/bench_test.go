package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTables builds two joinable tables a(X,Y) and b(Y,Z) with rows random
// tuples each over a domain of rows/4 constants, so joins produce output
// without degenerating into a cartesian product.
func benchTables(rows int) (*Table, *Table) {
	rng := rand.New(rand.NewSource(42))
	dom := rows / 4
	if dom < 2 {
		dom = 2
	}
	a := NewTable([]string{"X", "Y"})
	b := NewTable([]string{"Y", "Z"})
	for i := 0; i < rows; i++ {
		a.Add(Tuple{Value(rng.Intn(dom)), Value(rng.Intn(dom))})
		b.Add(Tuple{Value(rng.Intn(dom)), Value(rng.Intn(dom))})
	}
	return a, b
}

// benchDB builds a chain database p(X,Y), q(Y,Z), r(Z,W) for JoinAtoms
// benchmarks.
func benchDB(rows int) (*Database, []Atom) {
	db := NewDatabase()
	rng := rand.New(rand.NewSource(7))
	dom := rows / 4
	if dom < 2 {
		dom = 2
	}
	for _, name := range []string{"p", "q", "r"} {
		rel := db.MustAddRelation(name, 2)
		for i := 0; i < rows; i++ {
			rel.Insert(Tuple{
				db.Dict().Intern(fmt.Sprint(rng.Intn(dom))),
				db.Dict().Intern(fmt.Sprint(rng.Intn(dom))),
			})
		}
	}
	atoms := []Atom{
		NewAtom("p", "X", "Y"),
		NewAtom("q", "Y", "Z"),
		NewAtom("r", "Z", "W"),
	}
	return db, atoms
}

func BenchmarkNaturalJoin(b *testing.B) {
	for _, rows := range []int{256, 1024, 4096} {
		l, r := benchTables(rows)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.NaturalJoin(r)
			}
		})
	}
}

func BenchmarkSemijoin(b *testing.B) {
	for _, rows := range []int{256, 1024, 4096} {
		l, r := benchTables(rows)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Semijoin(r)
			}
		})
	}
}

func BenchmarkTableAdd(b *testing.B) {
	for _, rows := range []int{1024, 8192} {
		rng := rand.New(rand.NewSource(3))
		tuples := make([]Tuple, rows)
		for i := range tuples {
			tuples[i] = Tuple{Value(rng.Intn(rows / 2)), Value(rng.Intn(rows / 2)), Value(rng.Intn(rows / 2))}
		}
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := NewTable([]string{"X", "Y", "Z"})
				for _, tup := range tuples {
					t.Add(tup)
				}
			}
		})
	}
}

func BenchmarkJoinAtomsChain(b *testing.B) {
	for _, rows := range []int{256, 1024} {
		db, atoms := benchDB(rows)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := JoinAtoms(db, atoms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProject(b *testing.B) {
	l, _ := benchTables(4096)
	j := l.NaturalJoin(l.Project([]string{"Y"}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Project([]string{"X"})
	}
}
