package relation

import (
	"reflect"
	"testing"
)

// TestDeleteTombstonesAndResurrect covers the tombstone lifecycle: Delete
// marks rows dead without touching the arena, the live views (Len, Row,
// Tuples, Contains) skip them, and a later Insert of the same tuple
// resurrects the row in place.
func TestDeleteTombstonesAndResurrect(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 6; i++ {
		r.Insert(Tuple{Value(i), Value(i + 10)})
	}
	if r.Delete(Tuple{1}) {
		t.Error("delete with wrong arity reported present")
	}
	if r.Delete(Tuple{9, 9}) {
		t.Error("delete of absent tuple reported present")
	}
	if !r.Delete(Tuple{2, 12}) {
		t.Error("delete of present tuple reported absent")
	}
	if r.Delete(Tuple{2, 12}) {
		t.Error("double delete reported present")
	}
	if r.Len() != 5 || r.Tombstones() != 1 {
		t.Fatalf("Len=%d Tombstones=%d, want 5 and 1", r.Len(), r.Tombstones())
	}
	if r.Contains(Tuple{2, 12}) {
		t.Error("Contains sees a tombstoned tuple")
	}
	tuples := r.Tuples()
	if len(tuples) != 5 {
		t.Fatalf("Tuples returned %d rows, want 5", len(tuples))
	}
	for i, tup := range tuples {
		if tup[0] == 2 {
			t.Error("Tuples includes the deleted row")
		}
		if got := r.Row(i); !reflect.DeepEqual(got, tup) {
			t.Errorf("Row(%d) = %v, Tuples[%d] = %v", i, got, i, tup)
		}
	}
	// Resurrect: the insert reuses the tombstoned physical row.
	if !r.Insert(Tuple{2, 12}) {
		t.Error("resurrecting insert reported duplicate")
	}
	if r.Len() != 6 || r.Tombstones() != 0 || !r.Contains(Tuple{2, 12}) {
		t.Fatalf("after resurrect: Len=%d Tombstones=%d", r.Len(), r.Tombstones())
	}
}

// TestCloneDropsTombstones: Clone of a relation with dead rows starts from
// a compact arena holding exactly the live tuples.
func TestCloneDropsTombstones(t *testing.T) {
	r := NewRelation("p", 1)
	for i := 0; i < 4; i++ {
		r.Insert(Tuple{Value(i)})
	}
	r.Delete(Tuple{0})
	c := r.Clone()
	if c.Len() != 3 || c.Tombstones() != 0 {
		t.Fatalf("clone Len=%d Tombstones=%d, want 3 and 0", c.Len(), c.Tombstones())
	}
	if c.Contains(Tuple{0}) || !c.Contains(Tuple{3}) {
		t.Error("clone membership differs from the live view")
	}
	// The clone is independent.
	c.Delete(Tuple{1})
	if !r.Contains(Tuple{1}) {
		t.Error("mutating the clone reached the original")
	}
}

// TestExtendSharesArena: an extension sees the parent's rows without
// copying tuple data, and its mutations never reach the parent.
func TestExtendSharesArena(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 8; i++ {
		r.Insert(Tuple{Value(i), Value(i)})
	}
	r.Delete(Tuple{7, 7})
	e := r.Extend()
	if e.Name() != "p" || e.Arity() != 2 {
		t.Fatalf("extension identity %s/%d", e.Name(), e.Arity())
	}
	if e.Len() != r.Len() || e.Tombstones() != r.Tombstones() {
		t.Fatalf("extension Len=%d Tombstones=%d, want parent's %d and %d",
			e.Len(), e.Tombstones(), r.Len(), r.Tombstones())
	}
	if !e.Insert(Tuple{100, 100}) || !e.Delete(Tuple{0, 0}) || !e.Insert(Tuple{7, 7}) {
		t.Fatal("extension mutations misreported")
	}
	if r.Contains(Tuple{100, 100}) || !r.Contains(Tuple{0, 0}) || r.Contains(Tuple{7, 7}) {
		t.Error("extension mutations visible through the parent")
	}
	if !e.Contains(Tuple{100, 100}) || e.Contains(Tuple{0, 0}) || !e.Contains(Tuple{7, 7}) {
		t.Error("extension lost its own mutations")
	}
}

// TestSealCompaction: Seal compacts once tombstones reach a quarter of the
// physical rows and leaves smaller tombstone loads in place (with the live
// index built for readers).
func TestSealCompaction(t *testing.T) {
	r := NewRelation("p", 1)
	for i := 0; i < 8; i++ {
		r.Insert(Tuple{Value(i)})
	}
	r.Delete(Tuple{0})
	if r.Seal() {
		t.Error("Seal compacted at 1/8 tombstones")
	}
	if got := r.Row(0); got[0] != 1 {
		t.Errorf("Row(0) after Seal = %v, want value 1", got)
	}
	r.Delete(Tuple{1})
	if !r.Seal() {
		t.Error("Seal did not compact at 2/8 tombstones")
	}
	if r.Len() != 6 || r.Tombstones() != 0 {
		t.Fatalf("after compaction Len=%d Tombstones=%d, want 6 and 0", r.Len(), r.Tombstones())
	}
	for i := 2; i < 8; i++ {
		if !r.Contains(Tuple{Value(i)}) {
			t.Errorf("compaction lost tuple %d", i)
		}
	}
	if r.Contains(Tuple{0}) || r.Contains(Tuple{1}) {
		t.Error("compaction kept a deleted tuple")
	}
}

// TestTableCompact: Compact returns the table itself when storage is
// tight, and an exactly-sized copy when the arena was preallocated far
// beyond the rows kept.
func TestTableCompact(t *testing.T) {
	tight := NewTable([]string{"x"})
	tight.Add(Tuple{1})
	if tight.Compact() != tight {
		t.Error("Compact copied a tight table")
	}

	big := NewTableCap([]string{"x", "y"}, 4096)
	big.Add(Tuple{1, 2})
	big.Add(Tuple{3, 4})
	big.Add(Tuple{1, 2}) // duplicate, ignored
	c := big.Compact()
	if c == big {
		t.Fatal("Compact kept an oversized arena")
	}
	if c.Len() != 2 || !c.Contains(Tuple{1, 2}) || !c.Contains(Tuple{3, 4}) {
		t.Fatalf("compacted table lost rows: len %d", c.Len())
	}
	if !reflect.DeepEqual(c.Vars(), big.Vars()) {
		t.Errorf("compacted vars %v != %v", c.Vars(), big.Vars())
	}
}
