package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTable(t *testing.T, vars []string, rows ...Tuple) *Table {
	t.Helper()
	tab := NewTable(vars)
	for _, r := range rows {
		tab.Add(r)
	}
	return tab
}

func TestTableAddDedup(t *testing.T) {
	tab := NewTable([]string{"X", "Y"})
	if !tab.Add(Tuple{1, 2}) || tab.Add(Tuple{1, 2}) {
		t.Error("dedup broken")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewTable([]string{"X", "X"})
}

func TestUnit(t *testing.T) {
	u := Unit()
	if u.Len() != 1 || len(u.Vars()) != 0 {
		t.Errorf("Unit = %v", u)
	}
	tab := mkTable(t, []string{"X"}, Tuple{1}, Tuple{2})
	j := tab.NaturalJoin(u)
	if !j.EqualSet(tab) {
		t.Errorf("t ⋈ Unit = %v, want %v", j, tab)
	}
	j2 := u.NaturalJoin(tab)
	if j2.Len() != 2 {
		t.Errorf("Unit ⋈ t has %d tuples", j2.Len())
	}
}

func TestProject(t *testing.T) {
	tab := mkTable(t, []string{"X", "Y"}, Tuple{1, 2}, Tuple{1, 3}, Tuple{2, 3})
	p := tab.Project([]string{"X"})
	if p.Len() != 2 {
		t.Errorf("projection has %d tuples, want 2", p.Len())
	}
	if !p.Contains(Tuple{1}) || !p.Contains(Tuple{2}) {
		t.Error("projection missing tuples")
	}
	// Projection onto all columns is identity.
	if !tab.Project([]string{"X", "Y"}).EqualSet(tab) {
		t.Error("full projection not identity")
	}
	// Column reorder.
	r := tab.Project([]string{"Y", "X"})
	if !r.Contains(Tuple{2, 1}) {
		t.Error("reordered projection wrong")
	}
}

func TestNaturalJoinShared(t *testing.T) {
	// p(X,Y) join q(Y,Z), the running example of the paper.
	p := mkTable(t, []string{"X", "Y"}, Tuple{1, 10}, Tuple{2, 20})
	q := mkTable(t, []string{"Y", "Z"}, Tuple{10, 100}, Tuple{10, 101}, Tuple{30, 300})
	j := p.NaturalJoin(q)
	if got := j.Len(); got != 2 {
		t.Fatalf("join has %d tuples, want 2: %v", got, j)
	}
	want := mkTable(t, []string{"X", "Y", "Z"}, Tuple{1, 10, 100}, Tuple{1, 10, 101})
	if !want.EqualSet(j) {
		t.Errorf("join = %v, want %v", j, want)
	}
}

func TestNaturalJoinNoShared(t *testing.T) {
	a := mkTable(t, []string{"X"}, Tuple{1}, Tuple{2})
	b := mkTable(t, []string{"Y"}, Tuple{7})
	j := a.NaturalJoin(b)
	if j.Len() != 2 {
		t.Errorf("cartesian join has %d tuples, want 2", j.Len())
	}
	if !j.Contains(Tuple{1, 7}) || !j.Contains(Tuple{2, 7}) {
		t.Errorf("cartesian join contents wrong: %v", j)
	}
}

func TestNaturalJoinIdentical(t *testing.T) {
	a := mkTable(t, []string{"X", "Y"}, Tuple{1, 2}, Tuple{3, 4})
	j := a.NaturalJoin(a)
	if !j.EqualSet(a) {
		t.Errorf("self join = %v, want %v", j, a)
	}
}

func TestSemijoin(t *testing.T) {
	a := mkTable(t, []string{"X", "Y"}, Tuple{1, 10}, Tuple{2, 20}, Tuple{3, 30})
	b := mkTable(t, []string{"Y", "Z"}, Tuple{10, 0}, Tuple{30, 0})
	s := a.Semijoin(b)
	want := mkTable(t, []string{"X", "Y"}, Tuple{1, 10}, Tuple{3, 30})
	if !want.EqualSet(s) {
		t.Errorf("semijoin = %v, want %v", s, want)
	}
}

func TestSemijoinNoSharedVars(t *testing.T) {
	a := mkTable(t, []string{"X"}, Tuple{1}, Tuple{2})
	nonEmpty := mkTable(t, []string{"Y"}, Tuple{9})
	empty := NewTable([]string{"Y"})
	if got := a.Semijoin(nonEmpty); got.Len() != 2 {
		t.Errorf("semijoin with non-empty disjoint table = %d tuples, want 2", got.Len())
	}
	if got := a.Semijoin(empty); got.Len() != 0 {
		t.Errorf("semijoin with empty disjoint table = %d tuples, want 0", got.Len())
	}
}

func TestUnionDiff(t *testing.T) {
	a := mkTable(t, []string{"X"}, Tuple{1}, Tuple{2})
	b := mkTable(t, []string{"X"}, Tuple{2}, Tuple{3})
	u := a.Union(b)
	if u.Len() != 3 {
		t.Errorf("union = %d tuples", u.Len())
	}
	d := a.Diff(b)
	if d.Len() != 1 || !d.Contains(Tuple{1}) {
		t.Errorf("diff = %v", d)
	}
}

func TestEqualSetColumnOrderInsensitive(t *testing.T) {
	a := mkTable(t, []string{"X", "Y"}, Tuple{1, 2})
	b := mkTable(t, []string{"Y", "X"}, Tuple{2, 1})
	if !a.EqualSet(b) {
		t.Error("EqualSet should ignore column order")
	}
	c := mkTable(t, []string{"Y", "X"}, Tuple{1, 2})
	if a.EqualSet(c) {
		t.Error("EqualSet matched different contents")
	}
}

func TestSortedTuplesDeterministic(t *testing.T) {
	tab := mkTable(t, []string{"X", "Y"}, Tuple{2, 1}, Tuple{1, 2}, Tuple{1, 1})
	s := tab.SortedTuples()
	if s[0][0] != 1 || s[0][1] != 1 || s[2][0] != 2 {
		t.Errorf("SortedTuples = %v", s)
	}
}

// randomTable builds a random table for property tests.
func randomTable(rng *rand.Rand, vars []string, domain, rows int) *Table {
	t := NewTable(vars)
	for i := 0; i < rows; i++ {
		tup := make(Tuple, len(vars))
		for j := range tup {
			tup[j] = Value(rng.Intn(domain))
		}
		t.Add(tup)
	}
	return t
}

// Property: natural join is commutative as a tuple set.
func TestQuickJoinCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randomTable(r, []string{"X", "Y"}, 4, rng.Intn(12))
		b := randomTable(r, []string{"Y", "Z"}, 4, rng.Intn(12))
		ab := a.NaturalJoin(b)
		ba := b.NaturalJoin(a)
		return ab.EqualSet(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: natural join is associative as a tuple set.
func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randomTable(r, []string{"X", "Y"}, 3, r.Intn(10))
		b := randomTable(r, []string{"Y", "Z"}, 3, r.Intn(10))
		c := randomTable(r, []string{"Z", "W"}, 3, r.Intn(10))
		left := a.NaturalJoin(b).NaturalJoin(c)
		right := a.NaturalJoin(b.NaturalJoin(c))
		return left.EqualSet(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: semijoin equals projection of the natural join onto the left
// columns (the identity used to compute fractions in Definition 2.6).
func TestQuickSemijoinIsJoinProjection(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randomTable(r, []string{"X", "Y"}, 3, r.Intn(12))
		b := randomTable(r, []string{"Y", "Z"}, 3, r.Intn(12))
		semi := a.Semijoin(b)
		proj := a.NaturalJoin(b).Project([]string{"X", "Y"})
		return semi.EqualSet(proj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: semijoin result is a subset of the left operand and idempotent.
func TestQuickSemijoinSubsetIdempotent(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randomTable(r, []string{"X", "Y"}, 3, r.Intn(12))
		b := randomTable(r, []string{"Y"}, 3, r.Intn(6))
		s := a.Semijoin(b)
		if s.Len() > a.Len() {
			return false
		}
		for _, tup := range s.Tuples() {
			if !a.Contains(tup) {
				return false
			}
		}
		return s.Semijoin(b).EqualSet(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
