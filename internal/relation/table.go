package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an intermediate relational-algebra result: a set of tuples whose
// columns are named by ordinary variables. Tables are what J(R), semijoin
// programs and projections produce during index computation.
//
// Storage is columnar: rows live in a flat []Value arena and set semantics
// are enforced by an integer-hashed row set (see colstore.go), so Add,
// Contains and the join operators never materialize string keys or clone
// tuples. Tables are immutable once fully constructed and may then be shared
// freely across goroutines.
//
// Column names are distinct. The empty-column table with a single empty
// tuple acts as the join identity (the "unit" table).
type Table struct {
	vars []string
	colStore
}

// NewTable returns an empty table with the given distinct column variables.
func NewTable(vars []string) *Table {
	return NewTableCap(vars, 0)
}

// NewTableCap is NewTable with storage preallocated for capRows rows; use it
// when the result cardinality is known (or bounded) in advance.
func NewTableCap(vars []string, capRows int) *Table {
	t := &Table{vars: append([]string(nil), vars...)}
	for i, v := range vars {
		for j := 0; j < i; j++ {
			if vars[j] == v {
				panic(fmt.Sprintf("relation: duplicate table column %q", v))
			}
		}
	}
	t.init(len(vars), capRows)
	return t
}

// Unit returns the join identity: a table with no columns and one (empty)
// tuple. Joining any table with Unit yields that table.
func Unit() *Table {
	t := NewTable(nil)
	t.Add(Tuple{})
	return t
}

// Vars returns the column variables in order. Callers must not modify it.
func (t *Table) Vars() []string { return t.vars }

// HasVar reports whether v is a column of t.
func (t *Table) HasVar(v string) bool { return t.Pos(v) >= 0 }

// Pos returns the column position of variable v, or -1. Column lists are
// small, so a linear scan beats a per-table map (and costs no allocation).
func (t *Table) Pos(v string) int {
	for i, tv := range t.vars {
		if tv == v {
			return i
		}
	}
	return -1
}

// Len returns the number of tuples.
func (t *Table) Len() int { return t.nrows }

// Empty reports whether the table has no tuples.
func (t *Table) Empty() bool { return t.nrows == 0 }

// Add inserts tup (values copied into the arena) if not already present and
// reports whether it was new. It panics on arity mismatch.
func (t *Table) Add(tup Tuple) bool {
	if len(tup) != len(t.vars) {
		panic(fmt.Sprintf("relation: adding %d-tuple to %d-column table", len(tup), len(t.vars)))
	}
	return t.add(tup)
}

// Contains reports whether tup is present.
func (t *Table) Contains(tup Tuple) bool {
	if len(tup) != len(t.vars) {
		return false
	}
	return t.contains(tup)
}

// Row returns row r (0 <= r < Len()) as a slice into the table's arena, in
// insertion order. The caller must not modify it. Row is the allocation-free
// iteration primitive; Tuples materializes the full header slice.
func (t *Table) Row(r int) Tuple { return t.row(r) }

// Tuples returns the tuples in insertion order. Each call materializes a
// fresh slice of row headers (one allocation) that the caller may reorder
// freely; the tuples themselves point into the table's arena and must not
// be modified. Iterate with Len/Row in hot paths.
func (t *Table) Tuples() []Tuple { return t.headers() }

// Compact returns t itself when its storage is tight, or an exactly-sized
// copy when the preallocated arena/row set greatly exceeds the actual row
// count (the output of a selective FromAtom or Project preallocated for its
// input cardinality). Use before inserting a table into a long-lived cache,
// so the cache pins memory proportional to the rows kept, not scanned.
func (t *Table) Compact() *Table {
	if !t.oversized() {
		return t
	}
	c := &Table{vars: t.vars}
	c.compactFrom(&t.colStore)
	return c
}

// Clone returns a deep copy of t.
func (t *Table) Clone() *Table {
	c := &Table{vars: append([]string(nil), t.vars...)}
	c.cloneFrom(&t.colStore)
	return c
}

// Project returns π_vars(t) with set semantics. Requested variables must be
// columns of t. The projection preserves the requested column order.
func (t *Table) Project(vars []string) *Table {
	return t.ProjectS(vars, nil)
}

// ProjectS is Project drawing its position buffer, tuple staging, and
// output-table storage from sc (see Scratch); nil sc allocates as Project
// does. The result is owned by the caller and may be handed back through
// sc.Release once it is no longer referenced.
func (t *Table) ProjectS(vars []string, sc *Scratch) *Table {
	var pos []int
	if sc != nil {
		sc.ops.Projections++
		pos = sc.posA[:0]
	}
	for _, v := range vars {
		p := t.Pos(v)
		if p < 0 {
			panic(fmt.Sprintf("relation: projecting on missing column %q", v))
		}
		pos = append(pos, p)
	}
	if sc != nil {
		sc.posA = pos
	}
	out := sc.outTable(vars, t.nrows)
	buf := sc.tupleBuf(len(vars))
	for r := 0; r < t.nrows; r++ {
		row := t.row(r)
		for i, p := range pos {
			buf[i] = row[p]
		}
		out.add(buf)
	}
	return out
}

// sharedVars returns the variables common to t and u, in t's column order.
func (t *Table) sharedVars(u *Table) []string {
	var shared []string
	for _, v := range t.vars {
		if u.HasVar(v) {
			shared = append(shared, v)
		}
	}
	return shared
}

// sharedPos resolves the positions of the shared columns on both sides.
func sharedPos(t, u *Table) (shared []string, tPos, uPos []int) {
	shared = t.sharedVars(u)
	tPos = make([]int, len(shared))
	uPos = make([]int, len(shared))
	for i, v := range shared {
		tPos[i] = t.Pos(v)
		uPos[i] = u.Pos(v)
	}
	return shared, tPos, uPos
}

// NaturalJoin returns t ⋈ u: tuples over the union of columns (t's columns
// first, then u's remaining columns) that agree on all shared columns.
func (t *Table) NaturalJoin(u *Table) *Table {
	_, tPos, uPos := sharedPos(t, u)

	// Output columns: t's columns then u's extra columns.
	outVars := append([]string(nil), t.vars...)
	uExtra := make([]int, 0, len(u.vars)) // u-positions feeding the extra columns
	for p, v := range u.vars {
		if !t.HasVar(v) {
			outVars = append(outVars, v)
			uExtra = append(uExtra, p)
		}
	}
	return hashJoin(t, u, tPos, uPos, uExtra, outVars)
}

// hashJoin executes one build/probe natural-join pass: left ⋈ right over
// the precomputed shared-column positions leftPos/rightPos, emitting left's
// columns followed by right's rightExtra positions, as outVars. The smaller
// side is hashed on the shared columns with integer hashing; the output
// needs no dedup probes because the join of two sets is a set (each output
// row determines its left and right source rows). Both NaturalJoin and the
// compiled joinStep execute through this one loop.
func hashJoin(left, right *Table, leftPos, rightPos, rightExtra []int, outVars []string) *Table {
	out := NewTableCap(outVars, max(left.nrows, right.nrows))
	buf := make(Tuple, len(outVars))
	leftW := len(left.vars)

	build, probe := right, left
	buildPos, probePos := rightPos, leftPos
	swapped := false
	if left.nrows < right.nrows {
		build, probe = left, right
		buildPos, probePos = leftPos, rightPos
		swapped = true
	}
	idx := buildChainIndex(&build.colStore, buildPos)
	for pr := 0; pr < probe.nrows; pr++ {
		prow := probe.row(pr)
		h := hashAt(prow, probePos)
		for s := idx.first(h); s != 0; s = idx.next[s-1] {
			brow := build.row(int(s - 1))
			if !equalAt(prow, probePos, brow, buildPos) {
				continue
			}
			lrow, rrow := prow, brow
			if swapped {
				lrow, rrow = brow, prow
			}
			copy(buf, lrow)
			for i, p := range rightExtra {
				buf[leftW+i] = rrow[p]
			}
			out.addUnique(buf)
		}
	}
	return out
}

// Semijoin returns t ⋉ u: the tuples of t whose projection on the shared
// columns appears in u. With no shared columns, the result is t itself if u
// is non-empty and the empty table otherwise (cartesian semantics).
func (t *Table) Semijoin(u *Table) *Table {
	return t.semi(u, true, nil)
}

// SemijoinS is Semijoin drawing every transient buffer — shared-column
// positions, the chain index, block hash buffers, and the output table's
// storage — from sc (see Scratch); nil sc allocates as Semijoin does. The
// result is owned by the caller and may be handed back through sc.Release
// once it is no longer referenced.
func (t *Table) SemijoinS(u *Table, sc *Scratch) *Table {
	if sc != nil {
		sc.ops.Semijoins++
	}
	return t.semi(u, true, sc)
}

// AntiSemijoin returns t ▷ u: the tuples of t whose projection on the
// shared columns does NOT appear in u. With no shared columns, the result
// is t itself if u is empty and the empty table otherwise (the complement
// of Semijoin's cartesian semantics). Used by the negation extension.
func (t *Table) AntiSemijoin(u *Table) *Table {
	return t.semi(u, false, nil)
}

// SemijoinCount returns |t ⋉ u| without materializing the semijoin: the
// same chain-index kernel as Semijoin, but only a counter on the outer
// side. The index-computation hot paths (Definition 2.6 fractions) consume
// only the cardinality of their semijoins, so this saves the output arena,
// row set, and per-row rehash entirely.
func (t *Table) SemijoinCount(u *Table) int {
	return t.SemijoinCountS(u, nil)
}

// SemijoinCountS is SemijoinCount drawing its transient buffers from sc
// (see Scratch); nil sc allocates as SemijoinCount does.
func (t *Table) SemijoinCountS(u *Table, sc *Scratch) int {
	if sc != nil {
		sc.ops.SemijoinCounts++
	}
	tPos, uPos := sharedPosS(t, u, sc)
	if len(tPos) == 0 {
		if u.nrows > 0 {
			return t.nrows
		}
		return 0
	}
	if semiScanBetter(t.nrows, u.nrows) {
		n := 0
		for _, m := range t.matchedScan(u, tPos, uPos, sc) {
			if m {
				n++
			}
		}
		return n
	}
	idx := buildChainIndexS(&u.colStore, uPos, sc)
	n := 0
	hbuf := sc.hashBuf()
	for lo := 0; lo < t.nrows; lo += probeBlock {
		hi := min(lo+probeBlock, t.nrows)
		hashBlockAt(&t.colStore, tPos, lo, hi, hbuf)
		for r := lo; r < hi; r++ {
			row := t.row(r)
			for s := idx.first(hbuf[r-lo]); s != 0; s = idx.next[s-1] {
				if equalAt(row, tPos, u.row(int(s-1)), uPos) {
					n++
					break
				}
			}
		}
	}
	return n
}

// semiScanBetter decides the semijoin kernel direction: true selects the
// matchedScan direction (index t, scan u), worthwhile only when u is much
// larger than t — the scan pays a chain probe per u row, so near-balanced
// sides are cheaper in the classic direction (index u, probe t), while a
// heavily larger u makes the t-sized index (and its allocation) the
// clear win and enables the all-matched early exit.
func semiScanBetter(tRows, uRows int) bool {
	return uRows > 16*tRows+64
}

// matchedScan computes, for every row of t, whether its projection on the
// shared columns appears in u — with the hash index built over t, the
// smaller side, and u merely scanned. Building the index (and its slot
// array) on the low-cardinality side is the table-level counterpart of the
// estimator's build/probe-side selection; the scan early-exits once every
// t row has matched.
func (t *Table) matchedScan(u *Table, tPos, uPos []int, sc *Scratch) []bool {
	matched := sc.matchedBuf(t.nrows)
	if t.nrows == 0 {
		return matched
	}
	idx := buildChainIndexS(&t.colStore, tPos, sc)
	hbuf := sc.hashBuf()
	left := t.nrows
	for lo := 0; lo < u.nrows && left > 0; lo += probeBlock {
		hi := min(lo+probeBlock, u.nrows)
		hashBlockAt(&u.colStore, uPos, lo, hi, hbuf)
		for r := lo; r < hi && left > 0; r++ {
			row := u.row(r)
			for s := idx.first(hbuf[r-lo]); s != 0; s = idx.next[s-1] {
				tr := int(s - 1)
				if !matched[tr] && equalAt(row, uPos, t.row(tr), tPos) {
					matched[tr] = true
					left--
				}
			}
		}
	}
	return matched
}

// semi implements Semijoin (keep=true) and AntiSemijoin (keep=false) as one
// chain-index kernel, picking the direction with semiScanBetter: the
// classic direction (index u, probe t) by default, the matchedScan
// direction (index t, scan u) when u dwarfs t.
func (t *Table) semi(u *Table, keep bool, sc *Scratch) *Table {
	tPos, uPos := sharedPosS(t, u, sc)
	if len(tPos) == 0 {
		out := sc.outTable(t.vars, 0)
		if (u.nrows > 0) == keep {
			out.cloneFrom(&t.colStore)
		}
		return out
	}
	out := sc.outTable(t.vars, t.nrows)
	if semiScanBetter(t.nrows, u.nrows) {
		for r, m := range t.matchedScan(u, tPos, uPos, sc) {
			if m == keep {
				out.addUnique(t.row(r))
			}
		}
		return out
	}
	idx := buildChainIndexS(&u.colStore, uPos, sc)
	hbuf := sc.hashBuf()
	for lo := 0; lo < t.nrows; lo += probeBlock {
		hi := min(lo+probeBlock, t.nrows)
		hashBlockAt(&t.colStore, tPos, lo, hi, hbuf)
		for r := lo; r < hi; r++ {
			row := t.row(r)
			found := false
			for s := idx.first(hbuf[r-lo]); s != 0; s = idx.next[s-1] {
				if equalAt(row, tPos, u.row(int(s-1)), uPos) {
					found = true
					break
				}
			}
			if found == keep {
				out.addUnique(row)
			}
		}
	}
	return out
}

// Union returns t ∪ u; the tables must have identical column lists.
func (t *Table) Union(u *Table) *Table {
	if !sameVars(t.vars, u.vars) {
		panic("relation: union over different columns")
	}
	out := t.Clone()
	for r := 0; r < u.nrows; r++ {
		out.add(u.row(r))
	}
	return out
}

// Diff returns t − u; the tables must have identical column lists.
func (t *Table) Diff(u *Table) *Table {
	if !sameVars(t.vars, u.vars) {
		panic("relation: difference over different columns")
	}
	out := NewTable(t.vars)
	for r := 0; r < t.nrows; r++ {
		row := t.row(r)
		if !u.contains(row) {
			out.addUnique(row)
		}
	}
	return out
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order, for deterministic
// output and tests.
func (t *Table) SortedTuples() []Tuple {
	out := t.headers()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// EqualSet reports whether t and u contain the same tuple set over the same
// column list, regardless of column order in u.
func (t *Table) EqualSet(u *Table) bool {
	if len(t.vars) != len(u.vars) || t.nrows != u.nrows {
		return false
	}
	perm := make([]int, len(t.vars))
	for i, v := range t.vars {
		p := u.Pos(v)
		if p < 0 {
			return false
		}
		perm[i] = p
	}
	buf := make(Tuple, len(t.vars))
	for r := 0; r < u.nrows; r++ {
		row := u.row(r)
		for i, p := range perm {
			buf[i] = row[p]
		}
		if !t.contains(buf) {
			return false
		}
	}
	return true
}

// String renders the table for debugging.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]{", strings.Join(t.vars, ","))
	for i, tup := range t.SortedTuples() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", []Value(tup))
	}
	b.WriteByte('}')
	return b.String()
}
