package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an intermediate relational-algebra result: a set of tuples whose
// columns are named by ordinary variables. Tables are what J(R), semijoin
// programs and projections produce during index computation.
//
// Column names are distinct. The empty-column table with a single empty
// tuple acts as the join identity (the "unit" table).
type Table struct {
	vars   []string
	varPos map[string]int

	tuples []Tuple
	seen   map[string]struct{}
}

// NewTable returns an empty table with the given distinct column variables.
func NewTable(vars []string) *Table {
	t := &Table{
		vars:   append([]string(nil), vars...),
		varPos: make(map[string]int, len(vars)),
		seen:   make(map[string]struct{}),
	}
	for i, v := range vars {
		if _, dup := t.varPos[v]; dup {
			panic(fmt.Sprintf("relation: duplicate table column %q", v))
		}
		t.varPos[v] = i
	}
	return t
}

// Unit returns the join identity: a table with no columns and one (empty)
// tuple. Joining any table with Unit yields that table.
func Unit() *Table {
	t := NewTable(nil)
	t.Add(Tuple{})
	return t
}

// Vars returns the column variables in order. Callers must not modify it.
func (t *Table) Vars() []string { return t.vars }

// HasVar reports whether v is a column of t.
func (t *Table) HasVar(v string) bool {
	_, ok := t.varPos[v]
	return ok
}

// Pos returns the column position of variable v, or -1.
func (t *Table) Pos(v string) int {
	if p, ok := t.varPos[v]; ok {
		return p
	}
	return -1
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Empty reports whether the table has no tuples.
func (t *Table) Empty() bool { return len(t.tuples) == 0 }

// Add inserts tup (copied) if not already present and reports whether it was
// new. It panics on arity mismatch.
func (t *Table) Add(tup Tuple) bool {
	if len(tup) != len(t.vars) {
		panic(fmt.Sprintf("relation: adding %d-tuple to %d-column table", len(tup), len(t.vars)))
	}
	k := tup.key()
	if _, dup := t.seen[k]; dup {
		return false
	}
	t.seen[k] = struct{}{}
	t.tuples = append(t.tuples, tup.Clone())
	return true
}

// Contains reports whether tup is present.
func (t *Table) Contains(tup Tuple) bool {
	if len(tup) != len(t.vars) {
		return false
	}
	_, ok := t.seen[tup.key()]
	return ok
}

// Tuples returns the tuples in insertion order; the caller must not modify
// the slice or its tuples.
func (t *Table) Tuples() []Tuple { return t.tuples }

// Clone returns a deep copy of t.
func (t *Table) Clone() *Table {
	c := NewTable(t.vars)
	for _, tup := range t.tuples {
		c.Add(tup)
	}
	return c
}

// Project returns π_vars(t) with set semantics. Requested variables must be
// columns of t. The projection preserves the requested column order.
func (t *Table) Project(vars []string) *Table {
	pos := make([]int, len(vars))
	for i, v := range vars {
		p := t.Pos(v)
		if p < 0 {
			panic(fmt.Sprintf("relation: projecting on missing column %q", v))
		}
		pos[i] = p
	}
	out := NewTable(vars)
	buf := make(Tuple, len(vars))
	for _, tup := range t.tuples {
		for i, p := range pos {
			buf[i] = tup[p]
		}
		out.Add(buf)
	}
	return out
}

// sharedVars returns the variables common to t and u, in t's column order.
func (t *Table) sharedVars(u *Table) []string {
	var shared []string
	for _, v := range t.vars {
		if u.HasVar(v) {
			shared = append(shared, v)
		}
	}
	return shared
}

// projectKey builds the map key for tup restricted to positions pos.
func projectKey(tup Tuple, pos []int) string {
	b := make([]byte, 0, 4*len(pos))
	for _, p := range pos {
		v := tup[p]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// NaturalJoin returns t ⋈ u: tuples over the union of columns (t's columns
// first, then u's remaining columns) that agree on all shared columns.
func (t *Table) NaturalJoin(u *Table) *Table {
	// Build on the smaller side.
	build, probe := u, t
	swapped := false
	if t.Len() < u.Len() {
		build, probe = t, u
		swapped = true
	}
	shared := probe.sharedVars(build)
	probePos := make([]int, len(shared))
	buildPos := make([]int, len(shared))
	for i, v := range shared {
		probePos[i] = probe.Pos(v)
		buildPos[i] = build.Pos(v)
	}
	// Output columns: t's columns then u's extra columns.
	var extra []string // columns of u not in t
	for _, v := range u.vars {
		if !t.HasVar(v) {
			extra = append(extra, v)
		}
	}
	outVars := append(append([]string(nil), t.vars...), extra...)
	out := NewTable(outVars)

	// Hash the build side on shared columns.
	idx := make(map[string][]Tuple, build.Len())
	for _, tup := range build.tuples {
		k := projectKey(tup, buildPos)
		idx[k] = append(idx[k], tup)
	}

	// For composing output rows we need, per output column, where the value
	// comes from: position in t's tuple or in u's tuple.
	type src struct {
		fromT bool
		pos   int
	}
	srcs := make([]src, len(outVars))
	for i, v := range outVars {
		if p := t.Pos(v); p >= 0 {
			srcs[i] = src{true, p}
		} else {
			srcs[i] = src{false, u.Pos(v)}
		}
	}

	buf := make(Tuple, len(outVars))
	emit := func(tt, ut Tuple) {
		for i, s := range srcs {
			if s.fromT {
				buf[i] = tt[s.pos]
			} else {
				buf[i] = ut[s.pos]
			}
		}
		out.Add(buf)
	}

	for _, ptup := range probe.tuples {
		k := projectKey(ptup, probePos)
		for _, btup := range idx[k] {
			if swapped {
				// probe tuples come from u, build tuples from t
				emit(btup, ptup)
			} else {
				emit(ptup, btup)
			}
		}
	}
	return out
}

// Semijoin returns t ⋉ u: the tuples of t whose projection on the shared
// columns appears in u. With no shared columns, the result is t itself if u
// is non-empty and the empty table otherwise (cartesian semantics).
func (t *Table) Semijoin(u *Table) *Table {
	shared := t.sharedVars(u)
	out := NewTable(t.vars)
	if len(shared) == 0 {
		if u.Len() > 0 {
			for _, tup := range t.tuples {
				out.Add(tup)
			}
		}
		return out
	}
	tPos := make([]int, len(shared))
	uPos := make([]int, len(shared))
	for i, v := range shared {
		tPos[i] = t.Pos(v)
		uPos[i] = u.Pos(v)
	}
	idx := make(map[string]struct{}, u.Len())
	for _, tup := range u.tuples {
		idx[projectKey(tup, uPos)] = struct{}{}
	}
	for _, tup := range t.tuples {
		if _, ok := idx[projectKey(tup, tPos)]; ok {
			out.Add(tup)
		}
	}
	return out
}

// AntiSemijoin returns t ▷ u: the tuples of t whose projection on the
// shared columns does NOT appear in u. With no shared columns, the result
// is t itself if u is empty and the empty table otherwise (the complement
// of Semijoin's cartesian semantics). Used by the negation extension.
func (t *Table) AntiSemijoin(u *Table) *Table {
	shared := t.sharedVars(u)
	out := NewTable(t.vars)
	if len(shared) == 0 {
		if u.Len() == 0 {
			for _, tup := range t.tuples {
				out.Add(tup)
			}
		}
		return out
	}
	tPos := make([]int, len(shared))
	uPos := make([]int, len(shared))
	for i, v := range shared {
		tPos[i] = t.Pos(v)
		uPos[i] = u.Pos(v)
	}
	idx := make(map[string]struct{}, u.Len())
	for _, tup := range u.tuples {
		idx[projectKey(tup, uPos)] = struct{}{}
	}
	for _, tup := range t.tuples {
		if _, ok := idx[projectKey(tup, tPos)]; !ok {
			out.Add(tup)
		}
	}
	return out
}

// Union returns t ∪ u; the tables must have identical column lists.
func (t *Table) Union(u *Table) *Table {
	if !sameVars(t.vars, u.vars) {
		panic("relation: union over different columns")
	}
	out := t.Clone()
	for _, tup := range u.tuples {
		out.Add(tup)
	}
	return out
}

// Diff returns t − u; the tables must have identical column lists.
func (t *Table) Diff(u *Table) *Table {
	if !sameVars(t.vars, u.vars) {
		panic("relation: difference over different columns")
	}
	out := NewTable(t.vars)
	for _, tup := range t.tuples {
		if !u.Contains(tup) {
			out.Add(tup)
		}
	}
	return out
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order, for deterministic
// output and tests.
func (t *Table) SortedTuples() []Tuple {
	out := make([]Tuple, len(t.tuples))
	copy(out, t.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// EqualSet reports whether t and u contain the same tuple set over the same
// column list, regardless of column order in u.
func (t *Table) EqualSet(u *Table) bool {
	if len(t.vars) != len(u.vars) || t.Len() != u.Len() {
		return false
	}
	perm := make([]int, len(t.vars))
	for i, v := range t.vars {
		p := u.Pos(v)
		if p < 0 {
			return false
		}
		perm[i] = p
	}
	buf := make(Tuple, len(t.vars))
	for _, tup := range u.tuples {
		for i, p := range perm {
			buf[i] = tup[p]
		}
		if !t.Contains(buf) {
			return false
		}
	}
	return true
}

// String renders the table for debugging.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]{", strings.Join(t.vars, ","))
	for i, tup := range t.SortedTuples() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", []Value(tup))
	}
	b.WriteByte('}')
	return b.String()
}
