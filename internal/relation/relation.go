package relation

import (
	"fmt"
	"sort"
)

// Relation is a named, fixed-arity set of tuples. Relations use set
// semantics: inserting a duplicate tuple is a no-op. Storage is columnar
// (a flat []Value arena plus an integer-hashed row set; see colstore.go).
//
// Deletions are tombstones: Delete marks the physical row dead without
// moving data, so existing row slices stay valid and a later Insert of the
// same tuple resurrects the row in place. Logical row numbering (Len/Row/
// Tuples) skips dead rows through a lazily rebuilt live-row index; Seal
// rebuilds it eagerly and compacts the arena once dead rows reach a
// quarter of the physical rows.
//
// A Relation is safe for concurrent readers only while no mutation —
// Insert, Delete, Seal — is in flight (mutators also rebuild the lazy
// live index, so a mutate/read race is a data race even on "read" paths).
// The engine's delta machinery upholds this by mutating only fresh
// Extend versions and Sealing them before publication.
type Relation struct {
	name  string
	arity int
	colStore

	// dead is the tombstone bitset over physical rows; ndead counts its
	// set bits. live maps logical row i (0 <= i < Len()) to its physical
	// row, rebuilt lazily when liveStale; both are unused while ndead == 0
	// (logical and physical numbering coincide).
	dead      []uint64
	ndead     int
	live      []int32
	liveStale bool
}

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	if arity < 0 {
		panic("relation: negative arity")
	}
	r := &Relation{name: name, arity: arity}
	r.init(arity, 0)
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns, a(R) in the paper.
func (r *Relation) Arity() int { return r.arity }

// Len returns |R|, the number of (live) tuples.
func (r *Relation) Len() int { return r.nrows - r.ndead }

// Insert adds t to the relation, ignoring duplicates. It reports whether the
// tuple was new; re-inserting a deleted tuple resurrects its tombstoned row
// in place and also reports true. Insert panics if len(t) differs from the
// relation arity, which indicates a programming error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation %s: inserting tuple of length %d into arity-%d relation", r.name, len(t), r.arity))
	}
	if ph := r.find(t); ph >= 0 {
		if !r.isDead(ph) {
			return false
		}
		r.dead[ph>>6] &^= 1 << uint(ph&63)
		r.ndead--
		r.liveStale = true
		return true
	}
	// The membership probe above already proved t absent.
	r.addUnique(t)
	r.liveStale = true
	return true
}

// Delete removes t from the relation by tombstoning its row: the arena is
// untouched (previously returned row slices stay valid) and the row can be
// resurrected by a later Insert. It reports whether t was present.
func (r *Relation) Delete(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	ph := r.find(t)
	if ph < 0 || r.isDead(ph) {
		return false
	}
	for len(r.dead)*64 <= ph {
		r.dead = append(r.dead, 0)
	}
	r.dead[ph>>6] |= 1 << uint(ph&63)
	r.ndead++
	r.liveStale = true
	return true
}

// isDead reports whether physical row ph is tombstoned.
func (r *Relation) isDead(ph int) bool {
	w := ph >> 6
	return w < len(r.dead) && r.dead[w]&(1<<uint(ph&63)) != 0
}

// Tombstones returns the number of dead (deleted, not yet compacted)
// physical rows the relation carries.
func (r *Relation) Tombstones() int { return r.ndead }

// ensureLive rebuilds the logical→physical row index after mutations. It is
// a no-op while the relation has no tombstones (identity numbering).
func (r *Relation) ensureLive() {
	if r.ndead == 0 || !r.liveStale && r.live != nil {
		return
	}
	live := r.live[:0]
	for ph := 0; ph < r.nrows; ph++ {
		if !r.isDead(ph) {
			live = append(live, int32(ph))
		}
	}
	r.live, r.liveStale = live, false
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	ph := r.find(t)
	return ph >= 0 && !r.isDead(ph)
}

// Row returns tuple i (0 <= i < Len()) in insertion order as a slice into
// the relation's arena; the caller must not modify it.
func (r *Relation) Row(i int) Tuple {
	if r.ndead == 0 {
		return r.row(i)
	}
	r.ensureLive()
	return r.row(int(r.live[i]))
}

// Tuples returns the relation's (live) tuples in insertion order. Each call
// materializes a fresh header slice that the caller may reorder freely; the
// tuples themselves point into the relation's arena and must not be
// modified. Iterate with Len/Row in hot paths.
func (r *Relation) Tuples() []Tuple {
	if r.ndead == 0 {
		return r.headers()
	}
	r.ensureLive()
	out := make([]Tuple, len(r.live))
	for i, ph := range r.live {
		out[i] = r.row(int(ph))
	}
	return out
}

// Clone returns a deep copy of r. Tombstoned rows are not copied: the clone
// starts from a compact arena holding exactly the live tuples.
func (r *Relation) Clone() *Relation {
	c := &Relation{name: r.name, arity: r.arity}
	if r.ndead == 0 {
		c.cloneFrom(&r.colStore)
		return c
	}
	c.init(r.arity, r.Len())
	r.ensureLive()
	for _, ph := range r.live {
		c.addUnique(r.row(int(ph)))
	}
	return c
}

// Extend returns a new version of r that shares its columnar arena: the
// slot table and tombstone state are copied (row references, no tuple
// data), and subsequent Insert/Delete mutate only the extension — appended
// rows land past r's frontier in the shared backing array, which r never
// reads. Only the newest version of a relation may be extended or mutated
// (the engine's Apply serializes versions into a chain); r itself must be
// treated as immutable from here on.
func (r *Relation) Extend() *Relation {
	c := &Relation{name: r.name, arity: r.arity, ndead: r.ndead}
	c.width = r.width
	c.nrows = r.nrows
	c.data = r.data[:len(r.data)] // shared backing; only the newest version appends
	c.mask = r.mask
	if r.slots != nil {
		c.slots = append([]int32(nil), r.slots...)
	}
	if r.dead != nil {
		c.dead = append([]uint64(nil), r.dead...)
	}
	c.liveStale = true
	return c
}

// compactRatio is the tombstone fraction that triggers arena compaction in
// Seal: once dead rows reach 1/compactRatio of the physical rows, the live
// tuples are rewritten into a fresh exactly-sized arena. Reclaiming at
// least a quarter of the arena per compaction keeps the amortized cost per
// deleted tuple constant.
const compactRatio = 4

// Seal prepares the relation for publication to concurrent readers after a
// mutation batch: the live-row index is rebuilt eagerly (so no later read
// mutates lazy state) and the arena is compacted when tombstones have
// reached a quarter of the physical rows. It reports whether a compaction
// ran.
func (r *Relation) Seal() bool {
	if r.ndead > 0 && r.ndead*compactRatio >= r.nrows {
		r.compact()
		return true
	}
	r.ensureLive()
	return false
}

// compact rewrites the live tuples into a fresh exactly-sized arena,
// dropping every tombstone.
func (r *Relation) compact() {
	var c colStore
	c.init(r.arity, r.Len())
	for ph := 0; ph < r.nrows; ph++ {
		if !r.isDead(ph) {
			c.addUnique(r.row(ph))
		}
	}
	r.colStore = c
	r.dead, r.ndead, r.live, r.liveStale = nil, 0, nil, false
}

// Database is a finite database instance (D, R1, ..., Rn): an interning
// dictionary for the domain D plus a set of named relations.
type Database struct {
	dict  *Dict
	rels  map[string]*Relation
	order []string // relation names in creation order
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		dict: newDict(),
		rels: make(map[string]*Relation),
	}
}

// Dict returns the database's constant dictionary.
func (db *Database) Dict() *Dict { return db.dict }

// AddRelation creates (or returns the existing) relation with the given name
// and arity. It returns an error if a relation of the same name but a
// different arity already exists.
func (db *Database) AddRelation(name string, arity int) (*Relation, error) {
	if r, ok := db.rels[name]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("relation: %s already exists with arity %d (requested %d)", name, r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(name, arity)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// MustAddRelation is AddRelation for construction code where an arity clash
// is a programming error.
func (db *Database) MustAddRelation(name string, arity int) *Relation {
	r, err := db.AddRelation(name, arity)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// RelationNames returns all relation names, sorted, i.e. rel(DB).
func (db *Database) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	sort.Strings(out)
	return out
}

// NumRelations returns the number of relations in the database.
func (db *Database) NumRelations() int { return len(db.rels) }

// InsertNamed interns the given constant names and inserts the resulting
// tuple into the named relation, creating the relation on first use.
func (db *Database) InsertNamed(rel string, consts ...string) error {
	r, err := db.AddRelation(rel, len(consts))
	if err != nil {
		return err
	}
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.dict.Intern(c)
	}
	r.Insert(t)
	return nil
}

// MustInsertNamed is InsertNamed for construction code.
func (db *Database) MustInsertNamed(rel string, consts ...string) {
	if err := db.InsertNamed(rel, consts...); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across all relations; the "size of
// DB" under the data complexity measure.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// MaxRelationSize returns d, the size of the largest relation in the
// database (as used in Theorem 4.12), or 0 for an empty database.
func (db *Database) MaxRelationSize() int {
	d := 0
	for _, r := range db.rels {
		if r.Len() > d {
			d = r.Len()
		}
	}
	return d
}

// Clone returns a deep copy of the database sharing no mutable state.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	// Preserve interning so Values remain comparable across the copy.
	for _, name := range db.dict.interned() {
		c.dict.Intern(name)
	}
	for _, name := range db.order {
		r := db.rels[name]
		c.rels[name] = r.Clone()
		c.order = append(c.order, name)
	}
	return c
}

// Extend returns a new database version sharing the dictionary and every
// relation not named in replace; the named relations are swapped in (new
// names append to the creation order). It is the copy-on-write step behind
// the engine's epoch snapshots: unchanged relations are shared by pointer,
// so neither version may mutate them, and the shared dictionary grows
// append-only (Dict is internally locked).
func (db *Database) Extend(replace map[string]*Relation) *Database {
	c := &Database{
		dict:  db.dict,
		rels:  make(map[string]*Relation, len(db.rels)+len(replace)),
		order: db.order,
	}
	for name, r := range db.rels {
		c.rels[name] = r
	}
	added := make([]string, 0, len(replace))
	for name, r := range replace {
		if _, ok := c.rels[name]; !ok {
			added = append(added, name)
		}
		c.rels[name] = r
	}
	if len(added) > 0 {
		sort.Strings(added) // deterministic creation order for a batch of new relations
		c.order = append(append([]string(nil), db.order...), added...)
	}
	return c
}
