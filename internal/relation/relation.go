package relation

import (
	"fmt"
	"sort"
)

// Relation is a named, fixed-arity set of tuples. Relations use set
// semantics: inserting a duplicate tuple is a no-op. Storage is columnar
// (a flat []Value arena plus an integer-hashed row set; see colstore.go).
type Relation struct {
	name  string
	arity int
	colStore
}

// NewRelation returns an empty relation with the given name and arity.
func NewRelation(name string, arity int) *Relation {
	if arity < 0 {
		panic("relation: negative arity")
	}
	r := &Relation{name: name, arity: arity}
	r.init(arity, 0)
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns, a(R) in the paper.
func (r *Relation) Arity() int { return r.arity }

// Len returns |R|, the number of tuples.
func (r *Relation) Len() int { return r.nrows }

// Insert adds t to the relation, ignoring duplicates. It reports whether the
// tuple was new. Insert panics if len(t) differs from the relation arity,
// which indicates a programming error.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation %s: inserting tuple of length %d into arity-%d relation", r.name, len(t), r.arity))
	}
	return r.add(t)
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.contains(t)
}

// Row returns tuple i (0 <= i < Len()) in insertion order as a slice into
// the relation's arena; the caller must not modify it.
func (r *Relation) Row(i int) Tuple { return r.row(i) }

// Tuples returns the relation's tuples in insertion order. Each call
// materializes a fresh header slice that the caller may reorder freely; the
// tuples themselves point into the relation's arena and must not be
// modified. Iterate with Len/Row in hot paths.
func (r *Relation) Tuples() []Tuple { return r.headers() }

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := &Relation{name: r.name, arity: r.arity}
	c.cloneFrom(&r.colStore)
	return c
}

// Database is a finite database instance (D, R1, ..., Rn): an interning
// dictionary for the domain D plus a set of named relations.
type Database struct {
	dict  *Dict
	rels  map[string]*Relation
	order []string // relation names in creation order
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		dict: newDict(),
		rels: make(map[string]*Relation),
	}
}

// Dict returns the database's constant dictionary.
func (db *Database) Dict() *Dict { return db.dict }

// AddRelation creates (or returns the existing) relation with the given name
// and arity. It returns an error if a relation of the same name but a
// different arity already exists.
func (db *Database) AddRelation(name string, arity int) (*Relation, error) {
	if r, ok := db.rels[name]; ok {
		if r.arity != arity {
			return nil, fmt.Errorf("relation: %s already exists with arity %d (requested %d)", name, r.arity, arity)
		}
		return r, nil
	}
	r := NewRelation(name, arity)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// MustAddRelation is AddRelation for construction code where an arity clash
// is a programming error.
func (db *Database) MustAddRelation(name string, arity int) *Relation {
	r, err := db.AddRelation(name, arity)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// RelationNames returns all relation names, sorted, i.e. rel(DB).
func (db *Database) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	sort.Strings(out)
	return out
}

// NumRelations returns the number of relations in the database.
func (db *Database) NumRelations() int { return len(db.rels) }

// InsertNamed interns the given constant names and inserts the resulting
// tuple into the named relation, creating the relation on first use.
func (db *Database) InsertNamed(rel string, consts ...string) error {
	r, err := db.AddRelation(rel, len(consts))
	if err != nil {
		return err
	}
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.dict.Intern(c)
	}
	r.Insert(t)
	return nil
}

// MustInsertNamed is InsertNamed for construction code.
func (db *Database) MustInsertNamed(rel string, consts ...string) {
	if err := db.InsertNamed(rel, consts...); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across all relations; the "size of
// DB" under the data complexity measure.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// MaxRelationSize returns d, the size of the largest relation in the
// database (as used in Theorem 4.12), or 0 for an empty database.
func (db *Database) MaxRelationSize() int {
	d := 0
	for _, r := range db.rels {
		if r.Len() > d {
			d = r.Len()
		}
	}
	return d
}

// Clone returns a deep copy of the database sharing no mutable state.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	// Preserve interning so Values remain comparable across the copy.
	for _, name := range db.dict.names {
		c.dict.Intern(name)
	}
	for _, name := range db.order {
		r := db.rels[name]
		cr := c.MustAddRelation(name, r.arity)
		cr.cloneFrom(&r.colStore)
	}
	return c
}
