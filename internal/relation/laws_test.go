package relation

// Algebraic laws of the relational substrate, run as randomized property
// tests against the columnar implementation. These pin the set-semantics
// contract the index definitions (Definition 2.6) rely on, independently of
// the storage layout: the old row-oriented implementation satisfied the same
// laws, so they double as a behavioral regression suite for the columnar
// rewrite.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lawTable builds a random table over the given columns.
func lawTable(r *rand.Rand, vars []string, domain, maxRows int) *Table {
	t := NewTable(vars)
	rows := r.Intn(maxRows + 1)
	tup := make(Tuple, len(vars))
	for i := 0; i < rows; i++ {
		for j := range tup {
			tup[j] = Value(r.Intn(domain))
		}
		t.Add(tup)
	}
	return t
}

// Law: Unit is a two-sided identity of the natural join.
func TestLawUnitJoinIdentity(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := lawTable(r, []string{"X", "Y", "Z"}, 4, 15)
		return a.NaturalJoin(Unit()).EqualSet(a) && Unit().NaturalJoin(a).EqualSet(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Law: natural join is commutative up to column order (EqualSet compares by
// column name, not position).
func TestLawJoinCommutative(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := lawTable(r, []string{"X", "Y"}, 4, 12)
		b := lawTable(r, []string{"Y", "Z"}, 4, 12)
		ab, ba := a.NaturalJoin(b), b.NaturalJoin(a)
		// The column orders differ (X,Y,Z vs Y,Z,X); the tuple sets must not.
		return ab.EqualSet(ba) && !sameVars(ab.Vars(), ba.Vars())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Law: projection is idempotent: π_V(π_V(t)) = π_V(t), and projecting onto
// all columns is the identity.
func TestLawProjectIdempotent(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := lawTable(r, []string{"X", "Y", "Z"}, 3, 20)
		p := a.Project([]string{"X", "Z"})
		if !p.Project([]string{"X", "Z"}).EqualSet(p) {
			return false
		}
		return a.Project([]string{"X", "Y", "Z"}).EqualSet(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Law: semijoin and antisemijoin partition t: they are disjoint and their
// union is t, for shared-column and disjoint-column operands alike.
func TestLawSemiAntiPartition(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := lawTable(r, []string{"X", "Y"}, 3, 15)
		for _, u := range []*Table{
			lawTable(r, []string{"Y", "Z"}, 3, 15), // shared column Y
			lawTable(r, []string{"W"}, 3, 3),       // no shared columns
			NewTable([]string{"Y"}),                // empty, shared column
		} {
			semi, anti := a.Semijoin(u), a.AntiSemijoin(u)
			if semi.Len()+anti.Len() != a.Len() {
				return false
			}
			if !semi.Union(anti).EqualSet(a) {
				return false
			}
			for _, tup := range semi.Tuples() {
				if anti.Contains(tup) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FromAtom with a repeated variable acts as an equality selection, and a
// constant term as a constant selection (Datalog semantics).
func TestLawFromAtomRepeatedVarsAndConstants(t *testing.T) {
	db := NewDatabase()
	c0 := db.Dict().Intern("a")
	c1 := db.Dict().Intern("b")
	c2 := db.Dict().Intern("c")
	rel := db.MustAddRelation("p", 3)
	rel.Insert(Tuple{c0, c0, c1}) // matches p(X,X,Y)
	rel.Insert(Tuple{c0, c1, c2})
	rel.Insert(Tuple{c1, c1, c1}) // matches p(X,X,Y)
	rel.Insert(Tuple{c2, c0, c1})

	// Repeated variable: p(X,X,Y) selects rows with t[0]==t[1].
	rep, err := FromAtom(db, NewAtom("p", "X", "X", "Y"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameVars(rep.Vars(), []string{"X", "Y"}) {
		t.Fatalf("p(X,X,Y) columns = %v, want [X Y]", rep.Vars())
	}
	want := mkTable(t, []string{"X", "Y"}, Tuple{c0, c1}, Tuple{c1, c1})
	if !want.EqualSet(rep) {
		t.Errorf("p(X,X,Y) = %v, want %v", rep, want)
	}

	// Constant term: p(X,b,Y) selects rows with t[1]==b.
	konst, err := FromAtom(db, Atom{Pred: "p", Terms: []Term{V("X"), C(c1), V("Y")}})
	if err != nil {
		t.Fatal(err)
	}
	wantK := mkTable(t, []string{"X", "Y"}, Tuple{c0, c2}, Tuple{c1, c1})
	if !wantK.EqualSet(konst) {
		t.Errorf("p(X,b,Y) = %v, want %v", konst, wantK)
	}

	// Repeated variable AND constant: p(X,X,b) selects t[0]==t[1] && t[2]==b,
	// matching (a,a,b) and (b,b,b).
	both, err := FromAtom(db, Atom{Pred: "p", Terms: []Term{V("X"), V("X"), C(c1)}})
	if err != nil {
		t.Fatal(err)
	}
	wantB := mkTable(t, []string{"X"}, Tuple{c0}, Tuple{c1})
	if !wantB.EqualSet(both) {
		t.Errorf("p(X,X,c1) = %v, want %v", both, wantB)
	}
}

// JoinAtoms on an unsatisfiable atom set returns an empty table that still
// carries the full unioned schema att(R) — including the columns of atoms
// never joined because of the early exit.
func TestLawJoinAtomsEmptySchema(t *testing.T) {
	db := NewDatabase()
	a := db.Dict().Intern("a")
	b := db.Dict().Intern("b")
	db.MustAddRelation("p", 2).Insert(Tuple{a, a})
	db.MustAddRelation("q", 2).Insert(Tuple{b, b}) // p ⋈ q on Y is empty
	db.MustAddRelation("r", 2).Insert(Tuple{a, b})
	atoms := []Atom{
		NewAtom("p", "X", "Y"),
		NewAtom("q", "Y", "Z"),
		NewAtom("r", "Z", "W"),
	}
	j, err := JoinAtoms(db, atoms)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Empty() {
		t.Fatalf("join should be empty, got %v", j)
	}
	for _, v := range AtomsVars(atoms) {
		if !j.HasVar(v) {
			t.Errorf("empty join result missing column %q (schema %v)", v, j.Vars())
		}
	}
}

// The compiled JoinPlan agrees with JoinAtoms on random chain workloads.
func TestLawPlanMatchesJoinAtoms(t *testing.T) {
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := lawTable(r, []string{"X", "Y"}, 3, 10)
		b := lawTable(r, []string{"Y", "Z"}, 3, 10)
		c := lawTable(r, []string{"Z", "W"}, 3, 10)
		plan := CompileJoinPlan([][]string{a.Vars(), b.Vars(), c.Vars()})
		got, err := plan.Run([]*Table{a, b, c})
		if err != nil {
			return false
		}
		want := a.NaturalJoin(b).NaturalJoin(c)
		return got.EqualSet(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
