package diff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/relation"
)

// seedsPerShape * len(gen.Shapes()) must stay >= 300: the differential
// sweep is the repo's primary correctness gate and runs in short mode too.
const seedsPerShape = 25

// TestDifferentialSweep runs the full harness — oracle vs. naive, engine,
// stream (twice), and all four deciders with witness validation — over
// hundreds of seeded scenarios across every registered shape, accumulating
// the approximate decider's confusion counts; the aggregate ε–δ gates run
// in TestDifferentialSweep/approx-contract after every shape completes.
func TestDifferentialSweep(t *testing.T) {
	shapes := gen.Shapes()
	if total := seedsPerShape * len(shapes); total < 300 {
		t.Fatalf("sweep covers only %d cases; the harness promises >= 300", total)
	}
	tally := NewApproxTally()
	// The shape subtests run in parallel inside one group: the group's Run
	// does not return until every parallel child finished, so the
	// approx-contract gates below see the complete tally.
	t.Run("shapes", func(t *testing.T) {
		for _, shape := range shapes {
			shape := shape
			t.Run(shape, func(t *testing.T) {
				t.Parallel()
				for seed := int64(0); seed < seedsPerShape; seed++ {
					s, err := gen.NewScenario(seed, shape)
					if err != nil {
						t.Fatal(err)
					}
					m, err := RunTally(s, tally)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if m != nil {
						min := Minimize(s)
						repro, merr := MarshalScenario(min)
						if merr != nil {
							repro = "(marshal failed: " + merr.Error() + ")"
						}
						t.Fatalf("%v\nminimized repro (commit under internal/diff/testdata/corpus/):\n%s", m, repro)
					}
				}
			})
		}
	})
	// Aggregate ε–δ gates over the whole sweep.
	t.Run("approx-contract", func(t *testing.T) {
		total := tally.Total()
		if total.Decisions == 0 {
			t.Fatal("sweep recorded no approx decisions")
		}
		// Sampled accepts are confirmed exactly: a false positive is a bug
		// regardless of δ. In-band misses mean a failed escalation: same.
		// (Both are also per-case mismatches in RunTally; this re-checks the
		// aggregate so the gate survives harness refactors.)
		if total.FP != 0 {
			t.Errorf("%d false positives across the sweep; sampled accepts are exactly confirmed and must never be wrong", total.FP)
		}
		if rate := tally.OutOfBandErrorRate(); rate > ApproxDelta {
			t.Errorf("out-of-band error rate %.4f exceeds delta %g", rate, ApproxDelta)
		}
		// With the budget covering every generated population, in-band
		// cases resolve exactly (full coverage or escalation): agreement
		// there must be total, i.e. all misses are out-of-band.
		if total.FN != total.OutFN {
			t.Errorf("%d in-band misses; in-band decisions escalate to exact evaluation and may never be wrong", total.FN-total.OutFN)
		}
		t.Log("\n" + tally.Summary())
	})
}

// Every committed corpus entry must keep passing the full harness: corpus
// entries are minimized repros of past failures (or representative pinned
// scenarios), so a regression here is a reintroduced bug.
func TestCorpus(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries found; the corpus must at least hold the pinned seed scenarios")
	}
	for _, path := range entries {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := UnmarshalScenario(string(blob))
			if err != nil {
				t.Fatal(err)
			}
			m, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				t.Fatalf("corpus regression: %v", m)
			}
		})
	}
}

// Marshal/Unmarshal must round-trip scenarios exactly: same metaquery text,
// thresholds, schemas and row sets — including CSV-hostile constants.
func TestScenarioRoundTrip(t *testing.T) {
	for _, shape := range gen.Shapes() {
		s, err := gen.NewScenario(11, shape)
		if err != nil {
			t.Fatal(err)
		}
		text, err := MarshalScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalScenario(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", shape, err, text)
		}
		if back.MQ.String() != s.MQ.String() {
			t.Errorf("%s: metaquery round-trip %q != %q", shape, back.MQ, s.MQ)
		}
		if back.Type != s.Type || back.Th != s.Th || back.Seed != s.Seed || back.Shape != s.Shape {
			t.Errorf("%s: scenario metadata changed in round-trip", shape)
		}
		text2, err := MarshalScenario(back)
		if err != nil {
			t.Fatal(err)
		}
		if text2 != text {
			t.Errorf("%s: marshal not a fixpoint:\n%s\nvs\n%s", shape, text, text2)
		}
	}
}

// Minimize must return a passing scenario unchanged.
func TestMinimizePassingScenarioUnchanged(t *testing.T) {
	s, err := gen.NewScenario(3, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	if got := Minimize(s); got != s {
		t.Error("Minimize must return a passing scenario unchanged")
	}
}

// On a synthetic failure — injected through the swappable run check, since
// the production paths currently agree with the oracle everywhere — the
// minimizer must shrink the scenario to the failure's essential core
// (here: one needle tuple) while keeping it failing, valid, and
// marshalable.
func TestMinimizeShrinksToFailureCore(t *testing.T) {
	s, err := gen.NewScenario(5, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	// Plant a needle tuple in the first relation.
	names := s.DB.RelationNames()
	needleRel := names[0]
	arity := s.DB.Relation(needleRel).Arity()
	needle := make([]string, arity)
	for i := range needle {
		needle[i] = "needle"
	}
	s.DB.MustInsertNamed(needleRel, needle...)

	orig := runCheck
	defer func() { runCheck = orig }()
	runCheck = func(c *gen.Scenario) (*Mismatch, error) {
		rel := c.DB.Relation(needleRel)
		if rel == nil {
			return nil, nil
		}
		if v, ok := c.DB.Dict().Lookup("needle"); ok {
			needleTup := make(relation.Tuple, arity)
			for i := range needleTup {
				needleTup[i] = v
			}
			if rel.Contains(needleTup) {
				return &Mismatch{Scenario: c, Path: "synthetic", Detail: "needle present"}, nil
			}
		}
		return nil, nil
	}

	min := Minimize(s)
	if !stillFails(min) {
		t.Fatal("minimized scenario no longer fails")
	}
	// Everything inessential is gone: only the needle relation with only
	// the needle tuple, and a single body literal.
	if got := min.DB.Relation(needleRel).Len(); got != 1 {
		t.Errorf("minimized needle relation has %d tuples, want 1", got)
	}
	if got := min.DB.NumRelations(); got != 1 {
		t.Errorf("minimized database has %d relations, want 1", got)
	}
	if got := len(min.MQ.Body); got != 1 {
		t.Errorf("minimized metaquery has %d body literals, want 1", got)
	}
	if _, err := MarshalScenario(min); err != nil {
		t.Fatalf("minimized scenario does not marshal: %v", err)
	}
}

// ddmin must find a minimal failing core that needs tuples from two
// different relations simultaneously: the failure predicate requires BOTH
// needles, so single-chunk reduction alone cannot isolate it and the
// complement phase has to do the work. The polish pass then guarantees
// 1-minimality: exactly the two needle tuples survive.
func TestMinimizeDDMinTwoNeedles(t *testing.T) {
	s, err := gen.NewScenario(7, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	names := s.DB.RelationNames()
	if len(names) < 2 {
		t.Fatal("scenario needs two relations")
	}
	plant := func(rel string) {
		arity := s.DB.Relation(rel).Arity()
		row := make([]string, arity)
		for i := range row {
			row[i] = "needle"
		}
		s.DB.MustInsertNamed(rel, row...)
	}
	plant(names[0])
	plant(names[1])

	hasNeedle := func(c *gen.Scenario, rel string) bool {
		r := c.DB.Relation(rel)
		if r == nil {
			return false
		}
		v, ok := c.DB.Dict().Lookup("needle")
		if !ok {
			return false
		}
		tup := make(relation.Tuple, r.Arity())
		for i := range tup {
			tup[i] = v
		}
		return r.Contains(tup)
	}
	orig := runCheck
	defer func() { runCheck = orig }()
	runCheck = func(c *gen.Scenario) (*Mismatch, error) {
		if hasNeedle(c, names[0]) && hasNeedle(c, names[1]) {
			return &Mismatch{Scenario: c, Path: "synthetic", Detail: "both needles present"}, nil
		}
		return nil, nil
	}

	min := Minimize(s)
	if !stillFails(min) {
		t.Fatal("minimized scenario no longer fails")
	}
	total := 0
	for _, name := range min.DB.RelationNames() {
		total += min.DB.Relation(name).Len()
	}
	if total != 2 {
		repro, _ := MarshalScenario(min)
		t.Fatalf("minimized database holds %d tuples, want exactly the 2 needles:\n%s", total, repro)
	}
}

// Constants that collide with the block grammar — the literal "end"
// terminator and the empty string — must still round-trip: the marshaller
// force-quotes them.
func TestScenarioRoundTripGrammarCollidingConstants(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("r0", "end")
	db.MustInsertNamed("r0", "")
	db.MustInsertNamed("r0", "plain")
	db.MustInsertNamed("r1", "end", "x")
	s := &gen.Scenario{Shape: "hand", DB: db, MQ: core.MustParse("R(X) <- P(X)"), Type: core.Type0}
	text, err := MarshalScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalScenario(text)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if got := back.DB.Relation("r0").Len(); got != 3 {
		t.Errorf("r0 has %d rows after round-trip, want 3\n%s", got, text)
	}
	if got := back.DB.Relation("r1").Len(); got != 1 {
		t.Errorf("r1 has %d rows after round-trip, want 1\n%s", got, text)
	}
	for _, c := range []string{"end", "", "plain"} {
		if _, ok := back.DB.Dict().Lookup(c); !ok {
			t.Errorf("constant %q lost in round-trip\n%s", c, text)
		}
	}
}

// Unmarshal must reject malformed inputs with errors, not panics.
func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",                             // no mq
		"mq not a metaquery",           // parse error
		"type 7\nmq R(X) <- p(X)",      // bad type
		"rel r0\nmq R(X) <- p(X)",      // bad rel line
		"seed x\nmq R(X) <- p(X)",      // bad seed
		"mq R(X) <- p(X)\nrel r0 1\na", // missing end
		"bogus line",                   // unrecognized
	}
	for _, text := range bad {
		if _, err := UnmarshalScenario(text); err == nil {
			t.Errorf("UnmarshalScenario(%q) succeeded, want error", text)
		}
	}
}

// The textual format documented in MarshalScenario parses as written.
func TestUnmarshalDocumentedExample(t *testing.T) {
	text := strings.Join([]string{
		"# mqfuzz repro",
		"shape t0-chain",
		"seed 17",
		"type 0",
		"sup 1/3",
		"mq R(X,Z) <- P1(X,Y), P2(Y,Z)",
		"rel r0 2",
		"a,b",
		`"c,d",e`,
		"end",
		"",
	}, "\n")
	s, err := UnmarshalScenario(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.DB.Relation("r0").Len() != 2 {
		t.Errorf("r0 has %d rows, want 2", s.DB.Relation("r0").Len())
	}
	if !s.Th.CheckSup || s.Th.CheckCnf {
		t.Error("threshold flags not parsed")
	}
	if _, ok := s.DB.Dict().Lookup("c,d"); !ok {
		t.Error("CSV-quoted constant not preserved")
	}
}
