package diff

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/oracle"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// DeltaBatches is the script length RunDeltas drives through Engine.Apply.
const DeltaBatches = 3

// RunDeltas is the incremental-engine differential: it prepares a scenario's
// metaquery once (sequential and worker-pool parallel) on a mutable engine,
// then drives a seed-deterministic delta script (gen.DeltaScript) through
// Engine.Apply and, after every batch, checks each execution path of the
// long-lived Prepared values against a from-scratch engine built on a clone
// of the post-delta database. Any divergence means the incremental
// maintenance — copy-on-write relations, statistics deltas, candidate-index
// and cache carryover, epoch switching inside Prepared — broke somewhere a
// rebuild would not.
//
// After the final batch it also cross-checks the decision path: DecideFirst
// bounds derived from the fresh engine's unconstrained maxima, with witness
// validity confirmed by the oracle on the final database.
func RunDeltas(s *gen.Scenario) (*Mismatch, error) {
	ctx := context.Background()
	mismatch := func(path, detail string) *Mismatch {
		return &Mismatch{Scenario: s, Path: path, Detail: detail}
	}

	eng := engine.NewEngine(s.DB.Clone())
	opt := engine.Options{Type: s.Type, Thresholds: s.Th}
	prep, err := eng.Prepare(s.MQ, opt)
	if err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	rng := rand.New(rand.NewSource(s.Seed ^ 0xde17a))
	parWorkers := 2 + rng.Intn(4)
	parOpt := opt
	parOpt.Workers = parWorkers
	prepPar, err := eng.Prepare(s.MQ, parOpt)
	if err != nil {
		return nil, fmt.Errorf("prepare-parallel: %w", err)
	}

	// Warm both Prepareds on epoch 0 so the per-epoch join caches have
	// content the epoch switch must correctly carry or drop.
	if _, err := prep.FindRules(ctx); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if _, err := prepPar.FindRules(ctx); err != nil {
		return nil, fmt.Errorf("warmup-parallel: %w", err)
	}

	script := gen.DeltaScript(s, DeltaBatches)
	for bi, batch := range script {
		d := engine.Delta{}
		for _, td := range batch {
			d.Relations = append(d.Relations, engine.RelationDelta{
				Name: td.Rel, Arity: td.Arity, Insert: td.Insert, Delete: td.Delete,
			})
		}
		if _, err := eng.Apply(ctx, d); err != nil {
			return nil, fmt.Errorf("apply batch %d: %w", bi, err)
		}

		fresh := engine.NewEngine(eng.Database().Clone())
		want, err := fresh.FindRules(ctx, s.MQ, opt)
		if err != nil {
			return nil, fmt.Errorf("fresh rebuild after batch %d: %w", bi, err)
		}
		wantSet := answerSet(coreKeys(want))
		tag := func(path string) string { return fmt.Sprintf("%s (batch %d)", path, bi) }

		got, err := prep.FindRules(ctx)
		if err != nil {
			return nil, fmt.Errorf("delta-engine batch %d: %w", bi, err)
		}
		if d := diffSets(answerSet(coreKeys(got)), wantSet); d != "" {
			return mismatch("delta-engine", tag(d)), nil
		}

		var streamed []core.Answer
		for a, serr := range prep.Stream(ctx) {
			if serr != nil {
				return nil, fmt.Errorf("delta-stream batch %d: %w", bi, serr)
			}
			streamed = append(streamed, a)
		}
		if d := diffSets(answerSet(coreKeys(streamed)), wantSet); d != "" {
			return mismatch("delta-stream", tag(d)), nil
		}

		var parStreamed []core.Answer
		for a, serr := range prepPar.Stream(ctx) {
			if serr != nil {
				return nil, fmt.Errorf("delta-stream-parallel batch %d: %w", bi, serr)
			}
			parStreamed = append(parStreamed, a)
		}
		if d := diffSets(answerSet(coreKeys(parStreamed)), wantSet); d != "" {
			return mismatch("delta-stream-parallel", fmt.Sprintf("workers=%d: %s", parWorkers, tag(d))), nil
		}

		parFull, err := prepPar.FindRules(ctx)
		if err != nil {
			return nil, fmt.Errorf("delta-findrules-parallel batch %d: %w", bi, err)
		}
		if d := diffSets(answerSet(coreKeys(parFull)), wantSet); d != "" {
			return mismatch("delta-findrules-parallel", fmt.Sprintf("workers=%d: %s", parWorkers, tag(d))), nil
		}

		// The incrementally maintained statistics must stay exactly what a
		// cold collection over the current database produces.
		if d := eng.Statistics().DiffFrom(fresh.Statistics()); d != "" {
			return mismatch("delta-stats", tag(d)), nil
		}
	}

	// Decision path on the final database: bounds that flip the verdict,
	// derived from the fresh engine's unconstrained maxima.
	finalDB := eng.Database()
	fresh := engine.NewEngine(finalDB.Clone())
	all, err := fresh.FindRules(ctx, s.MQ, engine.Options{Type: s.Type})
	if err != nil {
		return nil, fmt.Errorf("fresh unconstrained: %w", err)
	}
	maxes := map[core.Index]rat.Rat{core.Sup: rat.Zero, core.Cnf: rat.Zero, core.Cvr: rat.Zero}
	for _, a := range all {
		maxes[core.Sup] = rat.Max(maxes[core.Sup], a.Sup)
		maxes[core.Cnf] = rat.Max(maxes[core.Cnf], a.Cnf)
		maxes[core.Cvr] = rat.Max(maxes[core.Cvr], a.Cvr)
	}
	for _, ix := range core.AllIndices {
		maxV := maxes[ix]
		bounds := []rat.Rat{rat.Zero, maxV}
		if maxV.Greater(rat.Zero) {
			bounds = append(bounds, rat.New(maxV.Num(), maxV.Den()*2))
		}
		for _, k := range bounds {
			wantYes := maxV.Greater(k)
			for _, leg := range []struct {
				path string
				p    *engine.Prepared
			}{{"delta-decide-first", prep}, {"delta-decide-first-parallel", prepPar}} {
				gotYes, wit, err := leg.p.DecideFirst(ctx, ix, k)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", leg.path, err)
				}
				if gotYes != wantYes {
					return mismatch(leg.path,
						fmt.Sprintf("%s > %s: got %v, fresh maxima say %v", ix, k, gotYes, wantYes)), nil
				}
				if m := checkWitnessOn(s, finalDB, ix, k, wit, leg.path); m != nil {
					return m, nil
				}
			}
		}
	}
	return nil, nil
}

// checkWitnessOn is checkWitness against an explicit database version (the
// post-delta state, not the scenario's original DB).
func checkWitnessOn(s *gen.Scenario, db *relation.Database, ix core.Index, k rat.Rat, wit *core.Instantiation, path string) *Mismatch {
	if wit == nil {
		return nil
	}
	rule, err := wit.Apply(s.MQ)
	if err != nil {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness %s does not instantiate the metaquery: %v", wit, err)}
	}
	sup, cnf, cvr, err := oracle.Indices(db, rule)
	if err != nil {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness rule %s not evaluable: %v", rule, err)}
	}
	v := sup
	switch ix {
	case core.Cnf:
		v = cnf
	case core.Cvr:
		v = cvr
	}
	if !v.Greater(k) {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness rule %s has %s = %s, not > %s", rule, ix, v, k)}
	}
	return nil
}
