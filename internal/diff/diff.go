// Package diff is the differential oracle harness: it runs one generated
// scenario (internal/gen) through every execution path of the repo — the
// naive enumerator, the findRules engine under both the cost-based and
// the greedy join planner, the Prepared/Stream session API (sequential
// and worker-pool parallel), and the sequential, parallel, first-witness
// (sequential and partitioned) and sampling ε–δ approximate
// deciders — and checks each against the transparent brute-force oracle
// (internal/oracle), rat-exact and order-insensitive. A disagreement anywhere is a bug in one of the
// production paths (or, symmetrically, in the oracle), and is reported as a
// Mismatch naming the path and the divergence.
//
// cmd/mqfuzz drives this package over seed ranges; TestDifferentialSweep
// pins a few hundred seeded cases into `go test ./...`; the corpus under
// testdata/corpus replays previously found (or representative) scenarios as
// regression tests. Failing scenarios shrink to committable repros through
// Minimize (ddmin over tuples, then a greedy structural polish).
package diff

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/oracle"
	"github.com/mqgo/metaquery/internal/rat"
)

// The harness drives the approximate decider under one fixed ε–δ contract:
// wide enough that the generated populations are covered by the sample
// budget (making the sweep deterministic), tight enough that the ±ε band
// around each derived bound stays meaningful.
const (
	// ApproxEps is the indifference half-band the harness grants the
	// sampled decider around each decision bound.
	ApproxEps = 0.125
	// ApproxDelta bounds the sampled decider's per-decision error
	// probability outside the band; the sweep gate checks the observed
	// out-of-band error rate against it.
	ApproxDelta = 0.125
	// ApproxBudget is the per-fraction sample cap. It exceeds every
	// generated population, so without-replacement sampling always covers
	// the population (which is exact) before guessing — the sweep therefore
	// tolerates zero out-of-band errors in practice while still walking the
	// whole sampling machinery.
	ApproxBudget = 4096
)

// ApproxCounts is oracle-derived confusion accounting for sampled
// decisions: positives are oracle-YES cases (the true max index exceeds the
// bound), so a false negative is a missed witness and a false positive a
// fabricated one.
type ApproxCounts struct {
	TP, FP, TN, FN int
	// InBand counts decisions whose true max index lies within ±ApproxEps
	// of the bound — the regime where the decider must escalate to exact
	// evaluation rather than guess.
	InBand int
	// OutFN counts false negatives outside the band: the only error the
	// ε–δ contract permits, at rate at most ApproxDelta.
	OutFN int
	// Escalated counts decisions reporting at least one escalation;
	// Samples totals the rows drawn.
	Escalated int
	Samples   int
	Decisions int
}

func (c *ApproxCounts) add(o ApproxCounts) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
	c.InBand += o.InBand
	c.OutFN += o.OutFN
	c.Escalated += o.Escalated
	c.Samples += o.Samples
	c.Decisions += o.Decisions
}

// ApproxTally accumulates per-shape ApproxCounts across a sweep. It is safe
// for concurrent RunTally calls.
type ApproxTally struct {
	mu     sync.Mutex
	shapes map[string]*ApproxCounts
}

// NewApproxTally returns an empty tally.
func NewApproxTally() *ApproxTally {
	return &ApproxTally{shapes: map[string]*ApproxCounts{}}
}

func (t *ApproxTally) record(shape string, c ApproxCounts) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sc := t.shapes[shape]
	if sc == nil {
		sc = &ApproxCounts{}
		t.shapes[shape] = sc
	}
	sc.add(c)
}

// Shape returns the accumulated counts for one scenario shape.
func (t *ApproxTally) Shape(shape string) ApproxCounts {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.shapes[shape]; c != nil {
		return *c
	}
	return ApproxCounts{}
}

// Total returns the counts summed over all shapes.
func (t *ApproxTally) Total() ApproxCounts {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total ApproxCounts
	for _, c := range t.shapes {
		total.add(*c)
	}
	return total
}

// OutOfBandErrorRate is the observed error rate over decisions outside the
// ±ε band — the quantity the ε–δ contract bounds by ApproxDelta. It is 0
// when no out-of-band decision was recorded.
func (t *ApproxTally) OutOfBandErrorRate() float64 {
	total := t.Total()
	out := total.Decisions - total.InBand
	if out <= 0 {
		return 0
	}
	return float64(total.OutFN) / float64(out)
}

// Summary renders the per-shape confusion table plus the aggregate line.
func (t *ApproxTally) Summary() string {
	t.mu.Lock()
	names := make([]string, 0, len(t.shapes))
	for shape := range t.shapes {
		names = append(names, shape)
	}
	t.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "decide-approx sweep (eps=%g delta=%g budget=%d):\n", ApproxEps, ApproxDelta, ApproxBudget)
	fmt.Fprintf(&b, "  %-16s %5s %5s %5s %5s %7s %6s %9s %9s\n",
		"shape", "TP", "FP", "TN", "FN", "in-band", "escal", "samples", "decisions")
	for _, shape := range names {
		c := t.Shape(shape)
		fmt.Fprintf(&b, "  %-16s %5d %5d %5d %5d %7d %6d %9d %9d\n",
			shape, c.TP, c.FP, c.TN, c.FN, c.InBand, c.Escalated, c.Samples, c.Decisions)
	}
	total := t.Total()
	fmt.Fprintf(&b, "  %-16s %5d %5d %5d %5d %7d %6d %9d %9d\n",
		"total", total.TP, total.FP, total.TN, total.FN, total.InBand, total.Escalated, total.Samples, total.Decisions)
	fmt.Fprintf(&b, "  out-of-band error rate %.4f (contract: <= %g)", t.OutOfBandErrorRate(), ApproxDelta)
	return b.String()
}

// Mismatch describes one divergence between a production execution path and
// the oracle (or between two production paths).
type Mismatch struct {
	Scenario *gen.Scenario
	// Path names the execution path that disagreed: "naive", "engine",
	// "engine-greedy", "stream", "stream-rerun", "stream-parallel",
	// "findrules-parallel", "decide", "decide-parallel", "engine-decide",
	// "decide-first", "decide-first-parallel", "decide-approx", "witness".
	Path string
	// Detail is a human-readable description of the divergence.
	Detail string
}

// Error renders the mismatch as a one-line summary; the full repro comes
// from MarshalScenario.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("diff: %s/%d: path %q disagrees with the oracle: %s",
		m.Scenario.Shape, m.Scenario.Seed, m.Path, m.Detail)
}

// admitted applies the scenario's strict thresholds to one oracle answer,
// spelled out here rather than through core.Thresholds.Admits so the
// expected set is derived without production code.
func admitted(th core.Thresholds, a oracle.Answer) bool {
	if th.CheckSup && !a.Sup.Greater(th.Sup) {
		return false
	}
	if th.CheckCnf && !a.Cnf.Greater(th.Cnf) {
		return false
	}
	if th.CheckCvr && !a.Cvr.Greater(th.Cvr) {
		return false
	}
	return true
}

// answerKey is the order-insensitive identity of one answer: rule text plus
// the three exact index values.
func answerKey(rule string, sup, cnf, cvr rat.Rat) string {
	return fmt.Sprintf("%s | sup=%s cnf=%s cvr=%s", rule, sup, cnf, cvr)
}

// answerSet folds answers into a multiset of answer keys.
func answerSet(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	for _, k := range keys {
		m[k]++
	}
	return m
}

// diffSets renders the difference between two answer multisets, or "" when
// they are equal.
func diffSets(got, want map[string]int) string {
	var missing, extra []string
	for k, n := range want {
		if got[k] < n {
			missing = append(missing, k)
		}
	}
	for k, n := range got {
		if want[k] < n {
			extra = append(extra, k)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return ""
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var b strings.Builder
	if len(missing) > 0 {
		fmt.Fprintf(&b, "missing %d answer(s):\n  %s", len(missing), strings.Join(missing, "\n  "))
	}
	if len(extra) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "extra %d answer(s):\n  %s", len(extra), strings.Join(extra, "\n  "))
	}
	return b.String()
}

// coreKeys projects core answers onto answer keys.
func coreKeys(as []core.Answer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = answerKey(a.Rule.String(), a.Sup, a.Cnf, a.Cvr)
	}
	return out
}

// Run executes scenario s on every path and returns the first mismatch
// found, or nil when all paths agree with the oracle exactly. Errors are
// infrastructure failures (invalid scenario), not divergences.
func Run(s *gen.Scenario) (*Mismatch, error) {
	return RunTally(s, nil)
}

// RunTally is Run additionally recording the approximate decider's
// oracle-derived confusion counts into tally (when non-nil). A nil tally
// tightens the decide-approx check to exact agreement: without the sweep's
// δ accounting, any disagreement is reported as a mismatch.
func RunTally(s *gen.Scenario, tally *ApproxTally) (*Mismatch, error) {
	ctx := context.Background()

	// Ground truth: one exhaustive oracle pass yields both the admissible
	// answer set and the per-index maxima the decision bounds come from.
	all, err := oracle.AllRules(s.DB, s.MQ, s.Type)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	var wantKeys []string
	maxes := map[core.Index]rat.Rat{core.Sup: rat.Zero, core.Cnf: rat.Zero, core.Cvr: rat.Zero}
	for _, a := range all {
		maxes[core.Sup] = rat.Max(maxes[core.Sup], a.Sup)
		maxes[core.Cnf] = rat.Max(maxes[core.Cnf], a.Cnf)
		maxes[core.Cvr] = rat.Max(maxes[core.Cvr], a.Cvr)
		if admitted(s.Th, a) {
			wantKeys = append(wantKeys, answerKey(a.Rule.String(), a.Sup, a.Cnf, a.Cvr))
		}
	}
	wantSet := answerSet(wantKeys)

	// Path 1: naive enumerator.
	naive, err := core.NaiveAnswers(s.DB, s.MQ, s.Type, s.Th)
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	if d := diffSets(answerSet(coreKeys(naive)), wantSet); d != "" {
		return &Mismatch{Scenario: s, Path: "naive", Detail: d}, nil
	}

	// Path 2: findRules engine (one-shot), running the cost-based planner
	// (the default: the engine carries cardinality statistics).
	opt := engine.Options{Type: s.Type, Thresholds: s.Th}
	eng := engine.NewEngine(s.DB)
	prep, err := eng.Prepare(s.MQ, opt)
	if err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	full, err := prep.FindRules(ctx)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if d := diffSets(answerSet(coreKeys(full)), wantSet); d != "" {
		return &Mismatch{Scenario: s, Path: "engine", Detail: d}, nil
	}

	// Path 2b: the same search with the cost-based planner disabled (the
	// legacy size-greedy join orders). Cost-based plans must be
	// row-identical to greedy plans on every scenario — join order is a
	// performance choice, never a semantic one.
	greedyOpt := opt
	greedyOpt.DisableCostPlanner = true
	prepGreedy, err := eng.Prepare(s.MQ, greedyOpt)
	if err != nil {
		return nil, fmt.Errorf("prepare-greedy: %w", err)
	}
	greedy, err := prepGreedy.FindRules(ctx)
	if err != nil {
		return nil, fmt.Errorf("engine-greedy: %w", err)
	}
	if d := diffSets(answerSet(coreKeys(greedy)), wantSet); d != "" {
		return &Mismatch{Scenario: s, Path: "engine-greedy", Detail: d}, nil
	}

	// Path 3: Prepared.Stream, twice — the second execution rides the
	// cross-execution node-join cache the first one populated.
	for _, path := range []string{"stream", "stream-rerun"} {
		var streamed []core.Answer
		for a, serr := range prep.Stream(ctx) {
			if serr != nil {
				return nil, fmt.Errorf("%s: %w", path, serr)
			}
			streamed = append(streamed, a)
		}
		if d := diffSets(answerSet(coreKeys(streamed)), wantSet); d != "" {
			return &Mismatch{Scenario: s, Path: path, Detail: d}, nil
		}
	}

	// Path 4: parallel enumeration — Stream and FindRules on a Prepared
	// with a seeded worker count (2–5). The merged stream's order is
	// nondeterministic, so the comparison is the same order-insensitive
	// multiset every other path uses; FindRules sorts, and must agree too.
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	parWorkers := 2 + rng.Intn(4)
	prepPar, err := eng.Prepare(s.MQ, engine.Options{Type: s.Type, Thresholds: s.Th, Workers: parWorkers})
	if err != nil {
		return nil, fmt.Errorf("prepare-parallel: %w", err)
	}
	var parStreamed []core.Answer
	for a, serr := range prepPar.Stream(ctx) {
		if serr != nil {
			return nil, fmt.Errorf("stream-parallel: %w", serr)
		}
		parStreamed = append(parStreamed, a)
	}
	if d := diffSets(answerSet(coreKeys(parStreamed)), wantSet); d != "" {
		return &Mismatch{Scenario: s, Path: "stream-parallel",
			Detail: fmt.Sprintf("workers=%d: %s", parWorkers, d)}, nil
	}
	parFull, err := prepPar.FindRules(ctx)
	if err != nil {
		return nil, fmt.Errorf("findrules-parallel: %w", err)
	}
	if d := diffSets(answerSet(coreKeys(parFull)), wantSet); d != "" {
		return &Mismatch{Scenario: s, Path: "findrules-parallel",
			Detail: fmt.Sprintf("workers=%d: %s", parWorkers, d)}, nil
	}

	// The approximate decider runs under the harness's fixed ε–δ contract,
	// seeded from the scenario so repros replay byte-identically.
	prepApprox, err := eng.Prepare(s.MQ, engine.Options{Type: s.Type, Thresholds: s.Th,
		Approx: engine.ApproxOptions{Epsilon: ApproxEps, Delta: ApproxDelta, MaxSamples: ApproxBudget, Seed: s.Seed}})
	if err != nil {
		return nil, fmt.Errorf("prepare-approx: %w", err)
	}

	// Decision problems: for every index, derive bounds that flip the
	// verdict — 0 (YES iff the max index is positive) and the exact max
	// (always NO under the strict comparison) — and check the sequential
	// decider, the parallel decider (seeded worker count) and the
	// engine-backed decider against the oracle's verdict, plus every
	// returned witness against the oracle's index values.
	for _, ix := range core.AllIndices {
		maxV := maxes[ix]
		bounds := []rat.Rat{rat.Zero, maxV}
		if maxV.Greater(rat.Zero) {
			// A bound strictly inside (0, max) when one exists: max/2.
			bounds = append(bounds, rat.New(maxV.Num(), maxV.Den()*2))
		}
		for _, k := range bounds {
			wantYes := maxV.Greater(k)

			gotSeq, wit, err := core.Decide(s.DB, s.MQ, ix, k, s.Type)
			if err != nil {
				return nil, fmt.Errorf("decide: %w", err)
			}
			if gotSeq != wantYes {
				return &Mismatch{Scenario: s, Path: "decide",
					Detail: fmt.Sprintf("%s > %s: got %v, oracle max %s says %v", ix, k, gotSeq, maxV, wantYes)}, nil
			}
			if m := checkWitness(s, ix, k, wit, "decide"); m != nil {
				return m, nil
			}

			workers := 1 + rng.Intn(6)
			gotPar, witPar, err := core.DecideParallel(s.DB, s.MQ, ix, k, s.Type, workers)
			if err != nil {
				return nil, fmt.Errorf("decide-parallel: %w", err)
			}
			if gotPar != wantYes {
				return &Mismatch{Scenario: s, Path: "decide-parallel",
					Detail: fmt.Sprintf("%s > %s (workers=%d): got %v, oracle says %v", ix, k, workers, gotPar, wantYes)}, nil
			}
			if m := checkWitness(s, ix, k, witPar, "decide-parallel"); m != nil {
				return m, nil
			}

			gotEng, witEng, err := eng.Decide(ctx, s.MQ, ix, k, s.Type)
			if err != nil {
				return nil, fmt.Errorf("engine-decide: %w", err)
			}
			if gotEng != wantYes {
				return &Mismatch{Scenario: s, Path: "engine-decide",
					Detail: fmt.Sprintf("%s > %s: got %v, oracle says %v", ix, k, gotEng, wantYes)}, nil
			}
			if m := checkWitness(s, ix, k, witEng, "engine-decide"); m != nil {
				return m, nil
			}

			// First-witness path on the SAME Prepared the enumeration paths
			// used: DecideFirst overrides thresholds per run, so this also
			// exercises enumeration/decision coexistence on one Prepared.
			gotFirst, witFirst, err := prep.DecideFirst(ctx, ix, k)
			if err != nil {
				return nil, fmt.Errorf("decide-first: %w", err)
			}
			if gotFirst != wantYes {
				return &Mismatch{Scenario: s, Path: "decide-first",
					Detail: fmt.Sprintf("%s > %s: got %v, oracle says %v", ix, k, gotFirst, wantYes)}, nil
			}
			if m := checkWitness(s, ix, k, witFirst, "decide-first"); m != nil {
				return m, nil
			}

			// Parallel first-witness path: the first decision node's
			// candidates partitioned across a seeded worker count. The
			// verdict must match; the witness only needs to be valid.
			gotPFirst, witPFirst, err := prepPar.DecideFirst(ctx, ix, k)
			if err != nil {
				return nil, fmt.Errorf("decide-first-parallel: %w", err)
			}
			if gotPFirst != wantYes {
				return &Mismatch{Scenario: s, Path: "decide-first-parallel",
					Detail: fmt.Sprintf("%s > %s (workers=%d): got %v, oracle says %v", ix, k, parWorkers, gotPFirst, wantYes)}, nil
			}
			if m := checkWitness(s, ix, k, witPFirst, "decide-first-parallel"); m != nil {
				return m, nil
			}

			// Approximate first-witness path under the ε–δ contract. A YES
			// is exactly confirmed inside the decider, so a false positive
			// is unconditionally a bug; a miss with the true max inside the
			// ±ε band means an escalation-to-exact went wrong, also
			// unconditionally a bug. Only an out-of-band miss is permitted —
			// with probability at most δ, which the tally accounts for
			// across the sweep (without a tally it too is a mismatch).
			gotApprox, witApprox, stApprox, err := prepApprox.DecideApproxStats(ctx, ix, k)
			if err != nil {
				return nil, fmt.Errorf("decide-approx: %w", err)
			}
			inBand := math.Abs(maxV.Float64()-k.Float64()) <= ApproxEps
			if tally != nil {
				var c ApproxCounts
				c.Decisions = 1
				c.Samples = stApprox.SamplesDrawn
				if stApprox.ApproxEscalated > 0 {
					c.Escalated = 1
				}
				if inBand {
					c.InBand = 1
				}
				switch {
				case wantYes && gotApprox:
					c.TP = 1
				case wantYes && !gotApprox:
					c.FN = 1
					if !inBand {
						c.OutFN = 1
					}
				case !wantYes && gotApprox:
					c.FP = 1
				default:
					c.TN = 1
				}
				tally.record(s.Shape, c)
			}
			if gotApprox != wantYes {
				switch {
				case gotApprox:
					return &Mismatch{Scenario: s, Path: "decide-approx",
						Detail: fmt.Sprintf("%s > %s: false positive — sampled accepts are exactly confirmed and may never be wrong (oracle max %s)", ix, k, maxV)}, nil
				case inBand:
					return &Mismatch{Scenario: s, Path: "decide-approx",
						Detail: fmt.Sprintf("%s > %s: in-band miss — the true max %s is within ±%g of the bound, so the decider must escalate to exact evaluation", ix, k, maxV, ApproxEps)}, nil
				case tally == nil:
					return &Mismatch{Scenario: s, Path: "decide-approx",
						Detail: fmt.Sprintf("%s > %s: out-of-band miss (oracle max %s); permitted at rate delta only under a sweep tally", ix, k, maxV)}, nil
				}
			}
			if m := checkWitness(s, ix, k, witApprox, "decide-approx"); m != nil {
				return m, nil
			}
		}
	}
	return nil, nil
}

// checkWitness verifies a decider's witness against the oracle: applying it
// to the metaquery must yield a rule whose index value genuinely exceeds k.
func checkWitness(s *gen.Scenario, ix core.Index, k rat.Rat, wit *core.Instantiation, path string) *Mismatch {
	if wit == nil {
		return nil
	}
	rule, err := wit.Apply(s.MQ)
	if err != nil {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness %s does not instantiate the metaquery: %v", wit, err)}
	}
	sup, cnf, cvr, err := oracle.Indices(s.DB, rule)
	if err != nil {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness rule %s not evaluable: %v", rule, err)}
	}
	v := sup
	switch ix {
	case core.Cnf:
		v = cnf
	case core.Cvr:
		v = cvr
	}
	if !v.Greater(k) {
		return &Mismatch{Scenario: s, Path: path + "-witness",
			Detail: fmt.Sprintf("witness rule %s has %s = %s, not > %s", rule, ix, v, k)}
	}
	return nil
}
