package diff

import (
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
)

// deltaSeedsPerShape × len(gen.Shapes()) delta differentials: every
// registered shape rides a 3-batch Apply script with all long-lived
// execution paths checked against from-scratch rebuilds after each batch.
const deltaSeedsPerShape = 3

// TestDeltaSweep is the incremental-engine counterpart of
// TestDifferentialSweep: for every shape and seed it drives the scripted
// delta sequence through Engine.Apply and requires each path — prepared
// sequential and parallel enumeration, streaming, statistics, and the
// first-witness deciders — to match a fresh NewEngine on the final (and
// every intermediate) database.
func TestDeltaSweep(t *testing.T) {
	for _, shape := range gen.Shapes() {
		shape := shape
		t.Run(shape, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < deltaSeedsPerShape; seed++ {
				s, err := gen.NewScenario(seed, shape)
				if err != nil {
					t.Fatal(err)
				}
				m, err := RunDeltas(s)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if m != nil {
					t.Fatalf("seed %d: %v", seed, m)
				}
			}
		})
	}
}

// The delta script must be deterministic in (seed, shape) and must never
// mutate the scenario it was derived from.
func TestDeltaScriptDeterministic(t *testing.T) {
	s, err := gen.NewScenario(4, "t1-cycle")
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := s.DB.Size()
	a := gen.DeltaScript(s, 3)
	b := gen.DeltaScript(s, 3)
	if s.DB.Size() != sizeBefore {
		t.Fatal("DeltaScript mutated the scenario database")
	}
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("script lengths %d/%d, want 3", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d: %d vs %d relation deltas", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j].Rel != b[i][j].Rel ||
				len(a[i][j].Insert) != len(b[i][j].Insert) ||
				len(a[i][j].Delete) != len(b[i][j].Delete) {
				t.Fatalf("batch %d delta %d differs between runs", i, j)
			}
		}
	}
	total := 0
	for _, batch := range a {
		for _, td := range batch {
			total += len(td.Insert) + len(td.Delete)
		}
	}
	if total == 0 {
		t.Fatal("delta script is empty; the sweep would exercise nothing")
	}
}
