package diff

import (
	"strings"
	"testing"

	"github.com/mqgo/metaquery/internal/gen"
)

// TestMismatchError pins the one-line mismatch rendering the fuzz driver
// prints before the repro.
func TestMismatchError(t *testing.T) {
	s, err := gen.NewScenario(7, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	m := &Mismatch{Scenario: s, Path: "delta-stream", Detail: "missing 1 answer(s)"}
	got := m.Error()
	for _, want := range []string{"t0-chain", "7", "delta-stream", "missing 1 answer(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}

// TestDiffSets covers the divergence renderer on every branch: equality,
// missing answers, extra answers, both at once, and multiset (count)
// sensitivity.
func TestDiffSets(t *testing.T) {
	if d := diffSets(answerSet([]string{"a", "b"}), answerSet([]string{"b", "a"})); d != "" {
		t.Errorf("equal multisets reported %q", d)
	}
	d := diffSets(answerSet([]string{"a"}), answerSet([]string{"a", "b"}))
	if !strings.Contains(d, "missing 1 answer(s)") || !strings.Contains(d, "b") {
		t.Errorf("missing-only diff %q", d)
	}
	d = diffSets(answerSet([]string{"a", "x"}), answerSet([]string{"a"}))
	if !strings.Contains(d, "extra 1 answer(s)") || !strings.Contains(d, "x") {
		t.Errorf("extra-only diff %q", d)
	}
	d = diffSets(answerSet([]string{"x"}), answerSet([]string{"b"}))
	if !strings.Contains(d, "missing") || !strings.Contains(d, "extra") {
		t.Errorf("two-sided diff %q", d)
	}
	// Duplicate counts matter: {a, a} vs {a} diverges.
	if d := diffSets(answerSet([]string{"a", "a"}), answerSet([]string{"a"})); !strings.Contains(d, "extra") {
		t.Errorf("multiset count diff %q", d)
	}
}
