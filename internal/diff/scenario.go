package diff

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// MarshalScenario renders a scenario as the committable textual repro
// format used by cmd/mqfuzz and the testdata/corpus regression entries:
//
//	# mqfuzz repro (optional comment lines)
//	shape t0-chain
//	seed 17
//	type 0
//	sup 1/3          (omitted when the check is disabled)
//	mq R(X,Z) <- P1(X,Y), P2(Y,Z)
//	rel r0 2
//	a,b              (CSV rows; quoting per encoding/csv)
//	end
//
// The format is self-contained: UnmarshalScenario rebuilds the exact
// database (schemas, rows, constants) and query, so a repro keeps failing —
// or keeps passing — regardless of generator changes.
func MarshalScenario(s *gen.Scenario) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# mqfuzz scenario\n")
	fmt.Fprintf(&b, "shape %s\n", s.Shape)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "type %d\n", int(s.Type))
	if s.Th.CheckSup {
		fmt.Fprintf(&b, "sup %s\n", s.Th.Sup)
	}
	if s.Th.CheckCnf {
		fmt.Fprintf(&b, "cnf %s\n", s.Th.Cnf)
	}
	if s.Th.CheckCvr {
		fmt.Fprintf(&b, "cvr %s\n", s.Th.Cvr)
	}
	fmt.Fprintf(&b, "mq %s\n", s.MQ)
	for _, name := range s.DB.RelationNames() {
		rel := s.DB.Relation(name)
		fmt.Fprintf(&b, "rel %s %d\n", name, rel.Arity())
		dict := s.DB.Dict()
		for i := 0; i < rel.Len(); i++ {
			row := rel.Row(i)
			rec := make([]string, len(row))
			for j, v := range row {
				rec[j] = dict.Name(v)
			}
			line, err := csvLine(rec)
			if err != nil {
				return "", err
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "end\n")
	}
	return b.String(), nil
}

// csvLine renders one record as a single CSV line. Records whose bare
// rendering would collide with the block grammar — the literal terminator
// line "end", or an empty line (which csv readers skip) — are force-quoted,
// which encodes the same values unambiguously.
func csvLine(rec []string) (string, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(rec); err != nil {
		return "", err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	line := strings.TrimRight(buf.String(), "\n")
	if line == "end" || line == "" {
		quoted := make([]string, len(rec))
		for i, f := range rec {
			quoted[i] = `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
		}
		line = strings.Join(quoted, ",")
	}
	return line, nil
}

// UnmarshalScenario parses the MarshalScenario format.
func UnmarshalScenario(text string) (*gen.Scenario, error) {
	s := &gen.Scenario{DB: relation.NewDatabase()}
	// Disabled thresholds hold the canonical zero, matching the generator.
	s.Th.Sup, s.Th.Cnf, s.Th.Cvr = rat.Zero, rat.Zero, rat.Zero
	lines := strings.Split(text, "\n")
	i := 0
	sawMQ := false
	for i < len(lines) {
		line := strings.TrimRight(lines[i], "\r")
		i++
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "shape "):
			s.Shape = strings.TrimSpace(line[len("shape "):])
		case strings.HasPrefix(line, "seed "):
			n, err := strconv.ParseInt(strings.TrimSpace(line[len("seed "):]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("diff: bad seed line %q: %v", line, err)
			}
			s.Seed = n
		case strings.HasPrefix(line, "type "):
			n, err := strconv.Atoi(strings.TrimSpace(line[len("type "):]))
			if err != nil || n < 0 || n > 2 {
				return nil, fmt.Errorf("diff: bad type line %q", line)
			}
			s.Type = core.InstType(n)
		case strings.HasPrefix(line, "sup "):
			v, err := rat.Parse(strings.TrimSpace(line[len("sup "):]))
			if err != nil {
				return nil, fmt.Errorf("diff: bad sup line %q: %v", line, err)
			}
			s.Th.Sup, s.Th.CheckSup = v, true
		case strings.HasPrefix(line, "cnf "):
			v, err := rat.Parse(strings.TrimSpace(line[len("cnf "):]))
			if err != nil {
				return nil, fmt.Errorf("diff: bad cnf line %q: %v", line, err)
			}
			s.Th.Cnf, s.Th.CheckCnf = v, true
		case strings.HasPrefix(line, "cvr "):
			v, err := rat.Parse(strings.TrimSpace(line[len("cvr "):]))
			if err != nil {
				return nil, fmt.Errorf("diff: bad cvr line %q: %v", line, err)
			}
			s.Th.Cvr, s.Th.CheckCvr = v, true
		case strings.HasPrefix(line, "mq "):
			mq, err := core.Parse(line[len("mq "):])
			if err != nil {
				return nil, fmt.Errorf("diff: %v", err)
			}
			s.MQ = mq
			sawMQ = true
		case strings.HasPrefix(line, "rel "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("diff: bad rel line %q", line)
			}
			arity, err := strconv.Atoi(fields[2])
			if err != nil || arity < 0 {
				return nil, fmt.Errorf("diff: bad arity in %q", line)
			}
			name := fields[1]
			if _, err := s.DB.AddRelation(name, arity); err != nil {
				return nil, fmt.Errorf("diff: %v", err)
			}
			// Collect the CSV block up to "end".
			start := i
			for i < len(lines) && strings.TrimRight(lines[i], "\r") != "end" {
				i++
			}
			if i >= len(lines) {
				return nil, fmt.Errorf("diff: relation %s block missing 'end'", name)
			}
			block := strings.Join(lines[start:i], "\n")
			i++ // consume "end"
			if strings.TrimSpace(block) == "" {
				continue
			}
			r := csv.NewReader(strings.NewReader(block))
			r.FieldsPerRecord = arity
			recs, err := r.ReadAll()
			if err != nil {
				return nil, fmt.Errorf("diff: relation %s rows: %v", name, err)
			}
			for _, rec := range recs {
				if err := s.DB.InsertNamed(name, rec...); err != nil {
					return nil, fmt.Errorf("diff: %v", err)
				}
			}
		default:
			return nil, fmt.Errorf("diff: unrecognized line %q", line)
		}
	}
	if !sawMQ {
		return nil, fmt.Errorf("diff: scenario has no mq line")
	}
	return s, nil
}

// Minimize shrinks a mismatching scenario while Run still reports a
// mismatch, in two phases: first delta debugging (ddmin) over the
// database's tuple set, which cuts large databases to a 1-minimal failing
// tuple subset in O(log n) rounds on well-behaved failures instead of one
// tuple per round; then the greedy one-step pass — dropping body literals,
// whole relations, and individual tuples — as a final polish, which also
// removes the structure ddmin does not touch. A scenario that does not
// fail is returned unchanged. The result is the committable repro
// cmd/mqfuzz prints.
func Minimize(s *gen.Scenario) *gen.Scenario {
	if !stillFails(s) {
		return s
	}
	cur := ddminTuples(s)
	for {
		next := shrinkOnce(cur)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// tupleRef is one database tuple by position: the relation it lives in and
// its row, rendered back to constant names so subsets rebuild exactly.
type tupleRef struct {
	rel string
	rec []string
}

// ddminTuples runs the ddmin algorithm (Zeller & Hildebrandt) over the
// scenario's tuples: starting from the full set, it tries failing on ever
// finer chunks and their complements, halving the candidate set whenever a
// subset still fails, until the kept set is 1-minimal with respect to the
// chunk granularity. Relation schemas are always kept (ordinary atoms must
// keep validating); only tuples are dropped.
func ddminTuples(s *gen.Scenario) *gen.Scenario {
	dict := s.DB.Dict()
	var all []tupleRef
	for _, name := range s.DB.RelationNames() {
		rel := s.DB.Relation(name)
		for i := 0; i < rel.Len(); i++ {
			row := rel.Row(i)
			rec := make([]string, len(row))
			for j, v := range row {
				rec[j] = dict.Name(v)
			}
			all = append(all, tupleRef{rel: name, rec: rec})
		}
	}
	if len(all) < 2 {
		return s
	}
	build := func(keep []tupleRef) *gen.Scenario {
		db := relation.NewDatabase()
		for _, name := range s.DB.RelationNames() {
			db.MustAddRelation(name, s.DB.Relation(name).Arity())
		}
		for _, t := range keep {
			db.MustInsertNamed(t.rel, t.rec...)
		}
		return &gen.Scenario{Seed: s.Seed, Shape: s.Shape, DB: db, MQ: s.MQ, Type: s.Type, Th: s.Th}
	}
	fails := func(keep []tupleRef) bool { return stillFails(build(keep)) }

	cur := all
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		// Reduce to a failing chunk (finest first effect comes from the
		// granularity loop), then to a failing complement.
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			if fails(cur[lo:hi]) {
				cur = append([]tupleRef(nil), cur[lo:hi]...)
				n = 2
				reduced = true
				break
			}
		}
		if !reduced && n > 2 {
			for lo := 0; lo < len(cur); lo += chunk {
				hi := lo + chunk
				if hi > len(cur) {
					hi = len(cur)
				}
				rest := make([]tupleRef, 0, len(cur)-(hi-lo))
				rest = append(rest, cur[:lo]...)
				rest = append(rest, cur[hi:]...)
				if fails(rest) {
					cur = rest
					n--
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	if len(cur) == len(all) {
		return s
	}
	return build(cur)
}

// runCheck is the failure predicate Minimize preserves; tests swap it to
// exercise the minimizer on synthetic failures.
var runCheck = Run

// stillFails reports whether the candidate scenario still mismatches.
// Scenarios whose reduction makes them invalid (e.g. an ordinary atom's
// relation was dropped) are treated as not failing.
func stillFails(s *gen.Scenario) bool {
	if s.MQ == nil || len(s.MQ.Body) == 0 {
		return false
	}
	if err := core.ValidateForType(s.DB, s.MQ, s.Type); err != nil {
		return false
	}
	m, err := runCheck(s)
	return err == nil && m != nil
}

// shrinkOnce returns the first single-step reduction that still fails, or
// nil when none does.
func shrinkOnce(s *gen.Scenario) *gen.Scenario {
	// Drop one body literal.
	if len(s.MQ.Body) > 1 {
		for drop := range s.MQ.Body {
			body := make([]core.LiteralScheme, 0, len(s.MQ.Body)-1)
			for i, l := range s.MQ.Body {
				if i != drop {
					body = append(body, l)
				}
			}
			mq, err := core.NewMetaquery(s.MQ.Head, body...)
			if err != nil {
				continue
			}
			cand := &gen.Scenario{Seed: s.Seed, Shape: s.Shape, DB: s.DB, MQ: mq, Type: s.Type, Th: s.Th}
			if stillFails(cand) {
				return cand
			}
		}
	}
	// Drop one whole relation.
	names := s.DB.RelationNames()
	if len(names) > 1 {
		for _, drop := range names {
			cand := &gen.Scenario{Seed: s.Seed, Shape: s.Shape, DB: rebuildDB(s.DB, drop, "", -1), MQ: s.MQ, Type: s.Type, Th: s.Th}
			if stillFails(cand) {
				return cand
			}
		}
	}
	// Drop one tuple.
	for _, name := range names {
		rel := s.DB.Relation(name)
		for i := 0; i < rel.Len(); i++ {
			cand := &gen.Scenario{Seed: s.Seed, Shape: s.Shape, DB: rebuildDB(s.DB, "", name, i), MQ: s.MQ, Type: s.Type, Th: s.Th}
			if stillFails(cand) {
				return cand
			}
		}
	}
	return nil
}

// rebuildDB copies db, omitting the named relation entirely (dropRel != "")
// or one tuple (skipRel's row skipIdx).
func rebuildDB(db *relation.Database, dropRel, skipRel string, skipIdx int) *relation.Database {
	out := relation.NewDatabase()
	dict := db.Dict()
	for _, name := range db.RelationNames() {
		if name == dropRel {
			continue
		}
		rel := db.Relation(name)
		out.MustAddRelation(name, rel.Arity())
		for i := 0; i < rel.Len(); i++ {
			if name == skipRel && i == skipIdx {
				continue
			}
			row := rel.Row(i)
			rec := make([]string, len(row))
			for j, v := range row {
				rec[j] = dict.Name(v)
			}
			out.MustInsertNamed(name, rec...)
		}
	}
	return out
}
