package logic

import (
	"math/rand"
	"testing"
)

// clause builds a Clause from (var, neg) pairs.
func cl(lits ...Literal) Clause { return Clause(lits) }

func pos(v int) Literal { return Literal{Var: v} }
func neg(v int) Literal { return Literal{Var: v, Neg: true} }

func TestEval(t *testing.T) {
	// (x0 | ~x1) & (x1 | x2)
	f := &CNF{NumVars: 3, Clauses: []Clause{cl(pos(0), neg(1)), cl(pos(1), pos(2))}}
	cases := []struct {
		assign []bool
		want   bool
	}{
		{[]bool{true, true, false}, true},
		{[]bool{false, true, false}, false},
		{[]bool{false, false, false}, false},
		{[]bool{false, false, true}, true},
	}
	for _, c := range cases {
		if got := f.Eval(c.assign); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.assign, got, c.want)
		}
	}
}

func TestSatisfiableAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := Random3CNF(rng, 3+rng.Intn(5), 1+rng.Intn(12))
		want, err := CountModels(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Satisfiable(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != (want > 0) {
			t.Errorf("seed %d: DPLL = %v but count = %d for %s", seed, got, want, f)
		}
	}
}

func TestCountModelsKnown(t *testing.T) {
	// x0 alone over 2 vars: 2 models.
	f := &CNF{NumVars: 2, Clauses: []Clause{cl(pos(0))}}
	n, err := CountModels(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
	// Contradiction: x0 & ~x0.
	f2 := &CNF{NumVars: 1, Clauses: []Clause{cl(pos(0)), cl(neg(0))}}
	n2, _ := CountModels(f2)
	if n2 != 0 {
		t.Errorf("contradiction count = %d", n2)
	}
	// Tautological clause (x0 | ~x0) over 3 vars: 8 models.
	f3 := &CNF{NumVars: 3, Clauses: []Clause{cl(pos(0), neg(0))}}
	n3, _ := CountModels(f3)
	if n3 != 8 {
		t.Errorf("tautology count = %d, want 8", n3)
	}
}

func TestCountModelsBound(t *testing.T) {
	f := &CNF{NumVars: maxBruteForceVars + 1, Clauses: []Clause{cl(pos(0))}}
	if _, err := CountModels(f); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestCheckErrors(t *testing.T) {
	if err := (&CNF{NumVars: 1, Clauses: []Clause{{}}}).Check(); err == nil {
		t.Error("empty clause accepted")
	}
	if err := (&CNF{NumVars: 1, Clauses: []Clause{cl(pos(5))}}).Check(); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestCountModelsOver(t *testing.T) {
	// F = x0 | x1, count over {x1} with x0 fixed false: only x1=1 works.
	f := &CNF{NumVars: 2, Clauses: []Clause{cl(pos(0), pos(1))}}
	base := []bool{false, false}
	if got := CountModelsOver(f, []int{1}, base); got != 1 {
		t.Errorf("count over x1 with x0=false = %d, want 1", got)
	}
	base[0] = true
	if got := CountModelsOver(f, []int{1}, base); got != 2 {
		t.Errorf("count over x1 with x0=true = %d, want 2", got)
	}
}

func TestExistsCountInstance(t *testing.T) {
	// F = (p | q) with Π = {p}, χ = {q}.
	f := &CNF{NumVars: 2, Clauses: []Clause{cl(pos(0), pos(1))}}
	inst := &ExistsCountInstance{F: f, Pi: []int{0}, Chi: []int{1}, K: 2}
	yes, witness, err := inst.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// p=true gives 2 satisfying q-assignments.
	if !yes {
		t.Fatal("expected YES")
	}
	if !witness[0] {
		t.Error("witness should set p=true")
	}
	inst.K = 3
	yes, _, err = inst.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Error("K=3 should be NO (only 2 q-assignments exist)")
	}
	max, err := inst.MaxCount()
	if err != nil {
		t.Fatal(err)
	}
	if max != 2 {
		t.Errorf("MaxCount = %d, want 2", max)
	}
}

func TestExistsCountPartitionValidation(t *testing.T) {
	f := &CNF{NumVars: 2, Clauses: []Clause{cl(pos(0), pos(1))}}
	bad := &ExistsCountInstance{F: f, Pi: []int{0}, Chi: []int{0, 1}, K: 1}
	if err := bad.Check(); err == nil {
		t.Error("overlapping partition accepted")
	}
	missing := &ExistsCountInstance{F: f, Pi: []int{0}, Chi: nil, K: 1}
	if err := missing.Check(); err == nil {
		t.Error("incomplete partition accepted")
	}
}

func TestExistsCountBruteForceConsistency(t *testing.T) {
	// Cross-check Solve against a direct double loop.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPi, nChi := 1+rng.Intn(2), 1+rng.Intn(3)
		f := Random3CNF(rng, nPi+nChi, 2+rng.Intn(6))
		pi := make([]int, nPi)
		chi := make([]int, nChi)
		for i := range pi {
			pi[i] = i
		}
		for i := range chi {
			chi[i] = nPi + i
		}
		inst := &ExistsCountInstance{F: f, Pi: pi, Chi: chi, K: 1 + rng.Intn(1<<nChi)}
		got, _, err := inst.Solve()
		if err != nil {
			t.Fatal(err)
		}
		max, err := inst.MaxCount()
		if err != nil {
			t.Fatal(err)
		}
		if got != (max >= inst.K) {
			t.Errorf("seed %d: Solve = %v but MaxCount = %d, K = %d", seed, got, max, inst.K)
		}
	}
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := Random3CNF(rng, 6, 10)
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	if !f.Is3CNF() {
		t.Error("Random3CNF produced a clause with more than 3 literals")
	}
	if len(f.Clauses) != 10 {
		t.Errorf("clauses = %d", len(f.Clauses))
	}
	for i, c := range f.Clauses {
		vars := map[int]bool{}
		for _, l := range c {
			vars[l.Var] = true
		}
		if len(vars) != 3 {
			t.Errorf("clause %d does not use 3 distinct variables", i)
		}
	}
}

func TestUsedVars(t *testing.T) {
	f := &CNF{NumVars: 5, Clauses: []Clause{cl(pos(3), neg(1))}}
	uv := f.UsedVars()
	if len(uv) != 2 || uv[0] != 1 || uv[1] != 3 {
		t.Errorf("UsedVars = %v", uv)
	}
}

func TestLiteralAndCNFString(t *testing.T) {
	f := &CNF{NumVars: 3, Clauses: []Clause{cl(pos(0), neg(1)), cl(pos(2))}}
	s := f.String()
	for _, frag := range []string{"x0", "~x1", "x2"} {
		found := false
		for i := 0; i+len(frag) <= len(s); i++ {
			if s[i:i+len(frag)] == frag {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("CNF String() = %q, missing %q", s, frag)
		}
	}
}
