// Package logic implements the propositional substrate used by the paper's
// hardness reductions: CNF formulas, satisfiability (3SAT), model counting
// (#SAT, Theorem 3.25), and the counting-quantifier problem ∃C-SAT of
// Definition 3.12, solved by brute force for the small instances the
// reduction cross-checks use.
package logic

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Literal is a propositional literal: variable index (0-based) and sign.
type Literal struct {
	Var int
	Neg bool
}

// String renders the literal as "x3" or "~x3".
func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("~x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a formula in conjunctive normal form over variables 0..NumVars-1.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// String renders the formula for debugging.
func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]string, len(c))
		for j, l := range c {
			lits[j] = l.String()
		}
		parts[i] = "(" + strings.Join(lits, "|") + ")"
	}
	return strings.Join(parts, "&")
}

// Check validates variable indexing.
func (f *CNF) Check() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("logic: clause %d is empty", i)
		}
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("logic: clause %d uses variable %d outside [0,%d)", i, l.Var, f.NumVars)
			}
		}
	}
	return nil
}

// Is3CNF reports whether every clause has at most three literals.
func (f *CNF) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) > 3 {
			return false
		}
	}
	return true
}

// Eval evaluates the formula under the assignment (true = 1).
func (f *CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// UsedVars returns the sorted list of variables occurring in the formula.
func (f *CNF) UsedVars() []int {
	seen := map[int]bool{}
	for _, c := range f.Clauses {
		for _, l := range c {
			seen[l.Var] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Random3CNF generates a random 3CNF formula with the given number of
// variables and clauses. Each clause has exactly three literals over three
// distinct variables (when nVars >= 3).
func Random3CNF(rng *rand.Rand, nVars, nClauses int) *CNF {
	f := &CNF{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		vars := rng.Perm(nVars)
		k := 3
		if nVars < 3 {
			k = nVars
		}
		clause := make(Clause, k)
		for j := 0; j < k; j++ {
			clause[j] = Literal{Var: vars[j], Neg: rng.Intn(2) == 1}
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}
