package logic

import "fmt"

// maxBruteForceVars bounds the exhaustive solvers; instances in this module
// are reduction cross-checks, which are intentionally small.
const maxBruteForceVars = 24

// Satisfiable reports whether f has a model, by DPLL with unit propagation.
func Satisfiable(f *CNF) (bool, error) {
	if err := f.Check(); err != nil {
		return false, err
	}
	assign := make([]int8, f.NumVars) // 0 unknown, +1 true, -1 false
	return dpll(f, assign), nil
}

func dpll(f *CNF, parent []int8) bool {
	// Work on a copy: unit-propagation assignments must not leak into the
	// caller's sibling branch.
	assign := make([]int8, len(parent))
	copy(assign, parent)
	// Unit propagation.
	for {
		unit, conflict, unitLit := false, false, Literal{}
		for _, c := range f.Clauses {
			unassigned := 0
			satisfied := false
			var last Literal
			for _, l := range c {
				switch {
				case assign[l.Var] == 0:
					unassigned++
					last = l
				case (assign[l.Var] == 1) != l.Neg:
					satisfied = true
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				conflict = true
				break
			}
			if unassigned == 1 {
				unit, unitLit = true, last
				break
			}
		}
		if conflict {
			return false
		}
		if !unit {
			break
		}
		if unitLit.Neg {
			assign[unitLit.Var] = -1
		} else {
			assign[unitLit.Var] = 1
		}
	}
	// Choose a branching variable.
	branch := -1
	for v := 0; v < f.NumVars; v++ {
		if assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch < 0 {
		// All assigned; every clause satisfied (no conflicts above)?
		b := make([]bool, f.NumVars)
		for v := range b {
			b[v] = assign[v] == 1
		}
		return f.Eval(b)
	}
	for _, val := range []int8{1, -1} {
		assign[branch] = val
		if dpll(f, assign) {
			return true
		}
	}
	return false
}

// CountModels solves #SAT exactly: the number of satisfying assignments of
// f over all NumVars variables, by exhaustive enumeration.
func CountModels(f *CNF) (int, error) {
	if err := f.Check(); err != nil {
		return 0, err
	}
	if f.NumVars > maxBruteForceVars {
		return 0, fmt.Errorf("logic: %d variables exceeds brute-force bound %d", f.NumVars, maxBruteForceVars)
	}
	count := 0
	assign := make([]bool, f.NumVars)
	var rec func(v int)
	rec = func(v int) {
		if v == f.NumVars {
			if f.Eval(assign) {
				count++
			}
			return
		}
		assign[v] = false
		rec(v + 1)
		assign[v] = true
		rec(v + 1)
	}
	rec(0)
	return count, nil
}

// CountModelsOver counts satisfying assignments over a subset of variables,
// with the remaining variables fixed by base.
func CountModelsOver(f *CNF, vars []int, base []bool) int {
	assign := append([]bool(nil), base...)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if f.Eval(assign) {
				count++
			}
			return
		}
		assign[vars[i]] = false
		rec(i + 1)
		assign[vars[i]] = true
		rec(i + 1)
	}
	rec(0)
	return count
}

// ExistsCountInstance is an ∃C-3SAT instance (Definition 3.12 with the
// Theorem 3.28 shape): a formula F, a partition of its variables into Π
// (existential) and χ (counted), and a threshold k.
//
// The question: is there an assignment of Π such that at least k
// assignments of χ make F true?
type ExistsCountInstance struct {
	F   *CNF
	Pi  []int // existentially quantified variables
	Chi []int // counted variables
	K   int
}

// Check validates the partition.
func (inst *ExistsCountInstance) Check() error {
	if err := inst.F.Check(); err != nil {
		return err
	}
	seen := make(map[int]int)
	for _, v := range inst.Pi {
		seen[v]++
	}
	for _, v := range inst.Chi {
		seen[v]++
	}
	for v := 0; v < inst.F.NumVars; v++ {
		if seen[v] != 1 {
			return fmt.Errorf("logic: variable %d appears %d times in the Π/χ partition", v, seen[v])
		}
	}
	if inst.K < 0 {
		return fmt.Errorf("logic: negative threshold")
	}
	return nil
}

// Solve decides the instance by brute force, returning the witnessing Π
// assignment when the answer is yes.
func (inst *ExistsCountInstance) Solve() (bool, []bool, error) {
	if err := inst.Check(); err != nil {
		return false, nil, err
	}
	if inst.F.NumVars > maxBruteForceVars {
		return false, nil, fmt.Errorf("logic: instance too large for brute force")
	}
	base := make([]bool, inst.F.NumVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(inst.Pi) {
			return CountModelsOver(inst.F, inst.Chi, base) >= inst.K
		}
		base[inst.Pi[i]] = false
		if rec(i + 1) {
			return true
		}
		base[inst.Pi[i]] = true
		return rec(i + 1)
	}
	if rec(0) {
		witness := append([]bool(nil), base...)
		return true, witness, nil
	}
	return false, nil, nil
}

// MaxCount returns the maximum, over Π assignments, of the number of χ
// assignments satisfying F. Useful for threshold-boundary tests.
func (inst *ExistsCountInstance) MaxCount() (int, error) {
	if err := inst.Check(); err != nil {
		return 0, err
	}
	base := make([]bool, inst.F.NumVars)
	best := 0
	var rec func(i int)
	rec = func(i int) {
		if i == len(inst.Pi) {
			if c := CountModelsOver(inst.F, inst.Chi, base); c > best {
				best = c
			}
			return
		}
		base[inst.Pi[i]] = false
		rec(i + 1)
		base[inst.Pi[i]] = true
		rec(i + 1)
	}
	rec(0)
	return best, nil
}
