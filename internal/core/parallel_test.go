package core

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// DecideParallel must agree with Decide on random instances for every
// worker count.
func TestDecideParallelMatchesSequential(t *testing.T) {
	mqs := []string{
		"R(X,Z) <- P(X,Y), Q(Y,Z)",
		"P(X,Y) <- P(Y,Z), Q(Z,W)",
		"R(X) <- P(X,X)",
	}
	ks := []rat.Rat{rat.Zero, rat.New(1, 2), rat.New(99, 100)}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 3, 2, 6, 3)
		mq := MustParse(mqs[rng.Intn(len(mqs))])
		ix := AllIndices[rng.Intn(len(AllIndices))]
		k := ks[rng.Intn(len(ks))]
		for _, typ := range []InstType{Type0, Type1} {
			want, _, err := Decide(db, mq, ix, k, typ)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 64} {
				got, witness, err := DecideParallel(db, mq, ix, k, typ, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("seed %d %s %s k=%v w=%d: parallel %v, sequential %v",
						seed, typ, ix, k, workers, got, want)
				}
				if got {
					// Witness must certify.
					rule, err := witness.Apply(mq)
					if err != nil {
						t.Fatal(err)
					}
					v, err := ix.Compute(db, rule)
					if err != nil {
						t.Fatal(err)
					}
					if !v.Greater(k) {
						t.Errorf("parallel witness does not certify: %v <= %v", v, k)
					}
				}
			}
		}
	}
}

func TestDecideParallelNoPatterns(t *testing.T) {
	db := NewTestDB()
	mq := MustParse("speaks(X,Y) <- speaks(X,Y)")
	yes, _, err := DecideParallel(db, mq, Cnf, rat.Zero, Type0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("trivial identity rule should decide YES")
	}
}

func TestDecideParallelEmptyCandidates(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a")
	// Pattern of arity 3 over a database with only arity-1 relations.
	mq := MustParse("R(X,Y,Z) <- p(X), P(X,Y,Z)")
	yes, _, err := DecideParallel(db, mq, Sup, rat.Zero, Type0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Error("no candidates should decide NO")
	}
}

// NewTestDB builds a tiny speaks database for parallel tests.
func NewTestDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("speaks", "john", "italian")
	db.MustInsertNamed("speaks", "maria", "italian")
	return db
}
