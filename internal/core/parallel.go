package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// DecideParallel solves the decision problem ⟨DB, MQ, I, k, T⟩ with worker
// goroutines that partition the candidate atoms of the first relation
// pattern. The paper singles out the acyclic/type-0 class as
// LOGCFL-complete "and, as such, highly parallelizable" (Section 5); this
// procedure demonstrates the coarse-grained version of that claim on any
// instance: the instantiation space factorizes over patterns, so disjoint
// candidate blocks can be searched independently.
//
// workers <= 0 selects GOMAXPROCS. The result is identical to Decide
// (differentially tested); the witness may differ when several exist.
func DecideParallel(db *relation.Database, mq *Metaquery, ix Index, k rat.Rat, typ InstType, workers int) (bool, *Instantiation, error) {
	return DecideParallelContext(context.Background(), db, mq, ix, k, typ, workers)
}

// DecideParallelContext is DecideParallel with cancellation: all workers
// stop with ctx.Err() as soon as ctx is cancelled or its deadline passes.
// A witness found before cancellation is still returned.
func DecideParallelContext(ctx context.Context, db *relation.Database, mq *Metaquery, ix Index, k rat.Rat, typ InstType, workers int) (bool, *Instantiation, error) {
	if err := ValidateForType(db, mq, typ); err != nil {
		return false, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	patterns := mq.RelationPatterns()
	if len(patterns) == 0 || workers == 1 {
		return DecideContext(ctx, db, mq, ix, k, typ)
	}
	first := patterns[0]
	candidates := Candidates(db, first, typ, 0)
	if len(candidates) == 0 {
		return false, nil, nil
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	// One evaluator shared by all workers: the candidate atoms (and so the
	// atom tables and join shapes) overlap heavily across blocks.
	ev := NewEvaluator(db)

	jobs := make(chan relation.Atom, len(candidates))
	for _, a := range candidates {
		jobs <- a
	}
	close(jobs)

	var (
		mu       sync.Mutex
		found    *Instantiation
		firstErr error
		cut      bool // a worker abandoned enumeration because of ctx
		done     = make(chan struct{})
		once     sync.Once
		wg       sync.WaitGroup
	)
	stop := func() { once.Do(func() { close(done) }) }
	markCut := func() {
		mu.Lock()
		cut = true
		mu.Unlock()
	}

	worker := func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				markCut()
				return
			case atom, ok := <-jobs:
				if !ok {
					return
				}
				sigma := NewInstantiation()
				if err := sigma.Assign(first, atom); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop()
					return
				}
				err := forEachFrom(db, mq, typ, patterns, 1, sigma, func(s *Instantiation) (bool, error) {
					if err := ctx.Err(); err != nil {
						markCut()
						return false, nil
					}
					select {
					case <-done:
						return false, nil
					default:
					}
					rule, err := s.Apply(mq)
					if err != nil {
						return false, err
					}
					yes, err := ev.IndexExceeds(ix, rule, k)
					if err != nil {
						return false, err
					}
					if yes {
						mu.Lock()
						if found == nil {
							found = s.Clone()
						}
						mu.Unlock()
						stop()
						return false, nil
					}
					return true, nil
				})
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop()
					return
				}
			}
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return false, nil, firstErr
	}
	if found != nil {
		return true, found, nil
	}
	// Report the context error only when it actually cut enumeration short:
	// a search that exhausted the space before cancellation is a definitive
	// NO, matching the sequential DecideContext.
	if cut {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
	}
	return false, nil, nil
}

// forEachFrom enumerates completions of sigma over patterns[start:],
// sharing the candidate machinery with ForEachInstantiation.
func forEachFrom(db *relation.Database, mq *Metaquery, typ InstType, patterns []LiteralScheme, start int, sigma *Instantiation, f func(*Instantiation) (bool, error)) error {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(patterns) {
			return f(sigma)
		}
		l := patterns[i]
		if _, done := sigma.AtomFor(l); done {
			return rec(i + 1)
		}
		for _, a := range Candidates(db, l, typ, i) {
			if rel, ok := sigma.relOf[l.Pred]; ok && rel != a.Pred {
				continue
			}
			_, hadRel := sigma.relOf[l.Pred]
			sigma.assign[l.Key()] = a
			if !hadRel {
				sigma.relOf[l.Pred] = a.Pred
			}
			cont, err := rec(i + 1)
			delete(sigma.assign, l.Key())
			if !hadRel {
				delete(sigma.relOf, l.Pred)
			}
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(start)
	return err
}
