package core

import (
	"testing"
)

func TestLiteralSchemeVars(t *testing.T) {
	l := Pattern("P", "X", "Y", "X")
	vs := l.Vars()
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Errorf("Vars = %v", vs)
	}
	if l.Arity() != 3 {
		t.Errorf("Arity = %d", l.Arity())
	}
}

func TestSchemeSetsAndDedup(t *testing.T) {
	// Head scheme identical to a body scheme collapses in ls(MQ).
	mq := MustParse("N(X1,X2) <- N(X1,X2), e(X1,X2)")
	if got := len(mq.LiteralSchemes()); got != 2 {
		t.Errorf("ls(MQ) has %d schemes, want 2", got)
	}
	if got := len(mq.RelationPatterns()); got != 1 {
		t.Errorf("rep(MQ) has %d patterns, want 1", got)
	}
	if got := mq.PredicateVars(); len(got) != 1 || got[0] != "N" {
		t.Errorf("pv(MQ) = %v", got)
	}
}

func TestPredicateVarsOrder(t *testing.T) {
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	pv := mq.PredicateVars()
	want := []string{"R", "P", "Q"}
	if len(pv) != 3 {
		t.Fatalf("pv = %v", pv)
	}
	for i := range want {
		if pv[i] != want[i] {
			t.Errorf("pv[%d] = %q, want %q", i, pv[i], want[i])
		}
	}
}

func TestOrdinaryVars(t *testing.T) {
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ov := mq.OrdinaryVars()
	want := []string{"X", "Z", "Y"}
	if len(ov) != 3 {
		t.Fatalf("varo = %v", ov)
	}
	for i := range want {
		if ov[i] != want[i] {
			t.Errorf("varo[%d] = %q, want %q", i, ov[i], want[i])
		}
	}
}

func TestPurity(t *testing.T) {
	pure := MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	if !pure.IsPure() {
		t.Error("pure metaquery reported impure")
	}
	impure := MustParse("P(X) <- P(X,Y)")
	if impure.IsPure() {
		t.Error("impure metaquery reported pure")
	}
}

// The three examples following Definition 3.31.
func TestPaperAcyclicityExamples(t *testing.T) {
	mq1 := MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	if !mq1.IsAcyclic() {
		t.Error("MQ1 = P(X,Y) <- P(Y,Z), Q(Z,W) should be acyclic")
	}
	if !mq1.IsSemiAcyclic() {
		t.Error("acyclic metaquery must be semi-acyclic")
	}

	mq2 := MustParse("P(X,Y) <- Q(Y,Z), P(Z,W)")
	if mq2.IsAcyclic() {
		t.Error("MQ2 = P(X,Y) <- Q(Y,Z), P(Z,W) should be cyclic")
	}

	mq3 := MustParse("N(X) <- N(Y), E(X,Y)")
	if mq3.IsAcyclic() {
		t.Error("N(X) <- N(Y), E(X,Y) should not be acyclic")
	}
	if !mq3.IsSemiAcyclic() {
		t.Error("N(X) <- N(Y), E(X,Y) should be semi-acyclic")
	}
}

// The HAMPATH metaquery of Theorem 3.33 is acyclic: the edge
// {N, X1..Xn} witnesses every {Xi, Xi+1}.
func TestHamPathMetaqueryAcyclic(t *testing.T) {
	mq := MustParse("N(X1,X2,X3) <- N(X1,X2,X3), e(X1,X2), e(X2,X3)")
	if !mq.IsAcyclic() {
		t.Error("Theorem 3.33 metaquery should be acyclic")
	}
}

func TestHypergraphPredVarNamespacing(t *testing.T) {
	// A predicate variable named like an ordinary variable must not collide.
	mq := MustParse("X(Y) <- X(Y), Q(Y)")
	h := mq.Hypergraph()
	// Edge for X(Y) must contain ^X and Y.
	found := false
	for _, e := range h.Edges {
		hasPred, hasOrd := false, false
		for _, v := range e.Vertices {
			if v == predVarVertex+"X" {
				hasPred = true
			}
			if v == "Y" {
				hasOrd = true
			}
		}
		if hasPred && hasOrd {
			found = true
		}
	}
	if !found {
		t.Error("predicate variable vertex missing or collided")
	}
}

func TestCheckRejections(t *testing.T) {
	if _, err := NewMetaquery(Pattern("R", "X")); err == nil {
		t.Error("empty body accepted")
	}
	if _, err := NewMetaquery(Pattern("R", "X"), Pattern("", "X")); err == nil {
		t.Error("empty predicate accepted")
	}
	if _, err := NewMetaquery(Pattern("R", "_f0_0"), Pattern("P", "X")); err == nil {
		t.Error("reserved variable accepted")
	}
	if _, err := NewMetaquery(Pattern("R", ""), Pattern("P", "X")); err == nil {
		t.Error("empty variable accepted")
	}
}

func TestRuleAtomSets(t *testing.T) {
	mq := MustParse("R(X,Z) <- P(X,Y), P(X,Y), Q(Y,Z)")
	// rep dedups the two P(X,Y) occurrences.
	if len(mq.RelationPatterns()) != 3 {
		t.Errorf("rep = %v", mq.RelationPatterns())
	}
}

func TestSchemeKeyDistinguishesPatternAndAtom(t *testing.T) {
	p := Pattern("P", "X")
	a := SchemeAtom("P", "X")
	if p.Key() == a.Key() {
		t.Error("pattern and atom with same name/args share a key")
	}
}

func TestLiteralSchemeAtomPanicsOnPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Pattern("P", "X").Atom()
}
