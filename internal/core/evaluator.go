package core

import (
	"sync"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// Evaluator computes plausibility indices over one database through caches
// shared across rule evaluations: the FromAtom materializations (keyed by
// atom text), the compiled join plans (keyed by atom-set shape and, for
// cost-ordered plans, join order), and — when the evaluator carries
// cardinality statistics — the per-atom cost estimates. The instantiation
// searches (NaiveAnswers, Decide, DecideParallel) evaluate thousands of
// rules whose atoms and join shapes repeat constantly; holding one
// Evaluator per search turns those repeats into cache hits instead of
// fresh relation scans and join-order analyses.
//
// With statistics attached (NewEvaluatorStats), Join orders multi-atom
// joins cost-based: the actual input cardinalities and the estimated
// per-column distinct counts drive a dynamic-programming order search
// (stats.Order) instead of the size-blind shape-greedy compiled order.
// JoinGreedy keeps the legacy order reachable for ablations and baselines.
//
// An Evaluator snapshots nothing: it reads the database lazily, so the
// database must not be modified while the Evaluator is in use; Fork derives
// the evaluator of a changed database version. All methods are safe for
// concurrent use.
type Evaluator struct {
	db *relation.Database
	st *stats.Stats // nil = no statistics; Join degrades to JoinGreedy

	mu    sync.RWMutex
	atoms map[string]atomEntry
	ests  map[string]estEntry
	plans *relation.PlanCache
}

// atomEntry is one cached atom materialization together with its predicate,
// which is what Fork needs to decide whether a database delta invalidates
// it (the table depends only on that one relation's rows).
type atomEntry struct {
	t    *relation.Table
	pred string
}

// estEntry is the estimate-cache counterpart of atomEntry.
type estEntry struct {
	e    stats.Est
	pred string
}

// orderBuf is the pooled scratch of one cost-ordered join: the estimator
// inputs and the order permutation, sized for the DP planning width.
type orderBuf struct {
	in  [stats.OrderDPMax]stats.Est
	ord [stats.OrderDPMax]int
}

var orderScratch = sync.Pool{New: func() any { return new(orderBuf) }}

// joinBuf is the pooled input staging of one JoinOrdered call: the per-atom
// tables and schemas handed to the compiled plan. Neither slice is retained
// by the plan cache or by Run (plans copy what they keep), so the buffers
// are safe to recycle the moment the join returns.
type joinBuf struct {
	tables  []*relation.Table
	schemas [][]string
}

var joinScratch = sync.Pool{New: func() any { return new(joinBuf) }}

// put returns the buffer to the pool with its table references scrubbed, so
// pooled buffers never pin arenas.
func (b *joinBuf) put(tables []*relation.Table, schemas [][]string) {
	for i := range tables {
		tables[i] = nil
	}
	for i := range schemas {
		schemas[i] = nil
	}
	b.tables, b.schemas = tables[:0], schemas[:0]
	joinScratch.Put(b)
}

// NewEvaluator returns an empty-cached evaluator over db, without
// cardinality statistics (joins use the shape-greedy compiled order).
func NewEvaluator(db *relation.Database) *Evaluator {
	return NewEvaluatorStats(db, nil)
}

// NewEvaluatorStats returns an evaluator whose multi-atom joins are
// cost-ordered through st (collected once per database snapshot, usually
// by the engine). st may be nil, degrading to NewEvaluator behavior.
func NewEvaluatorStats(db *relation.Database, st *stats.Stats) *Evaluator {
	return &Evaluator{
		db:    db,
		st:    st,
		atoms: make(map[string]atomEntry),
		ests:  make(map[string]estEntry),
		plans: relation.NewPlanCache(),
	}
}

// Fork returns an evaluator over db — a newer version of the evaluated
// database — and its statistics, carrying over every cached atom table and
// estimate whose relation is pointer-identical between the two versions
// (copy-on-write deltas share unchanged relations, so pointer equality is
// exactly "this atom's data did not change"). The compiled-plan cache is
// shared outright: plans depend on atom-set shapes, not data. ev itself is
// untouched; old-epoch readers keep using it.
func (ev *Evaluator) Fork(db *relation.Database, st *stats.Stats) *Evaluator {
	nev := &Evaluator{
		db:    db,
		st:    st,
		atoms: make(map[string]atomEntry),
		ests:  make(map[string]estEntry),
		plans: ev.plans,
	}
	ev.mu.RLock()
	defer ev.mu.RUnlock()
	for k, e := range ev.atoms {
		if r := db.Relation(e.pred); r != nil && r == ev.db.Relation(e.pred) {
			nev.atoms[k] = e
		}
	}
	for k, e := range ev.ests {
		if r := db.Relation(e.pred); r != nil && r == ev.db.Relation(e.pred) {
			nev.ests[k] = e
		}
	}
	return nev
}

// Database returns the database the evaluator is bound to.
func (ev *Evaluator) Database() *relation.Database { return ev.db }

// Stats returns the cardinality statistics the evaluator plans with, or
// nil when it carries none.
func (ev *Evaluator) Stats() *stats.Stats { return ev.st }

// AtomEst returns the cost estimate of atom a (stats.AtomEst), cached
// across evaluations. It must only be called on evaluators carrying
// statistics.
func (ev *Evaluator) AtomEst(a relation.Atom) stats.Est {
	return ev.atomEstKey(a.String(), a)
}

// atomEstKey is AtomEst with the cache key precomputed, so callers that
// already built the atom's string (the join path shares it with the table
// cache) do not pay for it twice.
func (ev *Evaluator) atomEstKey(k string, a relation.Atom) stats.Est {
	ev.mu.RLock()
	e, ok := ev.ests[k]
	ev.mu.RUnlock()
	if ok {
		return e.e
	}
	est := ev.st.AtomEst(a)
	ev.mu.Lock()
	ev.ests[k] = estEntry{e: est, pred: a.Pred}
	ev.mu.Unlock()
	return est
}

// TableFor returns the materialization of atom a (relation.FromAtom), cached
// across evaluations. The result is shared: callers must not modify it.
func (ev *Evaluator) TableFor(a relation.Atom) (*relation.Table, error) {
	return ev.tableForKey(a.String(), a)
}

// tableForKey is TableFor with the cache key precomputed.
func (ev *Evaluator) tableForKey(k string, a relation.Atom) (*relation.Table, error) {
	ev.mu.RLock()
	e, ok := ev.atoms[k]
	ev.mu.RUnlock()
	if ok {
		return e.t, nil
	}
	t, err := relation.FromAtom(ev.db, a)
	if err != nil {
		return nil, err
	}
	t = t.Compact() // cached for the evaluator's lifetime; don't pin the scan-sized arena
	ev.mu.Lock()
	if prev, ok := ev.atoms[k]; ok {
		t = prev.t // another goroutine won the race; keep one canonical table
	} else {
		ev.atoms[k] = atomEntry{t: t, pred: a.Pred}
	}
	ev.mu.Unlock()
	return t, nil
}

// Join computes J(R) for the atom set R through a compiled join plan: the
// per-atom tables come from the TableFor cache and the join order and column
// bookkeeping from the plan cache, so repeated shapes pay only the
// build/probe passes. With statistics attached, the join order is chosen
// cost-based per atom set (see JoinOrdered); otherwise the shape-greedy
// compiled order applies. The result must be treated as immutable
// (single-atom joins return the cached atom table itself).
func (ev *Evaluator) Join(atoms []relation.Atom) (*relation.Table, error) {
	return ev.JoinOrdered(atoms, ev.st != nil)
}

// JoinGreedy is Join pinned to the legacy shape-greedy compiled order,
// ignoring any attached statistics. It is the baseline the cost-based
// planner is benchmarked (E22) and differentially tested against.
func (ev *Evaluator) JoinGreedy(atoms []relation.Atom) (*relation.Table, error) {
	return ev.JoinOrdered(atoms, false)
}

// JoinOrdered is the shared implementation of Join and JoinGreedy:
// costBased selects between the statistics-driven order search and the
// shape-greedy compiled order. Both run through the same plan cache
// (order-pinned plans cache per (shape, order) pair), so the two planners
// coexist on one evaluator.
func (ev *Evaluator) JoinOrdered(atoms []relation.Atom, costBased bool) (*relation.Table, error) {
	if len(atoms) == 0 {
		return relation.Unit(), nil
	}
	costBased = costBased && ev.st != nil && len(atoms) > 2

	// Pooled input staging: the table and schema slices live only for this
	// call (plans copy what they keep), so they come from a pool instead of
	// two fresh allocations per join.
	buf := joinScratch.Get().(*joinBuf)
	tables := buf.tables[:0]
	schemas := buf.schemas[:0]

	// Pooled planning scratch: order planning itself must not allocate on
	// this per-join path (the DP tables are already stack-allocated inside
	// stats.OrderInto).
	var in []stats.Est
	var ord []int
	if costBased {
		scratch := orderScratch.Get().(*orderBuf)
		defer orderScratch.Put(scratch)
		if len(atoms) <= stats.OrderDPMax {
			in, ord = scratch.in[:len(atoms)], scratch.ord[:len(atoms)]
		} else {
			in, ord = make([]stats.Est, len(atoms)), make([]int, len(atoms))
		}
	}
	for i, a := range atoms {
		k := a.String()
		t, err := ev.tableForKey(k, a)
		if err != nil {
			buf.put(tables, schemas)
			return nil, err
		}
		tables = append(tables, t)
		schemas = append(schemas, t.Vars())
		if costBased {
			// One key build serves both the table and the estimate cache.
			in[i] = ev.atomEstKey(k, a).WithRows(float64(t.Len()))
		}
	}
	if !costBased {
		// With two inputs the order is irrelevant (the join hashes the
		// smaller side), so the shape plan is already optimal.
		t, err := ev.plans.For(schemas).Run(tables)
		buf.put(tables, schemas)
		return t, err
	}
	order := stats.OrderInto(in, ord)
	t, err := ev.plans.ForOrder(schemas, order).Run(tables)
	buf.put(tables, schemas)
	return t, err
}

// Fraction computes R ↑ S of Definition 2.6 (see the package-level Fraction)
// through the evaluator's caches.
func (ev *Evaluator) Fraction(r, s []relation.Atom) (rat.Rat, error) {
	jr, err := ev.Join(r)
	if err != nil {
		return rat.Zero, err
	}
	return ev.fractionOf(jr, s)
}

// fractionOf finishes R ↑ S given jr = J(R) already materialized. J(S) is
// not materialized when jr is empty (the fraction is 0 regardless).
func (ev *Evaluator) fractionOf(jr *relation.Table, s []relation.Atom) (rat.Rat, error) {
	if jr.Empty() {
		return rat.Zero, nil
	}
	js, err := ev.Join(s)
	if err != nil {
		return rat.Zero, err
	}
	return tableFraction(jr, js), nil
}

// tableFraction computes |jr ⋉ js| / |jr| with the Definition 2.6 zero
// conventions (0 when either the denominator or the numerator is 0), given
// both joins materialized. It is the single implementation behind every
// fraction the evaluator reports.
func tableFraction(jr, js *relation.Table) rat.Rat {
	if jr.Empty() {
		return rat.Zero
	}
	num := jr.SemijoinCount(js)
	if num == 0 {
		return rat.Zero
	}
	return rat.New(int64(num), int64(jr.Len()))
}

// supportOf computes max_{a ∈ body} |J({a}) ⋉ jb| / |J({a})| given the body
// join jb already materialized.
func (ev *Evaluator) supportOf(body []relation.Atom, jb *relation.Table) (rat.Rat, error) {
	best := rat.Zero
	for _, a := range body {
		ja, err := ev.TableFor(a)
		if err != nil {
			return rat.Zero, err
		}
		best = rat.Max(best, tableFraction(ja, jb))
	}
	return best, nil
}

// IndexExceeds reports whether ix(r) > k, the single-index check of the
// Section 3.2 decision problems, computing only what the queried index
// needs instead of all three indices: support never joins the head and
// returns as soon as one body atom's fraction exceeds k (support is a
// maximum), confidence and cover join only their two sides. It is the
// evaluator hook behind the sequential and parallel deciders and the
// engine's first-witness path.
func (ev *Evaluator) IndexExceeds(ix Index, r Rule, k rat.Rat) (bool, error) {
	switch ix {
	case Sup:
		body := r.BodyAtoms()
		jb, err := ev.Join(body)
		if err != nil {
			return false, err
		}
		for _, a := range body {
			ja, err := ev.TableFor(a)
			if err != nil {
				return false, err
			}
			if tableFraction(ja, jb).Greater(k) {
				return true, nil
			}
		}
		return false, nil
	default:
		v, err := ix.ComputeEval(ev, r)
		if err != nil {
			return false, err
		}
		return v.Greater(k), nil
	}
}

// Confidence computes cnf(r) = b(r) ↑ h(r) (Definition 2.7).
func (ev *Evaluator) Confidence(r Rule) (rat.Rat, error) {
	return ev.Fraction(r.BodyAtoms(), r.HeadAtoms())
}

// Cover computes cvr(r) = h(r) ↑ b(r) (Definition 2.7).
func (ev *Evaluator) Cover(r Rule) (rat.Rat, error) {
	return ev.Fraction(r.HeadAtoms(), r.BodyAtoms())
}

// Support computes sup(r) = max_{a ∈ b(r)} ({a} ↑ b(r)) (Definition 2.7).
// The body join J(b(r)) is materialized once and shared by every per-atom
// fraction, instead of once per body atom.
func (ev *Evaluator) Support(r Rule) (rat.Rat, error) {
	body := r.BodyAtoms()
	jb, err := ev.Join(body)
	if err != nil {
		return rat.Zero, err
	}
	return ev.supportOf(body, jb)
}

// Indices computes all three plausibility indices of r, materializing the
// body join J(b(r)) and head join J(h(r)) once each and sharing them: sup
// probes J(b(r)) per body atom, cnf is |J(b) ⋉ J(h)| / |J(b)| and cvr is
// |J(h) ⋉ J(b)| / |J(h)|.
func (ev *Evaluator) Indices(r Rule) (sup, cnf, cvr rat.Rat, err error) {
	body, head := r.BodyAtoms(), r.HeadAtoms()
	jb, err := ev.Join(body)
	if err != nil {
		return
	}
	jh, err := ev.Join(head)
	if err != nil {
		return
	}
	sup, err = ev.supportOf(body, jb)
	if err != nil {
		return
	}
	cnf = tableFraction(jb, jh)
	cvr = tableFraction(jh, jb)
	return
}
