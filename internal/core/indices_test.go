package core

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// paperRule is the instantiated rule UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)
// from Section 2.1.
func paperRule() Rule {
	return Rule{
		Head: relation.NewAtom("UsPT", "X", "Z"),
		Body: []relation.Atom{
			relation.NewAtom("UsCa", "X", "Y"),
			relation.NewAtom("CaTe", "Y", "Z"),
		},
	}
}

// Hand-computed on Figure 1:
// J(body) has 7 tuples; 5 of them satisfy the head, so cnf = 5/7.
// All 3 UsPT tuples are implied, so cvr = 1.
// All UsCa tuples participate in the body join, so sup = 1.
func TestIndicesOnFigure1(t *testing.T) {
	db := db1(t)
	r := paperRule()

	cnf, err := Confidence(db, r)
	if err != nil {
		t.Fatal(err)
	}
	if !cnf.Equal(rat.New(5, 7)) {
		t.Errorf("cnf = %v, want 5/7", cnf)
	}

	cvr, err := Cover(db, r)
	if err != nil {
		t.Fatal(err)
	}
	if !cvr.Equal(rat.One) {
		t.Errorf("cvr = %v, want 1", cvr)
	}

	sup, err := Support(db, r)
	if err != nil {
		t.Fatal(err)
	}
	if !sup.Equal(rat.One) {
		t.Errorf("sup = %v, want 1", sup)
	}
}

// Support is a max over body atoms: with the body alone, CaTe's fraction is
// 5/6 (the Wind tuple joins nothing) while UsCa's is 1.
func TestSupportIsMaxOverBodyAtoms(t *testing.T) {
	db := db1(t)
	r := paperRule()
	body := r.BodyAtoms()

	fUsCa, err := Fraction(db, []relation.Atom{body[0]}, body)
	if err != nil {
		t.Fatal(err)
	}
	if !fUsCa.Equal(rat.One) {
		t.Errorf("UsCa fraction = %v, want 1", fUsCa)
	}
	fCaTe, err := Fraction(db, []relation.Atom{body[1]}, body)
	if err != nil {
		t.Fatal(err)
	}
	if !fCaTe.Equal(rat.New(5, 6)) {
		t.Errorf("CaTe fraction = %v, want 5/6", fCaTe)
	}
}

// The §2.2 cover example: with DB1's binary UsPt, the type-2 instantiation
// UsCa(X,Z) <- UsPt(X,H) scores cover 1.
func TestPaperCoverExample(t *testing.T) {
	db := db1(t)
	r := Rule{
		Head: relation.NewAtom("UsCa", "X", "Z"),
		Body: []relation.Atom{relation.NewAtom("UsPT", "X", "H")},
	}
	cvr, err := Cover(db, r)
	if err != nil {
		t.Fatal(err)
	}
	if !cvr.Equal(rat.One) {
		t.Errorf("cover = %v, want 1", cvr)
	}
}

func TestFractionZeroDenominator(t *testing.T) {
	// Empty J(R) must give 0, not an error (Definition 2.6's convention).
	db := relation.NewDatabase()
	db.MustAddRelation("empty", 1)
	db.MustInsertNamed("p", "a")
	f, err := Fraction(db, []relation.Atom{relation.NewAtom("empty", "X")},
		[]relation.Atom{relation.NewAtom("p", "X")})
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZero() {
		t.Errorf("fraction with empty numerator = %v", f)
	}
}

func TestFractionDisjointVars(t *testing.T) {
	// att(R) ∩ att(S) = ∅: the join is a cartesian product, so the fraction
	// is 1 if J(S) is non-empty and 0 otherwise.
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a")
	db.MustInsertNamed("q", "b")
	db.MustAddRelation("emptyrel", 1)
	one, err := Fraction(db, []relation.Atom{relation.NewAtom("p", "X")},
		[]relation.Atom{relation.NewAtom("q", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if !one.Equal(rat.One) {
		t.Errorf("disjoint fraction = %v, want 1", one)
	}
	zero, err := Fraction(db, []relation.Atom{relation.NewAtom("p", "X")},
		[]relation.Atom{relation.NewAtom("emptyrel", "Y")})
	if err != nil {
		t.Fatal(err)
	}
	if !zero.IsZero() {
		t.Errorf("disjoint fraction vs empty = %v, want 0", zero)
	}
}

func TestIndexStringAndCompute(t *testing.T) {
	db := db1(t)
	r := paperRule()
	names := map[Index]string{Sup: "sup", Cnf: "cnf", Cvr: "cvr"}
	for ix, want := range names {
		if ix.String() != want {
			t.Errorf("String = %q, want %q", ix.String(), want)
		}
		v, err := ix.Compute(db, r)
		if err != nil {
			t.Fatal(err)
		}
		direct := map[Index]func(*relation.Database, Rule) (rat.Rat, error){
			Sup: Support, Cnf: Confidence, Cvr: Cover,
		}[ix]
		d, _ := direct(db, r)
		if !v.Equal(d) {
			t.Errorf("%s.Compute = %v, direct = %v", ix, v, d)
		}
	}
}

func TestIndicesAlwaysInUnitInterval(t *testing.T) {
	// Property over random databases and rules: 0 <= I(r) <= 1.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 3, 2, 5, 4)
		r := randomRule(rng, db)
		for _, ix := range AllIndices {
			v, err := ix.Compute(db, r)
			if err != nil {
				t.Fatal(err)
			}
			if v.Less(rat.Zero) || v.Greater(rat.One) {
				t.Errorf("seed %d: %s = %v outside [0,1] for %s", seed, ix, v, r)
			}
		}
	}
}

// Proposition 3.20: I(r) > 0 iff the certifying set has a satisfied ground
// instance, i.e. iff J(S_I) is non-empty.
func TestCertifyingSets(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, 3, 2, 4, 3)
		r := randomRule(rng, db)
		for _, ix := range AllIndices {
			v, err := ix.Compute(db, r)
			if err != nil {
				t.Fatal(err)
			}
			cert := CertifyingSet(ix, r)
			j, err := relation.JoinAtoms(db, cert)
			if err != nil {
				t.Fatal(err)
			}
			if v.Greater(rat.Zero) != !j.Empty() {
				t.Errorf("seed %d: %s = %v but certifying set satisfiable = %v for %s",
					seed, ix, v, !j.Empty(), r)
			}
		}
	}
}

// randomDB builds a database with nRel relations of the given arity over a
// domain of size dom, each with up to maxTuples tuples.
func randomDB(rng *rand.Rand, nRel, arity, maxTuples, dom int) *relation.Database {
	db := relation.NewDatabase()
	consts := make([]string, dom)
	for i := range consts {
		consts[i] = string(rune('a' + i))
	}
	for i := 0; i < nRel; i++ {
		name := string(rune('p' + i))
		db.MustAddRelation(name, arity)
		n := rng.Intn(maxTuples + 1)
		for j := 0; j < n; j++ {
			row := make([]string, arity)
			for k := range row {
				row[k] = consts[rng.Intn(dom)]
			}
			db.MustInsertNamed(name, row...)
		}
	}
	return db
}

// randomRule builds a small random rule over db's relations with variables
// drawn from {X, Y, Z, W}.
func randomRule(rng *rand.Rand, db *relation.Database) Rule {
	names := db.RelationNames()
	vars := []string{"X", "Y", "Z", "W"}
	mk := func() relation.Atom {
		name := names[rng.Intn(len(names))]
		arity := db.Relation(name).Arity()
		args := make([]string, arity)
		for i := range args {
			args[i] = vars[rng.Intn(len(vars))]
		}
		return relation.NewAtom(name, args...)
	}
	nBody := 1 + rng.Intn(3)
	body := make([]relation.Atom, nBody)
	for i := range body {
		body[i] = mk()
	}
	return Rule{Head: mk(), Body: body}
}
