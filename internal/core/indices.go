package core

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// Fraction computes R ↑ S of Definition 2.6 for atom sets R and S over db:
//
//	R ↑ S = |π_att(R)(J(R) ⋈ J(S))| / |J(R)|
//
// defined as 0 whenever the numerator is 0. Because att(R) covers every
// column of J(R), the projection of the join onto att(R) equals the
// semijoin J(R) ⋉ J(S), which is how it is computed.
//
// The free functions evaluate through a transient Evaluator; callers
// computing indices for many rules over one database should hold a
// NewEvaluator and use its methods so atom tables and join plans are reused.
func Fraction(db *relation.Database, r, s []relation.Atom) (rat.Rat, error) {
	return NewEvaluator(db).Fraction(r, s)
}

// Confidence computes cnf(r) = b(r) ↑ h(r): the fraction of body-satisfying
// assignments that also satisfy the head (Definition 2.7).
func Confidence(db *relation.Database, r Rule) (rat.Rat, error) {
	return NewEvaluator(db).Confidence(r)
}

// Cover computes cvr(r) = h(r) ↑ b(r): the fraction of head tuples implied
// by the body (Definition 2.7).
func Cover(db *relation.Database, r Rule) (rat.Rat, error) {
	return NewEvaluator(db).Cover(r)
}

// Support computes sup(r) = max_{a ∈ b(r)} ({a} ↑ b(r)): the largest
// fraction, over the body relations, of tuples participating in the body
// join (Definition 2.7).
func Support(db *relation.Database, r Rule) (rat.Rat, error) {
	return NewEvaluator(db).Support(r)
}

// Index identifies one of the paper's plausibility indices; the set
// I = {cnf, cvr, sup}.
type Index int

const (
	// Sup is the support index.
	Sup Index = iota
	// Cnf is the confidence index.
	Cnf
	// Cvr is the cover index.
	Cvr
)

// AllIndices lists the members of I in a fixed order.
var AllIndices = []Index{Sup, Cnf, Cvr}

// String returns the paper's abbreviation for the index.
func (ix Index) String() string {
	switch ix {
	case Sup:
		return "sup"
	case Cnf:
		return "cnf"
	case Cvr:
		return "cvr"
	default:
		return fmt.Sprintf("index-%d", int(ix))
	}
}

// Compute evaluates the index on rule r over db through a transient
// Evaluator; hot loops should hold one Evaluator and use ComputeEval.
func (ix Index) Compute(db *relation.Database, r Rule) (rat.Rat, error) {
	return ix.ComputeEval(NewEvaluator(db), r)
}

// ComputeEval evaluates the index on rule r through ev's caches.
func (ix Index) ComputeEval(ev *Evaluator, r Rule) (rat.Rat, error) {
	switch ix {
	case Sup:
		return ev.Support(r)
	case Cnf:
		return ev.Confidence(r)
	case Cvr:
		return ev.Cover(r)
	default:
		return rat.Zero, fmt.Errorf("core: unknown index %d", int(ix))
	}
}

// CertifyingSet returns the certifying set S_I of Proposition 3.20 for the
// index: the atom set whose satisfiability (existence of a satisfied ground
// instance) is equivalent to I(r) > 0. For cover and confidence this is all
// atoms of the rule; for support it is the body atoms.
func CertifyingSet(ix Index, r Rule) []relation.Atom {
	switch ix {
	case Sup:
		return r.BodyAtoms()
	default:
		return r.AllAtoms()
	}
}
