// Package core implements the paper's primary contribution: metaquery
// syntax and semantics (Section 2). It defines literal schemes, metaqueries,
// the three instantiation types (Definitions 2.1–2.4), the plausibility
// indices support, confidence and cover (Definitions 2.5–2.7), and the
// decision problems of Section 3.2, together with a naive answering engine
// used as the reference implementation.
package core

import (
	"fmt"
	"strings"

	"github.com/mqgo/metaquery/internal/hypergraph"
	"github.com/mqgo/metaquery/internal/relation"
)

// LiteralScheme is one literal of a metaquery: Q(Y1, ..., Yn) where Q is
// either a predicate (second-order) variable or a relation name, and each
// Yi is an ordinary (first-order) variable or a constant. When PredVar is
// true the scheme is a relation pattern; otherwise it is an atom.
//
// Arguments follow the Datalog naming convention: a name starting with an
// upper-case letter or '_' is an ordinary variable, anything else is a
// constant (see IsConstName). Constants are database-independent names,
// resolved against the active domain when the scheme is materialized; a
// constant absent from the domain matches no tuple.
type LiteralScheme struct {
	Pred    string
	PredVar bool
	Args    []string
}

// IsConstName reports whether a literal-scheme argument denotes a constant
// under the metaquery naming convention: any non-empty name that does not
// start with an upper-case letter or '_'.
func IsConstName(s string) bool {
	if s == "" {
		return false
	}
	return !startsUpper(s) && s[0] != '_'
}

// Pattern builds a relation pattern Q(args...).
func Pattern(q string, args ...string) LiteralScheme {
	return LiteralScheme{Pred: q, PredVar: true, Args: args}
}

// SchemeAtom builds an ordinary atom r(args...) appearing in a metaquery.
func SchemeAtom(r string, args ...string) LiteralScheme {
	return LiteralScheme{Pred: r, PredVar: false, Args: args}
}

// Arity returns the number of arguments.
func (l LiteralScheme) Arity() int { return len(l.Args) }

// Vars returns varo(l): the distinct ordinary variables in first-occurrence
// order. Constant arguments are not variables and are excluded.
func (l LiteralScheme) Vars() []string {
	seen := make(map[string]bool, len(l.Args))
	var out []string
	for _, a := range l.Args {
		if IsConstName(a) {
			continue
		}
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Key returns a canonical identity for the scheme. Two syntactically equal
// literal schemes are the same element of ls(MQ) (literal schemes form a
// set in the paper).
func (l LiteralScheme) Key() string {
	var b strings.Builder
	if l.PredVar {
		b.WriteByte('?')
	}
	b.WriteString(l.Pred)
	b.WriteByte('(')
	b.WriteString(strings.Join(l.Args, ","))
	b.WriteByte(')')
	return b.String()
}

// String renders the scheme in the paper's syntax. Relation names that
// would reparse as predicate variables (upper-case initial) or that contain
// bytes outside the identifier alphabet are double-quoted, exactly as the
// parser accepts them, so Parse(mq.String()) reconstructs any mq the parser
// can produce. The one exclusion: the quoted syntax has no escape sequence,
// so a programmatically built relation name containing '"' itself renders
// as a literal that cannot be reparsed.
func (l LiteralScheme) String() string {
	name := l.Pred
	if !l.PredVar && relNameNeedsQuotes(name) {
		name = `"` + name + `"`
	}
	args := make([]string, len(l.Args))
	for i, a := range l.Args {
		// Constants whose bare rendering would not reparse as a constant
		// (non-identifier bytes) are double-quoted, exactly as the parser
		// accepts them.
		if IsConstName(a) && constArgNeedsQuotes(a) {
			args[i] = `"` + a + `"`
		} else {
			args[i] = a
		}
	}
	return fmt.Sprintf("%s(%s)", name, strings.Join(args, ","))
}

// constArgNeedsQuotes reports whether a constant argument must be quoted
// to survive reparsing: any byte outside the identifier alphabet. (A
// constant never starts upper-case or with '_', by IsConstName.)
func constArgNeedsQuotes(arg string) bool {
	for i := 0; i < len(arg); i++ {
		if !isIdentRune(rune(arg[i])) {
			return true
		}
	}
	return false
}

// relNameNeedsQuotes reports whether a relation name must be quoted to
// survive reparsing. The byte-wise scan mirrors parseIdent, which consumes
// input byte by byte.
func relNameNeedsQuotes(name string) bool {
	if startsUpper(name) {
		return true
	}
	for i := 0; i < len(name); i++ {
		if !isIdentRune(rune(name[i])) {
			return true
		}
	}
	return false
}

// Atom converts an ordinary (non-pattern) literal scheme to a relation.Atom,
// mapping constant arguments to named-constant terms (resolved against the
// database dictionary at materialization). It panics if l is a relation
// pattern.
func (l LiteralScheme) Atom() relation.Atom {
	if l.PredVar {
		panic("core: Atom called on a relation pattern")
	}
	return atomOver(l.Pred, l.Args)
}

// atomOver builds a relation.Atom over pred from metaquery argument names,
// preserving the variable/constant classification of each argument. It is
// the one place scheme arguments become relation terms, shared by ordinary
// atoms and pattern candidate generation.
func atomOver(pred string, args []string) relation.Atom {
	terms := make([]relation.Term, len(args))
	for i, a := range args {
		if IsConstName(a) {
			terms[i] = relation.CN(a)
		} else {
			terms[i] = relation.V(a)
		}
	}
	return relation.Atom{Pred: pred, Terms: terms}
}

// Metaquery is a second-order Horn template T <- L1, ..., Lm (form (3) of
// the paper). The body must be non-empty.
type Metaquery struct {
	Head LiteralScheme
	Body []LiteralScheme
}

// NewMetaquery builds a metaquery and validates its shape.
func NewMetaquery(head LiteralScheme, body ...LiteralScheme) (*Metaquery, error) {
	mq := &Metaquery{Head: head, Body: body}
	if err := mq.Check(); err != nil {
		return nil, err
	}
	return mq, nil
}

// Check validates structural well-formedness: non-empty body, non-empty
// predicate names, and no variable names colliding with the reserved
// fresh-variable namespace.
func (mq *Metaquery) Check() error {
	if len(mq.Body) == 0 {
		return fmt.Errorf("core: metaquery must have a non-empty body")
	}
	for _, l := range mq.LiteralSchemes() {
		if l.Pred == "" {
			return fmt.Errorf("core: empty predicate in literal scheme")
		}
		for _, a := range l.Args {
			if a == "" {
				return fmt.Errorf("core: empty variable in scheme %s", l)
			}
			if strings.HasPrefix(a, freshPrefix) {
				return fmt.Errorf("core: variable %q uses the reserved prefix %q", a, freshPrefix)
			}
		}
	}
	return nil
}

// LiteralSchemes returns ls(MQ): the set of literal schemes of MQ (head and
// body), deduplicated, head first then body in order.
func (mq *Metaquery) LiteralSchemes() []LiteralScheme {
	seen := make(map[string]bool)
	out := make([]LiteralScheme, 0, len(mq.Body)+1)
	add := func(l LiteralScheme) {
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, l)
		}
	}
	add(mq.Head)
	for _, l := range mq.Body {
		add(l)
	}
	return out
}

// RelationPatterns returns rep(MQ): the distinct relation patterns of MQ,
// head first.
func (mq *Metaquery) RelationPatterns() []LiteralScheme {
	var out []LiteralScheme
	for _, l := range mq.LiteralSchemes() {
		if l.PredVar {
			out = append(out, l)
		}
	}
	return out
}

// PredicateVars returns pv(MQ): the distinct predicate variables, in
// first-occurrence order (head first).
func (mq *Metaquery) PredicateVars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range mq.RelationPatterns() {
		if !seen[l.Pred] {
			seen[l.Pred] = true
			out = append(out, l.Pred)
		}
	}
	return out
}

// OrdinaryVars returns varo(MQ): distinct ordinary variables across all
// literal schemes, in first-occurrence order. Constant arguments are
// excluded.
func (mq *Metaquery) OrdinaryVars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range mq.LiteralSchemes() {
		for _, a := range l.Args {
			if IsConstName(a) {
				continue
			}
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// IsPure reports whether MQ is pure: every two relation patterns with the
// same predicate variable have the same arity. Type-0 and type-1
// instantiations require pure metaqueries.
func (mq *Metaquery) IsPure() bool {
	arity := make(map[string]int)
	for _, l := range mq.RelationPatterns() {
		if a, ok := arity[l.Pred]; ok {
			if a != len(l.Args) {
				return false
			}
		} else {
			arity[l.Pred] = len(l.Args)
		}
	}
	return true
}

// predVarVertex namespaces predicate variables in H(MQ) so that a predicate
// variable named like an ordinary variable yields distinct vertices.
const predVarVertex = "^"

// Hypergraph returns H(MQ) of Definition 3.31: one vertex per (predicate or
// ordinary) variable and one edge var(L) per literal scheme L. Edge IDs are
// indices into LiteralSchemes().
func (mq *Metaquery) Hypergraph() *hypergraph.Hypergraph {
	h := &hypergraph.Hypergraph{}
	for i, l := range mq.LiteralSchemes() {
		var vs []string
		if l.PredVar {
			vs = append(vs, predVarVertex+l.Pred)
		}
		vs = append(vs, l.Vars()...)
		h.Edges = append(h.Edges, hypergraph.Edge{ID: i, Vertices: vs})
	}
	return h
}

// SemiHypergraph returns SH(MQ) of Definition 3.31: vertices are the
// ordinary variables only; one edge varo(L) per literal scheme.
func (mq *Metaquery) SemiHypergraph() *hypergraph.Hypergraph {
	h := &hypergraph.Hypergraph{}
	for i, l := range mq.LiteralSchemes() {
		h.Edges = append(h.Edges, hypergraph.Edge{ID: i, Vertices: l.Vars()})
	}
	return h
}

// IsAcyclic reports whether MQ is acyclic: H(MQ) is acyclic.
func (mq *Metaquery) IsAcyclic() bool { return hypergraph.IsAcyclic(mq.Hypergraph()) }

// IsSemiAcyclic reports whether MQ is semi-acyclic: SH(MQ) is acyclic.
// Every acyclic metaquery is semi-acyclic.
func (mq *Metaquery) IsSemiAcyclic() bool { return hypergraph.IsAcyclic(mq.SemiHypergraph()) }

// String renders the metaquery in the paper's arrow syntax.
func (mq *Metaquery) String() string {
	parts := make([]string, len(mq.Body))
	for i, l := range mq.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s <- %s", mq.Head.String(), strings.Join(parts, ", "))
}

// Rule is an ordinary Horn rule over a database: the result of applying an
// instantiation to a metaquery.
type Rule struct {
	Head relation.Atom
	Body []relation.Atom
}

// HeadAtoms returns h(r): the singleton set of head atoms.
func (r Rule) HeadAtoms() []relation.Atom { return []relation.Atom{r.Head} }

// BodyAtoms returns b(r): the set of body atoms (deduplicated).
func (r Rule) BodyAtoms() []relation.Atom {
	seen := make(map[string]bool, len(r.Body))
	out := make([]relation.Atom, 0, len(r.Body))
	for _, a := range r.Body {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// AllAtoms returns the atoms of the rule, head first, deduplicated.
func (r Rule) AllAtoms() []relation.Atom {
	return append([]relation.Atom{r.Head}, r.BodyAtoms()...)
}

// String renders the rule in Datalog arrow syntax.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s <- %s", r.Head.String(), strings.Join(parts, ", "))
}
