package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func ctxTestDB(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("q", "b", "c")
	db.MustInsertNamed("r", "a", "c")
	return db
}

func TestForEachInstantiationContextCancelled(t *testing.T) {
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEachInstantiationContext(ctx, db, mq, Type0, func(*Instantiation) (bool, error) {
		calls++
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("callback ran %d times under a cancelled context", calls)
	}
}

func TestNaiveAnswersContextCancelled(t *testing.T) {
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NaiveAnswersContext(ctx, db, mq, Type1, Thresholds{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNaiveAnswersContextExpiredDeadline(t *testing.T) {
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := NaiveAnswersContext(ctx, db, mq, Type1, Thresholds{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDecideContextCancelled(t *testing.T) {
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := DecideContext(ctx, db, mq, Cnf, rat.Zero, Type0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDecideParallelContextCancelled(t *testing.T) {
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Threshold above every confidence so no witness can cut the search
	// short before the cancelled context is noticed.
	_, _, err := DecideParallelContext(ctx, db, mq, Cnf, rat.New(101, 100), Type1, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDecideParallelContextWitnessBeatsCancellation(t *testing.T) {
	// With a live context a witness must still be found and reported.
	db := ctxTestDB(t)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	yes, witness, err := DecideParallelContext(context.Background(), db, mq, Cnf, rat.New(1, 2), Type0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !yes || witness == nil {
		t.Fatal("expected YES with witness under a live context")
	}
}

func TestCandidateIndexMatchesCandidates(t *testing.T) {
	db := ctxTestDB(t)
	db.MustInsertNamed("wide", "a", "b", "c") // arity-3 relation for type-2
	ix := NewCandidateIndex(db)
	mq := MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	for _, typ := range []InstType{Type0, Type1, Type2} {
		for pi, l := range mq.RelationPatterns() {
			want := Candidates(db, l, typ, pi)
			for i := 0; i < 2; i++ { // second call exercises the memo
				got := ix.Candidates(l, typ, pi)
				if len(got) != len(want) {
					t.Fatalf("%s pattern %d: %d candidates, want %d", typ, pi, len(got), len(want))
				}
				for j := range got {
					if got[j].String() != want[j].String() {
						t.Fatalf("%s pattern %d candidate %d: %s, want %s",
							typ, pi, j, got[j], want[j])
					}
				}
			}
		}
	}
}
