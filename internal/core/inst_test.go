package core

import (
	"strings"
	"testing"

	"github.com/mqgo/metaquery/internal/relation"
)

// db1 constructs the database of Figure 1: relations UsCa, CaTe and UsPT.
func db1(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	db.MustInsertNamed("UsCa", "John K.", "Omnitel")
	db.MustInsertNamed("UsCa", "John K.", "Tim")
	db.MustInsertNamed("UsCa", "Anastasia A.", "Omnitel")
	db.MustInsertNamed("CaTe", "Tim", "ETACS")
	db.MustInsertNamed("CaTe", "Tim", "GSM 900")
	db.MustInsertNamed("CaTe", "Tim", "GSM 1800")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 900")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 1800")
	db.MustInsertNamed("CaTe", "Wind", "GSM 1800")
	db.MustInsertNamed("UsPT", "John K.", "GSM 900")
	db.MustInsertNamed("UsPT", "John K.", "GSM 1800")
	db.MustInsertNamed("UsPT", "Anastasia A.", "GSM 900")
	return db
}

// db2 extends DB1 with the Figure 2 version of UsPT (extra Model column),
// replacing the binary UsPT by the ternary one.
func db2(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	db.MustInsertNamed("UsCa", "John K.", "Omnitel")
	db.MustInsertNamed("UsCa", "John K.", "Tim")
	db.MustInsertNamed("UsCa", "Anastasia A.", "Omnitel")
	db.MustInsertNamed("CaTe", "Tim", "ETACS")
	db.MustInsertNamed("CaTe", "Tim", "GSM 900")
	db.MustInsertNamed("CaTe", "Tim", "GSM 1800")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 900")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 1800")
	db.MustInsertNamed("CaTe", "Wind", "GSM 1800")
	db.MustInsertNamed("UsPT", "John K.", "GSM 900", "Nokia 6150")
	db.MustInsertNamed("UsPT", "John K.", "GSM 1800", "Nokia 6150")
	db.MustInsertNamed("UsPT", "Anastasia A.", "GSM 900", "Bosch 607")
	return db
}

// mq4 is the running metaquery (4) of the paper.
func mq4() *Metaquery { return MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)") }

func TestCandidatesType0(t *testing.T) {
	db := db1(t)
	cands := Candidates(db, Pattern("P", "X", "Y"), Type0, 0)
	if len(cands) != 3 {
		t.Fatalf("type-0 candidates = %v", cands)
	}
	// Argument lists untouched.
	for _, a := range cands {
		if a.String() != a.Pred+"(X,Y)" {
			t.Errorf("type-0 candidate rearranged arguments: %s", a)
		}
	}
}

func TestCandidatesType1(t *testing.T) {
	db := db1(t)
	cands := Candidates(db, Pattern("P", "X", "Y"), Type1, 0)
	// 3 relations x 2 permutations.
	if len(cands) != 6 {
		t.Fatalf("type-1 candidates = %d, want 6", len(cands))
	}
	// Both orders of UsCa must appear (the paper's §2.1 example).
	var hasXY, hasYX bool
	for _, a := range cands {
		switch a.String() {
		case "UsCa(X,Y)":
			hasXY = true
		case "UsCa(Y,X)":
			hasYX = true
		}
	}
	if !hasXY || !hasYX {
		t.Errorf("type-1 permutations missing: %v", cands)
	}
}

func TestCandidatesType1RepeatedVarDedup(t *testing.T) {
	db := db1(t)
	cands := Candidates(db, Pattern("P", "X", "X"), Type1, 0)
	// Permutations of (X,X) coincide: 3 relations x 1 distinct ordering.
	if len(cands) != 3 {
		t.Fatalf("type-1 repeated-var candidates = %v", cands)
	}
}

func TestCandidatesType2PadsFreshVars(t *testing.T) {
	db := db2(t)
	cands := Candidates(db, Pattern("R", "X", "Z"), Type2, 7)
	// Binary relations (UsCa, CaTe): 2 injections each = 4 atoms.
	// Ternary UsPT: 3*2 = 6 injections.
	if len(cands) != 10 {
		t.Fatalf("type-2 candidates = %d, want 10: %v", len(cands), cands)
	}
	// The paper's example: UsPT(X,Z,_fresh) must be among them.
	found := false
	for _, a := range cands {
		if a.Pred == "UsPT" && a.Terms[0].Var == "X" && a.Terms[1].Var == "Z" &&
			strings.HasPrefix(a.Terms[2].Var, freshPrefix) {
			found = true
		}
	}
	if !found {
		t.Errorf("UsPT(X,Z,fresh) not found in %v", cands)
	}
	// Fresh variables are keyed by the pattern index passed in.
	for _, a := range cands {
		for _, term := range a.Terms {
			if strings.HasPrefix(term.Var, freshPrefix) && !strings.HasPrefix(term.Var, "_f7_") {
				t.Errorf("fresh variable %q not keyed by pattern index", term.Var)
			}
		}
	}
}

func TestCandidatesType2SkipsSmallerRelations(t *testing.T) {
	db := relation.NewDatabase()
	db.MustInsertNamed("u", "a") // arity 1
	db.MustInsertNamed("b", "a", "b", "c")
	cands := Candidates(db, Pattern("P", "X", "Y"), Type2, 0)
	for _, a := range cands {
		if a.Pred == "u" {
			t.Errorf("type-2 matched pattern of arity 2 to relation of arity 1")
		}
	}
	if len(cands) != 6 {
		t.Errorf("type-2 candidates = %d, want 6 (3P2 into arity-3)", len(cands))
	}
}

func TestCandidatesNonPattern(t *testing.T) {
	db := db1(t)
	cands := Candidates(db, SchemeAtom("UsCa", "X", "Y"), Type0, 0)
	if len(cands) != 1 || cands[0].String() != "UsCa(X,Y)" {
		t.Errorf("non-pattern candidates = %v", cands)
	}
}

func TestValidateForType(t *testing.T) {
	db := db1(t)
	impure := MustParse("P(X) <- P(X,Y)")
	if err := ValidateForType(db, impure, Type0); err == nil {
		t.Error("type-0 accepted impure metaquery")
	}
	if err := ValidateForType(db, impure, Type1); err == nil {
		t.Error("type-1 accepted impure metaquery")
	}
	if err := ValidateForType(db, impure, Type2); err != nil {
		t.Errorf("type-2 rejected impure metaquery: %v", err)
	}
	missingRel := MustParse("R(X) <- nosuch(X)")
	if err := ValidateForType(db, missingRel, Type2); err == nil {
		t.Error("unknown relation atom accepted")
	}
	badArity := MustParse(`R(X) <- "UsCa"(X)`)
	if err := ValidateForType(db, badArity, Type2); err == nil {
		t.Error("arity-mismatched relation atom accepted")
	}
}

func TestCountInstantiationsType0(t *testing.T) {
	db := db1(t)
	n, err := CountInstantiations(db, mq4(), Type0)
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct predicate variables, three binary relations: 3^3.
	if n != 27 {
		t.Errorf("type-0 instantiations = %d, want 27", n)
	}
}

func TestCountInstantiationsType1(t *testing.T) {
	db := db1(t)
	n, err := CountInstantiations(db, mq4(), Type1)
	if err != nil {
		t.Fatal(err)
	}
	// Each pattern: 3 relations x 2 permutations = 6; 6^3 = 216.
	if n != 216 {
		t.Errorf("type-1 instantiations = %d, want 216", n)
	}
}

func TestInstantiationFunctionality(t *testing.T) {
	// Same predicate variable twice: both patterns must map to the same
	// relation (but may permute differently under type-1).
	db := relation.NewDatabase()
	db.MustInsertNamed("a", "1", "2")
	db.MustInsertNamed("b", "1", "2")
	mq := MustParse("R(X,Y) <- P(X,Y), P(Y,X)")
	n0, err := CountInstantiations(db, mq, Type0)
	if err != nil {
		t.Fatal(err)
	}
	// R: 2 choices; P: 2 choices shared by both patterns. 2*2 = 4.
	if n0 != 4 {
		t.Errorf("type-0 = %d, want 4", n0)
	}
	seenRelMismatch := false
	err = ForEachInstantiation(db, mq, Type0, func(s *Instantiation) (bool, error) {
		a1, _ := s.AtomFor(Pattern("P", "X", "Y"))
		a2, _ := s.AtomFor(Pattern("P", "Y", "X"))
		if a1.Pred != a2.Pred {
			seenRelMismatch = true
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seenRelMismatch {
		t.Error("functionality of σ' violated")
	}
}

func TestType1AllowsDifferentPermutationsPerPattern(t *testing.T) {
	// Crucial for Theorem 3.29: one predicate variable, two patterns, the
	// argument arrangements may differ.
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "1", "2")
	mq := MustParse("R(X,Y) <- P(X,Y), P(Y,X)")
	var foundMixed bool
	err := ForEachInstantiation(db, mq, Type1, func(s *Instantiation) (bool, error) {
		a1, _ := s.AtomFor(Pattern("P", "X", "Y"))
		a2, _ := s.AtomFor(Pattern("P", "Y", "X"))
		if a1.String() == "p(X,Y)" && a2.String() == "p(X,Y)" {
			foundMixed = true
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !foundMixed {
		t.Error("type-1 did not allow per-pattern permutations under one predicate variable")
	}
}

func TestAssignConflicts(t *testing.T) {
	s := NewInstantiation()
	p := Pattern("P", "X", "Y")
	if err := s.Assign(p, relation.NewAtom("a", "X", "Y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(p, relation.NewAtom("a", "X", "Y")); err != nil {
		t.Errorf("idempotent re-assign failed: %v", err)
	}
	if err := s.Assign(p, relation.NewAtom("b", "X", "Y")); err == nil {
		t.Error("conflicting pattern assignment accepted")
	}
	q := Pattern("P", "Y", "X")
	if err := s.Assign(q, relation.NewAtom("b", "Y", "X")); err == nil {
		t.Error("non-functional predicate-variable assignment accepted")
	}
	if err := s.Assign(SchemeAtom("r", "X"), relation.NewAtom("r", "X")); err == nil {
		t.Error("assigning to non-pattern accepted")
	}
}

func TestApplyProducesRule(t *testing.T) {
	db := db1(t)
	mq := mq4()
	var got []string
	err := ForEachInstantiation(db, mq, Type0, func(s *Instantiation) (bool, error) {
		r, err := s.Apply(mq)
		if err != nil {
			return false, err
		}
		if r.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
			got = append(got, r.String())
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("paper's rule found %d times, want 1", len(got))
	}
}

func TestApplyUnassignedPattern(t *testing.T) {
	mq := mq4()
	s := NewInstantiation()
	if _, err := s.Apply(mq); err == nil {
		t.Error("Apply with unassigned patterns succeeded")
	}
}

func TestAgreesAndCompose(t *testing.T) {
	p := Pattern("P", "X", "Y")
	q := Pattern("Q", "Y", "Z")
	s1 := NewInstantiation()
	s1.Assign(p, relation.NewAtom("a", "X", "Y"))
	s2 := NewInstantiation()
	s2.Assign(q, relation.NewAtom("b", "Y", "Z"))
	if !s1.Agrees(s2) {
		t.Error("disjoint instantiations do not agree")
	}
	c, err := s1.Compose(s2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("composed len = %d", c.Len())
	}
	s3 := NewInstantiation()
	s3.Assign(p, relation.NewAtom("b", "X", "Y"))
	if s1.Agrees(s3) {
		t.Error("conflicting instantiations agree")
	}
	if _, err := s1.Compose(s3); err == nil {
		t.Error("Compose of conflicting instantiations succeeded")
	}
}

func TestInstantiationSubsumptionAcrossTypes(t *testing.T) {
	// Type-0 instantiations are type-1 instantiations, which are type-2
	// (remark after Definition 2.4). Compare instantiation key sets.
	db := db1(t)
	mq := mq4()
	collect := func(typ InstType) map[string]bool {
		out := map[string]bool{}
		if err := ForEachInstantiation(db, mq, typ, func(s *Instantiation) (bool, error) {
			out[s.Key()] = true
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	t0, t1, t2 := collect(Type0), collect(Type1), collect(Type2)
	for k := range t0 {
		if !t1[k] {
			t.Fatalf("type-0 instantiation missing from type-1: %s", k)
		}
	}
	for k := range t1 {
		if !t2[k] {
			t.Fatalf("type-1 instantiation missing from type-2: %s", k)
		}
	}
}

func TestUnassignRelationOfString(t *testing.T) {
	s := NewInstantiation()
	p := Pattern("P", "X", "Y")
	q := Pattern("P", "Y", "Z")
	if err := s.Assign(p, relation.NewAtom("a", "X", "Y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(q, relation.NewAtom("a", "Y", "Z")); err != nil {
		t.Fatal(err)
	}
	if r, ok := s.RelationOf("P"); !ok || r != "a" {
		t.Fatalf("RelationOf = %q, %v", r, ok)
	}
	if str := s.String(); !strings.Contains(str, "a(") {
		t.Errorf("String() = %q", str)
	}
	// Unassigning one of two patterns sharing the predicate variable must
	// keep the relation binding alive.
	s.Unassign(q)
	if r, ok := s.RelationOf("P"); !ok || r != "a" {
		t.Fatal("predicate-variable binding dropped while still in use")
	}
	s.Unassign(p)
	if _, ok := s.RelationOf("P"); ok {
		t.Fatal("predicate-variable binding survived its last pattern")
	}
	s.Unassign(p) // idempotent on an absent assignment
	if s.Len() != 0 {
		t.Fatalf("Len = %d after full unassign", s.Len())
	}
}
