package core_test

// Race and cancellation stress for DecideParallel over generated instances.
// This file lives in an external test package so it can draw scenarios from
// internal/gen (which imports core). Run it under -race: the assertions are
// half the test, the data-race detector is the other half.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/gen"
	"github.com/mqgo/metaquery/internal/rat"
)

// stressShapes mixes cheap and branchy shapes so some searches finish
// before cancellation and others are cut mid-flight.
var stressShapes = []string{"t0-chain", "t1-cycle", "t2-pad", "t0-repeat-pred"}

// DecideParallel must return the same verdict as the sequential Decide for
// randomized worker counts, and every witness must genuinely pass the
// threshold.
func TestDecideParallelMatchesSequentialStress(t *testing.T) {
	for _, shape := range stressShapes {
		for seed := int64(0); seed < 6; seed++ {
			s, err := gen.NewScenario(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for _, ix := range core.AllIndices {
				k := rat.New(int64(rng.Intn(3)), int64(2+rng.Intn(3)))
				wantYes, _, err := core.Decide(s.DB, s.MQ, ix, k, s.Type)
				if err != nil {
					t.Fatal(err)
				}
				workers := 1 + rng.Intn(8)
				gotYes, wit, err := core.DecideParallel(s.DB, s.MQ, ix, k, s.Type, workers)
				if err != nil {
					t.Fatal(err)
				}
				if gotYes != wantYes {
					t.Errorf("%s/%d %s>%s workers=%d: parallel %v, sequential %v",
						shape, seed, ix, k, workers, gotYes, wantYes)
				}
				if wit != nil {
					assertWitness(t, s, ix, k, wit)
				}
			}
		}
	}
}

// Cancelling mid-search must neither deadlock nor corrupt the result: the
// call returns promptly with either a valid witness (found before the cut),
// the context error, or a definitive NO when the space was exhausted first.
func TestDecideParallelCancellationStress(t *testing.T) {
	for _, shape := range stressShapes {
		for seed := int64(0); seed < 6; seed++ {
			s, err := gen.NewScenario(seed, shape)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 7))
			for trial := 0; trial < 4; trial++ {
				ix := core.AllIndices[rng.Intn(len(core.AllIndices))]
				k := rat.New(int64(rng.Intn(2)), 2)
				workers := 1 + rng.Intn(8)
				ctx, cancel := context.WithCancel(context.Background())

				var wg sync.WaitGroup
				wg.Add(1)
				delay := time.Duration(rng.Intn(300)) * time.Microsecond
				go func() {
					defer wg.Done()
					time.Sleep(delay)
					cancel()
				}()

				done := make(chan struct{})
				var (
					yes  bool
					wit  *core.Instantiation
					derr error
				)
				go func() {
					yes, wit, derr = core.DecideParallelContext(ctx, s.DB, s.MQ, ix, k, s.Type, workers)
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatalf("%s/%d trial %d: DecideParallelContext deadlocked after cancellation", shape, seed, trial)
				}
				wg.Wait()
				cancel()

				switch {
				case derr != nil:
					if derr != context.Canceled {
						t.Errorf("%s/%d trial %d: unexpected error %v", shape, seed, trial, derr)
					}
					if yes || wit != nil {
						t.Errorf("%s/%d trial %d: error return carries a result", shape, seed, trial)
					}
				case yes:
					if wit == nil {
						t.Errorf("%s/%d trial %d: YES without witness", shape, seed, trial)
					} else {
						assertWitness(t, s, ix, k, wit)
					}
				default:
					// Definitive NO despite the cancel: the search exhausted
					// the space before the context was observed. Verify
					// against an uncancelled sequential run.
					wantYes, _, err := core.Decide(s.DB, s.MQ, ix, k, s.Type)
					if err != nil {
						t.Fatal(err)
					}
					if wantYes {
						t.Errorf("%s/%d trial %d: definitive NO but sequential search says YES", shape, seed, trial)
					}
				}
			}
		}
	}
}

// A context cancelled before the call must not hang either, and must never
// fabricate a definitive NO for an instance that has a witness.
func TestDecideParallelPreCancelled(t *testing.T) {
	s, err := gen.NewScenario(1, "t0-chain")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	yes, wit, derr := core.DecideParallelContext(ctx, s.DB, s.MQ, core.Sup, rat.Zero, s.Type, 4)
	if derr == nil && !yes {
		wantYes, _, err := core.Decide(s.DB, s.MQ, core.Sup, rat.Zero, s.Type)
		if err != nil {
			t.Fatal(err)
		}
		if wantYes {
			t.Error("pre-cancelled call returned definitive NO on a YES instance")
		}
	}
	if yes && wit == nil {
		t.Error("YES without witness")
	}
}

// assertWitness checks witness validity: it must instantiate the metaquery
// into a rule whose index value strictly exceeds k.
func assertWitness(t *testing.T, s *gen.Scenario, ix core.Index, k rat.Rat, wit *core.Instantiation) {
	t.Helper()
	rule, err := wit.Apply(s.MQ)
	if err != nil {
		t.Errorf("witness does not instantiate %s: %v", s.MQ, err)
		return
	}
	v, err := ix.Compute(s.DB, rule)
	if err != nil {
		t.Errorf("witness rule %s not evaluable: %v", rule, err)
		return
	}
	if !v.Greater(k) {
		t.Errorf("witness rule %s has %s = %s, not > %s", rule, ix, v, k)
	}
}
