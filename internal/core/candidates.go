package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/mqgo/metaquery/internal/relation"
)

// PatternIndex returns the index of pattern l in rep(MQ), used to key
// type-2 fresh padding variables. It returns -1 if l is not a pattern of mq.
func PatternIndex(mq *Metaquery, l LiteralScheme) int {
	for i, p := range mq.RelationPatterns() {
		if p.Key() == l.Key() {
			return i
		}
	}
	return -1
}

// ValidateForType checks the preconditions of the chosen instantiation
// semantics: type-0 and type-1 require pure metaqueries (Definitions
// 2.2/2.3); type-2 applies to any metaquery. It also checks that every
// ordinary atom of the metaquery names an existing database relation with
// the right arity, since σ never rewrites ordinary atoms.
func ValidateForType(db *relation.Database, mq *Metaquery, typ InstType) error {
	if typ != Type2 && !mq.IsPure() {
		return fmt.Errorf("core: %s instantiations require a pure metaquery", typ)
	}
	for _, l := range mq.LiteralSchemes() {
		if l.PredVar {
			continue
		}
		r := db.Relation(l.Pred)
		if r == nil {
			return fmt.Errorf("core: metaquery atom %s names unknown relation %q", l, l.Pred)
		}
		if r.Arity() != len(l.Args) {
			return fmt.Errorf("core: metaquery atom %s has arity %d but relation %s has arity %d",
				l, len(l.Args), l.Pred, r.Arity())
		}
	}
	return nil
}

// Candidates enumerates the atoms that relation pattern l may be mapped to
// by a type-typ instantiation over db, in deterministic order. patternIdx
// keys the fresh variables used for type-2 padding and must be the
// pattern's index in rep(MQ).
//
// The returned atoms are deduplicated: patterns with repeated variables can
// make distinct permutations or injections coincide.
func Candidates(db *relation.Database, l LiteralScheme, typ InstType, patternIdx int) []relation.Atom {
	if !l.PredVar {
		return []relation.Atom{l.Atom()}
	}
	return candidatesOver(db, l, typ, patternIdx, db.RelationNames())
}

// candidatesOver generates the candidate atoms of pattern l restricted to
// the given relation names. It is the shared generator behind Candidates
// (all relations) and CandidateIndex.Candidates (arity-bucketed names).
func candidatesOver(db *relation.Database, l LiteralScheme, typ InstType, patternIdx int, names []string) []relation.Atom {
	var out []relation.Atom
	seen := make(map[string]bool)
	add := func(a relation.Atom) {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	k := len(l.Args)
	for _, name := range names {
		rel := db.Relation(name)
		switch typ {
		case Type0:
			if rel.Arity() == k {
				add(atomOver(name, l.Args))
			}
		case Type1:
			if rel.Arity() == k {
				forEachPermutation(l.Args, func(perm []string) {
					add(atomOver(name, perm))
				})
			}
		case Type2:
			kp := rel.Arity()
			if kp < k {
				continue
			}
			// Enumerate injections ι: pattern positions -> atom positions.
			forEachInjection(k, kp, func(inj []int) {
				args := make([]string, kp)
				used := make([]bool, kp)
				for j, p := range inj {
					args[p] = l.Args[j]
					used[p] = true
				}
				for p := 0; p < kp; p++ {
					if !used[p] {
						args[p] = freshVar(patternIdx, p)
					}
				}
				add(atomOver(name, args))
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// forEachPermutation calls f with every ordering of args (including
// duplicates of equal orderings; callers deduplicate results).
func forEachPermutation(args []string, f func([]string)) {
	n := len(args)
	if n == 0 {
		f(nil)
		return
	}
	perm := append([]string(nil), args...)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			f(perm)
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
}

// forEachInjection calls f with every injective map from {0..k-1} into
// {0..kp-1}, represented as a slice inj with inj[j] = image of j.
func forEachInjection(k, kp int, f func([]int)) {
	inj := make([]int, k)
	used := make([]bool, kp)
	var rec func(j int)
	rec = func(j int) {
		if j == k {
			f(inj)
			return
		}
		for p := 0; p < kp; p++ {
			if used[p] {
				continue
			}
			used[p] = true
			inj[j] = p
			rec(j + 1)
			used[p] = false
		}
	}
	rec(0)
}

// CountInstantiations returns the number of distinct type-typ
// instantiations of mq over db (the instantiation search space analyzed at
// the end of Section 4). It enumerates with early aggregation, so it is
// intended for instrumentation, not hot paths.
func CountInstantiations(db *relation.Database, mq *Metaquery, typ InstType) (int, error) {
	n := 0
	err := ForEachInstantiation(db, mq, typ, func(*Instantiation) (bool, error) {
		n++
		return true, nil
	})
	return n, err
}

// ForEachInstantiation enumerates every type-typ instantiation σ of mq over
// db, calling f with each. Enumeration stops early when f returns false.
// The *Instantiation passed to f is reused; clone it to retain it.
func ForEachInstantiation(db *relation.Database, mq *Metaquery, typ InstType, f func(*Instantiation) (bool, error)) error {
	return ForEachInstantiationContext(context.Background(), db, mq, typ, f)
}

// ForEachInstantiationContext is ForEachInstantiation with cancellation:
// ctx is checked before every candidate extension, and enumeration stops
// with ctx.Err() as soon as the context is cancelled or its deadline
// passes.
func ForEachInstantiationContext(ctx context.Context, db *relation.Database, mq *Metaquery, typ InstType, f func(*Instantiation) (bool, error)) error {
	if err := ValidateForType(db, mq, typ); err != nil {
		return err
	}
	patterns := mq.RelationPatterns()
	sigma := NewInstantiation()
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if i == len(patterns) {
			return f(sigma)
		}
		l := patterns[i]
		for _, a := range Candidates(db, l, typ, i) {
			// Enforce functionality of σ' incrementally.
			if rel, ok := sigma.relOf[l.Pred]; ok && rel != a.Pred {
				continue
			}
			_, hadRel := sigma.relOf[l.Pred]
			sigma.assign[l.Key()] = a
			if !hadRel {
				sigma.relOf[l.Pred] = a.Pred
			}
			cont, err := rec(i + 1)
			delete(sigma.assign, l.Key())
			if !hadRel {
				delete(sigma.relOf, l.Pred)
			}
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}
