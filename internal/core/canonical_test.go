package core

import "testing"

func TestCanonicalKeyAlphaEquivalence(t *testing.T) {
	// Pairs that are α-equivalent: identical up to injective renaming of
	// predicate variables and ordinary variables.
	equivalent := [][2]string{
		{"R(X,Z) <- P(X,Y), Q(Y,Z)", "R(A,C) <- P(A,B), Q(B,C)"},
		{"R(X,Z) <- P(X,Y), Q(Y,Z)", "S(U,W) <- T(U,V), M(V,W)"},
		{"R(X,X) <- P(X,Y)", "Q(A,A) <- Z0(A,B)"},
		{"R(X) <- p(X,Y), P(Y)", "T(B) <- p(B,C), W(C)"},
		{"R(X) <- P(X,c), Q(X)", "S(Y) <- T(Y,c), U(Y)"},
	}
	for _, pair := range equivalent {
		a, b := MustParse(pair[0]), MustParse(pair[1])
		ka, kb := a.CanonicalKey(), b.CanonicalKey()
		if ka != kb {
			t.Errorf("expected α-equivalent keys:\n  %s -> %s\n  %s -> %s",
				pair[0], ka, pair[1], kb)
		}
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	// Pairs that must NOT collapse to one key.
	distinct := [][2]string{
		// Different equality pattern: head repeats a variable vs not.
		{"R(X,X) <- P(X,Y)", "R(X,Y) <- P(X,Y)"},
		// Renaming must be injective: X,Y -> A,A is not a renaming.
		{"R(X,Y) <- P(X,Y)", "R(A,A) <- P(A,A)"},
		// Repeated predicate variable vs two distinct ones.
		{"R(X,Z) <- P(X,Y), P(Y,Z)", "R(X,Z) <- P(X,Y), Q(Y,Z)"},
		// Relation names are not renameable.
		{"R(X) <- p(X)", "R(X) <- q(X)"},
		// Constants are not renameable.
		{"R(X) <- P(X,c)", "R(X) <- P(X,d)"},
		// A constant is not a variable.
		{"R(X) <- P(X,c)", "R(X) <- P(X,Y)"},
		// Body order is part of the identity (answers render in body order).
		{"R(X) <- p(X), q(X)", "R(X) <- q(X), p(X)"},
		// A relation name is not a predicate variable, even α-renamed.
		{"R(X) <- p(X)", "R(X) <- P(X)"},
		// Arity differs.
		{"R(X) <- P(X)", "R(X) <- P(X,X)"},
	}
	for _, pair := range distinct {
		a, b := MustParse(pair[0]), MustParse(pair[1])
		ka, kb := a.CanonicalKey(), b.CanonicalKey()
		if ka == kb {
			t.Errorf("distinct metaqueries share key %q:\n  %s\n  %s", ka, pair[0], pair[1])
		}
	}
}

func TestCanonicalKeyQuotingCannotCollide(t *testing.T) {
	// A relation literally named like a canonical pattern rendering must
	// not collide with an actual pattern's rendering.
	a := MustParse(`R(X) <- "?0"(X)`)
	b := MustParse(`R(X) <- P(X)`)
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatalf("relation %q collides with pattern rendering: %s", "?0", a.CanonicalKey())
	}
	// Constants named like variable renderings stay distinct too.
	c := MustParse(`R(X) <- p(X,"v0")`)
	d := MustParse(`R(X) <- p(X,Y)`)
	if c.CanonicalKey() == d.CanonicalKey() {
		t.Fatalf("constant %q collides with variable rendering: %s", "v0", c.CanonicalKey())
	}
}

func TestCanonicalKeyStableUnderMuteVariables(t *testing.T) {
	// Each "_" parses to a fresh variable; two parses of the same text must
	// agree, and the key must match the explicitly named spelling.
	a := MustParse("R(X) <- P(X,_), Q(X,_)")
	b := MustParse("R(X) <- P(X,_), Q(X,_)")
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatalf("same text, different keys: %s vs %s", a.CanonicalKey(), b.CanonicalKey())
	}
	named := MustParse("R(X) <- P(X,M1), Q(X,M2)")
	if a.CanonicalKey() != named.CanonicalKey() {
		t.Fatalf("mute form %s != named form %s", a.CanonicalKey(), named.CanonicalKey())
	}
}
