package core

import (
	"testing"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

func TestNaiveAnswersFindsPaperRule(t *testing.T) {
	db := db1(t)
	// Require cnf > 1/2 and positive support/cover.
	th := AllAbove(rat.Zero, rat.New(1, 2), rat.Zero)
	answers, err := NaiveAnswers(db, mq4(), Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	var hit *Answer
	for i := range answers {
		if answers[i].Rule.String() == "UsPT(X,Z) <- UsCa(X,Y), CaTe(Y,Z)" {
			hit = &answers[i]
		}
	}
	if hit == nil {
		t.Fatalf("paper rule not in answers (%d found)", len(answers))
	}
	if !hit.Cnf.Equal(rat.New(5, 7)) || !hit.Cvr.Equal(rat.One) || !hit.Sup.Equal(rat.One) {
		t.Errorf("indices = sup %v cnf %v cvr %v", hit.Sup, hit.Cnf, hit.Cvr)
	}
}

func TestNaiveAnswersSortedDeterministic(t *testing.T) {
	db := db1(t)
	th := Thresholds{} // no checks enabled: every instantiation answers
	a1, err := NaiveAnswers(db, mq4(), Type0, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 27 {
		t.Fatalf("unfiltered answers = %d, want 27", len(a1))
	}
	a2, _ := NaiveAnswers(db, mq4(), Type0, th)
	for i := range a1 {
		if a1[i].Rule.String() != a2[i].Rule.String() {
			t.Fatal("non-deterministic answer order")
		}
	}
	for i := 1; i < len(a1); i++ {
		if a1[i-1].Rule.String() > a1[i].Rule.String() {
			t.Fatal("answers not sorted")
		}
	}
}

func TestThresholdsAdmits(t *testing.T) {
	th := AllAbove(rat.New(1, 2), rat.New(1, 2), rat.New(1, 2))
	if th.Admits(rat.New(1, 2), rat.One, rat.One) {
		t.Error("strict sup threshold not enforced")
	}
	if !th.Admits(rat.New(2, 3), rat.New(2, 3), rat.New(2, 3)) {
		t.Error("valid answer rejected")
	}
	single := SingleIndex(Cnf, rat.New(3, 4))
	if single.Admits(rat.Zero, rat.New(3, 4), rat.Zero) {
		t.Error("strict single threshold not enforced")
	}
	if !single.Admits(rat.Zero, rat.New(4, 5), rat.Zero) {
		t.Error("single-index thresholds must ignore other indices")
	}
}

func TestDecidePositive(t *testing.T) {
	db := db1(t)
	yes, witness, err := Decide(db, mq4(), Cnf, rat.New(1, 2), Type0)
	if err != nil {
		t.Fatal(err)
	}
	if !yes || witness == nil {
		t.Fatal("expected YES instance with witness")
	}
	// The witness must actually certify the decision.
	rule, err := witness.Apply(mq4())
	if err != nil {
		t.Fatal(err)
	}
	v, err := Confidence(db, rule)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Greater(rat.New(1, 2)) {
		t.Errorf("witness confidence %v not > 1/2", v)
	}
}

func TestDecideNegative(t *testing.T) {
	// A database where the only relation is empty: no index can exceed 0.
	db := relation.NewDatabase()
	db.MustAddRelation("p", 2)
	mq := mq4()
	for _, ix := range AllIndices {
		yes, _, err := Decide(db, mq, ix, rat.Zero, Type0)
		if err != nil {
			t.Fatal(err)
		}
		if yes {
			t.Errorf("Decide(%s) = yes on empty database", ix)
		}
	}
}

func TestDecideThresholdBoundary(t *testing.T) {
	db := db1(t)
	// cnf of the best rule for mq4/Type0: determine max, then decide at
	// exactly that value (strictness must make it NO) and just below (YES).
	answers, err := NaiveAnswers(db, mq4(), Type0, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	best := rat.Zero
	for _, a := range answers {
		best = rat.Max(best, a.Cnf)
	}
	if best.IsZero() {
		t.Skip("degenerate: all confidences zero")
	}
	yes, _, err := Decide(db, mq4(), Cnf, best, Type0)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Errorf("Decide at k = max cnf %v should be NO (strict)", best)
	}
	// Just below: k = best - epsilon via (num*2-1)/(den*2).
	justBelow := rat.New(best.Num()*2-1, best.Den()*2)
	yes, _, err = Decide(db, mq4(), Cnf, justBelow, Type0)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Errorf("Decide at k just below max cnf should be YES")
	}
}

func TestNaiveAnswersType2Figure2(t *testing.T) {
	// With the Figure 2 ternary UsPT, metaquery (4) admits the type-2
	// answer UsPT(X,Z,T) <- UsCa(Y,X), CaTe(Y,Z) (§2.1).
	db := db2(t)
	answers, err := NaiveAnswers(db, mq4(), Type2, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range answers {
		if a.Rule.Head.Pred == "UsPT" &&
			a.Rule.Head.Terms[0].Var == "X" && a.Rule.Head.Terms[1].Var == "Z" &&
			a.Rule.Body[0].String() == "UsCa(Y,X)" &&
			a.Rule.Body[1].String() == "CaTe(Y,Z)" {
			found = true
		}
	}
	if !found {
		t.Error("type-2 paper instantiation not found")
	}
}

func TestNaiveAnswerIndicesConsistent(t *testing.T) {
	// Every reported index value must match a recomputation on the rule.
	db := db1(t)
	answers, err := NaiveAnswers(db, mq4(), Type1, SingleIndex(Sup, rat.New(1, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range answers {
		sup, _ := Support(db, a.Rule)
		cnf, _ := Confidence(db, a.Rule)
		cvr, _ := Cover(db, a.Rule)
		if !sup.Equal(a.Sup) || !cnf.Equal(a.Cnf) || !cvr.Equal(a.Cvr) {
			t.Errorf("stale indices for %s", a.Rule)
		}
		if !a.Sup.Greater(rat.New(1, 2)) {
			t.Errorf("threshold violated for %s: sup %v", a.Rule, a.Sup)
		}
	}
}
