package core

import (
	"fmt"
	"strings"
)

// CanonicalKey returns a variable-renaming-invariant identity for the
// metaquery: two metaqueries are α-equivalent — identical up to an
// injective renaming of their predicate variables and of their ordinary
// variables — if and only if their canonical keys are equal. Relation
// names, constants, literal order and argument positions are preserved
// (body order matters: answers render body atoms in metaquery order, so
// reordered bodies are genuinely different queries).
//
// The key is the cache identity of a prepared metaquery: preparation and
// execution depend on variable names only through their equality pattern,
// so α-equivalent metaqueries can share one Prepared. internal/server's
// prepared-query cache is keyed on it. Note that answers produced through
// a shared Prepared use the variable names of the representative the
// cache prepared first.
func (mq *Metaquery) CanonicalKey() string {
	predIdx := make(map[string]int)
	varIdx := make(map[string]int)
	var b strings.Builder
	writeScheme := func(l LiteralScheme) {
		if l.PredVar {
			i, ok := predIdx[l.Pred]
			if !ok {
				i = len(predIdx)
				predIdx[l.Pred] = i
			}
			fmt.Fprintf(&b, "?%d(", i)
		} else {
			// Relation names and constants are quoted so they can never
			// collide with the ?N / vN renamings or each other.
			fmt.Fprintf(&b, "%q(", l.Pred)
		}
		for j, a := range l.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			if IsConstName(a) {
				fmt.Fprintf(&b, "%q", a)
			} else {
				i, ok := varIdx[a]
				if !ok {
					i = len(varIdx)
					varIdx[a] = i
				}
				fmt.Fprintf(&b, "v%d", i)
			}
		}
		b.WriteByte(')')
	}
	writeScheme(mq.Head)
	b.WriteString("<-")
	for i, l := range mq.Body {
		if i > 0 {
			b.WriteByte(',')
		}
		writeScheme(l)
	}
	return b.String()
}
