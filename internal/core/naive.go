package core

import (
	"context"
	"sort"

	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// Answer is one rule in the answer to a metaquery, together with its
// plausibility indices.
type Answer struct {
	Inst *Instantiation
	Rule Rule
	Sup  rat.Rat
	Cnf  rat.Rat
	Cvr  rat.Rat
}

// Thresholds carries the user-provided admissibility thresholds for the
// three indices; all comparisons are strict (index > threshold), matching
// the decision problems of Section 3.2. The zero value (all thresholds 0)
// requires every index to be positive. Use Unconstrained for a single-index
// query.
type Thresholds struct {
	Sup rat.Rat
	Cnf rat.Rat
	Cvr rat.Rat

	// Check*, when false, disable the corresponding threshold entirely
	// (the index is still computed and reported).
	CheckSup bool
	CheckCnf bool
	CheckCvr bool
}

// AllAbove builds thresholds requiring sup > ks, cnf > kc and cvr > kv.
func AllAbove(ks, kc, kv rat.Rat) Thresholds {
	return Thresholds{Sup: ks, Cnf: kc, Cvr: kv, CheckSup: true, CheckCnf: true, CheckCvr: true}
}

// SingleIndex builds thresholds constraining only the given index to be > k.
func SingleIndex(ix Index, k rat.Rat) Thresholds {
	var t Thresholds
	switch ix {
	case Sup:
		t.Sup, t.CheckSup = k, true
	case Cnf:
		t.Cnf, t.CheckCnf = k, true
	case Cvr:
		t.Cvr, t.CheckCvr = k, true
	}
	return t
}

// Admits reports whether an answer with the given index values passes the
// thresholds.
func (t Thresholds) Admits(sup, cnf, cvr rat.Rat) bool {
	if t.CheckSup && !sup.Greater(t.Sup) {
		return false
	}
	if t.CheckCnf && !cnf.Greater(t.Cnf) {
		return false
	}
	if t.CheckCvr && !cvr.Greater(t.Cvr) {
		return false
	}
	return true
}

// NaiveAnswers enumerates every type-typ instantiation of mq over db,
// computes all three indices by direct materialization of the relational
// algebra definitions, and returns the answers passing the thresholds,
// sorted by rule text. It is the reference implementation against which the
// findRules engine is differentially tested.
func NaiveAnswers(db *relation.Database, mq *Metaquery, typ InstType, th Thresholds) ([]Answer, error) {
	return NaiveAnswersContext(context.Background(), db, mq, typ, th)
}

// NaiveAnswersContext is NaiveAnswers with cancellation: enumeration stops
// with ctx.Err() as soon as ctx is cancelled or its deadline passes.
func NaiveAnswersContext(ctx context.Context, db *relation.Database, mq *Metaquery, typ InstType, th Thresholds) ([]Answer, error) {
	ev := NewEvaluator(db)
	var out []Answer
	err := ForEachInstantiationContext(ctx, db, mq, typ, func(sigma *Instantiation) (bool, error) {
		rule, err := sigma.Apply(mq)
		if err != nil {
			return false, err
		}
		sup, cnf, cvr, err := ev.Indices(rule)
		if err != nil {
			return false, err
		}
		if th.Admits(sup, cnf, cvr) {
			out = append(out, Answer{Inst: sigma.Clone(), Rule: rule, Sup: sup, Cnf: cnf, Cvr: cvr})
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	SortAnswers(out)
	return out, nil
}

// SortAnswers orders answers deterministically by rule text.
func SortAnswers(as []Answer) {
	sort.Slice(as, func(i, j int) bool { return as[i].Rule.String() < as[j].Rule.String() })
}

// Decide solves the decision problem ⟨DB, MQ, I, k, T⟩ of Section 3.2: is
// there a type-T instantiation σ with I(σ(MQ)) > k? It returns the witness
// instantiation when the answer is yes. Enumeration stops at the first
// witness.
func Decide(db *relation.Database, mq *Metaquery, ix Index, k rat.Rat, typ InstType) (bool, *Instantiation, error) {
	return DecideContext(context.Background(), db, mq, ix, k, typ)
}

// DecideContext is Decide with cancellation: enumeration stops with
// ctx.Err() as soon as ctx is cancelled or its deadline passes.
func DecideContext(ctx context.Context, db *relation.Database, mq *Metaquery, ix Index, k rat.Rat, typ InstType) (bool, *Instantiation, error) {
	ev := NewEvaluator(db)
	var witness *Instantiation
	err := ForEachInstantiationContext(ctx, db, mq, typ, func(sigma *Instantiation) (bool, error) {
		rule, err := sigma.Apply(mq)
		if err != nil {
			return false, err
		}
		yes, err := ev.IndexExceeds(ix, rule, k)
		if err != nil {
			return false, err
		}
		if yes {
			witness = sigma.Clone()
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	return witness != nil, witness, nil
}
