package core

import (
	"testing"

	"github.com/mqgo/metaquery/internal/relation"
	"github.com/mqgo/metaquery/internal/stats"
)

// epochTestDB builds a small database with two binary relations and one
// unary relation, the minimal schema for exercising arity buckets.
func epochTestDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "a", "b")
	db.MustInsertNamed("p", "b", "c")
	db.MustInsertNamed("q", "b", "c")
	db.MustInsertNamed("u", "a")
	return db
}

// TestCandidateIndexExtend covers the epoch path of the candidate index:
// tuple-only deltas carry every memoized candidate list to the new
// version, while schema changes invalidate exactly the buckets they touch
// (their own arity for type-0/1, every arity at or above for type-2).
func TestCandidateIndexExtend(t *testing.T) {
	db := epochTestDB()
	ix := NewCandidateIndex(db)
	if ix.Database() != db {
		t.Fatal("Database accessor mismatch")
	}
	if got := ix.RelationsOfArity(2); len(got) != 2 {
		t.Fatalf("RelationsOfArity(2) = %v", got)
	}

	scheme := LiteralScheme{Pred: "R", PredVar: true, Args: []string{"X", "Y"}}
	base := ix.Candidates(scheme, Type0, 0)
	if len(base) != 2 {
		t.Fatalf("binary candidates %v", base)
	}

	// Tuple-only new version: same schema, memo carried over — Extend's
	// candidate list for the same scheme must agree without a rescan.
	db2 := db.Clone()
	db2.MustInsertNamed("p", "x", "y")
	ix2 := ix.Extend(db2)
	if ix2.Database() != db2 {
		t.Fatal("extended index bound to the wrong database")
	}
	if got := ix2.Candidates(scheme, Type0, 0); len(got) != len(base) {
		t.Fatalf("tuple-only extend changed candidates: %v vs %v", got, base)
	}

	// Schema change: a new binary relation must invalidate the arity-2
	// bucket — the new candidate list sees three relations.
	db3 := db2.Clone()
	db3.MustInsertNamed("r", "m", "n")
	ix3 := ix2.Extend(db3)
	if got := ix3.Candidates(scheme, Type0, 0); len(got) != 3 {
		t.Fatalf("schema extend candidates %v, want 3 relations", got)
	}
	if got := ix3.RelationsOfArity(2); len(got) != 3 {
		t.Fatalf("RelationsOfArity(2) after extend = %v", got)
	}

	// Type-2 memo entries draw from every arity >= their own, so adding a
	// binary relation also invalidates a memoized unary type-2 scheme.
	uscheme := LiteralScheme{Pred: "S", PredVar: true, Args: []string{"X"}}
	t2 := ix3.Candidates(uscheme, Type2, 0)
	db4 := db3.Clone()
	db4.MustInsertNamed("s", "q", "r")
	ix4 := ix3.Extend(db4)
	if got := ix4.Candidates(uscheme, Type2, 0); len(got) <= len(t2) {
		t.Fatalf("type-2 candidates %d after adding a binary relation, had %d", len(got), len(t2))
	}
	// The old index is untouched throughout.
	if got := ix.Candidates(scheme, Type0, 0); len(got) != 2 {
		t.Fatalf("old-epoch index changed: %v", got)
	}
}

// TestEvaluatorFork covers the epoch path of the evaluator: cached atom
// tables and estimates survive a fork exactly when their relation is
// pointer-identical between database versions, and the fork serves the
// new version's data for the relations that changed.
func TestEvaluatorFork(t *testing.T) {
	db := epochTestDB()
	st := stats.CollectCounting(db)
	ev := NewEvaluatorStats(db, st)
	if ev.Database() != db || ev.Stats() != st {
		t.Fatal("accessor mismatch")
	}

	pAtom := relation.Atom{Pred: "p", Terms: []relation.Term{relation.V("X"), relation.V("Y")}}
	qAtom := relation.Atom{Pred: "q", Terms: []relation.Term{relation.V("Y"), relation.V("Z")}}
	pt, err := ev.TableFor(pAtom)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.TableFor(qAtom); err != nil {
		t.Fatal(err)
	}
	ev.AtomEst(pAtom) // populate the estimate cache too

	// Build the new version the way Apply does: share unchanged relation
	// pointers, extend the changed one.
	q2 := db.Relation("q").Extend()
	q2.Insert(relation.Tuple{db.Dict().Intern("zz"), db.Dict().Intern("ww")})
	db2 := db.Extend(map[string]*relation.Relation{"q": q2})

	st2 := st.WithDelta(db2, []stats.RelationChange{{Name: "q", Added: []relation.Tuple{q2.Row(q2.Len() - 1)}}})
	ev2 := ev.Fork(db2, st2)
	if ev2.Database() != db2 || ev2.Stats() != st2 {
		t.Fatal("fork accessor mismatch")
	}

	// The unchanged relation's cached table is carried over by pointer.
	pt2, err := ev2.TableFor(pAtom)
	if err != nil {
		t.Fatal(err)
	}
	if pt2 != pt {
		t.Error("fork rebuilt the cached table of an unchanged relation")
	}
	// The changed relation is served from the new version.
	qt2, err := ev2.TableFor(qAtom)
	if err != nil {
		t.Fatal(err)
	}
	if qt2.Len() != 2 {
		t.Fatalf("forked q table has %d rows, want 2", qt2.Len())
	}
	// The old evaluator still sees the old data.
	qt, err := ev.TableFor(qAtom)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Len() != 1 {
		t.Fatalf("old-epoch q table has %d rows, want 1", qt.Len())
	}

	// Join paths agree with each other on the forked evaluator.
	atoms := []relation.Atom{pAtom, qAtom}
	jg, err := ev2.JoinGreedy(atoms)
	if err != nil {
		t.Fatal(err)
	}
	jo, err := ev2.JoinOrdered(atoms, true)
	if err != nil {
		t.Fatal(err)
	}
	if jg.Len() != jo.Len() {
		t.Fatalf("JoinGreedy %d rows vs JoinOrdered %d", jg.Len(), jo.Len())
	}
}
