package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mqgo/metaquery/internal/relation"
)

// CandidateIndex caches the per-database structures the instantiation
// search consults on every pattern assignment: the database's relations
// bucketed by arity, and the memoized candidate atom lists per (pattern,
// type) pair. Building the index once per database and sharing it across
// queries amortizes the preprocessing that Candidates otherwise redoes on
// every call (scanning all relations, enumerating permutations or
// injections, deduplicating).
//
// A CandidateIndex snapshots the database schema at construction time: the
// database must not gain or lose relations (or change relation arities)
// while the index is in use; Extend derives the index of a changed schema.
// Tuple-level updates are harmless because candidate atoms depend only on
// relation names and arities.
//
// All methods are safe for concurrent use.
type CandidateIndex struct {
	db *relation.Database

	// byArity buckets relation names by arity, each bucket sorted.
	byArity  map[int][]string
	maxArity int

	mu   sync.RWMutex
	memo map[string]memoEntry
}

// memoEntry is one memoized candidate list together with the scheme shape
// it was computed for, which is what Extend needs to decide whether a
// schema change invalidates it.
type memoEntry struct {
	atoms []relation.Atom
	typ   InstType
	k     int // scheme arity, len(l.Args)
}

// NewCandidateIndex builds the arity buckets for db.
func NewCandidateIndex(db *relation.Database) *CandidateIndex {
	ix := &CandidateIndex{
		db:      db,
		byArity: make(map[int][]string),
		memo:    make(map[string]memoEntry),
	}
	for _, name := range db.RelationNames() {
		a := db.Relation(name).Arity()
		ix.byArity[a] = append(ix.byArity[a], name)
		if a > ix.maxArity {
			ix.maxArity = a
		}
	}
	return ix
}

// Extend returns the candidate index of db, a newer version of the indexed
// database, reusing as much of ix as the schema difference allows: the
// arity buckets are rebuilt (cheap, one pass over relation names), and
// every memoized candidate list whose arity reach no changed bucket touches
// is carried over — in the common delta case of tuple-only changes, that is
// all of them. ix itself is untouched; old-epoch readers keep using it.
func (ix *CandidateIndex) Extend(db *relation.Database) *CandidateIndex {
	nix := &CandidateIndex{
		db:      db,
		byArity: make(map[int][]string, len(ix.byArity)),
		memo:    make(map[string]memoEntry),
	}
	for _, name := range db.RelationNames() {
		a := db.Relation(name).Arity()
		nix.byArity[a] = append(nix.byArity[a], name)
		if a > nix.maxArity {
			nix.maxArity = a
		}
	}
	changed := make(map[int]bool)
	for a, names := range nix.byArity {
		if !equalNames(names, ix.byArity[a]) {
			changed[a] = true
		}
	}
	for a := range ix.byArity {
		if _, ok := nix.byArity[a]; !ok {
			changed[a] = true
		}
	}
	ix.mu.RLock()
	for key, e := range ix.memo {
		if memoAffected(e, changed, nix.maxArity) {
			continue
		}
		nix.memo[key] = e
	}
	ix.mu.RUnlock()
	return nix
}

// memoAffected reports whether a memoized candidate list is invalidated by
// the changed arity buckets: Type0/Type1 schemes draw from exactly their
// own arity, Type2 schemes from every arity at or above it.
func memoAffected(e memoEntry, changed map[int]bool, maxArity int) bool {
	switch e.typ {
	case Type0, Type1:
		return changed[e.k]
	default:
		for a := e.k; a <= maxArity; a++ {
			if changed[a] {
				return true
			}
		}
		return false
	}
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Database returns the database the index was built over.
func (ix *CandidateIndex) Database() *relation.Database { return ix.db }

// RelationsOfArity returns the names of the relations with the given
// arity, sorted. The caller must not modify the returned slice.
func (ix *CandidateIndex) RelationsOfArity(k int) []string { return ix.byArity[k] }

// Candidates is Candidates(ix.Database(), l, typ, patternIdx) served from
// the index: the relation scan is restricted to the arity buckets that can
// match l, and the resulting atom list is memoized. The caller must not
// modify the returned slice.
func (ix *CandidateIndex) Candidates(l LiteralScheme, typ InstType, patternIdx int) []relation.Atom {
	if !l.PredVar {
		return []relation.Atom{l.Atom()}
	}
	key := fmt.Sprintf("%d|%d|%s", typ, patternIdx, l.Key())
	ix.mu.RLock()
	e, ok := ix.memo[key]
	ix.mu.RUnlock()
	if ok {
		return e.atoms
	}

	k := len(l.Args)
	var names []string
	switch typ {
	case Type0, Type1:
		names = ix.byArity[k]
	default: // Type2: any arity >= k
		for a := k; a <= ix.maxArity; a++ {
			names = append(names, ix.byArity[a]...)
		}
		sort.Strings(names)
	}
	out := candidatesOver(ix.db, l, typ, patternIdx, names)

	ix.mu.Lock()
	if prev, ok := ix.memo[key]; ok {
		out = prev.atoms // another goroutine won the race; keep one canonical slice
	} else {
		ix.memo[key] = memoEntry{atoms: out, typ: typ, k: k}
	}
	ix.mu.Unlock()
	return out
}
