package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mqgo/metaquery/internal/relation"
)

// CandidateIndex caches the per-database structures the instantiation
// search consults on every pattern assignment: the database's relations
// bucketed by arity, and the memoized candidate atom lists per (pattern,
// type) pair. Building the index once per database and sharing it across
// queries amortizes the preprocessing that Candidates otherwise redoes on
// every call (scanning all relations, enumerating permutations or
// injections, deduplicating).
//
// A CandidateIndex snapshots the database schema at construction time: the
// database must not gain or lose relations (or change relation arities)
// while the index is in use. Tuple-level updates are harmless because
// candidate atoms depend only on relation names and arities.
//
// All methods are safe for concurrent use.
type CandidateIndex struct {
	db *relation.Database

	// byArity buckets relation names by arity, each bucket sorted.
	byArity  map[int][]string
	maxArity int

	mu   sync.RWMutex
	memo map[string][]relation.Atom
}

// NewCandidateIndex builds the arity buckets for db.
func NewCandidateIndex(db *relation.Database) *CandidateIndex {
	ix := &CandidateIndex{
		db:      db,
		byArity: make(map[int][]string),
		memo:    make(map[string][]relation.Atom),
	}
	for _, name := range db.RelationNames() {
		a := db.Relation(name).Arity()
		ix.byArity[a] = append(ix.byArity[a], name)
		if a > ix.maxArity {
			ix.maxArity = a
		}
	}
	return ix
}

// Database returns the database the index was built over.
func (ix *CandidateIndex) Database() *relation.Database { return ix.db }

// RelationsOfArity returns the names of the relations with the given
// arity, sorted. The caller must not modify the returned slice.
func (ix *CandidateIndex) RelationsOfArity(k int) []string { return ix.byArity[k] }

// Candidates is Candidates(ix.Database(), l, typ, patternIdx) served from
// the index: the relation scan is restricted to the arity buckets that can
// match l, and the resulting atom list is memoized. The caller must not
// modify the returned slice.
func (ix *CandidateIndex) Candidates(l LiteralScheme, typ InstType, patternIdx int) []relation.Atom {
	if !l.PredVar {
		return []relation.Atom{l.Atom()}
	}
	key := fmt.Sprintf("%d|%d|%s", typ, patternIdx, l.Key())
	ix.mu.RLock()
	out, ok := ix.memo[key]
	ix.mu.RUnlock()
	if ok {
		return out
	}

	k := len(l.Args)
	var names []string
	switch typ {
	case Type0, Type1:
		names = ix.byArity[k]
	default: // Type2: any arity >= k
		for a := k; a <= ix.maxArity; a++ {
			names = append(names, ix.byArity[a]...)
		}
		sort.Strings(names)
	}
	out = candidatesOver(ix.db, l, typ, patternIdx, names)

	ix.mu.Lock()
	if prev, ok := ix.memo[key]; ok {
		out = prev // another goroutine won the race; keep one canonical slice
	} else {
		ix.memo[key] = out
	}
	ix.mu.Unlock()
	return out
}
