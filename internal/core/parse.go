package core

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a metaquery from the paper's textual syntax, e.g.
//
//	R(X,Z) <- P(X,Y), Q(Y,Z)
//
// Conventions:
//
//   - an identifier in predicate position starting with an upper-case letter
//     is a predicate variable; starting with a lower-case letter or a digit
//     it is a relation name;
//   - a double-quoted predicate ("UsCa") is always a relation name, which is
//     how upper-case relation names like those of Figure 1 are written;
//   - an argument starting with an upper-case letter or '_' is an ordinary
//     variable; starting with a lower-case letter or a digit it is a
//     constant (john, 3); a double-quoted argument is a constant with an
//     arbitrary name, provided the bare name would not read as a variable;
//     the mute variable "_" denotes a fresh variable distinct at each
//     occurrence;
//   - "<-" and ":-" both separate head from body; body literals are
//     comma-separated;
//   - primes are allowed in identifiers (P', X'1).
func Parse(input string) (*Metaquery, error) {
	p := &parser{src: input}
	mq, err := p.parseMetaquery()
	if err != nil {
		return nil, fmt.Errorf("core: parsing %q: %w", input, err)
	}
	return mq, nil
}

// MustParse is Parse panicking on error, for tests and examples.
func MustParse(input string) *Metaquery {
	mq, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return mq
}

type parser struct {
	src  string
	pos  int
	mute int // counter for mute "_" variables
}

func (p *parser) parseMetaquery() (*Metaquery, error) {
	head, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eat("<-") && !p.eat(":-") {
		return nil, fmt.Errorf("expected '<-' at offset %d", p.pos)
	}
	var body []LiteralScheme
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		p.skipSpace()
		if !p.eat(",") {
			break
		}
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("unexpected trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return NewMetaquery(head, body...)
}

func (p *parser) parseLiteral() (LiteralScheme, error) {
	p.skipSpace()
	var pred string
	var predVar bool
	if p.peek() == '"' {
		s, err := p.parseQuoted()
		if err != nil {
			return LiteralScheme{}, err
		}
		pred, predVar = s, false
	} else {
		id, err := p.parseIdent()
		if err != nil {
			return LiteralScheme{}, err
		}
		pred = id
		predVar = startsUpper(id)
	}
	p.skipSpace()
	if !p.eat("(") {
		return LiteralScheme{}, fmt.Errorf("expected '(' after %q at offset %d", pred, p.pos)
	}
	var args []string
	p.skipSpace()
	if !p.eat(")") {
		for {
			p.skipSpace()
			var arg string
			if p.peek() == '"' {
				// Quoted constant: any name, as long as it still classifies
				// as a constant (the in-memory representation distinguishes
				// constants from variables by name alone).
				s, err := p.parseQuoted()
				if err != nil {
					return LiteralScheme{}, err
				}
				if !IsConstName(s) {
					return LiteralScheme{}, fmt.Errorf("quoted constant %q of %s would read as a variable (upper-case or '_' initial)", s, pred)
				}
				arg = s
			} else {
				id, err := p.parseIdent()
				if err != nil {
					return LiteralScheme{}, err
				}
				if id == "_" {
					// The mute variable: fresh at each occurrence.
					// ('_'-initial identifiers are ordinary variables too: the
					// String renderer emits materialized mute variables (_m1)
					// verbatim, and they must parse back to themselves.)
					id = p.freshMute()
				}
				arg = id
			}
			args = append(args, arg)
			p.skipSpace()
			if p.eat(")") {
				break
			}
			if !p.eat(",") {
				return LiteralScheme{}, fmt.Errorf("expected ',' or ')' at offset %d", p.pos)
			}
		}
	}
	return LiteralScheme{Pred: pred, PredVar: predVar, Args: args}, nil
}

func (p *parser) parseQuoted() (string, error) {
	if p.peek() != '"' {
		return "", fmt.Errorf("expected '\"' at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '"' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated quoted name starting at offset %d", start-1)
	}
	s := p.src[start:p.pos]
	p.pos++
	if s == "" {
		return "", fmt.Errorf("empty quoted name at offset %d", start-1)
	}
	return s, nil
}

func (p *parser) parseIdent() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isIdentRune(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

// freshMute materializes one "_" occurrence as a fresh variable. Because
// '_'-initial identifiers are themselves legal ordinary variables (String
// renders materialized mutes verbatim and they must reparse), the counter
// skips any _m<N> name the user wrote explicitly anywhere in the input —
// otherwise a mute could silently alias an explicit variable.
func (p *parser) freshMute() string {
	for {
		p.mute++
		name := fmt.Sprintf("_m%d", p.mute)
		if !identOccursIn(p.src, name) {
			return name
		}
	}
}

// identOccursIn reports whether name occurs in src as a complete
// identifier token (not as a prefix of a longer identifier).
func identOccursIn(src, name string) bool {
	for from := 0; ; {
		i := strings.Index(src[from:], name)
		if i < 0 {
			return false
		}
		i += from
		end := i + len(name)
		beforeOK := i == 0 || !isIdentRune(rune(src[i-1]))
		afterOK := end == len(src) || !isIdentRune(rune(src[end]))
		if beforeOK && afterOK {
			return true
		}
		from = i + 1
	}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

func startsUpper(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) eat(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}
