package core

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	mq, err := Parse("R(X,Z) <- P(X,Y), Q(Y,Z)")
	if err != nil {
		t.Fatal(err)
	}
	if !mq.Head.PredVar || mq.Head.Pred != "R" {
		t.Errorf("head = %+v", mq.Head)
	}
	if len(mq.Body) != 2 {
		t.Fatalf("body len = %d", len(mq.Body))
	}
	if mq.Body[0].Pred != "P" || mq.Body[1].Pred != "Q" {
		t.Errorf("body preds = %v", mq.Body)
	}
	if got := mq.String(); got != "R(X,Z) <- P(X,Y), Q(Y,Z)" {
		t.Errorf("String = %q", got)
	}
}

func TestParseRelationAtoms(t *testing.T) {
	mq, err := Parse("speaks(X,Z) <- citizen(X,Y), language(Y,Z)")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range mq.LiteralSchemes() {
		if l.PredVar {
			t.Errorf("%s parsed as predicate variable", l)
		}
	}
}

func TestParseQuotedRelation(t *testing.T) {
	mq, err := Parse(`"UsPT"(X,Z) <- "UsCa"(X,Y), "CaTe"(Y,Z)`)
	if err != nil {
		t.Fatal(err)
	}
	if mq.Head.PredVar {
		t.Error("quoted head parsed as predicate variable")
	}
	if mq.Head.Pred != "UsPT" {
		t.Errorf("head pred = %q", mq.Head.Pred)
	}
}

func TestParseMixed(t *testing.T) {
	mq, err := Parse("N(X1,X2) <- N(X1,X2), e(X1,X2)")
	if err != nil {
		t.Fatal(err)
	}
	if !mq.Head.PredVar {
		t.Error("N not a predicate variable")
	}
	if mq.Body[1].PredVar {
		t.Error("e parsed as predicate variable")
	}
}

func TestParseMuteVariables(t *testing.T) {
	mq, err := Parse("P(X,_) <- P(X,_), Q(_,X)")
	if err != nil {
		t.Fatal(err)
	}
	// Every "_" must be a distinct fresh variable.
	seen := map[string]int{}
	for _, l := range mq.LiteralSchemes() {
		for _, a := range l.Args {
			seen[a]++
		}
	}
	muteCount := 0
	for v := range seen {
		if strings.HasPrefix(v, "_m") {
			muteCount++
			if seen[v] != 1 {
				t.Errorf("mute variable %q occurs %d times", v, seen[v])
			}
		}
	}
	if muteCount != 3 {
		t.Errorf("%d mute variables, want 3", muteCount)
	}
	// Head and first body literal must now be *different* schemes.
	if len(mq.LiteralSchemes()) != 3 {
		t.Errorf("schemes = %v", mq.LiteralSchemes())
	}
}

func TestParsePrimedIdentifiers(t *testing.T) {
	mq, err := Parse("X'1(X2,Y) <- X'1(X2,Y), X'2(Y,X2)")
	if err != nil {
		t.Fatal(err)
	}
	if mq.Head.Pred != "X'1" || !mq.Head.PredVar {
		t.Errorf("head = %+v", mq.Head)
	}
}

func TestParseColonDash(t *testing.T) {
	if _, err := Parse("R(X) :- P(X)"); err != nil {
		t.Errorf(":- rejected: %v", err)
	}
}

func TestParseZeroArity(t *testing.T) {
	mq, err := Parse("R() <- p()")
	if err != nil {
		t.Fatal(err)
	}
	if mq.Head.Arity() != 0 || mq.Body[0].Arity() != 0 {
		t.Error("zero arity mishandled")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R(X)",                  // no body
		"R(X) <-",               // empty body
		"R(X <- P(X)",           // missing paren
		"R(X) <- P(X) Q(X)",     // missing comma
		`R(X) <- p(X,"Y")`,      // quoted constant that reads as a variable
		"R(X) <- P(X),",         // trailing comma
		"R(X) <- P(X) trailing", // trailing junk
		`R(X) <- "p(X)`,         // unterminated quote
		"R(_f1_0) <- P(X)",      // reserved fresh prefix
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// Constants in argument positions: lower-case or digit-initial identifiers
// and quoted names parse as constants, are excluded from varo, and
// round-trip through String.
func TestParseConstants(t *testing.T) {
	mq, err := Parse(`R(X,Z) <- P(X,john), q(Y,3), s(Z,"two words")`)
	if err != nil {
		t.Fatal(err)
	}
	if got := mq.Body[0].Vars(); len(got) != 1 || got[0] != "X" {
		t.Errorf("varo(P(X,john)) = %v, want [X]", got)
	}
	if !IsConstName("john") || !IsConstName("3") || !IsConstName("two words") {
		t.Error("constant names misclassified")
	}
	if IsConstName("X") || IsConstName("_m1") || IsConstName("") {
		t.Error("variable names classified as constants")
	}
	if got := mq.OrdinaryVars(); len(got) != 3 {
		t.Errorf("OrdinaryVars = %v, want [X Z Y]", got)
	}
	back, err := Parse(mq.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", mq.String(), err)
	}
	if back.String() != mq.String() {
		t.Errorf("round-trip %q != %q", back.String(), mq.String())
	}
	// The constant becomes a named-constant term of the materialized atom.
	atom := mq.Body[1].Atom()
	if atom.Terms[1].IsVar() || atom.Terms[1].ConstName != "3" {
		t.Errorf("constant term not preserved: %+v", atom.Terms[1])
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("bogus")
}

func TestParseWhitespaceTolerant(t *testing.T) {
	mq, err := Parse("  R( X , Z )\n\t<-  P(X,Y) ,\n Q(Y,Z)  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(mq.Body) != 2 {
		t.Errorf("body = %v", mq.Body)
	}
}
