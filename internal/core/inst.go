package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mqgo/metaquery/internal/relation"
)

// InstType selects one of the paper's three instantiation semantics
// (Definitions 2.2-2.4).
type InstType int

const (
	// Type0 matches each relation pattern to a relation of the same arity,
	// leaving the argument list untouched (Definition 2.2).
	Type0 InstType = iota
	// Type1 additionally allows the matched atom's arguments to be any
	// permutation of the pattern's arguments (Definition 2.3).
	Type1
	// Type2 allows matching into a relation of larger arity: the pattern's k
	// arguments appear at k distinct positions, and the remaining positions
	// are padded with fresh variables occurring nowhere else in the
	// instantiated rule (Definition 2.4).
	Type2
)

// String returns "type-0", "type-1" or "type-2".
func (t InstType) String() string {
	switch t {
	case Type0:
		return "type-0"
	case Type1:
		return "type-1"
	case Type2:
		return "type-2"
	default:
		return fmt.Sprintf("type-%d", int(t))
	}
}

// freshPrefix is the reserved namespace for type-2 padding variables. The
// parser and Check reject user variables in this namespace, guaranteeing
// padding variables occur nowhere else in the instantiated rule.
const freshPrefix = "_f"

// freshVar names the padding variable for position pos of the pattern with
// the given index in rep(MQ). Keyed naming makes enumeration canonical: two
// instantiations are equal iff their assignments are.
func freshVar(patternIdx, pos int) string {
	return fmt.Sprintf("%s%d_%d", freshPrefix, patternIdx, pos)
}

// Instantiation is a mapping σ from the relation patterns of a metaquery to
// atoms over database relations whose restriction to predicate variables is
// functional (Definition 2.1). Ordinary (non-pattern) literal schemes are
// untouched by σ.
type Instantiation struct {
	// assign maps LiteralScheme.Key() of each relation pattern to its atom.
	assign map[string]relation.Atom
	// relOf maps each predicate variable to its relation name (σ').
	relOf map[string]string
}

// NewInstantiation returns an empty instantiation.
func NewInstantiation() *Instantiation {
	return &Instantiation{
		assign: make(map[string]relation.Atom),
		relOf:  make(map[string]string),
	}
}

// Clone returns an independent copy of σ.
func (s *Instantiation) Clone() *Instantiation {
	c := NewInstantiation()
	for k, v := range s.assign {
		c.assign[k] = v
	}
	for k, v := range s.relOf {
		c.relOf[k] = v
	}
	return c
}

// Assign records that pattern l maps to atom a. It returns an error if l is
// already assigned to a different atom or if the assignment would make the
// predicate-variable restriction non-functional.
func (s *Instantiation) Assign(l LiteralScheme, a relation.Atom) error {
	if !l.PredVar {
		return fmt.Errorf("core: assigning to non-pattern scheme %s", l)
	}
	key := l.Key()
	if prev, ok := s.assign[key]; ok {
		if prev.String() != a.String() {
			return fmt.Errorf("core: pattern %s already assigned to %s", l, prev)
		}
		return nil
	}
	if rel, ok := s.relOf[l.Pred]; ok && rel != a.Pred {
		return fmt.Errorf("core: predicate variable %s already mapped to %s, cannot map to %s", l.Pred, rel, a.Pred)
	}
	s.assign[key] = a
	s.relOf[l.Pred] = a.Pred
	return nil
}

// Unassign removes the assignment for pattern l, restoring σ'
// bookkeeping: the predicate variable's relation binding is dropped when no
// other assigned pattern uses that predicate variable.
func (s *Instantiation) Unassign(l LiteralScheme) {
	key := l.Key()
	if _, ok := s.assign[key]; !ok {
		return
	}
	delete(s.assign, key)
	// Drop the σ' binding unless another assigned pattern shares the
	// predicate variable. Pattern keys encode "?Pred(args)".
	prefix := "?" + l.Pred + "("
	for k := range s.assign {
		if strings.HasPrefix(k, prefix) {
			return
		}
	}
	delete(s.relOf, l.Pred)
}

// AtomFor returns the atom assigned to pattern l, if any.
func (s *Instantiation) AtomFor(l LiteralScheme) (relation.Atom, bool) {
	a, ok := s.assign[l.Key()]
	return a, ok
}

// RelationOf returns σ'(q): the relation assigned to predicate variable q.
func (s *Instantiation) RelationOf(q string) (string, bool) {
	r, ok := s.relOf[q]
	return r, ok
}

// Len returns the number of assigned patterns.
func (s *Instantiation) Len() int { return len(s.assign) }

// Agrees reports whether s and t agree in the sense of Definition 4.13:
// they assign the same atoms to shared patterns and the same relations to
// shared predicate variables.
func (s *Instantiation) Agrees(t *Instantiation) bool {
	for k, a := range s.assign {
		if b, ok := t.assign[k]; ok && b.String() != a.String() {
			return false
		}
	}
	for q, r := range s.relOf {
		if r2, ok := t.relOf[q]; ok && r2 != r {
			return false
		}
	}
	return true
}

// Compose returns σ ∘ µ for agreeing instantiations, or an error.
func (s *Instantiation) Compose(t *Instantiation) (*Instantiation, error) {
	if !s.Agrees(t) {
		return nil, fmt.Errorf("core: composing non-agreeing instantiations")
	}
	c := s.Clone()
	for k, a := range t.assign {
		c.assign[k] = a
	}
	for q, r := range t.relOf {
		c.relOf[q] = r
	}
	return c, nil
}

// applyScheme maps one literal scheme through σ. Non-pattern schemes pass
// through unchanged.
func (s *Instantiation) applyScheme(l LiteralScheme) (relation.Atom, error) {
	if !l.PredVar {
		return l.Atom(), nil
	}
	a, ok := s.assign[l.Key()]
	if !ok {
		return relation.Atom{}, fmt.Errorf("core: pattern %s unassigned", l)
	}
	return a, nil
}

// Apply produces the Horn rule σ(MQ). Every relation pattern of MQ must be
// assigned.
func (s *Instantiation) Apply(mq *Metaquery) (Rule, error) {
	head, err := s.applyScheme(mq.Head)
	if err != nil {
		return Rule{}, err
	}
	body := make([]relation.Atom, 0, len(mq.Body))
	for _, l := range mq.Body {
		a, err := s.applyScheme(l)
		if err != nil {
			return Rule{}, err
		}
		body = append(body, a)
	}
	return Rule{Head: head, Body: body}, nil
}

// String renders σ as a sorted list of pattern->atom bindings.
func (s *Instantiation) String() string {
	keys := make([]string, 0, len(s.assign))
	for k := range s.assign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		a := s.assign[k]
		parts[i] = fmt.Sprintf("%s -> %s", strings.TrimPrefix(k, "?"), a.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Key returns a canonical identity for σ, used to deduplicate
// instantiations during enumeration.
func (s *Instantiation) Key() string {
	keys := make([]string, 0, len(s.assign))
	for k := range s.assign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("=>")
		b.WriteString(s.assign[k].String())
		b.WriteByte(';')
	}
	return b.String()
}
