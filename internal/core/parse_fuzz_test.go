package core

import (
	"testing"
)

// Materialized mute variables must never alias an explicit variable: the
// fresh-name counter skips _m<N> identifiers the input already uses as
// complete tokens (but not as prefixes of longer identifiers).
func TestMuteVariablesNeverAliasExplicit(t *testing.T) {
	mq, err := Parse("R(X) <- p(_m1,X), q(_,X)")
	if err != nil {
		t.Fatal(err)
	}
	if got := mq.Body[1].Args[0]; got == "_m1" {
		t.Fatalf("mute in q materialized as %q, aliasing the explicit _m1 in p", got)
	}
	// A longer identifier sharing the prefix does not block the short name.
	mq, err = Parse("R(X) <- p(_m12,X), q(_,X)")
	if err != nil {
		t.Fatal(err)
	}
	if got := mq.Body[1].Args[0]; got != "_m1" {
		t.Errorf("mute materialized as %q, want _m1 (only whole-token collisions skip)", got)
	}
}

// FuzzParse asserts the two parser robustness properties the repro corpus
// pins down: Parse never panics on arbitrary input, and accepted inputs
// reach a print/parse fixpoint — Parse(mq.String()) succeeds and renders
// identically, so textual metaqueries are a faithful interchange format
// (scenario repro files, cmd/metaquery -mq flags, corpus entries).
//
// Run with: go test -fuzz=FuzzParse ./internal/core
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R(X,Z) <- P(X,Y), Q(Y,Z)",
		`"UsPT"(X,Z) <- "UsCa"(X,Y), "CaTe"(Y,Z)`,
		"P(X,_) <- P(X,_), Q(_,X)",
		"R(X) :- p(X), q(X,X)",
		"N(X1,X2) <- N(X1,X2), e(X1,X2)",
		"R(X',Y) <- P'(X',Y)",
		`"q r"(X) <- "1 2 3"(X,Y)`,
		"R() <- p()",
		"R(X)<-p(X),q(X)",
		"R(X, Y) <-\n\tp(X,\tY)",
		"R(X) <- ",
		"<- p(X)",
		"R(X",
		`"unterminated(X) <- p(X)`,
		"R(x) <- p(X)",
		"R(_f1_0) <- p(X)",
		"R(X) <- p(_m1,X), q(_,X)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		mq, err := Parse(input)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		text := mq.String()
		mq2, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q) accepted, but its rendering %q does not reparse: %v", input, text, err)
		}
		if text2 := mq2.String(); text2 != text {
			t.Fatalf("print/parse not a fixpoint for %q: %q reparsed to %q", input, text, text2)
		}
		// The reparse must preserve structure, not just text: same literal
		// scheme set and pattern/atom split.
		ls1, ls2 := mq.LiteralSchemes(), mq2.LiteralSchemes()
		if len(ls1) != len(ls2) {
			t.Fatalf("reparse of %q changed the scheme set size", input)
		}
		for i := range ls1 {
			if ls1[i].Key() != ls2[i].Key() {
				t.Fatalf("reparse of %q changed scheme %d: %q vs %q", input, i, ls1[i].Key(), ls2[i].Key())
			}
		}
	})
}
