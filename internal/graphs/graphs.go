// Package graphs implements the graph substrate for the paper's hardness
// reductions: undirected graphs, the 3-COLORING and HAMILTONIAN PATH
// problems (solved exactly by backtracking for reduction cross-checks), and
// generators for random and structured instances.
package graphs

import (
	"fmt"
	"math/rand"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph { return &Graph{N: n} }

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates are
// allowed in the input and normalized away.
func (g *Graph) AddEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return
		}
	}
	g.Edges = append(g.Edges, [2]int{u, v})
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e[0] == u && e[1] == v {
			return true
		}
	}
	return false
}

// Adjacency returns adjacency lists.
func (g *Graph) Adjacency() [][]int {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// Check validates vertex indexing.
func (g *Graph) Check() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("graphs: edge %v outside [0,%d)", e, g.N)
		}
	}
	return nil
}

// ThreeColorable decides 3-COLORING by backtracking and returns a valid
// coloring (values 0..2) when one exists. A self-loop makes the graph
// uncolorable.
func (g *Graph) ThreeColorable() ([]int, bool) {
	for _, e := range g.Edges {
		if e[0] == e[1] {
			return nil, false
		}
	}
	adj := g.Adjacency()
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			for _, u := range adj[v] {
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if rec(0) {
		return colors, true
	}
	return nil, false
}

// HamiltonianPath decides HAMILTONIAN PATH (a path visiting every vertex
// exactly once) by backtracking, returning a witness path.
func (g *Graph) HamiltonianPath() ([]int, bool) {
	if g.N == 0 {
		return nil, false
	}
	if g.N == 1 {
		return []int{0}, true
	}
	adj := g.Adjacency()
	visited := make([]bool, g.N)
	path := make([]int, 0, g.N)
	var rec func(v int) bool
	rec = func(v int) bool {
		visited[v] = true
		path = append(path, v)
		if len(path) == g.N {
			return true
		}
		for _, u := range adj[v] {
			if !visited[u] && rec(u) {
				return true
			}
		}
		visited[v] = false
		path = path[:len(path)-1]
		return false
	}
	for start := 0; start < g.N; start++ {
		if rec(start) {
			return path, true
		}
	}
	return nil, false
}

// Random returns an Erdős–Rényi graph G(n, p).
func Random(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the n-vertex path.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}
