package graphs

import (
	"math/rand"
	"testing"
)

func TestThreeColorableKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{Cycle(4), true}, // even cycle: 2-colorable
		{Cycle(5), true}, // odd cycle: 3-colorable
		{Complete(3), true},
		{Complete(4), false}, // K4 needs 4 colors
		{Path(6), true},
		{New(3), true}, // edgeless
	}
	for i, c := range cases {
		colors, got := c.g.ThreeColorable()
		if got != c.want {
			t.Errorf("case %d: 3-colorable = %v, want %v", i, got, c.want)
		}
		if got {
			for _, e := range c.g.Edges {
				if colors[e[0]] == colors[e[1]] {
					t.Errorf("case %d: invalid witness coloring", i)
				}
			}
		}
	}
}

func TestSelfLoopNotColorable(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if _, ok := g.ThreeColorable(); ok {
		t.Error("self-loop colorable")
	}
}

func TestHamiltonianPathKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{Path(5), true},
		{Cycle(6), true},
		{Complete(4), true},
		{New(3), false}, // edgeless with >1 vertex
	}
	for i, c := range cases {
		path, got := c.g.HamiltonianPath()
		if got != c.want {
			t.Errorf("case %d: ham path = %v, want %v", i, got, c.want)
		}
		if got {
			seen := map[int]bool{}
			for _, v := range path {
				if seen[v] {
					t.Errorf("case %d: repeated vertex", i)
				}
				seen[v] = true
			}
			if len(path) != c.g.N {
				t.Errorf("case %d: path length %d", i, len(path))
			}
			for j := 0; j+1 < len(path); j++ {
				if !c.g.HasEdge(path[j], path[j+1]) {
					t.Errorf("case %d: non-edge used", i)
				}
			}
		}
	}
}

func TestStarHasNoHamPath(t *testing.T) {
	// A star with 3 leaves has no Hamiltonian path.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if _, ok := g.HamiltonianPath(); ok {
		t.Error("star K1,3 has no Hamiltonian path")
	}
}

func TestAddEdgeNormalizes(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 1)
	g.AddEdge(1, 2)
	if len(g.Edges) != 1 {
		t.Errorf("duplicate edges stored: %v", g.Edges)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge not symmetric")
	}
}

func TestCheck(t *testing.T) {
	g := New(2)
	g.Edges = append(g.Edges, [2]int{0, 5})
	if err := g.Check(); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestRandomGraphBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Random(rng, 8, 0.5)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	max := 8 * 7 / 2
	if len(g.Edges) > max {
		t.Errorf("too many edges: %d", len(g.Edges))
	}
	empty := Random(rng, 8, 0)
	if len(empty.Edges) != 0 {
		t.Error("p=0 produced edges")
	}
	full := Random(rng, 8, 1)
	if len(full.Edges) != max {
		t.Errorf("p=1 produced %d edges, want %d", len(full.Edges), max)
	}
}
