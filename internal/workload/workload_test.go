package workload

import (
	"testing"

	"github.com/mqgo/metaquery/internal/hypertree"
)

func TestDB1Shape(t *testing.T) {
	db := DB1()
	if db.NumRelations() != 3 {
		t.Fatalf("DB1 has %d relations", db.NumRelations())
	}
	if db.Relation("UsCa").Len() != 3 || db.Relation("CaTe").Len() != 6 || db.Relation("UsPT").Len() != 3 {
		t.Error("DB1 cardinalities wrong")
	}
	ext := DB1Extended()
	if ext.Relation("UsPT").Arity() != 3 {
		t.Error("extended UsPT arity wrong")
	}
}

func TestRandomDeterministic(t *testing.T) {
	w := Random{Relations: 3, Arity: 2, Tuples: 20, Domain: 5, Seed: 42}
	a, b := w.Build(), w.Build()
	if a.Size() != b.Size() {
		t.Error("workload not deterministic")
	}
	for _, name := range a.RelationNames() {
		if b.Relation(name) == nil || a.Relation(name).Len() != b.Relation(name).Len() {
			t.Errorf("relation %s differs", name)
		}
	}
}

func TestChainMQShape(t *testing.T) {
	mq := ChainMQ(4)
	if len(mq.Body) != 4 {
		t.Errorf("body = %d", len(mq.Body))
	}
	// The head R(X0,Xm) closes a cycle in SH(MQ), but the body — which is
	// what findRules decomposes — is a width-1 chain.
	atoms := make([]hypertree.AtomSchema, len(mq.Body))
	for i, l := range mq.Body {
		atoms[i] = hypertree.AtomSchema{ID: i, Vars: l.Vars()}
	}
	if w := hypertree.Width(atoms); w != 1 {
		t.Errorf("chain body width = %d, want 1", w)
	}
}

func TestCycleMQWidth2(t *testing.T) {
	mq := CycleMQ(4)
	if mq.IsSemiAcyclic() {
		t.Error("cycle metaquery must not be semi-acyclic")
	}
	atoms := make([]hypertree.AtomSchema, len(mq.Body))
	for i, l := range mq.Body {
		atoms[i] = hypertree.AtomSchema{ID: i, Vars: l.Vars()}
	}
	if w := hypertree.Width(atoms); w != 2 {
		t.Errorf("cycle body width = %d, want 2", w)
	}
}

func TestStarMQSemiAcyclic(t *testing.T) {
	if !StarMQ(5).IsSemiAcyclic() {
		t.Error("star metaquery must be semi-acyclic")
	}
}

func TestWidthWorkloadWidths(t *testing.T) {
	for c := 1; c <= 3; c++ {
		_, rule := WidthWorkload(c, 10, 5, 1)
		atoms := make([]hypertree.AtomSchema, len(rule.Body))
		for i, a := range rule.Body {
			atoms[i] = hypertree.AtomSchema{ID: i, Vars: a.Vars()}
		}
		if w := hypertree.Width(atoms); w != c {
			t.Errorf("WidthWorkload(%d) body width = %d", c, w)
		}
	}
}

func TestChainDBLayered(t *testing.T) {
	db := ChainDB(3, 4, 10, 7)
	if db.NumRelations() != 3 {
		t.Errorf("ChainDB relations = %d", db.NumRelations())
	}
	for _, name := range db.RelationNames() {
		if db.Relation(name).Len() == 0 {
			t.Errorf("relation %s empty", name)
		}
	}
}

func TestCliqueMQPatternCount(t *testing.T) {
	mq := CliqueMQ(4)
	if len(mq.Body) != 6 {
		t.Errorf("K4 clique body = %d patterns", len(mq.Body))
	}
}
