// Package workload provides the databases and metaqueries used by the
// examples, experiments and benchmarks: the paper's Figure 1/2 database
// DB1, random databases, and structured scaling workloads (chains, stars,
// cycles) whose bodies have known hypertree widths.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/relation"
)

// DB1 builds the Figure 1 database: relations UsCa(User, Carrier),
// CaTe(Carrier, Technology) and UsPT(User, PhoneType).
func DB1() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("UsCa", "John K.", "Omnitel")
	db.MustInsertNamed("UsCa", "John K.", "Tim")
	db.MustInsertNamed("UsCa", "Anastasia A.", "Omnitel")
	db.MustInsertNamed("CaTe", "Tim", "ETACS")
	db.MustInsertNamed("CaTe", "Tim", "GSM 900")
	db.MustInsertNamed("CaTe", "Tim", "GSM 1800")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 900")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 1800")
	db.MustInsertNamed("CaTe", "Wind", "GSM 1800")
	db.MustInsertNamed("UsPT", "John K.", "GSM 900")
	db.MustInsertNamed("UsPT", "John K.", "GSM 1800")
	db.MustInsertNamed("UsPT", "Anastasia A.", "GSM 900")
	return db
}

// DB1Extended builds the Figure 2 variant: UsPT gains a Model column.
func DB1Extended() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("UsCa", "John K.", "Omnitel")
	db.MustInsertNamed("UsCa", "John K.", "Tim")
	db.MustInsertNamed("UsCa", "Anastasia A.", "Omnitel")
	db.MustInsertNamed("CaTe", "Tim", "ETACS")
	db.MustInsertNamed("CaTe", "Tim", "GSM 900")
	db.MustInsertNamed("CaTe", "Tim", "GSM 1800")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 900")
	db.MustInsertNamed("CaTe", "Omnitel", "GSM 1800")
	db.MustInsertNamed("CaTe", "Wind", "GSM 1800")
	db.MustInsertNamed("UsPT", "John K.", "GSM 900", "Nokia 6150")
	db.MustInsertNamed("UsPT", "John K.", "GSM 1800", "Nokia 6150")
	db.MustInsertNamed("UsPT", "Anastasia A.", "GSM 900", "Bosch 607")
	return db
}

// MQ4 returns the paper's running metaquery (4): R(X,Z) <- P(X,Y), Q(Y,Z).
func MQ4() *core.Metaquery { return core.MustParse("R(X,Z) <- P(X,Y), Q(Y,Z)") }

// Random describes a synthetic database workload.
type Random struct {
	Relations int // number of relations
	Arity     int // arity of every relation
	Tuples    int // tuples per relation
	Domain    int // active-domain size
	Seed      int64
}

// Build materializes the workload deterministically from its seed.
// Relations are named r0, r1, ...; constants are d0, d1, ....
func (w Random) Build() *relation.Database {
	rng := rand.New(rand.NewSource(w.Seed))
	db := relation.NewDatabase()
	for r := 0; r < w.Relations; r++ {
		name := fmt.Sprintf("r%d", r)
		db.MustAddRelation(name, w.Arity)
		for i := 0; i < w.Tuples; i++ {
			row := make([]string, w.Arity)
			for j := range row {
				row[j] = fmt.Sprintf("d%d", rng.Intn(w.Domain))
			}
			db.MustInsertNamed(name, row...)
		}
	}
	return db
}

// ChainDB builds a layered database where relation r_i connects layer i to
// layer i+1; chains of joins through it stay selective. Each layer has
// `width` constants and each relation `tuples` random edges between
// adjacent layers.
func ChainDB(layers, width, tuples int, seed int64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	for l := 0; l < layers; l++ {
		name := fmt.Sprintf("r%d", l)
		db.MustAddRelation(name, 2)
		for i := 0; i < tuples; i++ {
			a := fmt.Sprintf("n%d_%d", l, rng.Intn(width))
			b := fmt.Sprintf("n%d_%d", l+1, rng.Intn(width))
			db.MustInsertNamed(name, a, b)
		}
	}
	return db
}

// ChainMQ returns the width-1 (semi-acyclic) chain metaquery
// R(X0,Xm) <- P0(X0,X1), ..., Pm-1(Xm-1,Xm) with m body patterns.
func ChainMQ(m int) *core.Metaquery {
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i), v(i), v(i+1))
	}
	mq, err := core.NewMetaquery(core.Pattern("R", v(0), v(m)), body...)
	if err != nil {
		panic(err)
	}
	return mq
}

// CycleMQ returns the cyclic metaquery whose body is an m-cycle of binary
// patterns: P0(X0,X1), ..., Pm-1(Xm-1,X0). For m >= 3 its body has
// hypertree width 2.
func CycleMQ(m int) *core.Metaquery {
	v := func(i int) string { return fmt.Sprintf("X%d", i%m) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i), v(i), v(i+1))
	}
	mq, err := core.NewMetaquery(core.Pattern("R", v(0), v(1)), body...)
	if err != nil {
		panic(err)
	}
	return mq
}

// CliqueMQ returns a metaquery whose body is the complete graph on m
// variables (one binary pattern per variable pair); its hypertree width
// grows with m, exercising wide decompositions.
func CliqueMQ(m int) *core.Metaquery {
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	var body []core.LiteralScheme
	idx := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			body = append(body, core.Pattern(fmt.Sprintf("P%d", idx), v(i), v(j)))
			idx++
		}
	}
	mq, err := core.NewMetaquery(core.Pattern("R", v(0), v(1)), body...)
	if err != nil {
		panic(err)
	}
	return mq
}

// StarMQ returns the semi-acyclic star metaquery
// R(X0) <- P0(X0,X1), P1(X0,X2), ..., Pm-1(X0,Xm).
func StarMQ(m int) *core.Metaquery {
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	body := make([]core.LiteralScheme, m)
	for i := 0; i < m; i++ {
		body[i] = core.Pattern(fmt.Sprintf("P%d", i), v(0), v(i+1))
	}
	mq, err := core.NewMetaquery(core.Pattern("R", v(0)), body...)
	if err != nil {
		panic(err)
	}
	return mq
}

// WidthWorkload builds a database and rule body of the given hypertree
// width c for the Theorem 4.12 scaling experiment: the body is a chain of
// c-cliques; the database has one binary relation e with `tuples` edges
// over `domain` constants.
//
// Width 1 uses a 2-atom chain; width 2 a triangle; width 3 a 4-clique
// (whose hypertree width is 3 by the known bound hw(K_n clique query) =
// ceil(n/2) for n = 6... for small bodies we simply pick bodies whose
// Decompose width is validated by the tests).
func WidthWorkload(c int, tuples, domain int, seed int64) (*relation.Database, core.Rule) {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	db.MustAddRelation("e", 2)
	for i := 0; i < tuples; i++ {
		db.MustInsertNamed("e",
			fmt.Sprintf("d%d", rng.Intn(domain)),
			fmt.Sprintf("d%d", rng.Intn(domain)))
	}
	v := func(i int) string { return fmt.Sprintf("X%d", i) }
	var body []relation.Atom
	switch c {
	case 1:
		body = []relation.Atom{
			relation.NewAtom("e", v(0), v(1)),
			relation.NewAtom("e", v(1), v(2)),
		}
	case 2:
		body = []relation.Atom{
			relation.NewAtom("e", v(0), v(1)),
			relation.NewAtom("e", v(1), v(2)),
			relation.NewAtom("e", v(2), v(0)),
		}
	default:
		// c >= 3: complete graph on 2c vertices has hypertree width c.
		n := 2 * c
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				body = append(body, relation.NewAtom("e", v(i), v(j)))
			}
		}
	}
	head := relation.NewAtom("e", v(0), v(1))
	return db, core.Rule{Head: head, Body: body}
}
