package cq

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/relation"
)

func chainDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustInsertNamed("p", "1", "2")
	db.MustInsertNamed("p", "2", "3")
	db.MustInsertNamed("q", "2", "4")
	db.MustInsertNamed("q", "3", "5")
	return db
}

func TestSatisfiable(t *testing.T) {
	db := chainDB()
	yes, err := Satisfiable(db, Query{relation.NewAtom("p", "X", "Y"), relation.NewAtom("q", "Y", "Z")})
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("satisfiable chain reported unsatisfiable")
	}
	no, err := Satisfiable(db, Query{relation.NewAtom("q", "X", "Y"), relation.NewAtom("p", "Y", "Z")})
	if err != nil {
		t.Fatal(err)
	}
	if no {
		t.Error("unsatisfiable chain reported satisfiable")
	}
}

func TestCount(t *testing.T) {
	db := chainDB()
	n, err := Count(db, Query{relation.NewAtom("p", "X", "Y"), relation.NewAtom("q", "Y", "Z")})
	if err != nil {
		t.Fatal(err)
	}
	// (1,2,4) and (2,3,5).
	if n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
}

func TestCountNoVariables(t *testing.T) {
	db := chainDB()
	v1, _ := db.Dict().Lookup("1")
	v2, _ := db.Dict().Lookup("2")
	v9 := db.Dict().Intern("9")
	hit := Query{{Pred: "p", Terms: []relation.Term{relation.C(v1), relation.C(v2)}}}
	n, err := Count(db, hit)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("ground satisfied count = %d, want 1", n)
	}
	miss := Query{{Pred: "p", Terms: []relation.Term{relation.C(v1), relation.C(v9)}}}
	n, err = Count(db, miss)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("ground unsatisfied count = %d, want 0", n)
	}
}

func TestEvaluateProjection(t *testing.T) {
	db := chainDB()
	out, err := Evaluate(db, Query{relation.NewAtom("p", "X", "Y"), relation.NewAtom("q", "Y", "Z")}, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("projected answers = %d", out.Len())
	}
}

func TestIsAcyclic(t *testing.T) {
	chain := Query{relation.NewAtom("p", "X", "Y"), relation.NewAtom("q", "Y", "Z")}
	if !IsAcyclic(chain) {
		t.Error("chain CQ not acyclic")
	}
	triangle := Query{
		relation.NewAtom("p", "X", "Y"),
		relation.NewAtom("p", "Y", "Z"),
		relation.NewAtom("p", "Z", "X"),
	}
	if IsAcyclic(triangle) {
		t.Error("triangle CQ acyclic")
	}
}

// SatisfiableAcyclic must agree with the materializing evaluator on random
// acyclic and cyclic queries.
func TestSatisfiableAcyclicAgrees(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		for r := 0; r < 2; r++ {
			name := string(rune('p' + r))
			db.MustAddRelation(name, 2)
			for i := 0; i < rng.Intn(8); i++ {
				db.MustInsertNamed(name, string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
			}
		}
		vars := []string{"X", "Y", "Z", "W"}
		var q Query
		for i := 0; i < 1+rng.Intn(3); i++ {
			q = append(q, relation.NewAtom(string(rune('p'+rng.Intn(2))),
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))]))
		}
		want, err := Satisfiable(db, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SatisfiableAcyclic(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: acyclic evaluation = %v, materializing = %v for %v", seed, got, want, q)
		}
	}
}

func TestVars(t *testing.T) {
	q := Query{relation.NewAtom("p", "X", "Y"), relation.NewAtom("q", "Y", "Z")}
	vs := q.Vars()
	want := []string{"X", "Y", "Z"}
	if len(vs) != len(want) {
		t.Fatalf("Vars = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vs, want)
		}
	}
}
