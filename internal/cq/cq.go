// Package cq implements conjunctive queries over databases: the Boolean
// Conjunctive Query satisfaction problem BCQ (Definition 3.2), query
// evaluation, and the counting problem #BCQ (Proposition 3.26). It also
// exposes the acyclicity test for conjunctive queries used by the LOGCFL
// membership reduction of Theorem 3.32.
package cq

import (
	"github.com/mqgo/metaquery/internal/hypergraph"
	"github.com/mqgo/metaquery/internal/relation"
)

// Query is a conjunctive query: a set of atoms whose terms are variables
// and/or constants.
type Query []relation.Atom

// Vars returns the distinct variables of the query in first-occurrence
// order.
func (q Query) Vars() []string { return relation.AtomsVars(q) }

// Satisfiable solves BCQ: does a substitution ρ for the query's variables
// exist such that every ρ(atom) is in db?
func Satisfiable(db *relation.Database, q Query) (bool, error) {
	j, err := relation.JoinAtoms(db, q)
	if err != nil {
		return false, err
	}
	return !j.Empty(), nil
}

// Count solves #BCQ: the number of substitutions ρ for the query's
// variables such that every ρ(atom) is in db. Equivalently |J(q)| over
// att(q). A query with no variables counts 1 if satisfied and 0 otherwise.
func Count(db *relation.Database, q Query) (int, error) {
	j, err := relation.JoinAtoms(db, q)
	if err != nil {
		return 0, err
	}
	return j.Len(), nil
}

// Evaluate returns the satisfying assignments projected onto outVars.
func Evaluate(db *relation.Database, q Query, outVars []string) (*relation.Table, error) {
	j, err := relation.JoinAtoms(db, q)
	if err != nil {
		return nil, err
	}
	return j.Project(outVars), nil
}

// Hypergraph returns the query hypergraph: one edge per atom over the
// atom's variables (constants are ignored).
func Hypergraph(q Query) *hypergraph.Hypergraph {
	h := &hypergraph.Hypergraph{}
	for i, a := range q {
		h.Edges = append(h.Edges, hypergraph.Edge{ID: i, Vertices: a.Vars()})
	}
	return h
}

// IsAcyclic reports whether the conjunctive query is acyclic in the sense
// of [7] (GYO reduction empties the query hypergraph).
func IsAcyclic(q Query) bool { return hypergraph.IsAcyclic(Hypergraph(q)) }

// SatisfiableAcyclic solves BCQ for acyclic queries by the semijoin
// full-reducer program (the polynomial algorithm underlying Theorem 3.32's
// LOGCFL membership): it never materializes the full join. It returns an
// error if the query is cyclic.
func SatisfiableAcyclic(db *relation.Database, q Query) (bool, error) {
	h := Hypergraph(q)
	first, _, ok := hypergraph.FullReducer(h)
	if !ok {
		return Satisfiable(db, q) // fall back for cyclic queries
	}
	tables := make([]*relation.Table, len(q))
	for i, a := range q {
		t, err := relation.FromAtom(db, a)
		if err != nil {
			return false, err
		}
		tables[i] = t
	}
	// Only the first (bottom-up) half is needed for satisfiability: after
	// it, the roots are non-empty iff the query is satisfiable.
	for _, s := range first {
		tables[s.Target] = tables[s.Target].Semijoin(tables[s.Source])
	}
	// Locate roots: edges never appearing as a Source-after... simpler:
	// every table must be non-empty is not sufficient for disconnected
	// queries; but after the first half each component's root is reduced,
	// and a component is satisfiable iff its root is non-empty. An empty
	// table anywhere implies its component root becomes empty too; checking
	// all tables non-empty after the first half is therefore equivalent.
	for _, t := range tables {
		if t.Empty() {
			return false, nil
		}
	}
	return true, nil
}
