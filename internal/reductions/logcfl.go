package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/cq"
	"github.com/mqgo/metaquery/internal/relation"
)

// AcyclicCQ is the Theorem 3.32 membership construction: a logspace
// reduction from ⟨DB, MQ, I, 0, 0⟩ (acyclic metaquery, type-0, threshold 0)
// to an acyclic Boolean conjunctive query QMQ over a new database DDB.
//
// DDB introduces, for every arity a occurring in DB, a relation u_a of
// arity a+1 holding (n_r, t1, ..., ta) for every tuple t of every arity-a
// relation r, where n_r is a fresh constant naming r. QMQ replaces each
// literal scheme L(X1..Xa) by u_a(L, X1..Xa): predicate variables become
// ordinary variables ranging over relation names, which is exactly type-0
// instantiation. For I = sup the head atom is dropped (its certifying set
// is the body only, Proposition 3.20).
type AcyclicCQ struct {
	DDB *relation.Database
	Q   cq.Query
}

// relConstPrefix namespaces the n_r constants so they cannot collide with
// database constants.
const relConstPrefix = "rel:"

// BuildAcyclicCQ constructs ⟨QMQ, DDB⟩ for the given instance.
func BuildAcyclicCQ(db *relation.Database, mq *core.Metaquery, ix core.Index) (*AcyclicCQ, error) {
	ddb := relation.NewDatabase()
	// Copy constants so tuple values keep their names.
	arities := map[int]bool{}
	for _, name := range db.RelationNames() {
		arities[db.Relation(name).Arity()] = true
	}
	for a := range arities {
		ddb.MustAddRelation(uRelName(a), a+1)
	}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		u := ddb.Relation(uRelName(rel.Arity()))
		nr := ddb.Dict().Intern(relConstPrefix + name)
		for r := 0; r < rel.Len(); r++ {
			row := make(relation.Tuple, rel.Arity()+1)
			row[0] = nr
			for i, v := range rel.Row(r) {
				row[i+1] = ddb.Dict().Intern(db.Dict().Name(v))
			}
			u.Insert(row)
		}
	}

	var schemes []core.LiteralScheme
	if ix == core.Sup {
		// Body only: deduplicated body schemes.
		seen := map[string]bool{}
		for _, l := range mq.Body {
			if !seen[l.Key()] {
				seen[l.Key()] = true
				schemes = append(schemes, l)
			}
		}
	} else {
		schemes = mq.LiteralSchemes()
	}

	var q cq.Query
	for _, l := range schemes {
		// Patterns of an arity absent from DB still need their u_a relation
		// (it is empty: no type-0 instantiation can exist for them).
		if _, err := ddb.AddRelation(uRelName(len(l.Args)), len(l.Args)+1); err != nil {
			return nil, err
		}
		terms := make([]relation.Term, 0, len(l.Args)+1)
		if l.PredVar {
			// Predicate variable becomes an ordinary CQ variable, namespaced
			// to avoid clashing with the metaquery's ordinary variables.
			terms = append(terms, relation.V("pv:"+l.Pred))
		} else {
			nr, ok := ddb.Dict().Lookup(relConstPrefix + l.Pred)
			if !ok {
				return nil, fmt.Errorf("reductions: metaquery atom %s names unknown relation", l)
			}
			terms = append(terms, relation.C(nr))
		}
		for _, a := range l.Args {
			terms = append(terms, relation.V(a))
		}
		q = append(q, relation.Atom{Pred: uRelName(len(l.Args)), Terms: terms})
	}
	return &AcyclicCQ{DDB: ddb, Q: q}, nil
}

func uRelName(arity int) string { return fmt.Sprintf("u%d", arity) }

// Decide answers the original instance through the reduction: QMQ has a
// non-empty answer over DDB iff ⟨DB, MQ, I, 0, 0⟩ is a YES instance.
// For acyclic metaqueries it uses the semijoin-program evaluation.
func (r *AcyclicCQ) Decide() (bool, error) {
	return cq.SatisfiableAcyclic(r.DDB, r.Q)
}
