// Package reductions implements every reduction of Section 3 of the paper.
// Each construction returns the database and metaquery of the proof, and is
// differentially tested against an independent brute-force solver: the
// reductions are the executable content of the Figure 5 complexity rows.
package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/relation"
)

// ThreeColoring is the Theorem 3.21 construction: a database DB3col and
// metaquery MQ3col such that, for any instantiation type T and any index
// I ∈ {sup, cnf, cvr}, ⟨DB3col, MQ3col, I, 0, T⟩ is a YES instance iff the
// graph is 3-colorable.
type ThreeColoring struct {
	DB *relation.Database
	MQ *core.Metaquery
}

// BuildThreeColoring constructs the reduction for g. The graph must have at
// least one edge (an edgeless graph is trivially 3-colorable and yields no
// body; callers should special-case it, as the paper's construction
// implicitly assumes E ≠ ∅).
func BuildThreeColoring(g *graphs.Graph) (*ThreeColoring, error) {
	if err := g.Check(); err != nil {
		return nil, err
	}
	if len(g.Edges) == 0 {
		return nil, fmt.Errorf("reductions: 3-coloring reduction requires at least one edge")
	}
	db := relation.NewDatabase()
	// e lists every way of properly coloring two adjacent nodes.
	colors := []string{"1", "2", "3"}
	for _, a := range colors {
		for _, b := range colors {
			if a != b {
				db.MustInsertNamed("e", a, b)
			}
		}
	}
	// Body: one pattern E(Xu, Xv) per edge; head repeats the first literal.
	nodeVar := func(u int) string { return fmt.Sprintf("X%d", u) }
	body := make([]core.LiteralScheme, 0, len(g.Edges))
	for _, e := range g.Edges {
		body = append(body, core.Pattern("E", nodeVar(e[0]), nodeVar(e[1])))
	}
	head := body[0]
	mq, err := core.NewMetaquery(head, body...)
	if err != nil {
		return nil, err
	}
	return &ThreeColoring{DB: db, MQ: mq}, nil
}

// ColoringFromWitness recovers a 3-coloring from a satisfying assignment of
// the instantiated body (used to validate YES answers end-to-end): it
// evaluates the body join and reads node colors off the first tuple.
func (r *ThreeColoring) ColoringFromWitness(g *graphs.Graph, sigma *core.Instantiation) ([]int, error) {
	rule, err := sigma.Apply(r.MQ)
	if err != nil {
		return nil, err
	}
	j, err := relation.JoinAtoms(r.DB, rule.BodyAtoms())
	if err != nil {
		return nil, err
	}
	if j.Empty() {
		return nil, fmt.Errorf("reductions: witness instantiation has empty body join")
	}
	tup := j.Row(0)
	colors := make([]int, g.N)
	for i := range colors {
		colors[i] = 0 // isolated nodes: any color
	}
	for u := 0; u < g.N; u++ {
		v := fmt.Sprintf("X%d", u)
		if p := j.Pos(v); p >= 0 {
			name := r.DB.Dict().Name(tup[p])
			colors[u] = int(name[0] - '1')
		}
	}
	return colors, nil
}

// ValidColoring checks that colors is a proper 3-coloring of g.
func ValidColoring(g *graphs.Graph, colors []int) bool {
	if len(colors) != g.N {
		return false
	}
	for _, c := range colors {
		if c < 0 || c > 2 {
			return false
		}
	}
	for _, e := range g.Edges {
		if colors[e[0]] == colors[e[1]] {
			return false
		}
	}
	return true
}
