package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/cq"
	"github.com/mqgo/metaquery/internal/logic"
	"github.com/mqgo/metaquery/internal/relation"
)

// SatBCQ is the Proposition 3.26 construction: a parsimonious
// transformation from 3SAT to BCQ. For a 3CNF formula F it builds a
// conjunctive query Q and database DB such that the number of satisfying
// assignments of F over the variables occurring in F equals #BCQ(Q, DB).
//
// Each clause cl_i gets a ternary relation c_i over U = {0,1} containing
// U³ minus the single falsifying tuple of cl_i; the query joins
// c_i(X_{i1}, X_{i2}, X_{i3}) where X_{ij} is the propositional variable
// underlying the j-th literal of cl_i (shared across clauses).
type SatBCQ struct {
	DB *relation.Database
	Q  cq.Query
	F  *logic.CNF
}

// BuildSatBCQ constructs the transformation. Clauses must have exactly
// three literals (pad shorter clauses by repeating a literal beforehand if
// needed); repeated variables within a clause are handled by the query's
// repeated-variable semantics.
func BuildSatBCQ(f *logic.CNF) (*SatBCQ, error) {
	if err := f.Check(); err != nil {
		return nil, err
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return nil, fmt.Errorf("reductions: clause %d has %d literals, want 3", i, len(c))
		}
	}
	db := relation.NewDatabase()
	// Intern "0" and "1" first so values are stable.
	db.Dict().Intern("0")
	db.Dict().Intern("1")
	var q cq.Query
	for i, cl := range f.Clauses {
		relName := fmt.Sprintf("c%d", i)
		rel := db.MustAddRelation(relName, 3)
		// The falsifying tuple: every literal false. A positive literal is
		// false when its variable is 0; a negative one when it is 1.
		var falsify [3]string
		for j, l := range cl {
			if l.Neg {
				falsify[j] = "1"
			} else {
				falsify[j] = "0"
			}
		}
		for _, d1 := range []string{"0", "1"} {
			for _, d2 := range []string{"0", "1"} {
				for _, d3 := range []string{"0", "1"} {
					if d1 == falsify[0] && d2 == falsify[1] && d3 == falsify[2] {
						continue
					}
					v1, _ := db.Dict().Lookup(d1)
					v2, _ := db.Dict().Lookup(d2)
					v3, _ := db.Dict().Lookup(d3)
					rel.Insert(relation.Tuple{v1, v2, v3})
				}
			}
		}
		q = append(q, relation.NewAtom(relName,
			fmt.Sprintf("X%d", cl[0].Var),
			fmt.Sprintf("X%d", cl[1].Var),
			fmt.Sprintf("X%d", cl[2].Var)))
	}
	return &SatBCQ{DB: db, Q: q, F: f}, nil
}

// CountSolutions returns #BCQ(Q, DB), which by parsimony equals the number
// of satisfying assignments of F over the variables occurring in F.
func (r *SatBCQ) CountSolutions() (int, error) {
	return cq.Count(r.DB, r.Q)
}
