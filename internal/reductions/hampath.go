package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/relation"
)

// HamPath is the Theorem 3.33 construction: an *acyclic* metaquery MQham
// and database DBham such that, for T ∈ {1, 2} and any index I,
// ⟨DBham, MQham, I, 0, T⟩ is a YES instance iff the graph has a
// Hamiltonian path.
//
// DBham holds a relation g with a single n-tuple of node names and the
// binary edge relation e. Since the input graph is undirected, e stores
// both orientations of each edge (the paper stores "one tuple for each
// edge"; a path may traverse an edge in either direction, so the symmetric
// closure realizes the intended semantics).
type HamPath struct {
	DB *relation.Database
	MQ *core.Metaquery
	N  int
}

// BuildHamPath constructs the reduction. The paper assumes |V| > 2.
func BuildHamPath(g *graphs.Graph) (*HamPath, error) {
	if err := g.Check(); err != nil {
		return nil, err
	}
	if g.N <= 2 {
		return nil, fmt.Errorf("reductions: Hamiltonian path reduction requires |V| > 2")
	}
	db := relation.NewDatabase()
	nodeName := func(u int) string { return fmt.Sprintf("v%d", u) }
	names := make([]string, g.N)
	for u := 0; u < g.N; u++ {
		names[u] = nodeName(u)
	}
	db.MustInsertNamed("g", names...)
	db.MustAddRelation("e", 2)
	for _, e := range g.Edges {
		if e[0] == e[1] {
			continue
		}
		db.MustInsertNamed("e", nodeName(e[0]), nodeName(e[1]))
		db.MustInsertNamed("e", nodeName(e[1]), nodeName(e[0]))
	}

	// MQham = N(X1..Xn) <- N(X1..Xn), e(X1,X2), ..., e(Xn-1,Xn).
	vars := make([]string, g.N)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i+1)
	}
	body := []core.LiteralScheme{core.Pattern("N", vars...)}
	for i := 0; i+1 < g.N; i++ {
		body = append(body, core.SchemeAtom("e", vars[i], vars[i+1]))
	}
	mq, err := core.NewMetaquery(core.Pattern("N", vars...), body...)
	if err != nil {
		return nil, err
	}
	return &HamPath{DB: db, MQ: mq, N: g.N}, nil
}

// PathFromWitness extracts a Hamiltonian path (as a vertex sequence) from a
// witness instantiation by reading the body join.
func (r *HamPath) PathFromWitness(sigma *core.Instantiation) ([]int, error) {
	rule, err := sigma.Apply(r.MQ)
	if err != nil {
		return nil, err
	}
	j, err := relation.JoinAtoms(r.DB, rule.BodyAtoms())
	if err != nil {
		return nil, err
	}
	if j.Empty() {
		return nil, fmt.Errorf("reductions: witness has empty body join")
	}
	tup := j.Row(0)
	path := make([]int, r.N)
	for i := 0; i < r.N; i++ {
		v := fmt.Sprintf("X%d", i+1)
		p := j.Pos(v)
		if p < 0 {
			return nil, fmt.Errorf("reductions: variable %s missing from body join", v)
		}
		name := r.DB.Dict().Name(tup[p])
		var u int
		if _, err := fmt.Sscanf(name, "v%d", &u); err != nil {
			return nil, fmt.Errorf("reductions: bad node constant %q", name)
		}
		path[i] = u
	}
	return path, nil
}

// ValidHamPath checks that path visits every vertex of g exactly once along
// edges of g.
func ValidHamPath(g *graphs.Graph, path []int) bool {
	if len(path) != g.N {
		return false
	}
	seen := make([]bool, g.N)
	for _, u := range path {
		if u < 0 || u >= g.N || seen[u] {
			return false
		}
		seen[u] = true
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return false
		}
	}
	return true
}
