package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/relation"
)

// SemiAcyclicThreeCol is the Theorem 3.35 construction: a *semi-acyclic*
// metaquery MQ3col and database DB3col such that, for type-0 instantiation
// and any index I, ⟨DB3col, MQ3col, I, 0, 0⟩ is a YES instance iff the
// graph is 3-colorable. It shows that semi-acyclicity does not buy
// tractability even for type-0.
//
// DB3col holds three binary relations r', g', b' with
// r' = {(g,r),(b,r)}, g' = {(r,g),(b,g)}, b' = {(g,b),(r,b)}: the pairs
// (color of a neighbour, own color) for each own color. The metaquery uses
// one predicate variable X'_u and one ordinary variable X_u per node, plus
// mute variables:
//
//	S'  = { X'_u(X_v, _) : (u,v) ∈ E }   (edge constraints)
//	S'' = { X'_z(_, X_z) : z ∈ V }       (ties X'_z's color to X_z)
type SemiAcyclicThreeCol struct {
	DB *relation.Database
	MQ *core.Metaquery
	G  *graphs.Graph
}

// BuildSemiAcyclicThreeCol constructs the reduction; the graph must have at
// least one edge.
func BuildSemiAcyclicThreeCol(g *graphs.Graph) (*SemiAcyclicThreeCol, error) {
	if err := g.Check(); err != nil {
		return nil, err
	}
	if len(g.Edges) == 0 {
		return nil, fmt.Errorf("reductions: 3-coloring reduction requires at least one edge")
	}
	db := relation.NewDatabase()
	db.MustInsertNamed("r'", "g", "r")
	db.MustInsertNamed("r'", "b", "r")
	db.MustInsertNamed("g'", "r", "g")
	db.MustInsertNamed("g'", "b", "g")
	db.MustInsertNamed("b'", "g", "b")
	db.MustInsertNamed("b'", "r", "b")

	predVar := func(u int) string { return fmt.Sprintf("C%d", u) } // X'_u
	ordVar := func(u int) string { return fmt.Sprintf("X%d", u) }  // X_u
	mute := 0
	freshMute := func() string { mute++; return fmt.Sprintf("M%d", mute) }

	var body []core.LiteralScheme
	// S': X'_u(X_v, _) for each edge (u, v).
	for _, e := range g.Edges {
		body = append(body, core.Pattern(predVar(e[0]), ordVar(e[1]), freshMute()))
	}
	// S'': X'_z(_, X_z) for each node z.
	for z := 0; z < g.N; z++ {
		body = append(body, core.Pattern(predVar(z), freshMute(), ordVar(z)))
	}
	head := body[0]
	mq, err := core.NewMetaquery(head, body...)
	if err != nil {
		return nil, err
	}
	return &SemiAcyclicThreeCol{DB: db, MQ: mq, G: g}, nil
}

// ColoringFromWitness recovers a coloring from a witness instantiation: the
// relation assigned to X'_u determines node u's color.
func (r *SemiAcyclicThreeCol) ColoringFromWitness(sigma *core.Instantiation) ([]int, error) {
	colorOf := map[string]int{"r'": 0, "g'": 1, "b'": 2}
	colors := make([]int, r.G.N)
	for u := 0; u < r.G.N; u++ {
		rel, ok := sigma.RelationOf(fmt.Sprintf("C%d", u))
		if !ok {
			return nil, fmt.Errorf("reductions: node %d's predicate variable unassigned", u)
		}
		c, ok := colorOf[rel]
		if !ok {
			return nil, fmt.Errorf("reductions: node %d assigned unexpected relation %q", u, rel)
		}
		colors[u] = c
	}
	return colors, nil
}
