package reductions

import (
	"fmt"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/logic"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// ExistsCSAT is the NP^PP-hardness construction of Theorems 3.28 and 3.29:
// a reduction from ∃C-3SAT to the confidence metaquerying problem
// ⟨DB, MQ, cnf, k, T⟩ with k = (k'−1)/2^h.
//
// Variant Type0 builds Theorem 3.28's instance (one predicate variable P'_i
// per existential variable, relations pa/pb fixing its truth value);
// variant Type12 builds Theorem 3.29's instance (a single predicate
// variable P' mapped to the one-tuple relation p = {(1,0,l)}, whose chosen
// argument permutation encodes the truth value, guarded by ch = {(l)}).
type ExistsCSAT struct {
	DB   *relation.Database
	MQ   *core.Metaquery
	K    rat.Rat
	Inst *logic.ExistsCountInstance
}

// ExistsCSATVariant selects which theorem's construction to build.
type ExistsCSATVariant int

const (
	// VariantType0 is the Theorem 3.28 construction, sound for type-0.
	VariantType0 ExistsCSATVariant = iota
	// VariantType12 is the Theorem 3.29 construction, sound for types 1 and 2.
	VariantType12
)

// BuildExistsCSAT constructs the reduction. Requirements: the formula is
// 3CNF with exactly three literals per clause, at least one counted (χ)
// variable, and 1 <= k' <= 2^h.
//
// If the formula has exactly three clauses, the first clause is duplicated
// (with a fresh clause variable): this leaves the model count unchanged and
// avoids an arity collision between the arity-n head relation c and the
// arity-3 relation patterns, a corner case the paper's construction leaves
// implicit.
func BuildExistsCSAT(inst *logic.ExistsCountInstance, variant ExistsCSATVariant) (*ExistsCSAT, error) {
	if err := inst.Check(); err != nil {
		return nil, err
	}
	f := inst.F
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return nil, fmt.Errorf("reductions: clause %d has %d literals, want 3", i, len(c))
		}
	}
	h := len(inst.Chi)
	if h < 1 {
		return nil, fmt.Errorf("reductions: need at least one counted variable")
	}
	if h > 20 {
		return nil, fmt.Errorf("reductions: too many counted variables (%d)", h)
	}
	if inst.K < 1 || inst.K > 1<<h {
		return nil, fmt.Errorf("reductions: threshold k'=%d outside [1, 2^%d]", inst.K, h)
	}

	clauses := append([]logic.Clause(nil), f.Clauses...)
	if len(clauses) == 3 {
		clauses = append(clauses, clauses[0])
	}
	n := len(clauses)

	// Roles of the formula's variables.
	piIndex := make(map[int]int)  // formula var -> Π position
	chiIndex := make(map[int]int) // formula var -> χ position
	for i, v := range inst.Pi {
		piIndex[v] = i
	}
	for i, v := range inst.Chi {
		chiIndex[v] = i
	}
	litVar := func(l logic.Literal) string {
		if y, ok := piIndex[l.Var]; ok {
			if l.Neg {
				return fmt.Sprintf("PB%d", y)
			}
			return fmt.Sprintf("P%d", y)
		}
		y := chiIndex[l.Var]
		if l.Neg {
			return fmt.Sprintf("QB%d", y)
		}
		return fmt.Sprintf("Q%d", y)
	}

	db := relation.NewDatabase()
	// Shared relations: q, c', c.
	db.MustInsertNamed("q", "1", "0")
	db.MustInsertNamed("q", "0", "1")
	for _, t := range [][4]string{
		{"1", "0", "0", "1"}, {"0", "1", "0", "1"}, {"0", "0", "1", "1"},
		{"1", "0", "1", "1"}, {"1", "1", "0", "1"}, {"0", "1", "1", "1"},
		{"1", "1", "1", "1"}, {"0", "0", "0", "0"},
	} {
		db.MustInsertNamed("c'", t[0], t[1], t[2], t[3])
	}
	ones := make([]string, n)
	for i := range ones {
		ones[i] = "1"
	}
	db.MustInsertNamed("c", ones...)

	var body []core.LiteralScheme
	switch variant {
	case VariantType0:
		db.MustInsertNamed("pa", "1", "0", "l")
		db.MustInsertNamed("pb", "0", "1", "l")
		for i := range inst.Pi {
			body = append(body, core.Pattern(fmt.Sprintf("PV%d", i),
				fmt.Sprintf("P%d", i), fmt.Sprintf("PB%d", i), "Y"))
		}
	case VariantType12:
		db.MustInsertNamed("p", "1", "0", "l")
		db.MustInsertNamed("ch", "l")
		for i := range inst.Pi {
			body = append(body, core.Pattern("PV",
				fmt.Sprintf("P%d", i), fmt.Sprintf("PB%d", i), "Y"))
		}
		body = append(body, core.SchemeAtom("ch", "Y"))
	default:
		return nil, fmt.Errorf("reductions: unknown variant %d", variant)
	}
	for i := range inst.Chi {
		body = append(body, core.SchemeAtom("q", fmt.Sprintf("Q%d", i), fmt.Sprintf("QB%d", i)))
	}
	cVars := make([]string, n)
	for i, cl := range clauses {
		cVars[i] = fmt.Sprintf("C%d", i)
		body = append(body, core.SchemeAtom("c'",
			litVar(cl[0]), litVar(cl[1]), litVar(cl[2]), cVars[i]))
	}
	head := core.SchemeAtom("c", cVars...)
	mq, err := core.NewMetaquery(head, body...)
	if err != nil {
		return nil, err
	}
	// k = (k'-1) / 2^h.
	k := rat.New(int64(inst.K-1), int64(1)<<h)
	return &ExistsCSAT{DB: db, MQ: mq, K: k, Inst: inst}, nil
}

// PiAssignmentFromWitness reads the existential assignment off a witness
// instantiation: for VariantType0, P'_i -> pa means true, pb means false;
// for VariantType12, the position of P_i inside the atom's argument list
// determines the value (first argument of p means true).
func (r *ExistsCSAT) PiAssignmentFromWitness(sigma *core.Instantiation, variant ExistsCSATVariant) ([]bool, error) {
	out := make([]bool, len(r.Inst.Pi))
	for i := range r.Inst.Pi {
		var pat core.LiteralScheme
		if variant == VariantType0 {
			pat = core.Pattern(fmt.Sprintf("PV%d", i),
				fmt.Sprintf("P%d", i), fmt.Sprintf("PB%d", i), "Y")
		} else {
			pat = core.Pattern("PV",
				fmt.Sprintf("P%d", i), fmt.Sprintf("PB%d", i), "Y")
		}
		atom, ok := sigma.AtomFor(pat)
		if !ok {
			return nil, fmt.Errorf("reductions: pattern for Π variable %d unassigned", i)
		}
		switch variant {
		case VariantType0:
			switch atom.Pred {
			case "pa":
				out[i] = true
			case "pb":
				out[i] = false
			default:
				return nil, fmt.Errorf("reductions: unexpected relation %q", atom.Pred)
			}
		case VariantType12:
			if atom.Pred != "p" {
				return nil, fmt.Errorf("reductions: unexpected relation %q", atom.Pred)
			}
			// p's single tuple is (1, 0, l): P_i is true iff it sits in the
			// first argument position.
			if len(atom.Terms) != 3 {
				return nil, fmt.Errorf("reductions: unexpected arity %d", len(atom.Terms))
			}
			out[i] = atom.Terms[0].Var == fmt.Sprintf("P%d", i)
		}
	}
	return out, nil
}
