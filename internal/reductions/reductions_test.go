package reductions

import (
	"math/rand"
	"testing"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/cq"
	"github.com/mqgo/metaquery/internal/graphs"
	"github.com/mqgo/metaquery/internal/logic"
	"github.com/mqgo/metaquery/internal/rat"
	"github.com/mqgo/metaquery/internal/relation"
)

// --- Theorem 3.21: 3-COLORING, all types, k = 0 -------------------------

func TestThreeColoringKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
		want bool
	}{
		{"C5", graphs.Cycle(5), true},
		{"K3", graphs.Complete(3), true},
		{"K4", graphs.Complete(4), false},
		{"P4", graphs.Path(4), true},
	}
	for _, c := range cases {
		red, err := BuildThreeColoring(c.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range []core.InstType{core.Type0, core.Type1, core.Type2} {
			for _, ix := range core.AllIndices {
				yes, witness, err := core.Decide(red.DB, red.MQ, ix, rat.Zero, typ)
				if err != nil {
					t.Fatal(err)
				}
				if yes != c.want {
					t.Errorf("%s %s %s: decide = %v, want %v", c.name, typ, ix, yes, c.want)
				}
				if yes {
					colors, err := red.ColoringFromWitness(c.g, witness)
					if err != nil {
						t.Fatal(err)
					}
					if !ValidColoring(c.g, colors) {
						t.Errorf("%s: extracted coloring invalid", c.name)
					}
				}
			}
		}
	}
}

func TestThreeColoringRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphs.Random(rng, 4+rng.Intn(3), 0.5)
		if len(g.Edges) == 0 {
			continue
		}
		_, want := g.ThreeColorable()
		red, err := BuildThreeColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: reduction = %v, brute force = %v", seed, got, want)
		}
	}
}

func TestThreeColoringRejectsEdgeless(t *testing.T) {
	if _, err := BuildThreeColoring(graphs.New(3)); err == nil {
		t.Error("edgeless graph accepted")
	}
}

// --- Theorem 3.24 / Proposition 3.23: thresholds above 0 ----------------

func TestThreeColoringWithPositiveThreshold(t *testing.T) {
	// For a 3-colorable graph, the single type-0 instantiation maps E to e.
	// All e-tuples that participate in the body join keep support positive;
	// raising k up to just below sup keeps YES, raising above it flips NO.
	g := graphs.Cycle(5)
	red, err := BuildThreeColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	// Compute exact support of the unique instantiation via naive engine.
	answers, err := core.NaiveAnswers(red.DB, red.MQ, core.Type0, core.Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("expected a unique type-0 instantiation, got %d", len(answers))
	}
	sup := answers[0].Sup
	if sup.IsZero() {
		t.Fatal("support unexpectedly zero")
	}
	justBelow := rat.New(sup.Num()*2-1, sup.Den()*2)
	yes, _, err := core.Decide(red.DB, red.MQ, core.Sup, justBelow, core.Type0)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("YES expected just below the exact support")
	}
	yes, _, err = core.Decide(red.DB, red.MQ, core.Sup, sup, core.Type0)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Error("NO expected at the exact support (strict threshold)")
	}
}

// --- Theorem 3.33: HAMILTONIAN PATH via acyclic metaqueries -------------

func TestHamPathKnownGraphs(t *testing.T) {
	star := graphs.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	cases := []struct {
		name string
		g    *graphs.Graph
		want bool
	}{
		{"P4", graphs.Path(4), true},
		{"C5", graphs.Cycle(5), true},
		{"K4", graphs.Complete(4), true},
		{"star", star, false},
	}
	for _, c := range cases {
		red, err := BuildHamPath(c.g)
		if err != nil {
			t.Fatal(err)
		}
		if !red.MQ.IsAcyclic() {
			t.Fatalf("%s: MQham must be acyclic (Theorem 3.33)", c.name)
		}
		for _, typ := range []core.InstType{core.Type1, core.Type2} {
			yes, witness, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, typ)
			if err != nil {
				t.Fatal(err)
			}
			if yes != c.want {
				t.Errorf("%s %s: decide = %v, want %v", c.name, typ, yes, c.want)
			}
			if yes {
				path, err := red.PathFromWitness(witness)
				if err != nil {
					t.Fatal(err)
				}
				if !ValidHamPath(c.g, path) {
					t.Errorf("%s: extracted path %v invalid", c.name, path)
				}
			}
		}
	}
}

func TestHamPathRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphs.Random(rng, 4+rng.Intn(2), 0.45)
		_, want := g.HamiltonianPath()
		red, err := BuildHamPath(g)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.Decide(red.DB, red.MQ, core.Cvr, rat.Zero, core.Type1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: reduction = %v, brute force = %v", seed, got, want)
		}
	}
}

func TestHamPathRejectsTinyGraphs(t *testing.T) {
	if _, err := BuildHamPath(graphs.Path(2)); err == nil {
		t.Error("|V| <= 2 accepted")
	}
}

// Theorem 3.34: thresholds above 0 for sup/cvr on the acyclic HAMPATH
// metaquery behave monotonically around the exact index value.
func TestHamPathPositiveThreshold(t *testing.T) {
	g := graphs.Path(4)
	red, err := BuildHamPath(g)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := core.NaiveAnswers(red.DB, red.MQ, core.Type1, core.SingleIndex(core.Cvr, rat.Zero))
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	best := rat.Zero
	for _, a := range answers {
		best = rat.Max(best, a.Cvr)
	}
	yes, _, err := core.Decide(red.DB, red.MQ, core.Cvr, best, core.Type1)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Error("strictness violated at k = max cvr")
	}
}

// --- Theorem 3.35: semi-acyclic type-0 3-COLORING -----------------------

func TestSemiAcyclicThreeColShape(t *testing.T) {
	g := graphs.Cycle(5)
	red, err := BuildSemiAcyclicThreeCol(g)
	if err != nil {
		t.Fatal(err)
	}
	if !red.MQ.IsSemiAcyclic() {
		t.Error("MQ3col must be semi-acyclic")
	}
	if red.MQ.IsAcyclic() {
		t.Error("MQ3col is expected to be non-acyclic for graphs with shared nodes")
	}
	if !red.MQ.IsPure() {
		t.Error("MQ3col must be pure (type-0 requires purity)")
	}
}

func TestSemiAcyclicThreeColKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graphs.Graph
		want bool
	}{
		{"C5", graphs.Cycle(5), true},
		{"K3", graphs.Complete(3), true},
		{"K4", graphs.Complete(4), false},
	}
	for _, c := range cases {
		red, err := BuildSemiAcyclicThreeCol(c.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range core.AllIndices {
			yes, witness, err := core.Decide(red.DB, red.MQ, ix, rat.Zero, core.Type0)
			if err != nil {
				t.Fatal(err)
			}
			if yes != c.want {
				t.Errorf("%s %s: decide = %v, want %v", c.name, ix, yes, c.want)
			}
			if yes {
				colors, err := red.ColoringFromWitness(witness)
				if err != nil {
					t.Fatal(err)
				}
				if !ValidColoring(c.g, colors) {
					t.Errorf("%s: extracted coloring %v invalid", c.name, colors)
				}
			}
		}
	}
}

func TestSemiAcyclicThreeColRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphs.Random(rng, 4, 0.6)
		if len(g.Edges) == 0 {
			continue
		}
		_, want := g.ThreeColorable()
		red, err := BuildSemiAcyclicThreeCol(g)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.Decide(red.DB, red.MQ, core.Sup, rat.Zero, core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: reduction = %v, brute force = %v", seed, got, want)
		}
	}
}

// --- Proposition 3.26: parsimonious 3SAT -> BCQ -------------------------

func TestSatBCQParsimonious(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(4)
		f := logic.Random3CNF(rng, nVars, 1+rng.Intn(8))
		red, err := BuildSatBCQ(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := red.CountSolutions()
		if err != nil {
			t.Fatal(err)
		}
		// #BCQ counts assignments over variables OCCURRING in F; divide the
		// full count by 2^(unused vars).
		full, err := logic.CountModels(f)
		if err != nil {
			t.Fatal(err)
		}
		unused := nVars - len(f.UsedVars())
		want := full >> uint(unused)
		if got != want {
			t.Errorf("seed %d: #BCQ = %d, #SAT = %d (full %d, unused %d) for %s",
				seed, got, want, full, unused, f)
		}
	}
}

func TestSatBCQRejectsNon3CNF(t *testing.T) {
	f := &logic.CNF{NumVars: 2, Clauses: []logic.Clause{{logic.Literal{Var: 0}}}}
	if _, err := BuildSatBCQ(f); err == nil {
		t.Error("non-3 clause accepted")
	}
}

func TestSatBCQRepeatedVariableClause(t *testing.T) {
	// Clause (p | p | q): tautology-free but with repeated variable.
	f := &logic.CNF{NumVars: 2, Clauses: []logic.Clause{{
		logic.Literal{Var: 0}, logic.Literal{Var: 0}, logic.Literal{Var: 1},
	}}}
	red, err := BuildSatBCQ(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := red.CountSolutions()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := logic.CountModels(f)
	if got != want {
		t.Errorf("#BCQ = %d, #SAT = %d", got, want)
	}
	// Tautological clause (p | ~p | q): every assignment satisfies it.
	f2 := &logic.CNF{NumVars: 2, Clauses: []logic.Clause{{
		logic.Literal{Var: 0}, logic.Literal{Var: 0, Neg: true}, logic.Literal{Var: 1},
	}}}
	red2, err := BuildSatBCQ(f2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := red2.CountSolutions()
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := logic.CountModels(f2)
	if got2 != want2 {
		t.Errorf("tautology: #BCQ = %d, #SAT = %d", got2, want2)
	}
}

// --- Theorems 3.28/3.29: ∃C-3SAT -> confidence --------------------------

func existsCSATCase(rng *rand.Rand) *logic.ExistsCountInstance {
	nPi, nChi := 1+rng.Intn(2), 2+rng.Intn(2)
	f := logic.Random3CNF(rng, nPi+nChi, 2+rng.Intn(3))
	pi := make([]int, nPi)
	chi := make([]int, nChi)
	for i := range pi {
		pi[i] = i
	}
	for i := range chi {
		chi[i] = nPi + i
	}
	return &logic.ExistsCountInstance{F: f, Pi: pi, Chi: chi, K: 1 + rng.Intn(1<<nChi)}
}

func TestExistsCSATType0(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := existsCSATCase(rng)
		want, _, err := inst.Solve()
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildExistsCSAT(inst, VariantType0)
		if err != nil {
			t.Fatal(err)
		}
		got, witness, err := core.Decide(red.DB, red.MQ, core.Cnf, red.K, core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: reduction = %v, brute force = %v (k'=%d, k=%v)\nF=%s",
				seed, got, want, inst.K, red.K, inst.F)
		}
		if got {
			// The recovered Π assignment must achieve the count.
			assign, err := red.PiAssignmentFromWitness(witness, VariantType0)
			if err != nil {
				t.Fatal(err)
			}
			base := make([]bool, inst.F.NumVars)
			for i, v := range inst.Pi {
				base[v] = assign[i]
			}
			if logic.CountModelsOver(inst.F, inst.Chi, base) < inst.K {
				t.Errorf("seed %d: recovered Π assignment does not reach k'", seed)
			}
		}
	}
}

func TestExistsCSATType1And2(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		inst := existsCSATCase(rng)
		want, _, err := inst.Solve()
		if err != nil {
			t.Fatal(err)
		}
		red, err := BuildExistsCSAT(inst, VariantType12)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range []core.InstType{core.Type1, core.Type2} {
			got, witness, err := core.Decide(red.DB, red.MQ, core.Cnf, red.K, typ)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d %s: reduction = %v, brute force = %v\nF=%s",
					seed, typ, got, want, inst.F)
			}
			if got {
				assign, err := red.PiAssignmentFromWitness(witness, VariantType12)
				if err != nil {
					t.Fatal(err)
				}
				base := make([]bool, inst.F.NumVars)
				for i, v := range inst.Pi {
					base[v] = assign[i]
				}
				if logic.CountModelsOver(inst.F, inst.Chi, base) < inst.K {
					t.Errorf("seed %d %s: recovered Π assignment does not reach k'", seed, typ)
				}
			}
		}
	}
}

func TestExistsCSATThresholdExactness(t *testing.T) {
	// The reduction must be exact at the boundary: k' = MaxCount is YES,
	// k' = MaxCount+1 is NO.
	rng := rand.New(rand.NewSource(5))
	inst := existsCSATCase(rng)
	max, err := inst.MaxCount()
	if err != nil {
		t.Fatal(err)
	}
	if max == 0 || max == 1<<len(inst.Chi) {
		t.Skip("degenerate instance")
	}
	for _, kp := range []int{max, max + 1} {
		inst.K = kp
		red, err := BuildExistsCSAT(inst, VariantType0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.Decide(red.DB, red.MQ, core.Cnf, red.K, core.Type0)
		if err != nil {
			t.Fatal(err)
		}
		if got != (kp <= max) {
			t.Errorf("k'=%d: got %v, want %v", kp, got, kp <= max)
		}
	}
}

func TestExistsCSATValidation(t *testing.T) {
	f := &logic.CNF{NumVars: 2, Clauses: []logic.Clause{
		{logic.Literal{Var: 0}, logic.Literal{Var: 1}, logic.Literal{Var: 0}},
	}}
	noChi := &logic.ExistsCountInstance{F: f, Pi: []int{0, 1}, Chi: nil, K: 1}
	if _, err := BuildExistsCSAT(noChi, VariantType0); err == nil {
		t.Error("instance without counted variables accepted")
	}
	badK := &logic.ExistsCountInstance{F: f, Pi: []int{0}, Chi: []int{1}, K: 5}
	if _, err := BuildExistsCSAT(badK, VariantType0); err == nil {
		t.Error("k' > 2^h accepted")
	}
}

// --- Theorem 3.32: LOGCFL membership reduction --------------------------

func TestAcyclicCQReductionAgrees(t *testing.T) {
	// The reduced BCQ over DDB must answer exactly the type-0 k=0 problem.
	// The construction itself is sound for any metaquery; acyclicity (which
	// the LOGCFL bound needs) holds for the first and third entries, while
	// the second — the paper's running metaquery (4) — is cyclic (its
	// hypergraph is a triangle) and exercises the fallback path.
	mqs := map[string]bool{ // text -> expected acyclicity
		"P(X,Y) <- P(Y,Z), Q(Z,W)":                       true,
		"R(X,Z) <- P(X,Y), Q(Y,Z)":                       false,
		"N(X1,X2,X3) <- N(X1,X2,X3), e(X1,X2), e(X2,X3)": true,
	}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := randomDBForLogcfl(rng)
		for text, wantAcyclic := range mqs {
			mq := core.MustParse(text)
			if mq.IsAcyclic() != wantAcyclic {
				t.Fatalf("%s acyclicity = %v, want %v", text, mq.IsAcyclic(), wantAcyclic)
			}
			for _, ix := range core.AllIndices {
				want, _, err := core.Decide(db, mq, ix, rat.Zero, core.Type0)
				if err != nil {
					t.Fatal(err)
				}
				red, err := BuildAcyclicCQ(db, mq, ix)
				if err != nil {
					t.Fatal(err)
				}
				got, err := red.Decide()
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("seed %d %s %s: reduction = %v, direct = %v", seed, text, ix, got, want)
				}
			}
		}
	}
}

func TestAcyclicCQQueryIsAcyclic(t *testing.T) {
	db := randomDBForLogcfl(rand.New(rand.NewSource(1)))
	mq := core.MustParse("P(X,Y) <- P(Y,Z), Q(Z,W)")
	red, err := BuildAcyclicCQ(db, mq, core.Cnf)
	if err != nil {
		t.Fatal(err)
	}
	if !cq.IsAcyclic(red.Q) {
		t.Error("QMQ should be acyclic for an acyclic metaquery")
	}
}

func randomDBForLogcfl(rng *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	// The ordinary atom e(X1,X2) of the third metaquery needs a binary
	// relation named e.
	db.MustAddRelation("e", 2)
	for i := 0; i < rng.Intn(5); i++ {
		db.MustInsertNamed("e", string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
	}
	for r := 0; r < 2+rng.Intn(2); r++ {
		name := string(rune('p' + r))
		arity := 2 + rng.Intn(2)
		db.MustAddRelation(name, arity)
		for i := 0; i < rng.Intn(6); i++ {
			row := make([]string, arity)
			for j := range row {
				row[j] = string(rune('a' + rng.Intn(3)))
			}
			db.MustInsertNamed(name, row...)
		}
	}
	return db
}
