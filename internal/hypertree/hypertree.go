// Package hypertree implements (generalized) hypertree decompositions of
// sets of literal schemes (Definitions 4.6 and 4.7 of the paper), the
// hypertree width, and the completeness property required by the findRules
// algorithm (Figure 4).
//
// Metaquery bodies are combined-complexity objects — a handful of literal
// schemes — so the width-minimizing search is exhaustive. The search
// produces generalized hypertree decompositions (conditions 1–3 of
// Definition 4.7 plus completeness); the paper's condition 4 matters for
// polynomial-time decomposability of large queries, not for the soundness
// of findRules, and on width-1 inputs (the semi-acyclic case) the two
// notions coincide. See DESIGN.md, "Substitutions".
package hypertree

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mqgo/metaquery/internal/hypergraph"
)

// AtomSchema identifies one literal scheme by ID together with its ordinary
// variables varo(L). IDs are caller-defined (typically indices into a
// metaquery body).
type AtomSchema struct {
	ID   int
	Vars []string
}

// Node is a vertex p of a hypertree: the labels χ(p) (ordinary variables)
// and λ(p) (atom schema IDs), plus tree structure.
type Node struct {
	ID       int
	Chi      []string // sorted
	Lambda   []int    // sorted atom IDs
	Children []*Node
	Parent   *Node
}

// Decomposition is a complete hypertree decomposition: a rooted tree whose
// nodes carry χ and λ labels, such that every atom A has a node p with
// varo(A) ⊆ χ(p) and A ∈ λ(p).
type Decomposition struct {
	Root  *Node
	Width int // max |λ(p)| over nodes

	// CoverNode maps each atom ID to a node covering it (varo ⊆ χ, atom ∈ λ).
	CoverNode map[int]*Node

	nodes []*Node
}

// Nodes returns all nodes in preorder.
func (d *Decomposition) Nodes() []*Node { return d.nodes }

// String renders the decomposition for debugging.
func (d *Decomposition) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%sp%d chi={%s} lambda=%v\n", strings.Repeat("  ", depth), n.ID, strings.Join(n.Chi, ","), n.Lambda)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if d.Root != nil {
		walk(d.Root, 0)
	}
	return b.String()
}

// Decompose returns a complete decomposition of minimal width for the given
// literal schemes. It never fails: width len(atoms) always suffices (a
// single node holding every atom).
func Decompose(atoms []AtomSchema) *Decomposition {
	if len(atoms) == 0 {
		root := &Node{ID: 0}
		return finish(root, nil)
	}
	// Width 1 fast path: the semi-acyclic case, via a GYO join forest.
	if d, ok := decomposeAcyclic(atoms); ok {
		return d
	}
	for c := 2; c < len(atoms); c++ {
		if root, ok := newSearch(atoms, c).run(); ok {
			return finish(root, atoms)
		}
	}
	// Fallback: one node containing everything (width = len(atoms)).
	all := make([]int, len(atoms))
	varSet := map[string]bool{}
	for i, a := range atoms {
		all[i] = a.ID
		for _, v := range a.Vars {
			varSet[v] = true
		}
	}
	root := &Node{ID: 0, Chi: sortedKeys(varSet), Lambda: sortedInts(all)}
	return finish(root, atoms)
}

// Width returns the minimal width over the decompositions Decompose
// searches: 1 for semi-acyclic atom sets (hw(Q) = 1 iff Q is semi-acyclic).
func Width(atoms []AtomSchema) int {
	return Decompose(atoms).Width
}

// decomposeAcyclic builds a width-1 decomposition from a join forest, if
// the varo-hypergraph of the atoms is acyclic.
func decomposeAcyclic(atoms []AtomSchema) (*Decomposition, bool) {
	h := &hypergraph.Hypergraph{}
	byID := make(map[int]AtomSchema, len(atoms))
	for _, a := range atoms {
		h.Edges = append(h.Edges, hypergraph.Edge{ID: a.ID, Vertices: a.Vars})
		byID[a.ID] = a
	}
	f, ok := hypergraph.JoinForest(h)
	if !ok {
		return nil, false
	}
	var convert func(t *hypergraph.Tree) *Node
	convert = func(t *hypergraph.Tree) *Node {
		a := byID[t.Edge.ID]
		n := &Node{Chi: sortedStrings(dedupe(a.Vars)), Lambda: []int{a.ID}}
		for _, c := range t.Children {
			cn := convert(c)
			cn.Parent = n
			n.Children = append(n.Children, cn)
		}
		return n
	}
	if len(f.Roots) == 0 {
		return nil, false
	}
	root := convert(f.Roots[0])
	// Disconnected components share no variables; hanging them under the
	// first root preserves conditions 1-3.
	for _, r := range f.Roots[1:] {
		cn := convert(r)
		cn.Parent = root
		root.Children = append(root.Children, cn)
	}
	return finish(root, atoms), true
}

// Finish turns a hand-built node tree into a complete Decomposition: it
// numbers nodes, computes the width and cover nodes, and attaches leaf
// nodes for any atom not yet covered-with-membership (completeness,
// Definition 4.7 last paragraph). Callers constructing custom
// decompositions (tests, ablations) use it; Decompose calls it internally.
func Finish(root *Node, atoms []AtomSchema) *Decomposition { return finish(root, atoms) }

// finish numbers nodes, computes width and cover nodes, and attaches
// leaf nodes for any atom not yet covered-with-membership (completeness,
// Definition 4.7 last paragraph).
func finish(root *Node, atoms []AtomSchema) *Decomposition {
	d := &Decomposition{Root: root, CoverNode: make(map[int]*Node)}
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ID = len(d.nodes)
		d.nodes = append(d.nodes, n)
		if len(n.Lambda) > d.Width {
			d.Width = len(n.Lambda)
		}
		for _, c := range n.Children {
			c.Parent = n
			walk(c)
		}
	}
	walk(root)

	for _, a := range atoms {
		n := d.findCover(a)
		if n == nil {
			// No node covers varo(a) with membership: attach a leaf under a
			// node whose χ covers varo(a). Such a node exists by condition 1.
			host := d.findHost(a)
			if host == nil {
				panic(fmt.Sprintf("hypertree: internal error, atom %d not covered", a.ID))
			}
			leaf := &Node{
				ID:     len(d.nodes),
				Chi:    sortedStrings(dedupe(a.Vars)),
				Lambda: []int{a.ID},
				Parent: host,
			}
			host.Children = append(host.Children, leaf)
			d.nodes = append(d.nodes, leaf)
			n = leaf
		}
		d.CoverNode[a.ID] = n
	}
	if d.Width == 0 && len(atoms) > 0 {
		d.Width = 1
	}
	return d
}

func (d *Decomposition) findCover(a AtomSchema) *Node {
	for _, n := range d.nodes {
		if containsAll(n.Chi, a.Vars) && containsInt(n.Lambda, a.ID) {
			return n
		}
	}
	return nil
}

func (d *Decomposition) findHost(a AtomSchema) *Node {
	for _, n := range d.nodes {
		if containsAll(n.Chi, a.Vars) {
			return n
		}
	}
	return nil
}

func containsAll(sorted []string, vars []string) bool {
	for _, v := range vars {
		i := sort.SearchStrings(sorted, v)
		if i >= len(sorted) || sorted[i] != v {
			return false
		}
	}
	return true
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

func dedupe(vs []string) []string {
	seen := make(map[string]bool, len(vs))
	var out []string
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func sortedStrings(vs []string) []string {
	out := append([]string(nil), vs...)
	sort.Strings(out)
	return out
}

func sortedInts(vs []int) []int {
	out := append([]int(nil), vs...)
	sort.Ints(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
