package hypertree

import (
	"sort"
	"strconv"
	"strings"
)

// search finds a generalized hypertree decomposition of width <= c by
// exhaustive separator search with memoization. Components are sets of
// still-uncovered atoms; the connector of a component is the set of its
// variables shared with the already-decomposed part, which must appear in
// the χ label of the component's subtree root (else condition 2 of
// Definition 4.7 would be violated).
type search struct {
	atoms []AtomSchema
	c     int

	varsOf map[int][]string // atom ID -> deduped vars
	failed map[string]bool  // memoized failing (component, connector) pairs
}

func newSearch(atoms []AtomSchema, c int) *search {
	s := &search{
		atoms:  atoms,
		c:      c,
		varsOf: make(map[int][]string, len(atoms)),
		failed: make(map[string]bool),
	}
	for _, a := range atoms {
		s.varsOf[a.ID] = dedupe(a.Vars)
	}
	return s
}

// run attempts to decompose the full atom set.
func (s *search) run() (*Node, bool) {
	all := make([]int, 0, len(s.atoms))
	for _, a := range s.atoms {
		all = append(all, a.ID)
	}
	sort.Ints(all)
	return s.decompose(all, nil)
}

// decompose builds a subtree for component comp (sorted atom IDs) whose root
// χ must include every variable in connector (sorted).
func (s *search) decompose(comp []int, connector []string) (*Node, bool) {
	if len(comp) == 0 {
		return nil, false
	}
	key := intsKey(comp) + "|" + strings.Join(connector, ",")
	if s.failed[key] {
		return nil, false
	}

	// Try every λ of size 1..c drawn from all atoms (GHD permits edges from
	// outside the component).
	ids := make([]int, 0, len(s.atoms))
	for _, a := range s.atoms {
		ids = append(ids, a.ID)
	}
	sort.Ints(ids)

	var lambda []int
	var try func(start int) (*Node, bool)
	try = func(start int) (*Node, bool) {
		if len(lambda) > 0 {
			if n, ok := s.tryLambda(comp, connector, lambda); ok {
				return n, true
			}
		}
		if len(lambda) == s.c {
			return nil, false
		}
		for i := start; i < len(ids); i++ {
			lambda = append(lambda, ids[i])
			if n, ok := try(i + 1); ok {
				return n, true
			}
			lambda = lambda[:len(lambda)-1]
		}
		return nil, false
	}
	n, ok := try(0)
	if !ok {
		s.failed[key] = true
	}
	return n, ok
}

// tryLambda tests one separator choice: χ = var(λ) ∩ (connector ∪ var(comp)).
// The choice is viable if χ ⊇ connector and it makes progress (covers at
// least one component atom), and every residual sub-component decomposes
// recursively.
func (s *search) tryLambda(comp []int, connector []string, lambda []int) (*Node, bool) {
	scope := make(map[string]bool)
	for _, v := range connector {
		scope[v] = true
	}
	for _, id := range comp {
		for _, v := range s.varsOf[id] {
			scope[v] = true
		}
	}
	chi := make(map[string]bool)
	for _, id := range lambda {
		for _, v := range s.varsOf[id] {
			if scope[v] {
				chi[v] = true
			}
		}
	}
	for _, v := range connector {
		if !chi[v] {
			return nil, false
		}
	}

	// Covered atoms: varo entirely inside χ.
	var rest []int
	covered := 0
	for _, id := range comp {
		if allIn(s.varsOf[id], chi) {
			covered++
		} else {
			rest = append(rest, id)
		}
	}
	if covered == 0 {
		// No progress; rejecting keeps the search terminating. Decompositions
		// in normal form always have such a node available.
		return nil, false
	}

	node := &Node{
		Chi:    sortedKeys(chi),
		Lambda: sortedInts(append([]int(nil), lambda...)),
	}
	if len(rest) == 0 {
		return node, true
	}

	// Split rest into connected components over variables outside χ.
	for _, sub := range splitComponents(rest, s.varsOf, chi) {
		subConn := make(map[string]bool)
		for _, id := range sub {
			for _, v := range s.varsOf[id] {
				if chi[v] {
					subConn[v] = true
				}
			}
		}
		child, ok := s.decompose(sub, sortedKeys(subConn))
		if !ok {
			return nil, false
		}
		child.Parent = node
		node.Children = append(node.Children, child)
	}
	return node, true
}

func allIn(vars []string, set map[string]bool) bool {
	for _, v := range vars {
		if !set[v] {
			return false
		}
	}
	return true
}

// splitComponents partitions atoms into connected components, where two
// atoms are connected if they share a variable not in exclude.
func splitComponents(atomIDs []int, varsOf map[int][]string, exclude map[string]bool) [][]int {
	// Union-find over atoms keyed by free variables.
	parent := make(map[int]int, len(atomIDs))
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, id := range atomIDs {
		parent[id] = id
	}
	varOwner := make(map[string]int)
	for _, id := range atomIDs {
		for _, v := range varsOf[id] {
			if exclude[v] {
				continue
			}
			if owner, ok := varOwner[v]; ok {
				union(owner, id)
			} else {
				varOwner[v] = id
			}
		}
	}
	groups := make(map[int][]int)
	for _, id := range atomIDs {
		r := find(id)
		groups[r] = append(groups[r], id)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		g := groups[r]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

func intsKey(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}
