package hypertree

import (
	"fmt"
	"sort"
)

// Validate checks that d is a complete generalized hypertree decomposition
// of atoms: conditions 1–3 of Definition 4.7 plus completeness. It returns
// nil when all hold.
//
//  1. every literal scheme L has a node p with varo(L) ⊆ χ(p);
//  2. for every ordinary variable Y, the nodes with Y ∈ χ(p) induce a
//     connected subtree;
//  3. for every node p, χ(p) ⊆ varo(λ(p));
//     completeness: each L additionally has such a p with L ∈ λ(p).
func Validate(atoms []AtomSchema, d *Decomposition) error {
	if d.Root == nil {
		if len(atoms) == 0 {
			return nil
		}
		return fmt.Errorf("hypertree: nil root for %d atoms", len(atoms))
	}
	varsOf := make(map[int][]string, len(atoms))
	for _, a := range atoms {
		varsOf[a.ID] = dedupe(a.Vars)
	}

	// Conditions 1 and completeness.
	for _, a := range atoms {
		cond1, complete := false, false
		for _, n := range d.nodes {
			if containsAll(n.Chi, varsOf[a.ID]) {
				cond1 = true
				if containsInt(n.Lambda, a.ID) {
					complete = true
					break
				}
			}
		}
		if !cond1 {
			return fmt.Errorf("hypertree: condition 1 violated for atom %d", a.ID)
		}
		if !complete {
			return fmt.Errorf("hypertree: completeness violated for atom %d", a.ID)
		}
	}

	// Condition 2: χ-connectedness per variable.
	allVars := make(map[string]bool)
	for _, n := range d.nodes {
		for _, v := range n.Chi {
			allVars[v] = true
		}
	}
	for v := range allVars {
		withV := 0
		for _, n := range d.nodes {
			if containsAll(n.Chi, []string{v}) {
				withV++
			}
		}
		// Count connected nodes among those containing v, starting from the
		// highest such node; condition 2 holds iff the set forms one subtree.
		if withV == 0 {
			continue
		}
		comp := connectedChiComponent(d, v)
		if comp != withV {
			return fmt.Errorf("hypertree: condition 2 violated for variable %q (%d nodes, largest connected set %d)", v, withV, comp)
		}
	}

	// Condition 3: χ(p) ⊆ varo(λ(p)).
	for _, n := range d.nodes {
		lamVars := make(map[string]bool)
		for _, id := range n.Lambda {
			for _, u := range varsOf[id] {
				lamVars[u] = true
			}
		}
		for _, v := range n.Chi {
			if !lamVars[v] {
				return fmt.Errorf("hypertree: condition 3 violated at node %d: %q not in varo(λ)", n.ID, v)
			}
		}
	}
	return nil
}

// connectedChiComponent returns the size of the largest connected component
// of the subgraph of tree nodes whose χ contains v.
func connectedChiComponent(d *Decomposition, v string) int {
	has := func(n *Node) bool { return containsAll(n.Chi, []string{v}) }
	visited := make(map[*Node]bool)
	best := 0
	for _, start := range d.nodes {
		if !has(start) || visited[start] {
			continue
		}
		// BFS over tree adjacency restricted to nodes containing v.
		size := 0
		queue := []*Node{start}
		visited[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			size++
			var adj []*Node
			if n.Parent != nil {
				adj = append(adj, n.Parent)
			}
			adj = append(adj, n.Children...)
			for _, m := range adj {
				if has(m) && !visited[m] {
					visited[m] = true
					queue = append(queue, m)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}

// BottomUpOrder returns the decomposition's nodes in a bottom-up (children
// before parents) order, the permutation ν of the findRules algorithm.
func (d *Decomposition) BottomUpOrder() []*Node {
	out := make([]*Node, 0, len(d.nodes))
	var walk func(n *Node)
	walk = func(n *Node) {
		// Deterministic child order by node ID.
		kids := append([]*Node(nil), n.Children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, c := range kids {
			walk(c)
		}
		out = append(out, n)
	}
	if d.Root != nil {
		walk(d.Root)
	}
	return out
}
