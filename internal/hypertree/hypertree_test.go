package hypertree

import (
	"math/rand"
	"strings"
	"testing"
)

func schemas(vss ...[]string) []AtomSchema {
	out := make([]AtomSchema, len(vss))
	for i, vs := range vss {
		out[i] = AtomSchema{ID: i, Vars: vs}
	}
	return out
}

func TestWidth1Chain(t *testing.T) {
	atoms := schemas([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	d := Decompose(atoms)
	if d.Width != 1 {
		t.Fatalf("chain width = %d, want 1", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleWidth2(t *testing.T) {
	atoms := schemas([]string{"X", "Y"}, []string{"Y", "Z"}, []string{"Z", "X"})
	d := Decompose(atoms)
	if d.Width != 2 {
		t.Fatalf("triangle width = %d, want 2", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

// Examples 4.8 and 4.10: Qex = {P(A,B), Q(B,C), R(C,D), S(B,D)} is not
// semi-acyclic and has hypertree width exactly 2.
func TestExample48QexWidth2(t *testing.T) {
	atoms := schemas(
		[]string{"A", "B"},
		[]string{"B", "C"},
		[]string{"C", "D"},
		[]string{"B", "D"},
	)
	d := Decompose(atoms)
	if d.Width != 2 {
		t.Fatalf("Qex width = %d, want 2 (Example 4.10)", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

// The specific decomposition of Example 4.8 must validate: p1 chi={A,B}
// lambda={P}, p2 chi={B,C} lambda={Q}, p3 chi={B,C,D} lambda={R,S}.
func TestExample48SpecificDecomposition(t *testing.T) {
	atoms := schemas(
		[]string{"A", "B"}, // 0 = P(A,B)
		[]string{"B", "C"}, // 1 = Q(B,C)
		[]string{"C", "D"}, // 2 = R(C,D)
		[]string{"B", "D"}, // 3 = S(B,D)
	)
	p3 := &Node{Chi: []string{"B", "C", "D"}, Lambda: []int{2, 3}}
	p2 := &Node{Chi: []string{"B", "C"}, Lambda: []int{1}, Children: []*Node{p3}}
	p1 := &Node{Chi: []string{"A", "B"}, Lambda: []int{0}, Children: []*Node{p2}}
	d := finish(p1, atoms)
	if err := Validate(atoms, d); err != nil {
		t.Fatalf("paper decomposition invalid: %v", err)
	}
	if d.Width != 2 {
		t.Errorf("width = %d", d.Width)
	}
}

func TestSingleAtom(t *testing.T) {
	atoms := schemas([]string{"X", "Y", "Z"})
	d := Decompose(atoms)
	if d.Width != 1 {
		t.Fatalf("single atom width = %d", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAtoms(t *testing.T) {
	d := Decompose(nil)
	if d.Root == nil {
		t.Fatal("nil root")
	}
	if err := Validate(nil, d); err != nil {
		t.Fatal(err)
	}
}

func TestAtomWithNoVars(t *testing.T) {
	atoms := schemas([]string{"X", "Y"}, nil) // second atom is variable-free
	d := Decompose(atoms)
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	atoms := schemas([]string{"A", "B"}, []string{"C", "D"})
	d := Decompose(atoms)
	if d.Width != 1 {
		t.Fatalf("width = %d", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedVarsInAtom(t *testing.T) {
	atoms := schemas([]string{"X", "X", "Y"}, []string{"Y", "Z"})
	d := Decompose(atoms)
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
	if d.Width != 1 {
		t.Errorf("width = %d", d.Width)
	}
}

// A 4-cycle needs width 2.
func TestFourCycleWidth2(t *testing.T) {
	atoms := schemas(
		[]string{"A", "B"}, []string{"B", "C"},
		[]string{"C", "D"}, []string{"D", "A"},
	)
	d := Decompose(atoms)
	if d.Width != 2 {
		t.Fatalf("4-cycle width = %d, want 2", d.Width)
	}
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
}

// Property: on random atom sets, Decompose always returns a valid complete
// decomposition, and width 1 iff the variable hypergraph is semi-acyclic
// (checked indirectly: width-1 decompositions are only produced via the
// GYO fast path).
func TestQuickDecomposeAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nAtoms := 2 + rng.Intn(5)
		nVars := 3 + rng.Intn(4)
		varNames := []string{"A", "B", "C", "D", "E", "F", "G"}[:nVars]
		var atoms []AtomSchema
		for i := 0; i < nAtoms; i++ {
			arity := 1 + rng.Intn(3)
			vs := make([]string, arity)
			for j := range vs {
				vs[j] = varNames[rng.Intn(nVars)]
			}
			atoms = append(atoms, AtomSchema{ID: i, Vars: vs})
		}
		d := Decompose(atoms)
		if err := Validate(atoms, d); err != nil {
			t.Fatalf("seed %d: %v\natoms=%v\n%s", seed, err, atoms, d)
		}
		if d.Width < 1 || d.Width > nAtoms {
			t.Fatalf("seed %d: width %d out of range", seed, d.Width)
		}
	}
}

func TestBottomUpOrder(t *testing.T) {
	atoms := schemas([]string{"A", "B"}, []string{"B", "C"}, []string{"C", "D"})
	d := Decompose(atoms)
	order := d.BottomUpOrder()
	if len(order) != len(d.Nodes()) {
		t.Fatalf("order has %d nodes, want %d", len(order), len(d.Nodes()))
	}
	seen := map[*Node]bool{}
	for _, n := range order {
		for _, c := range n.Children {
			if !seen[c] {
				t.Fatal("child visited after parent")
			}
		}
		seen[n] = true
	}
	if order[len(order)-1] != d.Root {
		t.Error("root not last")
	}
}

func TestCoverNode(t *testing.T) {
	atoms := schemas([]string{"A", "B"}, []string{"B", "C"})
	d := Decompose(atoms)
	for _, a := range atoms {
		n := d.CoverNode[a.ID]
		if n == nil {
			t.Fatalf("atom %d has no cover node", a.ID)
		}
		if !containsAll(n.Chi, a.Vars) || !containsInt(n.Lambda, a.ID) {
			t.Errorf("cover node for atom %d does not cover it", a.ID)
		}
	}
}

func TestWidthAndString(t *testing.T) {
	atoms := schemas([]string{"A", "B"}, []string{"B", "C"})
	if w := Width(atoms); w != 1 {
		t.Fatalf("Width = %d, want 1", w)
	}
	d := Decompose(atoms)
	s := d.String()
	if !strings.Contains(s, "p0") || !strings.Contains(s, "chi=") {
		t.Errorf("String() = %q", s)
	}
}

// TestFinishHandBuilt drives the exported Finish on a hand-built tree that
// covers only the first atom; Finish must attach a leaf for the second and
// the result must validate.
func TestFinishHandBuilt(t *testing.T) {
	atoms := schemas([]string{"X", "Y"}, []string{"X", "Y"})
	root := &Node{Chi: []string{"X", "Y"}, Lambda: []int{0}}
	d := Finish(root, atoms)
	if err := Validate(atoms, d); err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes()) < 2 {
		t.Fatalf("Finish attached no leaf for the uncovered atom: %v", d.Nodes())
	}
	if d.Width != 1 {
		t.Errorf("hand-built width = %d", d.Width)
	}
}
