package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/mqgo/metaquery/internal/core"
	"github.com/mqgo/metaquery/internal/engine"
	"github.com/mqgo/metaquery/internal/obs"
	"github.com/mqgo/metaquery/internal/rat"
)

// searchRequest is the body of /v1/query and /v1/stream: a metaquery over
// a named database with optional thresholds, limit and deadline.
type searchRequest struct {
	DB    string `json:"db"`
	Query string `json:"query"`
	// Type selects the instantiation semantics: 0, 1 or 2.
	Type int `json:"type"`
	// MinSup/MinCnf/MinCvr are strict rational thresholds ("1/2", "0.3");
	// empty means unconstrained.
	MinSup string `json:"min_sup,omitempty"`
	MinCnf string `json:"min_cnf,omitempty"`
	MinCvr string `json:"min_cvr,omitempty"`
	// Limit stops the search after N answers (0 = all).
	Limit int `json:"limit,omitempty"`
	// Workers shards the enumeration's first-node candidates across this
	// many goroutines feeding one merged answer stream (<=1 = sequential).
	// /v1/stream row order is nondeterministic for workers > 1; /v1/query
	// sorts either way.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the search wall-clock; 0 uses the server default.
	// Values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace returns the execution's span tree in the response (/v1/query:
	// "trace" field; /v1/stream: trailer line).
	Trace bool `json:"trace,omitempty"`
}

// decideRequest is the body of /v1/decide: one index bound over a named
// database, answered YES/NO by the engine's first-witness path.
type decideRequest struct {
	DB    string `json:"db"`
	Query string `json:"query"`
	Type  int    `json:"type"`
	// Index is "sup", "cnf" or "cvr".
	Index string `json:"index"`
	// K is the strict rational bound (index > K); empty means 0.
	K string `json:"k,omitempty"`
	// Workers partitions the first decision node's candidates across this
	// many goroutines sharing a first-witness cancellation (<=1 =
	// sequential).
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Epsilon/Delta, when both set, switch the decision to the sampling
	// ε–δ approximate path: true index values outside [k−ε, k+ε] are
	// decided correctly with probability at least 1−δ (YES verdicts are
	// exactly confirmed and never wrong), values inside the band escalate
	// to exact evaluation. Both must be in (0, 1).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// MaxSamples caps the per-fraction sample budget before escalation
	// (0 derives it from epsilon and delta).
	MaxSamples int `json:"max_samples,omitempty"`
	// Trace returns the decision's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

// answerJSON is one discovered rule with its exact index values.
type answerJSON struct {
	Rule string `json:"rule"`
	Sup  string `json:"sup"`
	Cnf  string `json:"cnf"`
	Cvr  string `json:"cvr"`
}

// statsJSON reports the engine's search-effort counters for one request.
type statsJSON struct {
	Width           int `json:"width"`
	Nodes           int `json:"nodes"`
	CandidatesTried int `json:"candidates_tried"`
	BodiesReached   int `json:"bodies"`
	HeadsTried      int `json:"heads_tried"`
	HeadsSkipped    int `json:"heads_skipped,omitempty"`
	Answers         int `json:"answers"`
	PrunedEmpty     int `json:"pruned_empty,omitempty"`
	PrunedSupport   int `json:"pruned_support,omitempty"`
	SamplesDrawn    int `json:"samples_drawn,omitempty"`
	Escalated       int `json:"escalated,omitempty"`
}

func toStatsJSON(st *engine.Stats) *statsJSON {
	if st == nil {
		return nil
	}
	return &statsJSON{
		Width:           st.Width,
		Nodes:           st.Nodes,
		CandidatesTried: st.BodyCandidatesTried,
		BodiesReached:   st.BodiesReachedRoot,
		HeadsTried:      st.HeadsTried,
		HeadsSkipped:    st.HeadsSkipped,
		Answers:         st.Answers,
		PrunedEmpty:     st.BodiesPrunedEmpty,
		PrunedSupport:   st.BodiesPrunedSupport,
		SamplesDrawn:    st.SamplesDrawn,
		Escalated:       st.ApproxEscalated,
	}
}

// queryResponse is the /v1/query answer document. Answers are reported in
// the variable naming of the prepared-cache representative: α-equivalent
// queries share one Prepared, so a repeat of "R(A,C) <- P(A,B), Q(B,C)"
// after "R(X,Z) <- P(X,Y), Q(Y,Z)" renders its rules over X, Y, Z.
type queryResponse struct {
	Answers   []answerJSON    `json:"answers"`
	CacheHit  bool            `json:"cache_hit"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Stats     *statsJSON      `json:"stats,omitempty"`
	Trace     []*obs.SpanTree `json:"trace,omitempty"`
}

// decideResponse is the /v1/decide verdict document.
type decideResponse struct {
	Yes bool `json:"yes"`
	// Method is "exact" (the first-witness path) or "approx" (the sampling
	// ε–δ path, when the request set epsilon/delta).
	Method    string          `json:"method"`
	Witness   string          `json:"witness,omitempty"`
	CacheHit  bool            `json:"cache_hit"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Stats     *statsJSON      `json:"stats,omitempty"`
	Trace     []*obs.SpanTree `json:"trace,omitempty"`
}

// streamTrailer is the final NDJSON line of every /v1/stream response: the
// in-band status of the search that produced the rows above it. A client
// that does not see a trailer line knows the stream was cut mid-flight.
type streamTrailer struct {
	Status  string          `json:"status"` // "ok", "deadline_exceeded", "canceled", "error"
	Answers int             `json:"answers"`
	Error   string          `json:"error,omitempty"`
	Trace   []*obs.SpanTree `json:"trace,omitempty"`
}

// resolveSearch validates a searchRequest into an executable (database,
// metaquery, options) triple. Errors carry the HTTP status to answer with.
func (s *Server) resolveSearch(req *searchRequest) (*database, *core.Metaquery, engine.Options, int, error) {
	var opt engine.Options
	d, ok := s.reg.get(req.DB)
	if !ok {
		return nil, nil, opt, http.StatusNotFound, fmt.Errorf("unknown database %q (have %v)", req.DB, s.reg.names())
	}
	mq, typ, status, err := parseQueryType(req.Query, req.Type)
	if err != nil {
		return nil, nil, opt, status, err
	}
	th, err := parseThresholds(req.MinSup, req.MinCnf, req.MinCvr)
	if err != nil {
		return nil, nil, opt, http.StatusBadRequest, err
	}
	if req.Limit < 0 {
		return nil, nil, opt, http.StatusBadRequest, fmt.Errorf("limit must be >= 0")
	}
	if req.Workers < 0 {
		return nil, nil, opt, http.StatusBadRequest, fmt.Errorf("workers must be >= 0")
	}
	opt = engine.Options{Type: typ, Thresholds: th, Limit: req.Limit, Workers: req.Workers}
	return d, mq, opt, http.StatusOK, nil
}

func parseQueryType(query string, typN int) (*core.Metaquery, core.InstType, int, error) {
	if query == "" {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("query is required")
	}
	if typN < 0 || typN > 2 {
		return nil, 0, http.StatusBadRequest, fmt.Errorf("type must be 0, 1 or 2 (got %d)", typN)
	}
	mq, err := core.Parse(query)
	if err != nil {
		return nil, 0, http.StatusBadRequest, err
	}
	return mq, core.InstType(typN), http.StatusOK, nil
}

func parseThresholds(minSup, minCnf, minCvr string) (core.Thresholds, error) {
	var th core.Thresholds
	set := func(name, s string, k *rat.Rat, check *bool) error {
		if s == "" {
			return nil
		}
		r, err := rat.Parse(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		*k, *check = r, true
		return nil
	}
	if err := set("min_sup", minSup, &th.Sup, &th.CheckSup); err != nil {
		return th, err
	}
	if err := set("min_cnf", minCnf, &th.Cnf, &th.CheckCnf); err != nil {
		return th, err
	}
	if err := set("min_cvr", minCvr, &th.Cvr, &th.CheckCvr); err != nil {
		return th, err
	}
	return th, nil
}

// searchContext derives the request's search deadline: the client's
// timeout_ms clamped to the server maximum, or the server default when the
// client names none. It descends from the HTTP request context, so a
// client disconnect cancels the search either way.
func (s *Server) searchContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// handleQuery answers POST /v1/query: the full sorted answer set as one
// JSON document, through the same Prepared.FindRules path internal/diff
// verifies against the oracle.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, mq, opt, status, err := s.resolveSearch(&req)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	tagDB(w, req.DB)
	prep, hit, err := s.prepared(d, mq, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tr, r := requestTracer(r, req.Trace)
	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	answers, st, err := prep.FindRulesStats(ctx)
	if err != nil {
		s.searchError(w, r, err)
		return
	}
	s.metrics.answersServed.Add(uint64(len(answers)))
	out := queryResponse{
		Answers:   make([]answerJSON, len(answers)),
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
		Stats:     toStatsJSON(st),
		Trace:     traceOut(tr, req.Trace),
	}
	for i, a := range answers {
		out.Answers[i] = answerJSON{Rule: a.Rule.String(), Sup: a.Sup.String(), Cnf: a.Cnf.String(), Cvr: a.Cvr.String()}
	}
	writeJSON(w, out)
}

// handleDecide answers POST /v1/decide through the engine's first-witness
// path: only the queried index is evaluated and the search stops at the
// first admissible witness. With epsilon/delta set the decision runs the
// sampling ε–δ path instead, and the response reports "method": "approx"
// plus the samples-drawn and escalation counters.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req decideRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, ok := s.reg.get(req.DB)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown database %q (have %v)", req.DB, s.reg.names()))
		return
	}
	tagDB(w, req.DB)
	mq, typ, status, err := parseQueryType(req.Query, req.Type)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	var ix core.Index
	switch req.Index {
	case "sup":
		ix = core.Sup
	case "cnf":
		ix = core.Cnf
	case "cvr":
		ix = core.Cvr
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("index must be sup, cnf or cvr (got %q)", req.Index))
		return
	}
	k := rat.Zero
	if req.K != "" {
		if k, err = rat.Parse(req.K); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("k: %v", err))
			return
		}
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be >= 0")
		return
	}
	// epsilon/delta select the approximate path. They are part of the
	// engine Options and therefore of the prepared-cache key: exact and
	// approximate decisions over one query cache separate Prepared values.
	approx := engine.ApproxOptions{Epsilon: req.Epsilon, Delta: req.Delta, MaxSamples: req.MaxSamples}
	prep, hit, err := s.prepared(d, mq, engine.Options{Type: typ, Workers: req.Workers, Approx: approx})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tr, r := requestTracer(r, req.Trace)
	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	var (
		yes bool
		wit *core.Instantiation
		st  *engine.Stats
	)
	method := "exact"
	if approx.Enabled() {
		method = "approx"
		yes, wit, st, err = prep.DecideApproxStats(ctx, ix, k)
	} else {
		yes, wit, st, err = prep.DecideFirstStats(ctx, ix, k)
	}
	if err != nil {
		s.searchError(w, r, err)
		return
	}
	out := decideResponse{
		Yes:       yes,
		Method:    method,
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
		Stats:     toStatsJSON(st),
		Trace:     traceOut(tr, req.Trace),
	}
	if yes && wit != nil {
		// Apply against the Prepared's own metaquery: under a cache hit it
		// is the α-equivalent representative the witness indices refer to.
		rule, err := wit.Apply(prep.Metaquery())
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("witness does not apply: %v", err))
			return
		}
		out.Witness = rule.String()
	}
	writeJSON(w, out)
}

// handleStream answers POST /v1/stream: one NDJSON answer row at a time in
// discovery order, flushed as produced, ending with a trailer status line.
// The search rides Prepared.Stream, so a client that disconnects (or a
// deadline that fires) cancels the remaining work promptly; whatever rows
// were already written stand, and the trailer (when the connection is
// still up) names why the stream ended early.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, mq, opt, status, err := s.resolveSearch(&req)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	tagDB(w, req.DB)
	prep, _, err := s.prepared(d, mq, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tr, r := requestTracer(r, req.Trace)
	ctx, cancel := s.searchContext(r, req.TimeoutMS)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	var st engine.Stats
	var streamErr error
	n := 0
	for a, err := range prep.StreamStats(ctx, &st) {
		if err != nil {
			streamErr = err
			break
		}
		writeJSON(w, answerJSON{Rule: a.Rule.String(), Sup: a.Sup.String(), Cnf: a.Cnf.String(), Cvr: a.Cvr.String()})
		n++
		s.metrics.streamRows.Add(1)
		flush()
		if s.streamSent != nil {
			s.streamSent(n)
		}
	}
	trailer := streamTrailer{Status: "ok", Answers: n, Trace: traceOut(tr, req.Trace)}
	switch {
	case errors.Is(streamErr, context.DeadlineExceeded):
		trailer.Status = "deadline_exceeded"
		s.metrics.deadlineHits.Add(1)
		s.metrics.streamsCut.Add(1)
	case errors.Is(streamErr, context.Canceled):
		trailer.Status = "canceled"
		s.metrics.streamsCut.Add(1)
	case streamErr != nil:
		trailer.Status = "error"
		trailer.Error = streamErr.Error()
	}
	writeJSON(w, trailer)
	flush()
	if s.streamDone != nil {
		s.streamDone(&st, streamErr)
	}
}

// searchError maps a failed search to its HTTP answer: deadline → 504
// (the server-side search budget ran out), client disconnect → nothing
// (nobody is listening), anything else → 500.
func (s *Server) searchError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.deadlineHits.Add(1)
		writeError(w, http.StatusGatewayTimeout, "search deadline exceeded; narrow the query or raise timeout_ms")
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client went away mid-search; the response writer is dead.
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleLoadDB answers POST /v1/db/{name}: load (or atomically replace)
// a named database from a server-side CSV directory or inline relations.
func (s *Server) handleLoadDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "database name is required")
		return
	}
	var req jsonDatabase
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	db, err := req.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.LoadDatabase(name, db)
	writeJSON(w, dbInfo{Name: name, Relations: db.NumRelations(), Tuples: db.Size()})
}

// jsonDelta is the wire form of PATCH /v1/db/{name}: batched per-relation
// tuple inserts and deletes, applied atomically through Engine.Apply.
type jsonDelta struct {
	Relations []jsonRelationDelta `json:"relations"`
}

// jsonRelationDelta is one relation's change. Deletes apply before inserts;
// arity is only needed when creating a relation without inserting into it.
type jsonRelationDelta struct {
	Name   string     `json:"name"`
	Arity  int        `json:"arity,omitempty"`
	Insert [][]string `json:"insert,omitempty"`
	Delete [][]string `json:"delete,omitempty"`
}

// deltaResponse reports what a PATCH did: the database's epoch after the
// delta and the effective change counts.
type deltaResponse struct {
	Name      string `json:"name"`
	Epoch     uint64 `json:"epoch"`
	Inserted  int    `json:"inserted"`
	Deleted   int    `json:"deleted"`
	Compacted int    `json:"compacted,omitempty"`
}

// handleApplyDB answers PATCH /v1/db/{name}: an incremental delta into the
// registered engine via Engine.Apply. Unlike POST (full replacement, which
// discards the prepared-metaquery cache), PATCH keeps the registry entry —
// and with it the warm prepared LRU: cached Prepared values re-bind to the
// new epoch on their next execution, carrying over whatever node-join cache
// entries the delta left valid. In-flight searches finish on the snapshot
// they started with.
func (s *Server) handleApplyDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d, ok := s.reg.get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown database %q (have %v)", name, s.reg.names()))
		return
	}
	var req jsonDelta
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Relations) == 0 {
		writeError(w, http.StatusBadRequest, "delta needs at least one relation")
		return
	}
	var delta engine.Delta
	for _, rd := range req.Relations {
		delta.Relations = append(delta.Relations, engine.RelationDelta{
			Name: rd.Name, Arity: rd.Arity, Insert: rd.Insert, Delete: rd.Delete,
		})
	}
	res, err := d.eng.Apply(r.Context(), delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.dbDeltas.Add(1)
	writeJSON(w, deltaResponse{
		Name: name, Epoch: res.Epoch,
		Inserted: res.Inserted, Deleted: res.Deleted, Compacted: res.Compacted,
	})
}

// dbInfo summarizes one registered database.
type dbInfo struct {
	Name      string `json:"name"`
	Relations int    `json:"relations"`
	Tuples    int    `json:"tuples"`
}

// handleListDB answers GET /v1/db with the registered database summaries.
func (s *Server) handleListDB(w http.ResponseWriter, r *http.Request) {
	names := s.reg.names()
	out := make([]dbInfo, 0, len(names))
	for _, name := range names {
		if d, ok := s.reg.get(name); ok {
			out = append(out, dbInfo{Name: name, Relations: d.eng.Database().NumRelations(), Tuples: d.eng.Database().Size()})
		}
	}
	writeJSON(w, out)
}
